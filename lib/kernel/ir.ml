type elem = U8 | I32 | I64 | F32 | F64

let elem_bytes = function U8 -> 1 | I32 | F32 -> 4 | I64 | F64 -> 8
let elem_is_float = function F32 | F64 -> true | U8 | I32 | I64 -> false

type buf_decl = { buf_name : string; elem : elem; len : int; writable : bool }

let buf_decl_bytes b = b.len * elem_bytes b.elem

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Imin | Imax
  | Fadd | Fsub | Fmul | Fdiv
  | Flt | Fle | Fgt | Fge | Fmin | Fmax

type unop = Neg | Bnot | Fneg | Fabs | Fsqrt | Fexp | I2f | F2i

type exp =
  | Int of int
  | Flt of float
  | Var of string
  | Param of string
  | Load of string * exp
  | Bin of binop * exp * exp
  | Un of unop * exp

type stmt =
  | Let of string * exp
  | Store of string * exp * exp
  | For of string * exp * exp * stmt list
  | While of exp * stmt list
  | If of exp * stmt list * stmt list
  | Memcpy of { dst : string; src : string; elems : exp }

type t = {
  name : string;
  bufs : buf_decl list;
  scratch : buf_decl list;
  body : stmt list;
}

let find_buf t name = List.find (fun b -> b.buf_name = name) t.bufs

let rec contains_load = function
  | Int _ | Flt _ | Var _ | Param _ -> false
  | Load _ -> true
  | Bin (_, a, b) -> contains_load a || contains_load b
  | Un (_, a) -> contains_load a

(* Pretty printing *)

let elem_name = function
  | U8 -> "u8" | I32 -> "i32" | I64 -> "i64" | F32 -> "f32" | F64 -> "f64"


let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Imin -> "min" | Imax -> "max"
  | Fadd -> "+." | Fsub -> "-." | Fmul -> "*." | Fdiv -> "/."
  | Flt -> "<." | Fle -> "<=." | Fgt -> ">." | Fge -> ">=."
  | Fmin -> "fmin" | Fmax -> "fmax"

let unop_name = function
  | Neg -> "-" | Bnot -> "~" | Fneg -> "-." | Fabs -> "fabs" | Fsqrt -> "fsqrt"
  | Fexp -> "fexp" | I2f -> "i2f" | F2i -> "f2i"

let rec exp_to_string = function
  | Int n -> string_of_int n
  | Flt x -> Printf.sprintf "%h" x
  | Var name -> name
  | Param name -> "$" ^ name
  | Load (b, idx) -> Printf.sprintf "%s[%s]" b (exp_to_string idx)
  | Bin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (exp_to_string a) (binop_name op) (exp_to_string b)
  | Un (op, a) -> Printf.sprintf "%s(%s)" (unop_name op) (exp_to_string a)

let rec stmt_to_string ?(indent = 0) s =
  let pad = String.make indent ' ' in
  let block b = String.concat "\n" (List.map (stmt_to_string ~indent:(indent + 2)) b) in
  match s with
  | Let (name, e) -> Printf.sprintf "%s%s := %s" pad name (exp_to_string e)
  | Store (b, idx, v2) ->
      Printf.sprintf "%s%s[%s] <- %s" pad b (exp_to_string idx) (exp_to_string v2)
  | For (var, lo, hi, body) ->
      Printf.sprintf "%sfor %s = %s .. %s-1 {\n%s\n%s}" pad var (exp_to_string lo)
        (exp_to_string hi) (block body) pad
  | While (c, body) ->
      Printf.sprintf "%swhile %s {\n%s\n%s}" pad (exp_to_string c) (block body) pad
  | If (c, t, e) ->
      Printf.sprintf "%sif %s {\n%s\n%s} else {\n%s\n%s}" pad (exp_to_string c)
        (block t) pad (block e) pad
  | Memcpy { dst; src; elems } ->
      Printf.sprintf "%smemcpy %s <- %s (%s elems)" pad dst src (exp_to_string elems)

let validate t =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let fail fmt = Printf.ksprintf (fun s -> Error (t.name ^ ": " ^ s)) fmt in
  let all_decls = t.bufs @ t.scratch in
  let names = List.map (fun b -> b.buf_name) all_decls in
  let* () =
    if List.length (List.sort_uniq compare names) = List.length names then Ok ()
    else fail "duplicate buffer names"
  in
  let resolve name =
    match List.find_opt (fun b -> b.buf_name = name) all_decls with
    | Some b -> Ok b
    | None -> fail "unknown buffer %s" name
  in
  let is_scratch name = List.exists (fun b -> b.buf_name = name) t.scratch in
  let rec check_exp = function
    | Int _ | Flt _ | Var _ | Param _ -> Ok ()
    | Load (b, idx) ->
        let* _ = resolve b in
        check_exp idx
    | Bin (_, a, b) ->
        let* () = check_exp a in
        check_exp b
    | Un (_, a) -> check_exp a
  in
  let rec check_stmt stmt =
    match stmt with
    | Let (_, e) -> check_exp e
    | Store (b, idx, value) ->
        let* decl = resolve b in
        let* () =
          if decl.writable || is_scratch b then Ok ()
          else
            fail "store to read-only buffer %s in statement `%s`" b
              (stmt_to_string stmt)
        in
        let* () = check_exp idx in
        check_exp value
    | For (_, lo, hi, body) ->
        let* () = check_exp lo in
        let* () = check_exp hi in
        check_stmts body
    | While (c, body) ->
        let* () = check_exp c in
        check_stmts body
    | If (c, a, b) ->
        let* () = check_exp c in
        let* () = check_stmts a in
        check_stmts b
    | Memcpy { dst; src; elems } ->
        let* d = resolve dst in
        let* s = resolve src in
        let* () =
          if d.elem = s.elem then Ok ()
          else
            fail
              "element type mismatch in statement `%s`: buffer %s is %s but \
               buffer %s is %s"
              (stmt_to_string stmt) dst (elem_name d.elem) src
              (elem_name s.elem)
        in
        let* () =
          if d.writable || is_scratch dst then Ok ()
          else
            fail "memcpy to read-only buffer %s in statement `%s`" dst
              (stmt_to_string stmt)
        in
        check_exp elems
  and check_stmts stmts =
    List.fold_left (fun acc s -> let* () = acc in check_stmt s) (Ok ()) stmts
  in
  check_stmts t.body

(* Builders *)

let i n = Int n
let f x = Flt x
let v name = Var name
let p name = Param name
let ld b idx = Load (b, idx)

let bin op a b = Bin (op, a, b)
let ( +: ) = bin Add
let ( -: ) = bin Sub
let ( *: ) = bin Mul
let ( /: ) = bin Div
let ( %: ) = bin Mod
let ( <: ) = bin Lt
let ( <=: ) = bin Le
let ( >: ) = bin Gt
let ( >=: ) = bin Ge
let ( =: ) = bin Eq
let ( <>: ) = bin Ne
let ( &&: ) a b = bin Band (bin Ne a (Int 0)) (bin Ne b (Int 0))
let ( ||: ) a b = bin Bor (bin Ne a (Int 0)) (bin Ne b (Int 0))
let band = bin Band
let bor = bin Bor
let bxor = bin Bxor
let shl = bin Shl
let shr = bin Shr
let imin = bin Imin
let imax = bin Imax

let ( +.: ) = bin Fadd
let ( -.: ) = bin Fsub
let ( *.: ) = bin Fmul
let ( /.: ) = bin Fdiv
let ( <.: ) = bin Flt
let ( <=.: ) = bin Fle
let ( >.: ) = bin Fgt
let ( >=.: ) = bin Fge
let fmin = bin Fmin
let fmax = bin Fmax
let fsqrt e = Un (Fsqrt, e)
let fexp e = Un (Fexp, e)
let fabs_ e = Un (Fabs, e)
let i2f e = Un (I2f, e)
let f2i e = Un (F2i, e)

let let_ name e = Let (name, e)
let store b idx value = Store (b, idx, value)
let for_ var lo hi body = For (var, lo, hi, body)
let while_ c body = While (c, body)
let if_ c a b = If (c, a, b)
let when_ c a = If (c, a, [])
let memcpy ~dst ~src ~elems = Memcpy { dst; src; elems }

let buf ?(writable = true) buf_name elem len = { buf_name; elem; len; writable }

let to_string t =
  Printf.sprintf "kernel %s\n%s" t.name
    (String.concat "\n" (List.map (stmt_to_string ~indent:2) t.body))
