(** Fixed-size domain worker pool for embarrassingly parallel simulation jobs.

    [run ~jobs n f] evaluates [f 0 .. f (n-1)] on up to [jobs] OCaml 5
    domains and returns the results in index order.  Workers claim chunks of
    consecutive indices from a shared atomic cursor and write each result
    into a preallocated slot array, so the output is {e index-deterministic}:
    the result array is identical whatever the scheduling, and identical to
    the serial run — parallelism can only change wall-clock time, never a
    result.  The CI determinism gate and the [soc] batch tests rely on this.

    {2 Domain-safety rules for job closures}

    The pool runs [f] concurrently on several domains.  Jobs must therefore
    be {e isolated}: a job may only read immutable shared data (benchmark
    definitions, configs, parameter lists) and must create every piece of
    mutable state it touches itself — its own {!Soc}[.System], its own
    [Obs.Trace] sink, its own fault-plan RNG.  Sharing a mutable structure
    (a sink, a system, an [Rng.t]) across jobs is a data race and breaks
    determinism.  [Soc.Run.run_many] enforces this by constructing all
    per-run state inside the job.

    Exceptions raised by a job are caught, and the exception of the
    lowest-numbered failing job is re-raised (with its backtrace) after all
    workers finish — again independent of scheduling. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]: how many domains this machine can
    usefully run. *)

val resolve : int -> int
(** Normalize a user-facing [--jobs] value: [0] means {!recommended},
    positive values pass through.  Raises [Invalid_argument] on negatives. *)

val run : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [run ~jobs n f] is [[| f 0; ...; f (n-1) |]].  [jobs] defaults to [1],
    which runs serially on the calling domain with no pool at all (the
    deterministic baseline); [0] means {!recommended}.  With [jobs > 1], at
    most [min jobs n] domains run concurrently (the caller's domain is one
    of them). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] evaluated on the pool, preserving
    order. *)
