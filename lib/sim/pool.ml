let recommended () = Domain.recommended_domain_count ()

let resolve jobs =
  if jobs < 0 then invalid_arg "Ccsim.Pool: jobs must be >= 0"
  else if jobs = 0 then recommended ()
  else jobs

(* A slot is written by exactly one worker (the one that claimed its index)
   and read only after every worker has been joined, so plain mutation is
   race-free; no per-slot synchronization is needed. *)
type 'a slot = Empty | Done of 'a | Failed of exn * Printexc.raw_backtrace

let run ?(jobs = 1) count f =
  if count < 0 then invalid_arg "Ccsim.Pool.run: negative count";
  let jobs = resolve jobs in
  if jobs <= 1 || count <= 1 then Array.init count f
  else begin
    let slots = Array.make count Empty in
    let next = Atomic.make 0 in
    (* Chunked claiming: cheap enough that a handful of atomic operations
       never shows up next to a full-system simulation, small enough that a
       slow job cannot strand much work behind it. *)
    let chunk = max 1 (count / (jobs * 8)) in
    let worker () =
      let rec loop () =
        let start = Atomic.fetch_and_add next chunk in
        if start < count then begin
          let stop = min count (start + chunk) in
          for idx = start to stop - 1 do
            slots.(idx) <-
              (match f idx with
              | v -> Done v
              | exception e -> Failed (e, Printexc.get_raw_backtrace ()))
          done;
          loop ()
        end
      in
      loop ()
    in
    let helpers = Array.init (min jobs count - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers;
    Array.map
      (function
        | Done v -> v
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Empty -> assert false)
      slots
  end

let map ?jobs f xs =
  let arr = Array.of_list xs in
  Array.to_list (run ?jobs (Array.length arr) (fun idx -> f arr.(idx)))
