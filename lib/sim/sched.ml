type event = {
  cycle : int;
  rank : int;
  seq : int;
  fn : unit -> unit;
  mutable next : event;  (* intra-bucket FIFO chain, [nil]-terminated *)
}

(* Physical sentinel: chain terminator and "no event" result.  Its fields are
   never consulted except [next == nil] / [ev == nil] identity checks. *)
let rec nil = { cycle = max_int; rank = 0; seq = max_int; fn = ignore; next = nil }

(* ---- calendar wheel ----

   The contended event core schedules almost exclusively a few cycles ahead
   (bus grants, flow wakes, arbitration re-arms), so the heap's O(log n)
   sift per event is pure overhead.  Near events (cycle within [wheel_size]
   of the clock, rank below [wheel_ranks]) go into a cycle-indexed ring of
   per-rank FIFO chains: O(1) push, O(1) pop.  Everything else — far-future
   timeline events (serve workload arrivals), exotic ranks — falls back to
   the binary heap, and the run loop merges the two by the same
   (cycle, rank, seq) key the heap alone used to order by, so the execution
   order is bit-for-bit identical to the heap-only scheduler.

   Wheel invariant: every resident event has cycle in [clock, clock + W), so
   a bucket can only hold one distinct cycle at a time and the scan cursor
   (monotone, lazily synced to the clock) finds the next occupied bucket in
   amortized O(cycles traversed). *)

let wheel_bits = 12
let wheel_size = 1 lsl wheel_bits
let wheel_mask = wheel_size - 1
let wheel_ranks = 4

type t = {
  mutable heap : event array;  (* binary min-heap on (cycle, rank, seq) *)
  mutable hsize : int;
  heads : event array;  (* wheel chain heads, bucket * wheel_ranks + rank *)
  tails : event array;
  counts : int array;  (* live events per bucket *)
  mutable wcount : int;  (* live events in the wheel *)
  mutable cursor : int;  (* no wheel event lives at a cycle below this *)
  mutable seq : int;
  mutable clock : int;
  on_advance : int -> unit;
}

let create ?(on_advance = ignore) () =
  {
    heap = Array.make 64 nil;
    hsize = 0;
    heads = Array.make (wheel_size * wheel_ranks) nil;
    tails = Array.make (wheel_size * wheel_ranks) nil;
    counts = Array.make wheel_size 0;
    wcount = 0;
    cursor = 0;
    seq = 0;
    clock = 0;
    on_advance;
  }

let now t = t.clock

let rank_arbitrate = 1

let before a b =
  a.cycle < b.cycle
  || (a.cycle = b.cycle
      && (a.rank < b.rank || (a.rank = b.rank && a.seq < b.seq)))

(* Hole-based sifts: carry the moving element in a register and slide
   parents/children into the hole, one store per level instead of the three
   a swap costs.  Orderings are identical to the classic swap formulation. *)

let rec sift_up h i ev =
  if i = 0 then h.(0) <- ev
  else begin
    let parent = (i - 1) / 2 in
    if before ev h.(parent) then begin
      h.(i) <- h.(parent);
      sift_up h parent ev
    end
    else h.(i) <- ev
  end

let rec sift_down h size i ev =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest =
    if l < size && before h.(l) ev then
      if r < size && before h.(r) h.(l) then r else l
    else if r < size && before h.(r) ev then r
    else i
  in
  if smallest = i then h.(i) <- ev
  else begin
    h.(i) <- h.(smallest);
    sift_down h size smallest ev
  end

let heap_push t ev =
  if t.hsize = Array.length t.heap then begin
    let bigger = Array.make (2 * t.hsize) nil in
    Array.blit t.heap 0 bigger 0 t.hsize;
    t.heap <- bigger
  end;
  t.hsize <- t.hsize + 1;
  sift_up t.heap (t.hsize - 1) ev

let heap_pop t =
  let top = t.heap.(0) in
  t.hsize <- t.hsize - 1;
  let last = t.heap.(t.hsize) in
  t.heap.(t.hsize) <- nil;
  if t.hsize > 0 then sift_down t.heap t.hsize 0 last;
  top

let at t ~cycle ?(rank = 0) fn =
  let cycle = max cycle t.clock in
  let ev = { cycle; rank; seq = t.seq; fn; next = nil } in
  t.seq <- t.seq + 1;
  if rank < wheel_ranks && cycle - t.clock < wheel_size then begin
    let i = ((cycle land wheel_mask) lsl 2) lor rank in
    let tl = t.tails.(i) in
    if tl == nil then t.heads.(i) <- ev else tl.next <- ev;
    t.tails.(i) <- ev;
    t.counts.(cycle land wheel_mask) <- t.counts.(cycle land wheel_mask) + 1;
    t.wcount <- t.wcount + 1;
    (* A heap pop can run callbacks at a clock below the scan cursor; an
       insert behind the cursor must pull it back or the scan would skip
       the bucket. *)
    if cycle < t.cursor then t.cursor <- cycle
  end
  else heap_push t ev

(* First event of the occupied bucket at [cycle], in (rank, seq) order: the
   chains are rank-split and appended in seq order. *)
let wheel_peek t cycle =
  let base = (cycle land wheel_mask) lsl 2 in
  let rec go r =
    if r = wheel_ranks then nil
    else
      let h = t.heads.(base lor r) in
      if h != nil then h else go (r + 1)
  in
  go 0

let wheel_take t ev =
  let i = ((ev.cycle land wheel_mask) lsl 2) lor ev.rank in
  let n = ev.next in
  t.heads.(i) <- n;
  if n == nil then t.tails.(i) <- nil;
  t.counts.(ev.cycle land wheel_mask) <- t.counts.(ev.cycle land wheel_mask) - 1;
  t.wcount <- t.wcount - 1

(* Globally next event, or [nil]: the earlier of the wheel's next occupied
   bucket and the heap top under (cycle, rank, seq). *)
let pop t =
  let wev =
    if t.wcount = 0 then nil
    else begin
      if t.cursor < t.clock then t.cursor <- t.clock;
      let rec scan c =
        if t.counts.(c land wheel_mask) > 0 then begin
          t.cursor <- c;
          wheel_peek t c
        end
        else scan (c + 1)
      in
      scan t.cursor
    end
  in
  if t.hsize = 0 then begin
    if wev != nil then wheel_take t wev;
    wev
  end
  else if wev == nil then heap_pop t
  else begin
    let hev = t.heap.(0) in
    if before wev hev then begin
      wheel_take t wev;
      wev
    end
    else heap_pop t
  end

let run_steps t n =
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < n do
    let ev = pop t in
    if ev == nil then continue := false
    else begin
      if ev.cycle > t.clock then begin
        t.clock <- ev.cycle;
        t.on_advance t.clock
      end;
      ev.fn ();
      incr steps
    end
  done;
  !steps

let run t = ignore (run_steps t max_int)

let pending t = t.wcount + t.hsize

(* ---- processes ---- *)

type _ Effect.t += Suspend : t * ((unit -> unit) -> unit) -> unit Effect.t

let spawn t ~at:cycle body =
  at t ~cycle (fun () ->
      Effect.Deep.match_with body ()
        {
          retc = Fun.id;
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Suspend (owner, register) when owner == t ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      register (fun () -> Effect.Deep.continue k ()))
              | _ -> None);
        })

let suspend t register = Effect.perform (Suspend (t, register))

let wait_until t ~cycle =
  if cycle > t.clock then suspend t (fun resume -> at t ~cycle resume)

let wait t n = if n > 0 then wait_until t ~cycle:(t.clock + n)
