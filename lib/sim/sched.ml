type event = { cycle : int; rank : int; seq : int; fn : unit -> unit }

type t = {
  mutable heap : event array;  (* binary min-heap on (cycle, rank, seq) *)
  mutable size : int;
  mutable seq : int;
  mutable clock : int;
  on_advance : int -> unit;
}

let dummy = { cycle = 0; rank = 0; seq = 0; fn = ignore }

let create ?(on_advance = ignore) () =
  { heap = Array.make 64 dummy; size = 0; seq = 0; clock = 0; on_advance }

let now t = t.clock

let rank_arbitrate = 1

let before a b =
  a.cycle < b.cycle
  || (a.cycle = b.cycle
      && (a.rank < b.rank || (a.rank = b.rank && a.seq < b.seq)))

let swap h i j =
  let tmp = h.(i) in
  h.(i) <- h.(j);
  h.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.(i) h.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h size i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < size && before h.(l) h.(!smallest) then smallest := l;
  if r < size && before h.(r) h.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h size !smallest
  end

let at t ~cycle ?(rank = 0) fn =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  let cycle = max cycle t.clock in
  t.heap.(t.size) <- { cycle; rank; seq = t.seq; fn };
  t.seq <- t.seq + 1;
  t.size <- t.size + 1;
  sift_up t.heap (t.size - 1)

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  sift_down t.heap t.size 0;
  top

let run_steps t n =
  let steps = ref 0 in
  while t.size > 0 && !steps < n do
    let ev = pop t in
    if ev.cycle > t.clock then begin
      t.clock <- ev.cycle;
      t.on_advance t.clock
    end;
    ev.fn ();
    incr steps
  done;
  !steps

let run t = ignore (run_steps t max_int)

let pending t = t.size

(* ---- processes ---- *)

type _ Effect.t += Suspend : t * ((unit -> unit) -> unit) -> unit Effect.t

let spawn t ~at:cycle body =
  at t ~cycle (fun () ->
      Effect.Deep.match_with body ()
        {
          retc = Fun.id;
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Suspend (owner, register) when owner == t ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      register (fun () -> Effect.Deep.continue k ()))
              | _ -> None);
        })

let suspend t register = Effect.perform (Suspend (t, register))

let wait_until t ~cycle =
  if cycle > t.clock then suspend t (fun resume -> at t ~cycle resume)

let wait t n = if n > 0 then wait_until t ~cycle:(t.clock + n)
