(** Deterministic discrete-event scheduler with resumable processes.

    The simulation core behind the event-driven engine: a min-heap of
    [(cycle, rank, seq)]-ordered events with stable tie-breaking, plus a
    coroutine layer (OCaml effects) so a model — an accelerator datapath, a
    DMA flow — can be written as straight-line code that suspends at each
    point where simulated time must pass.

    Determinism: two events at the same cycle and rank run in the order they
    were scheduled ([seq] is a monotone counter).  [rank] orders event
    classes within a cycle — requesters schedule at rank 0 and the bus
    arbiter at rank {!rank_arbitrate}, so an arbitration decision at cycle
    [c] always sees every request submitted at cycle [c], regardless of heap
    insertion order.  Nothing in the scheduler depends on wall-clock time,
    hashing order or GC behavior. *)

type t

val create : ?on_advance:(int -> unit) -> unit -> t
(** [on_advance] is invoked whenever the current cycle moves forward, with
    the new cycle — the hook the SoC layer uses to keep the observability
    clock in lock-step with simulated time.  It is never called backwards. *)

val now : t -> int
(** The current simulated cycle (0 before any event has run). *)

val rank_arbitrate : int
(** Rank used by arbiters: within one cycle, after every rank-0 event. *)

val at : t -> cycle:int -> ?rank:int -> (unit -> unit) -> unit
(** Schedule [fn] at [cycle] (clamped to [now] if already past).  [rank]
    defaults to 0. *)

val run : t -> unit
(** Drain the heap: repeatedly pop the least [(cycle, rank, seq)] event and
    run it, advancing [now].  Returns when no events remain.  Suspended
    processes whose resumption was never scheduled are simply left
    suspended — callers should check their own completion flags. *)

val run_steps : t -> int -> int
(** [run_steps t n] is {!run} bounded to at most [n] events; returns the
    number actually run (< [n] only when the heap drained).  The
    schedule-control hook of the bounded-exhaustive verifier ([lib/verify]):
    an explored interleaving is driven under a step budget so a harness bug
    that fails to quiesce surfaces as budget exhaustion with [pending t > 0],
    never as a hung exploration. *)

val pending : t -> int
(** Number of events still in the heap. *)

(** {1 Processes}

    A process is a function run inside an effect handler; within it,
    {!wait}, {!wait_until} and {!suspend} give up control to the scheduler
    and resume later.  These three must only be called from inside a
    process body ([Effect.Unhandled] escapes otherwise).  Exceptions raised
    by a process body propagate out of {!run} at the resumption point, so
    process bodies are expected to handle their own domain errors. *)

val spawn : t -> at:int -> (unit -> unit) -> unit
(** Start a process at cycle [at]. *)

val wait : t -> int -> unit
(** Suspend the calling process for [n] cycles ([n <= 0] is a no-op). *)

val wait_until : t -> cycle:int -> unit
(** Suspend the calling process until [cycle] (no-op if already reached). *)

val suspend : t -> ((unit -> unit) -> unit) -> unit
(** [suspend t register] suspends the calling process and hands [register]
    a resume thunk.  [register] must arrange for the thunk to be called
    exactly once — typically by storing it in a completion callback that a
    later event invokes.  Calling the thunk runs the process immediately,
    at the cycle of the event that called it. *)
