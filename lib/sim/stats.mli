(** Named statistics counters collected during a simulation run, plus the small
    numeric summaries (geometric mean, percentiles) used by the evaluation. *)

type t
(** A mutable bag of named counters. *)

val create : unit -> t

val incr : t -> string -> unit
(** Add one to a counter, creating it at zero if absent. *)

val add : t -> string -> int -> unit
(** Add an arbitrary amount to a counter. *)

val get : t -> string -> int
(** Current value, 0 if the counter was never touched. *)

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)

val merge_into : dst:t -> t -> unit
(** Accumulate every counter of the source into [dst]. *)

val geomean : float list -> float
(** Geometric mean; requires all elements positive; 1.0 on the empty list. *)

val mean : float list -> float
(** Arithmetic mean; 0.0 on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank on the sorted list.
    @raise Invalid_argument on the empty list (a phase that recorded no
    samples must be handled by the caller, not reported as a bogus 0). *)

val percentile_int : float -> int list -> int
(** Same nearest-rank convention on integer samples (cycle latencies), without
    a lossy round-trip through [float].
    @raise Invalid_argument on the empty list. *)

val percentile_int_opt : float -> int list -> int option
(** [None] on the empty list — for report rows over per-group samples where a
    group legitimately recorded nothing (e.g. a tenant that was admitted no
    requests) and must render as a documented zero-request row rather than
    raise mid-report. *)
