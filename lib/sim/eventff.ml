(* Process-global policy for the event-engine fast-forward layers.

   Mirrors Soc.Fastpath's mode cell: [On] lets the event core drive scripted
   tasks through direct callbacks and lets the arbiter leap periodic steady
   state, [Off] forces the coroutine single-step path (the differential
   oracle's ground truth), and [Diff] makes the run layer execute both legs
   and [failwith] on any structural divergence.  The cell is read once per
   run when the legs are chosen — never inside the hot loop — so a Diff run
   can hold the mode fixed while its two legs disagree about [ff]. *)

type mode = On | Off | Diff

let mode_cell = Atomic.make On

let set_mode m = Atomic.set mode_cell m
let current_mode () = Atomic.get mode_cell

let mode_to_string = function On -> "on" | Off -> "off" | Diff -> "diff"

let mode_of_string = function
  | "on" -> Some On
  | "off" -> Some Off
  | "diff" | "differential" -> Some Diff
  | _ -> None
