type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 32

let find_or_create t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let incr t name = Stdlib.incr (find_or_create t name)

let add t name n =
  let r = find_or_create t name in
  r := !r + n

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into ~dst src = Hashtbl.iter (fun k r -> add dst k !r) src

let geomean = function
  | [] -> 1.0
  | xs ->
      let n = float_of_int (List.length xs) in
      let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
      exp (log_sum /. n)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* One nearest-rank implementation shared by the float and int front-ends:
   sort once into an array and index directly, instead of the old
   sort-a-list-then-List.nth pair of copies (O(n) per query after the sort). *)
let nearest_rank ~what p xs =
  if xs = [] then invalid_arg (Printf.sprintf "Stats.%s: empty sample list" what);
  let sorted = Array.of_list xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let percentile p xs = nearest_rank ~what:"percentile" p xs

let percentile_int p xs = nearest_rank ~what:"percentile_int" p xs

let percentile_int_opt p xs =
  if xs = [] then None else Some (percentile_int p xs)
