type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 32

let find_or_create t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let incr t name = Stdlib.incr (find_or_create t name)

let add t name n =
  let r = find_or_create t name in
  r := !r + n

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into ~dst src = Hashtbl.iter (fun k r -> add dst k !r) src

let geomean = function
  | [] -> 1.0
  | xs ->
      let n = float_of_int (List.length xs) in
      let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
      exp (log_sum /. n)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty sample list";
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  let rank = int_of_float (ceil (p *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  List.nth sorted idx

let percentile_int p xs =
  if xs = [] then invalid_arg "Stats.percentile_int: empty sample list";
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  let rank = int_of_float (ceil (p *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  List.nth sorted idx

let percentile_int_opt p xs =
  if xs = [] then None else Some (percentile_int p xs)
