(** Process-global mode for the event-engine steady-state fast-forward.

    [On] (the default) lets {!Soc.Run}'s event compute phase drive scripted
    constant-latency tasks through direct arbiter callbacks instead of
    effect-based coroutines, and lets {!Bus.Arbiter} leap periodic steady
    state; every reported cycle is identical to the [Off] leg by
    construction, and the differential suite plus the [Diff] mode pin it.

    [Off] forces the coroutine single-step path — the oracle.

    [Diff] makes the run layer execute both legs against fresh systems and
    [failwith] on any divergence in the complete result record. *)

type mode = On | Off | Diff

val set_mode : mode -> unit
val current_mode : unit -> mode

val mode_to_string : mode -> string
(** ["on"], ["off"], ["diff"] — the [--event-ff] CLI spellings. *)

val mode_of_string : string -> mode option
