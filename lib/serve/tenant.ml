type state = Pending | Active | Departed

type t = {
  id : int;
  task_key : int;
  mutable state : state;
  mutable epoch : int;
  mutable root_resident : bool;
  mutable last_active : int;
  mutable inflight : int;
  mutable peak_inflight : int;
  mutable admitted : int;
  mutable completed : int;
  mutable rejected : int;
  mutable cancelled : int;
  mutable cpu_fallbacks : int;
  mutable root_installs : int;
  mutable latencies : int list;
}

type registry = t array

let make_registry ~tenants ~instances =
  Array.init tenants (fun id ->
      {
        id;
        task_key = instances + id;
        state = Pending;
        epoch = 0;
        root_resident = false;
        last_active = 0;
        inflight = 0;
        peak_inflight = 0;
        admitted = 0;
        completed = 0;
        rejected = 0;
        cancelled = 0;
        cpu_fallbacks = 0;
        root_installs = 0;
        latencies = [];
      })

let record_latency t lat =
  t.completed <- t.completed + 1;
  t.latencies <- lat :: t.latencies

let teardown checker t =
  let evicted = Capchecker.Checker.evict_task checker ~task:t.task_key in
  t.root_resident <- false;
  t.epoch <- t.epoch + 1;
  t.state <- Departed;
  evicted
