(** The service-mode report: per-tenant tail latency, admission outcomes and
    checker-table pressure for one long-horizon run.

    Everything in the report is an integer or a string, and every collection
    is emitted in a fixed order (tenant id order; metric name order), so
    {!to_string} is byte-identical across repeat runs of a seed and across
    [--jobs] values — the property the CI serve-determinism gate diffs. *)

type totals = {
  t_requests : int;          (** offered requests *)
  t_admitted : int;
  t_completed : int;
  t_rejected_gone : int;     (** tenant absent or departed *)
  t_rejected_inflight : int; (** per-tenant in-flight bound *)
  t_rejected_table : int;    (** table-occupancy watermark *)
  t_cancelled : int;         (** admitted, then voided by tenant departure *)
  t_cpu_fallbacks : int;     (** admitted requests served on the CPU *)
  t_root_installs : int;     (** compartment-root capability installs *)
  t_root_reinstalls : int;   (** installs after a pressure eviction *)
  t_root_evictions : int;    (** roots evicted to make room (thrash) *)
  t_root_stalls : int;       (** installs abandoned: no evictable victim *)
  t_arrived : int;
  t_departed : int;          (** tenants torn down mid-run (churn) *)
}

type tenant_row = {
  tr_id : int;
  tr_admitted : int;
  tr_completed : int;
  tr_rejected : int;
  tr_cancelled : int;
  tr_cpu : int;
  tr_departed : bool;
  tr_epoch : int;
  tr_p50 : int;  (** 0 on a zero-completion tenant (documented zero row) *)
  tr_p99 : int;
  tr_max : int;
}

type t = {
  rp_config : string;
  rp_seed : int;
  rp_tenants : int;
  rp_requests : int;
  rp_instances : int;
  rp_cc_entries : int;
  rp_gap : int;       (** effective mean inter-arrival gap (cycles) *)
  rp_makespan : int;  (** cycle the last event retired *)
  rp_totals : totals;
  rp_table : Capchecker.Table.stats;
  rp_p50 : int;       (** latency percentiles over all completed requests *)
  rp_p99 : int;
  rp_max : int;
  rp_rows : tenant_row list;  (** tenant id order *)
  rp_metrics : (string * int) list;  (** metric counters, name order *)
}

val pct_or_zero : float -> int list -> int
(** {!Ccsim.Stats.percentile_int_opt} with the documented zero default. *)

val row_of_tenant : Tenant.t -> tenant_row
(** Percentiles via {!Ccsim.Stats.percentile_int_opt}: a tenant that
    completed nothing gets an all-zero latency row, never an exception. *)

val thrash : t -> int
(** Eviction thrash: table conflicts + compartment-root evictions — the
    headline pressure signal as tenant count sweeps past table capacity. *)

val to_json : t -> Obs.Json.t
val to_string : t -> string
(** Compact JSON ([serve-report/1] schema). *)

val to_table : ?top:int -> t -> string
(** Human-readable summary plus the [top] (default 10) tenants ranked by p99
    latency (ties broken by lower id). *)
