(** Tenant compartments and their lifecycle.

    Each tenant is its own protection compartment: its capability roots live
    in the checker {!Capchecker.Table} under a private task key (disjoint
    from the accelerator-instance keys the driver uses), and it carries its
    own revocation epoch — bumped whenever the compartment's capabilities are
    revoked wholesale, so a stale delegation from a previous epoch can never
    be confused with a live one.  Departure is single-step: one
    {!teardown} revokes every table entry of the compartment and retires the
    tenant atomically with respect to the service loop's timeline. *)

type state =
  | Pending   (** known to the workload, not yet arrived *)
  | Active
  | Departed  (** compartment torn down; all further requests are [Gone] *)

type t = {
  id : int;
  task_key : int;
      (** checker-table task key of this compartment's roots; allocated above
          the accelerator-instance id range so driver entries and tenant
          roots can never collide *)
  mutable state : state;
  mutable epoch : int;  (** revocation epoch, bumped by {!teardown} *)
  mutable root_resident : bool;
      (** whether the compartment root capability currently occupies a table
          slot (it can be evicted under pressure and lazily reinstalled) *)
  mutable last_active : int;  (** cycle of the last admitted request *)
  mutable inflight : int;
  mutable peak_inflight : int;
  mutable admitted : int;
  mutable completed : int;
  mutable rejected : int;
  mutable cancelled : int;  (** admitted requests voided by departure *)
  mutable cpu_fallbacks : int;
  mutable root_installs : int;
  mutable latencies : int list;  (** completed-request latencies, newest first *)
}

type registry = t array
(** Indexed by tenant id; a plain array so every iteration order is the id
    order (no hash-table nondeterminism). *)

val make_registry : tenants:int -> instances:int -> registry
(** Tenant [i] gets [task_key = instances + i]. *)

val record_latency : t -> int -> unit

val teardown : Capchecker.Checker.t -> t -> int
(** Revoke the compartment: evict every checker-table entry keyed by
    [task_key], clear [root_resident], bump [epoch], mark [Departed].
    Returns the number of entries evicted.  Idempotent on an already-departed
    tenant (the table holds nothing keyed to it). *)
