module Sched = Ccsim.Sched
module Checker = Capchecker.Checker
module Table = Capchecker.Table

type params = {
  sv_config : Soc.Config.t;
  sv_instances : int;
  sv_cc_entries : int;
  sv_topology : Bus.Topology.kind;
  sv_checkers : Capchecker.Shim.checking;
  sv_policy : Admission.policy;
  sv_workload : Workload.params;
  sv_util_pct : int;
  sv_jobs : int;
  sv_check_invariants : bool;
}

let default_params ?(seed = 1) ~tenants ~requests () =
  {
    sv_config = Soc.Config.ccpu_caccel;
    sv_instances = 8;
    sv_cc_entries = 256;
    sv_topology = Bus.Topology.Shared;
    sv_checkers = Capchecker.Shim.Central;
    sv_policy = Admission.default ~instances:8;
    sv_workload =
      {
        Workload.tenants;
        requests;
        seed;
        mean_gap = 0;
        ramp = 0;
        churn_pct = 10;
        mix = Workload.default_mix;
        scales = Workload.default_scales;
      };
    sv_util_pct = 80;
    sv_jobs = 1;
    sv_check_invariants = false;
  }

(* Kernel profiles are pure functions of (config, topology, checker
   placement, benchmark): memoized process-wide so a sweep or a test suite
   profiles each kernel once.  The cache is filled on the calling domain
   after the pool barrier, so pool jobs never touch it. *)
let profile_cache : (string * string, Soc.Run.service_profile) Hashtbl.t =
  Hashtbl.create 16

let profiles_for ~jobs ~topology ~checkers config names =
  let label =
    Printf.sprintf "%s/%s/%s"
      (Soc.Config.label config)
      (Bus.Topology.kind_to_string topology)
      (Capchecker.Shim.checking_to_string checkers)
  in
  let missing =
    List.filter (fun n -> not (Hashtbl.mem profile_cache (label, n))) names
  in
  let fresh =
    Ccsim.Pool.map ~jobs
      (fun n ->
        ( n,
          Soc.Run.service_profile ~topology ~checkers config
            (Machsuite.Registry.find n) ))
      missing
  in
  List.iter (fun (n, p) -> Hashtbl.replace profile_cache (label, n) p) fresh;
  List.map (fun n -> (n, Hashtbl.find profile_cache (label, n))) names

(* Mean uncontended service time of the mix (integer arithmetic only), used
   to derive the open-loop gap hitting [util_pct] accelerator utilization. *)
let mean_service_cycles profiles (wl : Workload.params) =
  let wsum l = List.fold_left (fun acc (_, w) -> acc + w) 0 l in
  (* E[scale] kept as a ratio and divided last — truncating it to an int
     would understate the offered load by up to 2x and push the derived gap
     past saturation. *)
  let scale_num =
    List.fold_left (fun acc (s, w) -> acc + (s * w)) 0 wl.scales
  in
  let scale_den = wsum wl.scales in
  let num =
    List.fold_left
      (fun acc (name, w) ->
        let p = List.assoc name profiles in
        acc
        + w
          * (p.Soc.Run.sv_alloc
            + ((p.Soc.Run.sv_init + p.Soc.Run.sv_compute) * scale_num
              / scale_den)
            + p.Soc.Run.sv_teardown))
      0 wl.mix
  in
  max 1 (num / wsum wl.mix)

(* One in-flight request. *)
type rq = {
  rq_tenant : int;
  rq_bench : string;
  rq_scale : int;
  rq_arrival : int;
  mutable rq_cancelled : bool;
  mutable rq_handle : Driver.handle option;
  mutable rq_slot : int;  (* accelerator instance while in service, else -1 *)
}

type totals = {
  mutable c_requests : int;
  mutable c_admitted : int;
  mutable c_completed : int;
  mutable c_rejected_gone : int;
  mutable c_rejected_inflight : int;
  mutable c_rejected_table : int;
  mutable c_cancelled : int;
  mutable c_cpu_fallbacks : int;
  mutable c_root_installs : int;
  mutable c_root_reinstalls : int;
  mutable c_root_evictions : int;
  mutable c_root_stalls : int;
  mutable c_arrived : int;
  mutable c_departed : int;
}

let run p =
  let wl0 = p.sv_workload in
  if p.sv_instances <= 0 then invalid_arg "Loop.run: instances must be >= 1";
  if p.sv_util_pct < 1 || p.sv_util_pct > 100 then
    invalid_arg "Loop.run: util_pct outside [1, 100]";
  if p.sv_policy.Admission.max_inflight < 1 then
    invalid_arg "Loop.run: max_inflight must be >= 1";
  (match p.sv_config with
  | Soc.Config.Hetero
      { protection = Soc.Config.Prot_cc_fine | Soc.Config.Prot_cc_coarse; _ }
    ->
      ()
  | _ ->
      invalid_arg
        "Loop.run: service mode needs a CapChecker configuration \
         (ccpu+caccel or ccpu+caccel-coarse)");
  let bench_names = List.sort_uniq compare (List.map fst wl0.Workload.mix) in
  let benches =
    List.map (fun n -> (n, Machsuite.Registry.find n)) bench_names
  in
  let profiles =
    profiles_for ~jobs:p.sv_jobs ~topology:p.sv_topology ~checkers:p.sv_checkers
      p.sv_config bench_names
  in
  let gap =
    if wl0.Workload.mean_gap > 0 then wl0.Workload.mean_gap
    else
      max 1
        (mean_service_cycles profiles wl0
         * 100
         / (p.sv_instances * p.sv_util_pct))
  in
  let ramp =
    if wl0.Workload.ramp > 0 || wl0.Workload.requests = 0 then wl0.Workload.ramp
    else gap * wl0.Workload.requests / 10
  in
  let wl = { wl0 with Workload.mean_gap = gap; ramp } in
  let events = Workload.generate wl in
  let sys =
    Soc.System.create ~instances:p.sv_instances ~cc_entries:p.sv_cc_entries
      p.sv_config
  in
  let checker = Option.get sys.Soc.System.checker in
  let driver = Option.get sys.Soc.System.driver in
  let tbl = Checker.table checker in
  let registry =
    Tenant.make_registry ~tenants:wl.Workload.tenants ~instances:p.sv_instances
  in
  let sched = Sched.create () in
  let metrics = Obs.Metrics.create () in
  let totals =
    {
      c_requests = 0; c_admitted = 0; c_completed = 0; c_rejected_gone = 0;
      c_rejected_inflight = 0; c_rejected_table = 0; c_cancelled = 0;
      c_cpu_fallbacks = 0; c_root_installs = 0; c_root_reinstalls = 0;
      c_root_evictions = 0; c_root_stalls = 0; c_arrived = 0; c_departed = 0;
    }
  in
  let wait_q : rq Queue.t = Queue.create () in
  let cpu_q : rq Queue.t = Queue.create () in
  let cpu_current : rq option ref = ref None in
  let busy_slots = ref 0 in
  let serving : rq option array = Array.make p.sv_instances None in
  let fail fmt = Printf.ksprintf failwith ("Loop.run: invariant: " ^^ fmt) in
  (* Root install/evict traffic crosses the capability interconnect like any
     other table maintenance; the cycles accumulate here and are charged to
     the next dispatched request — the one whose admission forced the
     churn.  (At realistic kernel service times this is a small correction;
     the counters carry the pressure story.) *)
  let root_install_cycles = Checker.install_cycles sys.Soc.System.bus in
  let root_evict_cycles = Checker.evict_cycles sys.Soc.System.bus in
  let pending_mmio = ref 0 in
  let assert_no_entries ~what ~task =
    if p.sv_check_invariants then
      Table.iter_live tbl (fun e ->
          if e.Table.task = task then
            fail "%s left a live table entry keyed to task %d" what task)
  in
  (* -- compartment-root residency ------------------------------------- *)
  (* The LRU victim among resident roots: idle tenants before busy ones,
     then least recently active, then lowest id — a total order, so the
     choice is deterministic. *)
  let root_victim ?(idle_only = false) ~exclude () =
    let best = ref None in
    Array.iter
      (fun (tn : Tenant.t) ->
        if
          tn.Tenant.root_resident && tn.Tenant.id <> exclude
          && ((not idle_only) || tn.Tenant.inflight = 0)
        then
          let key =
            (tn.Tenant.inflight > 0, tn.Tenant.last_active, tn.Tenant.id)
          in
          match !best with
          | Some (bkey, _) when compare bkey key <= 0 -> ()
          | _ -> best := Some (key, tn))
      registry;
    Option.map snd !best
  in
  let evict_root (tn : Tenant.t) =
    ignore (Checker.evict checker ~task:tn.Tenant.task_key ~obj:0);
    tn.Tenant.root_resident <- false;
    pending_mmio := !pending_mmio + root_evict_cycles;
    totals.c_root_evictions <- totals.c_root_evictions + 1;
    Obs.Metrics.incr metrics "serve.root_evictions"
  in
  let rec ensure_root (tn : Tenant.t) =
    if not tn.Tenant.root_resident then
      match Checker.install checker ~task:tn.Tenant.task_key ~obj:0 Cheri.Cap.root with
      | Table.Installed _ ->
          tn.Tenant.root_resident <- true;
          tn.Tenant.root_installs <- tn.Tenant.root_installs + 1;
          pending_mmio := !pending_mmio + root_install_cycles;
          totals.c_root_installs <- totals.c_root_installs + 1;
          if tn.Tenant.root_installs > 1 then begin
            totals.c_root_reinstalls <- totals.c_root_reinstalls + 1;
            Obs.Metrics.incr metrics "serve.root_reinstalls"
          end
      | Table.Table_full -> (
          match root_victim ~exclude:tn.Tenant.id () with
          | Some v ->
              evict_root v;
              ensure_root tn
          | None ->
              (* Table full of non-root (driver) entries: serve the request
                 anyway; the compartment root returns on a later request. *)
              totals.c_root_stalls <- totals.c_root_stalls + 1)
      | Table.Rejected_untagged ->
          fail "root capability rejected as untagged"
  in
  (* -- completion bookkeeping ----------------------------------------- *)
  let finish (rq : rq) =
    let tn = registry.(rq.rq_tenant) in
    let lat = Sched.now sched - rq.rq_arrival in
    tn.Tenant.inflight <- tn.Tenant.inflight - 1;
    Tenant.record_latency tn lat;
    totals.c_completed <- totals.c_completed + 1;
    Obs.Metrics.observe metrics "serve.latency" lat
  in
  let cancel (rq : rq) =
    rq.rq_cancelled <- true;
    let tn = registry.(rq.rq_tenant) in
    tn.Tenant.inflight <- tn.Tenant.inflight - 1;
    tn.Tenant.cancelled <- tn.Tenant.cancelled + 1;
    totals.c_cancelled <- totals.c_cancelled + 1
  in
  (* -- CPU fallback path (one CPU serving spilled requests in order) --- *)
  let rec pump_cpu () =
    if !cpu_current = None && not (Queue.is_empty cpu_q) then begin
      let rq = Queue.pop cpu_q in
      if rq.rq_cancelled then pump_cpu ()
      else begin
        cpu_current := Some rq;
        let prof = List.assoc rq.rq_bench profiles in
        let busy = prof.Soc.Run.sv_cpu_wall * rq.rq_scale in
        Sched.at sched ~cycle:(Sched.now sched + busy) (fun () ->
            cpu_current := None;
            if not rq.rq_cancelled then finish rq;
            pump_cpu ())
      end
    end
  in
  let route_cpu (rq : rq) =
    let tn = registry.(rq.rq_tenant) in
    tn.Tenant.cpu_fallbacks <- tn.Tenant.cpu_fallbacks + 1;
    totals.c_cpu_fallbacks <- totals.c_cpu_fallbacks + 1;
    Obs.Metrics.incr metrics "serve.cpu_fallbacks";
    Queue.push rq cpu_q;
    pump_cpu ()
  in
  (* -- accelerator path ----------------------------------------------- *)
  let rec try_dispatch () =
    if !busy_slots < p.sv_instances && not (Queue.is_empty wait_q) then begin
      let rq = Queue.pop wait_q in
      if rq.rq_cancelled then try_dispatch ()
      else begin
        dispatch rq;
        try_dispatch ()
      end
    end
  and dispatch (rq : rq) =
    let tn = registry.(rq.rq_tenant) in
    ensure_root tn;
    let bench = List.assoc rq.rq_bench benches in
    let prof = List.assoc rq.rq_bench profiles in
    (* Driver install pressure can also hit Table_full; evict victim roots
       until it fits or no root is left to evict (then spill to the CPU —
       never fail the admitted request). *)
    let rec try_alloc () =
      match Driver.allocate driver bench.Machsuite.Bench_def.kernel with
      | Ok a -> Some a
      | Error _ -> (
          match root_victim ~exclude:(-1) () with
          | Some v ->
              evict_root v;
              try_alloc ()
          | None -> None)
    in
    match try_alloc () with
    | None -> route_cpu rq
    | Some (a : Driver.allocated) ->
        let slot = a.Driver.handle.Driver.task_id in
        rq.rq_handle <- Some a.Driver.handle;
        rq.rq_slot <- slot;
        serving.(slot) <- Some rq;
        incr busy_slots;
        let service =
          a.Driver.cycles + !pending_mmio
          + ((prof.Soc.Run.sv_init + prof.Soc.Run.sv_compute) * rq.rq_scale)
        in
        pending_mmio := 0;
        Obs.Metrics.add metrics "serve.checks"
          (prof.Soc.Run.sv_checks * rq.rq_scale);
        Sched.at sched ~cycle:(Sched.now sched + service) (fun () ->
            complete rq)
  and complete (rq : rq) =
    (* Cancelled in-service requests were rolled back at departure time;
       their stale completion event is a no-op. *)
    if not rq.rq_cancelled then begin
      let h = Option.get rq.rq_handle in
      let report = Driver.deallocate driver h ~denied:None in
      assert_no_entries ~what:"request teardown" ~task:h.Driver.task_id;
      rq.rq_handle <- None;
      serving.(rq.rq_slot) <- None;
      rq.rq_slot <- -1;
      (* The slot stays gated while the CPU runs the teardown sequence; the
         driver itself already freed the instance, which is fine — our gate
         is the stricter one. *)
      Sched.at sched
        ~cycle:(Sched.now sched + report.Driver.cycles)
        (fun () ->
          decr busy_slots;
          finish rq;
          try_dispatch ())
    end
  in
  (* -- tenant departure: one-step compartment revocation --------------- *)
  let rollback (rq : rq) =
    cancel rq;
    match rq.rq_handle with
    | Some h ->
        let _report = Driver.deallocate driver h ~denied:None in
        assert_no_entries ~what:"departure rollback" ~task:h.Driver.task_id;
        rq.rq_handle <- None;
        serving.(rq.rq_slot) <- None;
        rq.rq_slot <- -1;
        decr busy_slots
    | None -> ()
  in
  let depart (tn : Tenant.t) =
    if tn.Tenant.state = Tenant.Active then begin
      (* Reject-first: from this cycle on no new request can be admitted,
         then void everything already admitted, then revoke the compartment
         — teardown is one atomic step on the timeline. *)
      tn.Tenant.state <- Tenant.Departed;
      Queue.iter
        (fun (rq : rq) ->
          if rq.rq_tenant = tn.Tenant.id && not rq.rq_cancelled then cancel rq)
        wait_q;
      Queue.iter
        (fun (rq : rq) ->
          if rq.rq_tenant = tn.Tenant.id && not rq.rq_cancelled then cancel rq)
        cpu_q;
      (match !cpu_current with
      | Some rq when rq.rq_tenant = tn.Tenant.id && not rq.rq_cancelled ->
          cancel rq
      | _ -> ());
      Array.iter
        (function
          | Some (rq : rq) when rq.rq_tenant = tn.Tenant.id -> rollback rq
          | _ -> ())
        serving;
      (* Drop the voided requests from the queues now, so a drained system
         really has empty queues (cancelled entries must not linger). *)
      let purge q =
        let keep = Queue.create () in
        Queue.iter
          (fun (rq : rq) -> if not rq.rq_cancelled then Queue.push rq keep)
          q;
        Queue.clear q;
        Queue.transfer keep q
      in
      purge wait_q;
      purge cpu_q;
      ignore (Tenant.teardown checker tn);
      assert_no_entries ~what:"tenant teardown" ~task:tn.Tenant.task_key;
      totals.c_departed <- totals.c_departed + 1;
      Obs.Metrics.incr metrics "serve.departures";
      try_dispatch ()
    end
    else tn.Tenant.state <- Tenant.Departed
  in
  (* -- request admission ----------------------------------------------- *)
  (* Idle compartment roots are reclaimable cache state, not committed work:
     before the watermark turns traffic away, evict least-recently-active
     idle roots until occupancy is back under it.  Only entries pinned by
     in-flight work (driver entries and busy tenants' roots) can then still
     trip the watermark.  This reclaim — and the reinstall it forces on the
     victim's next request — is the eviction thrash the report measures once
     the tenant population outgrows the table. *)
  let reclaim_for_watermark () =
    let cap = Table.capacity tbl in
    let wm = p.sv_policy.Admission.watermark_pct in
    if wm < 100 then begin
      let making_room = ref true in
      while !making_room && Table.live_count tbl * 100 >= wm * cap do
        match root_victim ~idle_only:true ~exclude:(-1) () with
        | Some v -> evict_root v
        | None -> making_room := false
      done
    end
  in
  let handle_request ~tenant ~bench ~scale =
    totals.c_requests <- totals.c_requests + 1;
    let tn = registry.(tenant) in
    reclaim_for_watermark ();
    match
      Admission.decide p.sv_policy ~table_live:(Table.live_count tbl)
        ~capacity:(Table.capacity tbl) tn
    with
    | Error reason ->
        tn.Tenant.rejected <- tn.Tenant.rejected + 1;
        Obs.Metrics.incr metrics
          ("serve.reject." ^ Admission.reason_label reason);
        (match reason with
        | Admission.Gone ->
            totals.c_rejected_gone <- totals.c_rejected_gone + 1
        | Admission.Inflight ->
            totals.c_rejected_inflight <- totals.c_rejected_inflight + 1
        | Admission.Table ->
            totals.c_rejected_table <- totals.c_rejected_table + 1)
    | Ok () ->
        let now = Sched.now sched in
        tn.Tenant.admitted <- tn.Tenant.admitted + 1;
        tn.Tenant.inflight <- tn.Tenant.inflight + 1;
        if tn.Tenant.inflight > tn.Tenant.peak_inflight then
          tn.Tenant.peak_inflight <- tn.Tenant.inflight;
        if
          p.sv_check_invariants
          && tn.Tenant.inflight > p.sv_policy.Admission.max_inflight
        then fail "tenant %d exceeded max_inflight" tn.Tenant.id;
        tn.Tenant.last_active <- now;
        totals.c_admitted <- totals.c_admitted + 1;
        let rq =
          {
            rq_tenant = tenant; rq_bench = bench; rq_scale = scale;
            rq_arrival = now; rq_cancelled = false; rq_handle = None;
            rq_slot = -1;
          }
        in
        if !busy_slots < p.sv_instances && Queue.is_empty wait_q then
          dispatch rq
        else if Queue.length wait_q >= p.sv_policy.Admission.spill_depth then
          route_cpu rq
        else Queue.push rq wait_q
  in
  (* -- wire the workload onto the timeline and run ---------------------- *)
  List.iter
    (fun { Workload.at; ev } ->
      let rank = Workload.ev_rank ev in
      Sched.at sched ~cycle:at ~rank (fun () ->
          match ev with
          | Workload.Tenant_arrive id ->
              let tn = registry.(id) in
              if tn.Tenant.state = Tenant.Pending then begin
                tn.Tenant.state <- Tenant.Active;
                totals.c_arrived <- totals.c_arrived + 1
              end
          | Workload.Tenant_depart id -> depart registry.(id)
          | Workload.Request { rq = _; tenant; bench; scale } ->
              handle_request ~tenant ~bench ~scale))
    events;
  Sched.run sched;
  let makespan = Sched.now sched in
  if p.sv_check_invariants then begin
    if not (Queue.is_empty wait_q) then fail "wait queue not drained";
    if not (Queue.is_empty cpu_q) then fail "cpu queue not drained";
    if !cpu_current <> None then fail "cpu still busy after drain";
    if !busy_slots <> 0 then fail "%d slots still busy after drain" !busy_slots
  end;
  (* Snapshot per-tenant rows before the final cleanup below, so [departed]
     and [epoch] report mid-run churn, not the end-of-run teardown. *)
  let rows = Array.to_list (Array.map Report.row_of_tenant registry) in
  let all_lats =
    Array.fold_left
      (fun acc (tn : Tenant.t) -> List.rev_append tn.Tenant.latencies acc)
      [] registry
  in
  (* Final teardown: revoke every still-active compartment so the run ends
     with an empty table (departed tenants already hold nothing). *)
  Array.iter
    (fun (tn : Tenant.t) ->
      if tn.Tenant.state <> Tenant.Departed then ignore (Tenant.teardown checker tn))
    registry;
  if p.sv_check_invariants && Table.live_count tbl <> 0 then
    fail "%d live table entries after final teardown" (Table.live_count tbl);
  Checker.observe_table checker ~into:metrics;
  {
    Report.rp_config = Soc.Config.label p.sv_config;
    rp_seed = wl.Workload.seed;
    rp_tenants = wl.Workload.tenants;
    rp_requests = wl.Workload.requests;
    rp_instances = p.sv_instances;
    rp_cc_entries = p.sv_cc_entries;
    rp_gap = gap;
    rp_makespan = makespan;
    rp_totals =
      {
        Report.t_requests = totals.c_requests;
        t_admitted = totals.c_admitted;
        t_completed = totals.c_completed;
        t_rejected_gone = totals.c_rejected_gone;
        t_rejected_inflight = totals.c_rejected_inflight;
        t_rejected_table = totals.c_rejected_table;
        t_cancelled = totals.c_cancelled;
        t_cpu_fallbacks = totals.c_cpu_fallbacks;
        t_root_installs = totals.c_root_installs;
        t_root_reinstalls = totals.c_root_reinstalls;
        t_root_evictions = totals.c_root_evictions;
        t_root_stalls = totals.c_root_stalls;
        t_arrived = totals.c_arrived;
        t_departed = totals.c_departed;
      };
    rp_table = Checker.table_stats checker;
    rp_p50 = Report.pct_or_zero 0.5 all_lats;
    rp_p99 = Report.pct_or_zero 0.99 all_lats;
    rp_max = List.fold_left max 0 all_lats;
    rp_rows = rows;
    rp_metrics = Obs.Metrics.counters metrics;
  }
