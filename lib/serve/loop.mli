(** The long-horizon service loop: accelerator-as-a-service on the event
    engine.

    One {!Ccsim.Sched} timeline carries the whole run: workload events
    (tenant arrivals/departures, requests) fire at their scheduled cycles;
    admitted requests occupy a real accelerator instance through the real
    {!Driver} (capability installs, MMIO programming and teardown all hit
    the live checker {!Capchecker.Table}), while the kernel's init/compute
    cycles come from a per-kernel {!Soc.Run.service_profile} measured once up
    front — so a 10^4-request horizon performs 10^4 real protection-state
    transitions without re-executing 10^4 kernels.

    Each tenant is a compartment: a root capability keyed by the tenant's
    private task key is (lazily) resident in the table while the tenant is
    served, competing for slots with the driver's per-request entries.  When
    the table is full, the least-recently-active idle tenant's root is
    evicted and later reinstalled — the eviction-thrash mechanism the report
    measures.  Tenant departure is one atomic step on the timeline: queued
    and in-service requests are cancelled and their driver allocations rolled
    back, then [evict_task] revokes every table entry of the compartment and
    bumps its epoch ({!Tenant.teardown}) — no dangling entries survive.

    Determinism: the loop itself is strictly serial on the scheduler.
    [jobs] parallelizes only the up-front kernel profiling (on
    {!Ccsim.Pool}, index-deterministic), so the report is byte-identical at
    every [jobs] value and across repeat runs of a seed. *)

type params = {
  sv_config : Soc.Config.t;  (** must carry a CapChecker (Fine or Coarse) *)
  sv_instances : int;
  sv_cc_entries : int;
  sv_topology : Bus.Topology.kind;
      (** interconnect shape of the profiled systems (default [Shared]) *)
  sv_checkers : Capchecker.Shim.checking;
      (** checking placement of the profiled systems (default [Central]) *)
  sv_policy : Admission.policy;
  sv_workload : Workload.params;
      (** [mean_gap = 0] derives the gap from the profiled mean service time
          at {!params.sv_util_pct} target utilization; [ramp = 0] with
          requests present auto-ramps over the first ~10% of the horizon *)
  sv_util_pct : int;   (** target accelerator utilization for the auto gap *)
  sv_jobs : int;       (** profiling parallelism ({!Ccsim.Pool} semantics) *)
  sv_check_invariants : bool;
      (** assert isolation/occupancy invariants as the run progresses: no
          live table entry keyed to an instance after its teardown, no entry
          keyed to a departed tenant, empty queues and zero live entries at
          the end.  Cheap enough for tests; off for sweeps. *)
}

val default_params : ?seed:int -> tenants:int -> requests:int -> unit -> params
(** [ccpu_caccel], 8 instances, 256 entries, shared topology with central
    checking, {!Admission.default}, the default workload mix with 10% churn,
    auto gap at 80% utilization, serial profiling, invariants off. *)

val run : params -> Report.t
(** @raise Invalid_argument if the config has no CapChecker or a parameter
    is out of range; raises [Not_found] if the mix names an unknown
    benchmark. *)
