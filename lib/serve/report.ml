type totals = {
  t_requests : int;
  t_admitted : int;
  t_completed : int;
  t_rejected_gone : int;
  t_rejected_inflight : int;
  t_rejected_table : int;
  t_cancelled : int;
  t_cpu_fallbacks : int;
  t_root_installs : int;
  t_root_reinstalls : int;
  t_root_evictions : int;
  t_root_stalls : int;
  t_arrived : int;
  t_departed : int;
}

type tenant_row = {
  tr_id : int;
  tr_admitted : int;
  tr_completed : int;
  tr_rejected : int;
  tr_cancelled : int;
  tr_cpu : int;
  tr_departed : bool;
  tr_epoch : int;
  tr_p50 : int;
  tr_p99 : int;
  tr_max : int;
}

type t = {
  rp_config : string;
  rp_seed : int;
  rp_tenants : int;
  rp_requests : int;
  rp_instances : int;
  rp_cc_entries : int;
  rp_gap : int;
  rp_makespan : int;
  rp_totals : totals;
  rp_table : Capchecker.Table.stats;
  rp_p50 : int;
  rp_p99 : int;
  rp_max : int;
  rp_rows : tenant_row list;
  rp_metrics : (string * int) list;
}

let pct_or_zero p xs =
  match Ccsim.Stats.percentile_int_opt p xs with Some v -> v | None -> 0

let row_of_tenant (tn : Tenant.t) =
  let lats = tn.Tenant.latencies in
  {
    tr_id = tn.Tenant.id;
    tr_admitted = tn.Tenant.admitted;
    tr_completed = tn.Tenant.completed;
    tr_rejected = tn.Tenant.rejected;
    tr_cancelled = tn.Tenant.cancelled;
    tr_cpu = tn.Tenant.cpu_fallbacks;
    tr_departed = tn.Tenant.state = Tenant.Departed;
    tr_epoch = tn.Tenant.epoch;
    tr_p50 = pct_or_zero 0.5 lats;
    tr_p99 = pct_or_zero 0.99 lats;
    tr_max = List.fold_left max 0 lats;
  }

let thrash t =
  t.rp_table.Capchecker.Table.st_conflicts + t.rp_totals.t_root_evictions

let json_of_totals tt =
  Obs.Json.Obj
    [
      ("requests", Obs.Json.Int tt.t_requests);
      ("admitted", Obs.Json.Int tt.t_admitted);
      ("completed", Obs.Json.Int tt.t_completed);
      ("rejected_gone", Obs.Json.Int tt.t_rejected_gone);
      ("rejected_inflight", Obs.Json.Int tt.t_rejected_inflight);
      ("rejected_table", Obs.Json.Int tt.t_rejected_table);
      ("cancelled", Obs.Json.Int tt.t_cancelled);
      ("cpu_fallbacks", Obs.Json.Int tt.t_cpu_fallbacks);
      ("root_installs", Obs.Json.Int tt.t_root_installs);
      ("root_reinstalls", Obs.Json.Int tt.t_root_reinstalls);
      ("root_evictions", Obs.Json.Int tt.t_root_evictions);
      ("root_stalls", Obs.Json.Int tt.t_root_stalls);
      ("arrived", Obs.Json.Int tt.t_arrived);
      ("departed", Obs.Json.Int tt.t_departed);
    ]

let json_of_table (s : Capchecker.Table.stats) =
  Obs.Json.Obj
    [
      ("installs", Obs.Json.Int s.Capchecker.Table.st_installs);
      ("evictions", Obs.Json.Int s.Capchecker.Table.st_evictions);
      ("conflicts", Obs.Json.Int s.Capchecker.Table.st_conflicts);
      ("rejected", Obs.Json.Int s.Capchecker.Table.st_rejected);
      ("live", Obs.Json.Int s.Capchecker.Table.st_live);
      ("peak", Obs.Json.Int s.Capchecker.Table.st_peak);
    ]

let json_of_row r =
  Obs.Json.Obj
    [
      ("id", Obs.Json.Int r.tr_id);
      ("admitted", Obs.Json.Int r.tr_admitted);
      ("completed", Obs.Json.Int r.tr_completed);
      ("rejected", Obs.Json.Int r.tr_rejected);
      ("cancelled", Obs.Json.Int r.tr_cancelled);
      ("cpu", Obs.Json.Int r.tr_cpu);
      ("departed", Obs.Json.Bool r.tr_departed);
      ("epoch", Obs.Json.Int r.tr_epoch);
      ("p50", Obs.Json.Int r.tr_p50);
      ("p99", Obs.Json.Int r.tr_p99);
      ("max", Obs.Json.Int r.tr_max);
    ]

let to_json t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "serve-report/1");
      ("config", Obs.Json.String t.rp_config);
      ("seed", Obs.Json.Int t.rp_seed);
      ("tenants", Obs.Json.Int t.rp_tenants);
      ("requests", Obs.Json.Int t.rp_requests);
      ("instances", Obs.Json.Int t.rp_instances);
      ("cc_entries", Obs.Json.Int t.rp_cc_entries);
      ("gap", Obs.Json.Int t.rp_gap);
      ("makespan", Obs.Json.Int t.rp_makespan);
      ("totals", json_of_totals t.rp_totals);
      ("table", json_of_table t.rp_table);
      ("thrash", Obs.Json.Int (thrash t));
      ( "latency",
        Obs.Json.Obj
          [
            ("p50", Obs.Json.Int t.rp_p50);
            ("p99", Obs.Json.Int t.rp_p99);
            ("max", Obs.Json.Int t.rp_max);
          ] );
      ("per_tenant", Obs.Json.List (List.map json_of_row t.rp_rows));
      ( "metrics",
        Obs.Json.Obj
          (List.map (fun (k, v) -> (k, Obs.Json.Int v)) t.rp_metrics) );
    ]

let to_string t = Obs.Json.to_string (to_json t)

let to_table ?(top = 10) t =
  let b = Buffer.create 1024 in
  let tt = t.rp_totals in
  let s = t.rp_table in
  Buffer.add_string b (Ccsim.Report.section "service report");
  Buffer.add_string b
    (Printf.sprintf
       "config %s  seed %d  tenants %d  requests %d  instances %d  entries %d\n"
       t.rp_config t.rp_seed t.rp_tenants t.rp_requests t.rp_instances
       t.rp_cc_entries);
  Buffer.add_string b
    (Printf.sprintf "gap %d cycles  makespan %d cycles\n" t.rp_gap
       t.rp_makespan);
  Buffer.add_string b
    (Printf.sprintf
       "admitted %d / %d  completed %d  rejected gone/inflight/table \
        %d/%d/%d  cancelled %d  cpu fallbacks %d\n"
       tt.t_admitted tt.t_requests tt.t_completed tt.t_rejected_gone
       tt.t_rejected_inflight tt.t_rejected_table tt.t_cancelled
       tt.t_cpu_fallbacks);
  Buffer.add_string b
    (Printf.sprintf
       "tenants arrived %d  departed %d  root installs %d (reinstalls %d)  \
        root evictions %d  stalls %d\n"
       tt.t_arrived tt.t_departed tt.t_root_installs tt.t_root_reinstalls
       tt.t_root_evictions tt.t_root_stalls);
  Buffer.add_string b
    (Printf.sprintf
       "table installs %d  evictions %d  conflicts %d  live %d  peak %d  \
        thrash %d\n"
       s.Capchecker.Table.st_installs s.Capchecker.Table.st_evictions
       s.Capchecker.Table.st_conflicts s.Capchecker.Table.st_live
       s.Capchecker.Table.st_peak (thrash t));
  Buffer.add_string b
    (Printf.sprintf "latency p50 %d  p99 %d  max %d\n" t.rp_p50 t.rp_p99
       t.rp_max);
  let ranked =
    List.stable_sort
      (fun a b ->
        match compare b.tr_p99 a.tr_p99 with
        | 0 -> compare a.tr_id b.tr_id
        | c -> c)
      t.rp_rows
  in
  let shown = List.filteri (fun i _ -> i < top) ranked in
  let header =
    [ "tenant"; "admitted"; "completed"; "rejected"; "cancelled"; "cpu";
      "epoch"; "p50"; "p99"; "max" ]
  in
  let rows =
    List.map
      (fun r ->
        [
          string_of_int r.tr_id;
          string_of_int r.tr_admitted;
          string_of_int r.tr_completed;
          string_of_int r.tr_rejected;
          string_of_int r.tr_cancelled;
          string_of_int r.tr_cpu;
          string_of_int r.tr_epoch;
          string_of_int r.tr_p50;
          string_of_int r.tr_p99;
          string_of_int r.tr_max;
        ])
      shown
  in
  Buffer.add_string b
    (Printf.sprintf "top %d tenants by p99:\n" (List.length shown));
  Buffer.add_string b (Ccsim.Report.table ~header rows);
  Buffer.contents b
