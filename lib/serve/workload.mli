(** Deterministic open-loop workload generation for the service mode.

    A workload is a fully materialized, time-sorted event schedule — tenant
    arrivals, tenant departures, and requests — drawn from one seeded
    {!Ccsim.Rng}.  Open-loop means request arrival times are independent of
    service completions: a slow system falls behind and queues, it does not
    slow the offered load, which is what makes tail latency a meaningful
    measurement.  The same [params] always generate byte-identical schedules
    ([generate] touches no other source of randomness), so every serve run is
    replayable from its seed alone. *)

type params = {
  tenants : int;      (** number of tenant compartments (>= 1) *)
  requests : int;     (** total requests offered over the horizon (>= 0) *)
  seed : int;         (** RNG seed; the sole source of randomness *)
  mean_gap : int;
      (** mean request inter-arrival gap in cycles; gaps are uniform in
          [[1, 2*mean_gap - 1]].  Must be >= 1 (the service loop computes a
          utilization-derived default before generating). *)
  ramp : int;
      (** tenant arrival times are uniform in [[0, ramp]]; 0 = all tenants
          present from cycle 0 *)
  churn_pct : int;
      (** percentage of tenants (0-100) that depart before the horizon,
          tearing their compartment down mid-run *)
  mix : (string * int) list;
      (** weighted kernel mix: (benchmark name, positive weight) *)
  scales : (int * int) list;
      (** weighted request sizes: (scale factor, positive weight); a request
          of scale [s] costs [s] times the profiled kernel service time *)
}

type ev =
  | Tenant_arrive of int
  | Tenant_depart of int
  | Request of { rq : int; tenant : int; bench : string; scale : int }

type timed = { at : int; ev : ev }

val default_mix : (string * int) list
(** [aes 3, kmp 2, sort_merge 2, spmv_crs 1] — small kernels so profiling
    stays cheap at any request count. *)

val default_scales : (int * int) list
(** [1 x4, 2 x2, 4 x1]. *)

val ev_rank : ev -> int
(** Same-cycle ordering: arrivals (0) before requests (1) before
    departures (2), so a tenant arriving, requesting and departing on one
    cycle behaves sensibly. *)

val generate : params -> timed list
(** The full schedule sorted by [(at, ev_rank)], draw order breaking ties.
    A request may target a tenant that has not yet arrived or has already
    departed — admission rejects it ([Gone]), modelling traffic for an
    unknown tenant.  @raise Invalid_argument on non-positive [tenants],
    negative [requests], [mean_gap < 1], [churn_pct] outside [0,100], or an
    empty / non-positively-weighted [mix] or [scales]. *)
