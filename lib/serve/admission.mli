(** The admission controller.

    Open-loop traffic cannot be slowed down, so overload protection happens
    here: a request is admitted only if its tenant is live, the tenant's
    in-flight bound has room, and the checker table is below the occupancy
    watermark.  Rejections are cheap and explicit — the report counts them
    per reason — which keeps the service loop's queues bounded and the tail
    latency of admitted requests meaningful. *)

type policy = {
  max_inflight : int;
      (** per-tenant bound on concurrently admitted requests (>= 1) *)
  watermark_pct : int;
      (** admit only while table occupancy is strictly below this percentage
          of capacity (0-100); 100 disables the watermark *)
  spill_depth : int;
      (** accelerator wait-queue depth beyond which an admitted request is
          routed to the CPU instead of queued (>= 0) *)
}

type reason =
  | Gone      (** tenant not (yet / any longer) active *)
  | Inflight  (** per-tenant in-flight bound reached *)
  | Table     (** checker-table occupancy at or above the watermark *)

val reason_label : reason -> string
(** ["gone"] / ["inflight"] / ["table"] — report and metrics keys. *)

val default : instances:int -> policy
(** [max_inflight = 4], [watermark_pct = 90], [spill_depth = 2*instances]. *)

val decide :
  policy -> table_live:int -> capacity:int -> Tenant.t -> (unit, reason) result
(** Pure decision — no state is updated here; the loop applies the
    bookkeeping so the decision can be unit-tested in isolation. *)
