type policy = { max_inflight : int; watermark_pct : int; spill_depth : int }

type reason = Gone | Inflight | Table

let reason_label = function
  | Gone -> "gone"
  | Inflight -> "inflight"
  | Table -> "table"

let default ~instances =
  { max_inflight = 4; watermark_pct = 90; spill_depth = 2 * instances }

let decide policy ~table_live ~capacity (tn : Tenant.t) =
  if tn.Tenant.state <> Tenant.Active then Error Gone
  else if tn.Tenant.inflight >= policy.max_inflight then Error Inflight
  else if
    policy.watermark_pct < 100
    && table_live * 100 >= policy.watermark_pct * capacity
  then Error Table
  else Ok ()
