type params = {
  tenants : int;
  requests : int;
  seed : int;
  mean_gap : int;
  ramp : int;
  churn_pct : int;
  mix : (string * int) list;
  scales : (int * int) list;
}

type ev =
  | Tenant_arrive of int
  | Tenant_depart of int
  | Request of { rq : int; tenant : int; bench : string; scale : int }

type timed = { at : int; ev : ev }

let default_mix = [ ("aes", 3); ("kmp", 2); ("sort_merge", 2); ("spmv_crs", 1) ]
let default_scales = [ (1, 4); (2, 2); (4, 1) ]

let ev_rank = function
  | Tenant_arrive _ -> 0
  | Request _ -> 1
  | Tenant_depart _ -> 2

let validate p =
  if p.tenants <= 0 then invalid_arg "Workload.generate: tenants must be >= 1";
  if p.requests < 0 then invalid_arg "Workload.generate: requests must be >= 0";
  if p.mean_gap < 1 then invalid_arg "Workload.generate: mean_gap must be >= 1";
  if p.churn_pct < 0 || p.churn_pct > 100 then
    invalid_arg "Workload.generate: churn_pct outside [0, 100]";
  let check_weights what = function
    | [] -> invalid_arg (Printf.sprintf "Workload.generate: empty %s" what)
    | ws ->
        if List.exists (fun (_, w) -> w <= 0) ws then
          invalid_arg
            (Printf.sprintf "Workload.generate: non-positive weight in %s" what)
  in
  check_weights "mix" p.mix;
  check_weights "scales" p.scales

let pick_weighted r items =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 items in
  let d = Ccsim.Rng.int r total in
  let rec go d = function
    | [] -> assert false
    | (x, w) :: rest -> if d < w then x else go (d - w) rest
  in
  go d items

(* A quarter of requests concentrate on the first [tenants/8] tenants: a
   skewed popularity profile so some compartments stay hot (roots resident)
   while the cold tail churns the table. *)
let heavy_tenants p = max 1 (p.tenants / 8)

let generate p =
  validate p;
  let rng = Ccsim.Rng.create p.seed in
  (* Split order is part of the schedule's definition — changing it changes
     every seed's workload, which the determinism tests would catch. *)
  let r_arrive = Ccsim.Rng.split rng in
  let r_churn = Ccsim.Rng.split rng in
  let r_req = Ccsim.Rng.split rng in
  let arrivals =
    Array.init p.tenants (fun _ ->
        if p.ramp = 0 then 0 else Ccsim.Rng.int r_arrive (p.ramp + 1))
  in
  (* Requests: open-loop arrival process, gap uniform in [1, 2*mean_gap-1]
     (mean = mean_gap); tenant, kernel and scale drawn per request. *)
  let heavy = heavy_tenants p in
  let t = ref 0 in
  let requests =
    List.init p.requests (fun rq ->
        t := !t + 1 + Ccsim.Rng.int r_req (max 1 ((2 * p.mean_gap) - 1));
        let tenant =
          if Ccsim.Rng.int r_req 4 = 0 then Ccsim.Rng.int r_req heavy
          else Ccsim.Rng.int r_req p.tenants
        in
        let bench = pick_weighted r_req p.mix in
        let scale = pick_weighted r_req p.scales in
        { at = !t; ev = Request { rq; tenant; bench; scale } })
  in
  let horizon = !t in
  let departures =
    List.filter_map
      (fun tenant ->
        if Ccsim.Rng.int r_churn 100 < p.churn_pct then
          let arrive = arrivals.(tenant) in
          let span = max 1 (horizon - arrive) in
          Some
            { at = arrive + 1 + Ccsim.Rng.int r_churn span;
              ev = Tenant_depart tenant }
        else None)
      (List.init p.tenants (fun i -> i))
  in
  let arrivals_l =
    List.init p.tenants (fun i -> { at = arrivals.(i); ev = Tenant_arrive i })
  in
  List.stable_sort
    (fun a b ->
      match compare a.at b.at with
      | 0 -> compare (ev_rank a.ev) (ev_rank b.ev)
      | c -> c)
    (arrivals_l @ requests @ departures)
