let buckets = 63

type hist = {
  mutable count : int;
  mutable sum : int;
  mutable max_sample : int;
  counts : int array;  (* length [buckets]; index = bit width of the sample *)
}

type t = { counters : Ccsim.Stats.t; hists : (string, hist) Hashtbl.t }

let create () = { counters = Ccsim.Stats.create (); hists = Hashtbl.create 16 }

let incr t name = Ccsim.Stats.incr t.counters name
let add t name n = Ccsim.Stats.add t.counters name n
let get t name = Ccsim.Stats.get t.counters name
let counters t = Ccsim.Stats.to_list t.counters

(* Bucket k holds values in [2^(k-1), 2^k - 1]; bucket 0 holds exactly 0. *)
let bucket_of v =
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  bits 0 v

let bucket_upper k = if k = 0 then 0 else (1 lsl k) - 1

let find_hist t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = { count = 0; sum = 0; max_sample = 0; counts = Array.make buckets 0 } in
      Hashtbl.add t.hists name h;
      h

let observe t name v =
  let v = max 0 v in
  let h = find_hist t name in
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v > h.max_sample then h.max_sample <- v;
  let b = min (buckets - 1) (bucket_of v) in
  h.counts.(b) <- h.counts.(b) + 1

type hist_summary = {
  count : int;
  sum : int;
  mean : float;
  max_sample : int;
}

let hist_summary t name =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some h ->
      Some
        {
          count = h.count;
          sum = h.sum;
          mean = (if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count);
          max_sample = h.max_sample;
        }

let percentile t name p =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some h when h.count = 0 -> None
  | Some h ->
      (* Same rank convention as Ccsim.Stats.percentile: the sample at sorted
         index [max 0 (ceil (p * n) - 1)]. *)
      let rank = max 1 (int_of_float (ceil (p *. float_of_int h.count))) in
      let rec go b seen =
        if b >= buckets then Some h.max_sample
        else
          let seen = seen + h.counts.(b) in
          if seen >= rank then Some (min (bucket_upper b) h.max_sample)
          else go (b + 1) seen
      in
      go 0 0

let histograms t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.hists [] |> List.sort String.compare

let merge_into ~dst src =
  Ccsim.Stats.merge_into ~dst:dst.counters src.counters;
  Hashtbl.iter
    (fun name (h : hist) ->
      let d = find_hist dst name in
      d.count <- d.count + h.count;
      d.sum <- d.sum + h.sum;
      if h.max_sample > d.max_sample then d.max_sample <- h.max_sample;
      Array.iteri (fun i c -> d.counts.(i) <- d.counts.(i) + c) h.counts)
    src.hists

let of_trace trace =
  let m = create () in
  Trace.iter
    (fun (ev : Event.t) ->
      let key = Event.category ev.data ^ "." ^ Event.name ev.data in
      incr m key;
      match ev.data with
      | Event.Bus_grant { at; granted_at; beats; _ } ->
          observe m "bus.grant_wait" (granted_at - at);
          observe m "bus.grant_beats" beats
      | Event.Check_ok { latency; _ } -> observe m "checker.check_latency" latency
      | Event.Task_phase { dur; _ } -> observe m "task.phase_cycles" dur
      | _ -> ())
    trace;
  add m "trace.dropped" (Trace.dropped trace);
  m

let to_table t =
  let counter_rows =
    List.map (fun (k, v) -> [ k; string_of_int v ]) (counters t)
  in
  let hist_rows =
    List.map
      (fun name ->
        let s = Option.get (hist_summary t name) in
        let pc p =
          match percentile t name p with Some v -> string_of_int v | None -> "-"
        in
        [ name; string_of_int s.count; Ccsim.Report.fixed 1 s.mean;
          pc 0.5; pc 0.9; pc 0.99; string_of_int s.max_sample ])
      (histograms t)
  in
  let parts = ref [] in
  if counter_rows <> [] then
    parts := Ccsim.Report.table ~header:[ "Counter"; "Count" ] counter_rows :: !parts;
  if hist_rows <> [] then
    parts :=
      Ccsim.Report.table
        ~header:[ "Histogram"; "N"; "Mean"; "p50<="; "p90<="; "p99<="; "Max" ]
        hist_rows
      :: !parts;
  String.concat "\n\n" (List.rev !parts)
