(** The typed event vocabulary of the observability layer.

    Each variant corresponds to an observable hardware signal of the paper's
    system: AXI arbitration and data beats on the shared interconnect,
    CapChecker adjudications (table hit / miss / exception flag), capability
    table maintenance over the capability interconnect, driver-side capability
    life-cycle, cache behaviour, MMIO register traffic, and task phase
    boundaries.  Events are pure data — recording one never feeds back into
    simulation state, which is what makes tracing behaviour-neutral. *)

type data =
  | Bus_grant of {
      source : int;      (** interconnect source id (-1 if unattributed) *)
      beats : int;
      read : bool;
      at : int;          (** cycle the request became ready *)
      granted_at : int;  (** cycle the address phase won arbitration *)
      data_done : int;
      completed : int;
    }  (** one transaction winning arbitration on the shared bus *)
  | Bus_beat of { source : int; beats : int }
      (** data beats leaving the bus (bandwidth accounting) *)
  | Cache_hit of { core : int; addr : int }
  | Cache_miss of { core : int; addr : int }
  | Check_ok of { task : int; obj : int; latency : int }
      (** a guard adjudication that granted the access *)
  | Check_table_miss of { task : int; obj : int }
      (** cached CapChecker: entry fetched from the in-memory backing table *)
  | Check_denial of { task : int; obj : int; detail : string }
      (** the exception flag being raised; the access never reaches memory *)
  | Table_insert of { task : int; obj : int; slot : int }
  | Table_evict of { task : int; obj : int; count : int }
      (** [obj = -1] for whole-task evictions of [count] entries *)
  | Cap_import of { task : int; obj : int }
      (** driver shipped a capability into protection hardware *)
  | Cap_revoke of { caps : int; entries : int }
      (** revocation sweep: tags cleared in memory, table entries evicted *)
  | Task_phase of { task : int; phase : string; dur : int }
      (** a phase of a task or run ([task = -1] for whole-run phases) *)
  | Mmio_read of { offset : int }
  | Mmio_write of { offset : int }
  | Fault_injected of { layer : string; kind : string; task : int }
      (** a seeded fault fired at [layer] (["bus"] / ["guard"] / ["driver"]);
          [task = -1] when the fault is not attributable to one task *)
  | Task_retry of { task : int; attempt : int; backoff : int }
      (** the driver retried a faulted allocation or run after [backoff]
          cycles of exponential backoff *)
  | Task_fallback of { task : int; reason : string }
      (** the task exhausted its retry budget and degraded to CPU-only
          execution *)
  | Check_elided of { task : int; count : int }
      (** [count] per-beat adjudications skipped for a task whose footprint
          the static analysis proved within its capability bounds *)

type t = { cycle : int; data : data }

val category : data -> string
(** Component track group: ["bus"], ["cache"], ["checker"], ["table"],
    ["driver"], ["task"], ["mmio"] or ["fault"]. *)

val name : data -> string
(** Short event name, e.g. ["bus_grant"], ["check_denial"]. *)

val track : data -> int
(** Sub-track within the category (instance / task / core id). *)

val duration : data -> int
(** Duration in cycles for span-like events; [0] means an instant event. *)

val args : data -> (string * [ `Int of int | `Str of string ]) list
(** Payload fields for the exporter. *)

val is_denial : data -> bool
