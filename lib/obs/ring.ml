type 'a t = {
  slots : 'a option array;
  mutable next : int;     (* slot the next push writes *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Obs.Ring.create: capacity must be positive";
  { slots = Array.make capacity None; next = 0; len = 0; dropped = 0 }

let capacity t = Array.length t.slots
let length t = t.len
let dropped t = t.dropped
let pushed t = t.len + t.dropped

let push t x =
  let cap = Array.length t.slots in
  t.slots.(t.next) <- Some x;
  t.next <- (t.next + 1) mod cap;
  if t.len < cap then t.len <- t.len + 1 else t.dropped <- t.dropped + 1

let oldest t =
  let cap = Array.length t.slots in
  ((t.next - t.len) mod cap + cap) mod cap

let iter f t =
  let cap = Array.length t.slots in
  let start = oldest t in
  for i = 0 to t.len - 1 do
    match t.slots.((start + i) mod cap) with
    | Some x -> f x
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.next <- 0;
  t.len <- 0;
  t.dropped <- 0
