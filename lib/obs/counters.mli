(** Process-global fast-path visibility counters.

    The compiled-replay and proof-driven fast paths are, by construction,
    invisible in every simulated number; these counters are the only place
    the skips show up (surfaced by [capsim bench] and the differential test
    suite).  Pure telemetry — nothing in the simulator reads them back, so
    bumping them can never perturb a result.  Safe to bump from pool worker
    domains. *)

type t

val segments_replayed : t
(** Compiled trace segments fast-forwarded through the fabric in one jump. *)

val accesses_fast_pathed : t
(** Adjudications skipped because the task was statically proven in bounds
    and the guard declared a pure constant-latency check path. *)

val traces_memoized : t
(** Kernel interpretations avoided by replaying a recorded access script. *)

val runs_memoized : t
(** Whole system runs served from the cross-sweep result cache. *)

val runs_disk_cached : t
(** Whole system runs served from the on-disk cross-process cache. *)

val periods_leaped : t
(** Steady-state arbitration periods advanced in O(1) by the event
    fast-forward's recurrence detector instead of being single-stepped.
    Always 0 for faulted or observed runs (leaping bails on both). *)

val events_coalesced : t
(** Arbitration events never enqueued because a live event at the same cycle
    (or an in-progress leap) makes them provable no-ops. *)

val name : t -> string
val get : t -> int
val add : t -> int -> unit
val incr : t -> unit

val reset : unit -> unit
(** Zero every counter (start of a bench section or test case). *)

val snapshot : unit -> (string * int) list
(** All counters as [(name, value)] pairs, in declaration order. *)
