type t = { mutable clock : int; ring : Event.t Ring.t option }

let null = { clock = 0; ring = None }

let create ?(capacity = 65536) () =
  { clock = 0; ring = Some (Ring.create ~capacity) }

let enabled t = t.ring <> None

let now t = t.clock

let set_now t c = match t.ring with None -> () | Some _ -> if c > t.clock then t.clock <- c

let advance t n = match t.ring with None -> () | Some _ -> if n > 0 then t.clock <- t.clock + n

let emit_at t ~cycle data =
  match t.ring with
  | None -> ()
  | Some r -> Ring.push r { Event.cycle; data }

let emit t data = emit_at t ~cycle:t.clock data

let events t = match t.ring with None -> [] | Some r -> Ring.to_list r

let iter f t = match t.ring with None -> () | Some r -> Ring.iter f r

let length t = match t.ring with None -> 0 | Some r -> Ring.length r
let dropped t = match t.ring with None -> 0 | Some r -> Ring.dropped r
let capacity t = match t.ring with None -> 0 | Some r -> Ring.capacity r

let clear t =
  (match t.ring with None -> () | Some r -> Ring.clear r);
  t.clock <- 0

let merge_into ~into sources =
  match into.ring with
  | None -> ()
  | Some r ->
      List.iter
        (fun src ->
          if src == into then invalid_arg "Obs.Trace.merge_into: source = into";
          (match src.ring with
          | None -> ()
          | Some sr -> Ring.iter (Ring.push r) sr);
          if src.clock > into.clock then into.clock <- src.clock)
        sources
