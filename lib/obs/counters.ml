(* Process-global fast-path visibility counters.

   The compiled-replay and proof-driven fast paths are, by construction,
   invisible in every simulated number — these counters are the only place
   the skips show up.  They are plain telemetry: nothing in the simulator
   reads them back, so bumping them can never perturb a result.  Atomics,
   because bench sections bump them from pool worker domains. *)

type t = { name : string; cell : int Atomic.t }

let make name = { name; cell = Atomic.make 0 }

let segments_replayed = make "segments_replayed"
(* compiled trace segments fast-forwarded through the fabric in one jump *)

let accesses_fast_pathed = make "accesses_fast_pathed"
(* adjudications skipped because the task was statically proven in bounds
   and the guard declared a pure constant-latency check path *)

let traces_memoized = make "traces_memoized"
(* interpretations avoided by replaying a recorded access script *)

let runs_memoized = make "runs_memoized"
(* whole system runs served from the cross-sweep result cache *)

let runs_disk_cached = make "runs_disk_cached"
(* whole system runs served from the on-disk cross-process cache *)

let periods_leaped = make "periods_leaped"
(* steady-state arbitration periods advanced in O(1) by the event
   fast-forward's recurrence detector instead of being single-stepped *)

let events_coalesced = make "events_coalesced"
(* arbitration events never enqueued because a live event at the same cycle
   (or an in-progress leap) makes them provable no-ops *)

let all =
  [ segments_replayed; accesses_fast_pathed; traces_memoized; runs_memoized;
    runs_disk_cached; periods_leaped; events_coalesced ]

let name c = c.name
let get c = Atomic.get c.cell
let add c n = ignore (Atomic.fetch_and_add c.cell n)
let incr c = add c 1
let reset () = List.iter (fun c -> Atomic.set c.cell 0) all
let snapshot () = List.map (fun c -> (c.name, get c)) all
