type data =
  | Bus_grant of {
      source : int;
      beats : int;
      read : bool;
      at : int;
      granted_at : int;
      data_done : int;
      completed : int;
    }
  | Bus_beat of { source : int; beats : int }
  | Cache_hit of { core : int; addr : int }
  | Cache_miss of { core : int; addr : int }
  | Check_ok of { task : int; obj : int; latency : int }
  | Check_table_miss of { task : int; obj : int }
  | Check_denial of { task : int; obj : int; detail : string }
  | Table_insert of { task : int; obj : int; slot : int }
  | Table_evict of { task : int; obj : int; count : int }
  | Cap_import of { task : int; obj : int }
  | Cap_revoke of { caps : int; entries : int }
  | Task_phase of { task : int; phase : string; dur : int }
  | Mmio_read of { offset : int }
  | Mmio_write of { offset : int }
  | Fault_injected of { layer : string; kind : string; task : int }
  | Task_retry of { task : int; attempt : int; backoff : int }
  | Task_fallback of { task : int; reason : string }
  | Check_elided of { task : int; count : int }

type t = { cycle : int; data : data }

let category = function
  | Bus_grant _ | Bus_beat _ -> "bus"
  | Cache_hit _ | Cache_miss _ -> "cache"
  | Check_ok _ | Check_table_miss _ | Check_denial _ | Check_elided _ -> "checker"
  | Table_insert _ | Table_evict _ -> "table"
  | Cap_import _ | Cap_revoke _ -> "driver"
  | Task_phase _ -> "task"
  | Mmio_read _ | Mmio_write _ -> "mmio"
  | Fault_injected _ | Task_retry _ | Task_fallback _ -> "fault"

let name = function
  | Bus_grant _ -> "bus_grant"
  | Bus_beat _ -> "bus_beat"
  | Cache_hit _ -> "cache_hit"
  | Cache_miss _ -> "cache_miss"
  | Check_ok _ -> "check_ok"
  | Check_table_miss _ -> "check_table_miss"
  | Check_denial _ -> "check_denial"
  | Table_insert _ -> "table_insert"
  | Table_evict _ -> "table_evict"
  | Cap_import _ -> "cap_import"
  | Cap_revoke _ -> "cap_revoke"
  | Task_phase _ -> "task_phase"
  | Mmio_read _ -> "mmio_read"
  | Mmio_write _ -> "mmio_write"
  | Fault_injected _ -> "fault_injected"
  | Task_retry _ -> "task_retry"
  | Task_fallback _ -> "task_fallback"
  | Check_elided _ -> "check_elided"

let track = function
  | Bus_grant { source; _ } | Bus_beat { source; _ } -> source
  | Cache_hit { core; _ } | Cache_miss { core; _ } -> core
  | Check_ok { task; _ }
  | Check_table_miss { task; _ }
  | Check_denial { task; _ }
  | Table_insert { task; _ }
  | Table_evict { task; _ }
  | Cap_import { task; _ }
  | Task_phase { task; _ }
  | Fault_injected { task; _ }
  | Task_retry { task; _ }
  | Task_fallback { task; _ }
  | Check_elided { task; _ } ->
      task
  | Cap_revoke _ | Mmio_read _ | Mmio_write _ -> 0

let duration = function
  | Bus_grant { granted_at; data_done; _ } -> max 0 (data_done - granted_at)
  | Task_phase { dur; _ } -> max 0 dur
  | _ -> 0

let args = function
  | Bus_grant { source; beats; read; at; granted_at; data_done; completed } ->
      [ ("source", `Int source); ("beats", `Int beats);
        ("kind", `Str (if read then "read" else "write")); ("at", `Int at);
        ("granted_at", `Int granted_at); ("data_done", `Int data_done);
        ("completed", `Int completed) ]
  | Bus_beat { source; beats } -> [ ("source", `Int source); ("beats", `Int beats) ]
  | Cache_hit { core; addr } | Cache_miss { core; addr } ->
      [ ("core", `Int core); ("addr", `Int addr) ]
  | Check_ok { task; obj; latency } ->
      [ ("task", `Int task); ("obj", `Int obj); ("latency", `Int latency) ]
  | Check_table_miss { task; obj } -> [ ("task", `Int task); ("obj", `Int obj) ]
  | Check_denial { task; obj; detail } ->
      [ ("task", `Int task); ("obj", `Int obj); ("detail", `Str detail) ]
  | Table_insert { task; obj; slot } ->
      [ ("task", `Int task); ("obj", `Int obj); ("slot", `Int slot) ]
  | Table_evict { task; obj; count } ->
      [ ("task", `Int task); ("obj", `Int obj); ("count", `Int count) ]
  | Cap_import { task; obj } -> [ ("task", `Int task); ("obj", `Int obj) ]
  | Cap_revoke { caps; entries } ->
      [ ("caps", `Int caps); ("entries", `Int entries) ]
  | Task_phase { task; phase; dur } ->
      [ ("task", `Int task); ("phase", `Str phase); ("dur", `Int dur) ]
  | Mmio_read { offset } | Mmio_write { offset } -> [ ("offset", `Int offset) ]
  | Fault_injected { layer; kind; task } ->
      [ ("layer", `Str layer); ("kind", `Str kind); ("task", `Int task) ]
  | Task_retry { task; attempt; backoff } ->
      [ ("task", `Int task); ("attempt", `Int attempt); ("backoff", `Int backoff) ]
  | Task_fallback { task; reason } ->
      [ ("task", `Int task); ("reason", `Str reason) ]
  | Check_elided { task; count } ->
      [ ("task", `Int task); ("count", `Int count) ]

let is_denial = function Check_denial _ -> true | _ -> false
