(* pid = component category (in order of first appearance), tid = sub-track.
   Metadata events name both so Perfetto shows "bus", "checker", ... as
   process groups with one row per instance. *)

let assign_tracks trace =
  let pids = Hashtbl.create 8 in
  let pid_order = ref [] in
  let tids = Hashtbl.create 16 in
  Trace.iter
    (fun (ev : Event.t) ->
      let cat = Event.category ev.data in
      let pid =
        match Hashtbl.find_opt pids cat with
        | Some p -> p
        | None ->
            let p = Hashtbl.length pids + 1 in
            Hashtbl.add pids cat p;
            pid_order := (cat, p) :: !pid_order;
            p
      in
      let track = Event.track ev.data in
      if not (Hashtbl.mem tids (pid, track)) then Hashtbl.add tids (pid, track) ())
    trace;
  (List.rev !pid_order, pids, tids)

(* Chrome tids must be non-negative; tracks use -1 for "whole run". *)
let tid_of track = track + 1

let metadata_events pid_order tids =
  let procs =
    List.map
      (fun (cat, pid) ->
        Json.Obj
          [ ("ph", Json.String "M"); ("name", Json.String "process_name");
            ("pid", Json.Int pid); ("tid", Json.Int 0);
            ("args", Json.Obj [ ("name", Json.String cat) ]) ])
      pid_order
  in
  let threads =
    Hashtbl.fold (fun (pid, track) () acc -> (pid, track) :: acc) tids []
    |> List.sort compare
    |> List.map (fun (pid, track) ->
           let label =
             if track < 0 then "run" else Printf.sprintf "track %d" track
           in
           Json.Obj
             [ ("ph", Json.String "M"); ("name", Json.String "thread_name");
               ("pid", Json.Int pid); ("tid", Json.Int (tid_of track));
               ("args", Json.Obj [ ("name", Json.String label) ]) ])
  in
  procs @ threads

let args_json data =
  Json.Obj
    (List.map
       (fun (k, v) ->
         (k, match v with `Int n -> Json.Int n | `Str s -> Json.String s))
       (Event.args data))

let event_json pids (ev : Event.t) =
  let data = ev.data in
  let cat = Event.category data in
  let pid = Hashtbl.find pids cat in
  let base =
    [ ("name", Json.String (Event.name data)); ("cat", Json.String cat);
      ("ts", Json.Int ev.cycle); ("pid", Json.Int pid);
      ("tid", Json.Int (tid_of (Event.track data))) ]
  in
  let shape =
    match Event.duration data with
    | 0 ->
        let scope = if Event.is_denial data then [ ("s", Json.String "g") ] else [] in
        (("ph", Json.String "i") :: scope)
    | dur -> [ ("ph", Json.String "X"); ("dur", Json.Int dur) ]
  in
  Json.Obj (base @ shape @ [ ("args", args_json data) ])

let chrome_json trace =
  let pid_order, pids, tids = assign_tracks trace in
  let events = ref [] in
  Trace.iter (fun ev -> events := event_json pids ev :: !events) trace;
  Json.Obj
    [ ("traceEvents", Json.List (metadata_events pid_order tids @ List.rev !events));
      ("displayTimeUnit", Json.String "ns");
      ("otherData",
       Json.Obj
         [ ("tool", Json.String "capsim");
           ("clock", Json.String "cycles");
           ("droppedEvents", Json.Int (Trace.dropped trace)) ]) ]

let to_chrome_string trace = Json.to_string (chrome_json trace)

let write_chrome ~path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Json.to_buffer buf (chrome_json trace);
      Buffer.output_buffer oc buf;
      output_char oc '\n')

let counts_by f trace =
  let tbl = Hashtbl.create 16 in
  Trace.iter
    (fun (ev : Event.t) ->
      let key = f ev.data in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    trace;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let categories trace = counts_by Event.category trace

let summary trace =
  let rows =
    counts_by (fun d -> (Event.category d, Event.name d)) trace
    |> List.map (fun ((cat, name), count) -> [ cat; name; string_of_int count ])
  in
  let rows =
    rows
    @ [ [ "total"; "(recorded)"; string_of_int (Trace.length trace) ];
        [ "total"; "(dropped)"; string_of_int (Trace.dropped trace) ] ]
  in
  Ccsim.Report.table ~header:[ "Category"; "Event"; "Count" ] rows
