(** A bounded ring buffer that keeps the newest [capacity] elements.

    Pushing into a full ring overwrites the oldest element and increments the
    drop counter — the observability layer's universal answer to unbounded
    growth (event sinks, denial logs).  All operations are O(1) except
    [to_list]/[iter], which are O(length). *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be positive. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Elements currently retained (≤ capacity). *)

val dropped : 'a t -> int
(** Elements overwritten because the ring was full. *)

val pushed : 'a t -> int
(** Total elements ever pushed ([length + dropped]). *)

val push : 'a t -> 'a -> unit

val to_list : 'a t -> 'a list
(** Retained elements, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val clear : 'a t -> unit
(** Empties the ring and resets the drop counter. *)
