(** The event sink threaded through the simulator.

    A sink is either {!null} — the shared always-off sink, to which every
    operation is a no-op, so instrumentation on hot paths costs one pattern
    match — or a recording sink created with {!create}, which keeps the newest
    [capacity] events in a bounded ring ({!Ring}) and counts what it dropped.

    Tracing is {e behaviour-neutral by construction}: a sink only ever reads
    simulation state and is never consulted by it, so a run with a recording
    sink produces bit-identical results to a run with {!null} (asserted by the
    differential tests).

    Timestamps: components that know an exact cycle (the bus arbiter) stamp
    with {!emit_at}; components that live inside an analytic phase (the
    accelerator engine, the driver) stamp with the sink's running clock, which
    the enclosing layer moves forward with {!set_now}/{!advance}.  Timestamps
    are nondecreasing per (category, track) — the exporter tests enforce
    this. *)

type t

val null : t
(** The shared off sink.  [enabled null = false]; all operations no-ops. *)

val create : ?capacity:int -> unit -> t
(** A recording sink. [capacity] defaults to 65536 events. *)

val enabled : t -> bool

(** {1 The running clock} *)

val now : t -> int
val set_now : t -> int -> unit
(** Never moves the clock backwards. *)

val advance : t -> int -> unit
(** [advance t n] adds [max 0 n] cycles. *)

(** {1 Emitting} *)

val emit : t -> Event.data -> unit
(** Stamped with the sink's current clock. *)

val emit_at : t -> cycle:int -> Event.data -> unit
(** Stamped with an exact cycle known to the emitter. *)

(** {1 Reading back} *)

val events : t -> Event.t list
(** Retained events, oldest first. *)

val iter : (Event.t -> unit) -> t -> unit

val length : t -> int
val dropped : t -> int
val capacity : t -> int
val clear : t -> unit

val merge_into : into:t -> t list -> unit
(** [merge_into ~into sources] appends the retained events of each source, in
    list order, into [into]'s ring and advances [into]'s clock to the maximum
    of all clocks.  This is the join step of a parallel batch
    ({!Ccsim.Pool}): each job records into its own sink, and after the
    barrier the per-job sinks are merged in job-index order, so the merged
    stream is identical to scheduling-independent serial recording.  Events
    a source already dropped are gone and are not re-counted here.  Sources
    must be distinct from [into] ([Invalid_argument] otherwise); a [null]
    destination ignores everything. *)
