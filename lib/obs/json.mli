(** A minimal JSON abstract syntax, printer and parser.

    The container ships no JSON library, so the exporter builds this tree and
    prints it, and the tests parse exported files back with {!parse} to check
    validity and structure.  Covers all of RFC 8259 except that numbers are
    split into OCaml [int]/[float] on parse ([Int] when the literal has no
    fraction or exponent and fits). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace), valid UTF-8 pass-through
    with control characters and quotes escaped. *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** [Error msg] carries the byte offset of the first syntax error. *)

(** {1 Accessors (for tests and tools)} *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_list_opt : t -> t list option
val to_int_opt : t -> int option
val to_string_opt : t -> string option
