(** Trace exporters.

    The primary target is the Chrome trace-event JSON format, loadable in
    Perfetto (ui.perfetto.dev) or chrome://tracing: one process per component
    category, one thread per sub-track (interconnect source / task / core),
    span events ("ph":"X") for bus transactions and task phases, instant
    events ("ph":"i") for everything else — denials get global scope so they
    draw a full-height marker line.  Timestamps are simulated cycles (the
    viewer displays them as microseconds; the scale is what matters). *)

val chrome_json : Trace.t -> Json.t
(** The whole trace as a JSON-object-format Chrome trace. *)

val to_chrome_string : Trace.t -> string

val write_chrome : path:string -> Trace.t -> unit

val categories : Trace.t -> (string * int) list
(** Event counts per component category, sorted by name. *)

val summary : Trace.t -> string
(** Plain-text table (via {!Ccsim.Report.table}): per-(category, event)
    counts, total, drop counter. *)
