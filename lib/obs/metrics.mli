(** Named counters and log2-bucket latency histograms.

    Counters are layered directly on {!Ccsim.Stats} (the simulator's existing
    counter store); histograms bucket non-negative integer samples by bit
    width — bucket [k] holds values in [[2^(k-1), 2^k - 1]] (bucket 0 holds
    exactly 0) — so a percentile read back from a histogram is the upper
    bound of the exact percentile's bucket: within a factor of 2, which the
    tests check against {!Ccsim.Stats.percentile}. *)

type t

val create : unit -> t

(** {1 Counters} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
val counters : t -> (string * int) list
(** Sorted by name. *)

(** {1 Histograms} *)

val observe : t -> string -> int -> unit
(** Record one sample.  Negative samples clamp to 0. *)

type hist_summary = {
  count : int;
  sum : int;
  mean : float;
  max_sample : int;
}

val hist_summary : t -> string -> hist_summary option

val percentile : t -> string -> float -> int option
(** [percentile t name p] (with [0 < p <= 1]) is the upper bound of the
    bucket containing the rank-[ceil (p * count)] sample — the same rank
    convention as {!Ccsim.Stats.percentile}.  [None] if the histogram is
    missing or empty. *)

val histograms : t -> string list
(** Histogram names, sorted. *)

val merge_into : dst:t -> t -> unit
(** Adds counters and histogram buckets of the source into [dst]. *)

(** {1 Deriving metrics from a trace} *)

val of_trace : Trace.t -> t
(** Event counts per ["category.name"], plus histograms
    ["bus.grant_wait"] (arbitration wait per transaction),
    ["bus.grant_beats"], ["checker.check_latency"] and
    ["task.phase_cycles"], and the ["trace.dropped"] counter. *)

val to_table : t -> string
(** Counters and histogram percentiles rendered with {!Ccsim.Report.table}. *)
