type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

exception Syntax of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Syntax (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8_add buf code =
    (* Encode a Unicode scalar value as UTF-8. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'u' ->
              advance ();
              let code = hex4 () in
              let code =
                (* Surrogate pair. *)
                if code >= 0xD800 && code <= 0xDBFF && !pos + 6 <= n
                   && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let low = hex4 () in
                  0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                end
                else code
              in
              utf8_add buf code
          | _ -> fail "bad escape");
          go ())
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected value";
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some v -> Int v
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail ("bad number " ^ lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((key, v) :: acc)
            | Some '}' -> advance (); List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elems [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Syntax (at, msg) ->
      Error (Printf.sprintf "JSON syntax error at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
let to_int_opt = function Int n -> Some n | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
