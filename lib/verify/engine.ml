(* The verification driver behind [capsim verify].

   A run is two phases over fixed bounds: the capability-encoding sweep
   (phase 1), then bounded-exhaustive scenario x interleaving exploration
   (phase 2), stopping at the first counterexample.  A counterexample is
   minimized ({!Explore.minimize}) and serialized to a replay token, so the
   report always carries a one-command deterministic reproduction.

   Everything here is a pure function of the options (no wall clock, no
   ambient randomness — the random fallback takes an explicit seed), which
   is what lets CI diff two runs byte-for-byte. *)

type opts = {
  v_depth : int;
  v_accels : int;
  v_objs : int;
  v_obj_len : int;
  v_space_bits : int;
  v_topology : Bus.Topology.kind;
  v_checkers : Capchecker.Shim.checking;
  v_mutation : Model.mutation;
}

let default_opts =
  { v_depth = 2; v_accels = 2; v_objs = 3; v_obj_len = 8; v_space_bits = 4;
    v_topology = Bus.Topology.Shared;
    v_checkers = Capchecker.Shim.Distributed; v_mutation = Model.M_none }

type counterexample = {
  cx_violation : Harness.violation;
  cx_trace : Harness.step list;   (** minimized trace *)
  cx_scenario : Model.scenario;   (** minimized scenario *)
  cx_schedule : int list;
  cx_token : string;
}

type report = {
  r_opts : opts;
  r_sweep : Space.sweep;
  r_scenarios : int;          (** scenarios explored *)
  r_schedules : int;
  r_pruned : int;
  r_ops : int;
  r_invalidations : int;
  r_counterexample : counterexample option;
}

let dims_of o =
  { Space.d_accels = o.v_accels; d_objs = o.v_objs; d_obj_len = o.v_obj_len;
    d_depth = o.v_depth; d_topology = o.v_topology;
    d_checkers = o.v_checkers; d_mutation = o.v_mutation }

let counterexample_of sc schedule =
  let sc, schedule = Explore.minimize sc schedule in
  let h = Explore.run_schedule sc schedule in
  match Harness.violation h with
  | None ->
      (* minimization preserves the violation by construction *)
      invalid_arg "verify: minimized counterexample stopped reproducing"
  | Some v ->
      { cx_violation = v; cx_trace = Harness.trace h; cx_scenario = sc;
        cx_schedule = schedule; cx_token = Model.token_of sc schedule }

let run o =
  let sweep = Space.encoding_sweep ~space_bits:o.v_space_bits in
  let scenarios = ref 0 in
  let schedules = ref 0 and pruned = ref 0 and ops = ref 0 in
  let invalidations = ref 0 in
  let cx = ref None in
  (match sweep.Space.sw_failure with
  | Some _ -> () (* a phase-1 failure already fails the run; skip phase 2 *)
  | None ->
      Seq.iter
        (fun sc ->
          if !cx = None then begin
            incr scenarios;
            let out = Explore.explore sc in
            schedules := !schedules + out.Explore.o_stats.Explore.x_schedules;
            pruned := !pruned + out.Explore.o_stats.Explore.x_pruned;
            ops := !ops + out.Explore.o_stats.Explore.x_ops;
            invalidations :=
              !invalidations + out.Explore.o_stats.Explore.x_invalidations;
            match out.Explore.o_violation with
            | Some (_, _, schedule) -> cx := Some (counterexample_of sc schedule)
            | None -> ()
          end)
        (Space.scenarios (dims_of o)));
  { r_opts = o; r_sweep = sweep; r_scenarios = !scenarios;
    r_schedules = !schedules; r_pruned = !pruned; r_ops = !ops;
    r_invalidations = !invalidations; r_counterexample = !cx }

let ok r = r.r_sweep.Space.sw_failure = None && r.r_counterexample = None

(* ---- replay ---- *)

let replay token =
  match Model.of_token token with
  | Error e -> Error e
  | Ok (sc, schedule) ->
      let h = Explore.run_schedule sc schedule in
      Ok
        ( Harness.trace h,
          match Harness.violation h with
          | None -> None
          | Some v ->
              Some
                { cx_violation = v; cx_trace = Harness.trace h;
                  cx_scenario = sc; cx_schedule = schedule; cx_token = token }
        )

(* ---- random fallback ---- *)

type random_report = {
  rr_runs : int;
  rr_violating : int;  (** runs whose harness flagged a violation *)
  rr_counterexample : counterexample option;
}

let random_suite o ~seed ~runs =
  let rng = Ccsim.Rng.create seed in
  let d = dims_of o in
  let violating = ref 0 in
  let cx = ref None in
  let i = ref 0 in
  while !i < runs && !cx = None do
    incr i;
    let sc, schedule = Space.random_scenario rng d in
    let h = Explore.run_schedule sc schedule in
    match Harness.violation h with
    | None -> ()
    | Some _ ->
        incr violating;
        cx := Some (counterexample_of sc schedule)
  done;
  { rr_runs = !i; rr_violating = !violating; rr_counterexample = !cx }

(* ---- rendering ---- *)

let json_of_step (s : Harness.step) =
  Obs.Json.Obj
    [ ("step", Obs.Json.Int s.Harness.s_index);
      ("cycle", Obs.Json.Int s.Harness.s_cycle);
      ("src", Obs.Json.Int s.Harness.s_src);
      ("op", Obs.Json.String (Model.op_to_string s.Harness.s_op));
      ("what", Obs.Json.String (Model.op_pretty s.Harness.s_src s.Harness.s_op));
      ("note", Obs.Json.String s.Harness.s_note) ]

let json_of_counterexample cx =
  Obs.Json.Obj
    [ ("property", Obs.Json.String cx.cx_violation.Harness.v_prop);
      ("detail", Obs.Json.String cx.cx_violation.Harness.v_detail);
      ("step", Obs.Json.Int cx.cx_violation.Harness.v_step);
      ("cycle", Obs.Json.Int cx.cx_violation.Harness.v_cycle);
      ("trace", Obs.Json.List (List.map json_of_step cx.cx_trace));
      ("token", Obs.Json.String cx.cx_token) ]

let json_of_report r =
  Obs.Json.Obj
    [ ("ok", Obs.Json.Bool (ok r));
      ( "encodings",
        Obs.Json.Obj
          [ ("caps", Obs.Json.Int r.r_sweep.Space.sw_caps);
            ("checks", Obs.Json.Int r.r_sweep.Space.sw_checks);
            ( "failure",
              match r.r_sweep.Space.sw_failure with
              | None -> Obs.Json.Null
              | Some f -> Obs.Json.String f ) ] );
      ( "exploration",
        Obs.Json.Obj
          [ ("scenarios", Obs.Json.Int r.r_scenarios);
            ("schedules", Obs.Json.Int r.r_schedules);
            ("pruned", Obs.Json.Int r.r_pruned);
            ("ops", Obs.Json.Int r.r_ops);
            ("shim_invalidations", Obs.Json.Int r.r_invalidations) ] );
      ( "counterexample",
        match r.r_counterexample with
        | None -> Obs.Json.Null
        | Some cx -> json_of_counterexample cx ) ]

let render_counterexample b cx =
  Printf.bprintf b "counterexample: %s\n" cx.cx_violation.Harness.v_prop;
  Printf.bprintf b "  %s\n" cx.cx_violation.Harness.v_detail;
  Printf.bprintf b "  scenario: mode=%s checkers=%s topology=%s mutation=%s\n"
    (Model.mode_to_string cx.cx_scenario.Model.sc_mode)
    (Capchecker.Shim.checking_to_string cx.cx_scenario.Model.sc_checkers)
    (Bus.Topology.kind_to_string cx.cx_scenario.Model.sc_topology)
    (Model.mutation_to_string cx.cx_scenario.Model.sc_mutation);
  List.iter
    (fun (s : Harness.step) ->
      Printf.bprintf b "  [%d] cycle %d: %s -> %s\n" s.Harness.s_index
        s.Harness.s_cycle
        (Model.op_pretty s.Harness.s_src s.Harness.s_op)
        s.Harness.s_note)
    cx.cx_trace;
  Printf.bprintf b "  replay: capsim verify --replay '%s'\n" cx.cx_token

let render_report r =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "phase 1 (encodings): %d capabilities, %d checks%s\n"
    r.r_sweep.Space.sw_caps r.r_sweep.Space.sw_checks
    (match r.r_sweep.Space.sw_failure with
    | None -> ""
    | Some f -> Printf.sprintf "\n  FAILED: %s" f);
  Printf.bprintf b
    "phase 2 (scenarios): %d scenarios, %d schedules (%d branches pruned), \
     %d ops, %d shim invalidations\n"
    r.r_scenarios r.r_schedules r.r_pruned r.r_ops r.r_invalidations;
  (match r.r_counterexample with
  | None -> if ok r then Printf.bprintf b "verified: no counterexample\n"
  | Some cx -> render_counterexample b cx);
  Buffer.contents b
