(** Interleaving exploration for one scenario.

    Enumerates every interleaving of the scenario's per-source programs
    (DFS over "which source issues next"), executing each complete schedule
    through a fresh {!Harness} driven by a schedule-controlled
    {!Ccsim.Sched} — one source granted per cycle, like the arbiter.

    Pruning is DPOR in its simplest sound form: an extension that would put
    two adjacent {e independent} ops from sources [j > s] in non-sorted
    order is cut, because the swapped (lexicographically smaller) schedule
    is explored elsewhere and reaches the same states.  Independence is
    justified against the state the properties observe: cross-source
    accesses commute unless they race a write on the same object in the
    same bank; a driver mutation commutes with an access unless it touches
    the accessing task's entries. *)

type stats = {
  x_schedules : int;  (** complete interleavings executed *)
  x_pruned : int;     (** DFS branches cut by the commutation rule *)
  x_ops : int;        (** total ops executed *)
  x_invalidations : int;
      (** shim invalidate-channel drops summed over schedules: > 0 proves
          the revocation-vs-refill race was actually exercised *)
}

type outcome = {
  o_stats : stats;
  o_violation : (Harness.violation * Harness.step list * int list) option;
      (** first violation, its executed trace, and the violating schedule *)
}

val independent : Model.scenario -> int * Model.op -> int * Model.op -> bool
(** Exposed for the soundness cross-check in the test-suite (exploring with
    pruning disabled must find exactly the same verdict). *)

val run_schedule : Model.scenario -> int list -> Harness.t
(** Execute one schedule (replay path).  The schedule must be feasible for
    the scenario's programs ({!Model.of_token} validates this).
    @raise Invalid_argument on an infeasible schedule. *)

val explore : Model.scenario -> outcome
(** Run every (unpruned) interleaving, stopping at the first violation. *)

val minimize : Model.scenario -> int list -> Model.scenario * int list
(** Greedy delta-debugging: truncate after the violating step, then drop
    schedule positions and boot grants while the same property still fails.
    Deterministic; returns the input unchanged if it does not reproduce. *)
