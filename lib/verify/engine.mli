(** The verification driver behind [capsim verify].

    A run is a pure function of the options: phase 1 (the encoding sweep),
    then bounded-exhaustive scenario x interleaving exploration, stopping at
    the first counterexample, which is minimized and serialized to a replay
    token.  Two runs with equal options render byte-identical reports — the
    CI determinism gate relies on this. *)

type opts = {
  v_depth : int;       (** per-source program length *)
  v_accels : int;
  v_objs : int;
  v_obj_len : int;
  v_space_bits : int;  (** phase-1 window is [2^space_bits] bytes *)
  v_topology : Bus.Topology.kind;
  v_checkers : Capchecker.Shim.checking;
  v_mutation : Model.mutation;  (** [M_none] for the real system *)
}

val default_opts : opts
(** depth 2, 2 accelerators, 3 objects of 8 bytes, 4-bit window, shared
    topology, distributed checking, no mutation. *)

type counterexample = {
  cx_violation : Harness.violation;
  cx_trace : Harness.step list;
  cx_scenario : Model.scenario;
  cx_schedule : int list;
  cx_token : string;  (** feed to {!replay} / [capsim verify --replay] *)
}

type report = {
  r_opts : opts;
  r_sweep : Space.sweep;
  r_scenarios : int;
  r_schedules : int;
  r_pruned : int;
  r_ops : int;
  r_invalidations : int;
  r_counterexample : counterexample option;
}

val run : opts -> report

val ok : report -> bool
(** No phase-1 failure and no counterexample. *)

val replay :
  string -> (Harness.step list * counterexample option, string) result
(** Parse a token, re-execute its schedule, report what happened.  A token
    from a real counterexample reproduces its violation deterministically. *)

type random_report = {
  rr_runs : int;
  rr_violating : int;
  rr_counterexample : counterexample option;
}

val random_suite : opts -> seed:int -> runs:int -> random_report
(** The random fallback: seeded random scenarios/schedules through the same
    harness, stopping at the first violation. *)

val json_of_report : report -> Obs.Json.t
val render_report : report -> string
(** Deterministic text form; includes a ready-to-run [--replay] command
    line when a counterexample exists. *)

val json_of_counterexample : counterexample -> Obs.Json.t
val json_of_step : Harness.step -> Obs.Json.t
val render_counterexample : Buffer.t -> counterexample -> unit
