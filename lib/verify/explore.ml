(* Interleaving exploration with partial-order reduction.

   Every interleaving of the scenario's per-source programs is a list of
   source ids (a {e schedule}); the explorer enumerates them by DFS over
   "which source issues next", executing each complete schedule through a
   fresh {!Harness} driven by a schedule-controlled {!Ccsim.Sched} — the same
   event engine as the simulator, granting one source per cycle like the
   arbiter does.

   Pruning (the DPOR idea, in its simplest sound form): two adjacent ops from
   different sources that are {e independent} — they commute on every shared
   state the properties observe — produce equivalent executions in either
   order, so only one representative per equivalence class needs to run.  We
   keep the lexicographic normal form: an extension by source [s] directly
   after an op from source [j > s] is pruned when the two ops are
   independent, because the schedule with them swapped is explored elsewhere
   and is lexicographically smaller.  This enumerates a superset of the
   normal forms (never less than one schedule per class), so it is sound:
   a violation reachable by any interleaving is reached.

   Independence is deliberately coarse and justified against the actual
   shared state (see [independent] below); when in doubt, ops are dependent
   and both orders run. *)

type stats = {
  x_schedules : int;  (** complete interleavings executed *)
  x_pruned : int;     (** DFS branches cut by the commutation rule *)
  x_ops : int;        (** total ops executed across schedules *)
  x_invalidations : int;
      (** shim invalidate-channel drops summed over schedules (coverage:
          revocation raced a refill at least once when > 0) *)
}

type outcome = {
  o_stats : stats;
  o_violation : (Harness.violation * Harness.step list * int list) option;
      (** first violation found, its trace, and the violating schedule *)
}

(* ---- independence ---- *)

let bank_of sc addr =
  match sc.Model.sc_topology with
  | Bus.Topology.Crossbar { banks } ->
      addr / Bus.Topology.bank_interleave mod banks
  | _ -> 0

(* [independent sc a b] — may ops [a] and [b] (from different sources,
   adjacent in a schedule) be swapped without changing any observed state?

   - Two accesses from different sources never share a table key (keys are
     (task, obj) and the task is the source), so they interact only through
     per-object memory effects and same-bank arbitration.  Different objects,
     or two reads, commute; a write racing any op on the same object in the
     same bank does not.
   - A driver table mutation and an access commute unless the mutation
     touches the accessing task's entries (install/evict of that key, or a
     revocation of that task) — those change the access verdict, the spec
     grant map, and the shim invalidate stream.
   - Driver ops are all one source, so they are never candidates. *)
let independent sc (src_a, op_a) (src_b, op_b) =
  let touches task = function
    | Model.Install { task = t; _ } | Model.Evict { task = t; _ }
    | Model.Revoke { task = t } ->
        t = task
    | Model.Access _ -> false
  in
  match (op_a, op_b) with
  | ( Model.Access { obj = oa; off = fa; write = wa; _ },
      Model.Access { obj = ob; off = fb; write = wb; _ } ) ->
      oa <> ob
      || ((not wa) && not wb)
      || bank_of sc (Model.obj_base sc oa + fa)
         <> bank_of sc (Model.obj_base sc ob + fb)
  | Model.Access _, d -> not (touches src_a d)
  | d, Model.Access _ -> not (touches src_b d)
  | _, _ -> false (* driver vs driver: same source, unreachable *)

(* ---- schedule execution over the event engine ---- *)

let run_schedule sc schedule =
  let t = Ccsim.Sched.create () in
  let h = Harness.boot sc in
  let n = Model.sources sc in
  let waiting = Array.make n None in
  (* each source is a real scheduler process: it suspends before every op
     and performs the op inline when the dispatcher resumes it *)
  for src = 0 to n - 1 do
    Ccsim.Sched.spawn t ~at:0 (fun () ->
        List.iter
          (fun op ->
            Ccsim.Sched.suspend t (fun resume -> waiting.(src) <- Some resume);
            Harness.exec h ~cycle:(Ccsim.Sched.now t) ~src op)
          sc.Model.sc_programs.(src))
  done;
  (* the dispatcher is the arbiter: one grant per cycle, in schedule order *)
  Ccsim.Sched.spawn t ~at:0 (fun () ->
      List.iter
        (fun src ->
          (match waiting.(src) with
          | Some resume ->
              waiting.(src) <- None;
              resume ()
          | None -> invalid_arg "verify: schedule granted an idle source");
          Ccsim.Sched.wait t 1)
        schedule);
  let budget = (List.length schedule * 4) + (n * 4) + 16 in
  ignore (Ccsim.Sched.run_steps t budget);
  if Ccsim.Sched.pending t > 0 then
    invalid_arg "verify: schedule did not quiesce within its step budget";
  h

(* ---- enumeration ---- *)

let explore sc =
  let progs = Array.map Array.of_list sc.Model.sc_programs in
  let n = Model.sources sc in
  let total = Array.fold_left (fun a p -> a + Array.length p) 0 progs in
  let idx = Array.make n 0 in
  let sched = Array.make (max total 1) 0 in
  let schedules = ref 0 and pruned = ref 0 and ops = ref 0 in
  let invalidations = ref 0 in
  let viol = ref None in
  let rec dfs pos =
    if !viol <> None then ()
    else if pos = total then begin
      incr schedules;
      ops := !ops + total;
      let schedule = Array.to_list (Array.sub sched 0 total) in
      let h = run_schedule sc schedule in
      invalidations := !invalidations + Harness.shim_invalidations h;
      match Harness.violation h with
      | Some v -> viol := Some (v, Harness.trace h, schedule)
      | None -> ()
    end
    else
      for s = 0 to n - 1 do
        if !viol = None && idx.(s) < Array.length progs.(s) then begin
          let prune =
            pos > 0
            &&
            let j = sched.(pos - 1) in
            j > s
            && independent sc
                 (j, progs.(j).(idx.(j) - 1))
                 (s, progs.(s).(idx.(s)))
          in
          if prune then incr pruned
          else begin
            sched.(pos) <- s;
            idx.(s) <- idx.(s) + 1;
            dfs (pos + 1);
            idx.(s) <- idx.(s) - 1
          end
        end
      done
  in
  dfs 0;
  { o_stats =
      { x_schedules = !schedules; x_pruned = !pruned; x_ops = !ops;
        x_invalidations = !invalidations };
    o_violation = !viol }

(* ---- counterexample minimization ----

   Greedy delta-debugging on the (scenario, schedule) pair: truncate after
   the violating step, then repeatedly try dropping one schedule position
   (removing the op from its source's program too) and keep any variant that
   still violates the same property.  Every candidate is a full deterministic
   re-execution, so the result is exact, and [of_token]-valid by
   construction. *)

let reproduce sc schedule =
  match Harness.violation (run_schedule sc schedule) with
  | Some v -> Some v
  | None -> None

let drop_pos sc schedule k =
  let src = List.nth schedule k in
  let occ =
    List.filteri (fun i s -> i < k && s = src) schedule |> List.length
  in
  let progs = Array.copy sc.Model.sc_programs in
  progs.(src) <- List.filteri (fun i _ -> i <> occ) progs.(src);
  ( { sc with Model.sc_programs = progs },
    List.filteri (fun i _ -> i <> k) schedule )

let drop_grant sc g =
  { sc with
    Model.sc_grants = List.filter (fun g' -> g' <> g) sc.Model.sc_grants }

let minimize sc schedule =
  match reproduce sc schedule with
  | None -> (sc, schedule) (* not reproducible: return untouched *)
  | Some v0 ->
      let prop = v0.Harness.v_prop in
      let still_fails sc sched =
        match reproduce sc sched with
        | Some v -> v.Harness.v_prop = prop
        | None -> false
      in
      (* ops after the violating step are dead weight *)
      let sc, schedule =
        let keep = v0.Harness.v_step + 1 in
        let truncated = List.filteri (fun i _ -> i < keep) schedule in
        let used = Array.make (Array.length sc.Model.sc_programs) 0 in
        List.iter (fun s -> used.(s) <- used.(s) + 1) truncated;
        let progs =
          Array.mapi
            (fun s ops -> List.filteri (fun i _ -> i < used.(s)) ops)
            sc.Model.sc_programs
        in
        ({ sc with Model.sc_programs = progs }, truncated)
      in
      (* one pass from the tail so earlier indices stay valid *)
      let sc = ref sc and schedule = ref schedule in
      let changed = ref true in
      while !changed do
        changed := false;
        for k = List.length !schedule - 1 downto 0 do
          if List.length !schedule > 1 then begin
            let sc', sched' = drop_pos !sc !schedule k in
            if still_fails sc' sched' then begin
              sc := sc';
              schedule := sched';
              changed := true
            end
          end
        done;
        List.iter
          (fun g ->
            let sc' = drop_grant !sc g in
            if still_fails sc' !schedule then begin
              sc := sc';
              changed := true
            end)
          (!sc).Model.sc_grants
      done;
      (!sc, !schedule)
