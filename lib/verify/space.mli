(** The verifier's two state spaces.

    Phase 1 sweeps the capability-encoding layer: every region over a tiny
    [2^space_bits]-byte window (rounding must be the identity), the window
    stretched through odd multipliers into exponent-forcing ranges (rounding
    must cover, be idempotent, and agree with [Cap.set_bounds]), all 4096
    permission masks, and the coarse compose/split corners — each derived
    capability checked against an independently re-derived [access_ok]
    semantics and round-tripped through the 128-bit encoding.

    Phase 2 enumerates scenarios: the cross product
    [grant-map x mode x elide x fault] over a fixed task/object box, the
    grant map encoded as a base-3 integer (absent / ro / rw per key).  The
    enumeration order is fixed, so the first counterexample is a
    deterministic function of the dimensions. *)

type sweep = {
  sw_caps : int;    (** capabilities derived *)
  sw_checks : int;  (** predicate checks evaluated *)
  sw_failure : string option;  (** first failing check, if any *)
}

val encoding_sweep : space_bits:int -> sweep
(** Phase 1 over a [2^space_bits]-byte window.  [space_bits] in [1, 8] is
    sensible; cost grows as [4^space_bits]. *)

type dims = {
  d_accels : int;
  d_objs : int;
  d_obj_len : int;
  d_depth : int;  (** per-source program length (canonical probe programs) *)
  d_topology : Bus.Topology.kind;
  d_checkers : Capchecker.Shim.checking;
  d_mutation : Model.mutation;
}

val count : dims -> int
(** [8 * 3^(accels*objs)] — the number of scenarios {!scenarios} yields. *)

val scenarios : dims -> Model.scenario Seq.t
(** The phase-2 enumeration, lazily. *)

val random_scenario : Ccsim.Rng.t -> dims -> Model.scenario * int list
(** One random scenario (random grant map, random programs of length up to
    [d_depth], random feasible schedule) from the simulator's seeded
    generator — the [--random] fallback and the QCheck generator's core. *)
