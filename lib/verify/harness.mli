(** Differential execution of one {!Model.scenario}.

    The implementation under test (a real {!Capchecker.Checker} behind the
    scenario's {!Capchecker.Shim} placement) runs in lock-step with a
    central-only mirror checker and a small spec oracle.  After every op the
    property layer is evaluated; the first failure poisons the harness so the
    trace ends at the violating step.

    Properties checked (names are stable, they appear in CLI output):
    - [oob-grant] — the checker forwarded an access the oracle denies (the
      global no-out-of-bounds invariant);
    - [benign-denial] — the checker denied an access the oracle grants;
    - [phys-mismatch] — granted, but to the wrong physical address;
    - [shim-parity] — shim-fleet verdict differs from the pure-central
      mirror's (placement must only change latency);
    - [ghost-exn] — a live table entry reports an exception no denial since
      its install justifies (the slot-reuse hygiene the table must maintain);
    - [elide-unsound] — an access ran with checks elided but is not
      statically proven safe (the monotonicity side-condition of elision);
    - [install-result] — a capability install failed although the table is
      sized for every grant of the scenario. *)

type violation = {
  v_prop : string;   (** property name, one of the seven above *)
  v_detail : string;
  v_step : int;      (** index into the executed schedule *)
  v_cycle : int;
}

type step = {
  s_index : int;
  s_cycle : int;
  s_src : int;
  s_op : Model.op;
  s_note : string;  (** outcome as executed ("granted phys=0x18", …) *)
}

type t

val boot : Model.scenario -> t
(** Fresh systems (implementation + mirror + oracle) with the scenario's
    boot grants installed everywhere.  A failing boot install is already a
    violation. *)

val exec : t -> cycle:int -> src:int -> Model.op -> unit
(** Execute one op as source [src] at [cycle]; evaluates every property.
    No-op once a violation is recorded. *)

val violation : t -> violation option
val trace : t -> step list
(** Executed steps in order; ends at the violating step if any. *)

val steps_executed : t -> int

val shim_invalidations : t -> int
(** Invalidate-channel drops observed by the implementation's shim fleet
    (coverage evidence that revocation raced a refill). *)

val shim_misses : t -> int

val p_oob_grant : string
val p_benign_denial : string
val p_phys : string
val p_parity : string
val p_ghost : string
val p_elide : string
val p_install : string
