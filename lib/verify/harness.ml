(* Scenario execution with a differential oracle.

   Three systems run in lock-step over one schedule:

   - the {e implementation}: a real {!Capchecker.Checker} with the scenario's
     shim fleet in front of it ([sc_checkers]) — the exact code the simulator
     trusts;
   - a {e mirror}: a second central-only checker fed the identical install
     stream, so checking placement can be compared verdict-for-verdict
     (shim parity is a theorem of {!Capchecker.Shim}'s design; here it is
     checked, not assumed);
   - a {e spec oracle}: a dozen lines of obviously-correct bookkeeping — a
     grant map plus interval arithmetic — that defines what each access
     {e should} do.

   Mutations deliberately break the implementation in controlled ways (wide
   decode, lost revocation, ghost exception bits, unproven elision) so the
   property layer can be shown to catch each class; [M_none] is the run that
   must come back clean.

   After every op the properties are evaluated; the first failure poisons the
   harness (subsequent ops no-op) so the recorded trace ends at the violating
   step, which is what {!Explore.minimize} relies on. *)

type violation = {
  v_prop : string;
  v_detail : string;
  v_step : int;
  v_cycle : int;
}

type step = {
  s_index : int;
  s_cycle : int;
  s_src : int;
  s_op : Model.op;
  s_note : string;
}

(* property names (stable: they appear in cram output and CI greps) *)
let p_oob_grant = "oob-grant"
let p_benign_denial = "benign-denial"
let p_phys = "phys-mismatch"
let p_parity = "shim-parity"
let p_ghost = "ghost-exn"
let p_elide = "elide-unsound"
let p_install = "install-result"

type t = {
  sc : Model.scenario;
  central : Capchecker.Checker.t;   (* implementation authority *)
  fleet : Capchecker.Shim.t;        (* implementation check path *)
  mirror : Capchecker.Checker.t;    (* central-only parity reference *)
  granted : (int * int, Model.perm) Hashtbl.t;  (* spec: live grants *)
  denied_since : (int * int, unit) Hashtbl.t;
      (* spec: keys denied since their last install — the set a live
         exception bit must be justified by *)
  dirty : (int * int, unit) Hashtbl.t;
      (* M_ghost_exn: keys evicted while their exception bit was set *)
  elided : bool array;              (* per source, fixed at boot *)
  mutable install_ordinal : int;    (* driver installs executed so far *)
  mutable steps : step list;        (* reverse order *)
  mutable n_steps : int;
  mutable violation : violation option;
}

let violation t = t.violation
let trace t = List.rev t.steps
let steps_executed t = t.n_steps
let shim_invalidations t = Capchecker.Shim.invalidations t.fleet
let shim_misses t = Capchecker.Shim.misses t.fleet

let violate t ~cycle prop detail =
  if t.violation = None then
    t.violation <-
      Some { v_prop = prop; v_detail = detail; v_step = t.n_steps;
             v_cycle = cycle }

(* ---- capability construction (where M_wide_bounds lives) ---- *)

let make_cap sc ~obj ~(perm : Model.perm) =
  let base = Model.obj_base sc obj in
  let length =
    match sc.Model.sc_mutation with
    | Model.M_wide_bounds -> 2 * sc.Model.sc_obj_len
    | _ -> sc.Model.sc_obj_len
  in
  let perms =
    match perm with Model.Rw -> Cheri.Perms.data_rw | Model.Ro -> Cheri.Perms.data_ro
  in
  match Cheri.Cap.set_bounds Cheri.Cap.root ~base ~length with
  | Error e ->
      invalid_arg ("verify: object capability: " ^ Cheri.Cap.error_to_string e)
  | Ok c -> (
      match Cheri.Cap.with_perms c perms with
      | Error e ->
          invalid_arg ("verify: object perms: " ^ Cheri.Cap.error_to_string e)
      | Ok c -> c)

(* ---- the spec oracle ---- *)

type verdict = S_grant of int | S_deny of string

let spec_access t ~src ~obj ~off ~len ~write =
  let sc = t.sc in
  match Hashtbl.find_opt t.granted (src, obj) with
  | None -> S_deny "no live capability"
  | Some perm ->
      if write && perm = Model.Ro then S_deny "read-only grant"
      else if off < 0 || len < 1 || off + len > sc.Model.sc_obj_len then
        S_deny "out of object bounds"
      else S_grant (Model.obj_base sc obj + off)

(* ---- ghost-exception hygiene ----
   Every live entry with its exception bit set must be justified by a denial
   recorded since that entry's install.  The M_ghost_exn mutation plants
   exactly the unjustified kind (a bit inherited across evict/install). *)

let check_exn_hygiene t ~cycle =
  List.iter
    (fun (task, obj) ->
      if not (Hashtbl.mem t.denied_since (task, obj)) then
        violate t ~cycle p_ghost
          (Printf.sprintf
             "entry (task %d, obj %d) reports an exception but no denial hit \
              it since its install"
             task obj))
    (Capchecker.Table.entries_with_exceptions
       (Capchecker.Checker.table t.central))

(* ---- boot ---- *)

let install_everywhere t ~task ~obj ~perm =
  let cap = make_cap t.sc ~obj ~perm in
  let r = Capchecker.Checker.install t.central ~task ~obj cap in
  let r' = Capchecker.Checker.install t.mirror ~task ~obj cap in
  Hashtbl.replace t.granted (task, obj) perm;
  Hashtbl.remove t.denied_since (task, obj);
  (if t.sc.Model.sc_mutation = Model.M_ghost_exn
   && Hashtbl.mem t.dirty (task, obj)
   then begin
     (* the reused slot inherits the stale exception bit *)
     Capchecker.Table.mark_exception
       (Capchecker.Checker.table t.central) ~task ~obj;
     Hashtbl.remove t.dirty (task, obj)
   end);
  match (r, r') with
  | Capchecker.Table.Installed _, Capchecker.Table.Installed _ -> Ok ()
  | _ -> Error "capability install rejected (table sized for the scenario)"

let boot sc =
  (* room for every (task, obj) pair at once: installs only fail if the
     implementation loses entries it should still hold *)
  let entries = (sc.Model.sc_accels * sc.Model.sc_objs) + 4 in
  let central = Capchecker.Checker.create ~entries sc.Model.sc_mode in
  let fleet =
    Capchecker.Shim.create ~central ~sources:sc.Model.sc_accels
      sc.Model.sc_checkers
  in
  let mirror = Capchecker.Checker.create ~entries sc.Model.sc_mode in
  let t =
    { sc; central; fleet; mirror;
      granted = Hashtbl.create 16; denied_since = Hashtbl.create 16;
      dirty = Hashtbl.create 16;
      elided = Array.init (Model.sources sc) (fun s -> Model.elided sc s);
      install_ordinal = 0; steps = []; n_steps = 0; violation = None }
  in
  List.iter
    (fun (task, obj, perm) ->
      match install_everywhere t ~task ~obj ~perm with
      | Ok () -> ()
      | Error msg -> violate t ~cycle:0 p_install ("boot: " ^ msg))
    sc.Model.sc_grants;
  t

(* ---- op execution ---- *)

let req_for t ~src ~obj ~off ~len ~write =
  let sc = t.sc in
  let phys = Model.obj_base sc obj + off in
  let addr, port =
    match sc.Model.sc_mode with
    | Capchecker.Checker.Fine -> (phys, Some obj)
    | Capchecker.Checker.Coarse ->
        (Capchecker.Checker.compose_coarse ~obj phys, None)
  in
  { Guard.Iface.source = src; port; addr; size = len;
    kind = (if write then Guard.Iface.Write else Guard.Iface.Read) }

let outcome_note = function
  | Guard.Iface.Granted { phys; _ } -> Printf.sprintf "granted phys=0x%x" phys
  | Guard.Iface.Denied d -> "denied: " ^ d.Guard.Iface.detail

let exec_access t ~cycle ~src ~obj ~off ~len ~write =
  let spec = spec_access t ~src ~obj ~off ~len ~write in
  if t.elided.(src) then begin
    (* no checker consulted: soundness rests entirely on the static proof *)
    (match spec with
    | S_grant _ -> ()
    | S_deny why ->
        violate t ~cycle p_elide
          (Printf.sprintf
             "task %d ran with checks elided but its access (obj %d, [%d,%d)%s) \
              is not statically safe: %s"
             src obj off (off + len) (if write then ", write" else "") why));
    "elided"
  end
  else begin
    let req = req_for t ~src ~obj ~off ~len ~write in
    let impl = Capchecker.Shim.check t.fleet req in
    let mirror = Capchecker.Checker.check t.mirror req in
    (* the no-out-of-bounds invariant, differentially against the oracle *)
    (match (impl, spec) with
    | Guard.Iface.Granted { phys; _ }, S_grant p when phys <> p ->
        violate t ~cycle p_phys
          (Printf.sprintf "granted phys 0x%x, oracle says 0x%x" phys p)
    | Guard.Iface.Granted _, S_grant _ -> ()
    | Guard.Iface.Granted { phys; _ }, S_deny why ->
        violate t ~cycle p_oob_grant
          (Printf.sprintf
             "task %d %s obj %d [%d,%d) reached memory at 0x%x but the oracle \
              denies it (%s)"
             src (if write then "write" else "read") obj off (off + len) phys
             why)
    | Guard.Iface.Denied d, S_grant _ ->
        violate t ~cycle p_benign_denial
          (Printf.sprintf "oracle grants this access; checker denied it (%s)"
             d.Guard.Iface.detail)
    | Guard.Iface.Denied _, S_deny _ ->
        Hashtbl.replace t.denied_since (src, obj) ());
    (* placement parity: the shim fleet must agree with pure-central *)
    (match (impl, mirror) with
    | Guard.Iface.Granted { phys = p1; _ }, Guard.Iface.Granted { phys = p2; _ }
      when p1 = p2 ->
        ()
    | Guard.Iface.Denied d1, Guard.Iface.Denied d2
      when d1.Guard.Iface.code = d2.Guard.Iface.code
           && d1.Guard.Iface.detail = d2.Guard.Iface.detail ->
        ()
    | _ ->
        violate t ~cycle p_parity
          (Printf.sprintf "shim path says %S, central says %S"
             (outcome_note impl) (outcome_note mirror)));
    outcome_note impl
  end

let capture_dirty t ~task ~obj =
  if t.sc.Model.sc_mutation = Model.M_ghost_exn then
    match
      Capchecker.Table.lookup (Capchecker.Checker.table t.central) ~task ~obj
    with
    | Some e when e.Capchecker.Table.exn_bit ->
        Hashtbl.replace t.dirty (task, obj) ()
    | _ -> ()

let exec_driver t ~cycle op =
  match op with
  | Model.Install { task; obj; perm } ->
      let ordinal = t.install_ordinal in
      t.install_ordinal <- ordinal + 1;
      if t.sc.Model.sc_fault_install = Some ordinal then
        (* PR 2's transient table-pressure fault, pinned to one install: the
           driver observes Table_full and backs off — no table state moves *)
        "install refused (injected table-full)"
      else begin
        (match install_everywhere t ~task ~obj ~perm with
        | Ok () -> ()
        | Error msg -> violate t ~cycle p_install msg);
        "installed"
      end
  | Model.Evict { task; obj } ->
      capture_dirty t ~task ~obj;
      let was = Capchecker.Checker.evict t.central ~task ~obj in
      ignore (Capchecker.Checker.evict t.mirror ~task ~obj);
      Hashtbl.remove t.granted (task, obj);
      Hashtbl.remove t.denied_since (task, obj);
      if was then "evicted" else "evicted (no entry)"
  | Model.Revoke { task } ->
      (* spec: the epoch bump kills every grant of the task, always *)
      Hashtbl.iter
        (fun (tk, o) _ -> if tk = task then capture_dirty t ~task ~obj:o)
        t.granted;
      let keys =
        Hashtbl.fold
          (fun (tk, o) _ acc -> if tk = task then (tk, o) :: acc else acc)
          t.granted []
      in
      List.iter
        (fun key ->
          Hashtbl.remove t.granted key;
          Hashtbl.remove t.denied_since key)
        keys;
      if t.sc.Model.sc_mutation = Model.M_skip_revoke then
        "revoked (lost by the checker)"
      else begin
        let n = Capchecker.Checker.evict_task t.central ~task in
        ignore (Capchecker.Checker.evict_task t.mirror ~task);
        Printf.sprintf "revoked %d entries" n
      end
  | Model.Access _ -> assert false

let exec t ~cycle ~src op =
  if t.violation = None then begin
    let note =
      match op with
      | Model.Access { obj; off; len; write } ->
          exec_access t ~cycle ~src ~obj ~off ~len ~write
      | Model.Install _ | Model.Evict _ | Model.Revoke _ ->
          exec_driver t ~cycle op
    in
    check_exn_hygiene t ~cycle;
    t.steps <-
      { s_index = t.n_steps; s_cycle = cycle; s_src = src; s_op = op;
        s_note = note }
      :: t.steps;
    t.n_steps <- t.n_steps + 1
  end
