(* The verifier's state spaces.

   Phase 1 — the capability-encoding sweep: every region over a tiny
   [2^space_bits]-byte window (the {e exact} regime, where rounding must be
   the identity), the same window stretched through odd multipliers into
   ranges that force nonzero exponents (the {e rounding} regime), all 4096
   permission masks, and the coarse-mode address compose/split corners.
   Each derived capability is checked against an independently re-derived
   semantics of [Cap.access_ok] and round-tripped through the 128-bit
   encoding, so a bounds-decode bug cannot hide behind the same code
   computing both sides.

   Phase 2 — the scenario space: the full cross product
   [mode x elide x fault x grant-map] over a fixed task/object box (the
   grant map is a base-3 integer: absent / ro / rw per (task, obj) key),
   each paired with the canonical probe programs.  {!Explore} then runs
   every interleaving of every scenario.

   The random sampler drives the same model from a seeded {!Ccsim.Rng}
   (the simulator's only sanctioned randomness source), for the
   [--random] fallback when exhaustive bounds are out of reach. *)

type sweep = {
  sw_caps : int;    (** capabilities derived *)
  sw_checks : int;  (** individual predicate checks evaluated *)
  sw_failure : string option;  (** first failing check, if any *)
}

(* ---- phase 1: encodings ---- *)

let sem_perm = function
  | Cheri.Cap.Read -> Cheri.Perms.load
  | Cheri.Cap.Write -> Cheri.Perms.store
  | Cheri.Cap.Exec -> Cheri.Perms.execute

(* access_ok, re-derived from the architectural definition *)
let sem_ok (c : Cheri.Cap.t) ~addr ~size kind =
  c.Cheri.Cap.tag
  && (not (Cheri.Cap.is_sealed c))
  && Cheri.Perms.mem (sem_perm kind) c.Cheri.Cap.perms
  && size >= 0
  && addr >= c.Cheri.Cap.base
  && addr + size <= c.Cheri.Cap.top

let encoding_sweep ~space_bits =
  let w = 1 lsl space_bits in
  let caps = ref 0 and checks = ref 0 in
  let failure = ref None in
  let check name cond =
    incr checks;
    if (not cond) && !failure = None then failure := Some name
  in
  let checkf cond fmt =
    Printf.ksprintf
      (fun name ->
        incr checks;
        if (not cond) && !failure = None then failure := Some name)
      fmt
  in
  let probe c ~base ~top =
    let addrs = [ base - 1; base; top - 1; top ] in
    List.iter
      (fun addr ->
        if addr >= 0 then
          List.iter
            (fun kind ->
              let impl = Cheri.Cap.access_ok c ~addr ~size:1 kind = Ok () in
              checkf
                (impl = sem_ok c ~addr ~size:1 kind)
                "access_ok disagrees with the architectural semantics at \
                 0x%x (cap 0x%x..0x%x)"
                addr c.Cheri.Cap.base c.Cheri.Cap.top)
            [ Cheri.Cap.Read; Cheri.Cap.Write; Cheri.Cap.Exec ])
      addrs;
    (* whole-region and just-past-the-end accesses *)
    let len = top - base in
    checkf
      (Cheri.Cap.access_ok c ~addr:base ~size:len Cheri.Cap.Read = Ok ()
      = sem_ok c ~addr:base ~size:len Cheri.Cap.Read)
      "whole-region access disagrees (cap 0x%x..0x%x)" base top;
    checkf
      (Cheri.Cap.access_ok c ~addr:base ~size:(len + 1) Cheri.Cap.Read = Ok ()
      = sem_ok c ~addr:base ~size:(len + 1) Cheri.Cap.Read)
      "past-the-end access disagrees (cap 0x%x..0x%x)" base top
  in
  let roundtrip c =
    let words = Cheri.Compress.encode c in
    let c' = Cheri.Compress.decode ~tag:c.Cheri.Cap.tag words in
    checkf (Cheri.Cap.equal c c') "128-bit encode/decode round trip broke \
                                   cap 0x%x..0x%x perms=%s"
      c.Cheri.Cap.base c.Cheri.Cap.top
      (Cheri.Perms.to_string c.Cheri.Cap.perms)
  in
  (* exact regime: every region inside the window is representable as-is *)
  for base = 0 to w - 1 do
    for len = 0 to w - base do
      let top = base + len in
      check "tiny region reported non-exact"
        (Cheri.Bounds_enc.is_exact ~base ~top);
      match Cheri.Cap.set_bounds Cheri.Cap.root ~base ~length:len with
      | Error _ -> check "set_bounds refused a tiny region" false
      | Ok c ->
          incr caps;
          checkf
            (c.Cheri.Cap.base = base && c.Cheri.Cap.top = top)
            "exact bounds moved: asked 0x%x..0x%x got 0x%x..0x%x" base top
            c.Cheri.Cap.base c.Cheri.Cap.top;
          check "set_bounds_exact refused an exact region"
            (Result.is_ok
               (Cheri.Cap.set_bounds_exact Cheri.Cap.root ~base ~length:len));
          probe c ~base ~top;
          roundtrip c
    done
  done;
  (* rounding regime: odd multipliers force mantissa overflow, so the encoder
     must round — outward, idempotently, and identically to set_bounds *)
  let m_base = 0x4000_0001 and m_len = 0x2000_0003 in
  for b = 0 to w - 1 do
    for l = 0 to w - 1 do
      let base = b * m_base in
      let top = base + (l * m_len) + 1 in
      let rb, rt = Cheri.Bounds_enc.round ~base ~top in
      check "rounding does not cover the requested region"
        (rb <= base && top <= rt);
      check "rounding is not idempotent" (Cheri.Bounds_enc.is_exact ~base:rb ~top:rt);
      check "set_bounds_exact verdict disagrees with is_exact"
        (Result.is_ok
           (Cheri.Cap.set_bounds_exact Cheri.Cap.root ~base
              ~length:(top - base))
        = Cheri.Bounds_enc.is_exact ~base ~top);
      match Cheri.Cap.set_bounds Cheri.Cap.root ~base ~length:(top - base) with
      | Error _ -> check "set_bounds refused a representable region" false
      | Ok c ->
          incr caps;
          checkf
            (c.Cheri.Cap.base = rb && c.Cheri.Cap.top = rt)
            "set_bounds rounds differently from Bounds_enc.round at \
             0x%x..0x%x" base top;
          probe c ~base ~top:rt;
          roundtrip c
    done
  done;
  (* permissions: all 4096 masks over one fixed region *)
  (match Cheri.Cap.set_bounds Cheri.Cap.root ~base:0 ~length:8 with
  | Error _ -> check "set_bounds refused the perms-sweep region" false
  | Ok c0 ->
      for mask = 0 to 4095 do
        let perms = Cheri.Perms.of_mask mask in
        match Cheri.Cap.with_perms c0 perms with
        | Error _ -> check "with_perms refused a reduction from root" false
        | Ok c ->
            incr caps;
            List.iter
              (fun kind ->
                checkf
                  (Cheri.Cap.access_ok c ~addr:0 ~size:1 kind = Ok ()
                  = Cheri.Perms.mem (sem_perm kind) perms)
                  "permission gating disagrees on mask 0x%03x" mask)
              [ Cheri.Cap.Read; Cheri.Cap.Write; Cheri.Cap.Exec ];
            roundtrip c
      done);
  (* coarse-mode address layout corners *)
  let objs = [ 0; 1; 127; 255 ] in
  let window = Capchecker.Checker.coarse_window in
  let physes = [ 0; 1; w - 1; window / 2; window - 1 ] in
  List.iter
    (fun obj ->
      List.iter
        (fun phys ->
          let composed = Capchecker.Checker.compose_coarse ~obj phys in
          let obj', phys' = Capchecker.Checker.split_coarse composed in
          checkf
            (obj' = obj && phys' = phys)
            "coarse compose/split did not round trip (obj %d, phys 0x%x)" obj
            phys)
        physes)
    objs;
  List.iter
    (fun thunk ->
      check "coarse compose accepted an aliasing input"
        (match thunk () with
        | exception Invalid_argument _ -> true
        | (_ : int) -> false))
    [ (fun () -> Capchecker.Checker.compose_coarse ~obj:256 0);
      (fun () -> Capchecker.Checker.compose_coarse ~obj:0 window) ];
  { sw_caps = !caps; sw_checks = !checks; sw_failure = !failure }

(* ---- phase 2: scenarios ---- *)

type dims = {
  d_accels : int;
  d_objs : int;
  d_obj_len : int;
  d_depth : int;
  d_topology : Bus.Topology.kind;
  d_checkers : Capchecker.Shim.checking;
  d_mutation : Model.mutation;
}

let pow3 n =
  let r = ref 1 in
  for _ = 1 to n do
    r := !r * 3
  done;
  !r

let count d = 8 * pow3 (d.d_accels * d.d_objs)

let grants_of_code d code =
  let acc = ref [] in
  for t = d.d_accels - 1 downto 0 do
    for o = d.d_objs - 1 downto 0 do
      match code / pow3 ((t * d.d_objs) + o) mod 3 with
      | 0 -> ()
      | 1 -> acc := (t, o, Model.Ro) :: !acc
      | _ -> acc := (t, o, Model.Rw) :: !acc
    done
  done;
  !acc

let scenario_of d ~mode ~elide ~fault code =
  { Model.sc_mode = mode; sc_checkers = d.d_checkers;
    sc_topology = d.d_topology; sc_accels = d.d_accels; sc_objs = d.d_objs;
    sc_obj_len = d.d_obj_len; sc_grants = grants_of_code d code;
    sc_elide = elide; sc_fault_install = fault; sc_mutation = d.d_mutation;
    sc_programs =
      Model.default_programs ~accels:d.d_accels ~objs:d.d_objs
        ~obj_len:d.d_obj_len ~depth:d.d_depth }

(* Fixed enumeration order (grant code outermost, then mode / elide /
   fault): the "first counterexample" is a deterministic function of the
   dimensions, which the CI determinism gate diffs byte-for-byte. *)
let scenarios d =
  let n_codes = pow3 (d.d_accels * d.d_objs) in
  Seq.concat_map
    (fun code ->
      Seq.concat_map
        (fun mode ->
          Seq.concat_map
            (fun elide ->
              Seq.map
                (fun fault -> scenario_of d ~mode ~elide ~fault code)
                (List.to_seq [ None; Some 0 ]))
            (List.to_seq [ false; true ]))
        (List.to_seq [ Capchecker.Checker.Fine; Capchecker.Checker.Coarse ]))
    (Seq.init n_codes (fun c -> c))

(* ---- the random fallback ---- *)

let random_scenario rng d =
  let grants =
    List.concat
      (List.init d.d_accels (fun t ->
           List.filter_map
             (fun o ->
               match Ccsim.Rng.int rng 3 with
               | 0 -> None
               | 1 -> Some (t, o, Model.Ro)
               | _ -> Some (t, o, Model.Rw))
             (List.init d.d_objs (fun o -> o))))
  in
  let random_access () =
    Model.Access
      { obj = Ccsim.Rng.int rng d.d_objs;
        off = Ccsim.Rng.int rng (d.d_obj_len + 2);
        len = Ccsim.Rng.int_in rng 1 3;
        write = Ccsim.Rng.bool rng }
  in
  let random_driver () =
    let task = Ccsim.Rng.int rng d.d_accels in
    let obj = Ccsim.Rng.int rng d.d_objs in
    match Ccsim.Rng.int rng 4 with
    | 0 ->
        Model.Install
          { task; obj; perm = (if Ccsim.Rng.bool rng then Model.Rw else Model.Ro) }
    | 1 -> Model.Evict { task; obj }
    | 2 -> Model.Revoke { task }
    | _ ->
        Model.Install
          { task; obj; perm = (if Ccsim.Rng.bool rng then Model.Rw else Model.Ro) }
  in
  let programs =
    Array.init (d.d_accels + 1) (fun src ->
        let len = Ccsim.Rng.int_in rng 1 (max 1 d.d_depth) in
        List.init len (fun _ ->
            if src < d.d_accels then random_access () else random_driver ()))
  in
  let sc =
    { Model.sc_mode =
        (if Ccsim.Rng.bool rng then Capchecker.Checker.Fine
         else Capchecker.Checker.Coarse);
      sc_checkers = d.d_checkers; sc_topology = d.d_topology;
      sc_accels = d.d_accels; sc_objs = d.d_objs; sc_obj_len = d.d_obj_len;
      sc_grants = grants; sc_elide = Ccsim.Rng.bool rng;
      sc_fault_install =
        (if Ccsim.Rng.bool rng then Some (Ccsim.Rng.int rng 2) else None);
      sc_mutation = d.d_mutation; sc_programs = programs }
  in
  (* a uniformly random feasible schedule *)
  let remaining = Array.map List.length programs in
  let left = ref (Array.fold_left ( + ) 0 remaining) in
  let schedule = ref [] in
  while !left > 0 do
    let pick = ref (Ccsim.Rng.int rng !left) in
    Array.iteri
      (fun src r ->
        if !pick >= 0 then
          if !pick < r then begin
            schedule := src :: !schedule;
            remaining.(src) <- r - 1;
            decr left;
            pick := -1
          end
          else pick := !pick - r)
      remaining
  done;
  (sc, List.rev !schedule)
