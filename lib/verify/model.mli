(** The small-state system model of the bounded-exhaustive verifier.

    A {!scenario} is pure data: one finite configuration of the protection
    hardware (checker mode, checking placement, interconnect label, grant
    map, fault/elision/mutation knobs) plus one short straight-line program
    per source.  Sources [0 .. accels-1] are accelerator tasks issuing DMA
    accesses; source [accels] is the trusted driver issuing table mutations.
    {!Harness} executes a scenario; {!Explore} enumerates its interleavings.

    A scenario and a schedule round-trip through a compact replay token,
    which is what makes every counterexample a deterministic
    [capsim verify --replay] reproduction. *)

type mutation =
  | M_none
  | M_ghost_exn
      (** evict leaves the denied entry's exception bit set for the next
          install of the key (the slot-reuse bug class: [exn_bit] not
          cleared on evict) *)
  | M_wide_bounds
      (** installs widen the capability by one object length *)
  | M_skip_revoke
      (** a revocation-epoch bump never reaches the checker *)
  | M_elide_unproven
      (** check elision applied to every task, proven or not *)

val mutations : (string * mutation) list
val mutation_to_string : mutation -> string
val mutation_of_string : string -> (mutation, string) result

type perm = Ro | Rw

val perm_to_string : perm -> string

type op =
  | Access of { obj : int; off : int; len : int; write : bool }
      (** a DMA access by the issuing source's task, [off]/[len] relative to
          the object's base *)
  | Install of { task : int; obj : int; perm : perm }
  | Evict of { task : int; obj : int }
  | Revoke of { task : int }  (** epoch bump: evict every entry of [task] *)

type scenario = {
  sc_mode : Capchecker.Checker.mode;
  sc_checkers : Capchecker.Shim.checking;
  sc_topology : Bus.Topology.kind;
  sc_accels : int;
  sc_objs : int;
  sc_obj_len : int;  (** bytes per object; objects tile the address space *)
  sc_grants : (int * int * perm) list;  (** boot-installed (task, obj, perm) *)
  sc_elide : bool;  (** elide checks for statically proven tasks *)
  sc_fault_install : int option;
      (** driver-install ordinal forced to report [Table_full] *)
  sc_mutation : mutation;
  sc_programs : op list array;  (** per source; driver last *)
}

val sources : scenario -> int
val driver_src : scenario -> int
val obj_base : scenario -> int -> int

val mode_to_string : Capchecker.Checker.mode -> string
val mode_of_string : string -> (Capchecker.Checker.mode, string) result

val op_to_string : op -> string
val op_pretty : int -> op -> string
(** [op_pretty src op] — human-readable, for counterexample traces. *)

val default_programs :
  accels:int -> objs:int -> obj_len:int -> depth:int -> op list array
(** The canonical probe programs: each accelerator reads its own object in
    bounds, writes across its top boundary and reaches into a neighbour; the
    driver revokes task 0 mid-flight, re-grants it and churns the last
    task's entry.  [depth] truncates every program uniformly. *)

val statically_proven : scenario -> int -> bool
(** The elision side-condition: every access of the task lies inside a boot
    grant and no driver op mutates the task's entries during the run. *)

val elided : scenario -> int -> bool
(** Whether a source runs with per-access checks elided: an accelerator that
    is {!statically_proven} under [sc_elide], or any accelerator under
    [M_elide_unproven]. *)

val token_of : scenario -> int list -> string
val of_token : string -> (scenario * int list, string) result
(** Round-trip: [of_token (token_of sc sched) = Ok (sc, sched)].  Parsing
    validates bounds and that the schedule matches the programs. *)
