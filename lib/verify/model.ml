(* The small-state system model the bounded-exhaustive verifier explores.

   A {e scenario} is one closed, finite configuration of the simulated
   protection hardware: a checker mode, a checking placement, an interconnect
   label, a handful of accelerator tasks over a handful of tiny objects, a
   boot-time capability grant map, and one short straight-line program per
   source.  Sources [0 .. accels-1] are accelerator tasks issuing DMA
   accesses; the last source is the trusted driver issuing table mutations
   (install / evict / revocation-epoch bump).  Everything is pure data here —
   {!Harness} gives a scenario its semantics, {!Explore} its interleavings.

   A scenario plus a schedule serializes to a compact token and back
   ([token_of] / [of_token]), which is what makes every counterexample a
   replayable [capsim verify --replay] command. *)

type mutation =
  | M_none
  | M_ghost_exn      (* evicting a denied entry leaves its exception bit for
                        the next install of the key (the pre-fix slot-reuse
                        bug: exn_bit not cleared on evict) *)
  | M_wide_bounds    (* installs widen the capability by one object length —
                        a checker that decodes bounds one object too wide *)
  | M_skip_revoke    (* a revocation-epoch bump never reaches the checker *)
  | M_elide_unproven (* check elision applied to every task, proven or not *)

let mutations =
  [ ("none", M_none); ("ghost-exn", M_ghost_exn);
    ("wide-bounds", M_wide_bounds); ("skip-revoke", M_skip_revoke);
    ("elide-unproven", M_elide_unproven) ]

let mutation_to_string m = fst (List.find (fun (_, v) -> v = m) mutations)

let mutation_of_string s =
  match List.assoc_opt s mutations with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown mutation %S (%s)" s
           (String.concat "|" (List.map fst mutations)))

type perm = Ro | Rw

let perm_to_string = function Ro -> "ro" | Rw -> "rw"

type op =
  | Access of { obj : int; off : int; len : int; write : bool }
  | Install of { task : int; obj : int; perm : perm }
  | Evict of { task : int; obj : int }
  | Revoke of { task : int }

type scenario = {
  sc_mode : Capchecker.Checker.mode;
  sc_checkers : Capchecker.Shim.checking;
  sc_topology : Bus.Topology.kind;
  sc_accels : int;
  sc_objs : int;
  sc_obj_len : int;
  sc_grants : (int * int * perm) list;  (* boot-installed, (task, obj, perm) *)
  sc_elide : bool;          (* elide checks for statically proven tasks *)
  sc_fault_install : int option;
      (* driver-install ordinal forced to report Table_full (PR 2's
         transient table-pressure fault, pinned deterministically) *)
  sc_mutation : mutation;
  sc_programs : op list array;  (* per source; driver last *)
}

let sources sc = sc.sc_accels + 1
let driver_src sc = sc.sc_accels
let obj_base sc obj = obj * sc.sc_obj_len

let mode_to_string = function
  | Capchecker.Checker.Fine -> "fine"
  | Capchecker.Checker.Coarse -> "coarse"

let mode_of_string = function
  | "fine" -> Ok Capchecker.Checker.Fine
  | "coarse" -> Ok Capchecker.Checker.Coarse
  | s -> Error (Printf.sprintf "unknown checker mode %S (fine|coarse)" s)

let op_to_string = function
  | Access { obj; off; len; write } ->
      Printf.sprintf "%c%d.%d.%d" (if write then 'w' else 'r') obj off len
  | Install { task; obj; perm } ->
      Printf.sprintf "I%d.%d.%s" task obj (perm_to_string perm)
  | Evict { task; obj } -> Printf.sprintf "E%d.%d" task obj
  | Revoke { task } -> Printf.sprintf "V%d" task

let op_pretty src = function
  | Access { obj; off; len; write } ->
      Printf.sprintf "task %d %s obj %d [%d,%d)" src
        (if write then "write" else "read") obj off (off + len)
  | Install { task; obj; perm } ->
      Printf.sprintf "driver install (task %d, obj %d) %s" task obj
        (perm_to_string perm)
  | Evict { task; obj } -> Printf.sprintf "driver evict (task %d, obj %d)" task obj
  | Revoke { task } -> Printf.sprintf "driver revoke task %d (epoch bump)" task

(* Deterministic per-source programs: each accelerator probes its own object
   in bounds, crosses its top boundary, and reaches into a neighbour; the
   driver revokes task 0 mid-flight, re-grants it, and churns the last
   task's entry.  [depth] truncates every program uniformly, bounding the
   interleaving space. *)
let default_programs ~accels ~objs ~obj_len ~depth =
  let progs = Array.make (accels + 1) [] in
  for t = 0 to accels - 1 do
    let own = t mod objs and next = (t + 1) mod objs in
    let pool =
      [ Access { obj = own; off = 0; len = 1; write = false };
        Access { obj = own; off = obj_len - 1; len = 2; write = true };
        Access { obj = next; off = 0; len = 1; write = true };
        Access { obj = own; off = 0; len = 1; write = true } ]
    in
    progs.(t) <- List.filteri (fun i _ -> i < depth) pool
  done;
  let last = accels - 1 in
  let pool =
    [ Revoke { task = 0 };
      Install { task = 0; obj = 0; perm = Rw };
      Evict { task = last; obj = last mod objs };
      Install { task = last; obj = last mod objs; perm = Ro } ]
  in
  progs.(accels) <- List.filteri (fun i _ -> i < depth) pool;
  progs

(* A task may run with its per-access checks elided only when that is
   statically sound: every access it issues lies inside a boot grant (right
   object, right permission, in bounds) and no driver op ever mutates one of
   its table entries during the run — the same side-condition Soc.Run's
   elision obeys by construction (grants live for the task's whole
   lifetime).  [M_elide_unproven] deliberately ignores this predicate. *)
let statically_proven sc task =
  let granted obj write =
    List.exists
      (fun (t, o, p) -> t = task && o = obj && (p = Rw || not write))
      sc.sc_grants
  in
  let access_ok = function
    | Access { obj; off; len; write } ->
        granted obj write && off >= 0 && len >= 1 && off + len <= sc.sc_obj_len
    | Install _ | Evict _ | Revoke _ -> false
  in
  let driver_touches = function
    | Install { task = t; _ } | Evict { task = t; _ } | Revoke { task = t } ->
        t = task
    | Access _ -> false
  in
  List.for_all access_ok sc.sc_programs.(task)
  && not (List.exists driver_touches sc.sc_programs.(driver_src sc))

let elided sc task =
  task < sc.sc_accels
  && (sc.sc_mutation = M_elide_unproven
     || (sc.sc_elide && statically_proven sc task))

(* ---- replay tokens ---- *)

let ops_to_string ops = String.concat ";" (List.map op_to_string ops)

let token_of sc schedule =
  let fields =
    [ "v1";
      "mode=" ^ mode_to_string sc.sc_mode;
      "chk=" ^ Capchecker.Shim.checking_to_string sc.sc_checkers;
      "topo=" ^ Bus.Topology.kind_to_string sc.sc_topology;
      Printf.sprintf "a=%d" sc.sc_accels;
      Printf.sprintf "o=%d" sc.sc_objs;
      Printf.sprintf "l=%d" sc.sc_obj_len;
      Printf.sprintf "elide=%d" (if sc.sc_elide then 1 else 0);
      ( "fault="
      ^ match sc.sc_fault_install with None -> "" | Some k -> string_of_int k );
      "mut=" ^ mutation_to_string sc.sc_mutation;
      "g="
      ^ String.concat ","
          (List.map
             (fun (t, o, p) -> Printf.sprintf "%d.%d.%s" t o (perm_to_string p))
             sc.sc_grants) ]
    @ List.mapi
        (fun i ops -> Printf.sprintf "p%d=%s" i (ops_to_string ops))
        (Array.to_list sc.sc_programs)
    @ [ "s=" ^ String.concat "," (List.map string_of_int schedule) ]
  in
  String.concat "|" fields

let parse_int name s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "token field %s: %S is not an integer" name s)

let parse_perm = function
  | "ro" -> Ok Ro
  | "rw" -> Ok Rw
  | s -> Error (Printf.sprintf "bad permission %S (ro|rw)" s)

let parse_op s =
  let ( let* ) = Result.bind in
  if s = "" then Error "empty op"
  else
    let body = String.sub s 1 (String.length s - 1) in
    let parts = String.split_on_char '.' body in
    match (s.[0], parts) with
    | ('r' | 'w'), [ o; off; len ] ->
        let* obj = parse_int "op.obj" o in
        let* off = parse_int "op.off" off in
        let* len = parse_int "op.len" len in
        Ok (Access { obj; off; len; write = s.[0] = 'w' })
    | 'I', [ t; o; p ] ->
        let* task = parse_int "op.task" t in
        let* obj = parse_int "op.obj" o in
        let* perm = parse_perm p in
        Ok (Install { task; obj; perm })
    | 'E', [ t; o ] ->
        let* task = parse_int "op.task" t in
        let* obj = parse_int "op.obj" o in
        Ok (Evict { task; obj })
    | 'V', [ t ] ->
        let* task = parse_int "op.task" t in
        Ok (Revoke { task })
    | _ -> Error (Printf.sprintf "unparseable op %S" s)

let parse_list parse = function
  | "" -> Ok []
  | s ->
      List.fold_right
        (fun item acc ->
          Result.bind acc (fun tl -> Result.map (fun v -> v :: tl) (parse item)))
        (String.split_on_char ',' s) (Ok [])

let validate sc schedule =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if sc.sc_accels < 1 || sc.sc_accels > 8 then fail "accels out of [1,8]"
  else if sc.sc_objs < 1 || sc.sc_objs > 16 then fail "objs out of [1,16]"
  else if sc.sc_obj_len < 2 || sc.sc_obj_len > 4096 then
    fail "obj-len out of [2,4096]"
  else
    let bad_key t o = t < 0 || t >= sc.sc_accels || o < 0 || o >= sc.sc_objs in
    let bad_op = function
      | Access { obj; off; len; _ } ->
          obj < 0 || obj >= sc.sc_objs || off < 0 || len < 1
          || off + len > 4 * sc.sc_obj_len
      | Install { task; obj; _ } | Evict { task; obj } -> bad_key task obj
      | Revoke { task } -> task < 0 || task >= sc.sc_accels
    in
    if List.exists (fun (t, o, _) -> bad_key t o) sc.sc_grants then
      fail "grant outside the task/object space"
    else if
      Array.exists (fun ops -> List.exists bad_op ops) sc.sc_programs
    then fail "program op outside the scenario bounds"
    else
      let remaining = Array.map List.length sc.sc_programs in
      let ok =
        List.for_all
          (fun src ->
            src >= 0
            && src < sources sc
            && remaining.(src) > 0
            &&
            (remaining.(src) <- remaining.(src) - 1;
             true))
          schedule
      in
      if not ok then fail "schedule grants a source with no remaining ops"
      else Ok (sc, schedule)

let of_token token =
  let ( let* ) = Result.bind in
  let fields = String.split_on_char '|' token in
  match fields with
  | "v1" :: rest ->
      let kv =
        List.filter_map
          (fun f ->
            match String.index_opt f '=' with
            | Some i ->
                Some
                  ( String.sub f 0 i,
                    String.sub f (i + 1) (String.length f - i - 1) )
            | None -> None)
          rest
      in
      let get name =
        match List.assoc_opt name kv with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "token is missing field %s" name)
      in
      let* mode = Result.bind (get "mode") mode_of_string in
      let* chk = Result.bind (get "chk") Capchecker.Shim.checking_of_string in
      let* topo = Result.bind (get "topo") Bus.Topology.kind_of_string in
      let* accels = Result.bind (get "a") (parse_int "a") in
      let* objs = Result.bind (get "o") (parse_int "o") in
      let* obj_len = Result.bind (get "l") (parse_int "l") in
      let* elide = Result.bind (get "elide") (parse_int "elide") in
      let* fault =
        match get "fault" with
        | Ok "" -> Ok None
        | Ok s -> Result.map Option.some (parse_int "fault" s)
        | Error _ as e -> e |> Result.map (fun _ -> None)
      in
      let* mutation = Result.bind (get "mut") mutation_of_string in
      let parse_grant s =
        match String.split_on_char '.' s with
        | [ t; o; p ] ->
            let* task = parse_int "g.task" t in
            let* obj = parse_int "g.obj" o in
            let* perm = parse_perm p in
            Ok (task, obj, perm)
        | _ -> Error (Printf.sprintf "bad grant %S" s)
      in
      let* grants = Result.bind (get "g") (parse_list parse_grant) in
      let parse_program s =
        parse_list parse_op (String.concat "," (String.split_on_char ';' s))
      in
      let* programs =
        let rec go i acc =
          if i > accels then Ok (List.rev acc)
          else
            let* p = Result.bind (get (Printf.sprintf "p%d" i)) parse_program in
            go (i + 1) (p :: acc)
        in
        Result.map Array.of_list (go 0 [])
      in
      let* schedule = Result.bind (get "s") (parse_list (parse_int "s")) in
      validate
        { sc_mode = mode; sc_checkers = chk; sc_topology = topo;
          sc_accels = accels; sc_objs = objs; sc_obj_len = obj_len;
          sc_grants = grants; sc_elide = elide <> 0;
          sc_fault_install = fault; sc_mutation = mutation;
          sc_programs = programs }
        schedule
  | _ -> Error "replay token must start with v1"
