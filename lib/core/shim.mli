(** Per-source CapChecker shims: distributed adjudication over a shared
    central table.

    One fleet serves every accelerator in a system.  In [Central] mode
    checks go straight to the central {!Checker} through a single-ported
    shared path; in [Distributed] mode each source gets a small private
    {!Table} (the Praesidio memory-shim arrangement) that adjudicates hits
    locally in {!Checker.check_latency} cycles, while misses take the shared
    port to the central table and refill the private copy.

    The central checker remains the sole authority: shims hold read copies
    that are invalidated on every central install/evict (via
    {!Checker.on_update}), denials route through the central denial
    bookkeeping, and missing-entry denials are byte-identical to the
    centralized ones — so verdicts never depend on the placement, only
    latency does.

    Port contention is modelled only when a cycle clock is connected
    ({!connect_clock}, done by the event engine for non-[Shared]
    topologies): each central-port access occupies one cycle on a monotone
    latch and reports its queuing wait.  Unclocked, the port adds zero wait,
    preserving the legacy paths bit-for-bit. *)

type checking = Central | Distributed

val checking_to_string : checking -> string
(** ["central"] / ["shim"]. *)

val checking_of_string : string -> (checking, string) result

type t

val default_shim_entries : int
val default_refill_latency : int

val create :
  ?shim_entries:int -> ?refill_latency:int -> central:Checker.t ->
  sources:int -> checking -> t
(** [sources] is the declared fleet size (area accounting only — shim state
    is created lazily per requesting source).  [shim_entries] (default 8)
    sizes each private table; [refill_latency] (default 2) is the extra
    cycles a miss pays to copy the entry in. *)

val checking : t -> checking
val central : t -> Checker.t

val connect_clock : t -> (unit -> int) -> unit
(** Attach the event engine's cycle clock; enables port-contention
    modelling. *)

val disconnect_clock : t -> unit
(** Detach the clock and reset the port latch (end of a timed phase). *)

val check : t -> Guard.Iface.req -> Guard.Iface.outcome

val guard : t -> Guard.Iface.t
(** The central checker's guard with [check] replaced by the fleet path,
    the area including the shim tables, and ["+shims"] appended to the name
    in [Distributed] mode.  [entries_in_use] still reads central live
    occupancy. *)

val hits : t -> int
(** Shim-local adjudications (no central-port access). *)

val misses : t -> int
(** Checks that took the shared miss/refill path (each also emits
    {!Obs.Event.Check_table_miss}). *)

val shim_count : t -> int
(** Sources that have checked at least once. *)

val invalidations : t -> int
(** Shim-table entries dropped through the central invalidate channel
    ({!Checker.on_update}): a revocation-epoch bump or any other central
    mutation landing between a shim refill and the next access shows up
    here — the stale-copy race the verification layer pins directly. *)

val shim_stats : t -> Table.stats
(** {!Table.stats} summed across every shim's private table. *)

val observe_shims : t -> into:Obs.Metrics.t -> unit
(** Surface the aggregate as ["shim.*"] metrics (installs, evictions, live,
    hits, misses). *)

val area_luts : t -> int
(** Central checker area, plus one lightweight table per declared source in
    [Distributed] mode. *)
