type mode = Fine | Coarse

(* Table mutations, broadcast to registered listeners so replicas of table
   state held elsewhere (the per-source shims of {!Shim}) can invalidate.
   Matches the hardware's snoop/invalidate channel on the refill network. *)
type update =
  | Up_install of { task : int; obj : int }
  | Up_evict of { task : int; obj : int }
  | Up_evict_task of { task : int }

type t = {
  mode : mode;
  table : Table.t;
  obs : Obs.Trace.t;
  faults : Fault.Injector.t;
  mutable flag : bool;
  mutable listeners : (update -> unit) list;
  log : (int * Guard.Iface.denial) Obs.Ring.t;
      (* bounded denial log, oldest first via Ring.to_list; hardware keeps
         only the flag and per-entry bits — and a denial storm must not grow
         simulator memory either (the full stream lives in the trace) *)
}

let default_log_capacity = 256

let create ?(entries = 256) ?(obs = Obs.Trace.null) ?(log_capacity = default_log_capacity)
    ?(faults = Fault.Injector.none) mode =
  {
    mode;
    table = Table.create ~entries;
    obs;
    faults;
    flag = false;
    listeners = [];
    log = Obs.Ring.create ~capacity:log_capacity;
  }

let on_update t f = t.listeners <- t.listeners @ [ f ]

let notify t u = List.iter (fun f -> f u) t.listeners

let mode t = t.mode
let table t = t.table
let obs t = t.obs

let check_latency = 1

let obj_id_bits = 8

(* The paper's Coarse encoding packs the object id into the top [obj_id_bits]
   of the 64-bit bus address, above the 56-bit physical space.  The
   simulator's bus word is a 63-bit OCaml int — one bit short of that layout:
   packing at bit 56 silently dropped the id's top bit, aliasing object
   [128+k] onto object [k].  The model therefore reserves the top
   [obj_id_bits] of the host word's non-negative range instead, leaving a
   54-bit coarse physical window (bits 0-53) that still covers every address
   the simulated SoC can allocate, and keeps every composed bus word
   non-negative. *)
let coarse_shift = Sys.int_size - 1 - obj_id_bits
let coarse_window = 1 lsl coarse_shift

let compose_coarse ~obj phys =
  (* Truncating silently would alias a foreign object id or address — a
     capability-confusion bug in the trusted driver.  Reject loudly. *)
  if not (obj >= 0 && obj < 1 lsl obj_id_bits) then
    invalid_arg
      (Printf.sprintf "Checker.compose_coarse: object id %d outside [0, %d)"
         obj (1 lsl obj_id_bits));
  if not (phys >= 0 && phys < coarse_window) then
    invalid_arg
      (Printf.sprintf
         "Checker.compose_coarse: physical address 0x%x outside the %d-bit \
          coarse window"
         phys coarse_shift);
  (obj lsl coarse_shift) lor phys

let split_coarse addr =
  ( (addr lsr coarse_shift) land ((1 lsl obj_id_bits) - 1),
    addr land (coarse_window - 1) )

let deny t ~task ~obj detail =
  let denial = { Guard.Iface.code = "capchecker"; detail } in
  t.flag <- true;
  Table.mark_exception t.table ~task ~obj;
  Obs.Ring.push t.log (task, denial);
  Obs.Trace.emit t.obs (Obs.Event.Check_denial { task; obj; detail });
  Guard.Iface.Denied denial

let resolve t (req : Guard.Iface.req) =
  match t.mode with
  | Fine -> (
      match req.port with
      | Some port -> (port, req.addr)
      | None -> (-1, req.addr))
  | Coarse -> split_coarse req.addr

let record_denial t ~task ~obj detail = deny t ~task ~obj detail

let missing_provenance = "fine-mode request without object provenance"

let missing_capability ~task ~obj =
  Printf.sprintf "no capability for task %d object %d" task obj

(* The shared tail of adjudication: evaluate the fetched entry against the
   request.  [latency] varies with where the entry was found (central table,
   shim hit, shim miss + refill) but the verdict never does — which is what
   the cross-topology verdict-parity tests pin. *)
let adjudicate_entry t (req : Guard.Iface.req) ~task ~obj ~phys ~latency
    (entry : Table.entry) =
  let kind =
    match req.kind with
    | Guard.Iface.Read -> Cheri.Cap.Read
    | Guard.Iface.Write -> Cheri.Cap.Write
  in
  match Cheri.Cap.access_ok entry.Table.cap ~addr:phys ~size:req.size kind with
  | Ok () ->
      Obs.Trace.emit t.obs (Obs.Event.Check_ok { task; obj; latency });
      Guard.Iface.Granted { phys; latency }
  | Error e ->
      deny t ~task ~obj
        (Printf.sprintf "task %d object %d: %s (%s)" task obj
           (Cheri.Cap.error_to_string e)
           (Guard.Iface.req_to_string req))

let check t (req : Guard.Iface.req) =
  let task = req.source in
  let obj, phys = resolve t req in
  if obj < 0 then deny t ~task ~obj:0 missing_provenance
  else
    match Table.lookup t.table ~task ~obj with
    | None -> deny t ~task ~obj (missing_capability ~task ~obj)
    | Some entry ->
        adjudicate_entry t req ~task ~obj ~phys ~latency:check_latency entry

let install t ~task ~obj cap =
  (* An injected table-full models transient table pressure: the install is
     refused exactly as if the table had no free slot, and the driver's
     normal stall/retry handling takes over. *)
  if Fault.Injector.table_full t.faults then Table.Table_full
  else
  let result = Table.install t.table ~task ~obj cap in
  (match result with
  | Table.Installed slot ->
      Obs.Trace.emit t.obs (Obs.Event.Table_insert { task; obj; slot });
      notify t (Up_install { task; obj })
  | Table.Table_full | Table.Rejected_untagged -> ());
  result

let evict t ~task ~obj =
  let evicted = Table.evict t.table ~task ~obj in
  if evicted then begin
    Obs.Trace.emit t.obs (Obs.Event.Table_evict { task; obj; count = 1 });
    notify t (Up_evict { task; obj })
  end;
  evicted

let evict_task t ~task =
  let count = Table.evict_task t.table ~task in
  if count > 0 then begin
    Obs.Trace.emit t.obs (Obs.Event.Table_evict { task; obj = -1; count });
    notify t (Up_evict_task { task })
  end;
  count

let table_stats t = Table.stats t.table

let observe_table t ~into =
  let s = Table.stats t.table in
  let set name v =
    (* [add] on a fresh metrics store; callers merging several checkers into
       one store get the sum, which is what a fleet-wide gauge means here. *)
    Obs.Metrics.add into name v
  in
  set "checker.table_installs" s.Table.st_installs;
  set "checker.table_evictions" s.Table.st_evictions;
  set "checker.table_conflicts" s.Table.st_conflicts;
  set "checker.table_rejected" s.Table.st_rejected;
  set "checker.table_live" s.Table.st_live;
  set "checker.table_peak" s.Table.st_peak

let exception_flag t = t.flag
let clear_exception_flag t = t.flag <- false

let exception_log t = List.map snd (Obs.Ring.to_list t.log)

let exception_log_for t ~task =
  List.filter_map
    (fun (owner, d) -> if owner = task then Some d else None)
    (Obs.Ring.to_list t.log)

let dropped_denials t = Obs.Ring.dropped t.log
let log_capacity t = Obs.Ring.capacity t.log

let install_cycles (p : Bus.Params.t) = 3 * p.mmio_write
let evict_cycles (p : Bus.Params.t) = p.mmio_write
let poll_cycles (p : Bus.Params.t) = p.mmio_read

let area_luts t = Area.luts ~entries:(Table.capacity t.table)

let as_guard t =
  {
    Guard.Iface.info =
      {
        name = (match t.mode with Fine -> "capchecker-fine" | Coarse -> "capchecker-coarse");
        granularity =
          (match t.mode with Fine -> Guard.Iface.G_object | Coarse -> Guard.Iface.G_task);
        area_luts = area_luts t;
      };
    check = (fun req -> check t req);
    entries_in_use = (fun () -> Table.live_count t.table);
    (* A granted check is a pure table lookup against driver-programmed
       state at the fixed pipeline latency; only denials mutate (exception
       flag, denial log), and those are exactly the accesses the proof-
       driven fast path can never take. *)
    const_latency = Some check_latency;
  }
