(** The CapChecker: run-time capability checks on accelerator DMA (Figure 5).

    Two provenance modes adapt to the accelerator's memory interface:
    - {e Fine} — every object is distinguished by its hardware port (or an
      object identifier hardened in the interface metadata); protection is at
      object granularity.
    - {e Coarse} — the accelerator multiplexes all traffic on one port with no
      provenance; the driver retrofits an object id into the top
      {!obj_id_bits} bits of the 64-bit address, leaving a
      {!Cheri.Cap.max_address_bits}-bit physical space.  A task that corrupts
      its own address arithmetic can reach its {e own} other objects (the
      worst case degrades to task granularity) but never another task's,
      because the task id comes from the interconnect source, which it cannot
      forge.

    On a violation the checker raises a global exception flag (visible to the
    CPU over MMIO) and sets the per-entry exception bit for software tracing;
    the access never reaches memory. *)

type mode = Fine | Coarse

type t

val create :
  ?entries:int -> ?obs:Obs.Trace.t -> ?log_capacity:int ->
  ?faults:Fault.Injector.t -> mode -> t
(** [entries] defaults to 256 (the prototype's table size).  [obs] (default
    {!Obs.Trace.null}) receives [Check_ok]/[Check_denial] per adjudication and
    [Table_insert]/[Table_evict] for table maintenance.  [log_capacity]
    (default 256) bounds the software-visible denial log: a denial storm
    retains only the newest entries and counts the rest
    ({!dropped_denials}).  [faults] (default {!Fault.Injector.none}) can force
    individual installs to report [Table_full], modelling transient table
    pressure. *)

val mode : t -> mode
val table : t -> Table.t
val obs : t -> Obs.Trace.t
(** The event sink (shared with the MMIO register window). *)

val check_latency : int
(** Pipeline stages added on the DMA path: table fetch + capability decode +
    bounds/permission compare, fully pipelined (1 cycle). *)

(** {1 Coarse-mode address layout} *)

val obj_id_bits : int
(** 8 — the reserved top address bits. *)

val coarse_shift : int
(** Bit position of the object id in a composed bus word: the top
    [obj_id_bits] of the simulator's 63-bit int (54 on a 64-bit host).  The
    hardware packs at bit {!Cheri.Cap.max_address_bits}; the model packs two
    bits lower so that all 256 object ids survive the host's narrower word
    without aliasing. *)

val coarse_window : int
(** [2^coarse_shift] — exclusive upper bound on a coarse-composable physical
    address. *)

val compose_coarse : obj:int -> int -> int
(** [compose_coarse ~obj phys] is the bus address the trusted driver loads
    into the accelerator's pointer register.

    @raise Invalid_argument when [obj] is outside [0, 2^{!obj_id_bits}) or
    [phys] outside [0, {!coarse_window}) — silent truncation would alias
    another object's window. *)

val split_coarse : int -> int * int
(** [(obj, phys)] from a bus address; inverse of {!compose_coarse} on its
    accepted domain. *)

(** {1 The DMA-path check} *)

val check : t -> Guard.Iface.req -> Guard.Iface.outcome

val as_guard : t -> Guard.Iface.t

(** {1 Distributed-checking hooks (see {!Shim})}

    The pieces of {!check} a per-source shim needs to adjudicate locally
    while staying verdict-identical to the central unit: provenance
    resolution, the entry-evaluation tail, and the denial bookkeeping (flag,
    per-entry exception bit, bounded log, [Check_denial] event). *)

val resolve : t -> Guard.Iface.req -> int * int
(** [(obj, phys)] per the checker's addressing mode; [obj < 0] means the
    request carried no object provenance (a Fine-mode request without a
    port) and must be denied with {!missing_provenance}. *)

val adjudicate_entry :
  t -> Guard.Iface.req -> task:int -> obj:int -> phys:int -> latency:int ->
  Table.entry -> Guard.Iface.outcome
(** Evaluate a fetched entry against the request: emits [Check_ok] (with the
    caller's [latency] — central fetch, shim hit and shim refill differ) or
    records the denial.  The verdict is independent of [latency]. *)

val record_denial : t -> task:int -> obj:int -> string -> Guard.Iface.outcome
(** The central denial path: raises the global flag, marks the entry's
    exception bit, pushes the bounded log and emits [Check_denial] — shims
    route every denial through here so software observes one stream. *)

val missing_provenance : string
val missing_capability : task:int -> obj:int -> string
(** Canonical denial details, shared so shim denials are byte-identical. *)

type update =
  | Up_install of { task : int; obj : int }
  | Up_evict of { task : int; obj : int }
  | Up_evict_task of { task : int }

val on_update : t -> (update -> unit) -> unit
(** Register a table-mutation listener (fired after the event emit, in
    registration order) — the invalidate channel replicas subscribe to. *)

(** {1 CPU-side MMIO interface (capability interconnect)} *)

val install : t -> task:int -> obj:int -> Cheri.Cap.t -> Table.install_result
val evict : t -> task:int -> obj:int -> bool
val evict_task : t -> task:int -> int

val table_stats : t -> Table.stats
(** Cumulative table-pressure counters (see {!Table.stats}).  Installs
    suppressed by an injected [Table_full] fault never reach the table and are
    not counted — the counters describe real hardware state transitions. *)

val observe_table : t -> into:Obs.Metrics.t -> unit
(** Surface {!table_stats} as ["checker.table_*"] counters in a metrics
    store: [table_installs], [table_evictions], [table_conflicts],
    [table_rejected], plus the [table_live] gauge and [table_peak]
    high-water mark. *)

val exception_flag : t -> bool
(** The global "an exception has been caught" flag. *)

val clear_exception_flag : t -> unit

val exception_log : t -> Guard.Iface.denial list
(** Retained denials, oldest first (simulator observability; hardware keeps
    only the flag and per-entry bits).  Bounded: at most [log_capacity]
    entries are kept, newest win — the full denial stream is available
    through the event trace. *)

val exception_log_for : t -> task:int -> Guard.Iface.denial list
(** Retained denials attributable to one task (what the driver reports to
    the application that owned the task). *)

val dropped_denials : t -> int
(** Denials discarded from the bounded log because it was full. *)

val log_capacity : t -> int

val install_cycles : Bus.Params.t -> int
(** Driver cost of installing one capability: two 64-bit data words plus a
    command word over the capability interconnect. *)

val evict_cycles : Bus.Params.t -> int
val poll_cycles : Bus.Params.t -> int
(** Reading the global exception flag. *)

val area_luts : t -> int
(** See {!Area}. *)
