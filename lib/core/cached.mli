(** The cached CapChecker variant sketched in §5.2.3: instead of a table
    large enough for every live capability, a small on-chip cache backed by a
    larger in-(tagged-)memory capability table, "similar to page table
    caching in IOMMUs/IOTLBs, but with each entry holding a capability".

    The protection model is unchanged — the backing table lives in
    driver-owned memory the accelerators are never granted, and entries are
    still full CHERI capabilities whose tags ride the tagged memory; a
    corrupted backing entry simply loses its tag and stops granting.  What
    changes is area (a few cache entries instead of 256) against a miss
    latency on the DMA path.

    This module exists for the ablation study in the bench harness; the
    prototype configuration of the paper uses {!Checker}. *)

type t

val create :
  ?cache_entries:int ->
  ?obs:Obs.Trace.t ->
  ?faults:Fault.Injector.t ->
  mode:Checker.mode ->
  mem:Tagmem.Mem.t ->
  table_base:int ->
  max_tasks:int ->
  max_objs:int ->
  unit ->
  t
(** [cache_entries] defaults to 16.  The backing table occupies
    [max_tasks * max_objs] capability granules starting at [table_base]
    (driver-reserved memory).  [obs] (default {!Obs.Trace.null}) receives
    [Check_ok]/[Check_denial] per adjudication, [Check_table_miss] per cache
    refill, and [Table_insert]/[Table_evict] for backing-table maintenance.
    [faults] (default {!Fault.Injector.none}) can drop backing-table writes
    (reported like table-full) and lose cache lines before a fetch (costing
    only the miss latency — the tagged backing table re-supplies the
    capability, so protection is unaffected). *)

val backing_bytes : max_tasks:int -> max_objs:int -> int

val install : t -> task:int -> obj:int -> Cheri.Cap.t -> (unit, string) result
(** Driver path: writes the capability into the backing table and
    invalidates the corresponding cache set. *)

val evict_task : t -> task:int -> int
(** Clears every backing entry of the task (and its cache sets);
    returns the count cleared. *)

val hit_latency : int
val miss_latency : int

val hits : t -> int
val misses : t -> int

val check : t -> Guard.Iface.req -> Guard.Iface.outcome
val as_guard : t -> Guard.Iface.t

val live_entries : t -> int
(** Tagged backing-table entries, maintained incrementally on install/evict
    (what [as_guard.entries_in_use] reports, in O(1)). *)

val live_entries_scan : t -> int
(** Same count recomputed by scanning every backing granule — the reference
    implementation the counter is validated against in tests. *)

val area_luts : t -> int
(** Cache storage + comparators + the refill state machine — far below the
    256-entry flat table. *)
