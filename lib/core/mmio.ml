type t = {
  checker : Checker.t;
  mutable staged_lo : int64;
  mutable staged_hi : int64;
  mutable staged_tag : bool;
  mutable key : int64;
  mutable rejected : bool;
  mutable reported : int;  (* exceptions already drained via EXC_KEY *)
}

let create checker =
  { checker; staged_lo = 0L; staged_hi = 0L; staged_tag = false; key = 0L;
    rejected = false; reported = 0 }

let checker t = t.checker

let window_bytes = 4096

let reg_cap_lo = 0x00
let reg_cap_hi = 0x08
let reg_cap_tag = 0x10
let reg_key = 0x18
let reg_command = 0x20
let reg_status = 0x28
let reg_exc_key = 0x30

let cmd_install = 1L
let cmd_evict = 2L
let cmd_evict_task = 3L
let cmd_clear_flag = 4L

let key_of ~task ~obj =
  Int64.logor
    (Int64.shift_left (Int64.of_int (task land 0xffff_ffff)) 32)
    (Int64.of_int (obj land 0xffff_ffff))

let split_key key =
  ( Int64.to_int (Int64.shift_right_logical key 32) land 0xffff_ffff,
    Int64.to_int (Int64.logand key 0xffff_ffffL) )

let staged_capability t =
  Cheri.Compress.decode ~tag:t.staged_tag
    { Cheri.Compress.hi = t.staged_hi; lo = t.staged_lo }

let execute t command =
  let task, obj = split_key t.key in
  if Int64.equal command cmd_install then
    match Checker.install t.checker ~task ~obj (staged_capability t) with
    | Table.Installed _ -> t.rejected <- false
    | Table.Table_full | Table.Rejected_untagged -> t.rejected <- true
  else if Int64.equal command cmd_evict then
    t.rejected <- not (Checker.evict t.checker ~task ~obj)
  else if Int64.equal command cmd_evict_task then begin
    ignore (Checker.evict_task t.checker ~task);
    t.rejected <- false
  end
  else if Int64.equal command cmd_clear_flag then
    Checker.clear_exception_flag t.checker
  (* Unknown commands decode to nothing. *)

let check_offset offset =
  if offset < 0 || offset >= window_bytes || offset mod 8 <> 0 then
    invalid_arg (Printf.sprintf "Capchecker.Mmio: bad register offset 0x%x" offset)

let write t ~offset value =
  check_offset offset;
  Obs.Trace.emit (Checker.obs t.checker) (Obs.Event.Mmio_write { offset });
  if offset = reg_cap_lo then begin
    (* Raw word writes can never set the tag (see stage_raw). *)
    t.staged_lo <- value;
    t.staged_tag <- false
  end
  else if offset = reg_cap_hi then begin
    t.staged_hi <- value;
    t.staged_tag <- false
  end
  else if offset = reg_cap_tag then
    (* The tag register is honored only for transfers that arrived with the
       interconnect's tag wire asserted; plain writes request tag=0.  A
       nonzero write is therefore ignored unless staged via stage_cap. *)
    (if Int64.equal (Int64.logand value 1L) 0L then t.staged_tag <- false)
  else if offset = reg_key then t.key <- value
  else if offset = reg_command then execute t value

let read t ~offset =
  check_offset offset;
  Obs.Trace.emit (Checker.obs t.checker) (Obs.Event.Mmio_read { offset });
  if offset = reg_status then begin
    let flag = if Checker.exception_flag t.checker then 1L else 0L in
    let rej = if t.rejected then 2L else 0L in
    let live =
      Int64.shift_left (Int64.of_int (Table.live_count (Checker.table t.checker))) 32
    in
    Int64.logor live (Int64.logor flag rej)
  end
  else if offset = reg_exc_key then begin
    let log = Checker.exception_log t.checker in
    ignore log;
    (* Drain per-entry exception keys oldest-first. *)
    let keys = Table.entries_with_exceptions (Checker.table t.checker) in
    match List.nth_opt keys t.reported with
    | Some (task, obj) ->
        t.reported <- t.reported + 1;
        key_of ~task ~obj
    | None -> -1L
  end
  else 0L

let stage_cap t cap =
  let words = Cheri.Compress.encode cap in
  t.staged_lo <- words.Cheri.Compress.lo;
  t.staged_hi <- words.Cheri.Compress.hi;
  t.staged_tag <- cap.Cheri.Cap.tag

let stage_raw t ~lo ~hi =
  t.staged_lo <- lo;
  t.staged_hi <- hi;
  t.staged_tag <- false

let last_rejected t = t.rejected

let install t ~task ~obj cap =
  stage_cap t cap;
  write t ~offset:reg_key (key_of ~task ~obj);
  write t ~offset:reg_command cmd_install;
  if t.rejected then
    Error "CapChecker MMIO: install rejected (table full or untagged)"
  else Ok ()
