type line = { mutable key : int; mutable cap : Cheri.Cap.t }
(* key = task * max_objs + obj; -1 when invalid *)

type t = {
  mode : Checker.mode;
  mem : Tagmem.Mem.t;
  table_base : int;
  max_tasks : int;
  max_objs : int;
  lines : line array;
  obs : Obs.Trace.t;
  faults : Fault.Injector.t;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable flag : bool;
  mutable live : int;
      (* tagged backing-table entries; kept in sync by install/evict_task so
         [entries_in_use] is O(1) instead of scanning max_tasks * max_objs
         granules per call *)
}

let hit_latency = 1
let miss_latency = 1 + 20  (* tag + check after a DRAM fetch of the entry *)

let backing_bytes ~max_tasks ~max_objs = max_tasks * max_objs * Tagmem.Mem.granule

let create ?(cache_entries = 16) ?(obs = Obs.Trace.null)
    ?(faults = Fault.Injector.none) ~mode ~mem ~table_base ~max_tasks ~max_objs
    () =
  assert (cache_entries > 0);
  assert (table_base mod Tagmem.Mem.granule = 0);
  {
    mode; mem; table_base; max_tasks; max_objs;
    lines = Array.init cache_entries (fun _ -> { key = -1; cap = Cheri.Cap.null });
    obs; faults; hit_count = 0; miss_count = 0; flag = false; live = 0;
  }

let key_of t ~task ~obj = (task * t.max_objs) + obj

let entry_addr t key = t.table_base + (key * Tagmem.Mem.granule)

let in_range t ~task ~obj =
  task >= 0 && task < t.max_tasks && obj >= 0 && obj < t.max_objs

let set_of t key = key mod Array.length t.lines

let install t ~task ~obj cap =
  if not (in_range t ~task ~obj) then Error "cached capchecker: key out of range"
  else if Fault.Injector.table_full t.faults then
    (* Transient backing-table write drop: the entry never lands, reported to
       the driver the same way a full table would be. *)
    Error "cached capchecker: table write dropped (injected fault)"
  else begin
    let key = key_of t ~task ~obj in
    let addr = entry_addr t key in
    let was_tagged = Tagmem.Mem.tag_at t.mem ~addr in
    Tagmem.Mem.store_cap t.mem ~addr cap;
    let now_tagged = Tagmem.Mem.tag_at t.mem ~addr in
    t.live <- t.live + Bool.to_int now_tagged - Bool.to_int was_tagged;
    let line = t.lines.(set_of t key) in
    if line.key = key then line.key <- -1;
    Obs.Trace.emit t.obs (Obs.Event.Table_insert { task; obj; slot = set_of t key });
    Ok ()
  end

let evict_task t ~task =
  if task < 0 || task >= t.max_tasks then 0
  else begin
    let cleared = ref 0 in
    for obj = 0 to t.max_objs - 1 do
      let key = key_of t ~task ~obj in
      let addr = entry_addr t key in
      if Tagmem.Mem.tag_at t.mem ~addr then incr cleared;
      Tagmem.Mem.store_cap t.mem ~addr Cheri.Cap.null;
      let line = t.lines.(set_of t key) in
      if line.key = key then line.key <- -1
    done;
    t.live <- t.live - !cleared;
    if !cleared > 0 then
      Obs.Trace.emit t.obs (Obs.Event.Table_evict { task; obj = -1; count = !cleared });
    !cleared
  end

let hits t = t.hit_count
let misses t = t.miss_count

let fetch t ~task ~obj =
  let key = key_of t ~task ~obj in
  let line = t.lines.(set_of t key) in
  (* An injected drop loses the cache line before the lookup: the capability
     is re-fetched from the tagged backing table, so protection is unchanged
     and only the miss latency is paid. *)
  if line.key = key && Fault.Injector.cache_drop t.faults then line.key <- -1;
  if line.key = key then begin
    t.hit_count <- t.hit_count + 1;
    (line.cap, hit_latency)
  end
  else begin
    t.miss_count <- t.miss_count + 1;
    Obs.Trace.emit t.obs (Obs.Event.Check_table_miss { task; obj });
    let cap = Tagmem.Mem.load_cap t.mem ~addr:(entry_addr t key) in
    line.key <- key;
    line.cap <- cap;
    (cap, miss_latency)
  end

let check t (req : Guard.Iface.req) =
  let task = req.source in
  let obj, phys =
    match t.mode with
    | Checker.Fine -> (
        match req.port with Some port -> (port, req.addr) | None -> (-1, req.addr))
    | Checker.Coarse -> Checker.split_coarse req.addr
  in
  let deny detail =
    t.flag <- true;
    Obs.Trace.emit t.obs (Obs.Event.Check_denial { task; obj; detail });
    Guard.Iface.Denied { code = "capchecker-cached"; detail }
  in
  if not (in_range t ~task ~obj) then deny "no capability slot for this access"
  else
    let cap, latency = fetch t ~task ~obj in
    let kind =
      match req.kind with
      | Guard.Iface.Read -> Cheri.Cap.Read
      | Guard.Iface.Write -> Cheri.Cap.Write
    in
    match Cheri.Cap.access_ok cap ~addr:phys ~size:req.size kind with
    | Ok () ->
        Obs.Trace.emit t.obs (Obs.Event.Check_ok { task; obj; latency });
        Guard.Iface.Granted { phys; latency }
    | Error e -> deny (Cheri.Cap.error_to_string e)

let area_luts t =
  (* Cache lines cost like table entries, plus the refill state machine. *)
  600 + (130 * Array.length t.lines)

let live_entries t = t.live

let live_entries_scan t =
  let live = ref 0 in
  for key = 0 to (t.max_tasks * t.max_objs) - 1 do
    if Tagmem.Mem.tag_at t.mem ~addr:(entry_addr t key) then incr live
  done;
  !live

let as_guard t =
  {
    Guard.Iface.info =
      { name = "capchecker-cached"; granularity = Guard.Iface.G_object;
        area_luts = area_luts t };
    check = (fun req -> check t req);
    entries_in_use = (fun () -> t.live);
    (* Hit/miss latency (1 vs 21) depends on cache state and every check
       updates it. *)
    const_latency = None;
  }
