type entry = {
  mutable cap : Cheri.Cap.t;
  mutable task : int;
  mutable obj : int;
  mutable live : bool;
  mutable exn_bit : bool;
}

(* Pressure counters are maintained inline so that long-horizon workloads
   (the serve mode's tenant churn) can read install/evict/conflict totals and
   the live-occupancy gauge without replaying a trace.  [live] also turns
   [live_count] into an O(1) read — it used to fold over every slot, which a
   per-admission watermark check would have made O(entries * requests). *)
type stats = {
  st_installs : int;
  st_evictions : int;
  st_conflicts : int;
  st_rejected : int;
  st_live : int;
  st_peak : int;
}

type t = {
  slots : entry array;
  mutable installs : int;
  mutable evictions : int;
  mutable conflicts : int;
  mutable rejected : int;
  mutable live : int;
  mutable peak : int;
}

let create ~entries =
  assert (entries > 0);
  let fresh () =
    { cap = Cheri.Cap.null; task = -1; obj = -1; live = false; exn_bit = false }
  in
  { slots = Array.init entries (fun _ -> fresh ());
    installs = 0; evictions = 0; conflicts = 0; rejected = 0; live = 0;
    peak = 0 }

let capacity t = Array.length t.slots

let live_count t = t.live

let stats t =
  { st_installs = t.installs; st_evictions = t.evictions;
    st_conflicts = t.conflicts; st_rejected = t.rejected; st_live = t.live;
    st_peak = t.peak }

type install_result = Installed of int | Table_full | Rejected_untagged

let find_slot t pred =
  let n = Array.length t.slots in
  let rec go idx =
    if idx >= n then None
    else if pred t.slots.(idx) then Some idx
    else go (idx + 1)
  in
  go 0

let install t ~task ~obj cap =
  if not cap.Cheri.Cap.tag then begin
    t.rejected <- t.rejected + 1;
    Rejected_untagged
  end
  else
    let replacing, slot =
      match find_slot t (fun e -> e.live && e.task = task && e.obj = obj) with
      | Some idx -> (true, Some idx)
      | None -> (false, find_slot t (fun e -> not e.live))
    in
    match slot with
    | None ->
        t.conflicts <- t.conflicts + 1;
        Table_full
    | Some idx ->
        let e = t.slots.(idx) in
        e.cap <- cap;
        e.task <- task;
        e.obj <- obj;
        e.live <- true;
        e.exn_bit <- false;
        t.installs <- t.installs + 1;
        if not replacing then begin
          t.live <- t.live + 1;
          if t.live > t.peak then t.peak <- t.live
        end;
        Installed idx

let lookup t ~task ~obj =
  match find_slot t (fun e -> e.live && e.task = task && e.obj = obj) with
  | Some idx -> Some t.slots.(idx)
  | None -> None

let mark_exception t ~task ~obj =
  match lookup t ~task ~obj with
  | Some e -> e.exn_bit <- true
  | None -> ()

let evict t ~task ~obj =
  match find_slot t (fun e -> e.live && e.task = task && e.obj = obj) with
  | Some idx ->
      let e = t.slots.(idx) in
      e.live <- false;
      e.cap <- Cheri.Cap.null;
      t.evictions <- t.evictions + 1;
      t.live <- t.live - 1;
      true
  | None -> false

let evict_task t ~task =
  let n = ref 0 in
  Array.iter
    (fun (e : entry) ->
      if e.live && e.task = task then begin
        e.live <- false;
        e.cap <- Cheri.Cap.null;
        incr n
      end)
    t.slots;
  t.evictions <- t.evictions + !n;
  t.live <- t.live - !n;
  !n

let entries_with_exceptions t =
  Array.fold_left
    (fun acc (e : entry) -> if e.exn_bit then (e.task, e.obj) :: acc else acc)
    [] t.slots
  |> List.rev

let iter_live t f = Array.iter (fun (e : entry) -> if e.live then f e) t.slots
