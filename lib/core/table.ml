type entry = {
  mutable cap : Cheri.Cap.t;
  mutable task : int;
  mutable obj : int;
  mutable live : bool;
  mutable exn_bit : bool;
}

(* Pressure counters are maintained inline so that long-horizon workloads
   (the serve mode's tenant churn) can read install/evict/conflict totals and
   the live-occupancy gauge without replaying a trace.  [live] also turns
   [live_count] into an O(1) read — it used to fold over every slot, which a
   per-admission watermark check would have made O(entries * requests). *)
type stats = {
  st_installs : int;
  st_evictions : int;
  st_conflicts : int;
  st_rejected : int;
  st_live : int;
  st_peak : int;
}

(* Min-heap of free slot indices.  Install must keep picking the
   lowest-numbered free slot (the slot index is visible in [Installed] results
   and [Table_insert] events), so the free list is a heap rather than a stack:
   pop-min reproduces the original linear scan's choice exactly. *)
module Free_heap = struct
  type h = { data : int array; mutable len : int }

  let create cap = { data = Array.make (max cap 1) 0; len = 0 }

  let swap h i j =
    let t = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- t

  let push h x =
    h.data.(h.len) <- x;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && h.data.((!i - 1) / 2) > h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.data.(0) <- h.data.(h.len);
        let i = ref 0 in
        let sifting = ref true in
        while !sifting do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < h.len && h.data.(l) < h.data.(!s) then s := l;
          if r < h.len && h.data.(r) < h.data.(!s) then s := r;
          if !s <> !i then begin
            swap h !i !s;
            i := !s
          end
          else sifting := false
        done
      end;
      Some top
    end
end

type t = {
  slots : entry array;
  index : (int * int, int) Hashtbl.t; (* live (task, obj) -> slot *)
  free : Free_heap.h;
  mutable installs : int;
  mutable evictions : int;
  mutable conflicts : int;
  mutable rejected : int;
  mutable live : int;
  mutable peak : int;
}

let create ~entries =
  assert (entries > 0);
  let fresh () =
    { cap = Cheri.Cap.null; task = -1; obj = -1; live = false; exn_bit = false }
  in
  let free = Free_heap.create entries in
  for idx = 0 to entries - 1 do
    Free_heap.push free idx
  done;
  { slots = Array.init entries (fun _ -> fresh ());
    index = Hashtbl.create (2 * entries);
    free;
    installs = 0; conflicts = 0; evictions = 0; rejected = 0; live = 0;
    peak = 0 }

let capacity t = Array.length t.slots

let live_count t = t.live

let stats t =
  { st_installs = t.installs; st_evictions = t.evictions;
    st_conflicts = t.conflicts; st_rejected = t.rejected; st_live = t.live;
    st_peak = t.peak }

type install_result = Installed of int | Table_full | Rejected_untagged

let install t ~task ~obj cap =
  if not cap.Cheri.Cap.tag then begin
    t.rejected <- t.rejected + 1;
    Rejected_untagged
  end
  else
    let replacing, slot =
      match Hashtbl.find_opt t.index (task, obj) with
      | Some idx -> (true, Some idx)
      | None -> (false, Free_heap.pop t.free)
    in
    match slot with
    | None ->
        t.conflicts <- t.conflicts + 1;
        Table_full
    | Some idx ->
        let e = t.slots.(idx) in
        e.cap <- cap;
        e.task <- task;
        e.obj <- obj;
        e.live <- true;
        e.exn_bit <- false;
        t.installs <- t.installs + 1;
        if not replacing then begin
          Hashtbl.replace t.index (task, obj) idx;
          t.live <- t.live + 1;
          if t.live > t.peak then t.peak <- t.live
        end;
        Installed idx

let lookup t ~task ~obj =
  match Hashtbl.find_opt t.index (task, obj) with
  | Some idx -> Some t.slots.(idx)
  | None -> None

let mark_exception t ~task ~obj =
  match lookup t ~task ~obj with
  | Some e -> e.exn_bit <- true
  | None -> ()

let release_slot t idx =
  let e = t.slots.(idx) in
  e.live <- false;
  e.cap <- Cheri.Cap.null;
  (* A dead slot must not keep reporting an exception: the key may belong to a
     departed tenant, and the slot will be recycled for an unrelated one. *)
  e.exn_bit <- false;
  Free_heap.push t.free idx

let evict t ~task ~obj =
  match Hashtbl.find_opt t.index (task, obj) with
  | Some idx ->
      release_slot t idx;
      Hashtbl.remove t.index (task, obj);
      t.evictions <- t.evictions + 1;
      t.live <- t.live - 1;
      true
  | None -> false

let evict_task t ~task =
  let n = ref 0 in
  Array.iteri
    (fun idx (e : entry) ->
      if e.live && e.task = task then begin
        Hashtbl.remove t.index (task, e.obj);
        release_slot t idx;
        incr n
      end)
    t.slots;
  t.evictions <- t.evictions + !n;
  t.live <- t.live - !n;
  !n

let entries_with_exceptions t =
  Array.fold_left
    (fun acc (e : entry) ->
      if e.live && e.exn_bit then (e.task, e.obj) :: acc else acc)
    [] t.slots
  |> List.rev

let iter_live t f = Array.iter (fun (e : entry) -> if e.live then f e) t.slots
