(* Per-source CapChecker shims (the Praesidio memory-shim arrangement):
   adjudication happens where the traffic originates, against a small private
   capability table per accelerator, with a shared miss/refill path to the
   central table.  The central {!Checker} stays the sole authority — shims
   only hold read copies, invalidated on every central table mutation — so
   per-access verdicts are identical to centralized checking by
   construction; only latency changes.

   The shared path is a single-ported unit: one central-table access per
   cycle.  With the event engine's clock connected, concurrent misses (or,
   in [Central] mode, concurrent checks) queue on a monotone [free_at]
   latch.  Without a clock (the trace-recording engine, or setup-phase
   code outside simulated time) the port is uncontended and the latch
   degenerates to zero added wait — which is also why a [Shared]-topology
   run with central checking never sees contention: a one-grant-per-cycle
   bus already caps adjudications at one per cycle. *)

type checking = Central | Distributed

let checking_to_string = function
  | Central -> "central"
  | Distributed -> "shim"

let checking_of_string = function
  | "central" -> Ok Central
  | "shim" | "distributed" -> Ok Distributed
  | s -> Error (Printf.sprintf "unknown checker placement %S (central|shim)" s)

type shim = {
  sh_table : Table.t;
  sh_fifo : (int * int) Queue.t;
      (* refill order; FIFO replacement when the shim table is full.  May
         hold stale keys after an invalidation — eviction just skips them. *)
  mutable sh_hits : int;
  mutable sh_misses : int;
}

type t = {
  central : Checker.t;
  checking : checking;
  shim_entries : int;
  refill_latency : int;
  sources : int;  (* declared fleet size (area accounting) *)
  shims : (int, shim) Hashtbl.t;
  mutable clock : (unit -> int) option;
  mutable port_free_at : int;
  mutable invalidations : int;
      (* shim-table entries dropped through the central invalidate channel —
         the epoch-bump/refill race counter the verification layer pins *)
}

let default_shim_entries = 8
let default_refill_latency = 2

let invalidate t u =
  let each f = Hashtbl.iter (fun _ sh -> f sh) t.shims in
  match u with
  | Checker.Up_install { task; obj } | Checker.Up_evict { task; obj } ->
      each (fun sh ->
          if Table.evict sh.sh_table ~task ~obj then
            t.invalidations <- t.invalidations + 1)
  | Checker.Up_evict_task { task } ->
      each (fun sh ->
          t.invalidations <- t.invalidations + Table.evict_task sh.sh_table ~task)

let create ?(shim_entries = default_shim_entries)
    ?(refill_latency = default_refill_latency) ~central ~sources checking =
  let t =
    { central; checking; shim_entries; refill_latency; sources;
      shims = Hashtbl.create 64; clock = None; port_free_at = 0;
      invalidations = 0 }
  in
  if checking = Distributed then Checker.on_update central (invalidate t);
  t

let checking t = t.checking
let central t = t.central

let connect_clock t f = t.clock <- Some f

let disconnect_clock t =
  t.clock <- None;
  t.port_free_at <- 0

(* One central-port access; returns the queuing wait in cycles. *)
let port_wait t =
  match t.clock with
  | None -> 0
  | Some now ->
      let n = now () in
      let start = max n t.port_free_at in
      t.port_free_at <- start + 1;
      start - n

let shim_for t src =
  match Hashtbl.find_opt t.shims src with
  | Some sh -> sh
  | None ->
      let sh =
        { sh_table = Table.create ~entries:t.shim_entries;
          sh_fifo = Queue.create (); sh_hits = 0; sh_misses = 0 }
      in
      Hashtbl.add t.shims src sh;
      sh

let rec refill t sh ~task ~obj cap =
  match Table.install sh.sh_table ~task ~obj cap with
  | Table.Installed _ -> Queue.push (task, obj) sh.sh_fifo
  | Table.Rejected_untagged -> ()
  | Table.Table_full -> (
      match Queue.take_opt sh.sh_fifo with
      | None -> ()
      | Some (vt, vo) ->
          ignore (Table.evict sh.sh_table ~task:vt ~obj:vo);
          refill t sh ~task ~obj cap)

let check t (req : Guard.Iface.req) =
  match t.checking with
  | Central -> (
      let wait = port_wait t in
      match Checker.check t.central req with
      | Guard.Iface.Granted { phys; latency } ->
          Guard.Iface.Granted { phys; latency = latency + wait }
      | Guard.Iface.Denied _ as d -> d)
  | Distributed -> (
      let task = req.Guard.Iface.source in
      let obj, phys = Checker.resolve t.central req in
      if obj < 0 then
        Checker.record_denial t.central ~task ~obj:0 Checker.missing_provenance
      else
        let sh = shim_for t task in
        match Table.lookup sh.sh_table ~task ~obj with
        | Some entry ->
            sh.sh_hits <- sh.sh_hits + 1;
            Checker.adjudicate_entry t.central req ~task ~obj ~phys
              ~latency:Checker.check_latency entry
        | None -> (
            sh.sh_misses <- sh.sh_misses + 1;
            Obs.Trace.emit (Checker.obs t.central)
              (Obs.Event.Check_table_miss { task; obj });
            let wait = port_wait t in
            match Table.lookup (Checker.table t.central) ~task ~obj with
            | None ->
                Checker.record_denial t.central ~task ~obj
                  (Checker.missing_capability ~task ~obj)
            | Some entry ->
                refill t sh ~task ~obj entry.Table.cap;
                let latency =
                  Checker.check_latency + wait + t.refill_latency
                in
                Checker.adjudicate_entry t.central req ~task ~obj ~phys
                  ~latency entry))

let hits t = Hashtbl.fold (fun _ sh acc -> acc + sh.sh_hits) t.shims 0
let misses t = Hashtbl.fold (fun _ sh acc -> acc + sh.sh_misses) t.shims 0
let shim_count t = Hashtbl.length t.shims
let invalidations t = t.invalidations

(* Fleet-wide shim-table pressure: every field summed across shims (peak is
   the sum of per-shim peaks — an upper bound on simultaneous residency). *)
let shim_stats t =
  Hashtbl.fold
    (fun _ sh acc ->
      let s = Table.stats sh.sh_table in
      { Table.st_installs = acc.Table.st_installs + s.Table.st_installs;
        st_evictions = acc.Table.st_evictions + s.Table.st_evictions;
        st_conflicts = acc.Table.st_conflicts + s.Table.st_conflicts;
        st_rejected = acc.Table.st_rejected + s.Table.st_rejected;
        st_live = acc.Table.st_live + s.Table.st_live;
        st_peak = acc.Table.st_peak + s.Table.st_peak })
    t.shims
    { Table.st_installs = 0; st_evictions = 0; st_conflicts = 0;
      st_rejected = 0; st_live = 0; st_peak = 0 }

let observe_shims t ~into =
  let s = shim_stats t in
  Obs.Metrics.add into "shim.table_installs" s.Table.st_installs;
  Obs.Metrics.add into "shim.table_evictions" s.Table.st_evictions;
  Obs.Metrics.add into "shim.table_live" s.Table.st_live;
  Obs.Metrics.add into "shim.hits" (hits t);
  Obs.Metrics.add into "shim.misses" (misses t);
  Obs.Metrics.add into "shim.invalidations" (invalidations t)

let area_luts t =
  match t.checking with
  | Central -> Checker.area_luts t.central
  | Distributed ->
      Checker.area_luts t.central
      + (t.sources * Area.luts_lightweight ~entries:t.shim_entries)

let guard t =
  let base = Checker.as_guard t.central in
  let name =
    match t.checking with
    | Central -> base.Guard.Iface.info.Guard.Iface.name
    | Distributed -> base.Guard.Iface.info.Guard.Iface.name ^ "+shims"
  in
  {
    base with
    Guard.Iface.info =
      { base.Guard.Iface.info with Guard.Iface.name; area_luts = area_luts t };
    check = (fun req -> check t req);
    (* Shim-local hits and central-port refills give history-dependent
       latency, and hits touch per-source replica state. *)
    const_latency = None;
  }
