(** The CapChecker's capability table (Figure 5).

    A fixed file of entries, each holding a decoded CHERI capability keyed by
    (accelerator task, object id).  The table is the hardware repository the
    paper describes: capabilities live {e inside} the CapChecker where no
    accelerator access can reach them, which is what keeps them unforgeable.

    Allocation is associative: the driver presents a capability and the table
    finds a free slot; when none is free the driver must evict (the paper's
    stall-until-eviction protocol).  Each entry carries an exception bit so
    software can trace which object an offending access targeted. *)

type t

type entry = private {
  mutable cap : Cheri.Cap.t;
  mutable task : int;
  mutable obj : int;
  mutable live : bool;
  mutable exn_bit : bool;
}

val create : entries:int -> t
(** [entries] is the hardware capacity (256 in the paper's prototype). *)

val capacity : t -> int

val live_count : t -> int
(** Live-occupancy gauge, maintained incrementally (O(1)). *)

type stats = {
  st_installs : int;   (** successful installs, including same-key replaces *)
  st_evictions : int;  (** entries removed by {!evict} or {!evict_task} *)
  st_conflicts : int;  (** installs refused with {!Table_full} *)
  st_rejected : int;   (** installs refused with {!Rejected_untagged} *)
  st_live : int;       (** current occupancy (= {!live_count}) *)
  st_peak : int;       (** high-water mark of occupancy over the table's life *)
}
(** Cumulative pressure counters since {!create}.  Under a long-horizon
    multi-tenant workload, [st_conflicts] and [st_evictions] together measure
    eviction thrash once tenant working sets exceed {!capacity}. *)

val stats : t -> stats

type install_result =
  | Installed of int      (** slot index *)
  | Table_full
  | Rejected_untagged     (** the control logic verifies the tag (Fig. 6 ③) *)

val install : t -> task:int -> obj:int -> Cheri.Cap.t -> install_result
(** Install, replacing any live entry with the same (task, obj) key. *)

val lookup : t -> task:int -> obj:int -> entry option
(** The per-request associative fetch. *)

val mark_exception : t -> task:int -> obj:int -> unit
(** Set the exception bit if the entry exists (otherwise only the global flag
    in {!Checker} records the event). *)

val evict : t -> task:int -> obj:int -> bool
(** Evict one entry; false if absent. *)

val evict_task : t -> task:int -> int
(** Evict every entry of a task (deallocation, Fig. 6 ②); returns the count. *)

val entries_with_exceptions : t -> (int * int) list
(** Live (task, obj) keys whose exception bit is set.  Eviction clears the
    bit, so a departed tenant's slot never reports a stale exception. *)

val iter_live : t -> (entry -> unit) -> unit
