let schemes =
  [
    ("No method", Soc.Config.Prot_naive);
    ("IOPMP", Soc.Config.Prot_iopmp);
    ("IOMMU", Soc.Config.Prot_iommu);
    ("sNPU", Soc.Config.Prot_snpu);
    ("Coarse", Soc.Config.Prot_cc_coarse);
    ("Fine", Soc.Config.Prot_cc_fine);
  ]

type row = { group : string; cwes : string; title : string; cells : string list }

let granularity_label protection =
  let cross = Attacks.overread_cross_task protection in
  let write_cross = Attacks.overwrite_cross_task protection in
  let same_task = Attacks.overread_same_task_object protection in
  (* Coarse's worst case is the address-arithmetic object-id forge of
     §5.2.3: a straight overflow is caught, but upper-bit manipulation
     reaches the task's other objects. *)
  let same_task_worst =
    match protection with
    | Soc.Config.Prot_cc_coarse ->
        let own_other, _ = Attacks.coarse_object_id_forge () in
        if Attacks.is_protected same_task then own_other else same_task
    | Soc.Config.Prot_none | Soc.Config.Prot_naive | Soc.Config.Prot_iopmp
    | Soc.Config.Prot_iommu | Soc.Config.Prot_snpu | Soc.Config.Prot_cc_fine
    | Soc.Config.Prot_cc_cached ->
        same_task
  in
  if not (Attacks.is_protected cross && Attacks.is_protected write_cross) then "X"
  else if Attacks.is_protected same_task_worst then "OB"
  else
    match protection with Soc.Config.Prot_iommu -> "PG" | _ -> "TA"

let protected_cell outcome = if Attacks.is_protected outcome then "yes" else "X"

let const_cells value = List.map (fun _ -> value) schemes

(* Every measured cell of one scheme's column.  Each column boots its own
   attack systems and shares nothing with the others, so columns are
   independent jobs for the domain pool; rows are assembled from the
   columns after the barrier, in schemes order, making the matrix identical
   at any [jobs] value. *)
type column = {
  col_granularity : string;
  col_untrusted : string;
  col_uaf : string;
  col_fixed : string;
  col_uninit : string;
}

let measure_column protection =
  {
    col_granularity = granularity_label protection;
    col_untrusted =
      (let aimed = Attacks.untrusted_pointer_deref protection in
       if not (Attacks.is_protected aimed) then "X"
       else
         (* Cross-task blocked; granularity bounds what remains. *)
         granularity_label protection);
    col_uaf = protected_cell (Attacks.use_after_free protection);
    col_fixed = protected_cell (Attacks.fixed_address_os protection);
    col_uninit = protected_cell (Attacks.uninitialized_pointer protection);
  }

let columns ?jobs () =
  Ccsim.Pool.map ?jobs (fun (_, protection) -> measure_column protection) schemes

let rows ?jobs () =
  let cols = columns ?jobs () in
  let cells_of f = List.map f cols in
  [
    {
      group = "a"; cwes = "119-131,466,680,786-788,805,806";
      title = "Buffer over-reads / overwrites";
      cells = cells_of (fun c -> c.col_granularity);
    };
    {
      group = "a"; cwes = "761";
      title = "Free of pointer not at start of buffer";
      (* The capability carries its base, so the CHERI driver validates the
         freed pointer against the parent capability off the shelf; the other
         schemes would need a bespoke shadow table (paper §6.2). *)
      cells = [ "X"; "X"; "X"; "X"; "TA"; "OB" ];
    };
    {
      group = "a"; cwes = "822,823";
      title = "Untrusted pointer dereference / offset";
      cells = cells_of (fun c -> c.col_untrusted);
    };
    {
      group = "b"; cwes = "416";
      title = "Use after free / dangling device pointer";
      cells = cells_of (fun c -> c.col_uaf);
    };
    {
      group = "b"; cwes = "587";
      title = "Assignment of fixed address to pointer";
      cells = cells_of (fun c -> c.col_fixed);
    };
    {
      group = "b"; cwes = "824";
      title = "Access of uninitialized pointer";
      cells = cells_of (fun c -> c.col_uninit);
    };
    {
      group = "c"; cwes = "244,415,590,690,763";
      title = "Heap discipline (double free, invalid free, ...)";
      (* Enforced by the trusted driver's allocator under assumption 3 —
         identical for every scheme (verified in the test suite). *)
      cells = const_cells "yes";
    };
    {
      group = "d"; cwes = "121,562,789";
      title = "Stack weaknesses (accelerator-internal memories)";
      cells = const_cells "NA";
    };
    {
      group = "e"; cwes = "134,762";
      title = "Format strings / mismatched routines";
      cells = const_cells "NA";
    };
    {
      group = "f"; cwes = "188,198,401,825";
      title = "Layout / byte order / leaks / expired objects";
      cells = const_cells "X";
    };
  ]

let render ?jobs () =
  let header = "Grp" :: "CWE" :: "Weakness" :: List.map fst schemes in
  let body =
    List.map (fun r -> r.group :: r.cwes :: r.title :: r.cells) (rows ?jobs ())
  in
  Ccsim.Report.table ~header body
