module Interval = struct
  type t = { lo : int; hi : int }

  let top = { lo = min_int; hi = max_int }
  let const n = { lo = n; hi = n }
  let make a b = if a <= b then { lo = a; hi = b } else { lo = b; hi = a }
  let is_top iv = iv.lo = min_int && iv.hi = max_int
  let is_bounded iv = iv.lo > min_int && iv.hi < max_int
  let mem n iv = iv.lo <= n && n <= iv.hi
  let subset a b = a.lo >= b.lo && a.hi <= b.hi
  let equal a b = a.lo = b.lo && a.hi = b.hi
  let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

  let meet a b =
    let lo = max a.lo b.lo and hi = min a.hi b.hi in
    if lo <= hi then Some { lo; hi } else None

  let widen old next =
    {
      lo = (if next.lo < old.lo then min_int else old.lo);
      hi = (if next.hi > old.hi then max_int else old.hi);
    }

  (* Endpoint arithmetic.  The sentinel reading is positional: a [lo] of
     [min_int] means unbounded below and a [hi] of [max_int] unbounded
     above; the literal extremes in the opposite positions are ordinary
     exact bounds (e.g. [const max_int] has an exact lower bound of
     [max_int]).  Overflow saturates toward the matching sentinel, which
     only ever widens the interval — but negation and multiplication must
     resolve sentinel-ness by position before flipping signs, or
     [neg (const max_int)] collapses to [[-inf, min_int]] and excludes the
     true value [-max_int] (the unsoundness the extreme-value property
     tests pin down). *)

  let sat_add x y =
    let s = x + y in
    if x >= 0 && y >= 0 && s < 0 then max_int
    else if x < 0 && y < 0 && s >= 0 then min_int
    else s

  let ext_neg x = if x = min_int then max_int else if x = max_int then min_int else -x

  let pred_hi h = if h = max_int || h = min_int then h else h - 1
  let succ_lo l = if l = min_int || l = max_int then l else l + 1

  let add a b =
    {
      lo = (if a.lo = min_int || b.lo = min_int then min_int else sat_add a.lo b.lo);
      hi = (if a.hi = max_int || b.hi = max_int then max_int else sat_add a.hi b.hi);
    }

  (* A bound with its sentinel-ness resolved from its position. *)
  type bound = Ninf | Fin of int | Pinf

  let lo_bound v = if v = min_int then Ninf else Fin v
  let hi_bound v = if v = max_int then Pinf else Fin v
  let sat = function Ninf -> min_int | Pinf -> max_int | Fin v -> v

  let neg_bound = function
    | Ninf -> Pinf
    | Pinf -> Ninf
    | Fin v -> if v = min_int then Pinf else Fin (-v)

  let neg iv =
    {
      lo = sat (neg_bound (hi_bound iv.hi));
      hi = sat (neg_bound (lo_bound iv.lo));
    }

  let sub a b = add a (neg b)

  let ext_mul x y =
    if x = 0 || y = 0 then 0
    else if x = min_int || x = max_int || y = min_int || y = max_int then
      if x > 0 = (y > 0) then max_int else min_int
    else if x = -1 then ext_neg y
    else if y = -1 then ext_neg x
    else
      let p = x * y in
      if p / x <> y then (if x > 0 = (y > 0) then max_int else min_int) else p

  let mul_bound x y =
    match (x, y) with
    | Fin 0, _ | _, Fin 0 -> Fin 0
    | Ninf, Ninf | Pinf, Pinf -> Pinf
    | Ninf, Pinf | Pinf, Ninf -> Ninf
    | Pinf, Fin v | Fin v, Pinf -> if v > 0 then Pinf else Ninf
    | Ninf, Fin v | Fin v, Ninf -> if v > 0 then Ninf else Pinf
    | Fin u, Fin v ->
        if (u = -1 && v = min_int) || (v = -1 && u = min_int) then Pinf
        else
          let p = u * v in
          (* the division check is exact: a wrapped product sits >= 2^63
             away from the true one, so it can never divide back to [v] *)
          if p / u = v then Fin p
          else if u > 0 = (v > 0) then Pinf
          else Ninf

  let of_corners c0 c1 c2 c3 =
    { lo = min (min c0 c1) (min c2 c3); hi = max (max c0 c1) (max c2 c3) }

  (* A saturated overflowed corner is sound on both sides: a product past
     [max_int] is >= the literal [max_int] as a lower bound and reads as
     the +inf sentinel as an upper bound; dually below [min_int]. *)
  let mul a b =
    of_corners
      (sat (mul_bound (lo_bound a.lo) (lo_bound b.lo)))
      (sat (mul_bound (lo_bound a.lo) (hi_bound b.hi)))
      (sat (mul_bound (hi_bound a.hi) (lo_bound b.lo)))
      (sat (mul_bound (hi_bound a.hi) (hi_bound b.hi)))

  (* Truncating division is monotone in each argument over a sign-constant
     divisor range, so corner evaluation is exact on the box.  Only the
     dividend's sentinels need resolving: divisors are >= 1 here, and a
     literal-extreme dividend divides exactly (no overflow cases). *)
  let div a b =
    let div_lo x y = if x = min_int then min_int else x / y in
    let div_hi x y = if x = max_int then max_int else x / y in
    let pos a b =
      of_corners (div_lo a.lo b.lo) (div_lo a.lo b.hi) (div_hi a.hi b.lo)
        (div_hi a.hi b.hi)
    in
    if b.lo >= 1 then pos a b
    else if b.hi <= -1 then neg (pos a (neg b))  (* x / -y = -(x / y) *)
    else top

  let rem a b =
    (* OCaml [mod]: result sign follows the dividend, magnitude < |divisor|. *)
    if b.lo >= 1 then
      let m = pred_hi b.hi in
      if a.lo >= 0 then { lo = 0; hi = min a.hi m }
      else if a.hi <= 0 then { lo = max a.lo (ext_neg m); hi = 0 }
      else { lo = max a.lo (ext_neg m); hi = min a.hi m }
    else top

  let logand a b =
    if a.lo = a.hi && b.lo = b.hi then const (a.lo land b.lo)
    else
      let nonneg iv = iv.lo >= 0 in
      let finite_mask iv = nonneg iv && iv.hi < max_int in
      if finite_mask a && finite_mask b then { lo = 0; hi = min a.hi b.hi }
      else if finite_mask a then { lo = 0; hi = a.hi }
      else if finite_mask b then { lo = 0; hi = b.hi }
      else if nonneg a || nonneg b then { lo = 0; hi = max_int }
      else top

  (* Smallest 2^k - 1 covering m (m >= 0): an upper bound for or/xor of
     values no wider than m. *)
  let bits_cover m =
    let rec go b = if b >= m then b else go ((b lsl 1) lor 1) in
    go 0

  let logor a b =
    if a.lo = a.hi && b.lo = b.hi then const (a.lo lor b.lo)
    else if a.lo >= 0 && b.lo >= 0 then
      if a.hi < max_int && b.hi < max_int then
        { lo = max a.lo b.lo; hi = bits_cover (max a.hi b.hi) }
      else { lo = 0; hi = max_int }
    else top

  let logxor a b =
    if a.lo = a.hi && b.lo = b.hi then const (a.lo lxor b.lo)
    else if a.lo >= 0 && b.lo >= 0 then
      if a.hi < max_int && b.hi < max_int then
        { lo = 0; hi = bits_cover (max a.hi b.hi) }
      else { lo = 0; hi = max_int }
    else top

  let shift_left a b =
    if b.lo >= 0 && b.hi <= 62 then
      let ext_shl x k = ext_mul x (1 lsl k) in
      of_corners (ext_shl a.lo b.lo) (ext_shl a.lo b.hi) (ext_shl a.hi b.lo)
        (ext_shl a.hi b.hi)
    else top

  let shift_right a b =
    if b.lo >= 0 then
      let ext_asr x k =
        if x = min_int || x = max_int then x else x asr min k 62
      in
      of_corners (ext_asr a.lo b.lo) (ext_asr a.lo b.hi) (ext_asr a.hi b.lo)
        (ext_asr a.hi b.hi)
    else top

  let lognot iv =
    (* lnot x = -x - 1 *)
    let ext x = if x = min_int then max_int else if x = max_int then min_int else lnot x in
    { lo = ext iv.hi; hi = ext iv.lo }

  let imin a b = { lo = min a.lo b.lo; hi = min a.hi b.hi }
  let imax a b = { lo = max a.lo b.lo; hi = max a.hi b.hi }

  let bool_top = { lo = 0; hi = 1 }

  let to_string iv =
    let e = function
      | n when n = min_int -> "-inf"
      | n when n = max_int -> "+inf"
      | n -> string_of_int n
    in
    if is_top iv then "top" else Printf.sprintf "[%s,%s]" (e iv.lo) (e iv.hi)
end

type kind = Read | Write

type witness = {
  w_buf : string;
  w_kind : kind;
  w_index : int;
  w_len : int;
  w_site : string;
}

type verdict =
  | Proven_in_bounds
  | Possible_violation of witness
  | Unknown of string

type buf_report = {
  buf : string;
  writable : bool;
  len : int;
  reads : Interval.t option;
  writes : Interval.t option;
  verdict : verdict;
}

type report = { kernel : string; bufs : buf_report list; lint : string list }

(* ---- abstract state ---- *)

module Env = Map.Make (String)

type access = {
  a_buf : Kernel.Ir.buf_decl;
  a_scratch : bool;
  a_kind : kind;
  a_index : Interval.t;
  a_dependent : bool;  (* index expression contains a load *)
  a_site : string;
}

type ctx = {
  heap : (string, Kernel.Ir.buf_decl) Hashtbl.t;
  scratch : (string, Kernel.Ir.buf_decl) Hashtbl.t;
  params : (string * Interval.t) list;
  mutable accesses : access list;  (* reverse program order *)
  mutable lints : string list;
}

let lint ctx fmt = Printf.ksprintf (fun s -> ctx.lints <- s :: ctx.lints) fmt

let record ctx ~record buf_name a_kind a_index ~dependent ~site =
  if record then
    let decl, a_scratch =
      match Hashtbl.find_opt ctx.heap buf_name with
      | Some d -> (d, false)
      | None -> (
          match Hashtbl.find_opt ctx.scratch buf_name with
          | Some d -> (d, true)
          | None ->
              (* unknown buffer: Ir.validate reports it; synthesize a decl so
                 the walk continues *)
              ( { Kernel.Ir.buf_name; elem = Kernel.Ir.I32; len = 0; writable = true },
                true ))
    in
    ctx.accesses <-
      { a_buf = decl; a_scratch; a_kind; a_index; a_dependent = dependent;
        a_site = site }
      :: ctx.accesses

(* ---- expression evaluation ---- *)

let rec eval ctx ~rec_ env (e : Kernel.Ir.exp) : Interval.t =
  let open Kernel.Ir in
  match e with
  | Int n -> Interval.const n
  | Flt _ -> Interval.top
  | Var name -> (
      match Env.find_opt name env with
      | Some iv -> iv
      | None ->
          if rec_ then lint ctx "use of unbound local '%s'" name;
          Interval.top)
  | Param name -> (
      match List.assoc_opt name ctx.params with
      | Some iv -> iv
      | None -> Interval.top)
  | Load (b, idx) ->
      let iv = eval ctx ~rec_ env idx in
      record ctx ~record:rec_ b Read iv ~dependent:(contains_load idx)
        ~site:(Printf.sprintf "%s[%s]" b (exp_to_string idx));
      Interval.top
  | Bin (op, x, y) ->
      let a = eval ctx ~rec_ env x in
      let b = eval ctx ~rec_ env y in
      eval_binop op a b
  | Un (op, x) -> (
      let a = eval ctx ~rec_ env x in
      match op with
      | Neg -> Interval.neg a
      | Bnot -> Interval.lognot a
      | Fneg | Fabs | Fsqrt | Fexp | I2f | F2i -> Interval.top)

and eval_binop (op : Kernel.Ir.binop) a b =
  let open Interval in
  let cmp definitely_true definitely_false =
    if definitely_true then const 1
    else if definitely_false then const 0
    else bool_top
  in
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div -> div a b
  | Mod -> rem a b
  | Band -> logand a b
  | Bor -> logor a b
  | Bxor -> logxor a b
  | Shl -> shift_left a b
  | Shr -> shift_right a b
  | Lt -> cmp (a.hi < b.lo) (a.lo >= b.hi)
  | Le -> cmp (a.hi <= b.lo) (a.lo > b.hi)
  | Gt -> cmp (a.lo > b.hi) (a.hi <= b.lo)
  | Ge -> cmp (a.lo >= b.hi) (a.hi < b.lo)
  | Eq -> cmp (a.lo = a.hi && b.lo = b.hi && a.lo = b.lo) (a.hi < b.lo || a.lo > b.hi)
  | Ne -> cmp (a.hi < b.lo || a.lo > b.hi) (a.lo = a.hi && b.lo = b.hi && a.lo = b.lo)
  | Imin -> imin a b
  | Imax -> imax a b
  | Fadd | Fsub | Fmul | Fdiv -> top
  | Flt | Fle | Fgt | Fge -> bool_top
  | Fmin | Fmax -> top

(* ---- branch-condition refinement ----

   [refine ctx env cond sense] narrows variable intervals under the
   assumption that [cond] evaluates to [sense]; [None] means the assumption
   is contradictory (dead branch).  Only variable-vs-expression comparisons
   refine; everything else passes the environment through unchanged, which is
   always sound. *)

let rec refine ctx env (cond : Kernel.Ir.exp) sense : Interval.t Env.t option =
  let open Kernel.Ir in
  let ( >>= ) o f = match o with Some x -> f x | None -> None in
  match cond with
  (* x land y <> 0 implies both nonzero; x lor y = 0 implies both zero —
     this covers the desugaring of &&: and ||:. *)
  | Bin (Band, x, y) when sense ->
      refine ctx env x true >>= fun env -> refine ctx env y true
  | Bin (Bor, x, y) when not sense ->
      refine ctx env x false >>= fun env -> refine ctx env y false
  | Bin (Ne, e, Int 0) -> refine ctx env e sense
  | Bin (Eq, e, Int 0) -> refine ctx env e (not sense)
  | Bin (((Lt | Le | Gt | Ge | Eq | Ne) as op), x, y) ->
      let op = if sense then op else negate_cmp op in
      refine_cmp ctx env op x y
  | _ -> Some env

and negate_cmp : Kernel.Ir.binop -> Kernel.Ir.binop = function
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt
  | Eq -> Ne
  | Ne -> Eq
  | op -> op

and swap_cmp : Kernel.Ir.binop -> Kernel.Ir.binop = function
  (* l op r  <=>  r (swap op) l *)
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | op -> op

and refine_cmp ctx env op x y =
  let open Kernel.Ir in
  let bound_of op (rhs : Interval.t) : Interval.t option =
    (* the set of left values for which [l op r] can hold for some r in
       [rhs] *)
    match op with
    | Lt -> Some { Interval.lo = min_int; hi = Interval.pred_hi rhs.Interval.hi }
    | Le -> Some { Interval.lo = min_int; hi = rhs.Interval.hi }
    | Gt -> Some { Interval.lo = Interval.succ_lo rhs.Interval.lo; hi = max_int }
    | Ge -> Some { Interval.lo = rhs.Interval.lo; hi = max_int }
    | Eq -> Some rhs
    | Ne | _ -> None  (* Ne handled below: only trims singleton endpoints *)
  in
  let apply env var op rhs_iv =
    match Env.find_opt var env with
    | None -> Some env
    | Some cur -> (
        match op with
        | Ne ->
            if rhs_iv.Interval.lo = rhs_iv.Interval.hi then begin
              let c = rhs_iv.Interval.lo in
              let trimmed =
                if cur.Interval.lo = c && cur.Interval.hi = c then None
                else if cur.Interval.lo = c then
                  Some { cur with Interval.lo = Interval.succ_lo c }
                else if cur.Interval.hi = c then
                  Some { cur with Interval.hi = Interval.pred_hi c }
                else Some cur
              in
              Option.map (fun iv -> Env.add var iv env) trimmed
            end
            else Some env
        | _ -> (
            match bound_of op rhs_iv with
            | None -> Some env
            | Some b ->
                Option.map (fun iv -> Env.add var iv env) (Interval.meet cur b)))
  in
  let ( >>= ) o f = match o with Some x -> f x | None -> None in
  (match x with
  | Var vx -> apply env vx op (eval ctx ~rec_:false env y)
  | _ -> Some env)
  >>= fun env ->
  match y with
  | Var vy -> apply env vy (swap_cmp op) (eval ctx ~rec_:false env x)
  | _ -> Some env

(* ---- statement analysis ---- *)

let env_join a b =
  Env.merge
    (fun _ x y ->
      match (x, y) with
      | Some x, Some y -> Some (Interval.join x y)
      | Some x, None | None, Some x ->
          (* bound on one path only: join with "whatever it was", i.e. top
             would be sound but needlessly coarse for the defined-path uses
             that dominate; keep the known value (uses on the other path are
             runtime errors that the unbound-local lint covers). *)
          Some x
      | None, None -> None)
    a b

let env_widen old next =
  Env.merge
    (fun _ x y ->
      match (x, y) with
      | Some x, Some y -> Some (Interval.widen x y)
      | Some x, None | None, Some x -> Some x
      | None, None -> None)
    old next

let env_equal = Env.equal Interval.equal

let widen_after = 3

let definitely_false iv = iv.Interval.lo = 0 && iv.Interval.hi = 0
let definitely_true iv = iv.Interval.lo > 0 || iv.Interval.hi < 0

let rec exec ctx ~rec_ env (s : Kernel.Ir.stmt) =
  let open Kernel.Ir in
  match s with
  | Let (name, e) -> Env.add name (eval ctx ~rec_ env e) env
  | Store (b, idx, value) ->
      let iv = eval ctx ~rec_ env idx in
      let _ = eval ctx ~rec_ env value in
      record ctx ~record:rec_ b Write iv ~dependent:(contains_load idx)
        ~site:(stmt_to_string s);
      env
  | For (var, lo_e, hi_e, body) ->
      let lo = eval ctx ~rec_ env lo_e in
      let hi = eval ctx ~rec_ env hi_e in
      if rec_ && hi.Interval.hi <= lo.Interval.lo then
        lint ctx "degenerate loop: 'for %s = %s .. %s-1' never executes" var
          (exp_to_string lo_e) (exp_to_string hi_e);
      let env_loop =
        if lo.Interval.lo >= hi.Interval.hi then env  (* definitely zero-trip *)
        else begin
          let var_iv =
            { Interval.lo = lo.Interval.lo; hi = Interval.pred_hi hi.Interval.hi }
          in
          let fixed = fixpoint ctx env (fun e -> Env.add var var_iv e) body in
          if rec_ then
            ignore (exec_list ctx ~rec_:true (Env.add var var_iv fixed) body);
          fixed
        end
      in
      Env.add var (Interval.imax lo hi) env_loop
  | While (cond, body) ->
      let enter env' = refine ctx env' cond true in
      let fixed =
        fixpoint ctx
          ~dead:(fun e -> Option.is_none (enter e))
          env
          (fun e -> match enter e with Some e' -> e' | None -> e)
          body
      in
      if rec_ then begin
        let centry = eval ctx ~rec_:true fixed cond in
        if not (definitely_false centry) then
          match enter fixed with
          | Some env_t -> ignore (exec_list ctx ~rec_:true env_t body)
          | None -> ()
      end;
      (match refine ctx fixed cond false with
      | Some env_exit -> env_exit
      | None -> fixed)
  | If (cond, then_, else_) -> (
      let civ = eval ctx ~rec_ env cond in
      let branch sense stmts =
        if sense && definitely_false civ then None
        else if (not sense) && definitely_true civ then None
        else
          match refine ctx env cond sense with
          | Some env' -> Some (exec_list ctx ~rec_ env' stmts)
          | None -> None
      in
      match (branch true then_, branch false else_) with
      | Some a, Some b -> env_join a b
      | Some a, None | None, Some a -> a
      | None, None -> env)
  | Memcpy { dst; src; elems } ->
      let n = eval ctx ~rec_ env elems in
      if rec_ && n.Interval.hi < 0 then
        lint ctx "memcpy %s <- %s: definitely negative length %s" dst src
          (Interval.to_string n);
      if n.Interval.hi > 0 then begin
        let span =
          { Interval.lo = 0; hi = Interval.pred_hi n.Interval.hi }
        in
        let dep = Kernel.Ir.contains_load elems in
        let site = stmt_to_string s in
        record ctx ~record:rec_ src Read span ~dependent:dep ~site;
        record ctx ~record:rec_ dst Write span ~dependent:dep ~site
      end;
      env

and exec_list ctx ~rec_ env stmts =
  List.fold_left (fun env s -> exec ctx ~rec_ env s) env stmts

(* Loop fixpoint: iterate the body transfer function (joining states at the
   loop head) without recording, widening after [widen_after] rounds so every
   loop-carried variable stabilizes; the caller then makes one recording pass
   under the stable environment.  Recording during iteration would capture
   under-approximate intermediate index ranges. *)
and fixpoint ctx ?(dead = fun _ -> false) env0 at_head body =
  let rec go n env_acc =
    if dead env_acc then env_acc
    else
      let env_body = exec_list ctx ~rec_:false (at_head env_acc) body in
      let next = env_join env_acc env_body in
      if env_equal next env_acc then env_acc
      else if n >= widen_after then begin
        let w = env_widen env_acc next in
        if env_equal w env_acc then env_acc else go (n + 1) w
      end
      else go (n + 1) next
  in
  go 0 env0

(* ---- verdicts ---- *)

let in_bounds (len : int) (iv : Interval.t) =
  iv.Interval.lo >= 0 && iv.Interval.hi < len

let classify (decl : Kernel.Ir.buf_decl) accesses =
  let witness_of (a : access) index =
    {
      w_buf = decl.Kernel.Ir.buf_name;
      w_kind = a.a_kind;
      w_index = index;
      w_len = decl.Kernel.Ir.len;
      w_site = a.a_site;
    }
  in
  let ro_write =
    if decl.Kernel.Ir.writable then None
    else
      List.find_opt (fun a -> a.a_kind = Write) accesses
      |> Option.map (fun a ->
             let idx =
               if a.a_index.Interval.lo > min_int then a.a_index.Interval.lo
               else 0
             in
             Possible_violation (witness_of a idx))
  in
  match ro_write with
  | Some v -> v
  | None -> (
      let offending =
        List.filter
          (fun a -> not (in_bounds decl.Kernel.Ir.len a.a_index))
          accesses
      in
      match offending with
      | [] -> Proven_in_bounds
      | _ -> (
          match
            List.find_opt
              (fun a -> Interval.is_bounded a.a_index && not a.a_dependent)
              offending
          with
          | Some a ->
              let index =
                if a.a_index.Interval.hi >= decl.Kernel.Ir.len then
                  a.a_index.Interval.hi
                else a.a_index.Interval.lo
              in
              Possible_violation (witness_of a index)
          | None ->
              let a = List.hd offending in
              if a.a_dependent then
                Unknown
                  (Printf.sprintf
                     "index of %s depends on loaded data (pointer chasing)"
                     a.a_site)
              else
                Unknown
                  (Printf.sprintf "index of %s is unbounded: %s" a.a_site
                     (Interval.to_string a.a_index))))

let analyze ?(params = []) (kernel : Kernel.Ir.t) : report =
  let ctx =
    {
      heap = Hashtbl.create 16;
      scratch = Hashtbl.create 16;
      params;
      accesses = [];
      lints = [];
    }
  in
  List.iter (fun (b : Kernel.Ir.buf_decl) -> Hashtbl.replace ctx.heap b.buf_name b)
    kernel.bufs;
  List.iter
    (fun (b : Kernel.Ir.buf_decl) -> Hashtbl.replace ctx.scratch b.buf_name b)
    kernel.scratch;
  (match Kernel.Ir.validate kernel with
  | Ok () -> ()
  | Error msg -> lint ctx "%s" msg);
  (try ignore (exec_list ctx ~rec_:true Env.empty kernel.body)
   with exn -> lint ctx "analysis aborted: %s" (Printexc.to_string exn));
  let accesses = List.rev ctx.accesses in
  (* Scratch memories are BRAM behind the accelerator's memory interface —
     never adjudicated — so only a definite overflow (the whole index range
     outside the array, a guaranteed runtime abort) is worth a lint. *)
  List.iter
    (fun a ->
      if
        a.a_scratch
        && a.a_buf.Kernel.Ir.len > 0
        && (a.a_index.Interval.lo >= a.a_buf.Kernel.Ir.len
           || a.a_index.Interval.hi < 0)
      then
        lint ctx "scratch %s definitely out of bounds at %s: %s (len %d)"
          a.a_buf.Kernel.Ir.buf_name a.a_site
          (Interval.to_string a.a_index)
          a.a_buf.Kernel.Ir.len)
    accesses;
  let bufs =
    List.map
      (fun (decl : Kernel.Ir.buf_decl) ->
        let mine =
          List.filter
            (fun a -> (not a.a_scratch) && a.a_buf.Kernel.Ir.buf_name = decl.buf_name)
            accesses
        in
        let agg kind =
          List.filter_map
            (fun a -> if a.a_kind = kind then Some a.a_index else None)
            mine
          |> function
          | [] -> None
          | ivs -> Some (List.fold_left Interval.join (List.hd ivs) (List.tl ivs))
        in
        {
          buf = decl.buf_name;
          writable = decl.writable;
          len = decl.len;
          reads = agg Read;
          writes = agg Write;
          verdict = classify decl mine;
        })
      kernel.bufs
  in
  {
    kernel = kernel.name;
    bufs;
    lint = List.sort_uniq compare (List.rev ctx.lints);
  }

let proven r =
  r.lint = []
  && List.for_all (fun b -> b.verdict = Proven_in_bounds) r.bufs

let param_intervals params =
  List.filter_map
    (fun (name, v) ->
      match (v : Kernel.Value.t) with
      | VI n -> Some (name, Interval.const n)
      | VF _ -> None)
    params

let param_ranges params =
  List.filter_map
    (fun (name, v) ->
      match (v : Kernel.Value.t) with
      | VI n -> Some (name, Interval.make 1 (max 1 (2 * n)))
      | VF _ -> None)
    params

(* ---- rendering ---- *)

let kind_to_string = function Read -> "read" | Write -> "write"

let verdict_to_string = function
  | Proven_in_bounds -> "proven"
  | Possible_violation w ->
      Printf.sprintf "VIOLATION: %s of %s[%d] (len %d) at %s"
        (kind_to_string w.w_kind) w.w_buf w.w_index w.w_len w.w_site
  | Unknown reason -> "unknown: " ^ reason

let report_to_string r =
  let b = Buffer.create 256 in
  let overall =
    if proven r then "PROVEN"
    else if
      List.exists
        (fun br -> match br.verdict with Possible_violation _ -> true | _ -> false)
        r.bufs
    then "VIOLATION"
    else if r.lint <> [] then "LINT"
    else "UNKNOWN"
  in
  Buffer.add_string b (Printf.sprintf "%s: %s\n" r.kernel overall);
  List.iter
    (fun br ->
      let iv = function None -> "-" | Some i -> Interval.to_string i in
      Buffer.add_string b
        (Printf.sprintf "  %-12s %-2s len %-6d reads %-14s writes %-14s %s\n"
           br.buf
           (if br.writable then "rw" else "ro")
           br.len (iv br.reads) (iv br.writes)
           (verdict_to_string br.verdict)))
    r.bufs;
  List.iter (fun l -> Buffer.add_string b (Printf.sprintf "  lint: %s\n" l)) r.lint;
  Buffer.contents b
