(** Static capability-footprint analysis over the kernel IR.

    An interval-domain abstract interpreter computes, for every heap buffer a
    kernel touches, a sound over-approximation of the element indices it can
    read and write.  If the footprint of a buffer fits inside [0, len), the
    driver-granted capability can never deny an access of that kernel — the
    per-beat CapChecker adjudication is provably redundant and {!Soc.Run} may
    elide it.  The analysis runs before a single simulated cycle: it is the
    static half of the paper's adaptive compartmentalization, in the spirit of
    VeriCHERI's static guarantees layered over CHERI's dynamic enforcement.

    Soundness model: the domain over-approximates {!Kernel.Interp}'s concrete
    semantics (C-style [For] loops with bounds evaluated once, [While] with
    entry-condition refinement, wrap-free 63-bit integer arithmetic treated as
    unbounded, loads returning unknown values).  Widening on loop-carried
    variables guarantees termination; anything data-dependent — an index
    computed from a loaded value, the pointer-chasing kernels — degrades to
    {e Unknown}, never to a false proof. *)

module Interval : sig
  type t = { lo : int; hi : int }
  (** A closed integer interval.  [min_int] as [lo] means unbounded below,
      [max_int] as [hi] unbounded above; both at once is {!top}. *)

  val top : t
  val const : int -> t
  val make : int -> int -> t
  (** [make lo hi] orders its endpoints. *)

  val is_top : t -> bool
  val is_bounded : t -> bool
  (** Both endpoints finite (no widened/unknown extreme). *)

  val mem : int -> t -> bool
  val subset : t -> t -> bool
  val equal : t -> t -> bool
  val join : t -> t -> t
  val meet : t -> t -> t option
  (** Intersection; [None] when empty. *)

  val widen : t -> t -> t
  (** [widen old next] jumps any endpoint that moved to the matching
      infinity, guaranteeing loop-fixpoint termination. *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val to_string : t -> string
end

type kind = Read | Write

type witness = {
  w_buf : string;
  w_kind : kind;
  w_index : int;  (** a concrete out-of-bounds element index *)
  w_len : int;    (** the buffer's declared length in elements *)
  w_site : string;  (** pretty-printed access expression/statement *)
}
(** A concrete counterexample candidate: replaying the kernel with an
    execution that reaches [w_site] at index [w_index] must produce a
    dynamic [Check_denial]. *)

type verdict =
  | Proven_in_bounds
      (** every possible access to this buffer lies inside the granted
          capability: dynamic adjudication can never deny it *)
  | Possible_violation of witness
      (** a bounded, non-data-dependent index range escapes the buffer *)
  | Unknown of string
      (** the footprint could not be bounded (widened loop counter or
          data-dependent / pointer-chasing index); the reason says which *)

type buf_report = {
  buf : string;
  writable : bool;
  len : int;
  reads : Interval.t option;   (** [None] = never read *)
  writes : Interval.t option;  (** [None] = never written *)
  verdict : verdict;
}

type report = {
  kernel : string;
  bufs : buf_report list;  (** heap buffers, declaration order *)
  lint : string list;
      (** well-formedness problems: [validate] failures, unbound locals,
          degenerate loop bounds, definite scratch overflows, negative
          memcpy lengths *)
}

val analyze : ?params:(string * Interval.t) list -> Kernel.Ir.t -> report
(** Abstractly interpret the kernel.  [params] constrains [Param] values;
    unconstrained params evaluate to {!Interval.top}. *)

val proven : report -> bool
(** Every buffer [Proven_in_bounds] and no lint findings — the condition
    under which check elision is sound. *)

val param_intervals : (string * Kernel.Value.t) list -> (string * Interval.t) list
(** Exact constraints from a concrete launch-parameter assignment (integer
    params become singletons; float params are unconstrained). *)

val param_ranges : (string * Kernel.Value.t) list -> (string * Interval.t) list
(** The declared range family of a benchmark's default parameters: an integer
    default [n] is declared to range over [[1, max 1 (2n)]].  A verdict
    computed under these constraints holds for every assignment drawn from
    them (used by [capsim lint] and the differential property test). *)

val kind_to_string : kind -> string
val verdict_to_string : verdict -> string
val report_to_string : report -> string
(** Human-readable per-buffer table, one kernel per call (used by
    [capsim lint] and pinned by the cram test). *)
