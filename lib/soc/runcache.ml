(* On-disk, cross-process run cache.

   The in-memory whole-run memo (see {!Run}) dies with the process, so
   repeated sweeps — re-running a bench after an unrelated edit, CI jobs
   sharing a workspace, capsim invocations in a shell loop — recompute
   identical results from scratch.  When a cache directory is configured,
   eligible results are additionally persisted there, one file per memo key.

   Safety over speed: entries are keyed by the digest of the marshalled memo
   key *and* a digest of the running binary, so any rebuild — which may
   change timing, result layout or the meaning of a key field — orphans the
   old entries rather than replaying them.  The stamp is repeated inside
   each file and re-checked on load, files are written to a temp name and
   renamed into place (concurrent sweep workers race benignly), and any
   read or decode failure degrades to a miss. *)

let dir_ref = Atomic.make None

let set_dir d = Atomic.set dir_ref d
let dir () = Atomic.get dir_ref

(* Digest of the running executable: ties every entry to the exact binary
   that produced it.  [Sys.executable_name] can be unreadable under exotic
   launchers; then the cache silently disables rather than risking stale
   hits. *)
let binary_stamp =
  lazy (try Some (Digest.file Sys.executable_name) with _ -> None)

let entry_path ~dir ~stamp key =
  let digest = Digest.string (stamp ^ Marshal.to_string key []) in
  Filename.concat dir (Digest.to_hex digest ^ ".run")

let with_cache f =
  match dir () with
  | None -> None
  | Some dir -> (
      match Lazy.force binary_stamp with
      | None -> None
      | Some stamp -> f ~dir ~stamp)

let load (key : 'k) : 'v option =
  with_cache (fun ~dir ~stamp ->
      let path = entry_path ~dir ~stamp key in
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let stored_stamp : string = Marshal.from_channel ic in
            if stored_stamp <> stamp then None
            else begin
              let v : 'v = Marshal.from_channel ic in
              Obs.Counters.incr Obs.Counters.runs_disk_cached;
              Some v
            end)
      with _ -> None)

let store (key : 'k) (v : 'v) =
  ignore
    (with_cache (fun ~dir ~stamp ->
         (try
            (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
            let path = entry_path ~dir ~stamp key in
            let tmp =
              Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())
            in
            let oc = open_out_bin tmp in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                Marshal.to_channel oc stamp [];
                Marshal.to_channel oc v []);
            Sys.rename tmp path
          with _ -> ());
         None))
