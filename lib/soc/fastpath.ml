(* Proof-driven fast paths and cross-sweep memoization: process-global policy
   and caches for the simulator's replay speedups.

   Everything here is a pure simulator optimization: each cache keys on the
   complete set of inputs its value is a deterministic function of, so a hit
   reproduces exactly what recomputation would have produced (the
   differential test suite and the [Differential] mode pin this).  Tables are
   mutex-guarded so pool worker domains can share them; values are immutable
   once stored, so a returned hit needs no further synchronization. *)

type mode = Fast | Interpretive | Differential

let mode_cell = Atomic.make Fast

let set_mode m = Atomic.set mode_cell m
let current_mode () = Atomic.get mode_cell
let enabled () = Atomic.get mode_cell <> Interpretive

let mode_to_string = function
  | Fast -> "on"
  | Interpretive -> "off"
  | Differential -> "diff"

let mode_of_string = function
  | "on" | "fast" -> Some Fast
  | "off" | "interpretive" -> Some Interpretive
  | "diff" | "differential" -> Some Differential
  | _ -> None

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Identity of a benchmark as the access-sequence layers see it: the kernel
   is named uniquely by the registry, and params/directives are the only
   other inputs the interpretation's access sequence (and its CPU cycle
   count) depends on.  Ablations that rewrite directives under the same name
   get distinct keys. *)
type bench_key = {
  bk_name : string;
  bk_params : (string * Kernel.Value.t) list;
  bk_directives : Hls.Directives.t;
}

let bench_key (b : Machsuite.Bench_def.t) =
  { bk_name = b.Machsuite.Bench_def.name; bk_params = b.params;
    bk_directives = b.directives }

(* ---- static-proof verdicts ---- *)

let proven_tbl : (bench_key, bool) Hashtbl.t = Hashtbl.create 32
let proven_mutex = Mutex.create ()

let proven (bench : Machsuite.Bench_def.t) =
  let key = bench_key bench in
  match with_lock proven_mutex (fun () -> Hashtbl.find_opt proven_tbl key) with
  | Some v -> v
  | None ->
      let v =
        Analysis.proven
          (Analysis.analyze
             ~params:(Analysis.param_intervals bench.Machsuite.Bench_def.params)
             bench.Machsuite.Bench_def.kernel)
      in
      with_lock proven_mutex (fun () ->
          if not (Hashtbl.mem proven_tbl key) then Hashtbl.add proven_tbl key v);
      v

(* ---- recorded access scripts ---- *)

type script_entry = { sc_script : Accel.Script.t; sc_correct : bool }

let script_tbl : (bench_key, script_entry) Hashtbl.t = Hashtbl.create 32
let script_mutex = Mutex.create ()

let find_script key =
  match with_lock script_mutex (fun () -> Hashtbl.find_opt script_tbl key) with
  | Some e -> Some (e.sc_script, e.sc_correct)
  | None -> None

let store_script key script ~correct =
  with_lock script_mutex (fun () ->
      if not (Hashtbl.mem script_tbl key) then
        Hashtbl.add script_tbl key { sc_script = script; sc_correct = correct })

(* ---- CPU model results ---- *)

(* One Cpu.Model.run covers every task count (the CPU path multiplies the
   single-task cycle count), so the key is just (isa, bench). *)
let cpu_tbl : (Cpu.Model.isa * bench_key, int * bool) Hashtbl.t =
  Hashtbl.create 32

let cpu_mutex = Mutex.create ()

let find_cpu ~isa key =
  with_lock cpu_mutex (fun () -> Hashtbl.find_opt cpu_tbl (isa, key))

let store_cpu ~isa key value =
  with_lock cpu_mutex (fun () ->
      if not (Hashtbl.mem cpu_tbl (isa, key)) then
        Hashtbl.add cpu_tbl (isa, key) value)

(* ---- cache lifecycle ---- *)

(* Caches owned by other modules (the whole-run memo lives in Run, next to
   its result type) register a reset hook at module-init time. *)
let clear_hooks : (unit -> unit) list Atomic.t = Atomic.make []

let rec register_clear f =
  let hooks = Atomic.get clear_hooks in
  if not (Atomic.compare_and_set clear_hooks hooks (f :: hooks)) then
    register_clear f

let clear () =
  with_lock proven_mutex (fun () -> Hashtbl.reset proven_tbl);
  with_lock script_mutex (fun () -> Hashtbl.reset script_tbl);
  with_lock cpu_mutex (fun () -> Hashtbl.reset cpu_tbl);
  List.iter (fun f -> f ()) (Atomic.get clear_hooks)

let stats () =
  [
    ("proven_verdicts", with_lock proven_mutex (fun () -> Hashtbl.length proven_tbl));
    ("scripts", with_lock script_mutex (fun () -> Hashtbl.length script_tbl));
    ("cpu_results", with_lock cpu_mutex (fun () -> Hashtbl.length cpu_tbl));
  ]
