(** Fast-path policy and cross-sweep caches for replay acceleration.

    The simulator's outputs are deterministic functions of their inputs, so
    three layers of reuse are sound by construction and pinned by the
    differential test suite:

    - {b proof verdicts} — {!Analysis.analyze} per (kernel, params) bench;
    - {b access scripts} — the config-independent skeleton of one
      interpretation ({!Accel.Script}), recorded once per bench and
      re-derived per protection config;
    - {b CPU model results} — one {!Cpu.Model.run} per (isa, bench);
    - {b whole runs} — {!Soc.Run} additionally memoizes complete results
      across sweep points (its cache lives next to its result type and
      registers itself via {!register_clear}).

    The process-global {!mode} selects how {!Soc.Run} uses these caches; the
    tables themselves are mutex-guarded so pool worker domains share them,
    which is what makes [--jobs] sweeps deterministic {e and} warm. *)

type mode =
  | Fast  (** derive from caches wherever sound (the default) *)
  | Interpretive
      (** re-interpret everything; the differential oracle's ground truth *)
  | Differential
      (** compute both legs and [failwith] on any divergence — runs at
          interpretive speed plus the fast leg; for tests and CI gates *)

val set_mode : mode -> unit
val current_mode : unit -> mode

val enabled : unit -> bool
(** [current_mode () <> Interpretive]. *)

val mode_to_string : mode -> string
(** ["on"], ["off"], ["diff"] — the [--fast-path] CLI spellings. *)

val mode_of_string : string -> mode option

(** Identity of a bench for cache keying: name, parameters and synthesized
    directives — the complete set of inputs the access sequence and cycle
    counts depend on. *)
type bench_key

val bench_key : Machsuite.Bench_def.t -> bench_key

val proven : Machsuite.Bench_def.t -> bool
(** Memoized {!Analysis.proven} verdict for the bench's kernel under its
    parameter intervals.  Safe in every mode: the analysis is deterministic
    and the verdict feeds the same gates whether cached or not. *)

val find_script : bench_key -> (Accel.Script.t * bool) option
(** A recorded access script plus the verifier's verdict for the recording
    run ([s_correct]); the verdict is config-independent because functional
    execution never sees the protection config. *)

val store_script : bench_key -> Accel.Script.t -> correct:bool -> unit
(** First store wins; concurrent recorders of the same bench produce
    identical scripts, so dropping duplicates is sound. *)

val find_cpu : isa:Cpu.Model.isa -> bench_key -> (int * bool) option
(** Cached (cycles, verified) of the single-task CPU model run. *)

val store_cpu : isa:Cpu.Model.isa -> bench_key -> int * bool -> unit

val register_clear : (unit -> unit) -> unit
(** Register a reset hook for a cache owned elsewhere; called by {!clear}. *)

val clear : unit -> unit
(** Empty every cache (including registered ones).  For tests and for
    benchmarks that want cold-start timings. *)

val stats : unit -> (string * int) list
(** Entry counts per cache, for observability output. *)
