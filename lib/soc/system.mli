(** A concrete instantiated system: memory, heap, interconnect, protection
    backend and driver, ready to run tasks.

    One [System.t] corresponds to one powered-on SoC; experiments that need a
    clean slate build a fresh one (cheap — a few MiB of zeroed memory). *)

type t = {
  config : Config.t;
  mem : Tagmem.Mem.t;
  heap : Tagmem.Alloc.t;
  bus : Bus.Params.t;
  fabric : Bus.Fabric.t;
  cpu_cfg : Cpu.Model.config;
  backend : Driver.Backend.t option;  (** None for CPU-only systems *)
  driver : Driver.t option;
  checker : Capchecker.Checker.t option;
      (** the CapChecker instance when the protection is Fine/Coarse *)
  instances : int;
  obs : Obs.Trace.t;
      (** the event sink every component of this system reports into
          ({!Obs.Trace.null} unless one was passed to {!create}) *)
}

val create :
  ?instances:int -> ?cc_entries:int -> ?bus:Bus.Params.t -> ?obs:Obs.Trace.t ->
  Config.t -> t
(** [instances] defaults to 8 (the paper's setting), [cc_entries] to 256,
    [bus] to {!Bus.Params.default} (override for interconnect ablations).
    [obs] (default {!Obs.Trace.null}) is threaded into the bus fabric, the
    protection backend and the driver; recording is observation-only and
    never changes simulated behaviour. *)

val guard : t -> Guard.Iface.t
(** The active guard ({!Guard.Iface.pass_through} for unguarded systems). *)

val cpu_isa : Config.t -> Cpu.Model.isa

val naive_tag_writes : t -> bool

val guard_area_luts : t -> int

val total_area_luts : t -> accel_luts_per_instance:int -> int
(** CPU + accelerator instances + interconnect + protection hardware. *)
