(** A concrete instantiated system: memory, heap, interconnect, protection
    backend and driver, ready to run tasks.

    One [System.t] corresponds to one powered-on SoC; experiments that need a
    clean slate build a fresh one (cheap — a few MiB of zeroed memory). *)

type t = {
  config : Config.t;
  mem : Tagmem.Mem.t;
  heap : Tagmem.Alloc.t;
  bus : Bus.Params.t;
  fabric : Bus.Fabric.t;
  cpu_cfg : Cpu.Model.config;
  backend : Driver.Backend.t option;  (** None for CPU-only systems *)
  driver : Driver.t option;
  checker : Capchecker.Checker.t option;
      (** the CapChecker instance when the protection is Fine/Coarse *)
  topology : Bus.Topology.kind;
  fleet : Capchecker.Shim.t option;
      (** the checking fleet — present whenever checking departs from "one
          central unit behind a shared bus": distributed (per-source shim)
          placement, or central placement on a concurrent topology (where
          the central unit's single port must be contention-modelled) *)
  instances : int;
  obs : Obs.Trace.t;
      (** the event sink every component of this system reports into
          ({!Obs.Trace.null} unless one was passed to {!create}) *)
  faults : Fault.Injector.t;
      (** the fault injector shared by bus, guard and driver (inert unless a
          plan was passed to {!create}) *)
}

val create :
  ?instances:int -> ?cc_entries:int -> ?bus:Bus.Params.t -> ?obs:Obs.Trace.t ->
  ?faults:Fault.Plan.t -> ?topology:Bus.Topology.kind ->
  ?checkers:Capchecker.Shim.checking -> Config.t -> t
(** [instances] defaults to 8 (the paper's setting), [cc_entries] to 256,
    [bus] to {!Bus.Params.default} (override for interconnect ablations).
    [topology] (default [Shared]) selects the interconnect shape the event
    engine builds; [checkers] (default [Central]) places capability checking
    centrally or in per-source shims ({!Capchecker.Shim}).  The default pair
    is bit-identical to a system without the fleet plumbing.
    [obs] (default {!Obs.Trace.null}) is threaded into the bus fabric, the
    protection backend and the driver; recording is observation-only and
    never changes simulated behaviour.  [faults] (default {!Fault.Plan.none})
    seeds one {!Fault.Injector} shared by the bus fabric, the protection
    backend and the driver; with the [none] plan every injection site is
    inert and behaviour is bit-identical to a system without fault
    plumbing. *)

val guard : t -> Guard.Iface.t
(** The active guard ({!Guard.Iface.pass_through} for unguarded systems).
    Under an active fault plan the guard is wrapped to inject transient
    spurious denials (code {!Fault.Injector.transient_denial_code}); the
    underlying protection state is untouched. *)

val cpu_isa : Config.t -> Cpu.Model.isa

val naive_tag_writes : t -> bool

val guard_area_luts : t -> int

val total_area_luts : t -> accel_luts_per_instance:int -> int
(** CPU + accelerator instances + interconnect + protection hardware, for
    homogeneous systems where every instance synthesizes the same datapath. *)

val total_area_luts_exact : t -> accel_luts_total:int -> int
(** Same composition with the accelerator datapath area given as an exact
    total, for mixed systems whose instances have unequal [area_luts] — no
    lossy per-instance mean. *)
