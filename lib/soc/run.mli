(** End-to-end benchmark execution on a configured system.

    Reproduces the paper's measurement protocol: the wall clock covers driver
    allocation, application data initialization, the offloaded (or CPU)
    computation, and driver teardown — the four segments of Figure 10's
    breakdown.  Functional correctness is verified against the reference
    semantics on every run; a protected system that blocked a benign access
    would show up as [correct = false], not as a silently different number. *)

type phases = {
  alloc : int;     (** driver allocation + protection programming *)
  init : int;      (** application writing input data *)
  compute : int;   (** kernel execution / accelerator makespan *)
  teardown : int;  (** eviction, scrubbing, free *)
}

val wall_of : phases -> int

type result = {
  config_label : string;
  benchmark : string;
  tasks : int;
  phases : phases;
  wall : int;
  correct : bool;
  denials : Guard.Iface.denial list;
  checks : int;         (** protection adjudications (all instances) *)
  entries_peak : int;   (** live guard entries while tasks were resident *)
  bus_beats : int;
  area_luts : int;
  power_mw : float;
}

val run :
  ?tasks:int ->
  ?instances:int ->
  ?cc_entries:int ->
  ?bus:Bus.Params.t ->
  ?obs:Obs.Trace.t ->
  Config.t ->
  Machsuite.Bench_def.t ->
  result
(** Run [tasks] identical independent tasks (default 8, the paper's eight
    instances).  [cc_entries] sizes the CapChecker table (default 256).  Homogeneous accelerator tasks are interpreted once and their
    DMA stream replicated per instance — concurrent timing is still modeled
    exactly, per-instance, through the shared interconnect.

    [obs] (default {!Obs.Trace.null}) records an event trace of the run:
    bus grants, guard adjudications, table/MMIO traffic and [Task_phase]
    markers at the alloc/init/compute/teardown boundaries.  Recording is
    observation-only: the returned [result] is identical with and without a
    sink (covered by a differential test). *)

val run_mixed :
  ?instances:int -> ?obs:Obs.Trace.t -> Config.t -> Machsuite.Bench_def.t list ->
  result
(** One task per (distinct) benchmark on one shared system — the
    mixed-accelerator SoCs of Figure 9.  Requires a heterogeneous config. *)
