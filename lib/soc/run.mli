(** End-to-end benchmark execution on a configured system.

    Reproduces the paper's measurement protocol: the wall clock covers driver
    allocation, application data initialization, the offloaded (or CPU)
    computation, and driver teardown — the four segments of Figure 10's
    breakdown.  Functional correctness is verified against the reference
    semantics on every run; a protected system that blocked a benign access
    would show up as [correct = false], not as a silently different number. *)

type phases = {
  alloc : int;     (** driver allocation + protection programming *)
  init : int;      (** application writing input data *)
  compute : int;   (** kernel execution / accelerator makespan *)
  teardown : int;  (** eviction, scrubbing, free *)
}

val wall_of : phases -> int

type fallback = {
  task : int;    (** index of the task in submission order *)
  reason : string;
}
(** One task that could not complete on the accelerator and was re-executed
    (and re-verified) on the CPU. *)

type elide_mode =
  | Elide_off  (** adjudicate every DMA beat (the default) *)
  | Elide_on
      (** skip per-beat adjudication for tasks whose footprint {!Analysis}
          proved within the granted capabilities under the concrete launch
          parameters; requires a backend with
          {!Driver.Backend.supports_elision}.  Unproven tasks run fully
          guarded. *)
  | Elide_differential
      (** keep the guard in the loop but assert the analysis soundness
          contract — a statically proven task that is dynamically denied
          raises [Failure] instead of being reported as a denial *)

type engine =
  | Legacy_replay
      (** interpret the kernel up front, record its DMA trace, and replay the
          contention through the serialized fabric (the default; the timing
          oracle every prior result was measured against) *)
  | Event_driven
      (** run every instance live as a {!Ccsim.Sched} coroutine contending
          for a round-robin {!Bus.Arbiter} on one shared timeline; guard
          checks from concurrent instances interleave in true bus order and
          every task executes (and is verified) functionally.  With a single
          instance the schedule is cycle-identical to [Legacy_replay]
          (enforced by differential tests); under contention only the
          arbitration policy differs. *)

type result = {
  config_label : string;
  benchmark : string;
  tasks : int;
  phases : phases;
  wall : int;
  correct : bool;
  denials : Guard.Iface.denial list;
  checks : int;         (** protection adjudications (all instances) *)
  elided_checks : int;
      (** adjudications skipped under {!Elide_on} for statically proven
          tasks (all instances; 0 otherwise) *)
  entries_peak : int;   (** live guard entries while tasks were resident *)
  bus_beats : int;
  area_luts : int;
  power_mw : float;
  recovered : int;
      (** tasks that completed on the accelerator but needed at least one
          driver retry (always 0 without fault injection) *)
  fallbacks : fallback list;
      (** tasks degraded to CPU execution, submission order (always empty
          without fault injection) *)
  faults : Fault.Injector.counts;
      (** injection/recovery counters of this run's injector (all zero
          without fault injection) *)
}

val run :
  ?tasks:int ->
  ?instances:int ->
  ?cc_entries:int ->
  ?bus:Bus.Params.t ->
  ?obs:Obs.Trace.t ->
  ?faults:Fault.Plan.t ->
  ?retry:Driver.retry_policy ->
  ?elide:elide_mode ->
  ?engine:engine ->
  ?topology:Bus.Topology.kind ->
  ?checkers:Capchecker.Shim.checking ->
  Config.t ->
  Machsuite.Bench_def.t ->
  result
(** Run [tasks] identical independent tasks (default 8, the paper's eight
    instances).  [cc_entries] sizes the CapChecker table (default 256).
    Under the default [engine] ([Legacy_replay]) homogeneous accelerator
    tasks are interpreted once and their DMA stream replicated per instance —
    concurrent timing is still modeled exactly, per-instance, through the
    shared interconnect; [Event_driven] instead executes every instance live
    on the shared event timeline.  Raises [Invalid_argument] if
    [tasks <= 0].

    [obs] (default {!Obs.Trace.null}) records an event trace of the run:
    bus grants, guard adjudications, table/MMIO traffic and [Task_phase]
    markers at the alloc/init/compute/teardown boundaries.  Recording is
    observation-only: the returned [result] is identical with and without a
    sink (covered by a differential test).

    [faults] (default {!Fault.Plan.none}) injects seeded faults at the bus,
    guard and driver layers.  With the [none] plan the run is bit-identical
    to one without fault plumbing.  Under an active plan each task is placed
    and interpreted individually so it can retry per [retry] (default
    {!Driver.default_retry_policy}, backoff cycles charged to the alloc
    phase) or degrade to CPU execution with an explicit [fallbacks] record —
    every run either verifies [correct = true] or reports its fallbacks,
    never a silently wrong result.

    [elide] (default [Elide_off]) selects the adaptive check-elision policy
    for statically proven tasks; it only applies to the fault-free
    heterogeneous path (an active fault plan keeps every check, since faults
    invalidate the static model's assumptions).

    [engine] (default [Legacy_replay]) selects the timing core.  Under an
    active fault plan, task placement and retry stay sequential in both
    modes and only the contention replay switches cores; fault draw order
    differs between cores, so seeded runs are reproducible per engine, not
    across engines.

    [topology] (default [Shared]) selects the interconnect shape and
    [checkers] (default [Central]) the checking placement (see
    {!System.create}).  A non-[Shared] topology requires the event engine
    (raises [Invalid_argument] under [Legacy_replay], whose serialized
    fabric cannot model concurrent grants); [checkers = Distributed] works
    under either engine — it changes adjudication latency, never
    verdicts. *)

type service_profile = {
  sv_bench : string;
  sv_alloc : int;     (** driver allocation, one task *)
  sv_init : int;      (** input initialization, one task *)
  sv_compute : int;   (** uncontended accelerator makespan, one task *)
  sv_teardown : int;  (** eviction + scrub + free, one task *)
  sv_checks : int;    (** protection adjudications of that task *)
  sv_cpu_wall : int;  (** the same work executed on the CPU configuration *)
}
(** Measured per-request cycle costs of one kernel, used by the service loop
    ([lib/serve]) to price requests without re-executing the kernel per
    request. *)

val service_profile :
  ?engine:engine -> ?topology:Bus.Topology.kind ->
  ?checkers:Capchecker.Shim.checking -> Config.t -> Machsuite.Bench_def.t ->
  service_profile
(** One single-task fault-free {!run} of [bench] under [config] (default
    [engine] is [Event_driven]) plus one {!Config.cpu} run for the fallback
    cost.  Requires a heterogeneous config (raises [Invalid_argument]);
    raises [Failure] if the profiling run does not verify correct.
    [topology]/[checkers] shape the profiled system like {!run}'s. *)

val run_mixed :
  ?instances:int -> ?obs:Obs.Trace.t -> ?faults:Fault.Plan.t ->
  ?retry:Driver.retry_policy -> ?elide:elide_mode -> ?engine:engine ->
  ?topology:Bus.Topology.kind -> ?checkers:Capchecker.Shim.checking ->
  Config.t ->
  Machsuite.Bench_def.t list ->
  result
(** One task per (distinct) benchmark on one shared system — the
    mixed-accelerator SoCs of Figure 9.  Requires a heterogeneous config and
    at least one benchmark (raises [Invalid_argument] otherwise).
    [faults]/[retry]/[engine] behave as in {!run}.  [area_luts] sums each
    instance's datapath exactly (no per-task mean). *)

(** {1 Batch execution on a domain pool}

    Full-system runs are independent of one another — distinct [System]s,
    distinct memories, distinct fault-plan RNG streams — which makes a batch
    embarrassingly parallel.  {!run_many} evaluates one {!spec} per
    {!Ccsim.Pool} job and returns results in spec order; because each job
    constructs {e all} of its mutable state itself (its system, its optional
    sink via [obs_of], the injector seeded from the spec's fault plan), the
    result list is byte-identical at every [jobs] value.  Do not share a
    sink, a system, or any other mutable structure across specs: the
    "no shared mutable state across jobs" rule of {!Ccsim.Pool} applies. *)

type spec = {
  sp_config : Config.t;
  sp_bench : Machsuite.Bench_def.t;
  sp_tasks : int;
  sp_instances : int option;
  sp_cc_entries : int;
  sp_bus : Bus.Params.t;
  sp_faults : Fault.Plan.t;   (** the plan's seed derives this run's RNG *)
  sp_retry : Driver.retry_policy;
  sp_elide : elide_mode;
  sp_engine : engine;
  sp_topology : Bus.Topology.kind;
  sp_checkers : Capchecker.Shim.checking;
}

val spec :
  ?tasks:int -> ?instances:int -> ?cc_entries:int -> ?bus:Bus.Params.t ->
  ?faults:Fault.Plan.t -> ?retry:Driver.retry_policy -> ?elide:elide_mode ->
  ?engine:engine -> ?topology:Bus.Topology.kind ->
  ?checkers:Capchecker.Shim.checking -> Config.t -> Machsuite.Bench_def.t ->
  spec
(** Defaults mirror {!run}'s. *)

val run_spec : ?obs:Obs.Trace.t -> spec -> result
(** [run_spec sp] = {!run} with [sp]'s fields; the serial oracle
    {!run_many} is tested against. *)

val run_many :
  ?jobs:int -> ?obs_of:(int -> Obs.Trace.t) -> spec list -> result list
(** Run every spec, up to [jobs] ({!Ccsim.Pool} semantics: default 1 =
    serial, 0 = all cores) at a time, returning results in spec order.
    [obs_of i] supplies the private sink for job [i] — typically one
    pre-created sink per spec, merged after the barrier with
    {!Obs.Trace.merge_into}.  A sink must not be shared between specs. *)

val sweep_many :
  ?jobs:int -> ?engine:engine -> ?topology:Bus.Topology.kind ->
  ?checkers:Capchecker.Shim.checking -> tasks_list:int list ->
  (Config.t * int option) list -> Machsuite.Bench_def.t ->
  (int * result list) list
(** The parallelism-sweep shape (Figure 11 / [capsim sweep]): for every task
    count in [tasks_list], run [bench] under each [(config, instances)]
    column.  All points run as one {!run_many} batch; the returned rows
    pair each task count with its per-column results in column order. *)
