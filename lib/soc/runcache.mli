(** On-disk, cross-process extension of {!Run}'s whole-run memo.

    Opt-in: disabled until {!set_dir} names a directory (the [--cache-dir]
    flag on [capsim] and the bench harness).  Entries are keyed by the
    digest of the marshalled memo key combined with a digest of the running
    binary, so results never survive a rebuild; any I/O or decode failure
    degrades to a miss.  Only results eligible for the in-memory memo (no
    observability sink, no fault plan) ever reach the disk — {!Run} enforces
    the gate. *)

val set_dir : string option -> unit
(** Enable (or disable with [None]) the cache.  The directory is created on
    first store. *)

val dir : unit -> string option

val load : 'k -> 'v option
(** Look up the entry stored under (marshalled) key ['k].  Bumps
    {!Obs.Counters.runs_disk_cached} on a hit.  The caller must only ever
    associate one type ['v] with a given key type — the binary stamp pins
    the producing executable, which pins the layout. *)

val store : 'k -> 'v -> unit
(** Persist atomically (temp file + rename); concurrent writers race
    benignly.  Failures are silent — the cache is an accelerator, never a
    correctness dependency. *)
