type t = {
  config : Config.t;
  mem : Tagmem.Mem.t;
  heap : Tagmem.Alloc.t;
  bus : Bus.Params.t;
  fabric : Bus.Fabric.t;
  cpu_cfg : Cpu.Model.config;
  backend : Driver.Backend.t option;
  driver : Driver.t option;
  checker : Capchecker.Checker.t option;
  topology : Bus.Topology.kind;
  fleet : Capchecker.Shim.t option;
  instances : int;
  obs : Obs.Trace.t;
  faults : Fault.Injector.t;
}

let cpu_isa = function
  | Config.Cpu_only isa -> isa
  | Config.Hetero { cpu_isa; _ } -> cpu_isa

(* The cached CapChecker's backing table lives in driver-reserved memory
   below the heap. *)
let cached_table_base = 512 * 1024
let cached_max_objs = 64

let make_backend ~cc_entries ~mem ~instances ~obs ~faults (protection : Config.protection) =
  match protection with
  | Config.Prot_none -> (Driver.Backend.No_protection { naive_tags = false }, None)
  | Config.Prot_naive -> (Driver.Backend.No_protection { naive_tags = true }, None)
  | Config.Prot_iopmp -> (Driver.Backend.Iopmp (Guard.Iopmp.create ()), None)
  | Config.Prot_iommu -> (Driver.Backend.Iommu (Guard.Iommu.create ()), None)
  | Config.Prot_snpu -> (Driver.Backend.Snpu (Guard.Snpu.create ()), None)
  | Config.Prot_cc_fine ->
      let c =
        Capchecker.Checker.create ~entries:cc_entries ~obs ~faults
          Capchecker.Checker.Fine
      in
      (Driver.Backend.Capchecker c, Some c)
  | Config.Prot_cc_coarse ->
      let c =
        Capchecker.Checker.create ~entries:cc_entries ~obs ~faults
          Capchecker.Checker.Coarse
      in
      (Driver.Backend.Capchecker c, Some c)
  | Config.Prot_cc_cached ->
      let c =
        Capchecker.Cached.create ~cache_entries:16 ~obs ~faults
          ~mode:Capchecker.Checker.Fine ~mem ~table_base:cached_table_base
          ~max_tasks:instances ~max_objs:cached_max_objs ()
      in
      (Driver.Backend.Capchecker_cached c, None)

let create ?(instances = 8) ?(cc_entries = 256) ?(bus = Bus.Params.default)
    ?(obs = Obs.Trace.null) ?(faults = Fault.Plan.none)
    ?(topology = Bus.Topology.Shared) ?(checkers = Capchecker.Shim.Central)
    config =
  let mem = Tagmem.Mem.create ~size:Bus.Addr_map.dram_size in
  let heap =
    Tagmem.Alloc.create ~base:Bus.Addr_map.heap_base
      ~size:(Bus.Addr_map.dram_size - Bus.Addr_map.heap_base)
  in
  let faults = Fault.Injector.create ~obs faults in
  let fabric = Bus.Fabric.create ~obs ~faults bus in
  let cpu_cfg = Cpu.Model.config (cpu_isa config) in
  let backend, checker =
    match config with
    | Config.Cpu_only _ -> (None, None)
    | Config.Hetero { protection; _ } ->
        let b, c = make_backend ~cc_entries ~mem ~instances ~obs ~faults protection in
        (Some b, c)
  in
  let driver =
    Option.map
      (fun backend ->
        Driver.create ~obs ~faults ~mem ~heap ~backend ~bus ~n_instances:instances ())
      backend
  in
  (* The checker fleet exists whenever checking can depart from "one central
     unit behind a one-grant-per-cycle bus": distributed (per-source shim)
     placement always needs it, and central placement needs it on any
     topology that can grant concurrently (the central unit's single port
     becomes a contention point the event engine must model).  On the Shared
     topology with central checking no fleet is created and the guard path
     is bit-for-bit the legacy one — the differential oracle. *)
  let fleet =
    match checker with
    | Some c
      when checkers = Capchecker.Shim.Distributed
           || topology <> Bus.Topology.Shared ->
        Some (Capchecker.Shim.create ~central:c ~sources:instances checkers)
    | Some _ | None -> None
  in
  { config; mem; heap; bus; fabric; cpu_cfg; backend; driver; checker; topology;
    fleet; instances; obs; faults }

let guard t =
  let g =
    match t.fleet with
    | Some f -> Capchecker.Shim.guard f
    | None -> (
        match t.backend with
        | Some b -> Driver.Backend.guard_of b
        | None -> Guard.Iface.pass_through)
  in
  if not (Fault.Injector.active t.faults) then g
  else
    (* Interpose transient spurious denials in front of the real guard: the
       underlying protection state is untouched, so a retry after teardown
       and re-allocation can succeed. *)
    {
      g with
      Guard.Iface.check =
        (fun req ->
          if Fault.Injector.guard_denial t.faults then
            Guard.Iface.Denied
              {
                code = Fault.Injector.transient_denial_code;
                detail = "injected transient guard denial";
              }
          else g.Guard.Iface.check req);
      (* Injected denials draw RNG per check: neither pure nor constant. *)
      const_latency = None;
    }

let naive_tag_writes t =
  match t.backend with Some b -> Driver.Backend.naive_tag_writes b | None -> false

let guard_area_luts t =
  match (t.fleet, t.backend) with
  | Some f, _ -> Capchecker.Shim.area_luts f
  | None, None -> 0
  | None, Some (Driver.Backend.No_protection _) -> 0
  | None, Some b -> (Driver.Backend.guard_of b).Guard.Iface.info.area_luts

let interconnect_luts = 12_000
let memory_controller_luts = 20_000

(* Per-instance AXI master adapter and DMA engine around the synthesized
   datapath. *)
let dma_adapter_luts = 5_000

let total_area_luts_exact t ~accel_luts_total =
  let cpu = Cpu.Model.area_luts t.cpu_cfg.Cpu.Model.isa in
  match t.config with
  | Config.Cpu_only _ -> cpu
  | Config.Hetero _ ->
      cpu + interconnect_luts + memory_controller_luts + accel_luts_total
      + (t.instances * dma_adapter_luts)
      + guard_area_luts t

let total_area_luts t ~accel_luts_per_instance =
  total_area_luts_exact t ~accel_luts_total:(t.instances * accel_luts_per_instance)
