type phases = { alloc : int; init : int; compute : int; teardown : int }

let wall_of p = p.alloc + p.init + p.compute + p.teardown

type engine = Legacy_replay | Event_driven

type fallback = { task : int; reason : string }

type elide_mode = Elide_off | Elide_on | Elide_differential

type result = {
  config_label : string;
  benchmark : string;
  tasks : int;
  phases : phases;
  wall : int;
  correct : bool;
  denials : Guard.Iface.denial list;
  checks : int;
  elided_checks : int;
  entries_peak : int;
  bus_beats : int;
  area_luts : int;
  power_mw : float;
  recovered : int;
  fallbacks : fallback list;
  faults : Fault.Injector.counts;
}

let buffer_bytes (kernel : Kernel.Ir.t) =
  List.fold_left (fun acc b -> acc + Kernel.Ir.buf_decl_bytes b) 0 kernel.bufs

let init_layout mem (bench : Machsuite.Bench_def.t) layout =
  List.iter
    (fun (binding : Memops.Layout.binding) ->
      Memops.Layout.init_buffer mem binding (fun idx ->
          bench.init binding.decl.Kernel.Ir.buf_name idx))
    (Memops.Layout.bindings layout)

let verify mem (bench : Machsuite.Bench_def.t) layout =
  let golden = Machsuite.Bench_def.golden bench in
  List.for_all
    (fun name ->
      let binding = Memops.Layout.find layout name in
      let actual = Memops.Layout.read_buffer mem binding in
      let expected = List.assoc name golden in
      Array.length actual = Array.length expected
      && Array.for_all2 Kernel.Value.equal actual expected)
    bench.output_bufs

let finish (sys : System.t) ~config_label ~benchmark ~tasks ~phases ~correct
    ~denials ~checks ~entries_peak ~bus_beats ~area_luts ?(elided_checks = 0)
    ?(recovered = 0) ?(fallbacks = []) () =
  let utilization =
    if phases.compute <= 0 then 0.0
    else float_of_int bus_beats /. float_of_int phases.compute
  in
  {
    config_label; benchmark; tasks; phases; wall = wall_of phases; correct;
    denials; checks; elided_checks; entries_peak; bus_beats; area_luts;
    power_mw = Power.power_mw ~luts:area_luts ~utilization;
    recovered; fallbacks;
    faults = Fault.Injector.counts sys.System.faults;
  }

(* Elision eligibility: the backend must adjudicate against exactly the
   per-buffer capabilities the static analysis models, and the analysis —
   run under the task's concrete parameter assignment — must prove every
   access in bounds.  [Elide_differential] keeps the guard in the loop and
   instead asserts the soundness contract: a proven task must never be
   dynamically denied. *)
let statically_proven (bench : Machsuite.Bench_def.t) = Fastpath.proven bench

let elide_eligible backend mode bench =
  match mode with
  | Elide_off -> false
  | Elide_on | Elide_differential ->
      Driver.Backend.supports_elision backend && statically_proven bench

let differential_check mode ~eligible ~(bench : Machsuite.Bench_def.t)
    (denied : Guard.Iface.denial option) =
  match (mode, denied) with
  | Elide_differential, Some d when eligible ->
      failwith
        (Printf.sprintf
           "Run: analysis unsoundness: %s proven in bounds but dynamically \
            denied (%s: %s)"
           bench.Machsuite.Bench_def.name d.Guard.Iface.code
           d.Guard.Iface.detail)
  | _ -> ()

(* Fast-path adjudication decision for one bench under one system: skip the
   per-access guard call only when the guard declares a pure constant-latency
   check path, the backend adjudicates against the per-buffer capabilities the
   static analysis models, and the analysis proves the task's whole footprint
   in bounds — the same contract that gates elision, minus turning the modeled
   hardware off.  In [Differential] mode the guard stays in the loop as an
   oracle ([Fp_check]) and the engine [failwith]s on any divergence. *)
let fastpath_for ~fast ~elide_exec ~backend ~(guard : Guard.Iface.t) bench =
  if (not fast) || elide_exec then Accel.Engine.Fp_off
  else
    match guard.Guard.Iface.const_latency with
    | Some l
      when Driver.Backend.supports_elision backend && Fastpath.proven bench ->
        if Fastpath.current_mode () = Fastpath.Differential then
          Accel.Engine.Fp_check l
        else Accel.Engine.Fp_on l
    | _ -> Accel.Engine.Fp_off

(* The script-derivation mirror of the engine's elide/fast-path/live-guard
   trichotomy. *)
let adjudication_of ~elide_exec ~(guard : Guard.Iface.t) fp =
  if elide_exec then Accel.Script.Adj_elide
  else
    match fp with
    | Accel.Engine.Fp_on l -> Accel.Script.Adj_fastpath l
    | Accel.Engine.Fp_off | Accel.Engine.Fp_check _ ->
        Accel.Script.Adj_live guard

(* ------------------------------------------------------------------ *)
(* Cross-sweep whole-run memoization.  A result is a deterministic      *)
(* function of everything in the key below, provided no observability   *)
(* sink is attached (events would be lost on a hit) and no fault plan   *)
(* is active (fault draws consume a per-system RNG whose effect is not  *)
(* part of the key, and faulted runs must never be elided anyway).      *)
(* The entry points enforce both gates before consulting the table.     *)
(* ------------------------------------------------------------------ *)

type run_memo_key = {
  mk_mixed : bool;
      (* [run] and [run_mixed] default [instances] differently and label
         results differently, so a singleton mixed run is not a [run] *)
  mk_config : Config.t;
  mk_benches : Fastpath.bench_key list;  (* singleton for [run] *)
  mk_tasks : int;
  mk_instances : int option;
  mk_cc_entries : int;
  mk_bus : Bus.Params.t;
  mk_elide : elide_mode;
  mk_engine : engine;
  mk_topology : Bus.Topology.kind;
  mk_checkers : Capchecker.Shim.checking;
}

let run_memo : (run_memo_key, result) Hashtbl.t = Hashtbl.create 64
let run_memo_mutex = Mutex.create ()

let () =
  Fastpath.register_clear (fun () ->
      Mutex.protect run_memo_mutex (fun () -> Hashtbl.reset run_memo))

let memo_run key compute =
  match
    Mutex.protect run_memo_mutex (fun () -> Hashtbl.find_opt run_memo key)
  with
  | Some r ->
      Obs.Counters.incr Obs.Counters.runs_memoized;
      r
  | None -> (
      (* Second level: the on-disk cross-process cache (opt-in, see
         {!Runcache}).  Only memo-eligible runs reach [memo_run], so every
         disk entry satisfies the same no-sink / no-faults contract as the
         in-memory table. *)
      match (Runcache.load key : result option) with
      | Some r ->
          Mutex.protect run_memo_mutex (fun () ->
              if not (Hashtbl.mem run_memo key) then Hashtbl.add run_memo key r);
          r
      | None ->
          let r = compute () in
          Mutex.protect run_memo_mutex (fun () ->
              if not (Hashtbl.mem run_memo key) then Hashtbl.add run_memo key r);
          Runcache.store key r;
          r)

(* Observation-only phase markers: stamped on the shared sink at the phase's
   start cycle.  The sink is never consulted by the simulation, so emitting
   (or not emitting) these cannot change any cycle count. *)
let emit_phase obs ~at ~task phase dur =
  if Obs.Trace.enabled obs then
    Obs.Trace.emit_at obs ~cycle:at (Obs.Event.Task_phase { task; phase; dur })

(* Event-driven compute phase of a fault-free heterogeneous run: one live
   engine process per task, all contending for the bus through a round-robin
   arbiter on a shared discrete-event timeline.  The scheduler's clock is
   mirrored into the observability sink so guard and bus events carry their
   true cycles.  Unlike the legacy path — which interprets a kernel once and
   replicates its recorded stream — every task executes functionally, so
   every layout can be verified and a stateful checker sees the real
   interleaving of checks across instances. *)
type ev_task = {
  et_bench : Machsuite.Bench_def.t;
  et_alloc : Driver.allocated;
  et_elide : bool;
  et_fastpath : Accel.Engine.fastpath;
  et_recorder : Accel.Script.Recorder.t option;
      (** record this task's access script alongside live interpretation *)
  et_script : (Accel.Script.t * Accel.Script.adjudication) option;
      (** drive the event core from a cached script instead of interpreting *)
}

let interpreted_ev_task ?(elide = false) ?(fastpath = Accel.Engine.Fp_off)
    ?recorder ?script bench alloc =
  { et_bench = bench; et_alloc = alloc; et_elide = elide;
    et_fastpath = fastpath; et_recorder = recorder; et_script = script }

let run_event_compute sys ~ff ~start tasks_l =
  let obs = sys.System.obs in
  let backend = Option.get sys.System.backend in
  let sched =
    Ccsim.Sched.create ~on_advance:(fun cycle -> Obs.Trace.set_now obs cycle) ()
  in
  let ic =
    Bus.Topology.create ~obs ~faults:sys.System.faults ~sched
      ~kind:sys.System.topology sys.System.bus
  in
  (* With a fleet present, central-port contention is modelled against the
     live scheduler clock for the duration of the compute phase. *)
  (match sys.System.fleet with
  | Some f -> Capchecker.Shim.connect_clock f (fun () -> Ccsim.Sched.now sched)
  | None -> ());
  let n = List.length tasks_l in
  let results = Array.make (max n 1) None in
  List.iteri
    (fun idx et ->
      let bench = et.et_bench in
      let handle = et.et_alloc.Driver.handle in
      match et.et_script with
      | Some (script, adj) ->
          (* Script-driven stream: mirrors the interpreted engine's scheduler
             calls exactly (the differential suite pins parity), skipping only
             the functional kernel work. *)
          let on_done (d : Accel.Script.ev_derived) =
            Obs.Counters.incr Obs.Counters.traces_memoized;
            if d.Accel.Script.e_fastpathed > 0 then
              Obs.Counters.add Obs.Counters.accesses_fast_pathed
                d.Accel.Script.e_fastpathed;
            results.(idx) <-
              Some
                {
                  Accel.Engine.ev_denied = d.Accel.Script.e_denied;
                  ev_checks = d.e_checks;
                  ev_elided = d.e_elided;
                  ev_reads = d.e_reads;
                  ev_writes = d.e_writes;
                  ev_ops = d.e_ops;
                  ev_finish = d.e_finish;
                  ev_failed = d.e_failed;
                }
          in
          let max_outstanding =
            bench.Machsuite.Bench_def.directives.Hls.Directives.max_outstanding
          in
          (* Steady-state fast-forward leg: a coroutine-free driver the shared
             arbiter can leap over.  Only sound when the burst sequence is
             clock-independent (constant-latency adjudication), targets are
             static (shared bus) and nothing aperiodic watches the run (no
             sink, inert injector); anything else falls back to the exact
             fiber driver. *)
          let flat =
            if
              ff
              && sys.System.topology = Bus.Topology.Shared
              && (not (Obs.Trace.enabled obs))
              && not (Fault.Injector.active sys.System.faults)
            then
              Accel.Script.flat_plan script ~bus:sys.System.bus
                ~mem_size:(Tagmem.Mem.size sys.System.mem)
                ~layout:handle.Driver.layout ~obj_ids:handle.Driver.obj_ids
                ~addressing:(Driver.Backend.addressing backend)
                ~source:handle.Driver.task_id adj
            else None
          in
          (match flat with
          | Some plan ->
              Accel.Script.drive_event_flat plan ~sched ~ic ~start
                ~max_outstanding ~source:handle.Driver.task_id ~on_done
          | None ->
              Accel.Script.drive_event script ~sched ~ic ~start
                ~bus:sys.System.bus
                ~mem_size:(Tagmem.Mem.size sys.System.mem) ~max_outstanding
                ~layout:handle.Driver.layout ~obj_ids:handle.Driver.obj_ids
                ~addressing:(Driver.Backend.addressing backend)
                ~source:handle.Driver.task_id adj ~on_done)
      | None ->
          Accel.Engine.run_event ~obs ~elide:et.et_elide ~fastpath:et.et_fastpath
            ?recorder:et.et_recorder ~sched ~ic ~start ~mem:sys.System.mem
            ~guard:(System.guard sys) ~bus:sys.System.bus
            ~directives:bench.Machsuite.Bench_def.directives
            ~addressing:(Driver.Backend.addressing backend)
            ~naive_tag_writes:(System.naive_tag_writes sys)
            {
              Accel.Engine.instance = handle.Driver.task_id;
              kernel = bench.kernel;
              layout = handle.Driver.layout;
              params = bench.params;
              obj_ids = handle.Driver.obj_ids;
            }
            ~on_done:(fun o -> results.(idx) <- Some o))
    tasks_l;
  Ccsim.Sched.run sched;
  (match sys.System.fleet with
  | Some f -> Capchecker.Shim.disconnect_clock f
  | None -> ());
  let outcomes =
    List.mapi
      (fun idx et ->
        match results.(idx) with
        | Some o -> (et, o)
        | None ->
            failwith
              (Printf.sprintf "Run: event core deadlock: task %d never retired"
                 et.et_alloc.Driver.handle.Driver.task_id))
      tasks_l
  in
  let makespan =
    List.fold_left
      (fun acc (_, o) -> max acc o.Accel.Engine.ev_finish)
      start outcomes
  in
  (outcomes, makespan, Bus.Topology.total_beats ic)

(* CPU-only execution: tasks run back-to-back on the one core. *)
let run_cpu_only sys ~fast isa (bench : Machsuite.Bench_def.t) ~tasks =
  let kernel = bench.Machsuite.Bench_def.kernel in
  let cfg = Cpu.Model.config isa in
  let n_bufs = List.length kernel.bufs in
  let obs = sys.System.obs in
  let fast = fast && not (Obs.Trace.enabled obs) in
  let t0 = Obs.Trace.now obs in
  let bytes = buffer_bytes kernel in
  let alloc_cycles = tasks * n_bufs * Driver.malloc_cycles in
  let init_cycles = tasks * Cpu.Model.init_store_cycles cfg ~bytes in
  let bkey = Fastpath.bench_key bench in
  emit_phase obs ~at:t0 ~task:0 "alloc" alloc_cycles;
  emit_phase obs ~at:(t0 + alloc_cycles) ~task:0 "init" init_cycles;
  Obs.Trace.set_now obs (t0 + alloc_cycles + init_cycles);
  let cycles, correct =
    match if fast then Fastpath.find_cpu ~isa bkey else None with
    | Some cached -> cached
    | None ->
        let bindings =
          List.map
            (fun (decl : Kernel.Ir.buf_decl) ->
              let bytes = Kernel.Ir.buf_decl_bytes decl in
              let align, padded = Cheri.Bounds_enc.malloc_shape ~length:bytes in
              { Memops.Layout.decl;
                base =
                  Tagmem.Alloc.malloc sys.System.heap ~align:(max align 16) padded })
            kernel.bufs
        in
        let layout = Memops.Layout.make bindings in
        init_layout sys.System.mem bench layout;
        let res =
          Cpu.Model.run ~obs cfg sys.System.mem kernel layout
            ~params:bench.params ()
        in
        (match res.Cpu.Model.trap with
        | None -> ()
        | Some reason -> failwith ("benign CPU run trapped: " ^ reason));
        let correct = verify sys.System.mem bench layout in
        List.iter
          (fun b -> Tagmem.Alloc.free sys.System.heap b.Memops.Layout.base)
          bindings;
        if fast then Fastpath.store_cpu ~isa bkey (res.Cpu.Model.cycles, correct);
        (res.Cpu.Model.cycles, correct)
  in
  let per_task_compute = cycles + Cpu.Model.cap_setup_cycles cfg ~n_bufs in
  let phases =
    {
      alloc = alloc_cycles;
      init = init_cycles;
      compute = tasks * per_task_compute;
      teardown = tasks * n_bufs * Driver.free_cycles;
    }
  in
  emit_phase obs ~at:(t0 + alloc_cycles + init_cycles) ~task:0 "compute"
    phases.compute;
  Obs.Trace.set_now obs (t0 + alloc_cycles + init_cycles + phases.compute);
  emit_phase obs ~at:(Obs.Trace.now obs) ~task:0 "teardown" phases.teardown;
  Obs.Trace.set_now obs (t0 + wall_of phases);
  finish sys ~config_label:(Config.label sys.System.config) ~benchmark:kernel.name
    ~tasks ~phases ~correct ~denials:[] ~checks:0 ~entries_peak:0 ~bus_beats:0
    ~area_luts:(System.total_area_luts sys ~accel_luts_per_instance:0) ()

(* Heterogeneous execution.  [Legacy_replay] interprets the kernel once as
   the accelerator, replicates its DMA stream per instance, and replays the
   contention; [Event_driven] runs every instance live on the shared
   event timeline (see {!run_event_compute}). *)
let run_hetero sys ~fast ~ff (bench : Machsuite.Bench_def.t) ~tasks ~elide
    ~engine =
  let kernel = bench.Machsuite.Bench_def.kernel in
  let driver = Option.get sys.System.driver in
  let backend = Option.get sys.System.backend in
  let eligible = elide_eligible backend elide bench in
  let elide_exec = (match elide with Elide_on -> eligible | _ -> false) in
  let directives = bench.directives in
  (* One synthesized design per (kernel, directives): a sweep re-running this
     benchmark at other task counts or configs hits the memo cache instead of
     re-elaborating the datapath schedule. *)
  let design = Hls.Directives.synthesize ~kernel directives in
  let cfg = sys.System.cpu_cfg in
  let rec allocate acc n =
    if n = 0 then List.rev acc
    else
      match Driver.allocate driver kernel with
      | Ok a -> allocate (a :: acc) (n - 1)
      | Error msg -> failwith ("driver allocation failed: " ^ msg)
  in
  let obs = sys.System.obs in
  (* Scripts and fast paths are gated off while a sink is attached: the
     derivations skip the interpreter whose side effects (guard events on the
     interpreter's clock, functional stores) the sink would have seen. *)
  let fast = fast && not (Obs.Trace.enabled obs) in
  let guard = System.guard sys in
  let fp = fastpath_for ~fast ~elide_exec ~backend ~guard bench in
  let bkey = Fastpath.bench_key bench in
  let script_hit = if fast then Fastpath.find_script bkey else None in
  let t0 = Obs.Trace.now obs in
  let allocated = allocate [] tasks in
  let alloc_cycles =
    List.fold_left (fun acc (a : Driver.allocated) -> acc + a.cycles) 0 allocated
  in
  (* Functional buffer initialization only feeds the interpreter and the
     verifier; a script hit replaces both (it carries the recording run's
     verdict), so the stores can be skipped wholesale. *)
  if script_hit = None then
    List.iter
      (fun (a : Driver.allocated) ->
        init_layout sys.System.mem bench a.handle.Driver.layout)
      allocated;
  let bytes = buffer_bytes kernel in
  let init_cycles = tasks * Cpu.Model.init_store_cycles cfg ~bytes in
  let first = (List.hd allocated).handle in
  emit_phase obs ~at:t0 ~task:first.Driver.task_id "alloc" alloc_cycles;
  emit_phase obs ~at:(t0 + alloc_cycles) ~task:first.Driver.task_id "init"
    init_cycles;
  Obs.Trace.set_now obs (t0 + alloc_cycles + init_cycles);
  (* Compute on the shared timeline starting at the compute phase, so bus
     events land at their true cycles even when the sink is shared across
     runs; the phase length is the makespan relative to that start. *)
  let replay_start = t0 + alloc_cycles + init_cycles in
  let per_task, compute_cycles, bus_beats, checks, elided_checks, entries_peak,
      correct =
    match engine with
    | Legacy_replay ->
        (* (trace, denial, checks, elided, single-task verdict) of the lead
           task — derived from the cached script when available, interpreted
           (and recorded) otherwise. *)
        let trace, denied, t_checks, t_elided, t_correct =
          match script_hit with
          | Some (script, s_correct) ->
              let d =
                Accel.Script.to_trace script ~bus:sys.System.bus
                  ~mem_size:(Tagmem.Mem.size sys.System.mem)
                  ~layout:first.Driver.layout ~obj_ids:first.Driver.obj_ids
                  ~addressing:(Driver.Backend.addressing backend)
                  ~source:first.Driver.task_id
                  (adjudication_of ~elide_exec ~guard fp)
              in
              Obs.Counters.incr Obs.Counters.traces_memoized;
              if d.Accel.Script.d_fastpathed > 0 then
                Obs.Counters.add Obs.Counters.accesses_fast_pathed
                  d.Accel.Script.d_fastpathed;
              ( d.Accel.Script.d_trace, d.Accel.Script.d_denied,
                d.Accel.Script.d_checks, d.Accel.Script.d_elided,
                d.Accel.Script.d_denied = None && s_correct )
          | None ->
              let recorder =
                if fast then Some (Accel.Script.Recorder.create ()) else None
              in
              let outcome =
                Accel.Engine.run ~obs ~elide:elide_exec ~fastpath:fp ?recorder
                  ~mem:sys.System.mem ~guard ~bus:sys.System.bus ~directives
                  ~addressing:(Driver.Backend.addressing backend)
                  ~naive_tag_writes:(System.naive_tag_writes sys)
                  {
                    Accel.Engine.instance = first.Driver.task_id;
                    kernel;
                    layout = first.Driver.layout;
                    params = bench.params;
                    obj_ids = first.Driver.obj_ids;
                  }
              in
              let correct =
                outcome.Accel.Engine.denied = None
                && verify sys.System.mem bench first.Driver.layout
              in
              (match recorder with
              | Some r -> (
                  match
                    Accel.Script.Recorder.finalize r
                      ~total_ops:outcome.Accel.Engine.ops
                      ~complete:(outcome.Accel.Engine.denied = None)
                  with
                  | Some s -> Fastpath.store_script bkey s ~correct
                  | None -> ())
              | None -> ());
              ( outcome.Accel.Engine.trace, outcome.Accel.Engine.denied,
                outcome.Accel.Engine.checks, outcome.Accel.Engine.elided,
                correct )
        in
        differential_check elide ~eligible ~bench denied;
        let entries_peak = guard.Guard.Iface.entries_in_use () in
        let replayed =
          if fast then
            (* Compile once; the replicated streams share the segments. *)
            let ctrace =
              Accel.Trace.Compiled.compile ~bus:sys.System.bus
                ~max_outstanding:(max 1 design.Hls.Directives.d_max_outstanding)
                trace
            in
            Accel.Replay.run_compiled sys.System.fabric ~start:replay_start
              (List.map
                 (fun (a : Driver.allocated) ->
                   { Accel.Replay.cinstance = a.handle.Driver.task_id;
                     ctrace })
                 allocated)
          else
            Accel.Replay.run sys.System.fabric ~start:replay_start
              (List.map
                 (fun (a : Driver.allocated) ->
                   { Accel.Replay.instance = a.handle.Driver.task_id;
                     trace;
                     max_outstanding = design.Hls.Directives.d_max_outstanding })
                 allocated)
        in
        let per_task =
          List.map
            (fun (a : Driver.allocated) ->
              let denied =
                if a.handle.Driver.task_id = first.Driver.task_id then denied
                else None
              in
              (a, denied))
            allocated
        in
        ( per_task,
          replayed.Accel.Replay.makespan - replay_start,
          replayed.Accel.Replay.bus_beats,
          t_checks * tasks,
          t_elided * tasks,
          entries_peak, t_correct )
    | Event_driven ->
        let adj = adjudication_of ~elide_exec ~guard fp in
        let ev_tasks =
          List.mapi
            (fun idx a ->
              match script_hit with
              | Some (script, _) ->
                  interpreted_ev_task ~elide:elide_exec ~script:(script, adj)
                    bench a
              | None ->
                  let recorder =
                    if fast && idx = 0 then
                      Some (Accel.Script.Recorder.create ())
                    else None
                  in
                  interpreted_ev_task ~elide:elide_exec ~fastpath:fp ?recorder
                    bench a)
            allocated
        in
        let outcomes, makespan, bus_beats =
          run_event_compute sys ~ff ~start:replay_start ev_tasks
        in
        List.iter
          (fun (_, o) ->
            differential_check elide ~eligible ~bench o.Accel.Engine.ev_denied)
          outcomes;
        let entries_peak = guard.Guard.Iface.entries_in_use () in
        let correct =
          match script_hit with
          | Some (_, s_correct) ->
              List.for_all
                (fun (_, o) -> o.Accel.Engine.ev_denied = None)
                outcomes
              && s_correct
          | None ->
              List.for_all
                (fun (et, o) ->
                  o.Accel.Engine.ev_denied = None
                  && verify sys.System.mem bench
                       et.et_alloc.Driver.handle.Driver.layout)
                outcomes
        in
        List.iter
          (fun (et, (o : Accel.Engine.ev_outcome)) ->
            match et.et_recorder with
            | None -> ()
            | Some r -> (
                match
                  Accel.Script.Recorder.finalize r ~total_ops:o.Accel.Engine.ev_ops
                    ~complete:(o.Accel.Engine.ev_denied = None
                               && not o.Accel.Engine.ev_failed)
                with
                | Some s ->
                    let c =
                      o.Accel.Engine.ev_denied = None
                      && verify sys.System.mem bench
                           et.et_alloc.Driver.handle.Driver.layout
                    in
                    Fastpath.store_script bkey s ~correct:c
                | None -> ()))
          outcomes;
        let per_task =
          List.map (fun (et, o) -> (et.et_alloc, o.Accel.Engine.ev_denied)) outcomes
        in
        ( per_task,
          makespan - replay_start,
          bus_beats,
          List.fold_left (fun acc (_, o) -> acc + o.Accel.Engine.ev_checks) 0 outcomes,
          List.fold_left (fun acc (_, o) -> acc + o.Accel.Engine.ev_elided) 0 outcomes,
          entries_peak, correct )
  in
  emit_phase obs ~at:replay_start ~task:first.Driver.task_id "compute"
    compute_cycles;
  Obs.Trace.set_now obs (replay_start + compute_cycles);
  let teardown_start = Obs.Trace.now obs in
  let teardown_cycles, denial_lists =
    List.fold_left
      (fun (cycles, acc) ((a : Driver.allocated), denied) ->
        let report = Driver.deallocate driver a.handle ~denied in
        (cycles + report.Driver.cycles, report.Driver.denials :: acc))
      (0, []) per_task
  in
  let denials = List.concat (List.rev denial_lists) in
  emit_phase obs ~at:teardown_start ~task:first.Driver.task_id "teardown"
    teardown_cycles;
  Obs.Trace.set_now obs (teardown_start + teardown_cycles);
  let phases =
    { alloc = alloc_cycles; init = init_cycles;
      compute = compute_cycles; teardown = teardown_cycles }
  in
  finish sys ~config_label:(Config.label sys.System.config) ~benchmark:kernel.name
    ~tasks ~phases ~correct ~denials ~checks ~elided_checks
    ~entries_peak ~bus_beats
    ~area_luts:
      (System.total_area_luts sys
         ~accel_luts_per_instance:design.Hls.Directives.d_area_luts)
    ()

(* Fault-aware execution. *)

type accel_task = {
  at_bench : Machsuite.Bench_def.t;
  at_alloc : Driver.allocated;
  at_outcome : Accel.Engine.outcome;
  at_retried : bool;
}

type placed_task =
  | P_accel of accel_task
  | P_degraded of Machsuite.Bench_def.t * string

(* CPU fallback for one task of a degraded heterogeneous run: fresh buffers,
   full recompute, verify, free.  Returns (cycles, correct). *)
let cpu_fallback sys (bench : Machsuite.Bench_def.t) =
  let kernel = bench.Machsuite.Bench_def.kernel in
  let cfg = sys.System.cpu_cfg in
  let n_bufs = List.length kernel.bufs in
  let bindings =
    List.map
      (fun (decl : Kernel.Ir.buf_decl) ->
        let bytes = Kernel.Ir.buf_decl_bytes decl in
        let align, padded = Cheri.Bounds_enc.malloc_shape ~length:bytes in
        { Memops.Layout.decl;
          base = Tagmem.Alloc.malloc sys.System.heap ~align:(max align 16) padded })
      kernel.bufs
  in
  let layout = Memops.Layout.make bindings in
  init_layout sys.System.mem bench layout;
  let res =
    Cpu.Model.run ~obs:sys.System.obs cfg sys.System.mem kernel layout
      ~params:bench.params ()
  in
  (match res.Cpu.Model.trap with
  | None -> ()
  | Some reason -> failwith ("CPU fallback trapped: " ^ reason));
  let correct = verify sys.System.mem bench layout in
  List.iter (fun b -> Tagmem.Alloc.free sys.System.heap b.Memops.Layout.base) bindings;
  let cycles =
    (n_bufs * Driver.malloc_cycles)
    + Cpu.Model.init_store_cycles cfg ~bytes:(buffer_bytes kernel)
    + res.Cpu.Model.cycles
    + Cpu.Model.cap_setup_cycles cfg ~n_bufs
    + (n_bufs * Driver.free_cycles)
  in
  (cycles, correct)

(* Heterogeneous execution under an active fault plan.  Tasks are placed and
   interpreted one at a time so each can independently retry (transient
   denials tear down and re-allocate with exponential backoff) or degrade to
   CPU execution; surviving accelerator streams still share the interconnect
   in one replay.  The invariant this path maintains: every task either
   verifies correct on the accelerator or is recomputed (and verified) on the
   CPU with an explicit fallback record — never a silently wrong result. *)
let run_hetero_faulted sys ~benchmark ~area_luts ~policy ~engine
    (benches : Machsuite.Bench_def.t list) =
  let driver = Option.get sys.System.driver in
  let backend = Option.get sys.System.backend in
  let inj = sys.System.faults in
  let obs = sys.System.obs in
  let guard = System.guard sys in
  let t0 = Obs.Trace.now obs in
  let alloc_cycles = ref 0 in
  let init_cycles = ref 0 in
  let teardown_cycles = ref 0 in
  let checks = ref 0 in
  let entries_peak = ref 0 in
  let denial_lists = ref [] in
  let attempt_task (bench : Machsuite.Bench_def.t) =
    let kernel = bench.Machsuite.Bench_def.kernel in
    let rec go attempt ~retried =
      match Driver.allocate_with_retry ~policy driver kernel with
      | Error msg -> P_degraded (bench, "allocation failed: " ^ msg)
      | Ok (a, alloc_retries) ->
          let retried = retried || alloc_retries > 0 in
          alloc_cycles := !alloc_cycles + a.Driver.cycles;
          init_layout sys.System.mem bench a.Driver.handle.Driver.layout;
          init_cycles :=
            !init_cycles
            + Cpu.Model.init_store_cycles sys.System.cpu_cfg
                ~bytes:(buffer_bytes kernel);
          let outcome =
            Accel.Engine.run ~obs ~mem:sys.System.mem ~guard ~bus:sys.System.bus
              ~directives:bench.directives
              ~addressing:(Driver.Backend.addressing backend)
              ~naive_tag_writes:(System.naive_tag_writes sys)
              {
                Accel.Engine.instance = a.Driver.handle.Driver.task_id;
                kernel;
                layout = a.Driver.handle.Driver.layout;
                params = bench.params;
                obj_ids = a.Driver.handle.Driver.obj_ids;
              }
          in
          checks := !checks + outcome.Accel.Engine.checks;
          entries_peak := max !entries_peak (guard.Guard.Iface.entries_in_use ());
          (match outcome.Accel.Engine.denied with
          | None -> P_accel { at_bench = bench; at_alloc = a; at_outcome = outcome; at_retried = retried }
          | Some d ->
              (* Denied mid-run: tear the task down (scrubbing its buffers),
                 then either retry from scratch after backoff or give up. *)
              let report = Driver.deallocate driver a.Driver.handle ~denied:(Some d) in
              teardown_cycles := !teardown_cycles + report.Driver.cycles;
              denial_lists := report.Driver.denials :: !denial_lists;
              if attempt < policy.Driver.max_attempts then begin
                let backoff = Driver.backoff_cycles policy ~attempt in
                Fault.Injector.note_retry inj ~backoff;
                Obs.Trace.emit obs
                  (Obs.Event.Task_retry
                     { task = a.Driver.handle.Driver.task_id; attempt; backoff });
                alloc_cycles := !alloc_cycles + backoff + Driver.retry_probe_cycles;
                go (attempt + 1) ~retried:true
              end
              else
                P_degraded
                  ( bench,
                    Printf.sprintf "denied after %d attempts: %s" attempt
                      d.Guard.Iface.detail ))
    in
    go 1 ~retried:false
  in
  let placed = List.map attempt_task benches in
  let accel =
    List.filter_map (function P_accel at -> Some at | P_degraded _ -> None) placed
  in
  let streams =
    List.map
      (fun at ->
        let design =
          Hls.Directives.synthesize
            ~kernel:at.at_bench.Machsuite.Bench_def.kernel
            at.at_bench.directives
        in
        { Accel.Replay.instance = at.at_alloc.Driver.handle.Driver.task_id;
          trace = at.at_outcome.Accel.Engine.trace;
          max_outstanding = design.Hls.Directives.d_max_outstanding })
      accel
  in
  let replay_start = Obs.Trace.now obs in
  (* Placement and retry above stay sequential in both modes — driver
     semantics and the phase accounting don't depend on bus interleaving —
     so only the contention replay switches cores.  Note the fault draw
     order differs between cores (grants interleave differently), so runs
     are deterministic per engine, not across engines. *)
  let replayed =
    match engine with
    | Legacy_replay ->
        Accel.Replay.run ~error_retry_limit:policy.Driver.max_attempts
          sys.System.fabric ~start:replay_start streams
    | Event_driven ->
        let sched = Ccsim.Sched.create () in
        let ic =
          Bus.Topology.create ~obs ~faults:inj ~sched
            ~kind:sys.System.topology sys.System.bus
        in
        Accel.Replay.run_event ~error_retry_limit:policy.Driver.max_attempts
          ~sched ~ic ~start:replay_start streams
  in
  let accel_compute = replayed.Accel.Replay.makespan - replay_start in
  let fallback_cycles = ref 0 in
  let recovered = ref 0 in
  let fallbacks = ref [] in
  let all_correct = ref true in
  let do_fallback ~task bench reason =
    Fault.Injector.note_fallback inj;
    Obs.Trace.emit obs (Obs.Event.Task_fallback { task; reason });
    let cycles, ok = cpu_fallback sys bench in
    fallback_cycles := !fallback_cycles + cycles;
    if not ok then all_correct := false;
    fallbacks := { task; reason } :: !fallbacks
  in
  List.iteri
    (fun idx p ->
      match p with
      | P_degraded (bench, reason) -> do_fallback ~task:idx bench reason
      | P_accel at ->
          let id = at.at_alloc.Driver.handle.Driver.task_id in
          if List.mem id replayed.Accel.Replay.failed then
            do_fallback ~task:idx at.at_bench
              "bus error responses exhausted the retry budget"
          else begin
            if at.at_retried then incr recovered;
            if
              not (verify sys.System.mem at.at_bench at.at_alloc.Driver.handle.Driver.layout)
            then all_correct := false
          end)
    placed;
  List.iter
    (fun at ->
      let report = Driver.deallocate driver at.at_alloc.Driver.handle ~denied:None in
      teardown_cycles := !teardown_cycles + report.Driver.cycles;
      denial_lists := report.Driver.denials :: !denial_lists)
    accel;
  let phases =
    { alloc = !alloc_cycles; init = !init_cycles;
      compute = accel_compute + !fallback_cycles; teardown = !teardown_cycles }
  in
  emit_phase obs ~at:t0 ~task:(-1) "alloc" phases.alloc;
  emit_phase obs ~at:(t0 + phases.alloc) ~task:(-1) "init" phases.init;
  emit_phase obs ~at:(t0 + phases.alloc + phases.init) ~task:(-1) "compute"
    phases.compute;
  emit_phase obs
    ~at:(t0 + phases.alloc + phases.init + phases.compute)
    ~task:(-1) "teardown" phases.teardown;
  Obs.Trace.set_now obs (t0 + wall_of phases);
  finish sys ~config_label:(Config.label sys.System.config) ~benchmark
    ~tasks:(List.length benches) ~phases ~correct:!all_correct
    ~denials:(List.concat (List.rev !denial_lists))
    ~checks:!checks ~entries_peak:!entries_peak
    ~bus_beats:replayed.Accel.Replay.bus_beats ~area_luts ~recovered:!recovered
    ~fallbacks:(List.rev !fallbacks) ()

let require_event_engine ~engine ~topology ~what =
  match (engine, topology) with
  | Legacy_replay, kind when kind <> Bus.Topology.Shared ->
      invalid_arg
        (Printf.sprintf
           "%s: topology %s needs the event engine (the legacy replay fabric \
            serializes globally and cannot model concurrent grants)"
           what
           (Bus.Topology.kind_to_string kind))
  | _ -> ()

(* Event fast-forward leg selection, orthogonal to the fast-path mode:
   [execute ~fast ~ff] performs one complete run against a fresh system, the
   [ff] flag enabling the flat event drivers and steady-state leaping in
   {!run_event_compute}.  [Diff] runs both complete legs and compares the
   full result records — the fast-forward is exact by construction, so any
   divergence [failwith]s.  Runs with a sink attached or a live fault plan
   never take the fast-forward leg (both legs would be identical, and the
   off leg would double every emission), so Diff degrades to the off leg
   there. *)
let eventff_execute ~memo_eligible ~what execute ~fast =
  match Ccsim.Eventff.current_mode () with
  | Ccsim.Eventff.On -> execute ~fast ~ff:true
  | Ccsim.Eventff.Off -> execute ~fast ~ff:false
  | Ccsim.Eventff.Diff ->
      if not memo_eligible then execute ~fast ~ff:false
      else begin
        let on_r = execute ~fast ~ff:true in
        let off_r = execute ~fast ~ff:false in
        if on_r <> off_r then
          failwith
            (Printf.sprintf
               "%s: event fast-forward divergence on %s under %s: leaped and \
                single-stepped results differ"
               what on_r.benchmark on_r.config_label);
        off_r
      end

(* Mode dispatch shared by [run] and [run_mixed]: [execute ~fast ~ff]
   performs one complete run against a fresh system.  [Fast] wraps it in the
   whole-run memo when eligible; [Differential] computes both legs (the fast
   leg still warming and exercising every cache) and compares the complete
   result records — any divergence is a bug in the fast-path layers, never a
   tuning matter, so it [failwith]s.  The event fast-forward legs nest
   inside each fast-path leg, so the memo caches an already-checked
   result. *)
let dispatch ~memo_eligible ~key ~what execute =
  let execute = eventff_execute ~memo_eligible ~what execute in
  match Fastpath.current_mode () with
  | Fastpath.Interpretive -> execute ~fast:false
  | Fastpath.Fast ->
      if memo_eligible then memo_run key (fun () -> execute ~fast:true)
      else execute ~fast:true
  | Fastpath.Differential ->
      if memo_eligible then begin
        let fast_r = memo_run key (fun () -> execute ~fast:true) in
        let slow_r = execute ~fast:false in
        if fast_r <> slow_r then
          failwith
            (Printf.sprintf
               "%s: fast-path divergence on %s under %s: derived and \
                interpreted results differ"
               what fast_r.benchmark fast_r.config_label);
        slow_r
      end
      else execute ~fast:false

let run ?(tasks = 8) ?instances ?(cc_entries = 256) ?(bus = Bus.Params.default)
    ?obs ?(faults = Fault.Plan.none) ?(retry = Driver.default_retry_policy)
    ?(elide = Elide_off) ?(engine = Legacy_replay)
    ?(topology = Bus.Topology.Shared) ?(checkers = Capchecker.Shim.Central)
    config bench =
  if tasks <= 0 then invalid_arg "Run.run: needs at least one task";
  require_event_engine ~engine ~topology ~what:"Run.run";
  let instances' = match instances with Some n -> max n tasks | None -> max 8 tasks in
  let execute ~fast ~ff =
    let sys =
      System.create ~instances:instances' ~cc_entries ~bus ?obs ~faults
        ~topology ~checkers config
    in
    match config with
    | Config.Cpu_only isa -> run_cpu_only sys ~fast isa bench ~tasks
    | Config.Hetero _ ->
        if Fault.Plan.is_none faults then
          run_hetero sys ~fast ~ff bench ~tasks ~elide ~engine
        else
          let design =
            Hls.Directives.synthesize ~kernel:bench.Machsuite.Bench_def.kernel
              bench.Machsuite.Bench_def.directives
          in
          (* Faulted runs never consult a cache or skip an adjudication: every
             retry, degrade and fault draw happens against the live system. *)
          run_hetero_faulted sys
            ~benchmark:bench.Machsuite.Bench_def.kernel.Kernel.Ir.name
            ~area_luts:
              (System.total_area_luts sys
                 ~accel_luts_per_instance:design.Hls.Directives.d_area_luts)
            ~policy:retry ~engine
            (List.init tasks (fun _ -> bench))
  in
  let memo_eligible = obs = None && Fault.Plan.is_none faults in
  let key =
    { mk_mixed = false; mk_config = config;
      mk_benches = [ Fastpath.bench_key bench ];
      mk_tasks = tasks; mk_instances = instances; mk_cc_entries = cc_entries;
      mk_bus = bus; mk_elide = elide; mk_engine = engine;
      mk_topology = topology; mk_checkers = checkers }
  in
  dispatch ~memo_eligible ~key ~what:"Run.run" execute

(* Per-kernel cost profile for the long-horizon service loop (lib/serve).
   One single-task, fault-free run measures the four phases a request of this
   kernel costs on a dedicated instance, plus what the same work costs on the
   CPU when admission spills it.  Serving 10^4+ requests re-executes none of
   the kernel's functional work: the loop replays these measured cycle costs
   on its own timeline while performing real driver/table traffic. *)
type service_profile = {
  sv_bench : string;
  sv_alloc : int;
  sv_init : int;
  sv_compute : int;
  sv_teardown : int;
  sv_checks : int;
  sv_cpu_wall : int;
}

let service_profile ?(engine = Event_driven) ?(topology = Bus.Topology.Shared)
    ?(checkers = Capchecker.Shim.Central) config bench =
  (match config with
  | Config.Hetero _ -> ()
  | Config.Cpu_only _ ->
      invalid_arg "Run.service_profile: needs a heterogeneous config");
  let r = run ~tasks:1 ~engine ~topology ~checkers config bench in
  if not r.correct then
    failwith
      (Printf.sprintf
         "Run.service_profile: %s failed verification under %s — a service \
          profile must come from a correct run"
         bench.Machsuite.Bench_def.name r.config_label);
  let cpu = run ~tasks:1 Config.cpu bench in
  {
    sv_bench = bench.Machsuite.Bench_def.name;
    sv_alloc = r.phases.alloc;
    sv_init = r.phases.init;
    sv_compute = r.phases.compute;
    sv_teardown = r.phases.teardown;
    sv_checks = r.checks;
    sv_cpu_wall = cpu.wall;
  }

(* Per-task plan of a fault-free mixed run: the cached script when one
   exists, otherwise live interpretation — with a recorder attached to the
   first task of each not-yet-cached bench (mixed compositions repeat
   benches, so claims are deduplicated within the run). *)
type mixed_plan = {
  mp_bench : Machsuite.Bench_def.t;
  mp_alloc : Driver.allocated;
  mp_key : Fastpath.bench_key;
  mp_eligible : bool;
  mp_elide_exec : bool;
  mp_fp : Accel.Engine.fastpath;
  mp_script : (Accel.Script.t * bool) option;
  mp_recorder : Accel.Script.Recorder.t option;
}

let run_mixed ?instances ?obs ?(faults = Fault.Plan.none)
    ?(retry = Driver.default_retry_policy) ?(elide = Elide_off)
    ?(engine = Legacy_replay) ?(topology = Bus.Topology.Shared)
    ?(checkers = Capchecker.Shim.Central) config benches =
  let tasks = List.length benches in
  if tasks <= 0 then invalid_arg "Run.run_mixed: needs at least one task";
  require_event_engine ~engine ~topology ~what:"Run.run_mixed";
  let instances' = match instances with Some n -> max n tasks | None -> tasks in
  (match config with
  | Config.Hetero _ -> ()
  | Config.Cpu_only _ -> invalid_arg "Run.run_mixed: needs a heterogeneous config");
  (* Exact datapath area: per-instance LUTs summed, never a truncating
     per-task mean — mixed benches with unequal area would under-report the
     silicon the power model is charged for. *)
  let design_of (b : Machsuite.Bench_def.t) =
    Hls.Directives.synthesize ~kernel:b.Machsuite.Bench_def.kernel b.directives
  in
  let execute ~fast ~ff =
  let sys =
    System.create ~instances:instances' ?obs ~faults ~topology ~checkers config
  in
  let area_luts =
    System.total_area_luts_exact sys
      ~accel_luts_total:
        (List.fold_left
           (fun acc (b : Machsuite.Bench_def.t) ->
             acc + (design_of b).Hls.Directives.d_area_luts)
           0 benches)
  in
  if not (Fault.Plan.is_none faults) then
    run_hetero_faulted sys ~benchmark:"mixed" ~area_luts ~policy:retry ~engine
      benches
  else begin
  let driver = Option.get sys.System.driver in
  let backend = Option.get sys.System.backend in
  let cfg = sys.System.cpu_cfg in
  let obs = sys.System.obs in
  let fast = fast && not (Obs.Trace.enabled obs) in
  let guard = System.guard sys in
  let allocated =
    List.map
      (fun (bench : Machsuite.Bench_def.t) ->
        match Driver.allocate driver bench.kernel with
        | Ok a -> (bench, a)
        | Error msg ->
            failwith ("driver allocation failed for " ^ bench.name ^ ": " ^ msg))
      benches
  in
  let claimed : (Fastpath.bench_key, unit) Hashtbl.t = Hashtbl.create 8 in
  let plans =
    List.map
      (fun ((bench : Machsuite.Bench_def.t), (a : Driver.allocated)) ->
        let eligible = elide_eligible backend elide bench in
        let elide_exec = match elide with Elide_on -> eligible | _ -> false in
        let fp = fastpath_for ~fast ~elide_exec ~backend ~guard bench in
        let key = Fastpath.bench_key bench in
        let script = if fast then Fastpath.find_script key else None in
        let recorder =
          if fast && script = None && not (Hashtbl.mem claimed key) then begin
            Hashtbl.add claimed key ();
            Some (Accel.Script.Recorder.create ())
          end
          else None
        in
        { mp_bench = bench; mp_alloc = a; mp_key = key;
          mp_eligible = eligible; mp_elide_exec = elide_exec; mp_fp = fp;
          mp_script = script; mp_recorder = recorder })
      allocated
  in
  let t0 = Obs.Trace.now obs in
  let alloc_cycles =
    List.fold_left (fun acc (_, (a : Driver.allocated)) -> acc + a.cycles) 0 allocated
  in
  List.iter
    (fun p ->
      if p.mp_script = None then
        init_layout sys.System.mem p.mp_bench
          p.mp_alloc.Driver.handle.Driver.layout)
    plans;
  let init_cycles =
    List.fold_left
      (fun acc ((bench : Machsuite.Bench_def.t), _) ->
        acc + Cpu.Model.init_store_cycles cfg ~bytes:(buffer_bytes bench.kernel))
      0 allocated
  in
  let lead_task = (snd (List.hd allocated)).Driver.handle.Driver.task_id in
  emit_phase obs ~at:t0 ~task:lead_task "alloc" alloc_cycles;
  emit_phase obs ~at:(t0 + alloc_cycles) ~task:lead_task "init" init_cycles;
  Obs.Trace.set_now obs (t0 + alloc_cycles + init_cycles);
  let replay_start = t0 + alloc_cycles + init_cycles in
  (* Per task: (bench, allocation, denial, checks, elided, verified). *)
  let per_task, compute_cycles, bus_beats, entries_peak =
    match engine with
    | Legacy_replay ->
        let outcomes =
          List.map
            (fun p ->
              let bench = p.mp_bench in
              let a = p.mp_alloc in
              let handle = a.Driver.handle in
              let trace, denied, checks, elided, verified =
                match p.mp_script with
                | Some (script, s_correct) ->
                    let d =
                      Accel.Script.to_trace script ~bus:sys.System.bus
                        ~mem_size:(Tagmem.Mem.size sys.System.mem)
                        ~layout:handle.Driver.layout
                        ~obj_ids:handle.Driver.obj_ids
                        ~addressing:(Driver.Backend.addressing backend)
                        ~source:handle.Driver.task_id
                        (adjudication_of ~elide_exec:p.mp_elide_exec ~guard
                           p.mp_fp)
                    in
                    Obs.Counters.incr Obs.Counters.traces_memoized;
                    if d.Accel.Script.d_fastpathed > 0 then
                      Obs.Counters.add Obs.Counters.accesses_fast_pathed
                        d.Accel.Script.d_fastpathed;
                    ( d.Accel.Script.d_trace, d.Accel.Script.d_denied,
                      d.Accel.Script.d_checks, d.Accel.Script.d_elided,
                      d.Accel.Script.d_denied = None && s_correct )
                | None ->
                    let outcome =
                      Accel.Engine.run ~obs ~elide:p.mp_elide_exec
                        ~fastpath:p.mp_fp ?recorder:p.mp_recorder
                        ~mem:sys.System.mem ~guard ~bus:sys.System.bus
                        ~directives:bench.Machsuite.Bench_def.directives
                        ~addressing:(Driver.Backend.addressing backend)
                        ~naive_tag_writes:(System.naive_tag_writes sys)
                        {
                          Accel.Engine.instance = handle.Driver.task_id;
                          kernel = bench.kernel;
                          layout = handle.Driver.layout;
                          params = bench.params;
                          obj_ids = handle.Driver.obj_ids;
                        }
                    in
                    let verified =
                      outcome.Accel.Engine.denied = None
                      && verify sys.System.mem bench handle.Driver.layout
                    in
                    (match p.mp_recorder with
                    | Some r -> (
                        match
                          Accel.Script.Recorder.finalize r
                            ~total_ops:outcome.Accel.Engine.ops
                            ~complete:(outcome.Accel.Engine.denied = None)
                        with
                        | Some s ->
                            Fastpath.store_script p.mp_key s ~correct:verified
                        | None -> ())
                    | None -> ());
                    ( outcome.Accel.Engine.trace, outcome.Accel.Engine.denied,
                      outcome.Accel.Engine.checks, outcome.Accel.Engine.elided,
                      verified )
              in
              differential_check elide ~eligible:p.mp_eligible ~bench denied;
              (p, trace, denied, checks, elided, verified))
            plans
        in
        let entries_peak = guard.Guard.Iface.entries_in_use () in
        let replayed =
          if fast then
            Accel.Replay.run_compiled sys.System.fabric ~start:replay_start
              (List.map
                 (fun (p, trace, _, _, _, _) ->
                   { Accel.Replay.cinstance =
                       p.mp_alloc.Driver.handle.Driver.task_id;
                     ctrace =
                       Accel.Trace.Compiled.compile ~bus:sys.System.bus
                         ~max_outstanding:
                           (max 1
                              (design_of p.mp_bench)
                                .Hls.Directives.d_max_outstanding)
                         trace })
                 outcomes)
          else
            Accel.Replay.run sys.System.fabric ~start:replay_start
              (List.map
                 (fun (p, trace, _, _, _, _) ->
                   { Accel.Replay.instance =
                       p.mp_alloc.Driver.handle.Driver.task_id;
                     trace;
                     max_outstanding =
                       (design_of p.mp_bench).Hls.Directives.d_max_outstanding })
                 outcomes)
        in
        ( List.map
            (fun (p, _, denied, checks, elided, verified) ->
              (p.mp_bench, p.mp_alloc, denied, checks, elided, verified))
            outcomes,
          replayed.Accel.Replay.makespan - replay_start,
          replayed.Accel.Replay.bus_beats,
          entries_peak )
    | Event_driven ->
        let ev_tasks =
          List.map
            (fun p ->
              let adj =
                adjudication_of ~elide_exec:p.mp_elide_exec ~guard p.mp_fp
              in
              {
                et_bench = p.mp_bench;
                et_alloc = p.mp_alloc;
                et_elide = p.mp_elide_exec;
                et_fastpath = p.mp_fp;
                et_recorder = p.mp_recorder;
                et_script =
                  Option.map (fun (s, _) -> (s, adj)) p.mp_script;
              })
            plans
        in
        let outcomes, makespan, bus_beats =
          run_event_compute sys ~ff ~start:replay_start ev_tasks
        in
        let outcomes =
          List.map2
            (fun p (et, (o : Accel.Engine.ev_outcome)) ->
              differential_check elide ~eligible:p.mp_eligible
                ~bench:p.mp_bench o.Accel.Engine.ev_denied;
              let verified =
                match p.mp_script with
                | Some (_, s_correct) ->
                    o.Accel.Engine.ev_denied = None && s_correct
                | None ->
                    o.Accel.Engine.ev_denied = None
                    && verify sys.System.mem p.mp_bench
                         et.et_alloc.Driver.handle.Driver.layout
              in
              (match p.mp_recorder with
              | Some r -> (
                  match
                    Accel.Script.Recorder.finalize r
                      ~total_ops:o.Accel.Engine.ev_ops
                      ~complete:(o.Accel.Engine.ev_denied = None
                                 && not o.Accel.Engine.ev_failed)
                  with
                  | Some s -> Fastpath.store_script p.mp_key s ~correct:verified
                  | None -> ())
              | None -> ());
              (p, o, verified))
            plans outcomes
        in
        let entries_peak = guard.Guard.Iface.entries_in_use () in
        ( List.map
            (fun (p, (o : Accel.Engine.ev_outcome), verified) ->
              (p.mp_bench, p.mp_alloc, o.Accel.Engine.ev_denied,
               o.Accel.Engine.ev_checks, o.Accel.Engine.ev_elided, verified))
            outcomes,
          makespan - replay_start,
          bus_beats,
          entries_peak )
  in
  emit_phase obs ~at:replay_start ~task:lead_task "compute" compute_cycles;
  Obs.Trace.set_now obs (replay_start + compute_cycles);
  let correct =
    List.for_all (fun (_, _, _, _, _, verified) -> verified) per_task
  in
  let teardown_start = Obs.Trace.now obs in
  let teardown_cycles, denial_lists =
    List.fold_left
      (fun (cycles, acc) (_, (a : Driver.allocated), denied, _, _, _) ->
        let report = Driver.deallocate driver a.handle ~denied in
        (cycles + report.Driver.cycles, report.Driver.denials :: acc))
      (0, []) per_task
  in
  let denials = List.concat (List.rev denial_lists) in
  emit_phase obs ~at:teardown_start ~task:lead_task "teardown" teardown_cycles;
  Obs.Trace.set_now obs (teardown_start + teardown_cycles);
  let checks =
    List.fold_left (fun acc (_, _, _, checks, _, _) -> acc + checks) 0 per_task
  in
  let elided_checks =
    List.fold_left (fun acc (_, _, _, _, elided, _) -> acc + elided) 0 per_task
  in
  let phases =
    { alloc = alloc_cycles; init = init_cycles;
      compute = compute_cycles; teardown = teardown_cycles }
  in
  finish sys ~config_label:(Config.label config) ~benchmark:"mixed" ~tasks ~phases
    ~correct ~denials ~checks ~elided_checks ~entries_peak
    ~bus_beats ~area_luts ()
  end
  in
  let memo_eligible = obs = None && Fault.Plan.is_none faults in
  let key =
    { mk_mixed = true; mk_config = config;
      mk_benches = List.map Fastpath.bench_key benches;
      mk_tasks = tasks; mk_instances = instances; mk_cc_entries = 256;
      mk_bus = Bus.Params.default; mk_elide = elide; mk_engine = engine;
      mk_topology = topology; mk_checkers = checkers }
  in
  dispatch ~memo_eligible ~key ~what:"Run.run_mixed" execute

(* ------------------------------------------------------------------ *)
(* Batch entry points: many independent full-system runs on a domain    *)
(* pool.  A spec captures everything a run needs; the job itself builds  *)
(* every piece of mutable state (the System, the sink, the fault-plan    *)
(* RNG), so jobs share nothing mutable and results are                   *)
(* index-deterministic regardless of scheduling.                         *)
(* ------------------------------------------------------------------ *)

type spec = {
  sp_config : Config.t;
  sp_bench : Machsuite.Bench_def.t;
  sp_tasks : int;
  sp_instances : int option;
  sp_cc_entries : int;
  sp_bus : Bus.Params.t;
  sp_faults : Fault.Plan.t;
  sp_retry : Driver.retry_policy;
  sp_elide : elide_mode;
  sp_engine : engine;
  sp_topology : Bus.Topology.kind;
  sp_checkers : Capchecker.Shim.checking;
}

let spec ?(tasks = 8) ?instances ?(cc_entries = 256) ?(bus = Bus.Params.default)
    ?(faults = Fault.Plan.none) ?(retry = Driver.default_retry_policy)
    ?(elide = Elide_off) ?(engine = Legacy_replay)
    ?(topology = Bus.Topology.Shared) ?(checkers = Capchecker.Shim.Central)
    config bench =
  { sp_config = config; sp_bench = bench; sp_tasks = tasks;
    sp_instances = instances; sp_cc_entries = cc_entries; sp_bus = bus;
    sp_faults = faults; sp_retry = retry; sp_elide = elide; sp_engine = engine;
    sp_topology = topology; sp_checkers = checkers }

let run_spec ?obs sp =
  run ~tasks:sp.sp_tasks ?instances:sp.sp_instances ~cc_entries:sp.sp_cc_entries
    ~bus:sp.sp_bus ?obs ~faults:sp.sp_faults ~retry:sp.sp_retry
    ~elide:sp.sp_elide ~engine:sp.sp_engine ~topology:sp.sp_topology
    ~checkers:sp.sp_checkers sp.sp_config sp.sp_bench

let run_many ?(jobs = 1) ?obs_of specs =
  let arr = Array.of_list specs in
  Array.to_list
    (Ccsim.Pool.run ~jobs (Array.length arr) (fun idx ->
         let obs = Option.map (fun f -> f idx) obs_of in
         run_spec ?obs arr.(idx)))

let sweep_many ?(jobs = 1) ?(engine = Legacy_replay)
    ?(topology = Bus.Topology.Shared) ?(checkers = Capchecker.Shim.Central)
    ~tasks_list columns bench =
  let specs =
    List.concat_map
      (fun tasks ->
        List.map
          (fun (config, instances) ->
            spec ~tasks ?instances ~engine ~topology ~checkers config bench)
          columns)
      tasks_list
  in
  let results = run_many ~jobs specs in
  let ncols = List.length columns in
  let rec regroup tasks_list results =
    match tasks_list with
    | [] -> []
    | tasks :: rest ->
        let row = List.filteri (fun idx _ -> idx < ncols) results in
        let remainder = List.filteri (fun idx _ -> idx >= ncols) results in
        (tasks, row) :: regroup rest remainder
  in
  regroup tasks_list results
