type phases = { alloc : int; init : int; compute : int; teardown : int }

let wall_of p = p.alloc + p.init + p.compute + p.teardown

type result = {
  config_label : string;
  benchmark : string;
  tasks : int;
  phases : phases;
  wall : int;
  correct : bool;
  denials : Guard.Iface.denial list;
  checks : int;
  entries_peak : int;
  bus_beats : int;
  area_luts : int;
  power_mw : float;
}

let buffer_bytes (kernel : Kernel.Ir.t) =
  List.fold_left (fun acc b -> acc + Kernel.Ir.buf_decl_bytes b) 0 kernel.bufs

let init_layout mem (bench : Machsuite.Bench_def.t) layout =
  List.iter
    (fun (binding : Memops.Layout.binding) ->
      Memops.Layout.init_buffer mem binding (fun idx ->
          bench.init binding.decl.Kernel.Ir.buf_name idx))
    (Memops.Layout.bindings layout)

let verify mem (bench : Machsuite.Bench_def.t) layout =
  let golden = Machsuite.Bench_def.golden bench in
  List.for_all
    (fun name ->
      let binding = Memops.Layout.find layout name in
      let actual = Memops.Layout.read_buffer mem binding in
      let expected = List.assoc name golden in
      Array.length actual = Array.length expected
      && Array.for_all2 Kernel.Value.equal actual expected)
    bench.output_bufs

let finish (sys : System.t) ~config_label ~benchmark ~tasks ~phases ~correct
    ~denials ~checks ~entries_peak ~bus_beats ~accel_luts =
  let area_luts = System.total_area_luts sys ~accel_luts_per_instance:accel_luts in
  let utilization =
    if phases.compute <= 0 then 0.0
    else float_of_int bus_beats /. float_of_int phases.compute
  in
  {
    config_label; benchmark; tasks; phases; wall = wall_of phases; correct;
    denials; checks; entries_peak; bus_beats; area_luts;
    power_mw = Power.power_mw ~luts:area_luts ~utilization;
  }

(* Observation-only phase markers: stamped on the shared sink at the phase's
   start cycle.  The sink is never consulted by the simulation, so emitting
   (or not emitting) these cannot change any cycle count. *)
let emit_phase obs ~at ~task phase dur =
  if Obs.Trace.enabled obs then
    Obs.Trace.emit_at obs ~cycle:at (Obs.Event.Task_phase { task; phase; dur })

(* CPU-only execution: tasks run back-to-back on the one core. *)
let run_cpu_only sys isa (bench : Machsuite.Bench_def.t) ~tasks =
  let kernel = bench.Machsuite.Bench_def.kernel in
  let cfg = Cpu.Model.config isa in
  let n_bufs = List.length kernel.bufs in
  let obs = sys.System.obs in
  let t0 = Obs.Trace.now obs in
  let bytes = buffer_bytes kernel in
  let alloc_cycles = tasks * n_bufs * Driver.malloc_cycles in
  let init_cycles = tasks * Cpu.Model.init_store_cycles cfg ~bytes in
  let bindings =
    List.map
      (fun (decl : Kernel.Ir.buf_decl) ->
        let bytes = Kernel.Ir.buf_decl_bytes decl in
        let align, padded = Cheri.Bounds_enc.malloc_shape ~length:bytes in
        { Memops.Layout.decl;
          base = Tagmem.Alloc.malloc sys.System.heap ~align:(max align 16) padded })
      kernel.bufs
  in
  let layout = Memops.Layout.make bindings in
  init_layout sys.System.mem bench layout;
  emit_phase obs ~at:t0 ~task:0 "alloc" alloc_cycles;
  emit_phase obs ~at:(t0 + alloc_cycles) ~task:0 "init" init_cycles;
  Obs.Trace.set_now obs (t0 + alloc_cycles + init_cycles);
  let res =
    Cpu.Model.run ~obs cfg sys.System.mem kernel layout ~params:bench.params ()
  in
  (match res.Cpu.Model.trap with
  | None -> ()
  | Some reason -> failwith ("benign CPU run trapped: " ^ reason));
  let correct = verify sys.System.mem bench layout in
  List.iter (fun b -> Tagmem.Alloc.free sys.System.heap b.Memops.Layout.base) bindings;
  let per_task_compute =
    res.Cpu.Model.cycles + Cpu.Model.cap_setup_cycles cfg ~n_bufs
  in
  let phases =
    {
      alloc = alloc_cycles;
      init = init_cycles;
      compute = tasks * per_task_compute;
      teardown = tasks * n_bufs * Driver.free_cycles;
    }
  in
  emit_phase obs ~at:(t0 + alloc_cycles + init_cycles) ~task:0 "compute"
    phases.compute;
  Obs.Trace.set_now obs (t0 + alloc_cycles + init_cycles + phases.compute);
  emit_phase obs ~at:(Obs.Trace.now obs) ~task:0 "teardown" phases.teardown;
  finish sys ~config_label:(Config.label sys.System.config) ~benchmark:kernel.name
    ~tasks ~phases ~correct ~denials:[] ~checks:0 ~entries_peak:0 ~bus_beats:0
    ~accel_luts:0

(* Heterogeneous execution: allocate every task, interpret the kernel once as
   the accelerator, replicate its DMA stream per instance, and replay the
   contention. *)
let run_hetero sys (bench : Machsuite.Bench_def.t) ~tasks =
  let kernel = bench.Machsuite.Bench_def.kernel in
  let driver = Option.get sys.System.driver in
  let backend = Option.get sys.System.backend in
  let directives = bench.directives in
  let cfg = sys.System.cpu_cfg in
  let rec allocate acc n =
    if n = 0 then List.rev acc
    else
      match Driver.allocate driver kernel with
      | Ok a -> allocate (a :: acc) (n - 1)
      | Error msg -> failwith ("driver allocation failed: " ^ msg)
  in
  let obs = sys.System.obs in
  let t0 = Obs.Trace.now obs in
  let allocated = allocate [] tasks in
  let alloc_cycles =
    List.fold_left (fun acc (a : Driver.allocated) -> acc + a.cycles) 0 allocated
  in
  List.iter
    (fun (a : Driver.allocated) ->
      init_layout sys.System.mem bench a.handle.Driver.layout)
    allocated;
  let bytes = buffer_bytes kernel in
  let init_cycles = tasks * Cpu.Model.init_store_cycles cfg ~bytes in
  let first = (List.hd allocated).handle in
  emit_phase obs ~at:t0 ~task:first.Driver.task_id "alloc" alloc_cycles;
  emit_phase obs ~at:(t0 + alloc_cycles) ~task:first.Driver.task_id "init"
    init_cycles;
  Obs.Trace.set_now obs (t0 + alloc_cycles + init_cycles);
  let outcome =
    Accel.Engine.run ~obs ~mem:sys.System.mem ~guard:(System.guard sys)
      ~bus:sys.System.bus ~directives
      ~addressing:(Driver.Backend.addressing backend)
      ~naive_tag_writes:(System.naive_tag_writes sys)
      {
        Accel.Engine.instance = first.Driver.task_id;
        kernel;
        layout = first.Driver.layout;
        params = bench.params;
        obj_ids = first.Driver.obj_ids;
      }
  in
  let entries_peak = (System.guard sys).Guard.Iface.entries_in_use () in
  let streams =
    List.map
      (fun (a : Driver.allocated) ->
        { Accel.Replay.instance = a.handle.Driver.task_id;
          trace = outcome.Accel.Engine.trace;
          max_outstanding = directives.Hls.Directives.max_outstanding })
      allocated
  in
  let replayed = Accel.Replay.run sys.System.fabric ~start:0 streams in
  emit_phase obs ~at:(t0 + alloc_cycles + init_cycles) ~task:first.Driver.task_id
    "compute" replayed.Accel.Replay.makespan;
  Obs.Trace.set_now obs
    (t0 + alloc_cycles + init_cycles + replayed.Accel.Replay.makespan);
  let correct =
    outcome.Accel.Engine.denied = None
    && verify sys.System.mem bench first.Driver.layout
  in
  let denied_first = outcome.Accel.Engine.denied in
  let teardown_start = Obs.Trace.now obs in
  let teardown_cycles, denials =
    List.fold_left
      (fun (cycles, denials) (a : Driver.allocated) ->
        let denied =
          if a.handle.Driver.task_id = first.Driver.task_id then
            denied_first
          else None
        in
        let report = Driver.deallocate driver a.handle ~denied in
        (cycles + report.Driver.cycles, denials @ report.Driver.denials))
      (0, []) allocated
  in
  emit_phase obs ~at:teardown_start ~task:first.Driver.task_id "teardown"
    teardown_cycles;
  let phases =
    { alloc = alloc_cycles; init = init_cycles;
      compute = replayed.Accel.Replay.makespan; teardown = teardown_cycles }
  in
  finish sys ~config_label:(Config.label sys.System.config) ~benchmark:kernel.name
    ~tasks ~phases ~correct ~denials
    ~checks:(outcome.Accel.Engine.checks * tasks)
    ~entries_peak ~bus_beats:replayed.Accel.Replay.bus_beats
    ~accel_luts:directives.Hls.Directives.area_luts

let run ?(tasks = 8) ?instances ?(cc_entries = 256) ?(bus = Bus.Params.default)
    ?obs config bench =
  assert (tasks > 0);
  let instances = match instances with Some n -> max n tasks | None -> max 8 tasks in
  let sys = System.create ~instances ~cc_entries ~bus ?obs config in
  match config with
  | Config.Cpu_only isa -> run_cpu_only sys isa bench ~tasks
  | Config.Hetero _ -> run_hetero sys bench ~tasks

let run_mixed ?instances ?obs config benches =
  let tasks = List.length benches in
  assert (tasks > 0);
  let instances = match instances with Some n -> max n tasks | None -> tasks in
  (match config with
  | Config.Hetero _ -> ()
  | Config.Cpu_only _ -> invalid_arg "Run.run_mixed: needs a heterogeneous config");
  let sys = System.create ~instances ?obs config in
  let driver = Option.get sys.System.driver in
  let backend = Option.get sys.System.backend in
  let cfg = sys.System.cpu_cfg in
  let allocated =
    List.map
      (fun (bench : Machsuite.Bench_def.t) ->
        match Driver.allocate driver bench.kernel with
        | Ok a -> (bench, a)
        | Error msg ->
            failwith ("driver allocation failed for " ^ bench.name ^ ": " ^ msg))
      benches
  in
  let obs = sys.System.obs in
  let t0 = 0 in
  let alloc_cycles =
    List.fold_left (fun acc (_, (a : Driver.allocated)) -> acc + a.cycles) 0 allocated
  in
  List.iter
    (fun ((bench : Machsuite.Bench_def.t), (a : Driver.allocated)) ->
      init_layout sys.System.mem bench a.handle.Driver.layout)
    allocated;
  let init_cycles =
    List.fold_left
      (fun acc ((bench : Machsuite.Bench_def.t), _) ->
        acc + Cpu.Model.init_store_cycles cfg ~bytes:(buffer_bytes bench.kernel))
      0 allocated
  in
  let lead_task = (snd (List.hd allocated)).Driver.handle.Driver.task_id in
  emit_phase obs ~at:t0 ~task:lead_task "alloc" alloc_cycles;
  emit_phase obs ~at:(t0 + alloc_cycles) ~task:lead_task "init" init_cycles;
  Obs.Trace.set_now obs (t0 + alloc_cycles + init_cycles);
  let outcomes =
    List.map
      (fun ((bench : Machsuite.Bench_def.t), (a : Driver.allocated)) ->
        let outcome =
          Accel.Engine.run ~obs ~mem:sys.System.mem ~guard:(System.guard sys)
            ~bus:sys.System.bus ~directives:bench.directives
            ~addressing:(Driver.Backend.addressing backend)
            ~naive_tag_writes:(System.naive_tag_writes sys)
            {
              Accel.Engine.instance = a.handle.Driver.task_id;
              kernel = bench.kernel;
              layout = a.handle.Driver.layout;
              params = bench.params;
              obj_ids = a.handle.Driver.obj_ids;
            }
        in
        (bench, a, outcome))
      allocated
  in
  let entries_peak = (System.guard sys).Guard.Iface.entries_in_use () in
  let streams =
    List.map
      (fun ((bench : Machsuite.Bench_def.t), (a : Driver.allocated), outcome) ->
        { Accel.Replay.instance = a.handle.Driver.task_id;
          trace = outcome.Accel.Engine.trace;
          max_outstanding = bench.directives.Hls.Directives.max_outstanding })
      outcomes
  in
  let replayed = Accel.Replay.run sys.System.fabric ~start:0 streams in
  emit_phase obs ~at:(t0 + alloc_cycles + init_cycles) ~task:lead_task "compute"
    replayed.Accel.Replay.makespan;
  Obs.Trace.set_now obs
    (t0 + alloc_cycles + init_cycles + replayed.Accel.Replay.makespan);
  let correct =
    List.for_all
      (fun ((bench : Machsuite.Bench_def.t), (a : Driver.allocated), outcome) ->
        outcome.Accel.Engine.denied = None
        && verify sys.System.mem bench a.handle.Driver.layout)
      outcomes
  in
  let teardown_start = Obs.Trace.now obs in
  let teardown_cycles, denials =
    List.fold_left
      (fun (cycles, denials) (_, (a : Driver.allocated), outcome) ->
        let report =
          Driver.deallocate driver a.handle
            ~denied:outcome.Accel.Engine.denied
        in
        (cycles + report.Driver.cycles, denials @ report.Driver.denials))
      (0, []) outcomes
  in
  emit_phase obs ~at:teardown_start ~task:lead_task "teardown" teardown_cycles;
  let checks =
    List.fold_left (fun acc (_, _, o) -> acc + o.Accel.Engine.checks) 0 outcomes
  in
  let mean_accel_luts =
    List.fold_left
      (fun acc (b : Machsuite.Bench_def.t) ->
        acc + b.directives.Hls.Directives.area_luts)
      0 benches
    / tasks
  in
  let phases =
    { alloc = alloc_cycles; init = init_cycles;
      compute = replayed.Accel.Replay.makespan; teardown = teardown_cycles }
  in
  finish sys ~config_label:(Config.label config) ~benchmark:"mixed" ~tasks ~phases
    ~correct ~denials ~checks ~entries_peak
    ~bus_beats:replayed.Accel.Replay.bus_beats ~accel_luts:mean_accel_luts
