(** Multi-source bus arbiter for the event-driven simulation core.

    Where {!Fabric.request} serializes transactions through a monotone
    [free_at] latch — correct only when callers already know the global
    order — the arbiter models the interconnect the way the FPGA prototype's
    AXI crossbar behaves with several live masters: each source has its own
    request queue, at most one transaction owns the data bus at a time
    (bursts are never interleaved), and when several sources have a request
    ready the grant rotates round-robin starting after the last winner, so
    sustained contention shares bandwidth fairly and a late arrival is
    served within one rotation.

    The arbiter is driven by a {!Ccsim.Sched} scheduler: requests are
    asynchronous, and the grant is delivered through a callback at the cycle
    the address phase wins arbitration.  Arbitration decisions run at
    {!Ccsim.Sched.rank_arbitrate}, after every same-cycle request
    submission, so the winner never depends on heap insertion order.

    Timing, fault injection and observability match {!Fabric.request}
    beat-for-beat: with a single source the arbiter grants exactly the
    schedule the legacy fabric would (the differential tests rely on it). *)

type t

val create :
  ?obs:Obs.Trace.t -> ?faults:Fault.Injector.t -> sched:Ccsim.Sched.t ->
  Params.t -> t

val params : t -> Params.t

val request :
  t ->
  src:int ->
  at:int ->
  beats:int ->
  is_read:bool ->
  extra_latency:int ->
  on_grant:(Fabric.grant -> unit) ->
  unit
(** Enqueue a transaction from source [src] that becomes ready at cycle
    [at] (clamped to the current cycle).  [on_grant] is invoked at the
    grant cycle with the same {!Fabric.grant} record the legacy fabric
    returns; the caller decides when its requester may proceed
    ([granted_at + 1] for posted writes and streaming reads, [completed]
    for dependent reads). *)

val busy_until : t -> int
(** Cycle at which the data bus frees given grants so far. *)

val total_beats : t -> int
(** Beats transferred so far (bandwidth accounting for the power model). *)

val queued : t -> int
(** Requests enqueued and not yet granted (0 once the scheduler drains). *)

val sources : t -> int list
(** Registered sources in first-request order (the rotation). *)

val scan_order : t -> int list
(** Sources in grant-scan order: round-robin starting just after the last
    winner, or plain first-request order when no grant has happened yet or
    the last winner has since been {!unregister}ed. *)

val unregister : t -> src:int -> bool
(** Remove an idle source (e.g. a departed serve-mode tenant's accelerator)
    from the rotation.  Refuses (returns false) while the source still has
    queued requests; a removed source re-registers transparently on its next
    {!request}.  If the removed source was the last winner, the next scan
    falls back to plain first-request order. *)

type flat_client = {
  fc_uniform : delta:int -> int;
      (** Number of upcoming bursts (starting at the currently queued one)
          the driver certifies to be shift-equivariant under a per-period
          shift of [delta] cycles: identical burst parameters, and state
          updates that are pure functions of previous grant cycles.  A
          driver with an outstanding-read window must also verify the
          window is entrained on period [delta] (warmed up, spaced exactly
          [delta]) before certifying.  0 = no certificate right now. *)
  fc_jump : n:int -> dt:int -> unit;
      (** Absorb [n] further grants of the current uniform stretch, shifting
          every time-valued state component (next-issue cycle, settle times,
          outstanding completions) by [dt].  Only called with
          [n <= fc_uniform ~delta - 2]. *)
}
(** Protocol a flat (direct-callback, coroutine-free) request driver offers
    the steady-state leap.  When every active source is flat, the arbiter
    may grant ahead of the event heap in a scalar loop, and — once the grant
    schedule fingerprints as periodic — advance whole periods in O(1),
    bumping {!Obs.Counters.periods_leaped}.  Leaping bails (single-steps)
    whenever observability is attached, a fault plan is live, or any foreign
    event sits in the scheduler. *)

val set_flat : t -> src:int -> flat_client -> unit
(** Declare [src] flat-driven.  Registers the source (at the rotation tail)
    if it has not requested yet.  Cleared automatically by {!unregister}. *)
