(** The shared-bus arbiter.

    Models the paper's AXI interconnect as a single shared resource: at most
    one transaction owns the data bus at a time and each beat takes one cycle.
    Requests are served in arrival order (FIFO arbitration), which is how the
    round-robin AXI crossbar behaves under sustained contention. *)

type t

type grant = {
  granted_at : int;   (** cycle the address phase won arbitration *)
  data_done : int;    (** cycle the last beat left the bus (address phase
                          included) *)
  completed : int;    (** cycle the requester observes completion
                          (incl. memory latency for reads and any injected
                          stall) *)
  errored : bool;     (** the response was an injected bus error: it arrives
                          at [completed] but carries no valid data, so the
                          requester must re-issue *)
}

val create : ?obs:Obs.Trace.t -> ?faults:Fault.Injector.t -> Params.t -> t
(** [obs] (default {!Obs.Trace.null}) receives a [Bus_grant] event per
    transaction, stamped at its arbitration cycle, and a [Bus_beat] event at
    its last data beat.  Tracing never alters grant timing.  [faults]
    (default {!Fault.Injector.none}) may stall or error individual
    transactions; with the inert injector every grant has [errored = false]
    and zero stall, bit-identical to a fabric without fault plumbing. *)

val params : t -> Params.t

val request :
  ?src:int -> t -> at:int -> beats:int -> is_read:bool -> extra_latency:int -> grant
(** [request t ~at ~beats ~is_read ~extra_latency] submits a transaction that
    becomes ready at cycle [at].  [extra_latency] is added by interposed
    hardware on the path (the CapChecker's pipeline stages).  Writes are
    posted: their [completed] is the write-latency point but requesters
    normally continue at [granted_at].  [src] (default -1) attributes the
    transaction to an interconnect source id for the event trace only. *)

val busy_until : t -> int
(** The cycle after which the bus is idle given all requests so far. *)

val quiescent : t -> bool
(** True when every future {!request} is a pure function of its arguments and
    the [free_at] latch: the fault injector is inert (no stalls, no errors,
    no RNG draws) and bus tracing is disabled (no per-grant events to emit).
    This is the license for compiled replay to fast-forward through a whole
    transaction stretch with {!fast_forward} instead of issuing each
    request. *)

val fast_forward : t -> busy_until:int -> beats:int -> unit
(** Account for a stretch of transactions without issuing them: advance the
    grant latch to at least [busy_until] and add [beats] to the bandwidth
    counter.  Only sound on a {!quiescent} fabric — the caller (compiled
    replay) must have precomputed the stretch under the same pure grant
    formulas {!request} would apply. *)

val total_beats : t -> int
(** Beats transferred so far (bandwidth accounting for the power model). *)

val reset : t -> unit
