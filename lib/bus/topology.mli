(** Pluggable interconnect topology for the event-driven core.

    Three shapes over the same round-robin {!Arbiter}:

    - [Shared] — one arbiter, one grant per cycle: byte-for-byte today's bus
      and the differential oracle ({!request} delegates directly, so a
      single-source run is cycle-identical to {!Fabric.request}).
    - [Crossbar {banks}] — per-target arbitration: each memory bank stripe
      ({!bank_interleave} bytes) has its own arbiter, so transactions to
      disjoint banks are granted concurrently and only same-bank traffic
      serializes.
    - [Hierarchical {clusters}] — two-level: sources are spread round-robin
      over cluster-local arbiters ([src mod clusters]); a local winner pays
      {!uplink_latency} to reach the root arbiter (where clusters compete)
      and the response pays the same hop back.

    Fault draws and [Bus_grant]/[Bus_beat] events happen once per transaction
    in every topology: on the owning bank arbiter for a crossbar, and on the
    root (with the cluster id as source) for the hierarchy. *)

type kind =
  | Shared
  | Crossbar of { banks : int }
  | Hierarchical of { clusters : int }

val default_banks : int
val default_clusters : int

val uplink_latency : int
(** One-way cycles between a cluster-local bus and the root interconnect. *)

val bank_interleave : int
(** Bytes per bank stripe for {!target_for}'s address interleaving. *)

val kind_to_string : kind -> string
(** [shared], [crossbar:<banks>] or [hier:<clusters>] — round-trips with
    {!kind_of_string}. *)

val kind_of_string : string -> (kind, string) result
(** Accepts [shared], [crossbar], [xbar], [hier], [hierarchical], optionally
    suffixed [:<n>] for the bank/cluster count. *)

type t

val create :
  ?obs:Obs.Trace.t -> ?faults:Fault.Injector.t -> sched:Ccsim.Sched.t ->
  kind:kind -> Params.t -> t

val kind : t -> kind

val targets : t -> int
(** Number of distinct request targets (bank count for a crossbar, 1
    otherwise). *)

val target_for : t -> addr:int -> int
(** Bank owning physical address [addr] (always 0 outside a crossbar). *)

val home_target : t -> src:int -> int
(** Deterministic home bank for traffic with no recorded address (trace-fed
    replay streams): [src mod banks] on a crossbar, 0 otherwise. *)

val request :
  t ->
  src:int ->
  target:int ->
  at:int ->
  beats:int ->
  is_read:bool ->
  extra_latency:int ->
  on_grant:(Fabric.grant -> unit) ->
  unit
(** Same contract as {!Arbiter.request}; [target] selects the bank arbiter
    on a crossbar (see {!target_for} / {!home_target}) and is ignored
    elsewhere.  On the hierarchy the grant delivered to [on_grant] is the
    root grant with the return uplink hop added to [completed]. *)

val set_flat : t -> src:int -> Arbiter.flat_client -> bool
(** Declare [src] flat-driven (direct-callback, no coroutine) so the shared
    arbiter may leap periodic steady state.  Returns [false] without
    registering anything on crossbar and hierarchical topologies — the leap's
    closed-system argument only holds with a single arbiter — in which case
    the caller must use the coroutine driver. *)

val total_beats : t -> int
(** Beats transferred, summed over bank arbiters (root only for the
    hierarchy — each transaction is counted once). *)

val busy_until : t -> int
val queued : t -> int
