(* Pluggable interconnect topology over the round-robin {!Arbiter}.

   [Shared] is a single arbiter — exactly today's one-grant-per-cycle bus, and
   the differential oracle.  [Crossbar] gives every memory bank its own
   arbiter, so transactions to disjoint banks proceed concurrently and only
   same-bank traffic serializes.  [Hierarchical] groups sources into clusters:
   a local arbiter per cluster grants the cluster's uplink, then the winning
   transaction crosses to a root arbiter (store-and-forward, one uplink hop
   each way), modelling the two-level NoC a 64-accelerator SoC would use. *)

type kind =
  | Shared
  | Crossbar of { banks : int }
  | Hierarchical of { clusters : int }

let default_banks = 4
let default_clusters = 4

let uplink_latency = 2
(* cycles for a transaction to cross from a cluster's local bus to the root
   interconnect (and for the response to cross back) *)

let bank_interleave = 4096
(* bytes per bank stripe: consecutive 4 KiB frames map to consecutive banks *)

let kind_to_string = function
  | Shared -> "shared"
  | Crossbar { banks } -> Printf.sprintf "crossbar:%d" banks
  | Hierarchical { clusters } -> Printf.sprintf "hier:%d" clusters

let kind_of_string s =
  let param ~what ~default rest =
    match rest with
    | None -> Ok default
    | Some n -> (
        match int_of_string_opt n with
        | Some v when v > 0 -> Ok v
        | Some _ | None ->
            Error (Printf.sprintf "%s wants a positive count, got %S" what n))
  in
  let name, rest =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
        ( String.sub s 0 i,
          Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  match name with
  | "shared" -> (
      match rest with
      | None -> Ok Shared
      | Some _ -> Error "shared takes no parameter")
  | "crossbar" | "xbar" ->
      Result.map
        (fun banks -> Crossbar { banks })
        (param ~what:"crossbar" ~default:default_banks rest)
  | "hier" | "hierarchical" ->
      Result.map
        (fun clusters -> Hierarchical { clusters })
        (param ~what:"hier" ~default:default_clusters rest)
  | _ ->
      Error
        (Printf.sprintf
           "unknown topology %S (expected shared, crossbar[:banks] or \
            hier[:clusters])" s)

type t =
  | Sh of Arbiter.t
  | Xbar of { arbs : Arbiter.t array; banks : int }
  | Hier of { locals : Arbiter.t array; root : Arbiter.t; clusters : int }

let create ?(obs = Obs.Trace.null) ?(faults = Fault.Injector.none) ~sched ~kind
    p =
  match kind with
  | Shared -> Sh (Arbiter.create ~obs ~faults ~sched p)
  | Crossbar { banks } ->
      Xbar
        { arbs = Array.init banks (fun _ -> Arbiter.create ~obs ~faults ~sched p);
          banks }
  | Hierarchical { clusters } ->
      (* Only the root arbiter observes and draws faults: a transaction
         traverses one local arbiter and the root, and emitting (or drawing a
         fault) at both levels would double-count a single transfer. *)
      Hier
        { locals = Array.init clusters (fun _ -> Arbiter.create ~sched p);
          root = Arbiter.create ~obs ~faults ~sched p;
          clusters }

let kind = function
  | Sh _ -> Shared
  | Xbar { banks; _ } -> Crossbar { banks }
  | Hier { clusters; _ } -> Hierarchical { clusters }

let targets = function
  | Sh _ -> 1
  | Xbar { banks; _ } -> banks
  | Hier _ -> 1

let target_for t ~addr =
  match t with
  | Sh _ | Hier _ -> 0
  | Xbar { banks; _ } -> addr / bank_interleave mod banks

let home_target t ~src =
  match t with Sh _ | Hier _ -> 0 | Xbar { banks; _ } -> src mod banks

let request t ~src ~target ~at ~beats ~is_read ~extra_latency ~on_grant =
  match t with
  | Sh a -> Arbiter.request a ~src ~at ~beats ~is_read ~extra_latency ~on_grant
  | Xbar { arbs; banks } ->
      Arbiter.request arbs.(target mod banks) ~src ~at ~beats ~is_read
        ~extra_latency ~on_grant
  | Hier { locals; root; clusters } ->
      let cluster = src mod clusters in
      Arbiter.request locals.(cluster) ~src ~at ~beats ~is_read ~extra_latency:0
        ~on_grant:(fun (local : Fabric.grant) ->
          Arbiter.request root ~src:cluster
            ~at:(local.Fabric.granted_at + uplink_latency)
            ~beats ~is_read ~extra_latency
            ~on_grant:(fun (g : Fabric.grant) ->
              on_grant
                { g with Fabric.completed = g.Fabric.completed + uplink_latency }))

(* Flat (direct-callback) drivers only exist for the shared bus: the leap's
   closed-system argument needs every grant in the process to flow through
   one arbiter, which crossbar banks and hierarchy levels break.  Reports
   whether the client was accepted, so the run layer can fall back to the
   coroutine driver on other topologies. *)
let set_flat t ~src client =
  match t with
  | Sh a ->
      Arbiter.set_flat a ~src client;
      true
  | Xbar _ | Hier _ -> false

let total_beats = function
  | Sh a -> Arbiter.total_beats a
  | Xbar { arbs; _ } ->
      Array.fold_left (fun acc a -> acc + Arbiter.total_beats a) 0 arbs
  | Hier { root; _ } -> Arbiter.total_beats root

let busy_until = function
  | Sh a -> Arbiter.busy_until a
  | Xbar { arbs; _ } ->
      Array.fold_left (fun acc a -> max acc (Arbiter.busy_until a)) 0 arbs
  | Hier { root; _ } -> Arbiter.busy_until root

let queued = function
  | Sh a -> Arbiter.queued a
  | Xbar { arbs; _ } ->
      Array.fold_left (fun acc a -> acc + Arbiter.queued a) 0 arbs
  | Hier { locals; root; _ } ->
      Arbiter.queued root
      + Array.fold_left (fun acc a -> acc + Arbiter.queued a) 0 locals
