type t = {
  p : Params.t;
  obs : Obs.Trace.t;
  faults : Fault.Injector.t;
  mutable free_at : int;
  mutable beats : int;
}

type grant = {
  granted_at : int;
  data_done : int;
  completed : int;
  errored : bool;
}

let create ?(obs = Obs.Trace.null) ?(faults = Fault.Injector.none) p =
  { p; obs; faults; free_at = 0; beats = 0 }

let params t = t.p

let request ?(src = -1) t ~at ~beats ~is_read ~extra_latency =
  assert (beats > 0 && at >= 0);
  let granted_at = max at t.free_at in
  let data_done = granted_at + t.p.Params.addr_phase + beats in
  t.free_at <- data_done;
  t.beats <- t.beats + beats;
  let mem_latency = if is_read then t.p.Params.read_latency else t.p.Params.write_latency in
  (* Injected faults: a stall delays the response by extra cycles; an error
     response completes on time but carries no valid data, so the requester
     must re-issue. *)
  let stall = Fault.Injector.bus_stall t.faults in
  let errored = Fault.Injector.bus_error t.faults in
  let completed = data_done + mem_latency + extra_latency + stall in
  if Obs.Trace.enabled t.obs then begin
    Obs.Trace.emit_at t.obs ~cycle:granted_at
      (Obs.Event.Bus_grant
         { source = src; beats; read = is_read; at; granted_at; data_done; completed });
    Obs.Trace.emit_at t.obs ~cycle:data_done (Obs.Event.Bus_beat { source = src; beats })
  end;
  { granted_at; data_done; completed; errored }

let busy_until t = t.free_at
let total_beats t = t.beats

let quiescent t =
  (not (Fault.Injector.active t.faults)) && not (Obs.Trace.enabled t.obs)

let fast_forward t ~busy_until ~beats =
  assert (beats >= 0);
  t.free_at <- max t.free_at busy_until;
  t.beats <- t.beats + beats

let reset t =
  t.free_at <- 0;
  t.beats <- 0
