type req = {
  at : int;
  beats : int;
  is_read : bool;
  extra_latency : int;
  on_grant : Fabric.grant -> unit;
}

(* A source that is driven by direct callbacks (no coroutine) may register a
   flat client; when *every* active source has one, the arbiter can grant
   scalar-ly ahead of the event heap, and — once the grant schedule proves
   periodic — advance whole periods in O(1) (see [leap] below). *)
type flat_client = {
  fc_uniform : delta:int -> int;
      (* Number of upcoming bursts (starting at the currently queued one)
         the driver certifies to be shift-equivariant under a per-period
         shift of [delta] cycles: identical burst parameters, and
         next-arrival/state updates that are pure functions of previous
         grant times (the driver checks its outstanding-window warmup and
         that the window is entrained on period [delta] internally).
         0 = no certificate. *)
  fc_jump : n:int -> dt:int -> unit;
      (* Absorb [n] further grants of the current uniform stretch, shifting
         every time-valued state component by [dt]; only called with
         [n <= fc_uniform ~delta () - 2]. *)
}

(* Sources live in a doubly-linked ring over a dense slot array, kept in
   first-request order, so registration, unregistration and the grant scan
   are allocation-free and O(1) amortized (the old list rotation was O(K²)
   to register and allocated a K-cell scan list per arbitration). *)
type slot = {
  mutable s_src : int;
  s_q : req Queue.t;
  mutable s_prev : int;
  mutable s_next : int;
  mutable s_active : bool;
  mutable s_flat : flat_client option;
  mutable s_mark : int;  (* rotation-distinctness scratch for the leap *)
}

(* Fingerprint of one arbitration rotation, collected only while leaping:
   per grant the slot, the grant cycle and request-arrival cycle relative to
   the rotation start, and the burst shape.  Two consecutive equal
   fingerprints with a constant offset are the recurrence the O(1) period
   jump keys on. *)
type rot_buf = {
  mutable rb_len : int;
  mutable rb_t0 : int;
  mutable rb_slot : int array;
  mutable rb_dt : int array;
  mutable rb_at : int array;  (* request [at] relative to the rotation start *)
  mutable rb_beats : int array;
  mutable rb_shape : int array;  (* extra_latency * 2 + is_read *)
}

let rot_create () =
  { rb_len = 0; rb_t0 = 0; rb_slot = Array.make 16 0; rb_dt = Array.make 16 0;
    rb_at = Array.make 16 0; rb_beats = Array.make 16 0;
    rb_shape = Array.make 16 0 }

let rot_reset rb ~t0 =
  rb.rb_len <- 0;
  rb.rb_t0 <- t0

let rot_push rb ~slot ~dt ~at ~beats ~shape =
  let n = rb.rb_len in
  if n = Array.length rb.rb_slot then begin
    let grow a = Array.append a (Array.make n 0) in
    rb.rb_slot <- grow rb.rb_slot;
    rb.rb_dt <- grow rb.rb_dt;
    rb.rb_at <- grow rb.rb_at;
    rb.rb_beats <- grow rb.rb_beats;
    rb.rb_shape <- grow rb.rb_shape
  end;
  rb.rb_slot.(n) <- slot;
  rb.rb_dt.(n) <- dt;
  rb.rb_at.(n) <- at;
  rb.rb_beats.(n) <- beats;
  rb.rb_shape.(n) <- shape;
  rb.rb_len <- n + 1

let rot_equal a b =
  a.rb_len = b.rb_len
  &&
  let rec go i =
    i >= a.rb_len
    || a.rb_slot.(i) = b.rb_slot.(i)
       && a.rb_dt.(i) = b.rb_dt.(i)
       && a.rb_at.(i) = b.rb_at.(i)
       && a.rb_beats.(i) = b.rb_beats.(i)
       && a.rb_shape.(i) = b.rb_shape.(i)
       && go (i + 1)
  in
  go 0

type t = {
  sched : Ccsim.Sched.t;
  p : Params.t;
  obs : Obs.Trace.t;
  faults : Fault.Injector.t;
  mutable slots : slot array;
  mutable n_slots : int;  (* slots ever allocated (dense prefix) *)
  mutable free_slots : int list;  (* recycled after unregister *)
  index : (int, int) Hashtbl.t;  (* src -> slot *)
  mutable head : int;  (* first active slot in rotation order, -1 if none *)
  mutable tail : int;
  mutable active : int;
  mutable flats : int;  (* active slots with a flat client *)
  mutable last_granted : int;  (* source id, -1 before any grant *)
  mutable last_slot : int;  (* slot hint for [last_granted], may be stale *)
  mutable free_at : int;
  mutable beats : int;
  mutable queued : int;
  (* Earliest cycle known to hold a live arbitration event ([min_int] =
     none known).  A schedule at or after it is skipped — see
     [schedule_arbitration] for the covering argument. *)
  mutable armed : int;
  mutable live_events : int;  (* arbitration events in the heap *)
  mutable leaping : bool;
  mutable entry : unit -> unit;  (* preallocated arbitrate closure *)
  mutable rot_mark : int;  (* epoch for slot distinctness marks *)
  mutable rot_prev : rot_buf;
  mutable rot_cur : rot_buf;
}

let no_slot = -1

let params t = t.p
let busy_until t = t.free_at
let total_beats t = t.beats
let queued t = t.queued

let slot_alloc t =
  match t.free_slots with
  | i :: rest ->
      t.free_slots <- rest;
      i
  | [] ->
      let i = t.n_slots in
      if i = Array.length t.slots then begin
        let cap = max 8 (2 * i) in
        let fresh =
          Array.init cap (fun j ->
              if j < i then t.slots.(j)
              else
                { s_src = -1; s_q = Queue.create (); s_prev = no_slot;
                  s_next = no_slot; s_active = false; s_flat = None;
                  s_mark = -1 })
        in
        t.slots <- fresh
      end;
      t.n_slots <- i + 1;
      i

(* Register [src] at the rotation tail (first-request order; a re-registered
   source re-appends, exactly as the old [rotation @ [src]] did). *)
let slot_of t src =
  match Hashtbl.find_opt t.index src with
  | Some i -> i
  | None ->
      let i = slot_alloc t in
      let sl = t.slots.(i) in
      sl.s_src <- src;
      sl.s_prev <- t.tail;
      sl.s_next <- no_slot;
      sl.s_active <- true;
      sl.s_flat <- None;
      sl.s_mark <- -1;
      if t.tail = no_slot then t.head <- i else t.slots.(t.tail).s_next <- i;
      t.tail <- i;
      t.active <- t.active + 1;
      Hashtbl.add t.index src i;
      i

let unregister t ~src =
  match Hashtbl.find_opt t.index src with
  | None -> false
  | Some i ->
      let sl = t.slots.(i) in
      if not (Queue.is_empty sl.s_q) then false
      else begin
        Hashtbl.remove t.index src;
        if sl.s_prev = no_slot then t.head <- sl.s_next
        else t.slots.(sl.s_prev).s_next <- sl.s_next;
        if sl.s_next = no_slot then t.tail <- sl.s_prev
        else t.slots.(sl.s_next).s_prev <- sl.s_prev;
        sl.s_active <- false;
        if sl.s_flat <> None then t.flats <- t.flats - 1;
        sl.s_flat <- None;
        sl.s_src <- -1;
        t.active <- t.active - 1;
        t.free_slots <- i :: t.free_slots;
        true
      end

let set_flat t ~src client =
  let i = slot_of t src in
  let sl = t.slots.(i) in
  if sl.s_flat = None then t.flats <- t.flats + 1;
  sl.s_flat <- Some client

let sources t =
  let rec go acc i =
    if i = no_slot then List.rev acc else go (t.slots.(i).s_src :: acc) (t.slots.(i).s_next)
  in
  go [] t.head

(* Slot the grant scan starts from: just after the last winner, wrapping;
   the rotation head when no grant happened yet or the last winner has been
   unregistered since. *)
let scan_start t =
  if t.last_granted = -1 then t.head
  else begin
    let i = t.last_slot in
    let i =
      if i >= 0 && i < t.n_slots && t.slots.(i).s_active
         && t.slots.(i).s_src = t.last_granted
      then i
      else
        match Hashtbl.find_opt t.index t.last_granted with
        | Some j ->
            t.last_slot <- j;
            j
        | None -> no_slot
    in
    if i = no_slot then t.head
    else
      let n = t.slots.(i).s_next in
      if n = no_slot then t.head else n
  end

let scan_order t =
  let start = scan_start t in
  if start = no_slot then []
  else begin
    let rec go acc i remaining =
      if remaining = 0 then List.rev acc
      else
        let sl = t.slots.(i) in
        let n = if sl.s_next = no_slot then t.head else sl.s_next in
        go (sl.s_src :: acc) n (remaining - 1)
    in
    go [] start t.active
  end

(* Winning slot at [now]: first source in scan order whose head request has
   arrived.  Allocation-free. *)
let find_winner t ~now =
  let start = scan_start t in
  if start = no_slot then no_slot
  else begin
    let rec go i remaining =
      if remaining = 0 then no_slot
      else
        let sl = t.slots.(i) in
        if (not (Queue.is_empty sl.s_q)) && (Queue.peek sl.s_q).at <= now then i
        else
          let n = if sl.s_next = no_slot then t.head else sl.s_next in
          go n (remaining - 1)
    in
    go start t.active
  end

let min_head_arrival t =
  let rec go acc i =
    if i = no_slot then acc
    else
      let sl = t.slots.(i) in
      let acc =
        if Queue.is_empty sl.s_q then acc
        else
          let a = (Queue.peek sl.s_q).at in
          match acc with None -> Some a | Some b -> Some (min a b)
      in
      go acc sl.s_next
  in
  go None t.head

(* ---- event scheduling with chained coalescing ----

   A schedule at [cycle] can be dropped whenever a live arbitration event
   already sits at some cycle [a <= cycle]: that event runs no earlier than
   the correct next grant cycle is reachable and its handler re-arms so the
   chain lands on every subsequent grant cycle exactly — a grant re-arms at
   the later of [data_done] and the earliest queued arrival (the next grant
   cycle by definition), a no-winner wake re-arms at the earliest arrival,
   and a busy wake re-arms at [free_at] (the bus can't grant sooner).  So
   while any request is queued there is always a live event at or before
   the next grant cycle, chaining forward without skipping one; the
   skipped event could at best have arbitrated at [cycle >= a], which the
   chain already covers.  [armed] tracks the earliest live event's cycle;
   when that event fires the chain's re-arm re-establishes it.  Losing
   track (an untracked later event) only costs a harmless duplicate:
   arbitration is idempotent within a cycle, and a busy or no-winner wake
   recomputes the identical re-arm. *)

let schedule_arbitration t ~cycle =
  if t.leaping || (t.armed <> min_int && t.armed <= cycle) then
    Obs.Counters.incr Obs.Counters.events_coalesced
  else begin
    t.armed <- cycle;
    t.live_events <- t.live_events + 1;
    Ccsim.Sched.at t.sched ~cycle ~rank:Ccsim.Sched.rank_arbitrate t.entry
  end

(* Cycle a grant finishing at [data_done] should re-arm at: [data_done]
   itself if any queued head has arrived by then, else the earliest later
   arrival.  Walks the rotation from the post-winner scan position so the
   early exit hits the next grant's candidate first — in sustained
   contention the walk is O(1). *)
let rearm_after t ~data_done =
  let start = scan_start t in
  let rec go best i remaining =
    if remaining = 0 then best
    else
      let sl = t.slots.(i) in
      let next = if sl.s_next = no_slot then t.head else sl.s_next in
      if Queue.is_empty sl.s_q then go best next (remaining - 1)
      else
        let a = (Queue.peek sl.s_q).at in
        if a <= data_done then data_done
        else go (min best a) next (remaining - 1)
  in
  if start = no_slot then data_done else go max_int start t.active

(* One grant: the winning burst holds the bus until [data_done]; timing,
   fault draws and observability are shared verbatim between the evented
   path and the leap. *)
let do_grant t ~now i =
  let sl = t.slots.(i) in
  let r = Queue.pop sl.s_q in
  t.queued <- t.queued - 1;
  t.last_granted <- sl.s_src;
  t.last_slot <- i;
  let granted_at = now in
  let data_done = granted_at + t.p.Params.addr_phase + r.beats in
  t.free_at <- data_done;
  t.beats <- t.beats + r.beats;
  let mem_latency =
    if r.is_read then t.p.Params.read_latency else t.p.Params.write_latency
  in
  let stall = Fault.Injector.bus_stall t.faults in
  let errored = Fault.Injector.bus_error t.faults in
  let completed = data_done + mem_latency + r.extra_latency + stall in
  if Obs.Trace.enabled t.obs then begin
    Obs.Trace.emit_at t.obs ~cycle:granted_at
      (Obs.Event.Bus_grant
         { source = sl.s_src; beats = r.beats; read = r.is_read; at = r.at;
           granted_at; data_done; completed });
    Obs.Trace.emit_at t.obs ~cycle:data_done
      (Obs.Event.Bus_beat { source = sl.s_src; beats = r.beats })
  end;
  if t.queued > 0 && not t.leaping then
    schedule_arbitration t ~cycle:(rearm_after t ~data_done);
  r.on_grant { Fabric.granted_at; data_done; completed; errored }

(* ---- steady-state leap ----

   When every active source is flat-driven (pure-callback, no coroutine to
   resume on the heap), no sink observes, no fault plan is live and the heap
   holds nothing but this arbiter's own events, the entire remaining grant
   schedule is a closed deterministic system: each grant's callback pushes
   the next request synchronously.  So instead of bouncing every grant
   through the heap, grant scalar-ly in a loop — the virtual time [tcur]
   advances along [free_at] while the heap clock stays behind; stale armed
   events later fire as busy no-ops.  Nothing can be scheduled meanwhile
   ([leaping] suppresses re-arms and flat drivers call [on_done]
   synchronously), so eligibility cannot change mid-loop and the loop drains
   every queue.

   On top of the scalar loop, a recurrence detector fingerprints rotations
   (anchor slot, per-grant relative cycle and burst shape).  Two consecutive
   identical fingerprints a constant [delta] apart, with each source granted
   exactly once per rotation and each driver guaranteeing enough further
   shift-invariant steps, prove the next rotations repeat shifted — so the
   jump advances [n] whole periods in O(active): retime each queued request
   by [n * delta], let each driver absorb [n] grants, and bump the bus
   aggregates. *)

let try_jump t ~tcur =
  let prev = t.rot_prev and cur = t.rot_cur in
  let delta = cur.rb_t0 - prev.rb_t0 in
  if
    delta > 0 && cur.rb_len = t.active && t.queued = t.active
    && rot_equal prev cur
  then begin
    (* Per fingerprint row: the slot granted exactly once per rotation,
       exactly one request queued (the shape the per-source retime below
       relies on), and — the induction's base case — that queued request is
       the last rotation's request for this slot shifted by one period:
       same burst shape, arrival exactly [delta] later.  Together with the
       matching fingerprints (grants and arrivals of the last two rotations
       repeat shifted) and each driver's shift-equivariance certificate,
       this pins the next rotation's arbitration inputs to the current
       rotation's shifted by [delta], so by determinism and
       time-translation invariance every skipped rotation replays. *)
    t.rot_mark <- t.rot_mark + 1;
    let entrained = ref true in
    for k = 0 to cur.rb_len - 1 do
      let sl = t.slots.(cur.rb_slot.(k)) in
      if
        sl.s_mark = t.rot_mark
        || Queue.length sl.s_q <> 1
        ||
        let r = Queue.peek sl.s_q in
        r.at <> cur.rb_t0 + cur.rb_at.(k) + delta
        || r.beats <> cur.rb_beats.(k)
        || (r.extra_latency * 2) + Bool.to_int r.is_read <> cur.rb_shape.(k)
      then entrained := false
      else sl.s_mark <- t.rot_mark
    done;
    if not !entrained then tcur
    else begin
      let n = ref max_int in
      let rec min_uniform i =
        if i = no_slot then ()
        else begin
          let sl = t.slots.(i) in
          (match sl.s_flat with
          | Some fc -> n := min !n (fc.fc_uniform ~delta - 2)
          | None -> n := 0);
          min_uniform sl.s_next
        end
      in
      min_uniform t.head;
      let n = !n in
      if n < 4 then tcur
      else begin
        let dt = n * delta in
        let rot_beats = ref 0 in
        for k = 0 to cur.rb_len - 1 do
          rot_beats := !rot_beats + cur.rb_beats.(k)
        done;
        let rec apply i =
          if i = no_slot then ()
          else begin
            let sl = t.slots.(i) in
            let r = Queue.pop sl.s_q in
            Queue.push { r with at = r.at + dt } sl.s_q;
            (match sl.s_flat with
            | Some fc -> fc.fc_jump ~n ~dt
            | None -> assert false);
            apply sl.s_next
          end
        in
        apply t.head;
        t.free_at <- t.free_at + dt;
        t.beats <- t.beats + (n * !rot_beats);
        Obs.Counters.add Obs.Counters.periods_leaped n;
        (* Post-jump state is the pre-jump state shifted by [dt] exactly, so
           the scalar loop resumes at the shifted current time and replays
           the tail of the schedule verbatim; fingerprinting restarts from
           scratch at the anchor's next grant. *)
        rot_reset prev ~t0:min_int;
        rot_reset cur ~t0:min_int;
        tcur + dt
      end
    end
  end
  else tcur

let leap t ~now =
  t.leaping <- true;
  let anchor = ref no_slot in
  let fingerprinting = ref false in
  let tcur = ref now in
  let continue = ref true in
  while !continue do
    match find_winner t ~now:!tcur with
    | -1 -> (
        match min_head_arrival t with
        | Some a when a > !tcur -> tcur := a
        | Some _ -> assert false (* an arrived head is a winner *)
        | None -> continue := false (* every queue drained *))
    | i ->
        if !anchor = no_slot then anchor := i;
        if i = !anchor then begin
          (* Rotation boundary: compare the two completed fingerprints and
             jump if they recur, then start collecting the next one. *)
          if !fingerprinting && t.rot_cur.rb_t0 <> min_int then begin
            tcur := try_jump t ~tcur:!tcur;
            let p = t.rot_prev in
            t.rot_prev <- t.rot_cur;
            t.rot_cur <- p
          end;
          rot_reset t.rot_cur ~t0:!tcur;
          fingerprinting := true
        end;
        (if !fingerprinting then
           let sl = t.slots.(i) in
           if not (Queue.is_empty sl.s_q) then
             let r = Queue.peek sl.s_q in
             rot_push t.rot_cur ~slot:i ~dt:(!tcur - t.rot_cur.rb_t0)
               ~at:(r.at - t.rot_cur.rb_t0) ~beats:r.beats
               ~shape:((r.extra_latency * 2) + Bool.to_int r.is_read));
        do_grant t ~now:!tcur i;
        tcur := t.free_at
  done;
  t.leaping <- false;
  rot_reset t.rot_prev ~t0:min_int;
  rot_reset t.rot_cur ~t0:min_int

let leap_eligible t =
  t.flats > 0 && t.flats = t.active && t.queued > 0
  && (not (Obs.Trace.enabled t.obs))
  && (not (Fault.Injector.active t.faults))
  && Ccsim.Sched.pending t.sched = t.live_events

let arbitrate t () =
  (* Entry bookkeeping: this event is no longer live; free its arm slot. *)
  let now = Ccsim.Sched.now t.sched in
  t.live_events <- t.live_events - 1;
  if t.armed = now then t.armed <- min_int;
  if t.free_at <= now then begin
    if leap_eligible t then leap t ~now
    else
      match find_winner t ~now with
      | -1 -> (
          (* Bus idle but every queued request arrives later: re-arm at the
             earliest arrival.  (A grant while we slept re-arms on its own.) *)
          match min_head_arrival t with
          | Some a when a > now -> schedule_arbitration t ~cycle:a
          | Some _ | None -> ())
      | i -> do_grant t ~now i
  end
  else begin
    (* Bus busy: pushes that coalesced onto this event still need coverage
       once the bus frees. *)
    if t.queued > 0 then schedule_arbitration t ~cycle:t.free_at
  end

let create ?(obs = Obs.Trace.null) ?(faults = Fault.Injector.none) ~sched p =
  let t =
    {
      sched; p; obs; faults;
      slots = [||];
      n_slots = 0;
      free_slots = [];
      index = Hashtbl.create 16;
      head = no_slot;
      tail = no_slot;
      active = 0;
      flats = 0;
      last_granted = -1;
      last_slot = no_slot;
      free_at = 0;
      beats = 0;
      queued = 0;
      armed = min_int;
      live_events = 0;
      leaping = false;
      entry = ignore;
      rot_mark = 0;
      rot_prev = rot_create ();
      rot_cur = rot_create ();
    }
  in
  (* One arbitrate closure for the arbiter's whole life: scheduling used to
     allocate a fresh partial application per event. *)
  t.entry <- arbitrate t;
  t

let request t ~src ~at ~beats ~is_read ~extra_latency ~on_grant =
  if beats <= 0 then invalid_arg "Arbiter.request: beats must be positive";
  let now = Ccsim.Sched.now t.sched in
  let at = max at now in
  Queue.push { at; beats; is_read; extra_latency; on_grant }
    (t.slots.(slot_of t src)).s_q;
  t.queued <- t.queued + 1;
  schedule_arbitration t ~cycle:(max at t.free_at)
