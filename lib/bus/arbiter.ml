type req = {
  at : int;
  beats : int;
  is_read : bool;
  extra_latency : int;
  on_grant : Fabric.grant -> unit;
}

type t = {
  sched : Ccsim.Sched.t;
  p : Params.t;
  obs : Obs.Trace.t;
  faults : Fault.Injector.t;
  queues : (int, req Queue.t) Hashtbl.t;
  mutable rotation : int list;  (* sources in first-request order *)
  mutable last_granted : int;   (* -1 before any grant *)
  mutable free_at : int;
  mutable beats : int;
  mutable queued : int;
}

let create ?(obs = Obs.Trace.null) ?(faults = Fault.Injector.none) ~sched p =
  {
    sched; p; obs; faults;
    queues = Hashtbl.create 16;
    rotation = [];
    last_granted = -1;
    free_at = 0;
    beats = 0;
    queued = 0;
  }

let params t = t.p
let busy_until t = t.free_at
let total_beats t = t.beats
let queued t = t.queued
let sources t = t.rotation

let unregister t ~src =
  match Hashtbl.find_opt t.queues src with
  | None -> false
  | Some q ->
      if not (Queue.is_empty q) then false
      else begin
        Hashtbl.remove t.queues src;
        t.rotation <- List.filter (fun s -> s <> src) t.rotation;
        true
      end

let queue_of t src =
  match Hashtbl.find_opt t.queues src with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.queues src q;
      t.rotation <- t.rotation @ [ src ];
      q

(* Sources in grant-scan order: round-robin, starting just after the last
   winner.  [rotation] is in first-request order, which also makes the very
   first grant deterministic. *)
let scan_order t =
  match t.last_granted with
  | -1 -> t.rotation
  | last ->
      let rec split acc = function
        | [] -> t.rotation (* winner no longer registered: plain order *)
        | s :: rest when s = last -> rest @ List.rev (s :: acc)
        | s :: rest -> split (s :: acc) rest
      in
      split [] t.rotation

let head_arrival t src =
  match Hashtbl.find_opt t.queues src with
  | None -> None
  | Some q -> ( match Queue.peek_opt q with None -> None | Some r -> Some r.at)

let min_head_arrival t =
  List.fold_left
    (fun acc src ->
      match head_arrival t src with
      | None -> acc
      | Some a -> ( match acc with None -> Some a | Some b -> Some (min a b)))
    None t.rotation

let rec arbitrate t () =
  let now = Ccsim.Sched.now t.sched in
  if t.free_at <= now then
    (* One grant per arbitration: the winning burst holds the bus until
       [data_done], when the next arbitration fires. *)
    let winner =
      List.find_opt
        (fun src ->
          match head_arrival t src with Some a -> a <= now | None -> false)
        (scan_order t)
    in
    match winner with
    | Some src ->
        let q = Hashtbl.find t.queues src in
        let r = Queue.pop q in
        t.queued <- t.queued - 1;
        t.last_granted <- src;
        let granted_at = now in
        let data_done = granted_at + t.p.Params.addr_phase + r.beats in
        t.free_at <- data_done;
        t.beats <- t.beats + r.beats;
        let mem_latency =
          if r.is_read then t.p.Params.read_latency else t.p.Params.write_latency
        in
        let stall = Fault.Injector.bus_stall t.faults in
        let errored = Fault.Injector.bus_error t.faults in
        let completed = data_done + mem_latency + r.extra_latency + stall in
        if Obs.Trace.enabled t.obs then begin
          Obs.Trace.emit_at t.obs ~cycle:granted_at
            (Obs.Event.Bus_grant
               { source = src; beats = r.beats; read = r.is_read; at = r.at;
                 granted_at; data_done; completed });
          Obs.Trace.emit_at t.obs ~cycle:data_done
            (Obs.Event.Bus_beat { source = src; beats = r.beats })
        end;
        if t.queued > 0 then schedule_arbitration t ~cycle:data_done;
        r.on_grant { Fabric.granted_at; data_done; completed; errored }
    | None -> (
        (* Bus idle but every queued request arrives later: re-arm at the
           earliest arrival.  (A grant while we slept re-arms on its own.) *)
        match min_head_arrival t with
        | Some a when a > now -> schedule_arbitration t ~cycle:a
        | Some _ | None -> ())

and schedule_arbitration t ~cycle =
  Ccsim.Sched.at t.sched ~cycle ~rank:Ccsim.Sched.rank_arbitrate (arbitrate t)

let request t ~src ~at ~beats ~is_read ~extra_latency ~on_grant =
  if beats <= 0 then invalid_arg "Arbiter.request: beats must be positive";
  let now = Ccsim.Sched.now t.sched in
  let at = max at now in
  Queue.push { at; beats; is_read; extra_latency; on_grant } (queue_of t src);
  t.queued <- t.queued + 1;
  schedule_arbitration t ~cycle:(max at t.free_at)
