type t =
  | No_protection of { naive_tags : bool }
  | Iopmp of Guard.Iopmp.t
  | Iommu of Guard.Iommu.t
  | Snpu of Guard.Snpu.t
  | Capchecker of Capchecker.Checker.t
  | Capchecker_cached of Capchecker.Cached.t

let guard_of = function
  | No_protection _ -> Guard.Iface.pass_through
  | Iopmp g -> Guard.Iopmp.as_guard g
  | Iommu g -> Guard.Iommu.as_guard g
  | Snpu g -> Guard.Snpu.as_guard g
  | Capchecker c -> Capchecker.Checker.as_guard c
  | Capchecker_cached c -> Capchecker.Cached.as_guard c

let addressing = function
  | No_protection _ | Iopmp _ | Iommu _ | Snpu _ -> Accel.Engine.Plain
  | Capchecker c -> (
      match Capchecker.Checker.mode c with
      | Capchecker.Checker.Fine -> Accel.Engine.Fine_ports
      | Capchecker.Checker.Coarse -> Accel.Engine.Coarse_ids)
  | Capchecker_cached _ -> Accel.Engine.Fine_ports

let naive_tag_writes = function
  | No_protection { naive_tags } -> naive_tags
  | Iopmp _ | Iommu _ | Snpu _ | Capchecker _ | Capchecker_cached _ -> false

let buffer_alignment = function
  | Iommu _ -> Guard.Iommu.page_size
  | No_protection _ | Iopmp _ | Snpu _ | Capchecker _ | Capchecker_cached _ ->
      Tagmem.Mem.granule

let supports_elision = function
  | Capchecker _ | Capchecker_cached _ -> true
  | No_protection _ | Iopmp _ | Iommu _ | Snpu _ -> false

let name = function
  | No_protection { naive_tags } -> if naive_tags then "none(naive-tags)" else "none"
  | Iopmp _ -> "iopmp"
  | Iommu _ -> "iommu"
  | Snpu _ -> "snpu"
  | Capchecker c -> (
      match Capchecker.Checker.mode c with
      | Capchecker.Checker.Fine -> "capchecker-fine"
      | Capchecker.Checker.Coarse -> "capchecker-coarse")
  | Capchecker_cached _ -> "capchecker-cached" 
