(** Temporal safety extension: quarantine-and-sweep revocation.

    The paper's threat model leaves temporal safety to driver discipline
    (assumption 3) and names lifting that restriction as future work.  This
    module implements the standard CHERI answer (Cornucopia-style): freed
    regions go into quarantine instead of being reused immediately; a
    background {e sweep} scans tagged memory and invalidates every live
    capability whose bounds overlap a quarantined region (and evicts matching
    CapChecker entries); only then does the memory return to the allocator.

    After a sweep, a use-after-free is structurally impossible: no valid
    capability to the freed region exists anywhere — not in memory, not in
    the CapChecker, so neither a CPU task nor an accelerator can dereference
    a stale pointer. *)

type t

val create : Tagmem.Mem.t -> t

val quarantine : t -> base:int -> size:int -> unit
(** Park a freed region.  The caller must not return it to its allocator
    until a subsequent {!sweep} has run. *)

val quarantined_bytes : t -> int

type sweep_report = {
  granules_scanned : int;   (** tag-store entries visited *)
  caps_revoked : int;       (** in-memory capabilities invalidated *)
  entries_evicted : int;    (** CapChecker entries invalidated *)
  cycles : int;             (** cost: the sweep reads the tag store at cache-
                                line rate and touches only tagged granules *)
  released : (int * int) list;  (** regions now safe to reuse *)
}

val sweep : ?checker:Capchecker.Checker.t -> ?obs:Obs.Trace.t -> t -> sweep_report
(** Scan, revoke, empty the quarantine.  [obs] (default {!Obs.Trace.null})
    receives one [Cap_revoke] event summarising the sweep. *)

val overlaps : t -> base:int -> top:int -> bool
(** Whether a region intersects the current quarantine (exposed for tests
    and for allocators that want to refuse reuse before a sweep). *)
