(** The protection backend a system configuration plugs into the DMA path.

    The driver is the only component that knows how to {e program} each
    scheme; at run time they are all just {!Guard.Iface.t} values in front of
    the memory controller. *)

type t =
  | No_protection of { naive_tags : bool }
      (** pass-through; [naive_tags] selects the tag-preserving DMA write
          path of a naively integrated CHERI system (forgeable capabilities —
          the Figure 2 attack) *)
  | Iopmp of Guard.Iopmp.t
  | Iommu of Guard.Iommu.t
  | Snpu of Guard.Snpu.t
  | Capchecker of Capchecker.Checker.t
  | Capchecker_cached of Capchecker.Cached.t
      (** the §5.2.3 variant: small cache + in-memory capability table *)

val guard_of : t -> Guard.Iface.t

val addressing : t -> Accel.Engine.addressing
(** How the driver programs accelerator pointer registers for this backend. *)

val naive_tag_writes : t -> bool

val buffer_alignment : t -> int
(** Allocation alignment the driver uses: 4096 for the IOMMU (the one-buffer-
    per-page fairness rule of Fig. 12), {!Tagmem.Mem.granule} otherwise. *)

val supports_elision : t -> bool
(** Whether the driver may skip per-beat adjudication for tasks whose
    footprint {!Analysis} proved in bounds.  Only the CapChecker schemes
    qualify: they adjudicate against exactly the per-buffer capabilities the
    analysis reasons about.  The table-based schemes (IOPMP/IOMMU/sNPU) have
    coarser, aliasing-prone reach, so their checks are never elided. *)

val name : t -> string
