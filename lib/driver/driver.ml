module Backend = Backend
module Revoker = Revoker

type t = {
  mem : Tagmem.Mem.t;
  heap : Tagmem.Alloc.t;
  backend : Backend.t;
  bus : Bus.Params.t;
  n_instances : int;
  busy : bool array;
  obs : Obs.Trace.t;
  faults : Fault.Injector.t;
  mmio : Capchecker.Mmio.t option;
      (* register window of the CapChecker, when one is present: the driver
         programs the hardware through it, never through internal calls *)
}

let create ?(obs = Obs.Trace.null) ?(faults = Fault.Injector.none) ~mem ~heap
    ~backend ~bus ~n_instances () =
  assert (n_instances > 0);
  let mmio =
    match backend with
    | Backend.Capchecker checker -> Some (Capchecker.Mmio.create checker)
    | Backend.No_protection _ | Backend.Iopmp _ | Backend.Iommu _
    | Backend.Snpu _ | Backend.Capchecker_cached _ -> None
  in
  { mem; heap; backend; bus; n_instances; busy = Array.make n_instances false;
    obs; faults; mmio }

let backend t = t.backend
let mem t = t.mem

let free_instances t =
  Array.fold_left (fun acc b -> if b then acc else acc + 1) 0 t.busy

type handle = {
  task_id : int;
  layout : Memops.Layout.t;
  obj_ids : (string * int) list;
  caps : (string * Cheri.Cap.t) list;
}

type allocated = { handle : handle; cycles : int }

type dealloc_report = {
  cycles : int;
  exception_seen : bool;
  denials : Guard.Iface.denial list;
  scrubbed_bytes : int;
}

let malloc_cycles = 40
let free_cycles = 20

let find_free_instance t =
  let rec go idx =
    if idx >= t.n_instances then None
    else if t.busy.(idx) then go (idx + 1)
    else Some idx
  in
  go 0

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* Allocate each buffer of the kernel.  For the IOPMP the task gets one
   contiguous arena; for everything else, individual allocations padded to
   CHERI-representable shapes so a capability never covers a neighbour. *)
let place_buffers t (kernel : Kernel.Ir.t) =
  let align = Backend.buffer_alignment t.backend in
  match t.backend with
  | Backend.Iopmp _ ->
      let shapes =
        List.map
          (fun (b : Kernel.Ir.buf_decl) ->
            let _, padded = Cheri.Bounds_enc.malloc_shape ~length:(Kernel.Ir.buf_decl_bytes b) in
            (b, padded))
          kernel.bufs
      in
      let total = List.fold_left (fun acc (_, p) -> acc + p) 0 shapes in
      let arena = Tagmem.Alloc.malloc t.heap ~align total in
      let _, bindings =
        List.fold_left
          (fun (offset, acc) (decl, padded) ->
            (offset + padded, { Memops.Layout.decl; base = arena + offset } :: acc))
          (0, []) shapes
      in
      (List.rev bindings, [ arena ], 1)
  | Backend.No_protection _ | Backend.Iommu _ | Backend.Snpu _
  | Backend.Capchecker _ | Backend.Capchecker_cached _ ->
      let bindings =
        List.map
          (fun (decl : Kernel.Ir.buf_decl) ->
            let bytes = Kernel.Ir.buf_decl_bytes decl in
            let cap_align, padded = Cheri.Bounds_enc.malloc_shape ~length:bytes in
            let base =
              Tagmem.Alloc.malloc t.heap ~align:(max align cap_align) padded
            in
            { Memops.Layout.decl; base })
          kernel.bufs
      in
      (bindings, List.map (fun b -> b.Memops.Layout.base) bindings, List.length bindings)

let derive_cap (binding : Memops.Layout.binding) =
  let decl = binding.decl in
  let bytes = Kernel.Ir.buf_decl_bytes decl in
  let _, padded = Cheri.Bounds_enc.malloc_shape ~length:bytes in
  let perms =
    if decl.Kernel.Ir.writable then Cheri.Perms.data_rw else Cheri.Perms.data_ro
  in
  let* cap = Cheri.Cap.set_bounds_exact Cheri.Cap.root ~base:binding.base ~length:padded in
  let* cap = Cheri.Cap.with_perms cap perms in
  Ok cap

let mmio_exn t =
  match t.mmio with
  | Some m -> m
  | None -> invalid_arg "Driver: no CapChecker register window in this system"

let program_backend t ~task_id ~bindings =
  let p = t.bus in
  match t.backend with
  | Backend.No_protection _ -> Ok (0, [])
  | Backend.Iopmp g ->
      let base = List.fold_left (fun acc b -> min acc b.Memops.Layout.base) max_int bindings in
      let top =
        List.fold_left
          (fun acc (b : Memops.Layout.binding) ->
            let _, padded =
              Cheri.Bounds_enc.malloc_shape ~length:(Kernel.Ir.buf_decl_bytes b.decl)
            in
            max acc (b.Memops.Layout.base + padded))
          0 bindings
      in
      let* () =
        Guard.Iopmp.add_rule g
          { Guard.Iopmp.source = task_id; base; top; can_read = true; can_write = true }
      in
      Ok (2 * p.Bus.Params.mmio_write, [])
  | Backend.Iommu g ->
      let cycles = ref 0 in
      List.iter
        (fun (b : Memops.Layout.binding) ->
          let bytes = Kernel.Ir.buf_decl_bytes b.decl in
          Guard.Iommu.map_range g ~source:task_id ~base:b.base ~size:bytes ~read:true
            ~write:b.decl.Kernel.Ir.writable;
          (* Page-table entries are memory writes by the driver. *)
          cycles := !cycles + (6 * Guard.Iommu.entries_for_range ~base:b.base ~size:bytes))
        bindings;
      Ok (!cycles + p.Bus.Params.mmio_write, [])
  | Backend.Snpu g ->
      let cycles = ref 0 in
      let rec grant_all = function
        | [] -> Ok ()
        | (b : Memops.Layout.binding) :: rest ->
            let bytes = Kernel.Ir.buf_decl_bytes b.decl in
            let* () = Guard.Snpu.grant g ~source:task_id ~base:b.base ~size:bytes in
            cycles := !cycles + (2 * p.Bus.Params.mmio_write);
            grant_all rest
      in
      let* () = grant_all bindings in
      Ok (!cycles, [])
  | Backend.Capchecker _ ->
      let mmio = mmio_exn t in
      let cycles = ref 0 in
      let rec install_all acc = function
        | [] -> Ok (List.rev acc)
        | ((b : Memops.Layout.binding), obj) :: rest -> (
            let* cap =
              match derive_cap b with
              | Ok c -> Ok c
              | Error e -> Error (Cheri.Cap.error_to_string e)
            in
            (* Deriving the capability costs a few CPU instructions; shipping
               it through the capability interconnect costs the register
               sequence of Mmio.install (stage + key + command). *)
            cycles := !cycles + 3 + Capchecker.Checker.install_cycles t.bus;
            match Capchecker.Mmio.install mmio ~task:task_id ~obj cap with
            | Ok () ->
                Obs.Trace.emit t.obs (Obs.Event.Cap_import { task = task_id; obj });
                install_all ((b.decl.Kernel.Ir.buf_name, cap) :: acc) rest
            | Error _ when Capchecker.Mmio.last_rejected mmio ->
                Error "CapChecker capability table full (driver would stall)"
            | Error msg -> Error msg)
      in
      let numbered = List.mapi (fun obj b -> (b, obj)) bindings in
      let* caps = install_all [] numbered in
      Ok (!cycles, caps)
  | Backend.Capchecker_cached checker ->
      (* Install into the in-memory backing table: the driver writes the
         16-byte entry with a capability store plus a cache invalidate. *)
      let cycles = ref 0 in
      let rec install_all acc = function
        | [] -> Ok (List.rev acc)
        | ((b : Memops.Layout.binding), obj) :: rest -> (
            let* cap =
              match derive_cap b with
              | Ok c -> Ok c
              | Error e -> Error (Cheri.Cap.error_to_string e)
            in
            cycles := !cycles + 3 + 4 + p.Bus.Params.mmio_write;
            match Capchecker.Cached.install checker ~task:task_id ~obj cap with
            | Ok () ->
                Obs.Trace.emit t.obs (Obs.Event.Cap_import { task = task_id; obj });
                install_all ((b.decl.Kernel.Ir.buf_name, cap) :: acc) rest
            | Error msg -> Error msg)
      in
      let numbered = List.mapi (fun obj b -> (b, obj)) bindings in
      let* caps = install_all [] numbered in
      Ok (!cycles, caps)

(* Undo partially installed protection state after a failed allocation, so a
   retry starts from a clean slate. *)
let rollback_backend t ~task_id =
  match t.backend with
  | Backend.No_protection _ -> ()
  | Backend.Iopmp g -> Guard.Iopmp.remove_rules_for g ~source:task_id
  | Backend.Iommu g -> Guard.Iommu.unmap_source g ~source:task_id
  | Backend.Snpu g -> Guard.Snpu.revoke_task g ~source:task_id
  | Backend.Capchecker checker ->
      ignore (Capchecker.Checker.evict_task checker ~task:task_id)
  | Backend.Capchecker_cached checker ->
      ignore (Capchecker.Cached.evict_task checker ~task:task_id)

let allocate t (kernel : Kernel.Ir.t) =
  (* A malformed kernel is a driver-API misuse, not a run-time condition the
     caller should retry: surface it before any buffer is placed. *)
  (match Kernel.Ir.validate kernel with
  | Ok () -> ()
  | Error msg ->
      invalid_arg
        (Printf.sprintf "Driver.allocate: ill-formed kernel %s: %s"
           kernel.Kernel.Ir.name msg));
  if Fault.Injector.alloc_fail t.faults then
    Error "transient allocation fault (injected)"
  else
  match find_free_instance t with
  | None -> Error "all functional units busy"
  | Some task_id -> (
      match place_buffers t kernel with
      | exception Tagmem.Alloc.Out_of_memory n ->
          Error (Printf.sprintf "driver heap exhausted (%d bytes requested)" n)
      | bindings, allocs, n_mallocs -> (
          let obj_ids =
            List.mapi (fun obj (b : Memops.Layout.binding) -> (b.decl.Kernel.Ir.buf_name, obj)) bindings
          in
          match program_backend t ~task_id ~bindings with
          | Error _ as e ->
              (* A failed allocation must release everything it placed:
                 leaked buffers and half-installed capabilities would make
                 each retry start from a worse state than the last. *)
              rollback_backend t ~task_id;
              List.iter (Tagmem.Alloc.free t.heap) allocs;
              e
          | Ok (backend_cycles, caps) ->
              (* Pointer and control registers of the accelerator instance:
                 one register per buffer plus task configuration and start. *)
              let ctrl_cycles = (List.length bindings + 2) * t.bus.Bus.Params.mmio_write in
              t.busy.(task_id) <- true;
              let cycles = (n_mallocs * malloc_cycles) + backend_cycles + ctrl_cycles in
              Obs.Trace.emit t.obs
                (Obs.Event.Task_phase
                   { task = task_id; phase = "driver-alloc"; dur = cycles });
              Ok
                {
                  handle =
                    { task_id; layout = Memops.Layout.make bindings; obj_ids; caps };
                  cycles;
                }))

type retry_policy = {
  max_attempts : int;
  backoff_base : int;
  backoff_factor : int;
}

let default_retry_policy = { max_attempts = 4; backoff_base = 64; backoff_factor = 2 }

let retry_probe_cycles = 16

let backoff_cycles policy ~attempt =
  let rec pow acc n = if n <= 0 then acc else pow (acc * policy.backoff_factor) (n - 1) in
  policy.backoff_base * pow 1 (max 0 (attempt - 1))

let allocate_with_retry ?(policy = default_retry_policy) t kernel =
  let rec go attempt ~penalty =
    match allocate t kernel with
    | Ok a -> Ok ({ a with cycles = a.cycles + penalty }, attempt - 1)
    | Error msg when attempt >= policy.max_attempts -> Error msg
    | Error _ ->
        let backoff = backoff_cycles policy ~attempt in
        Fault.Injector.note_retry t.faults ~backoff;
        Obs.Trace.emit t.obs (Obs.Event.Task_retry { task = -1; attempt; backoff });
        go (attempt + 1) ~penalty:(penalty + retry_probe_cycles + backoff)
  in
  go 1 ~penalty:0

let scrub t handle =
  List.fold_left
    (fun acc (b : Memops.Layout.binding) ->
      let bytes = Kernel.Ir.buf_decl_bytes b.decl in
      Tagmem.Mem.fill t.mem ~addr:b.base ~size:bytes '\000';
      acc + bytes)
    0
    (Memops.Layout.bindings handle.layout)

let deallocate t handle ~denied =
  let p = t.bus in
  let cycles = ref 0 in
  let denials = ref (match denied with Some d -> [ d ] | None -> []) in
  let exception_seen = ref (denied <> None) in
  (* Collect and clear protection state. *)
  (match t.backend with
  | Backend.No_protection _ -> ()
  | Backend.Iopmp g ->
      Guard.Iopmp.remove_rules_for g ~source:handle.task_id;
      cycles := !cycles + p.Bus.Params.mmio_write
  | Backend.Iommu g ->
      Guard.Iommu.unmap_source g ~source:handle.task_id;
      cycles := !cycles + p.Bus.Params.mmio_write
  | Backend.Snpu g ->
      Guard.Snpu.revoke_task g ~source:handle.task_id;
      cycles := !cycles + p.Bus.Params.mmio_write
  | Backend.Capchecker checker ->
      let mmio = mmio_exn t in
      cycles := !cycles + Capchecker.Checker.poll_cycles p;
      let status = Capchecker.Mmio.read mmio ~offset:Capchecker.Mmio.reg_status in
      if Int64.logand status 1L <> 0L then begin
        let mine =
          Capchecker.Checker.exception_log_for checker ~task:handle.task_id
        in
        if mine <> [] then begin
          exception_seen := true;
          denials :=
            !denials
            @ List.filter (fun d -> not (List.mem d !denials)) mine
        end
      end;
      let before = Capchecker.Table.live_count (Capchecker.Checker.table checker) in
      Capchecker.Mmio.write mmio ~offset:Capchecker.Mmio.reg_key
        (Capchecker.Mmio.key_of ~task:handle.task_id ~obj:0);
      Capchecker.Mmio.write mmio ~offset:Capchecker.Mmio.reg_command
        Capchecker.Mmio.cmd_evict_task;
      let after = Capchecker.Table.live_count (Capchecker.Checker.table checker) in
      cycles := !cycles + ((before - after) * Capchecker.Checker.evict_cycles p)
  | Backend.Capchecker_cached checker ->
      let evicted = Capchecker.Cached.evict_task checker ~task:handle.task_id in
      cycles := !cycles + (evicted * 4) + p.Bus.Params.mmio_read);
  (* Scrub buffers on an exception so a follow-up task cannot read leftovers. *)
  let scrubbed_bytes =
    if !exception_seen then begin
      let bytes = scrub t handle in
      cycles := !cycles + (bytes / 8);
      bytes
    end
    else 0
  in
  (* Clear pointer/control registers, free memory, release the instance. *)
  let bindings = Memops.Layout.bindings handle.layout in
  cycles := !cycles + ((List.length bindings + 2) * p.Bus.Params.mmio_write);
  let freed = Hashtbl.create 8 in
  List.iter
    (fun (b : Memops.Layout.binding) ->
      (* Under the arena policy all bindings share one allocation. *)
      let addr =
        match t.backend with Backend.Iopmp _ -> -1 | _ -> b.Memops.Layout.base
      in
      if addr >= 0 && not (Hashtbl.mem freed addr) then begin
        Hashtbl.add freed addr ();
        Tagmem.Alloc.free t.heap addr;
        cycles := !cycles + free_cycles
      end)
    bindings;
  (match t.backend with
  | Backend.Iopmp _ ->
      let arena =
        List.fold_left (fun acc b -> min acc b.Memops.Layout.base) max_int bindings
      in
      Tagmem.Alloc.free t.heap arena;
      cycles := !cycles + free_cycles
  | _ -> ());
  t.busy.(handle.task_id) <- false;
  Obs.Trace.emit t.obs
    (Obs.Event.Task_phase
       { task = handle.task_id; phase = "driver-teardown"; dur = !cycles });
  {
    cycles = !cycles;
    exception_seen = !exception_seen;
    denials = !denials;
    scrubbed_bytes;
  }
