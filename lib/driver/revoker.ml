type t = {
  mem : Tagmem.Mem.t;
  mutable quarantine : (int * int) list;  (* (base, top) *)
}

let create mem = { mem; quarantine = [] }

let quarantine t ~base ~size =
  if size > 0 then t.quarantine <- (base, base + size) :: t.quarantine

let quarantined_bytes t =
  List.fold_left (fun acc (b, top) -> acc + (top - b)) 0 t.quarantine

let overlaps t ~base ~top =
  List.exists (fun (qb, qt) -> base < qt && top > qb) t.quarantine

type sweep_report = {
  granules_scanned : int;
  caps_revoked : int;
  entries_evicted : int;
  cycles : int;
  released : (int * int) list;
}

(* A capability is revoked if any part of its bounds lies in quarantine:
   partially-overlapping capabilities could still reach the freed region. *)
let cap_condemned t (cap : Cheri.Cap.t) =
  cap.Cheri.Cap.tag && overlaps t ~base:cap.Cheri.Cap.base ~top:cap.Cheri.Cap.top

let sweep ?checker ?(obs = Obs.Trace.null) t =
  let granule = Tagmem.Mem.granule in
  let total_granules = Tagmem.Mem.size t.mem / granule in
  let caps_revoked = ref 0 in
  let tagged = ref 0 in
  for g = 0 to total_granules - 1 do
    let addr = g * granule in
    if Tagmem.Mem.tag_at t.mem ~addr then begin
      incr tagged;
      let cap = Tagmem.Mem.load_cap t.mem ~addr in
      if cap_condemned t cap then begin
        Tagmem.Mem.store_cap t.mem ~addr (Cheri.Cap.clear_tag cap);
        incr caps_revoked
      end
    end
  done;
  let entries_evicted = ref 0 in
  (match checker with
  | None -> ()
  | Some checker ->
      let doomed = ref [] in
      Capchecker.Table.iter_live (Capchecker.Checker.table checker) (fun e ->
          if cap_condemned t e.Capchecker.Table.cap then
            doomed := (e.Capchecker.Table.task, e.Capchecker.Table.obj) :: !doomed);
      List.iter
        (fun (task, obj) ->
          if Capchecker.Checker.evict checker ~task ~obj then incr entries_evicted)
        !doomed);
  let released = t.quarantine in
  t.quarantine <- [];
  Obs.Trace.emit obs
    (Obs.Event.Cap_revoke { caps = !caps_revoked; entries = !entries_evicted });
  {
    granules_scanned = total_granules;
    caps_revoked = !caps_revoked;
    entries_evicted = !entries_evicted;
    (* The sweeper streams the packed tag store (one bit per granule, so a
       64-byte line covers 8 KiB of memory) and pays a capability load +
       store only on tagged granules. *)
    cycles = (total_granules / 512) + (!tagged * 4) + (!caps_revoked * 4);
    released;
  }
