(** The trusted software driver (Figure 6).

    The driver is the only software that programs protection hardware and
    accelerator control registers; applications reach it through the
    [allocate] / [deallocate] calls that bracket every accelerator task.
    Everything it does is costed in CPU cycles so the system model can charge
    setup and teardown to the wall clock — the constant overheads that
    dominate short-running benchmarks (the paper's md_knn observation).

    Per-backend programming policy:
    - {b CapChecker}: derive a capability per buffer (bounded exactly to the
      padded allocation, write permission only for writable buffers), install
      it over the capability interconnect keyed by (task, object id); Coarse
      mode additionally composes the object id into the pointer registers.
    - {b IOMMU}: allocate page-aligned, map each buffer's pages.
    - {b IOPMP}: allocate the task's buffers inside one contiguous arena and
      program a single region rule per task (the region file is tiny).
    - {b sNPU}: program one bounds-register pair per buffer inside the NPU.
    - {b none}: nothing to program. *)

module Backend = Backend
(** Re-exported so users address everything through [Driver]. *)

module Revoker = Revoker
(** Temporal-safety extension: quarantine-and-sweep revocation. *)

type t

val create :
  ?obs:Obs.Trace.t ->
  ?faults:Fault.Injector.t ->
  mem:Tagmem.Mem.t ->
  heap:Tagmem.Alloc.t ->
  backend:Backend.t ->
  bus:Bus.Params.t ->
  n_instances:int ->
  unit ->
  t
(** [obs] (default {!Obs.Trace.null}) receives [Cap_import] per capability
    delegated to a task and a [Task_phase] event per allocate/teardown.
    [faults] (default {!Fault.Injector.none}) can fail individual [allocate]
    calls transiently; pair with {!allocate_with_retry}. *)

val backend : t -> Backend.t
val mem : t -> Tagmem.Mem.t
val free_instances : t -> int

type handle = {
  task_id : int;  (** the functional-unit instance owning the task *)
  layout : Memops.Layout.t;
  obj_ids : (string * int) list;
  caps : (string * Cheri.Cap.t) list;
      (** the capabilities delegated for this task (empty for
          capability-less backends) *)
}

type allocated = { handle : handle; cycles : int }

val allocate : t -> Kernel.Ir.t -> (allocated, string) result
(** Find a free functional unit, allocate and (for the CapChecker) pad
    buffers, program the backend and the pointer/control registers.  Fails
    when every instance is busy (the caller decides whether to stall) or the
    backend runs out of entries.  A failed allocation releases everything it
    placed (buffers and partially installed protection state), so retrying is
    always safe.

    @raise Invalid_argument if the kernel fails {!Kernel.Ir.validate} — an
    ill-formed kernel is an API misuse, not a retryable condition. *)

(** {1 Retry with exponential backoff}

    Transient allocation failures (injected faults, momentary table
    pressure) are survivable: the driver waits and retries a bounded number
    of times, doubling the wait each round.  All waiting is costed in CPU
    cycles and charged to the task's alloc phase. *)

type retry_policy = {
  max_attempts : int;  (** total attempts including the first (>= 1) *)
  backoff_base : int;  (** cycles of backoff after the first failure *)
  backoff_factor : int;  (** multiplier applied per subsequent failure *)
}

val default_retry_policy : retry_policy
(** 4 attempts, 64-cycle base, doubling: worst case 64+128+256 = 448 backoff
    cycles plus probe overhead before giving up. *)

val retry_probe_cycles : int
(** Fixed cost of re-entering [allocate] on each retry (register polls). *)

val backoff_cycles : retry_policy -> attempt:int -> int
(** Backoff charged after failed attempt number [attempt] (1-based):
    [backoff_base * backoff_factor ^ (attempt - 1)]. *)

val allocate_with_retry :
  ?policy:retry_policy -> t -> Kernel.Ir.t -> (allocated * int, string) result
(** Like {!allocate}, but retries transient failures per [policy] (default
    {!default_retry_policy}).  On success the returned [cycles] include all
    backoff and probe cycles spent, and the [int] is the number of retries
    that were needed (0 = first attempt succeeded).  Emits a [Task_retry]
    event per retry.  Returns the last error once attempts are exhausted. *)

type dealloc_report = {
  cycles : int;
  exception_seen : bool;
  denials : Guard.Iface.denial list;
  scrubbed_bytes : int;
      (** on an exception all task buffers are cleared before the memory
          returns to the allocator (Fig. 6 ②) *)
}

val deallocate :
  t -> handle -> denied:Guard.Iface.denial option -> dealloc_report
(** Tear the task down: collect the exception state ([denied] is what the
    execution engine observed; the CapChecker is additionally polled over
    MMIO), scrub on exception, evict protection entries, clear control
    registers, release buffers and the functional unit. *)

val malloc_cycles : int
val free_cycles : int
