type config = {
  size_bytes : int;
  line_bytes : int;
  hit_cycles : int;
  miss_cycles : int;
}

let default_config =
  { size_bytes = 16 * 1024; line_bytes = 64; hit_cycles = 1; miss_cycles = 25 }

type t = {
  cfg : config;
  tags : int array;  (* -1 = invalid *)
  obs : Obs.Trace.t;
  core : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(obs = Obs.Trace.null) ?(core = 0) cfg =
  let lines = cfg.size_bytes / cfg.line_bytes in
  assert (lines > 0);
  { cfg; tags = Array.make lines (-1); obs; core; hits = 0; misses = 0 }

let access t ~addr =
  let line = addr / t.cfg.line_bytes in
  let set = line mod Array.length t.tags in
  if t.tags.(set) = line then begin
    t.hits <- t.hits + 1;
    if Obs.Trace.enabled t.obs then
      Obs.Trace.emit t.obs (Obs.Event.Cache_hit { core = t.core; addr });
    t.cfg.hit_cycles
  end
  else begin
    t.misses <- t.misses + 1;
    t.tags.(set) <- line;
    if Obs.Trace.enabled t.obs then
      Obs.Trace.emit t.obs (Obs.Event.Cache_miss { core = t.core; addr });
    t.cfg.miss_cycles
  end

let touch_range t ~addr ~size =
  if size <= 0 then 0
  else
    let first = addr / t.cfg.line_bytes and last = (addr + size - 1) / t.cfg.line_bytes in
    let cycles = ref 0 in
    for line = first to last do
      cycles := !cycles + access t ~addr:(line * t.cfg.line_bytes)
    done;
    !cycles

let hits t = t.hits
let misses t = t.misses

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.hits <- 0;
  t.misses <- 0
