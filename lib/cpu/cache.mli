(** Direct-mapped write-allocate data cache of the CPU core.

    The accelerators in the prototype have {e no} cache (their DMA goes
    straight to the interconnect), so this model is what makes memory-bound
    kernels faster on the CPU than on the accelerator — the effect behind the
    sub-1x speedups of bfs/md_knn/stencil2d in Figure 7. *)

type config = {
  size_bytes : int;      (** total capacity (default 16 KiB) *)
  line_bytes : int;      (** line size (default 64) *)
  hit_cycles : int;      (** default 1 *)
  miss_cycles : int;     (** fill from DRAM (default 25) *)
}

val default_config : config

type t

val create : ?obs:Obs.Trace.t -> ?core:int -> config -> t
(** [obs] (default {!Obs.Trace.null}) receives a [Cache_hit]/[Cache_miss]
    event per access, attributed to track [core] (default 0).  Tracing never
    alters the cycle accounting. *)

val access : t -> addr:int -> int
(** Cycles for one access; updates the tag array. *)

val touch_range : t -> addr:int -> size:int -> int
(** Cycles for streaming sequentially over a range (one access per line). *)

val hits : t -> int
val misses : t -> int
val reset : t -> unit
