type isa = Rv64 | Cheri_rv64

type costs = {
  alu : int;
  imul : int;
  idiv : int;
  fadd : int;
  fmul : int;
  fdiv : int;
  fspec : int;
  branch : int;
}

let default_costs =
  { alu = 1; imul = 3; idiv = 12; fadd = 3; fmul = 4; fdiv = 18; fspec = 24; branch = 1 }

type config = {
  isa : isa;
  cache : Cache.config;
  costs : costs;
  cheri_reg_traffic_period : int;
}

let config isa =
  { isa; cache = Cache.default_config; costs = default_costs;
    cheri_reg_traffic_period = 16 }

type result = {
  cycles : int;
  loads : int;
  stores : int;
  cache_hits : int;
  cache_misses : int;
  trap : string option;
}

let cost_of cfg (c : Kernel.Interp.cost) =
  match c with
  | Alu -> cfg.costs.alu
  | Imul -> cfg.costs.imul
  | Idiv -> cfg.costs.idiv
  | Fadd -> cfg.costs.fadd
  | Fmul -> cfg.costs.fmul
  | Fdiv -> cfg.costs.fdiv
  | Fspec -> cfg.costs.fspec
  | Branch -> cfg.costs.branch
  | Sram -> 1

let copy_bytes_per_cycle cfg =
  match cfg.isa with Rv64 -> 8 | Cheri_rv64 -> 16

let derive_caps layout =
  let caps = Hashtbl.create 16 in
  List.iter
    (fun (b : Memops.Layout.binding) ->
      let decl = b.Memops.Layout.decl in
      let perms =
        if decl.Kernel.Ir.writable then Cheri.Perms.data_rw else Cheri.Perms.data_ro
      in
      let cap =
        match
          Cheri.Cap.set_bounds Cheri.Cap.root ~base:b.Memops.Layout.base
            ~length:(Kernel.Ir.buf_decl_bytes decl)
        with
        | Ok c -> (
            match Cheri.Cap.with_perms c perms with
            | Ok c -> c
            | Error e -> failwith (Cheri.Cap.error_to_string e))
        | Error e -> failwith (Cheri.Cap.error_to_string e)
      in
      Hashtbl.add caps decl.Kernel.Ir.buf_name cap)
    (Memops.Layout.bindings layout);
  caps

let run ?(obs = Obs.Trace.null) cfg mem kernel layout ?(params = []) () =
  let cache = Cache.create ~obs cfg.cache in
  let cycles = ref 0 in
  (* Keep the trace clock in lock-step with the accounted cycles so cache
     events are stamped where they happen; the sink never feeds back. *)
  let t0 = Obs.Trace.now obs in
  let sync () = Obs.Trace.set_now obs (t0 + !cycles) in
  let loads = ref 0 and stores = ref 0 in
  let mem_accesses = ref 0 in
  let caps = match cfg.isa with Cheri_rv64 -> Some (derive_caps layout) | Rv64 -> None in
  let charge_cheri_traffic () =
    match cfg.isa with
    | Cheri_rv64 ->
        incr mem_accesses;
        if !mem_accesses mod cfg.cheri_reg_traffic_period = 0 then incr cycles
    | Rv64 -> incr mem_accesses
  in
  let cheri_check name ~addr ~size kind =
    match caps with
    | None -> ()
    | Some caps -> (
        let cap = Hashtbl.find caps name in
        match Cheri.Cap.access_ok cap ~addr ~size kind with
        | Ok () -> ()
        | Error e ->
            raise
              (Kernel.Interp.Aborted
                 (Printf.sprintf "CHERI CPU trap on %s: %s" name
                    (Cheri.Cap.error_to_string e))))
  in
  let machine =
    {
      Kernel.Interp.load =
        (fun name ~idx ~dependent:_ ->
          let b = Memops.Layout.find layout name in
          let addr = Memops.Layout.elem_addr b idx in
          let size = Kernel.Ir.elem_bytes b.decl.Kernel.Ir.elem in
          cheri_check name ~addr ~size Cheri.Cap.Read;
          incr loads;
          charge_cheri_traffic ();
          sync ();
          cycles := !cycles + Cache.access cache ~addr;
          Memops.Layout.read_elem mem b.decl.Kernel.Ir.elem ~addr);
      store =
        (fun name ~idx value ->
          let b = Memops.Layout.find layout name in
          let addr = Memops.Layout.elem_addr b idx in
          let size = Kernel.Ir.elem_bytes b.decl.Kernel.Ir.elem in
          cheri_check name ~addr ~size Cheri.Cap.Write;
          incr stores;
          charge_cheri_traffic ();
          sync ();
          cycles := !cycles + Cache.access cache ~addr;
          Memops.Layout.write_elem mem b.decl.Kernel.Ir.elem ~addr value);
      copy =
        (fun ~dst ~src ~elems ->
          let db = Memops.Layout.find layout dst in
          let sb = Memops.Layout.find layout src in
          let width = Kernel.Ir.elem_bytes sb.decl.Kernel.Ir.elem in
          let bytes = elems * width in
          cheri_check src ~addr:sb.base ~size:bytes Cheri.Cap.Read;
          cheri_check dst ~addr:db.base ~size:bytes Cheri.Cap.Write;
          let data = Tagmem.Mem.read_bytes mem ~addr:sb.base ~size:bytes in
          Tagmem.Mem.write_bytes mem ~addr:db.base data;
          let w = copy_bytes_per_cycle cfg in
          cycles := !cycles + ((bytes + w - 1) / w);
          sync ();
          cycles := !cycles + Cache.touch_range cache ~addr:sb.base ~size:bytes;
          cycles := !cycles + Cache.touch_range cache ~addr:db.base ~size:bytes);
      tick = (fun c n -> cycles := !cycles + (n * cost_of cfg c));
      param =
        (fun name ->
          match List.assoc_opt name params with
          | Some value -> value
          | None -> invalid_arg ("Cpu.Model.run: unknown param " ^ name));
    }
  in
  let trap =
    match Kernel.Interp.run kernel machine with
    | () -> None
    | exception Kernel.Interp.Aborted reason -> Some reason
  in
  sync ();
  {
    cycles = !cycles;
    loads = !loads;
    stores = !stores;
    cache_hits = Cache.hits cache;
    cache_misses = Cache.misses cache;
    trap;
  }

let cap_setup_cycles cfg ~n_bufs =
  match cfg.isa with Rv64 -> 0 | Cheri_rv64 -> 3 * n_bufs

let init_store_cycles cfg ~bytes =
  ignore cfg;
  (* Streaming stores at one word per cycle plus the write-allocate misses. *)
  (bytes / 8) + (bytes / 64 * 4)

let area_luts = function Rv64 -> 40_000 | Cheri_rv64 -> 44_800
