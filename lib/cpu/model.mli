(** The CPU execution model — the Flute softcore of the prototype.

    Executes a kernel over tagged memory under a per-operation cycle cost
    model plus the data cache, in one of two ISA variants:

    - [Rv64]: the baseline RISC-V CPU.  No checking at all: an out-of-bounds
      index silently corrupts whatever it hits (bounded only by physical
      memory).
    - [Cheri_rv64]: the CHERI-extended CPU.  Every buffer argument is a
      capability derived at call time; every access is checked and a
      violation traps (raises {!Kernel.Interp.Aborted}).  Costs differ from
      the baseline in three calibrated ways: capability derivation at call
      boundaries, periodic extra cycles for capability-register traffic, and
      a 128-bit copy instruction that doubles [Memcpy] throughput — the
      effect that makes `gemm_blocked` {e faster} on the CHERI CPU (§6.3). *)

type isa = Rv64 | Cheri_rv64

type costs = {
  alu : int;
  imul : int;
  idiv : int;
  fadd : int;
  fmul : int;
  fdiv : int;
  fspec : int;
  branch : int;
}

val default_costs : costs

type config = {
  isa : isa;
  cache : Cache.config;
  costs : costs;
  cheri_reg_traffic_period : int;
      (** one extra cycle per this many memory accesses under CHERI
          (capability spill/reload pressure); ignored for [Rv64] *)
}

val config : isa -> config

type result = {
  cycles : int;
  loads : int;
  stores : int;
  cache_hits : int;
  cache_misses : int;
  trap : string option;
      (** [Some reason] when the CHERI CPU trapped on a violation; the
          baseline CPU never traps *)
}

val run :
  ?obs:Obs.Trace.t ->
  config ->
  Tagmem.Mem.t ->
  Kernel.Ir.t ->
  Memops.Layout.t ->
  ?params:(string * Kernel.Value.t) list ->
  unit ->
  result
(** Execute the kernel to completion (or trap) and account cycles.  [obs]
    (default {!Obs.Trace.null}) receives per-access cache events; the trace
    clock is advanced alongside the accounted cycles from whatever value it
    held at entry.  Tracing never alters the result. *)

val cap_setup_cycles : config -> n_bufs:int -> int
(** Call-boundary cost of deriving one bounded capability per buffer
    argument (zero for [Rv64]). *)

val init_store_cycles : config -> bytes:int -> int
(** Cost for the application to stream-initialize a buffer of [bytes]. *)

val area_luts : isa -> int
(** CPU core area (Flute ≈ 40k LUTs; the CHERI extension adds ~12%). *)
