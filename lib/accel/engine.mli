(** Accelerator task execution: functional effects, protection checks and
    trace recording.

    This is the "black-box accelerator" of the paper as seen from its memory
    interface.  The engine interprets the kernel exactly like the CPU model
    does, but every buffer access becomes a DMA transaction: an address is
    {e generated} (never checked by the accelerator itself), submitted to the
    configured guard, and — only if granted — performed against physical
    memory.  A denial aborts the task, mirroring the CapChecker catching the
    access and raising its exception flag. *)

type addressing = Script.addressing =
  | Plain        (** raw physical addresses, no provenance (unguarded, IOMMU,
                     IOPMP, sNPU configurations) *)
  | Coarse_ids   (** object id retrofitted into the top 8 address bits by the
                     trusted driver (CapChecker Coarse) *)
  | Fine_ports   (** per-object port provenance carried out of band
                     (CapChecker Fine) *)

type fastpath =
  | Fp_off       (** adjudicate every access against the guard *)
  | Fp_on of int
      (** skip the guard call and grant at this constant latency.  Sound only
          when the task's whole footprint is statically proven in bounds
          ({!Analysis.proven}) {e and} the guard declares a pure
          constant-latency check path ({!Guard.Iface.const_latency}).  The
          access still counts in [checks] — the modeled hardware would have
          performed it; only the simulator skips — so every reported number
          matches the un-fast-pathed run.  Skips are tallied in
          {!Obs.Counters.accesses_fast_pathed}. *)
  | Fp_check of int
      (** differential oracle: adjudicate anyway and [failwith] if the grant
          differs from what [Fp_on] would have fabricated *)

type task = {
  instance : int;  (** functional-unit instance = interconnect source id *)
  kernel : Kernel.Ir.t;
  layout : Memops.Layout.t;
  params : (string * Kernel.Value.t) list;
  obj_ids : (string * int) list;
      (** object id per buffer, assigned by the driver at allocation *)
}

type outcome = {
  trace : Trace.t;
  denied : Guard.Iface.denial option;
      (** [Some _] if the guard blocked an access; the trace stops there *)
  checks : int;   (** guard adjudications performed *)
  elided : int;   (** adjudications skipped because the task's footprint was
                      statically proven in bounds (see {!Analysis}) *)
  reads : int;
  writes : int;
  ops : int;      (** datapath operations executed *)
}

type ev_outcome = {
  ev_denied : Guard.Iface.denial option;
      (** [Some _] if the guard blocked an access; the stream stops there *)
  ev_checks : int;
  ev_elided : int;
  ev_reads : int;
  ev_writes : int;
  ev_ops : int;
  ev_finish : int;
      (** settle cycle of the instance's last bus transaction (the task's
          contribution to the makespan); [start] if it issued none *)
  ev_failed : bool;
      (** injected bus-error responses exhausted the retry budget; the run is
          lost and the driver decides what to do with the task *)
}
(** Outcome of one event-driven execution (see {!run_event}).  Check, access
    and op counts match what {!run} would report for the same task; there is
    no recorded trace because transactions were issued live. *)

val run :
  ?obs:Obs.Trace.t ->
  ?elide:bool ->
  ?fastpath:fastpath ->
  ?recorder:Script.Recorder.t ->
  mem:Tagmem.Mem.t ->
  guard:Guard.Iface.t ->
  bus:Bus.Params.t ->
  directives:Hls.Directives.t ->
  addressing:addressing ->
  naive_tag_writes:bool ->
  task ->
  outcome
(** [naive_tag_writes] selects the tag-oblivious DMA write path of the
    unguarded CHERI system (see {!Tagmem.Mem.unsafe_write_preserving_tags});
    every guarded configuration must pass [false] — granted writes clear
    tags, which is the CapChecker's anti-forgery rule.

    [obs] (default {!Obs.Trace.null}) is advanced alongside the engine's
    compute-local issue clock (datapath gaps plus burst beats) so that guard
    events emitted during adjudication carry meaningful timestamps; exact bus
    occupancy is only known at replay.  Tracing never alters the recorded DMA
    trace or the outcome.

    [elide] (default [false]) skips guard adjudication entirely: accesses
    resolve to their plain physical address with zero checker latency and are
    counted in [elided] instead of [checks], and a {!Obs.Event.Check_elided}
    event is emitted once the task retires.  Only sound when a static
    analysis has proven the task's whole access footprint inside its granted
    capabilities — {!Soc.Run} gates this on {!Analysis.proven}.

    [fastpath] (default [Fp_off]) replaces adjudication of each access with a
    fabricated grant at the guard's declared constant latency; {!Soc.Run}
    gates it on the same proof plus {!Guard.Iface.const_latency}.  Unlike
    [elide] it models the checker as present (checks counted, latency
    charged) — it is a pure simulator speedup, not a hardware configuration.

    [recorder] accumulates the task's config-independent access script (see
    {!Script}) alongside normal execution; recording never alters the
    outcome. *)

val run_event :
  ?obs:Obs.Trace.t ->
  ?elide:bool ->
  ?fastpath:fastpath ->
  ?recorder:Script.Recorder.t ->
  ?error_retry_limit:int ->
  sched:Ccsim.Sched.t ->
  ic:Bus.Topology.t ->
  start:int ->
  mem:Tagmem.Mem.t ->
  guard:Guard.Iface.t ->
  bus:Bus.Params.t ->
  directives:Hls.Directives.t ->
  addressing:addressing ->
  naive_tag_writes:bool ->
  task ->
  on_done:(ev_outcome -> unit) ->
  unit
(** Event-driven execution: spawns a {!Ccsim.Sched} process at cycle [start]
    that interprets the kernel stepwise, suspending at each memory access to
    contend for the interconnect [ic] (via {!Flow}) instead of accumulating a
    trace for later replay.  Guard adjudication happens at the access's live
    issue point, so a stateful checker (e.g. the cached CapChecker) sees
    checks from concurrent instances interleaved in true bus order.  Burst
    formation replicates {!Trace.add_access} exactly — on a crossbar each
    burst is addressed to the bank of its first beat's physical address —
    and with a single instance on a [Shared] topology the resulting schedule
    is cycle-identical to {!run} followed by {!Replay.run} — the
    differential tests enforce it.

    [on_done] is called from inside the process when the task retires; the
    caller collects outcomes after {!Ccsim.Sched.run} drains.  [obs] is only
    used to emit the task's {!Obs.Event.Check_elided} marker — timestamps come
    from the shared scheduler clock, which the SoC layer mirrors into the
    sink.  [error_retry_limit] is passed to {!Flow.create}. *)
