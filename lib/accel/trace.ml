type event = {
  gap : int;
  kind : Guard.Iface.kind;
  beats : int;
  dependent : bool;
  latency : int;
}

type t = {
  mutable events : event array;
  mutable len : int;
  (* State of the burst being formed, for contiguity detection. *)
  mutable last_end : int;   (* one past the last byte of the previous access *)
  mutable last_bytes : int; (* bytes accumulated in the last event *)
}

let create () =
  { events = Array.make 64 { gap = 0; kind = Guard.Iface.Read; beats = 0;
                             dependent = false; latency = 0 };
    len = 0; last_end = -1; last_bytes = 0 }

let grow t =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) t.events.(0) in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end

let add t e =
  grow t;
  t.events.(t.len) <- e;
  t.len <- t.len + 1;
  t.last_end <- -1;
  t.last_bytes <- 0

let add_access t ~bus ~max_burst ~gap ~kind ~addr ~size ~dependent ~latency =
  let mergeable =
    t.len > 0 && gap = 0 && (not dependent) && addr = t.last_end && t.last_end >= 0
    &&
    let prev = t.events.(t.len - 1) in
    prev.kind = kind && (not prev.dependent)
    && Bus.Params.beats_for bus (t.last_bytes + size) <= max_burst
  in
  if mergeable then begin
    let prev = t.events.(t.len - 1) in
    t.last_bytes <- t.last_bytes + size;
    t.events.(t.len - 1) <- { prev with beats = Bus.Params.beats_for bus t.last_bytes };
    t.last_end <- addr + size
  end
  else begin
    grow t;
    t.events.(t.len) <-
      { gap; kind; beats = Bus.Params.beats_for bus size; dependent; latency };
    t.len <- t.len + 1;
    t.last_end <- addr + size;
    t.last_bytes <- size
  end

let length t = t.len

let get t idx =
  if idx < 0 || idx >= t.len then invalid_arg "Accel.Trace.get";
  t.events.(idx)

let iter f t =
  for idx = 0 to t.len - 1 do
    f t.events.(idx)
  done

let events t = Array.sub t.events 0 t.len

let total_beats t =
  let total = ref 0 in
  for idx = 0 to t.len - 1 do
    total := !total + t.events.(idx).beats
  done;
  !total
