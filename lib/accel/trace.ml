type event = {
  gap : int;
  kind : Guard.Iface.kind;
  beats : int;
  dependent : bool;
  latency : int;
}

type t = {
  mutable events : event array;
  mutable len : int;
  (* State of the burst being formed, for contiguity detection. *)
  mutable last_end : int;   (* one past the last byte of the previous access *)
  mutable last_bytes : int; (* bytes accumulated in the last event *)
}

let create () =
  { events = Array.make 64 { gap = 0; kind = Guard.Iface.Read; beats = 0;
                             dependent = false; latency = 0 };
    len = 0; last_end = -1; last_bytes = 0 }

let grow t =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) t.events.(0) in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end

let add t e =
  grow t;
  t.events.(t.len) <- e;
  t.len <- t.len + 1;
  t.last_end <- -1;
  t.last_bytes <- 0

let add_access t ~bus ~max_burst ~gap ~kind ~addr ~size ~dependent ~latency =
  let mergeable =
    t.len > 0 && gap = 0 && (not dependent) && addr = t.last_end && t.last_end >= 0
    &&
    let prev = t.events.(t.len - 1) in
    prev.kind = kind && (not prev.dependent)
    && Bus.Params.beats_for bus (t.last_bytes + size) <= max_burst
  in
  if mergeable then begin
    let prev = t.events.(t.len - 1) in
    t.last_bytes <- t.last_bytes + size;
    t.events.(t.len - 1) <- { prev with beats = Bus.Params.beats_for bus t.last_bytes };
    t.last_end <- addr + size
  end
  else begin
    grow t;
    t.events.(t.len) <-
      { gap; kind; beats = Bus.Params.beats_for bus size; dependent; latency };
    t.len <- t.len + 1;
    t.last_end <- addr + size;
    t.last_bytes <- size
  end

let length t = t.len

let get t idx =
  if idx < 0 || idx >= t.len then invalid_arg "Accel.Trace.get";
  t.events.(idx)

let iter f t =
  for idx = 0 to t.len - 1 do
    f t.events.(idx)
  done

let events t = Array.sub t.events 0 t.len

let total_beats t =
  let total = ref 0 in
  for idx = 0 to t.len - 1 do
    total := !total + t.events.(idx).beats
  done;
  !total

module Compiled = struct
  (* Kind codes: flat ints so the replay hot loop switches on an array load
     instead of destructuring an event record. *)
  let k_write = 0
  let k_stream_read = 1
  let k_dep_read = 2

  type t = {
    c_gap : int array;
    c_kind : int array;
    c_beats : int array;
    c_latency : int array;
    c_n : int;
    c_bus : Bus.Params.t;
    c_limit : int;  (* outstanding-read limit the clean analysis assumed *)
    c_suffix_beats : int array;
        (* total data beats of events [i..n-1]; length n+1, last entry 0 *)
    c_clean_finish : int array;
        (* For a solo stream on an otherwise idle bus, the schedule of events
           [i..n-1] is invariant under time translation whenever the state
           entering event [i] is "clean": the fabric is free no later than
           the event's candidate cycle and every still-outstanding streaming
           read has already returned by then.  At such an index the whole
           suffix collapses to three precomputed deltas, all relative to the
           candidate cycle [cand]: the stream finishes at
           [cand + c_clean_finish.(i)], the fabric is busy until
           [cand + c_clean_free.(i)], and [c_suffix_beats.(i)] beats move.
           [-1] marks indices where the compile-time solo run was not clean
           and no jump is licensed. *)
    c_clean_free : int array;
  }

  let length c = c.c_n
  let total_beats c = if c.c_n = 0 then 0 else c.c_suffix_beats.(0)
  let bus c = c.c_bus
  let limit c = c.c_limit

  let kind_code (ev : event) =
    match (ev.kind, ev.dependent) with
    | Guard.Iface.Write, _ -> k_write
    | Guard.Iface.Read, false -> k_stream_read
    | Guard.Iface.Read, true -> k_dep_read

  let compile ~bus ~max_outstanding trace =
    let n = trace.len in
    let limit = max 1 max_outstanding in
    let c_gap = Array.make (max n 1) 0
    and c_kind = Array.make (max n 1) 0
    and c_beats = Array.make (max n 1) 0
    and c_latency = Array.make (max n 1) 0
    and c_suffix_beats = Array.make (n + 1) 0
    and c_clean_finish = Array.make (max n 1) (-1)
    and c_clean_free = Array.make (max n 1) 0 in
    for i = 0 to n - 1 do
      let ev = trace.events.(i) in
      c_gap.(i) <- ev.gap;
      c_kind.(i) <- kind_code ev;
      c_beats.(i) <- ev.beats;
      c_latency.(i) <- ev.latency
    done;
    for i = n - 1 downto 0 do
      c_suffix_beats.(i) <- c_beats.(i) + c_suffix_beats.(i + 1)
    done;
    (* Reference solo run under the pure (fault-free, untraced) grant
       formulas, from a zero origin.  [contrib.(i)] is the finish constraint
       event [i] imposes; [cand_at.(i)] its candidate cycle; clean indices
       are detected exactly as the replayer will re-detect them at runtime. *)
    let contrib = Array.make (max n 1) 0 and cand_at = Array.make (max n 1) 0 in
    let addr_phase = bus.Bus.Params.addr_phase in
    let outstanding = Queue.create () in
    let ready = ref 0 and free_at = ref 0 and max_pushed = ref 0 in
    for i = 0 to n - 1 do
      let cand0 = !ready + c_gap.(i) in
      let clean = !free_at <= cand0 && !max_pushed <= cand0 in
      let cand =
        if c_kind.(i) = k_stream_read && Queue.length outstanding >= limit then
          max cand0 (Queue.peek outstanding)
        else cand0
      in
      if c_kind.(i) = k_stream_read && Queue.length outstanding >= limit then
        ignore (Queue.pop outstanding);
      let granted_at = max cand !free_at in
      let data_done = granted_at + addr_phase + c_beats.(i) in
      free_at := data_done;
      let mem_latency =
        if c_kind.(i) = k_write then bus.Bus.Params.write_latency
        else bus.Bus.Params.read_latency
      in
      let completed = data_done + mem_latency + c_latency.(i) in
      cand_at.(i) <- cand;
      if clean then c_clean_finish.(i) <- 0 (* patched in the backward pass *);
      if c_kind.(i) = k_write then begin
        ready := granted_at + 1;
        contrib.(i) <- data_done
      end
      else if c_kind.(i) = k_dep_read then begin
        ready := completed;
        contrib.(i) <- completed
      end
      else begin
        Queue.push completed outstanding;
        if completed > !max_pushed then max_pushed := completed;
        ready := granted_at + 1;
        contrib.(i) <- completed
      end
    done;
    let free_end = !free_at in
    let suffix_max = ref min_int in
    for i = n - 1 downto 0 do
      if contrib.(i) > !suffix_max then suffix_max := contrib.(i);
      if c_clean_finish.(i) >= 0 then begin
        c_clean_finish.(i) <- !suffix_max - cand_at.(i);
        c_clean_free.(i) <- free_end - cand_at.(i)
      end
    done;
    { c_gap; c_kind; c_beats; c_latency; c_n = n; c_bus = bus;
      c_limit = limit; c_suffix_beats; c_clean_finish; c_clean_free }
end
