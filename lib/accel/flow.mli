(** Per-instance DMA flow control for the event-driven core.

    One [Flow.t] tracks what the per-instance state machine of {!Replay}
    tracks — the cycle the datapath may issue its next transaction, the
    completion times of in-flight streaming reads (bounded by the
    synthesized interface's [max_outstanding]), the settle time of the last
    transaction, and the consecutive-error retry budget — but drives a live
    {!Bus.Topology} from inside a {!Ccsim.Sched} process instead of walking a
    recorded trace.  Both the live engine ({!Engine.run_event}) and the
    trace-fed replay ({!Replay.run_event}) issue through it, so the two
    timing paths cannot drift apart.

    All functions must be called from inside the scheduler process that owns
    the flow. *)

type t

exception Failed
(** Raised by {!issue} when [error_retry_limit] consecutive injected bus
    errors exhausted the retry budget: the instance's run is lost and the
    driver decides what to do with the task. *)

val error_turnaround : int
(** Cycles between observing an error response and re-issuing. *)

val create :
  ?error_retry_limit:int ->
  sched:Ccsim.Sched.t ->
  ic:Bus.Topology.t ->
  src:int ->
  start:int ->
  max_outstanding:int ->
  unit ->
  t
(** [error_retry_limit] defaults to 4, matching {!Replay.run}. *)

val issue : ?target:int -> t -> Trace.event -> unit
(** Submit one transaction, suspending the calling process per the event's
    semantics: the request becomes ready [gap] cycles after the previous
    transaction released the datapath (a streaming read additionally waits
    for the oldest in-flight read when the outstanding window is full), and
    after the grant the process resumes at [granted_at + 1] for posted
    writes and streaming reads, or at [completed] for dependent reads.
    Injected error responses re-issue after {!error_turnaround} cycles and
    raise {!Failed} once the budget is spent.  [target] selects the bank on a
    crossbar topology and defaults to the flow's home bank
    ({!Bus.Topology.home_target}), the deterministic fallback for trace-fed
    streams whose events carry no addresses. *)

val ready : t -> int
(** Cycle the datapath may issue its next transaction (= the calling
    process's current cycle between issues). *)

val finish : t -> int
(** Settle cycle of the latest transaction so far ([start] before any). *)

val errors : t -> int
(** Error responses observed (including retried ones). *)
