(** DMA transaction traces.

    The accelerator model executes a task in two phases: {!Engine} interprets
    the kernel, performing functional memory effects and protection checks as
    they occur and recording the stream of bus transactions; {!Replay} then
    schedules the recorded streams of all concurrent instances through the
    shared interconnect to obtain cycle timing.  This split is sound because
    accelerator tasks are independent (threat-model assumption 2: no shared
    mutable state between tasks' functional semantics). *)

type event = {
  gap : int;
      (** datapath compute cycles between this transaction becoming ready and
          the instance's previous activity *)
  kind : Guard.Iface.kind;
  beats : int;       (** data beats on the bus *)
  dependent : bool;  (** pointer-chasing read: blocks the instance *)
  latency : int;     (** checking latency imposed by the guard on this path *)
}

type t

val create : unit -> t
val add : t -> event -> unit

val add_access :
  t ->
  bus:Bus.Params.t ->
  max_burst:int ->
  gap:int ->
  kind:Guard.Iface.kind ->
  addr:int ->
  size:int ->
  dependent:bool ->
  latency:int ->
  unit
(** Append one element access, merging it into the previous event when it
    continues a contiguous same-kind streaming burst with no compute gap and
    the burst-length limit allows (AXI burst formation). *)

val length : t -> int

val get : t -> int -> event
(** [get t i] is the [i]th recorded event, without copying the trace.
    Raises [Invalid_argument] outside [\[0, length t)]. *)

val iter : (event -> unit) -> t -> unit
(** In recording order, without copying.  The replay hot path uses
    {!get}/{!iter}; {!events} stays for callers that want a stable
    snapshot. *)

val events : t -> event array
(** A fresh snapshot of the recorded events (unaffected by later
    {!add}/{!add_access}).  Allocates a copy on every call — prefer
    {!get}/{!iter}/{!length} on hot paths. *)

val total_beats : t -> int
