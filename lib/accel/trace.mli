(** DMA transaction traces.

    The accelerator model executes a task in two phases: {!Engine} interprets
    the kernel, performing functional memory effects and protection checks as
    they occur and recording the stream of bus transactions; {!Replay} then
    schedules the recorded streams of all concurrent instances through the
    shared interconnect to obtain cycle timing.  This split is sound because
    accelerator tasks are independent (threat-model assumption 2: no shared
    mutable state between tasks' functional semantics). *)

type event = {
  gap : int;
      (** datapath compute cycles between this transaction becoming ready and
          the instance's previous activity *)
  kind : Guard.Iface.kind;
  beats : int;       (** data beats on the bus *)
  dependent : bool;  (** pointer-chasing read: blocks the instance *)
  latency : int;     (** checking latency imposed by the guard on this path *)
}

type t

val create : unit -> t
val add : t -> event -> unit

val add_access :
  t ->
  bus:Bus.Params.t ->
  max_burst:int ->
  gap:int ->
  kind:Guard.Iface.kind ->
  addr:int ->
  size:int ->
  dependent:bool ->
  latency:int ->
  unit
(** Append one element access, merging it into the previous event when it
    continues a contiguous same-kind streaming burst with no compute gap and
    the burst-length limit allows (AXI burst formation). *)

val length : t -> int

val get : t -> int -> event
(** [get t i] is the [i]th recorded event, without copying the trace.
    Raises [Invalid_argument] outside [\[0, length t)]. *)

val iter : (event -> unit) -> t -> unit
(** In recording order, without copying.  The replay hot path uses
    {!get}/{!iter}; {!events} stays for callers that want a stable
    snapshot. *)

val events : t -> event array
(** A fresh snapshot of the recorded events (unaffected by later
    {!add}/{!add_access}).  Allocates a copy on every call — prefer
    {!get}/{!iter}/{!length} on hot paths. *)

val total_beats : t -> int

(** Traces preprocessed for replay: events flattened into packed arrays and,
    for every index where a solo stream's remaining schedule is invariant
    under time translation, the whole suffix collapsed to three precomputed
    deltas.  {!Replay.run_compiled} consumes these; the interpretive
    {!Replay.run} stays as the differential oracle (the test suite pins
    cycle-identity between the two). *)
module Compiled : sig
  type trace := t

  val k_write : int
  val k_stream_read : int
  val k_dep_read : int

  type t = {
    c_gap : int array;
    c_kind : int array;  (** {!k_write} / {!k_stream_read} / {!k_dep_read} *)
    c_beats : int array;
    c_latency : int array;
    c_n : int;
    c_bus : Bus.Params.t;
    c_limit : int;
    c_suffix_beats : int array;
        (** total data beats of events [i..n-1]; length [n+1], last entry 0 *)
    c_clean_finish : int array;
        (** At a clean index [i] (see {!compile}), events [i..n-1] replayed
            solo finish at [cand + c_clean_finish.(i)] and leave the fabric
            busy until [cand + c_clean_free.(i)], where [cand] is event
            [i]'s candidate cycle.  [-1] marks non-clean indices. *)
    c_clean_free : int array;
  }

  val compile : bus:Bus.Params.t -> max_outstanding:int -> trace -> t
  (** Preprocess a recorded trace for replay against a fabric with params
      [bus] by an instance with the given streaming-read depth.  Runs one
      reference solo schedule under the pure (fault-free, untraced) grant
      formulas to find the "clean" indices where fast-forwarding is sound:
      entering such an index, the fabric is free no later than the event's
      candidate cycle and every outstanding streaming read has already
      returned, so the suffix timing depends on the candidate cycle alone.
      A compiled trace is only valid for the [bus]/[max_outstanding] it was
      compiled against — {!Replay.run_compiled} asserts both. *)

  val length : t -> int
  val total_beats : t -> int
  val bus : t -> Bus.Params.t
  val limit : t -> int
end
