type t = {
  sched : Ccsim.Sched.t;
  ic : Bus.Topology.t;
  src : int;
  home : int;  (* default target for events with no recorded address *)
  limit : int;
  error_retry_limit : int;
  outstanding : int Queue.t;  (* completion times of in-flight streaming reads *)
  mutable ready : int;
  mutable finish : int;
  mutable errors : int;
  mutable event_retries : int;  (* consecutive error responses on the current event *)
}

exception Failed

let error_turnaround = 8
(* cycles between observing an error response and re-issuing the transaction *)

let create ?(error_retry_limit = 4) ~sched ~ic ~src ~start ~max_outstanding () =
  {
    sched; ic; src;
    home = Bus.Topology.home_target ic ~src;
    limit = max 1 max_outstanding;
    error_retry_limit;
    outstanding = Queue.create ();
    ready = start;
    finish = start;
    errors = 0;
    event_retries = 0;
  }

(* One effect suspension per event, retries included: the fiber parks once,
   the grant callback does the absorption bookkeeping (and any synchronous
   error re-request) itself, and the fiber is woken directly at the cycle
   the instance may proceed.  The event sequence is identical to the old
   two-suspension shape (request submitted at the same program point, the
   wake scheduled from inside [on_grant] with the same cycle/rank/seq) — it
   just skips one continuation capture per transaction, which the contended
   interconnect sweeps feel.  The wake is always strictly in the future:
   [ready] is at least [granted_at + 1]. *)
let issue ?target t (ev : Trace.event) =
  let target = match target with Some tg -> tg | None -> t.home in
  let is_read = ev.Trace.kind = Guard.Iface.Read in
  let streaming = is_read && not ev.Trace.dependent in
  let failed = ref false in
  Ccsim.Sched.suspend t.sched (fun resume ->
      let rec attempt () =
        let cand = t.ready + ev.Trace.gap in
        (* A streaming read with a full outstanding queue must wait for the
           oldest in-flight read to return. *)
        let cand =
          if streaming && Queue.length t.outstanding >= t.limit then begin
            let oldest = Queue.pop t.outstanding in
            max cand oldest
          end
          else cand
        in
        Bus.Topology.request t.ic ~src:t.src ~target ~at:cand
          ~beats:ev.Trace.beats ~is_read ~extra_latency:ev.Trace.latency
          ~on_grant:(fun grant ->
            if grant.Bus.Fabric.errored then begin
              t.errors <- t.errors + 1;
              t.finish <- max t.finish grant.Bus.Fabric.completed;
              if t.event_retries >= t.error_retry_limit then begin
                (* Wake the fiber now so [Failed] raises at the same point
                   (and through the same handler chain) it always did. *)
                failed := true;
                resume ()
              end
              else begin
                t.event_retries <- t.event_retries + 1;
                t.ready <- grant.Bus.Fabric.completed + error_turnaround;
                attempt ()
              end
            end
            else begin
              t.event_retries <- 0;
              (match (ev.Trace.kind, ev.Trace.dependent) with
              | Guard.Iface.Write, _ ->
                  (* Posted write: the instance moves on after the address
                     phase. *)
                  t.ready <- grant.Bus.Fabric.granted_at + 1;
                  t.finish <- max t.finish grant.Bus.Fabric.data_done
              | Guard.Iface.Read, true ->
                  t.ready <- grant.Bus.Fabric.completed;
                  t.finish <- max t.finish grant.Bus.Fabric.completed
              | Guard.Iface.Read, false ->
                  Queue.push grant.Bus.Fabric.completed t.outstanding;
                  t.ready <- grant.Bus.Fabric.granted_at + 1;
                  t.finish <- max t.finish grant.Bus.Fabric.completed);
              Ccsim.Sched.at t.sched ~cycle:t.ready resume
            end)
      in
      attempt ());
  if !failed then raise Failed

let ready t = t.ready
let finish t = t.finish
let errors t = t.errors
