type addressing = Plain | Coarse_ids | Fine_ports

type task = {
  instance : int;
  kernel : Kernel.Ir.t;
  layout : Memops.Layout.t;
  params : (string * Kernel.Value.t) list;
  obj_ids : (string * int) list;
}

type outcome = {
  trace : Trace.t;
  denied : Guard.Iface.denial option;
  checks : int;
  elided : int;
  reads : int;
  writes : int;
  ops : int;
}

(* Raised internally to unwind the interpreter on a guard denial; the denial
   itself is reported in the outcome. *)
exception Denied_access of Guard.Iface.denial

let run ?(obs = Obs.Trace.null) ?(elide = false) ~mem ~guard ~bus ~directives
    ~addressing ~naive_tag_writes task =
  let open Hls.Directives in
  let trace = Trace.create () in
  let pending_ops = ref 0 in
  let total_ops = ref 0 in
  let checks = ref 0 in
  let elided = ref 0 in
  let reads = ref 0 and writes = ref 0 in
  let obj_of name =
    match List.assoc_opt name task.obj_ids with
    | Some obj -> obj
    | None -> invalid_arg ("Accel.Engine: no object id for buffer " ^ name)
  in
  let bus_addr (b : Memops.Layout.binding) name ~byte_offset =
    match addressing with
    | Plain | Fine_ports -> b.base + byte_offset
    | Coarse_ids ->
        Capchecker.Checker.compose_coarse ~obj:(obj_of name) b.base + byte_offset
  in
  let port_of name =
    match addressing with
    | Fine_ports -> Some (obj_of name)
    | Plain | Coarse_ids -> None
  in
  (* Datapath time between transactions: ops since the last access divided by
     the synthesized ops-per-cycle.  Fractional cycles carry over so that a
     wide datapath really does issue back-to-back (gap-0) accesses that merge
     into AXI bursts, instead of every access rounding up to a 1-cycle gap. *)
  let gap_debt = ref 0.0 in
  let take_gap () =
    gap_debt := !gap_debt +. (float_of_int !pending_ops /. directives.compute_ipc);
    pending_ops := 0;
    let gap = int_of_float !gap_debt in
    gap_debt := !gap_debt -. float_of_int gap;
    gap
  in
  (* [plain] is the true physical address (base + offset) the access resolves
     to when the guard is provably redundant: with the task's footprint
     statically proven in bounds (see {!Analysis}), the elide path skips the
     adjudication entirely — no check counted, no checker latency. *)
  let adjudicate ~name ~addr ~plain ~size ~kind =
    if elide then begin
      incr elided;
      (plain, 0)
    end
    else begin
      incr checks;
      let req =
        { Guard.Iface.source = task.instance; port = port_of name; addr; size; kind }
      in
      match guard.Guard.Iface.check req with
      | Guard.Iface.Granted { phys; latency } -> (phys, latency)
      | Guard.Iface.Denied denial -> raise (Denied_access denial)
    end
  in
  let machine =
    {
      Kernel.Interp.load =
        (fun name ~idx ~dependent ->
          let b = Memops.Layout.find task.layout name in
          let width = Kernel.Ir.elem_bytes b.decl.Kernel.Ir.elem in
          let byte_offset = idx * width in
          let addr = bus_addr b name ~byte_offset in
          (* The gap is hoisted so the trace clock sits at the issue point of
             this access when the guard stamps its check events; adjudicate
             never touches the gap state, so the recorded trace is unchanged. *)
          let gap = take_gap () in
          Obs.Trace.advance obs gap;
          let phys, latency =
            adjudicate ~name ~addr ~plain:(b.base + byte_offset) ~size:width
              ~kind:Guard.Iface.Read
          in
          incr reads;
          Trace.add_access trace ~bus ~max_burst:bus.Bus.Params.max_burst
            ~gap ~kind:Guard.Iface.Read ~addr ~size:width ~dependent
            ~latency;
          Obs.Trace.advance obs (Bus.Params.beats_for bus width);
          Memops.Layout.read_elem mem b.decl.Kernel.Ir.elem ~addr:phys);
      store =
        (fun name ~idx value ->
          let b = Memops.Layout.find task.layout name in
          let width = Kernel.Ir.elem_bytes b.decl.Kernel.Ir.elem in
          let byte_offset = idx * width in
          let addr = bus_addr b name ~byte_offset in
          let gap = take_gap () in
          Obs.Trace.advance obs gap;
          let phys, latency =
            adjudicate ~name ~addr ~plain:(b.base + byte_offset) ~size:width
              ~kind:Guard.Iface.Write
          in
          incr writes;
          Trace.add_access trace ~bus ~max_burst:bus.Bus.Params.max_burst
            ~gap ~kind:Guard.Iface.Write ~addr ~size:width
            ~dependent:false ~latency;
          Obs.Trace.advance obs (Bus.Params.beats_for bus width);
          if naive_tag_writes then
            Memops.Layout.write_elem_preserving_tags mem b.decl.Kernel.Ir.elem
              ~addr:phys value
          else Memops.Layout.write_elem mem b.decl.Kernel.Ir.elem ~addr:phys value);
      copy =
        (fun ~dst ~src ~elems ->
          let db = Memops.Layout.find task.layout dst in
          let sb = Memops.Layout.find task.layout src in
          let width = Kernel.Ir.elem_bytes sb.decl.Kernel.Ir.elem in
          let bytes = elems * width in
          if bytes > 0 then begin
            let src_addr = bus_addr sb src ~byte_offset:0 in
            let dst_addr = bus_addr db dst ~byte_offset:0 in
            let copy_gap = ref (take_gap ()) in
            Obs.Trace.advance obs !copy_gap;
            let src_phys, rd_latency =
              adjudicate ~name:src ~addr:src_addr ~plain:sb.base ~size:bytes
                ~kind:Guard.Iface.Read
            in
            let dst_phys, wr_latency =
              adjudicate ~name:dst ~addr:dst_addr ~plain:db.base ~size:bytes
                ~kind:Guard.Iface.Write
            in
            incr reads;
            incr writes;
            (* DMA block move: max_burst-sized bursts back to back. *)
            let beats_left = ref (Bus.Params.beats_for bus bytes) in
            Obs.Trace.advance obs (2 * !beats_left);
            while !beats_left > 0 do
              let beats = min !beats_left bus.Bus.Params.max_burst in
              beats_left := !beats_left - beats;
              Trace.add trace
                { Trace.gap = !copy_gap;
                  kind = Guard.Iface.Read; beats; dependent = false;
                  latency = rd_latency };
              Trace.add trace
                { Trace.gap = 0; kind = Guard.Iface.Write; beats; dependent = false;
                  latency = wr_latency };
              copy_gap := 0
            done;
            let data = Tagmem.Mem.read_bytes mem ~addr:src_phys ~size:bytes in
            if naive_tag_writes then
              Tagmem.Mem.unsafe_write_preserving_tags mem ~addr:dst_phys data
            else Tagmem.Mem.write_bytes mem ~addr:dst_phys data
          end);
      tick =
        (fun _cost n ->
          pending_ops := !pending_ops + n;
          total_ops := !total_ops + n);
      param =
        (fun name ->
          match List.assoc_opt name task.params with
          | Some value -> value
          | None -> invalid_arg ("Accel.Engine: unknown param " ^ name));
    }
  in
  let denied =
    match Kernel.Interp.run task.kernel machine with
    | () -> None
    | exception Denied_access denial -> Some denial
    | exception Tagmem.Mem.Out_of_range { addr; size } ->
        (* An unguarded access escaped physical memory: a bus error. *)
        Some
          { Guard.Iface.code = "bus";
            detail = Printf.sprintf "bus error at 0x%x+%d" addr size }
  in
  if !elided > 0 && Obs.Trace.enabled obs then
    Obs.Trace.emit obs
      (Obs.Event.Check_elided { task = task.instance; count = !elided });
  { trace; denied; checks = !checks; elided = !elided; reads = !reads;
    writes = !writes; ops = !total_ops }
