type addressing = Script.addressing = Plain | Coarse_ids | Fine_ports

(* How adjudication is performed when a static proof covers the task's whole
   footprint and the guard declares a pure constant-latency check path
   (Guard.Iface.const_latency).  [Fp_on l] skips the guard call outright and
   grants at latency [l] — the access still counts as a check, so every
   reported number matches the un-fast-pathed run.  [Fp_check l] calls the
   guard anyway and fails loudly if the grant differs from what the fast path
   would have fabricated: the differential mode's oracle for the purity
   contract. *)
type fastpath = Fp_off | Fp_on of int | Fp_check of int

type task = {
  instance : int;
  kernel : Kernel.Ir.t;
  layout : Memops.Layout.t;
  params : (string * Kernel.Value.t) list;
  obj_ids : (string * int) list;
}

type outcome = {
  trace : Trace.t;
  denied : Guard.Iface.denial option;
  checks : int;
  elided : int;
  reads : int;
  writes : int;
  ops : int;
}

type ev_outcome = {
  ev_denied : Guard.Iface.denial option;
  ev_checks : int;
  ev_elided : int;
  ev_reads : int;
  ev_writes : int;
  ev_ops : int;
  ev_finish : int;
  ev_failed : bool;
}

(* Raised internally to unwind the interpreter on a guard denial; the denial
   itself is reported in the outcome. *)
exception Denied_access of Guard.Iface.denial

(* Functional execution and adjudication are shared between the trace-recording
   and event-driven paths; only the treatment of simulated time differs.  A
   backend receives each transaction after the datapath gap is computed and
   decides when (and against what) adjudication and data movement are timed.
   [access] and [copy] call [adjudicate] exactly once per guard decision and
   return the physical address(es) the data movement must use. *)
type backend = {
  bk_access :
    gap:int ->
    kind:Guard.Iface.kind ->
    addr:int ->
    size:int ->
    dependent:bool ->
    adjudicate:(unit -> int * int) ->
    int;
  bk_copy :
    gap:int ->
    bytes:int ->
    adjudicate_rd:(unit -> int * int) ->
    adjudicate_wr:(unit -> int * int) ->
    int * int;
}

type counters = {
  mutable c_checks : int;
  mutable c_elided : int;
  mutable c_fastpathed : int;
  mutable c_reads : int;
  mutable c_writes : int;
  mutable c_ops : int;
  mutable c_pending_ops : int;
  mutable c_gap_debt : float;
}

let fresh_counters () =
  { c_checks = 0; c_elided = 0; c_fastpathed = 0; c_reads = 0; c_writes = 0;
    c_ops = 0; c_pending_ops = 0; c_gap_debt = 0.0 }

let run_core ~elide ~fastpath ~recorder ~mem ~guard ~directives ~addressing
    ~naive_tag_writes ~counters:c ~backend task =
  let open Hls.Directives in
  let obj_of name =
    match List.assoc_opt name task.obj_ids with
    | Some obj -> obj
    | None -> invalid_arg ("Accel.Engine: no object id for buffer " ^ name)
  in
  let bus_addr (b : Memops.Layout.binding) name ~byte_offset =
    match addressing with
    | Plain | Fine_ports -> b.base + byte_offset
    | Coarse_ids ->
        Capchecker.Checker.compose_coarse ~obj:(obj_of name) b.base + byte_offset
  in
  let port_of name =
    match addressing with
    | Fine_ports -> Some (obj_of name)
    | Plain | Coarse_ids -> None
  in
  (* Datapath time between transactions: ops since the last access divided by
     the synthesized ops-per-cycle.  Fractional cycles carry over so that a
     wide datapath really does issue back-to-back (gap-0) accesses that merge
     into AXI bursts, instead of every access rounding up to a 1-cycle gap. *)
  let take_gap () =
    c.c_gap_debt <-
      c.c_gap_debt +. (float_of_int c.c_pending_ops /. directives.compute_ipc);
    c.c_pending_ops <- 0;
    let gap = int_of_float c.c_gap_debt in
    c.c_gap_debt <- c.c_gap_debt -. float_of_int gap;
    gap
  in
  (* [plain] is the true physical address (base + offset) the access resolves
     to when the guard is provably redundant: with the task's footprint
     statically proven in bounds (see {!Analysis}), the elide path skips the
     adjudication entirely — no check counted, no checker latency. *)
  let adjudicate ~name ~addr ~plain ~size ~kind () =
    if elide then begin
      c.c_elided <- c.c_elided + 1;
      (plain, 0)
    end
    else begin
      c.c_checks <- c.c_checks + 1;
      match fastpath with
      | Fp_on latency ->
          (* Proven footprint + pure guard: the grant is a foregone
             conclusion, so fabricate it.  Still counted as a check — the
             hardware would have performed it; only the simulator skips. *)
          c.c_fastpathed <- c.c_fastpathed + 1;
          (plain, latency)
      | Fp_off | Fp_check _ -> (
          let req =
            { Guard.Iface.source = task.instance; port = port_of name; addr; size; kind }
          in
          match guard.Guard.Iface.check req with
          | Guard.Iface.Granted { phys; latency } ->
              (match fastpath with
              | Fp_check l when phys <> plain || latency <> l ->
                  failwith
                    (Printf.sprintf
                       "Accel.Engine: fast-path divergence on %s: guard \
                        granted (phys=0x%x, latency=%d), fast path would \
                        fabricate (phys=0x%x, latency=%d)"
                       name phys latency plain l)
              | _ -> ());
              (phys, latency)
          | Guard.Iface.Denied denial -> raise (Denied_access denial))
    end
  in
  let machine =
    {
      Kernel.Interp.load =
        (fun name ~idx ~dependent ->
          let b = Memops.Layout.find task.layout name in
          let width = Kernel.Ir.elem_bytes b.decl.Kernel.Ir.elem in
          let byte_offset = idx * width in
          let addr = bus_addr b name ~byte_offset in
          (* The gap is hoisted so the backend's clock sits at the issue point
             of this access when the guard stamps its check events; adjudicate
             never touches the gap state, so timing is backend-independent. *)
          let gap = take_gap () in
          (match recorder with
          | Some r ->
              Script.Recorder.access r ~gap ~kind:Guard.Iface.Read ~name
                ~off:byte_offset ~size:width ~dependent ~ops:c.c_ops
          | None -> ());
          let phys =
            backend.bk_access ~gap ~kind:Guard.Iface.Read ~addr ~size:width
              ~dependent
              ~adjudicate:
                (adjudicate ~name ~addr ~plain:(b.base + byte_offset) ~size:width
                   ~kind:Guard.Iface.Read)
          in
          c.c_reads <- c.c_reads + 1;
          Memops.Layout.read_elem mem b.decl.Kernel.Ir.elem ~addr:phys);
      store =
        (fun name ~idx value ->
          let b = Memops.Layout.find task.layout name in
          let width = Kernel.Ir.elem_bytes b.decl.Kernel.Ir.elem in
          let byte_offset = idx * width in
          let addr = bus_addr b name ~byte_offset in
          let gap = take_gap () in
          (match recorder with
          | Some r ->
              Script.Recorder.access r ~gap ~kind:Guard.Iface.Write ~name
                ~off:byte_offset ~size:width ~dependent:false ~ops:c.c_ops
          | None -> ());
          let phys =
            backend.bk_access ~gap ~kind:Guard.Iface.Write ~addr ~size:width
              ~dependent:false
              ~adjudicate:
                (adjudicate ~name ~addr ~plain:(b.base + byte_offset) ~size:width
                   ~kind:Guard.Iface.Write)
          in
          c.c_writes <- c.c_writes + 1;
          if naive_tag_writes then
            Memops.Layout.write_elem_preserving_tags mem b.decl.Kernel.Ir.elem
              ~addr:phys value
          else Memops.Layout.write_elem mem b.decl.Kernel.Ir.elem ~addr:phys value);
      copy =
        (fun ~dst ~src ~elems ->
          let db = Memops.Layout.find task.layout dst in
          let sb = Memops.Layout.find task.layout src in
          let width = Kernel.Ir.elem_bytes sb.decl.Kernel.Ir.elem in
          let bytes = elems * width in
          if bytes > 0 then begin
            let src_addr = bus_addr sb src ~byte_offset:0 in
            let dst_addr = bus_addr db dst ~byte_offset:0 in
            let gap = take_gap () in
            (match recorder with
            | Some r ->
                Script.Recorder.copy r ~gap ~bytes ~src ~dst ~ops:c.c_ops
            | None -> ());
            let src_phys, dst_phys =
              backend.bk_copy ~gap ~bytes
                ~adjudicate_rd:
                  (adjudicate ~name:src ~addr:src_addr ~plain:sb.base ~size:bytes
                     ~kind:Guard.Iface.Read)
                ~adjudicate_wr:
                  (adjudicate ~name:dst ~addr:dst_addr ~plain:db.base ~size:bytes
                     ~kind:Guard.Iface.Write)
            in
            c.c_reads <- c.c_reads + 1;
            c.c_writes <- c.c_writes + 1;
            let data = Tagmem.Mem.read_bytes mem ~addr:src_phys ~size:bytes in
            if naive_tag_writes then
              Tagmem.Mem.unsafe_write_preserving_tags mem ~addr:dst_phys data
            else Tagmem.Mem.write_bytes mem ~addr:dst_phys data
          end);
      tick =
        (fun _cost n ->
          c.c_pending_ops <- c.c_pending_ops + n;
          c.c_ops <- c.c_ops + n);
      param =
        (fun name ->
          match List.assoc_opt name task.params with
          | Some value -> value
          | None -> invalid_arg ("Accel.Engine: unknown param " ^ name));
    }
  in
  match Kernel.Interp.run task.kernel machine with
  | () -> None
  | exception Denied_access denial -> Some denial
  | exception Tagmem.Mem.Out_of_range { addr; size } ->
      (* An unguarded access escaped physical memory: a bus error. *)
      Some
        { Guard.Iface.code = "bus";
          detail = Printf.sprintf "bus error at 0x%x+%d" addr size }

let run ?(obs = Obs.Trace.null) ?(elide = false) ?(fastpath = Fp_off) ?recorder
    ~mem ~guard ~bus ~directives ~addressing ~naive_tag_writes task =
  let trace = Trace.create () in
  let backend =
    {
      bk_access =
        (fun ~gap ~kind ~addr ~size ~dependent ~adjudicate ->
          Obs.Trace.advance obs gap;
          let phys, latency = adjudicate () in
          Trace.add_access trace ~bus ~max_burst:bus.Bus.Params.max_burst ~gap
            ~kind ~addr ~size ~dependent ~latency;
          Obs.Trace.advance obs (Bus.Params.beats_for bus size);
          phys);
      bk_copy =
        (fun ~gap ~bytes ~adjudicate_rd ~adjudicate_wr ->
          Obs.Trace.advance obs gap;
          let src_phys, rd_latency = adjudicate_rd () in
          let dst_phys, wr_latency = adjudicate_wr () in
          (* DMA block move: max_burst-sized bursts back to back. *)
          let beats_left = ref (Bus.Params.beats_for bus bytes) in
          Obs.Trace.advance obs (2 * !beats_left);
          let copy_gap = ref gap in
          while !beats_left > 0 do
            let beats = min !beats_left bus.Bus.Params.max_burst in
            beats_left := !beats_left - beats;
            Trace.add trace
              { Trace.gap = !copy_gap;
                kind = Guard.Iface.Read; beats; dependent = false;
                latency = rd_latency };
            Trace.add trace
              { Trace.gap = 0; kind = Guard.Iface.Write; beats; dependent = false;
                latency = wr_latency };
            copy_gap := 0
          done;
          (src_phys, dst_phys));
    }
  in
  let c = fresh_counters () in
  let denied =
    run_core ~elide ~fastpath ~recorder ~mem ~guard ~directives ~addressing
      ~naive_tag_writes ~counters:c ~backend task
  in
  if c.c_elided > 0 && Obs.Trace.enabled obs then
    Obs.Trace.emit obs
      (Obs.Event.Check_elided { task = task.instance; count = c.c_elided });
  if c.c_fastpathed > 0 then
    Obs.Counters.add Obs.Counters.accesses_fast_pathed c.c_fastpathed;
  { trace; denied; checks = c.c_checks; elided = c.c_elided; reads = c.c_reads;
    writes = c.c_writes; ops = c.c_ops }

(* State of the burst being formed by the event backend, mirroring the merge
   rule of {!Trace.add_access}: back-to-back (gap-0) same-kind independent
   accesses to contiguous addresses coalesce into one AXI burst, and the
   merged burst keeps the first access's checker latency. *)
type pending_burst = {
  pb_gap : int;
  pb_kind : Guard.Iface.kind;
  pb_dependent : bool;
  pb_latency : int;
  pb_target : int; (* bank of the first beat; a burst never switches banks *)
  mutable pb_end : int;    (* one past the last byte merged so far *)
  mutable pb_bytes : int;
}

let run_event ?(obs = Obs.Trace.null) ?(elide = false) ?(fastpath = Fp_off)
    ?recorder ?error_retry_limit ~sched ~ic ~start ~mem ~guard ~bus ~directives
    ~addressing ~naive_tag_writes task ~on_done =
  Ccsim.Sched.spawn sched ~at:start (fun () ->
      let flow =
        Flow.create ?error_retry_limit ~sched ~ic ~src:task.instance ~start
          ~max_outstanding:directives.Hls.Directives.max_outstanding ()
      in
      let max_burst = bus.Bus.Params.max_burst in
      let pending = ref None in
      let flush () =
        match !pending with
        | None -> ()
        | Some p ->
            pending := None;
            Flow.issue flow ~target:p.pb_target
              { Trace.gap = p.pb_gap; kind = p.pb_kind;
                beats = Bus.Params.beats_for bus p.pb_bytes;
                dependent = p.pb_dependent; latency = p.pb_latency }
      in
      let backend =
        {
          bk_access =
            (fun ~gap ~kind ~addr ~size ~dependent ~adjudicate ->
              let mergeable =
                match !pending with
                | Some p ->
                    gap = 0 && (not dependent) && addr = p.pb_end
                    && p.pb_kind = kind && (not p.pb_dependent)
                    && Bus.Params.beats_for bus (p.pb_bytes + size) <= max_burst
                | None -> false
              in
              if mergeable then begin
                (* Adjudicated like every access (check counts and checker
                   state must not depend on burst formation), but the merged
                   burst keeps the first access's latency. *)
                let phys, _latency = adjudicate () in
                (match !pending with
                | Some p ->
                    p.pb_bytes <- p.pb_bytes + size;
                    p.pb_end <- addr + size
                | None -> assert false);
                phys
              end
              else begin
                flush ();
                Ccsim.Sched.wait sched gap;
                let phys, latency = adjudicate () in
                pending :=
                  Some
                    { pb_gap = gap; pb_kind = kind; pb_dependent = dependent;
                      pb_latency = latency;
                      pb_target = Bus.Topology.target_for ic ~addr:phys;
                      pb_end = addr + size; pb_bytes = size };
                phys
              end);
          bk_copy =
            (fun ~gap ~bytes ~adjudicate_rd ~adjudicate_wr ->
              flush ();
              Ccsim.Sched.wait sched gap;
              let src_phys, rd_latency = adjudicate_rd () in
              let dst_phys, wr_latency = adjudicate_wr () in
              (* DMA block move: max_burst-sized bursts back to back, each
                 chunk addressed to the bank its first beat lives in. *)
              let beats_left = ref (Bus.Params.beats_for bus bytes) in
              let copy_gap = ref gap in
              let off = ref 0 in
              while !beats_left > 0 do
                let beats = min !beats_left max_burst in
                beats_left := !beats_left - beats;
                Flow.issue flow
                  ~target:(Bus.Topology.target_for ic ~addr:(src_phys + !off))
                  { Trace.gap = !copy_gap;
                    kind = Guard.Iface.Read; beats; dependent = false;
                    latency = rd_latency };
                Flow.issue flow
                  ~target:(Bus.Topology.target_for ic ~addr:(dst_phys + !off))
                  { Trace.gap = 0; kind = Guard.Iface.Write; beats;
                    dependent = false; latency = wr_latency };
                copy_gap := 0;
                off := !off + (beats * bus.Bus.Params.beat_bytes)
              done;
              (src_phys, dst_phys));
        }
      in
      let c = fresh_counters () in
      let failed = ref false in
      let denied =
        match
          run_core ~elide ~fastpath ~recorder ~mem ~guard ~directives
            ~addressing ~naive_tag_writes ~counters:c ~backend task
        with
        | denied -> (
            (* A denial truncates the stream, but the burst already formed
               before the denied access was committed and still transfers. *)
            match flush () with
            | () -> denied
            | exception Flow.Failed ->
                failed := true;
                denied)
        | exception Flow.Failed ->
            failed := true;
            None
      in
      if c.c_elided > 0 && Obs.Trace.enabled obs then
        Obs.Trace.emit obs
          (Obs.Event.Check_elided { task = task.instance; count = c.c_elided });
      if c.c_fastpathed > 0 then
        Obs.Counters.add Obs.Counters.accesses_fast_pathed c.c_fastpathed;
      on_done
        { ev_denied = denied; ev_checks = c.c_checks; ev_elided = c.c_elided;
          ev_reads = c.c_reads; ev_writes = c.c_writes; ev_ops = c.c_ops;
          ev_finish = Flow.finish flow; ev_failed = !failed })
