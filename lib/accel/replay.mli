(** Timing replay: schedule the recorded DMA streams of all concurrent
    functional-unit instances through the shared interconnect.

    Models exactly the contention the paper's prototype exhibits: one grant
    per cycle on the AXI fabric, posted writes, pipelined streaming reads up
    to the FU's outstanding limit, and dependent (pointer-chasing) reads that
    stall their instance for the full round trip — including the guard's
    checking latency, which is otherwise hidden under pipelining. *)

type result = {
  makespan : int;
      (** cycles from start until the last instance's last transaction
          completes *)
  per_instance : (int * int) list;
      (** (instance id, completion cycle) *)
  bus_beats : int;  (** total data beats moved *)
  bus_errors : int;
      (** injected error responses observed (each re-issues the transaction) *)
  failed : int list;
      (** instances that exhausted the per-event error-retry budget; their
          remaining events were abandoned *)
}

type stream = {
  instance : int;
  trace : Trace.t;
  max_outstanding : int;
      (** this FU's streaming-read depth — mixed systems combine
          accelerators with different interface quality *)
}

val run : ?error_retry_limit:int -> Bus.Fabric.t -> start:int -> stream list -> result
(** Replay every stream beginning at cycle [start].  Instances arbitrate in
    earliest-ready order (FIFO).  An empty trace completes at [start].

    An errored grant (injected bus fault) is re-issued after a fixed
    turnaround; after [error_retry_limit] (default 4) consecutive errors on
    the same event the instance is marked failed and abandons its remaining
    events.  Without fault injection no grant errors and behaviour is
    identical to the error-free scheduler. *)

type cstream = { cinstance : int; ctrace : Trace.Compiled.t }

val run_compiled :
  ?error_retry_limit:int -> Bus.Fabric.t -> start:int -> cstream list -> result
(** {!run} over precompiled traces: cycle-identical by construction (the
    test suite pins it) — per-event scheduling mirrors {!run} exactly, over
    packed arrays instead of event records, and issues the same fabric
    requests in the same order, so even injected-fault RNG draws line up.
    On a {!Bus.Fabric.quiescent} fabric, once a single unfinished stream
    remains and its state is clean at a compile-clean index, the remaining
    suffix is fast-forwarded in one jump (counted in
    {!Obs.Counters.segments_replayed}); a solo stream on a fresh fabric
    replays in O(1).  Every compiled trace must have been compiled against
    this fabric's bus parameters (asserted). *)

val run_event :
  ?error_retry_limit:int ->
  sched:Ccsim.Sched.t ->
  ic:Bus.Topology.t ->
  start:int ->
  stream list ->
  result
(** Replay every stream through the event-driven core: one {!Flow} process
    per instance feeds its recorded trace to the interconnect topology, and
    the scheduler is drained before the result is assembled ([sched] and
    [ic] must be fresh and private to this call).  Per-event semantics are
    identical to {!run}; what changes is the arbitration policy — grants
    rotate round-robin among contending sources instead of following the
    global earliest-ready order — and therefore the interleaving of fault
    draws under injection.  Recorded events carry no addresses, so on a
    crossbar every stream issues to its home bank
    ({!Bus.Topology.home_target}).  [bus_beats] is read from the topology. *)
