(* Recorded access scripts: the config-independent skeleton of a kernel's
   execution.

   Interpreting a kernel is the expensive half of the accelerator model —
   per-element datapath ops, functional memory effects, value arithmetic.
   But everything the *timing* layers consume is a pure function of the
   access sequence the interpretation emits: (gap, buffer, offset, size,
   kind, dependence) per transaction, plus op counts.  That sequence depends
   only on the kernel, its parameters and the synthesized directives — never
   on the protection config, the layout bases, or the guard — so it can be
   recorded once and re-derived into per-config traces ({!to_trace}) or
   driven through the live event core ({!drive_event}) without interpreting
   again.

   Exactness is the whole contract: both derivations mirror {!Engine}'s
   backend logic operation for operation — same adjudication call order
   against the same guard (so even stateful schemes like the cached
   CapChecker or the shim fleet see the identical check sequence), same
   burst-formation decisions against the per-system bus addresses, same
   counter updates on the same schedule (so a denial mid-script truncates
   checks/reads/writes/ops exactly where the interpreter would), and the
   same bus-error behaviour for accesses escaping physical memory.  The
   differential suite pins byte-for-byte equality against the interpretive
   engine. *)

type addressing = Plain | Coarse_ids | Fine_ports

type op =
  | Access of {
      a_gap : int;
      a_kind : Guard.Iface.kind;
      a_buf : int;
      a_off : int;   (* byte offset within the buffer *)
      a_size : int;
      a_dependent : bool;
      a_ops : int;   (* datapath ops executed before this access issued *)
    }
  | Copy of {
      y_gap : int;
      y_bytes : int;
      y_src : int;
      y_dst : int;
      y_ops : int;
    }

type t = {
  s_bufs : string array;  (* buffer index -> declared name *)
  s_ops : op array;
  s_total_ops : int;
}

let length s = Array.length s.s_ops
let total_ops s = s.s_total_ops

module Recorder = struct
  type t = {
    mutable r_ops : op list;  (* reversed *)
    mutable r_count : int;
    r_names : (string, int) Hashtbl.t;
    mutable r_bufs : string list;  (* reversed *)
  }

  let create () =
    { r_ops = []; r_count = 0; r_names = Hashtbl.create 8; r_bufs = [] }

  let buf_idx r name =
    match Hashtbl.find_opt r.r_names name with
    | Some idx -> idx
    | None ->
        let idx = Hashtbl.length r.r_names in
        Hashtbl.add r.r_names name idx;
        r.r_bufs <- name :: r.r_bufs;
        idx

  let access r ~gap ~kind ~name ~off ~size ~dependent ~ops =
    r.r_ops <-
      Access
        { a_gap = gap; a_kind = kind; a_buf = buf_idx r name; a_off = off;
          a_size = size; a_dependent = dependent; a_ops = ops }
      :: r.r_ops;
    r.r_count <- r.r_count + 1

  let copy r ~gap ~bytes ~src ~dst ~ops =
    r.r_ops <-
      Copy
        { y_gap = gap; y_bytes = bytes; y_src = buf_idx r src;
          y_dst = buf_idx r dst; y_ops = ops }
      :: r.r_ops;
    r.r_count <- r.r_count + 1

  let finalize r ~total_ops ~complete =
    if not complete then None
    else
      Some
        { s_bufs = Array.of_list (List.rev r.r_bufs);
          s_ops =
            (let arr = Array.make r.r_count (Copy { y_gap = 0; y_bytes = 0; y_src = 0; y_dst = 0; y_ops = 0 }) in
             List.iteri (fun i op -> arr.(r.r_count - 1 - i) <- op) r.r_ops;
             arr);
          s_total_ops = total_ops }
end

type adjudication =
  | Adj_live of Guard.Iface.t
  | Adj_fastpath of int
  | Adj_elide

(* Per-derivation environment: buffer bases/ids resolved once against this
   system's layout, plus the counters both derivations maintain on the
   interpreter's exact schedule. *)
type env = {
  e_base : int array;      (* plain physical base per buffer *)
  e_bus_base : int array;  (* bus-visible base (Coarse_ids composes the id) *)
  e_port : int option array;
  e_mem_size : int;
  e_source : int;
  e_adj : adjudication;
  mutable v_checks : int;
  mutable v_elided : int;
  mutable v_fastpathed : int;
  mutable v_reads : int;
  mutable v_writes : int;
  mutable v_ops : int;
}

exception Denied of Guard.Iface.denial

let make_env s ~mem_size ~layout ~obj_ids ~addressing ~source adj =
  let n = Array.length s.s_bufs in
  let e_base = Array.make n 0
  and e_bus_base = Array.make n 0
  and e_port = Array.make n None in
  Array.iteri
    (fun i name ->
      let b = Memops.Layout.find layout name in
      let obj_of () =
        match List.assoc_opt name obj_ids with
        | Some obj -> obj
        | None -> invalid_arg ("Accel.Engine: no object id for buffer " ^ name)
      in
      e_base.(i) <- b.Memops.Layout.base;
      (e_bus_base.(i) <-
         (match addressing with
         | Plain | Fine_ports -> b.Memops.Layout.base
         | Coarse_ids ->
             Capchecker.Checker.compose_coarse ~obj:(obj_of ())
               b.Memops.Layout.base));
      e_port.(i) <-
        (match addressing with
        | Fine_ports -> Some (obj_of ())
        | Plain | Coarse_ids -> None))
    s.s_bufs;
  { e_base; e_bus_base; e_port; e_mem_size = mem_size; e_source = source;
    e_adj = adj; v_checks = 0; v_elided = 0; v_fastpathed = 0; v_reads = 0;
    v_writes = 0; v_ops = 0 }

(* One guard decision, mirroring {!Engine}'s [adjudicate] exactly: counter
   updates first, then the outcome (a denial unwinds with counters already
   advanced, as the interpreter's would). *)
let adjudicate env ~buf ~addr ~plain ~size ~kind =
  match env.e_adj with
  | Adj_elide ->
      env.v_elided <- env.v_elided + 1;
      (plain, 0)
  | Adj_fastpath l ->
      env.v_checks <- env.v_checks + 1;
      env.v_fastpathed <- env.v_fastpathed + 1;
      (plain, l)
  | Adj_live guard -> (
      env.v_checks <- env.v_checks + 1;
      let req =
        { Guard.Iface.source = env.e_source; port = env.e_port.(buf); addr;
          size; kind }
      in
      match guard.Guard.Iface.check req with
      | Guard.Iface.Granted { phys; latency } -> (phys, latency)
      | Guard.Iface.Denied denial -> raise (Denied denial))

(* The interpreter performs the data movement after counting the access; an
   address escaping physical memory surfaces there as [Tagmem.Mem.
   Out_of_range], which {!Engine.run_core} reports as a bus-error denial.
   Mirror the check (and the exact denial text) without touching memory. *)
let bounds_check env ~phys ~size =
  if phys < 0 || size < 0 || phys + size > env.e_mem_size then
    raise
      (Denied
         { Guard.Iface.code = "bus";
           detail = Printf.sprintf "bus error at 0x%x+%d" phys size })

type derived = {
  d_trace : Trace.t;
  d_denied : Guard.Iface.denial option;
  d_checks : int;
  d_elided : int;
  d_fastpathed : int;
  d_reads : int;
  d_writes : int;
  d_ops : int;
}

let to_trace s ~bus ~mem_size ~layout ~obj_ids ~addressing ~source adj =
  let env = make_env s ~mem_size ~layout ~obj_ids ~addressing ~source adj in
  let trace = Trace.create () in
  let max_burst = bus.Bus.Params.max_burst in
  let denied =
    try
      Array.iter
        (fun op ->
          match op with
          | Access { a_gap; a_kind; a_buf; a_off; a_size; a_dependent; a_ops }
            ->
              env.v_ops <- a_ops;
              let addr = env.e_bus_base.(a_buf) + a_off in
              let plain = env.e_base.(a_buf) + a_off in
              let phys, latency =
                adjudicate env ~buf:a_buf ~addr ~plain ~size:a_size
                  ~kind:a_kind
              in
              Trace.add_access trace ~bus ~max_burst ~gap:a_gap ~kind:a_kind
                ~addr ~size:a_size ~dependent:a_dependent ~latency;
              (match a_kind with
              | Guard.Iface.Read -> env.v_reads <- env.v_reads + 1
              | Guard.Iface.Write -> env.v_writes <- env.v_writes + 1);
              bounds_check env ~phys ~size:a_size
          | Copy { y_gap; y_bytes; y_src; y_dst; y_ops } ->
              env.v_ops <- y_ops;
              if y_bytes > 0 then begin
                let src_phys, rd_latency =
                  adjudicate env ~buf:y_src ~addr:env.e_bus_base.(y_src)
                    ~plain:env.e_base.(y_src) ~size:y_bytes
                    ~kind:Guard.Iface.Read
                in
                let dst_phys, wr_latency =
                  adjudicate env ~buf:y_dst ~addr:env.e_bus_base.(y_dst)
                    ~plain:env.e_base.(y_dst) ~size:y_bytes
                    ~kind:Guard.Iface.Write
                in
                let beats_left = ref (Bus.Params.beats_for bus y_bytes) in
                let copy_gap = ref y_gap in
                while !beats_left > 0 do
                  let beats = min !beats_left max_burst in
                  beats_left := !beats_left - beats;
                  Trace.add trace
                    { Trace.gap = !copy_gap; kind = Guard.Iface.Read; beats;
                      dependent = false; latency = rd_latency };
                  Trace.add trace
                    { Trace.gap = 0; kind = Guard.Iface.Write; beats;
                      dependent = false; latency = wr_latency };
                  copy_gap := 0
                done;
                env.v_reads <- env.v_reads + 1;
                env.v_writes <- env.v_writes + 1;
                bounds_check env ~phys:src_phys ~size:y_bytes;
                bounds_check env ~phys:dst_phys ~size:y_bytes
              end)
        s.s_ops;
      env.v_ops <- s.s_total_ops;
      None
    with Denied denial -> Some denial
  in
  { d_trace = trace; d_denied = denied; d_checks = env.v_checks;
    d_elided = env.v_elided; d_fastpathed = env.v_fastpathed;
    d_reads = env.v_reads; d_writes = env.v_writes; d_ops = env.v_ops }

type ev_derived = {
  e_denied : Guard.Iface.denial option;
  e_checks : int;
  e_elided : int;
  e_fastpathed : int;
  e_reads : int;
  e_writes : int;
  e_ops : int;
  e_finish : int;
  e_failed : bool;
}

(* Mirror of {!Engine}'s event-backend burst state. *)
type pending = {
  pb_gap : int;
  pb_kind : Guard.Iface.kind;
  pb_dependent : bool;
  pb_latency : int;
  pb_target : int;
  mutable pb_end : int;
  mutable pb_bytes : int;
}

let drive_event s ?error_retry_limit ~sched ~ic ~start ~bus ~mem_size
    ~max_outstanding ~layout ~obj_ids ~addressing ~source adj ~on_done =
  Ccsim.Sched.spawn sched ~at:start (fun () ->
      let env = make_env s ~mem_size ~layout ~obj_ids ~addressing ~source adj in
      let flow =
        Flow.create ?error_retry_limit ~sched ~ic ~src:source ~start
          ~max_outstanding ()
      in
      let max_burst = bus.Bus.Params.max_burst in
      let pending = ref None in
      let flush () =
        match !pending with
        | None -> ()
        | Some p ->
            pending := None;
            Flow.issue flow ~target:p.pb_target
              { Trace.gap = p.pb_gap; kind = p.pb_kind;
                beats = Bus.Params.beats_for bus p.pb_bytes;
                dependent = p.pb_dependent; latency = p.pb_latency }
      in
      let failed = ref false in
      let denied =
        match
          Array.iter
            (fun op ->
              match op with
              | Access
                  { a_gap; a_kind; a_buf; a_off; a_size; a_dependent; a_ops }
                ->
                  env.v_ops <- a_ops;
                  let addr = env.e_bus_base.(a_buf) + a_off in
                  let plain = env.e_base.(a_buf) + a_off in
                  let mergeable =
                    match !pending with
                    | Some p ->
                        a_gap = 0 && (not a_dependent) && addr = p.pb_end
                        && p.pb_kind = a_kind && (not p.pb_dependent)
                        && Bus.Params.beats_for bus (p.pb_bytes + a_size)
                           <= max_burst
                    | None -> false
                  in
                  let phys =
                    if mergeable then begin
                      let phys, _latency =
                        adjudicate env ~buf:a_buf ~addr ~plain ~size:a_size
                          ~kind:a_kind
                      in
                      (match !pending with
                      | Some p ->
                          p.pb_bytes <- p.pb_bytes + a_size;
                          p.pb_end <- addr + a_size
                      | None -> assert false);
                      phys
                    end
                    else begin
                      flush ();
                      Ccsim.Sched.wait sched a_gap;
                      let phys, latency =
                        adjudicate env ~buf:a_buf ~addr ~plain ~size:a_size
                          ~kind:a_kind
                      in
                      pending :=
                        Some
                          { pb_gap = a_gap; pb_kind = a_kind;
                            pb_dependent = a_dependent; pb_latency = latency;
                            pb_target = Bus.Topology.target_for ic ~addr:phys;
                            pb_end = addr + a_size; pb_bytes = a_size };
                      phys
                    end
                  in
                  (match a_kind with
                  | Guard.Iface.Read -> env.v_reads <- env.v_reads + 1
                  | Guard.Iface.Write -> env.v_writes <- env.v_writes + 1);
                  bounds_check env ~phys ~size:a_size
              | Copy { y_gap; y_bytes; y_src; y_dst; y_ops } ->
                  env.v_ops <- y_ops;
                  if y_bytes > 0 then begin
                    flush ();
                    Ccsim.Sched.wait sched y_gap;
                    let src_phys, rd_latency =
                      adjudicate env ~buf:y_src ~addr:env.e_bus_base.(y_src)
                        ~plain:env.e_base.(y_src) ~size:y_bytes
                        ~kind:Guard.Iface.Read
                    in
                    let dst_phys, wr_latency =
                      adjudicate env ~buf:y_dst ~addr:env.e_bus_base.(y_dst)
                        ~plain:env.e_base.(y_dst) ~size:y_bytes
                        ~kind:Guard.Iface.Write
                    in
                    let beats_left = ref (Bus.Params.beats_for bus y_bytes) in
                    let copy_gap = ref y_gap in
                    let off = ref 0 in
                    while !beats_left > 0 do
                      let beats = min !beats_left max_burst in
                      beats_left := !beats_left - beats;
                      Flow.issue flow
                        ~target:
                          (Bus.Topology.target_for ic ~addr:(src_phys + !off))
                        { Trace.gap = !copy_gap; kind = Guard.Iface.Read;
                          beats; dependent = false; latency = rd_latency };
                      Flow.issue flow
                        ~target:
                          (Bus.Topology.target_for ic ~addr:(dst_phys + !off))
                        { Trace.gap = 0; kind = Guard.Iface.Write; beats;
                          dependent = false; latency = wr_latency };
                      copy_gap := 0;
                      off := !off + (beats * bus.Bus.Params.beat_bytes)
                    done;
                    env.v_reads <- env.v_reads + 1;
                    env.v_writes <- env.v_writes + 1;
                    bounds_check env ~phys:src_phys ~size:y_bytes;
                    bounds_check env ~phys:dst_phys ~size:y_bytes
                  end)
            s.s_ops
        with
        | () -> (
            env.v_ops <- s.s_total_ops;
            match flush () with
            | () -> None
            | exception Flow.Failed ->
                failed := true;
                None)
        | exception Denied denial -> (
            match flush () with
            | () -> Some denial
            | exception Flow.Failed ->
                failed := true;
                Some denial)
        | exception Flow.Failed ->
            failed := true;
            None
      in
      on_done
        { e_denied = denied; e_checks = env.v_checks; e_elided = env.v_elided;
          e_fastpathed = env.v_fastpathed; e_reads = env.v_reads;
          e_writes = env.v_writes; e_ops = env.v_ops;
          e_finish = Flow.finish flow; e_failed = !failed })
