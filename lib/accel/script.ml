(* Recorded access scripts: the config-independent skeleton of a kernel's
   execution.

   Interpreting a kernel is the expensive half of the accelerator model —
   per-element datapath ops, functional memory effects, value arithmetic.
   But everything the *timing* layers consume is a pure function of the
   access sequence the interpretation emits: (gap, buffer, offset, size,
   kind, dependence) per transaction, plus op counts.  That sequence depends
   only on the kernel, its parameters and the synthesized directives — never
   on the protection config, the layout bases, or the guard — so it can be
   recorded once and re-derived into per-config traces ({!to_trace}) or
   driven through the live event core ({!drive_event}) without interpreting
   again.

   Exactness is the whole contract: both derivations mirror {!Engine}'s
   backend logic operation for operation — same adjudication call order
   against the same guard (so even stateful schemes like the cached
   CapChecker or the shim fleet see the identical check sequence), same
   burst-formation decisions against the per-system bus addresses, same
   counter updates on the same schedule (so a denial mid-script truncates
   checks/reads/writes/ops exactly where the interpreter would), and the
   same bus-error behaviour for accesses escaping physical memory.  The
   differential suite pins byte-for-byte equality against the interpretive
   engine. *)

type addressing = Plain | Coarse_ids | Fine_ports

type op =
  | Access of {
      a_gap : int;
      a_kind : Guard.Iface.kind;
      a_buf : int;
      a_off : int;   (* byte offset within the buffer *)
      a_size : int;
      a_dependent : bool;
      a_ops : int;   (* datapath ops executed before this access issued *)
    }
  | Copy of {
      y_gap : int;
      y_bytes : int;
      y_src : int;
      y_dst : int;
      y_ops : int;
    }

type t = {
  s_bufs : string array;  (* buffer index -> declared name *)
  s_ops : op array;
  s_total_ops : int;
}

let length s = Array.length s.s_ops
let total_ops s = s.s_total_ops

module Recorder = struct
  type t = {
    mutable r_ops : op list;  (* reversed *)
    mutable r_count : int;
    r_names : (string, int) Hashtbl.t;
    mutable r_bufs : string list;  (* reversed *)
  }

  let create () =
    { r_ops = []; r_count = 0; r_names = Hashtbl.create 8; r_bufs = [] }

  let buf_idx r name =
    match Hashtbl.find_opt r.r_names name with
    | Some idx -> idx
    | None ->
        let idx = Hashtbl.length r.r_names in
        Hashtbl.add r.r_names name idx;
        r.r_bufs <- name :: r.r_bufs;
        idx

  let access r ~gap ~kind ~name ~off ~size ~dependent ~ops =
    r.r_ops <-
      Access
        { a_gap = gap; a_kind = kind; a_buf = buf_idx r name; a_off = off;
          a_size = size; a_dependent = dependent; a_ops = ops }
      :: r.r_ops;
    r.r_count <- r.r_count + 1

  let copy r ~gap ~bytes ~src ~dst ~ops =
    r.r_ops <-
      Copy
        { y_gap = gap; y_bytes = bytes; y_src = buf_idx r src;
          y_dst = buf_idx r dst; y_ops = ops }
      :: r.r_ops;
    r.r_count <- r.r_count + 1

  let finalize r ~total_ops ~complete =
    if not complete then None
    else
      Some
        { s_bufs = Array.of_list (List.rev r.r_bufs);
          s_ops =
            (let arr = Array.make r.r_count (Copy { y_gap = 0; y_bytes = 0; y_src = 0; y_dst = 0; y_ops = 0 }) in
             List.iteri (fun i op -> arr.(r.r_count - 1 - i) <- op) r.r_ops;
             arr);
          s_total_ops = total_ops }
end

type adjudication =
  | Adj_live of Guard.Iface.t
  | Adj_fastpath of int
  | Adj_elide

(* Per-derivation environment: buffer bases/ids resolved once against this
   system's layout, plus the counters both derivations maintain on the
   interpreter's exact schedule. *)
type env = {
  e_base : int array;      (* plain physical base per buffer *)
  e_bus_base : int array;  (* bus-visible base (Coarse_ids composes the id) *)
  e_port : int option array;
  e_mem_size : int;
  e_source : int;
  e_adj : adjudication;
  mutable v_checks : int;
  mutable v_elided : int;
  mutable v_fastpathed : int;
  mutable v_reads : int;
  mutable v_writes : int;
  mutable v_ops : int;
}

exception Denied of Guard.Iface.denial

let make_env s ~mem_size ~layout ~obj_ids ~addressing ~source adj =
  let n = Array.length s.s_bufs in
  let e_base = Array.make n 0
  and e_bus_base = Array.make n 0
  and e_port = Array.make n None in
  Array.iteri
    (fun i name ->
      let b = Memops.Layout.find layout name in
      let obj_of () =
        match List.assoc_opt name obj_ids with
        | Some obj -> obj
        | None -> invalid_arg ("Accel.Engine: no object id for buffer " ^ name)
      in
      e_base.(i) <- b.Memops.Layout.base;
      (e_bus_base.(i) <-
         (match addressing with
         | Plain | Fine_ports -> b.Memops.Layout.base
         | Coarse_ids ->
             Capchecker.Checker.compose_coarse ~obj:(obj_of ())
               b.Memops.Layout.base));
      e_port.(i) <-
        (match addressing with
        | Fine_ports -> Some (obj_of ())
        | Plain | Coarse_ids -> None))
    s.s_bufs;
  { e_base; e_bus_base; e_port; e_mem_size = mem_size; e_source = source;
    e_adj = adj; v_checks = 0; v_elided = 0; v_fastpathed = 0; v_reads = 0;
    v_writes = 0; v_ops = 0 }

(* One guard decision, mirroring {!Engine}'s [adjudicate] exactly: counter
   updates first, then the outcome (a denial unwinds with counters already
   advanced, as the interpreter's would). *)
let adjudicate env ~buf ~addr ~plain ~size ~kind =
  match env.e_adj with
  | Adj_elide ->
      env.v_elided <- env.v_elided + 1;
      (plain, 0)
  | Adj_fastpath l ->
      env.v_checks <- env.v_checks + 1;
      env.v_fastpathed <- env.v_fastpathed + 1;
      (plain, l)
  | Adj_live guard -> (
      env.v_checks <- env.v_checks + 1;
      let req =
        { Guard.Iface.source = env.e_source; port = env.e_port.(buf); addr;
          size; kind }
      in
      match guard.Guard.Iface.check req with
      | Guard.Iface.Granted { phys; latency } -> (phys, latency)
      | Guard.Iface.Denied denial -> raise (Denied denial))

(* The interpreter performs the data movement after counting the access; an
   address escaping physical memory surfaces there as [Tagmem.Mem.
   Out_of_range], which {!Engine.run_core} reports as a bus-error denial.
   Mirror the check (and the exact denial text) without touching memory. *)
let bounds_check env ~phys ~size =
  if phys < 0 || size < 0 || phys + size > env.e_mem_size then
    raise
      (Denied
         { Guard.Iface.code = "bus";
           detail = Printf.sprintf "bus error at 0x%x+%d" phys size })

type derived = {
  d_trace : Trace.t;
  d_denied : Guard.Iface.denial option;
  d_checks : int;
  d_elided : int;
  d_fastpathed : int;
  d_reads : int;
  d_writes : int;
  d_ops : int;
}

let to_trace s ~bus ~mem_size ~layout ~obj_ids ~addressing ~source adj =
  let env = make_env s ~mem_size ~layout ~obj_ids ~addressing ~source adj in
  let trace = Trace.create () in
  let max_burst = bus.Bus.Params.max_burst in
  let denied =
    try
      Array.iter
        (fun op ->
          match op with
          | Access { a_gap; a_kind; a_buf; a_off; a_size; a_dependent; a_ops }
            ->
              env.v_ops <- a_ops;
              let addr = env.e_bus_base.(a_buf) + a_off in
              let plain = env.e_base.(a_buf) + a_off in
              let phys, latency =
                adjudicate env ~buf:a_buf ~addr ~plain ~size:a_size
                  ~kind:a_kind
              in
              Trace.add_access trace ~bus ~max_burst ~gap:a_gap ~kind:a_kind
                ~addr ~size:a_size ~dependent:a_dependent ~latency;
              (match a_kind with
              | Guard.Iface.Read -> env.v_reads <- env.v_reads + 1
              | Guard.Iface.Write -> env.v_writes <- env.v_writes + 1);
              bounds_check env ~phys ~size:a_size
          | Copy { y_gap; y_bytes; y_src; y_dst; y_ops } ->
              env.v_ops <- y_ops;
              if y_bytes > 0 then begin
                let src_phys, rd_latency =
                  adjudicate env ~buf:y_src ~addr:env.e_bus_base.(y_src)
                    ~plain:env.e_base.(y_src) ~size:y_bytes
                    ~kind:Guard.Iface.Read
                in
                let dst_phys, wr_latency =
                  adjudicate env ~buf:y_dst ~addr:env.e_bus_base.(y_dst)
                    ~plain:env.e_base.(y_dst) ~size:y_bytes
                    ~kind:Guard.Iface.Write
                in
                let beats_left = ref (Bus.Params.beats_for bus y_bytes) in
                let copy_gap = ref y_gap in
                while !beats_left > 0 do
                  let beats = min !beats_left max_burst in
                  beats_left := !beats_left - beats;
                  Trace.add trace
                    { Trace.gap = !copy_gap; kind = Guard.Iface.Read; beats;
                      dependent = false; latency = rd_latency };
                  Trace.add trace
                    { Trace.gap = 0; kind = Guard.Iface.Write; beats;
                      dependent = false; latency = wr_latency };
                  copy_gap := 0
                done;
                env.v_reads <- env.v_reads + 1;
                env.v_writes <- env.v_writes + 1;
                bounds_check env ~phys:src_phys ~size:y_bytes;
                bounds_check env ~phys:dst_phys ~size:y_bytes
              end)
        s.s_ops;
      env.v_ops <- s.s_total_ops;
      None
    with Denied denial -> Some denial
  in
  { d_trace = trace; d_denied = denied; d_checks = env.v_checks;
    d_elided = env.v_elided; d_fastpathed = env.v_fastpathed;
    d_reads = env.v_reads; d_writes = env.v_writes; d_ops = env.v_ops }

type ev_derived = {
  e_denied : Guard.Iface.denial option;
  e_checks : int;
  e_elided : int;
  e_fastpathed : int;
  e_reads : int;
  e_writes : int;
  e_ops : int;
  e_finish : int;
  e_failed : bool;
}

(* Mirror of {!Engine}'s event-backend burst state. *)
type pending = {
  pb_gap : int;
  pb_kind : Guard.Iface.kind;
  pb_dependent : bool;
  pb_latency : int;
  pb_target : int;
  mutable pb_end : int;
  mutable pb_bytes : int;
}

let drive_event s ?error_retry_limit ~sched ~ic ~start ~bus ~mem_size
    ~max_outstanding ~layout ~obj_ids ~addressing ~source adj ~on_done =
  Ccsim.Sched.spawn sched ~at:start (fun () ->
      let env = make_env s ~mem_size ~layout ~obj_ids ~addressing ~source adj in
      let flow =
        Flow.create ?error_retry_limit ~sched ~ic ~src:source ~start
          ~max_outstanding ()
      in
      let max_burst = bus.Bus.Params.max_burst in
      let pending = ref None in
      let flush () =
        match !pending with
        | None -> ()
        | Some p ->
            pending := None;
            Flow.issue flow ~target:p.pb_target
              { Trace.gap = p.pb_gap; kind = p.pb_kind;
                beats = Bus.Params.beats_for bus p.pb_bytes;
                dependent = p.pb_dependent; latency = p.pb_latency }
      in
      let failed = ref false in
      let denied =
        match
          Array.iter
            (fun op ->
              match op with
              | Access
                  { a_gap; a_kind; a_buf; a_off; a_size; a_dependent; a_ops }
                ->
                  env.v_ops <- a_ops;
                  let addr = env.e_bus_base.(a_buf) + a_off in
                  let plain = env.e_base.(a_buf) + a_off in
                  let mergeable =
                    match !pending with
                    | Some p ->
                        a_gap = 0 && (not a_dependent) && addr = p.pb_end
                        && p.pb_kind = a_kind && (not p.pb_dependent)
                        && Bus.Params.beats_for bus (p.pb_bytes + a_size)
                           <= max_burst
                    | None -> false
                  in
                  let phys =
                    if mergeable then begin
                      let phys, _latency =
                        adjudicate env ~buf:a_buf ~addr ~plain ~size:a_size
                          ~kind:a_kind
                      in
                      (match !pending with
                      | Some p ->
                          p.pb_bytes <- p.pb_bytes + a_size;
                          p.pb_end <- addr + a_size
                      | None -> assert false);
                      phys
                    end
                    else begin
                      flush ();
                      Ccsim.Sched.wait sched a_gap;
                      let phys, latency =
                        adjudicate env ~buf:a_buf ~addr ~plain ~size:a_size
                          ~kind:a_kind
                      in
                      pending :=
                        Some
                          { pb_gap = a_gap; pb_kind = a_kind;
                            pb_dependent = a_dependent; pb_latency = latency;
                            pb_target = Bus.Topology.target_for ic ~addr:phys;
                            pb_end = addr + a_size; pb_bytes = a_size };
                      phys
                    end
                  in
                  (match a_kind with
                  | Guard.Iface.Read -> env.v_reads <- env.v_reads + 1
                  | Guard.Iface.Write -> env.v_writes <- env.v_writes + 1);
                  bounds_check env ~phys ~size:a_size
              | Copy { y_gap; y_bytes; y_src; y_dst; y_ops } ->
                  env.v_ops <- y_ops;
                  if y_bytes > 0 then begin
                    flush ();
                    Ccsim.Sched.wait sched y_gap;
                    let src_phys, rd_latency =
                      adjudicate env ~buf:y_src ~addr:env.e_bus_base.(y_src)
                        ~plain:env.e_base.(y_src) ~size:y_bytes
                        ~kind:Guard.Iface.Read
                    in
                    let dst_phys, wr_latency =
                      adjudicate env ~buf:y_dst ~addr:env.e_bus_base.(y_dst)
                        ~plain:env.e_base.(y_dst) ~size:y_bytes
                        ~kind:Guard.Iface.Write
                    in
                    let beats_left = ref (Bus.Params.beats_for bus y_bytes) in
                    let copy_gap = ref y_gap in
                    let off = ref 0 in
                    while !beats_left > 0 do
                      let beats = min !beats_left max_burst in
                      beats_left := !beats_left - beats;
                      Flow.issue flow
                        ~target:
                          (Bus.Topology.target_for ic ~addr:(src_phys + !off))
                        { Trace.gap = !copy_gap; kind = Guard.Iface.Read;
                          beats; dependent = false; latency = rd_latency };
                      Flow.issue flow
                        ~target:
                          (Bus.Topology.target_for ic ~addr:(dst_phys + !off))
                        { Trace.gap = 0; kind = Guard.Iface.Write; beats;
                          dependent = false; latency = wr_latency };
                      copy_gap := 0;
                      off := !off + (beats * bus.Bus.Params.beat_bytes)
                    done;
                    env.v_reads <- env.v_reads + 1;
                    env.v_writes <- env.v_writes + 1;
                    bounds_check env ~phys:src_phys ~size:y_bytes;
                    bounds_check env ~phys:dst_phys ~size:y_bytes
                  end)
            s.s_ops
        with
        | () -> (
            env.v_ops <- s.s_total_ops;
            match flush () with
            | () -> None
            | exception Flow.Failed ->
                failed := true;
                None)
        | exception Denied denial -> (
            match flush () with
            | () -> Some denial
            | exception Flow.Failed ->
                failed := true;
                Some denial)
        | exception Flow.Failed ->
            failed := true;
            None
      in
      on_done
        { e_denied = denied; e_checks = env.v_checks; e_elided = env.v_elided;
          e_fastpathed = env.v_fastpathed; e_reads = env.v_reads;
          e_writes = env.v_writes; e_ops = env.v_ops;
          e_finish = Flow.finish flow; e_failed = !failed })

(* ---- flat (coroutine-free) event driving ----

   Under a constant-latency adjudication ({!Adj_elide} / {!Adj_fastpath})
   the whole clock-dependent half of {!drive_event} collapses: adjudication
   is a counter bump, denial is a pure function of layout bases and sizes,
   and the burst sequence the fiber would feed {!Flow.issue} is known before
   the clock starts.  So derive the *plan* — the burst array plus the final
   [ev_derived] — once, and drive the bus with a single persistent grant
   callback instead of an effect-suspended coroutine: the callback absorbs
   each grant with {!Flow}'s exact rules and pushes the next request
   synchronously.  The request [at]s, per-source order and rotation
   registration cycle are identical to the fiber's, so the arbiter grants
   the identical schedule (the differential suite and [--event-ff diff] pin
   it); what changes is that no effect continuation is captured per
   transaction, no per-burst wake event is scheduled, and — because the
   driver never needs the scheduler between grants — the arbiter may grant
   whole stretches ahead of the event heap and leap periodic steady state
   (see {!Bus.Arbiter.flat_client}). *)

type flat_burst = {
  fb_gap : int;
  fb_kind : Guard.Iface.kind;
  fb_beats : int;
  fb_dependent : bool;
  fb_latency : int;
}

type flat_plan = {
  fp_bursts : flat_burst array;
  fp_run_start : int array;  (* first burst of the uniform run containing i *)
  fp_run_len : int array;    (* length of that run *)
  fp_done : ev_derived;      (* final counters/denial; e_finish patched *)
}

let flat_plan s ~bus ~mem_size ~layout ~obj_ids ~addressing ~source adj =
  match adj with
  | Adj_live _ -> None (* guard possibly stateful: only the live orders do *)
  | Adj_elide | Adj_fastpath _ ->
      let env = make_env s ~mem_size ~layout ~obj_ids ~addressing ~source adj in
      let max_burst = bus.Bus.Params.max_burst in
      let bursts = ref [] in
      let nb = ref 0 in
      let pending = ref None in
      let flush () =
        match !pending with
        | None -> ()
        | Some p ->
            pending := None;
            bursts :=
              { fb_gap = p.pb_gap; fb_kind = p.pb_kind;
                fb_beats = Bus.Params.beats_for bus p.pb_bytes;
                fb_dependent = p.pb_dependent; fb_latency = p.pb_latency }
              :: !bursts;
            incr nb
      in
      let denied =
        match
          Array.iter
            (fun op ->
              match op with
              | Access
                  { a_gap; a_kind; a_buf; a_off; a_size; a_dependent; a_ops }
                ->
                  env.v_ops <- a_ops;
                  let addr = env.e_bus_base.(a_buf) + a_off in
                  let plain = env.e_base.(a_buf) + a_off in
                  let mergeable =
                    match !pending with
                    | Some p ->
                        a_gap = 0 && (not a_dependent) && addr = p.pb_end
                        && p.pb_kind = a_kind && (not p.pb_dependent)
                        && Bus.Params.beats_for bus (p.pb_bytes + a_size)
                           <= max_burst
                    | None -> false
                  in
                  let phys =
                    if mergeable then begin
                      let phys, _latency =
                        adjudicate env ~buf:a_buf ~addr ~plain ~size:a_size
                          ~kind:a_kind
                      in
                      (match !pending with
                      | Some p ->
                          p.pb_bytes <- p.pb_bytes + a_size;
                          p.pb_end <- addr + a_size
                      | None -> assert false);
                      phys
                    end
                    else begin
                      flush ();
                      let phys, latency =
                        adjudicate env ~buf:a_buf ~addr ~plain ~size:a_size
                          ~kind:a_kind
                      in
                      pending :=
                        Some
                          { pb_gap = a_gap; pb_kind = a_kind;
                            pb_dependent = a_dependent; pb_latency = latency;
                            pb_target = 0; pb_end = addr + a_size;
                            pb_bytes = a_size };
                      phys
                    end
                  in
                  (match a_kind with
                  | Guard.Iface.Read -> env.v_reads <- env.v_reads + 1
                  | Guard.Iface.Write -> env.v_writes <- env.v_writes + 1);
                  bounds_check env ~phys ~size:a_size
              | Copy { y_gap; y_bytes; y_src; y_dst; y_ops } ->
                  env.v_ops <- y_ops;
                  if y_bytes > 0 then begin
                    flush ();
                    let src_phys, rd_latency =
                      adjudicate env ~buf:y_src ~addr:env.e_bus_base.(y_src)
                        ~plain:env.e_base.(y_src) ~size:y_bytes
                        ~kind:Guard.Iface.Read
                    in
                    let dst_phys, wr_latency =
                      adjudicate env ~buf:y_dst ~addr:env.e_bus_base.(y_dst)
                        ~plain:env.e_base.(y_dst) ~size:y_bytes
                        ~kind:Guard.Iface.Write
                    in
                    let beats_left = ref (Bus.Params.beats_for bus y_bytes) in
                    let copy_gap = ref y_gap in
                    while !beats_left > 0 do
                      let beats = min !beats_left max_burst in
                      beats_left := !beats_left - beats;
                      bursts :=
                        { fb_gap = 0; fb_kind = Guard.Iface.Write;
                          fb_beats = beats; fb_dependent = false;
                          fb_latency = wr_latency }
                        :: { fb_gap = !copy_gap; fb_kind = Guard.Iface.Read;
                             fb_beats = beats; fb_dependent = false;
                             fb_latency = rd_latency }
                        :: !bursts;
                      nb := !nb + 2;
                      copy_gap := 0
                    done;
                    env.v_reads <- env.v_reads + 1;
                    env.v_writes <- env.v_writes + 1;
                    bounds_check env ~phys:src_phys ~size:y_bytes;
                    bounds_check env ~phys:dst_phys ~size:y_bytes
                  end)
            s.s_ops
        with
        | () ->
            env.v_ops <- s.s_total_ops;
            flush ();
            None
        | exception Denied denial ->
            flush ();
            Some denial
      in
      let arr =
        Array.make !nb
          { fb_gap = 0; fb_kind = Guard.Iface.Read; fb_beats = 0;
            fb_dependent = false; fb_latency = 0 }
      in
      List.iteri (fun i b -> arr.(!nb - 1 - i) <- b) !bursts;
      let run_start = Array.make !nb 0 and run_len = Array.make !nb 0 in
      let i = ref 0 in
      while !i < !nb do
        let j = ref (!i + 1) in
        while !j < !nb && arr.(!j) = arr.(!i) do incr j done;
        for k = !i to !j - 1 do
          run_start.(k) <- !i;
          run_len.(k) <- !j - !i
        done;
        i := !j
      done;
      Some
        { fp_bursts = arr; fp_run_start = run_start; fp_run_len = run_len;
          fp_done =
            { e_denied = denied; e_checks = env.v_checks;
              e_elided = env.v_elided; e_fastpathed = env.v_fastpathed;
              e_reads = env.v_reads; e_writes = env.v_writes;
              e_ops = env.v_ops; e_finish = 0; e_failed = false } }

let drive_event_flat plan ~sched ~ic ~start ~max_outstanding ~source ~on_done =
  let bursts = plan.fp_bursts in
  let nb = Array.length bursts in
  let limit = max 1 max_outstanding in
  let outstanding = Queue.create () in
  let issued = ref 0 in
  let ready = ref start in
  let finish = ref start in
  let last_settle = ref start in
  let last_popped = ref min_int in
  let retire () = on_done { plan.fp_done with e_finish = !finish } in
  let fc_uniform ~delta =
    let q = !issued in
    let b = bursts.(q) in
    let remaining = plan.fp_run_len.(q) - (q - plan.fp_run_start.(q)) in
    if not (b.fb_kind = Guard.Iface.Read && not b.fb_dependent) then remaining
    else if q - plan.fp_run_start.(q) < limit + 1 then 0
    else begin
      (* The outstanding window must be entrained on the period: spaced
         exactly [delta] oldest-to-newest and continuing the progression of
         the value the last submission popped — then pops, pushes and the
         issue-time max all advance by [delta] per period, shift-equivariant
         by induction. *)
      let ok = ref (!last_popped <> min_int) in
      let prev = ref !last_popped in
      Queue.iter
        (fun c ->
          if c - !prev <> delta then ok := false;
          prev := c)
        outstanding;
      if !ok then remaining else 0
    end
  in
  let fc_jump ~n ~dt =
    let q = !issued in
    let b = bursts.(q) in
    issued := q + n;
    ready := !ready + dt;
    last_settle := !last_settle + dt;
    if !last_settle > !finish then finish := !last_settle;
    if b.fb_kind = Guard.Iface.Read && not b.fb_dependent then begin
      (* In-run streaming completions shift with the schedule; stale
         completions from before a streaming run never coexist with a
         certificate (fc_uniform's warmup excludes them). *)
      let shifted = Queue.create () in
      Queue.iter (fun c -> Queue.push (c + dt) shifted) outstanding;
      Queue.clear outstanding;
      Queue.transfer shifted outstanding;
      last_popped := !last_popped + dt
    end
  in
  let client = { Bus.Arbiter.fc_uniform; fc_jump } in
  let rec submit q =
    (* Register flatness right before the first request: rotation order is
       first-request order, and an earlier registration would move this
       source's rotation slot relative to coroutine-driven tasks. *)
    if q = 0 then ignore (Bus.Topology.set_flat ic ~src:source client);
    let b = bursts.(q) in
    let is_read = b.fb_kind = Guard.Iface.Read in
    let cand = !ready + b.fb_gap in
    let cand =
      if is_read && (not b.fb_dependent) && Queue.length outstanding >= limit
      then begin
        let oldest = Queue.pop outstanding in
        last_popped := oldest;
        max cand oldest
      end
      else cand
    in
    issued := q;
    Bus.Topology.request ic ~src:source ~target:0 ~at:cand ~beats:b.fb_beats
      ~is_read ~extra_latency:b.fb_latency ~on_grant
  and on_grant (g : Bus.Fabric.grant) =
    if g.Bus.Fabric.errored then
      (* Flat driving is gated on an inert fault injector. *)
      failwith "Accel.Script: flat driver saw a bus error";
    let q = !issued in
    let b = bursts.(q) in
    (match (b.fb_kind, b.fb_dependent) with
    | Guard.Iface.Write, _ ->
        ready := g.Bus.Fabric.granted_at + 1;
        last_settle := g.Bus.Fabric.data_done
    | Guard.Iface.Read, true ->
        ready := g.Bus.Fabric.completed;
        last_settle := g.Bus.Fabric.completed
    | Guard.Iface.Read, false ->
        Queue.push g.Bus.Fabric.completed outstanding;
        ready := g.Bus.Fabric.granted_at + 1;
        last_settle := g.Bus.Fabric.completed);
    if !last_settle > !finish then finish := !last_settle;
    if q + 1 < nb then submit (q + 1) else retire ()
  in
  (* Mirror the fiber's event structure exactly: one event at [start] (the
     spawn's position, so same-cycle seq order across tasks is preserved),
     which either retires an empty plan, submits directly when the first
     burst has no gap (the fiber's [wait 0] is a no-op), or schedules the
     first submission where the fiber's gap wake would land. *)
  Ccsim.Sched.at sched ~cycle:start (fun () ->
      if nb = 0 then retire ()
      else begin
        let gap0 = bursts.(0).fb_gap in
        if gap0 = 0 then submit 0
        else Ccsim.Sched.at sched ~cycle:(start + gap0) (fun () -> submit 0)
      end)
