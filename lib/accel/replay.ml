type result = {
  makespan : int;
  per_instance : (int * int) list;
  bus_beats : int;
}

type stream = { instance : int; trace : Trace.t; max_outstanding : int }

type instance_state = {
  id : int;
  events : Trace.event array;
  limit : int;
  mutable next : int;
  mutable ready : int;
  outstanding : int Queue.t;  (* completion times of in-flight streaming reads *)
  mutable finish : int;
}

let candidate_time st =
  let ev = st.events.(st.next) in
  let cand = st.ready + ev.Trace.gap in
  (* A streaming read with a full outstanding queue must wait for the oldest
     in-flight read to return. *)
  if
    ev.Trace.kind = Guard.Iface.Read && (not ev.Trace.dependent)
    && Queue.length st.outstanding >= st.limit
  then max cand (Queue.peek st.outstanding)
  else cand

let run fabric ~start streams =
  let states =
    List.map
      (fun s ->
        { id = s.instance; events = Trace.events s.trace;
          limit = max 1 s.max_outstanding; next = 0; ready = start;
          outstanding = Queue.create (); finish = start })
      streams
  in
  let rec step () =
    (* Pick the instance whose next transaction is ready earliest. *)
    let best =
      List.fold_left
        (fun acc st ->
          if st.next >= Array.length st.events then acc
          else
            let cand = candidate_time st in
            match acc with
            | Some (_, best_cand) when best_cand <= cand -> acc
            | Some _ | None -> Some (st, cand))
        None states
    in
    match best with
    | None -> ()
    | Some (st, cand) ->
        let ev = st.events.(st.next) in
        st.next <- st.next + 1;
        (if ev.Trace.kind = Guard.Iface.Read && (not ev.Trace.dependent)
            && Queue.length st.outstanding >= st.limit
         then ignore (Queue.pop st.outstanding));
        let is_read = ev.Trace.kind = Guard.Iface.Read in
        let grant =
          Bus.Fabric.request ~src:st.id fabric ~at:cand ~beats:ev.Trace.beats
            ~is_read ~extra_latency:ev.Trace.latency
        in
        (match (ev.Trace.kind, ev.Trace.dependent) with
        | Guard.Iface.Write, _ ->
            (* Posted write: the instance moves on after the address phase. *)
            st.ready <- grant.Bus.Fabric.granted_at + 1;
            st.finish <- max st.finish grant.Bus.Fabric.data_done
        | Guard.Iface.Read, true ->
            st.ready <- grant.Bus.Fabric.completed;
            st.finish <- max st.finish grant.Bus.Fabric.completed
        | Guard.Iface.Read, false ->
            Queue.push grant.Bus.Fabric.completed st.outstanding;
            st.ready <- grant.Bus.Fabric.granted_at + 1;
            st.finish <- max st.finish grant.Bus.Fabric.completed);
        step ()
  in
  step ();
  let makespan = List.fold_left (fun acc st -> max acc st.finish) start states in
  {
    makespan;
    per_instance = List.map (fun st -> (st.id, st.finish)) states;
    bus_beats = Bus.Fabric.total_beats fabric;
  }
