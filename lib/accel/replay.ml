type result = {
  makespan : int;
  per_instance : (int * int) list;
  bus_beats : int;
  bus_errors : int;
  failed : int list;
}

type stream = { instance : int; trace : Trace.t; max_outstanding : int }

type instance_state = {
  id : int;
  trace : Trace.t;  (* read through Trace.get/length: no per-instance copy *)
  n : int;
  limit : int;
  mutable next : int;
  mutable ready : int;
  outstanding : int Queue.t;  (* completion times of in-flight streaming reads *)
  mutable finish : int;
  mutable event_retries : int;  (* consecutive error responses on the current event *)
  mutable failed : bool;
}

let error_turnaround = 8
(* cycles between observing an error response and re-issuing the transaction *)

let candidate_time st =
  let ev = Trace.get st.trace st.next in
  let cand = st.ready + ev.Trace.gap in
  (* A streaming read with a full outstanding queue must wait for the oldest
     in-flight read to return. *)
  if
    ev.Trace.kind = Guard.Iface.Read && (not ev.Trace.dependent)
    && Queue.length st.outstanding >= st.limit
  then max cand (Queue.peek st.outstanding)
  else cand

let run ?(error_retry_limit = 4) fabric ~start streams =
  let errors = ref 0 in
  let states =
    List.map
      (fun s ->
        { id = s.instance; trace = s.trace; n = Trace.length s.trace;
          limit = max 1 s.max_outstanding; next = 0; ready = start;
          outstanding = Queue.create (); finish = start;
          event_retries = 0; failed = false })
      streams
  in
  let rec step () =
    (* Pick the instance whose next transaction is ready earliest. *)
    let best =
      List.fold_left
        (fun acc st ->
          if st.next >= st.n then acc
          else
            let cand = candidate_time st in
            match acc with
            | Some (_, best_cand) when best_cand <= cand -> acc
            | Some _ | None -> Some (st, cand))
        None states
    in
    match best with
    | None -> ()
    | Some (st, cand) ->
        let ev = Trace.get st.trace st.next in
        (if ev.Trace.kind = Guard.Iface.Read && (not ev.Trace.dependent)
            && Queue.length st.outstanding >= st.limit
         then ignore (Queue.pop st.outstanding));
        let is_read = ev.Trace.kind = Guard.Iface.Read in
        let grant =
          Bus.Fabric.request ~src:st.id fabric ~at:cand ~beats:ev.Trace.beats
            ~is_read ~extra_latency:ev.Trace.latency
        in
        if grant.Bus.Fabric.errored then begin
          incr errors;
          st.finish <- max st.finish grant.Bus.Fabric.completed;
          if st.event_retries >= error_retry_limit then begin
            (* Retry budget exhausted: this instance's run is lost; the
               driver decides what to do with the task. *)
            st.failed <- true;
            st.next <- st.n
          end
          else begin
            st.event_retries <- st.event_retries + 1;
            st.ready <- grant.Bus.Fabric.completed + error_turnaround
          end
        end
        else begin
          st.event_retries <- 0;
          st.next <- st.next + 1;
          match (ev.Trace.kind, ev.Trace.dependent) with
          | Guard.Iface.Write, _ ->
              (* Posted write: the instance moves on after the address phase. *)
              st.ready <- grant.Bus.Fabric.granted_at + 1;
              st.finish <- max st.finish grant.Bus.Fabric.data_done
          | Guard.Iface.Read, true ->
              st.ready <- grant.Bus.Fabric.completed;
              st.finish <- max st.finish grant.Bus.Fabric.completed
          | Guard.Iface.Read, false ->
              Queue.push grant.Bus.Fabric.completed st.outstanding;
              st.ready <- grant.Bus.Fabric.granted_at + 1;
              st.finish <- max st.finish grant.Bus.Fabric.completed
        end;
        step ()
  in
  step ();
  let makespan = List.fold_left (fun acc st -> max acc st.finish) start states in
  {
    makespan;
    per_instance = List.map (fun st -> (st.id, st.finish)) states;
    bus_beats = Bus.Fabric.total_beats fabric;
    bus_errors = !errors;
    failed = List.filter_map (fun st -> if st.failed then Some st.id else None) states;
  }

type cstream = { cinstance : int; ctrace : Trace.Compiled.t }

type cstate = {
  c_id : int;
  ct : Trace.Compiled.t;
  c_limit : int;
  mutable c_next : int;
  mutable c_ready : int;
  c_outstanding : int Queue.t;
  mutable c_max_pushed : int;
      (* largest completion ever pushed to [c_outstanding]; conservative
         witness that every still-queued read has returned by a given cycle *)
  mutable c_finish : int;
  mutable c_event_retries : int;
  mutable c_failed : bool;
}

let c_candidate_time st =
  let ct = st.ct in
  let cand = st.c_ready + ct.Trace.Compiled.c_gap.(st.c_next) in
  if
    ct.Trace.Compiled.c_kind.(st.c_next) = Trace.Compiled.k_stream_read
    && Queue.length st.c_outstanding >= st.c_limit
  then max cand (Queue.peek st.c_outstanding)
  else cand

let run_compiled ?(error_retry_limit = 4) fabric ~start streams =
  let bus = Bus.Fabric.params fabric in
  let errors = ref 0 in
  let states =
    List.map
      (fun s ->
        assert (s.ctrace.Trace.Compiled.c_bus = bus);
        { c_id = s.cinstance; ct = s.ctrace;
          c_limit = s.ctrace.Trace.Compiled.c_limit; c_next = 0;
          c_ready = start; c_outstanding = Queue.create (); c_max_pushed = 0;
          c_finish = start; c_event_retries = 0; c_failed = false })
      streams
  in
  let unfinished =
    ref
      (List.fold_left
         (fun acc st -> if st.c_next < st.ct.Trace.Compiled.c_n then acc + 1 else acc)
         0 states)
  in
  let quiescent = Bus.Fabric.quiescent fabric in
  let rec step () =
    let best =
      List.fold_left
        (fun acc st ->
          if st.c_next >= st.ct.Trace.Compiled.c_n then acc
          else
            let cand = c_candidate_time st in
            match acc with
            | Some (_, best_cand) when best_cand <= cand -> acc
            | Some _ | None -> Some (st, cand))
        None states
    in
    match best with
    | None -> ()
    | Some (st, cand) ->
        let ct = st.ct in
        let i = st.c_next in
        let kind = ct.Trace.Compiled.c_kind.(i) in
        (* Solo fast-forward: with every other stream drained, a quiescent
           fabric, and a clean entry state at a compile-clean index, the
           whole suffix timing is the precomputed deltas off [cand]. *)
        let cand0 = st.c_ready + ct.Trace.Compiled.c_gap.(i) in
        if
          !unfinished = 1 && quiescent
          && ct.Trace.Compiled.c_clean_finish.(i) >= 0
          && Bus.Fabric.busy_until fabric <= cand0
          && st.c_max_pushed <= cand0
        then begin
          (* The selection's [cand] equals [cand0] here: the queue constraint
             cannot bind when every queued completion is [<= cand0]. *)
          st.c_finish <-
            max st.c_finish (cand0 + ct.Trace.Compiled.c_clean_finish.(i));
          Bus.Fabric.fast_forward fabric
            ~busy_until:(cand0 + ct.Trace.Compiled.c_clean_free.(i))
            ~beats:ct.Trace.Compiled.c_suffix_beats.(i);
          st.c_next <- ct.Trace.Compiled.c_n;
          decr unfinished;
          Obs.Counters.incr Obs.Counters.segments_replayed;
          step ()
        end
        else begin
          (if
             kind = Trace.Compiled.k_stream_read
             && Queue.length st.c_outstanding >= st.c_limit
           then ignore (Queue.pop st.c_outstanding));
          let is_read = kind <> Trace.Compiled.k_write in
          let grant =
            Bus.Fabric.request ~src:st.c_id fabric ~at:cand
              ~beats:ct.Trace.Compiled.c_beats.(i) ~is_read
              ~extra_latency:ct.Trace.Compiled.c_latency.(i)
          in
          if grant.Bus.Fabric.errored then begin
            incr errors;
            st.c_finish <- max st.c_finish grant.Bus.Fabric.completed;
            if st.c_event_retries >= error_retry_limit then begin
              st.c_failed <- true;
              st.c_next <- ct.Trace.Compiled.c_n;
              decr unfinished
            end
            else begin
              st.c_event_retries <- st.c_event_retries + 1;
              st.c_ready <- grant.Bus.Fabric.completed + error_turnaround
            end
          end
          else begin
            st.c_event_retries <- 0;
            st.c_next <- st.c_next + 1;
            if st.c_next >= ct.Trace.Compiled.c_n then decr unfinished;
            if kind = Trace.Compiled.k_write then begin
              st.c_ready <- grant.Bus.Fabric.granted_at + 1;
              st.c_finish <- max st.c_finish grant.Bus.Fabric.data_done
            end
            else if kind = Trace.Compiled.k_dep_read then begin
              st.c_ready <- grant.Bus.Fabric.completed;
              st.c_finish <- max st.c_finish grant.Bus.Fabric.completed
            end
            else begin
              Queue.push grant.Bus.Fabric.completed st.c_outstanding;
              if grant.Bus.Fabric.completed > st.c_max_pushed then
                st.c_max_pushed <- grant.Bus.Fabric.completed;
              st.c_ready <- grant.Bus.Fabric.granted_at + 1;
              st.c_finish <- max st.c_finish grant.Bus.Fabric.completed
            end
          end;
          step ()
        end
  in
  step ();
  let makespan = List.fold_left (fun acc st -> max acc st.c_finish) start states in
  {
    makespan;
    per_instance = List.map (fun st -> (st.c_id, st.c_finish)) states;
    bus_beats = Bus.Fabric.total_beats fabric;
    bus_errors = !errors;
    failed =
      List.filter_map (fun st -> if st.c_failed then Some st.c_id else None) states;
  }

let run_event ?error_retry_limit ~sched ~ic ~start streams =
  let flows =
    List.map
      (fun s ->
        let flow =
          Flow.create ?error_retry_limit ~sched ~ic ~src:s.instance ~start
            ~max_outstanding:s.max_outstanding ()
        in
        let failed = ref false in
        Ccsim.Sched.spawn sched ~at:start (fun () ->
            try Trace.iter (Flow.issue flow) s.trace
            with Flow.Failed -> failed := true);
        (s.instance, flow, failed))
      streams
  in
  Ccsim.Sched.run sched;
  let makespan =
    List.fold_left (fun acc (_, flow, _) -> max acc (Flow.finish flow)) start flows
  in
  {
    makespan;
    per_instance = List.map (fun (id, flow, _) -> (id, Flow.finish flow)) flows;
    bus_beats = Bus.Topology.total_beats ic;
    bus_errors =
      List.fold_left (fun acc (_, flow, _) -> acc + Flow.errors flow) 0 flows;
    failed =
      List.filter_map
        (fun (id, _, failed) -> if !failed then Some id else None)
        flows;
  }
