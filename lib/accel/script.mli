(** Recorded access scripts: the config-independent skeleton of a kernel's
    execution, recorded once and re-derived per protection config without
    re-interpreting the kernel.

    Everything the timing layers consume from an interpretation is a pure
    function of the access sequence it emits — (gap, buffer, offset, size,
    kind, dependence) per transaction plus op counts — and that sequence
    depends only on the kernel, its parameters and the synthesized
    directives, never on the protection config or the layout bases.
    {!Soc.Run} records a script alongside the first interpretation of each
    (kernel, params, directives) bench and thereafter derives per-config
    traces ({!to_trace}) or drives the event core directly ({!drive_event}).

    Exactness is the contract: both derivations mirror {!Engine}'s backends
    operation for operation — the same adjudication call order against the
    same guard (so stateful schemes like the cached CapChecker or the IOMMU
    TLB see the identical check sequence), the same burst formation against
    the per-system bus addresses, counters updated on the interpreter's
    schedule (a denial truncates them exactly where the interpreter would),
    and the same bus-error report for accesses escaping physical memory.
    The differential suite pins byte-for-byte equality against the
    interpretive engine across every kernel and config. *)

type addressing =
  | Plain        (** raw physical addresses, no provenance (unguarded, IOMMU,
                     IOPMP, sNPU configurations) *)
  | Coarse_ids   (** object id retrofitted into the top 8 address bits by the
                     trusted driver (CapChecker Coarse) *)
  | Fine_ports   (** per-object port provenance carried out of band
                     (CapChecker Fine) *)

type op =
  | Access of {
      a_gap : int;        (** datapath gap taken before this access *)
      a_kind : Guard.Iface.kind;
      a_buf : int;        (** buffer index into the script's name table *)
      a_off : int;        (** byte offset within the buffer *)
      a_size : int;
      a_dependent : bool;
      a_ops : int;        (** datapath ops executed before this access issued *)
    }
  | Copy of {
      y_gap : int;
      y_bytes : int;
      y_src : int;
      y_dst : int;
      y_ops : int;
    }

type t = {
  s_bufs : string array;  (** buffer index -> declared buffer name *)
  s_ops : op array;
  s_total_ops : int;      (** datapath ops of the whole interpretation *)
}

val length : t -> int
val total_ops : t -> int

(** Accumulates the access sequence during a recording interpretation (the
    engine calls {!Recorder.access}/{!Recorder.copy} from its execution
    closures, see {!Engine.run}). *)
module Recorder : sig
  type script := t
  type t

  val create : unit -> t

  val access :
    t ->
    gap:int ->
    kind:Guard.Iface.kind ->
    name:string ->
    off:int ->
    size:int ->
    dependent:bool ->
    ops:int ->
    unit

  val copy :
    t -> gap:int -> bytes:int -> src:string -> dst:string -> ops:int -> unit

  val finalize : t -> total_ops:int -> complete:bool -> script option
  (** [None] unless [complete]: a recording truncated by a denial or an
      exhausted retry budget is not a faithful skeleton of the kernel. *)
end

(** How a derivation adjudicates each access (the mirror of the engine's
    elide / fast-path / live-guard trichotomy). *)
type adjudication =
  | Adj_live of Guard.Iface.t
      (** call the guard, in the interpreter's exact order — sound for any
          guard, stateful or not *)
  | Adj_fastpath of int
      (** skip the call and grant at this constant latency; sound only for a
          pure guard ({!Guard.Iface.const_latency}) on a statically proven
          task *)
  | Adj_elide  (** proven task with modeled checker off: zero latency *)

exception Denied of Guard.Iface.denial

type derived = {
  d_trace : Trace.t;
  d_denied : Guard.Iface.denial option;
  d_checks : int;
  d_elided : int;
  d_fastpathed : int;
  d_reads : int;
  d_writes : int;
  d_ops : int;
}

val to_trace :
  t ->
  bus:Bus.Params.t ->
  mem_size:int ->
  layout:Memops.Layout.t ->
  obj_ids:(string * int) list ->
  addressing:addressing ->
  source:int ->
  adjudication ->
  derived
(** Derive the DMA trace this script produces under one protection config:
    byte-identical to {!Engine.run}'s [outcome] for the same task (trace,
    denial, counters), minus the functional memory effects — which are
    unobservable to the timing and verdict layers because the verifier is
    only consulted on denial-free runs and [mem_size] reproduces the
    interpreter's bus-error check exactly. *)

type ev_derived = {
  e_denied : Guard.Iface.denial option;
  e_checks : int;
  e_elided : int;
  e_fastpathed : int;
  e_reads : int;
  e_writes : int;
  e_ops : int;
  e_finish : int;
  e_failed : bool;
}

val drive_event :
  t ->
  ?error_retry_limit:int ->
  sched:Ccsim.Sched.t ->
  ic:Bus.Topology.t ->
  start:int ->
  bus:Bus.Params.t ->
  mem_size:int ->
  max_outstanding:int ->
  layout:Memops.Layout.t ->
  obj_ids:(string * int) list ->
  addressing:addressing ->
  source:int ->
  adjudication ->
  on_done:(ev_derived -> unit) ->
  unit
(** Drive the live event core from the script: spawns a {!Ccsim.Sched}
    process at [start] mirroring {!Engine.run_event}'s scheduler-call
    sequence exactly — the same waits, burst merges, flushes and
    {!Flow.issue} targets at the same simulated times, so arbitration,
    stateful-guard check order and fault-draw interleavings are identical to
    interpreting the task live.  [on_done] fires when the stream retires;
    collect after {!Ccsim.Sched.run} drains. *)

type flat_plan
(** Everything about one task's event-core run that does not depend on the
    clock, derived ahead of time: the exact burst sequence {!drive_event}'s
    fiber would feed {!Flow.issue}, plus the final counters and denial.
    Only derivable under a constant-latency adjudication — with a live
    (possibly stateful) guard the check results, and therefore the bursts,
    depend on cross-task interleaving. *)

val flat_plan :
  t ->
  bus:Bus.Params.t ->
  mem_size:int ->
  layout:Memops.Layout.t ->
  obj_ids:(string * int) list ->
  addressing:addressing ->
  source:int ->
  adjudication ->
  flat_plan option
(** [None] for {!Adj_live}. *)

val drive_event_flat :
  flat_plan ->
  sched:Ccsim.Sched.t ->
  ic:Bus.Topology.t ->
  start:int ->
  max_outstanding:int ->
  source:int ->
  on_done:(ev_derived -> unit) ->
  unit
(** Drive the event core from a precomputed plan without a coroutine: one
    persistent grant callback absorbs each grant with {!Flow}'s exact rules
    and pushes the next request synchronously, producing the identical grant
    schedule, finish time and counters as {!drive_event} — the steady-state
    fast-forward's fast leg.  Registers a {!Bus.Arbiter.flat_client} at the
    first request so the shared arbiter may leap periodic steady state.
    Preconditions (the run layer gates them): shared-bus topology (burst
    targets are not re-derived) and an inert fault injector (a bus error in
    flat mode is a [failwith]).  [on_done] fires synchronously at the last
    grant's absorption rather than at the final wake cycle — byte-identical
    results either way, since retirement only records counters. *)
