(** HLS synthesis directives — the stand-in for Vitis HLS.

    The paper generates each benchmark's accelerator with Vitis HLS; the
    resulting hardware differs in parallelism, pipelining and memory-port
    organization.  Here those differences are captured as per-kernel
    directives that the accelerator model consumes.  They are performance/area
    knobs only: the protection model never depends on them (the CapChecker
    treats the accelerator as a black box behind its memory interface). *)

type t = {
  compute_ipc : float;
      (** sustained kernel-IR operations per cycle of the synthesized
          datapath (unroll × pipelining); CPUs are ~0.3-1, accelerators
          reach hundreds *)
  max_outstanding : int;
      (** streaming read requests in flight before the FU stalls *)
  fine_ports : bool;
      (** the accelerator exposes one memory port (or hardened interface
          metadata) per object — enables the CapChecker's Fine mode *)
  area_luts : int;  (** synthesized area of one FU instance *)
}

val default : t
(** A modest pipelined accelerator: ipc 16, 8 outstanding, fine ports,
    8k LUTs. *)

val make :
  ?compute_ipc:float ->
  ?max_outstanding:int ->
  ?fine_ports:bool ->
  ?area_luts:int ->
  unit ->
  t

(** {1 Synthesis}

    [synthesize] is the stand-in for invoking Vitis HLS on (kernel source,
    directive set): it elaborates the kernel IR into a [design] — the port
    map, static datapath schedule statistics and the performance/area
    figures the system model consumes.  A design depends only on the kernel
    and the directives, never on launch parameters or system state, so it is
    memoized per [(kernel name, directives)]: a parallelism sweep that runs
    the same benchmark at 1/2/4/8/16 tasks synthesizes once and hits the
    cache thereafter.  The cache is domain-safe (mutex-guarded) — parallel
    {!Ccsim.Pool} jobs may share it freely. *)

type design = {
  d_kernel : string;         (** kernel name (the cache key's first half) *)
  d_directives : t;          (** the directive set synthesized under *)
  d_ports : int;             (** DMA-visible memory ports (= heap buffers) *)
  d_scratch_mems : int;      (** accelerator-internal BRAMs *)
  d_static_ops : int;        (** datapath operation nodes in the schedule *)
  d_loop_depth : int;        (** deepest loop nest *)
  d_buffer_bytes : int;      (** total heap-buffer footprint in bytes *)
  d_compute_ipc : float;     (** as {!field:compute_ipc} *)
  d_max_outstanding : int;   (** as {!field:max_outstanding} *)
  d_fine_ports : bool;       (** as {!field:fine_ports} *)
  d_area_luts : int;         (** as {!field:area_luts} *)
}

val synthesize : kernel:Kernel.Ir.t -> t -> design
(** Memoized; a cache hit returns a design structurally identical to fresh
    synthesis (pinned by a unit test). *)

val synthesize_uncached : kernel:Kernel.Ir.t -> t -> design
(** Always re-elaborates; the oracle the cache is tested against. *)

val cache_stats : unit -> int * int
(** [(hits, misses)] since start-up (or {!cache_clear}). *)

val cache_clear : unit -> unit
