type t = {
  compute_ipc : float;
  max_outstanding : int;
  fine_ports : bool;
  area_luts : int;
}

let default =
  { compute_ipc = 16.0; max_outstanding = 8; fine_ports = true; area_luts = 8_000 }

let make ?(compute_ipc = default.compute_ipc)
    ?(max_outstanding = default.max_outstanding)
    ?(fine_ports = default.fine_ports) ?(area_luts = default.area_luts) () =
  assert (compute_ipc > 0.0);
  assert (max_outstanding >= 1);
  { compute_ipc; max_outstanding; fine_ports; area_luts }

(* ------------------------------------------------------------------ *)
(* Synthesis: (kernel, directives) -> design                            *)
(* ------------------------------------------------------------------ *)

type design = {
  d_kernel : string;
  d_directives : t;
  d_ports : int;
  d_scratch_mems : int;
  d_static_ops : int;
  d_loop_depth : int;
  d_buffer_bytes : int;
  d_compute_ipc : float;
  d_max_outstanding : int;
  d_fine_ports : bool;
  d_area_luts : int;
}

(* The schedule walk: count the datapath operations each statement
   elaborates to (one per expression node, matching the interpreter's tick
   accounting) and the deepest loop nest, without executing anything.  This
   is the pure, launch-parameter-independent part of "running Vitis HLS" —
   exactly the work a sweep repeats for every (tasks, config) point unless
   it is cached. *)
let rec exp_ops (e : Kernel.Ir.exp) =
  match e with
  | Kernel.Ir.Int _ | Kernel.Ir.Flt _ | Kernel.Ir.Var _ | Kernel.Ir.Param _ -> 1
  | Kernel.Ir.Load (_, idx) -> 1 + exp_ops idx
  | Kernel.Ir.Bin (_, a, b) -> 1 + exp_ops a + exp_ops b
  | Kernel.Ir.Un (_, a) -> 1 + exp_ops a

let rec stmt_ops (s : Kernel.Ir.stmt) =
  match s with
  | Kernel.Ir.Let (_, e) -> exp_ops e
  | Kernel.Ir.Store (_, idx, value) -> 1 + exp_ops idx + exp_ops value
  | Kernel.Ir.For (_, lo, hi, body) -> exp_ops lo + exp_ops hi + body_ops body
  | Kernel.Ir.While (cond, body) -> exp_ops cond + body_ops body
  | Kernel.Ir.If (cond, then_, else_) ->
      exp_ops cond + body_ops then_ + body_ops else_
  | Kernel.Ir.Memcpy { elems; _ } -> 1 + exp_ops elems

and body_ops body = List.fold_left (fun acc s -> acc + stmt_ops s) 0 body

let rec stmt_depth (s : Kernel.Ir.stmt) =
  match s with
  | Kernel.Ir.Let _ | Kernel.Ir.Store _ | Kernel.Ir.Memcpy _ -> 0
  | Kernel.Ir.For (_, _, _, body) | Kernel.Ir.While (_, body) ->
      1 + body_depth body
  | Kernel.Ir.If (_, then_, else_) -> max (body_depth then_) (body_depth else_)

and body_depth body = List.fold_left (fun acc s -> max acc (stmt_depth s)) 0 body

let synthesize_uncached ~(kernel : Kernel.Ir.t) directives =
  {
    d_kernel = kernel.Kernel.Ir.name;
    d_directives = directives;
    d_ports = List.length kernel.Kernel.Ir.bufs;
    d_scratch_mems = List.length kernel.Kernel.Ir.scratch;
    d_static_ops = body_ops kernel.Kernel.Ir.body;
    d_loop_depth = body_depth kernel.Kernel.Ir.body;
    d_buffer_bytes =
      List.fold_left
        (fun acc b -> acc + Kernel.Ir.buf_decl_bytes b)
        0 kernel.Kernel.Ir.bufs;
    d_compute_ipc = directives.compute_ipc;
    d_max_outstanding = directives.max_outstanding;
    d_fine_ports = directives.fine_ports;
    d_area_luts = directives.area_luts;
  }

(* The memo table is shared across every domain of a parallel batch
   ({!Ccsim.Pool}), so it is the one piece of cross-job mutable state in the
   runner — guarded by a mutex, and safe because a design is immutable once
   synthesized and independent of which job asked first. *)
let cache : (string * t, design) Hashtbl.t = Hashtbl.create 64
let cache_lock = Mutex.create ()
let hits = ref 0
let misses = ref 0

let synthesize ~kernel directives =
  let key = (kernel.Kernel.Ir.name, directives) in
  Mutex.lock cache_lock;
  match Hashtbl.find_opt cache key with
  | Some design ->
      incr hits;
      Mutex.unlock cache_lock;
      design
  | None ->
      (* Synthesis itself runs outside the lock only at the cost of
         duplicated work on a race; holding it keeps the stats exact and the
         walk is far too cheap to contend. *)
      let design = synthesize_uncached ~kernel directives in
      Hashtbl.replace cache key design;
      incr misses;
      Mutex.unlock cache_lock;
      design

let cache_stats () =
  Mutex.lock cache_lock;
  let s = (!hits, !misses) in
  Mutex.unlock cache_lock;
  s

let cache_clear () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  hits := 0;
  misses := 0;
  Mutex.unlock cache_lock
