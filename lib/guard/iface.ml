type kind = Read | Write

type req = {
  source : int;
  port : int option;
  addr : int;
  size : int;
  kind : kind;
}

type denial = { code : string; detail : string }

type outcome = Granted of { phys : int; latency : int } | Denied of denial

type granularity = G_none | G_page | G_task | G_object

let granularity_label = function
  | G_none -> "X"
  | G_page -> "PG"
  | G_task -> "TA"
  | G_object -> "OB"

type info = { name : string; granularity : granularity; area_luts : int }

type t = {
  info : info;
  check : req -> outcome;
  entries_in_use : unit -> int;
  const_latency : int option;
}

let pass_through =
  {
    info = { name = "none"; granularity = G_none; area_luts = 0 };
    check = (fun r -> Granted { phys = r.addr; latency = 0 });
    entries_in_use = (fun () -> 0);
    const_latency = Some 0;
  }

let req_to_string r =
  Printf.sprintf "%s src=%d port=%s addr=0x%x size=%d"
    (match r.kind with Read -> "R" | Write -> "W")
    r.source
    (match r.port with Some p -> string_of_int p | None -> "-")
    r.addr r.size
