type t = {
  regions_per_task : int;
  table : (int, (int * int) list ref) Hashtbl.t;  (* source -> (base, top) list *)
}

let create ?(regions_per_task = 8) () =
  { regions_per_task; table = Hashtbl.create 16 }

let grant t ~source ~base ~size =
  let regions =
    match Hashtbl.find_opt t.table source with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.table source r;
        r
  in
  if List.length !regions >= t.regions_per_task then
    Error "sNPU bounds registers exhausted for task"
  else begin
    regions := (base, base + size) :: !regions;
    Ok ()
  end

let revoke_task t ~source = Hashtbl.remove t.table source

(* Bounds-register pairs and comparators embedded in the NPU datapath. *)
let area_luts t = 300 + (8 * t.regions_per_task * 70)

let as_guard t =
  let check (req : Iface.req) =
    let allowed =
      match Hashtbl.find_opt t.table req.Iface.source with
      | None -> false
      | Some regions ->
          List.exists
            (fun (base, top) -> req.addr >= base && req.addr + req.size <= top)
            !regions
    in
    (* Task granularity: any region of the task admits the access, regardless
       of which object it was meant for — and read/write are not
       distinguished, matching sNPU's region model. *)
    if allowed then Iface.Granted { phys = req.addr; latency = 1 }
    else
      Iface.Denied
        { code = "snpu"; detail = "outside task regions: " ^ Iface.req_to_string req }
  in
  {
    Iface.info = { name = "snpu"; granularity = Iface.G_task; area_luts = area_luts t };
    check;
    entries_in_use =
      (fun () -> Hashtbl.fold (fun _ r acc -> acc + List.length !r) t.table 0);
    (* Pure bounds-register comparators embedded in the datapath. *)
    const_latency = Some 1;
  }
