type rule = {
  source : int;
  base : int;
  top : int;
  can_read : bool;
  can_write : bool;
}

type t = { max_regions : int; mutable rules : rule list }

let create ?(regions = 16) () = { max_regions = regions; rules = [] }
let max_regions t = t.max_regions

let add_rule t rule =
  if List.length t.rules >= t.max_regions then
    Error
      (Printf.sprintf "IOPMP region file full (%d regions)" t.max_regions)
  else begin
    t.rules <- rule :: t.rules;
    Ok ()
  end

let remove_rules_for t ~source =
  t.rules <- List.filter (fun r -> r.source <> source) t.rules

(* Per-region LUT cost of the parallel associative comparators, plus decode
   logic; calibrated so a 16-region IOPMP sits in the few-thousand-LUT range
   reported for open-source implementations (Protego). *)
let area_luts t = 400 + (260 * t.max_regions)

let matches (req : Iface.req) r =
  req.Iface.source = r.source
  && req.addr >= r.base
  && req.addr + req.size <= r.top
  &&
  match req.kind with Iface.Read -> r.can_read | Iface.Write -> r.can_write

let as_guard t =
  let check req =
    if List.exists (matches req) t.rules then
      Iface.Granted { phys = req.Iface.addr; latency = 1 }
    else
      Iface.Denied
        { code = "iopmp"; detail = "no matching region: " ^ Iface.req_to_string req }
  in
  {
    Iface.info =
      { name = "iopmp"; granularity = Iface.G_task; area_luts = area_luts t };
    check;
    entries_in_use = (fun () -> List.length t.rules);
    (* Pure associative comparators: a grant reads the region file only. *)
    const_latency = Some 1;
  }
