let page_size = 4096

type perm = { mutable read : bool; mutable write : bool }

type t = {
  table : (int * int, perm) Hashtbl.t;  (* (source, page) -> perm *)
  tlb : (int * int) option array;       (* direct-mapped IOTLB of (source, page) *)
  mutable tlb_hits : int;
  mutable tlb_misses : int;
}

let create ?(tlb_entries = 32) () =
  {
    table = Hashtbl.create 256;
    tlb = Array.make tlb_entries None;
    tlb_hits = 0;
    tlb_misses = 0;
  }

let page_of addr = addr / page_size

let map_range t ~source ~base ~size ~read ~write =
  if size > 0 then
    for page = page_of base to page_of (base + size - 1) do
      match Hashtbl.find_opt t.table (source, page) with
      | Some p ->
          p.read <- p.read || read;
          p.write <- p.write || write
      | None -> Hashtbl.add t.table (source, page) { read; write }
    done

let unmap_source t ~source =
  let doomed =
    Hashtbl.fold
      (fun ((s, _) as key) _ acc -> if s = source then key :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed;
  Array.iteri
    (fun idx slot ->
      match slot with
      | Some (s, _) when s = source -> t.tlb.(idx) <- None
      | Some _ | None -> ())
    t.tlb

let entries_for_range ~base ~size =
  if size <= 0 then 0 else page_of (base + size - 1) - page_of base + 1

let mapped_pages t = Hashtbl.length t.table

(* Page-walk machinery, IOTLB CAM and the table walker make IOMMUs markedly
   larger than an IOPMP; calibrated to a small embedded IOMMU. *)
let area_luts = 48_000

let tlb_lookup t key =
  let idx = Hashtbl.hash key mod Array.length t.tlb in
  match t.tlb.(idx) with
  | Some k when k = key ->
      t.tlb_hits <- t.tlb_hits + 1;
      true
  | Some _ | None ->
      t.tlb_misses <- t.tlb_misses + 1;
      t.tlb.(idx) <- Some key;
      false

let as_guard t =
  let check (req : Iface.req) =
    if req.size <= 0 then Iface.Granted { phys = req.addr; latency = 2 }
    else begin
      let first = page_of req.addr and last = page_of (req.addr + req.size - 1) in
      let rec pages_ok page =
        if page > last then true
        else
          match Hashtbl.find_opt t.table (req.source, page) with
          | Some p ->
              let ok =
                match req.kind with Iface.Read -> p.read | Iface.Write -> p.write
              in
              ok && pages_ok (page + 1)
          | None -> false
      in
      let hit = tlb_lookup t (req.source, first) in
      let latency = if hit then 2 else 20 in
      if pages_ok first then Iface.Granted { phys = req.addr; latency }
      else
        Iface.Denied
          { code = "iommu"; detail = "page fault: " ^ Iface.req_to_string req }
    end
  in
  {
    Iface.info = { name = "iommu"; granularity = Iface.G_page; area_luts };
    check;
    entries_in_use = (fun () -> mapped_pages t);
    (* The TLB makes grant latency history-dependent (2 on a hit, 20 on a
       walk) and every check mutates TLB state. *)
    const_latency = None;
  }
