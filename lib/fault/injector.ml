type counts = {
  bus_stalls : int;
  bus_stall_cycles : int;
  bus_errors : int;
  guard_denials : int;
  table_fulls : int;
  cache_drops : int;
  alloc_fails : int;
  retries : int;
  backoff_cycles : int;
  fallbacks : int;
}

let zero_counts =
  {
    bus_stalls = 0;
    bus_stall_cycles = 0;
    bus_errors = 0;
    guard_denials = 0;
    table_fulls = 0;
    cache_drops = 0;
    alloc_fails = 0;
    retries = 0;
    backoff_cycles = 0;
    fallbacks = 0;
  }

type t = {
  plan : Plan.t;
  active : bool;
  obs : Obs.Trace.t;
  bus_rng : Ccsim.Rng.t;
  guard_rng : Ccsim.Rng.t;
  table_rng : Ccsim.Rng.t;
  cache_rng : Ccsim.Rng.t;
  alloc_rng : Ccsim.Rng.t;
  mutable c : counts;
}

let create ?(obs = Obs.Trace.null) (plan : Plan.t) =
  let root = Ccsim.Rng.create plan.Plan.seed in
  let split () = Ccsim.Rng.split root in
  {
    plan;
    active = not (Plan.is_none plan);
    obs;
    bus_rng = split ();
    guard_rng = split ();
    table_rng = split ();
    cache_rng = split ();
    alloc_rng = split ();
    c = zero_counts;
  }

let none = create Plan.none
let active t = t.active
let plan t = t.plan
let counts t = t.c
let transient_denial_code = "fault-transient"

let emit t ~layer ~kind ~task =
  Obs.Trace.emit t.obs (Obs.Event.Fault_injected { layer; kind; task })

(* Each probe draws from its layer's private stream only when that fault
   class is enabled, so plans that enable a single class stay deterministic
   regardless of the others. *)

let hit rng prob = prob > 0.0 && Ccsim.Rng.float rng 1.0 < prob

let bus_stall t =
  if not t.active then 0
  else if hit t.bus_rng t.plan.Plan.bus_stall_prob then begin
    let cycles = Ccsim.Rng.int_in t.bus_rng 1 (max 1 t.plan.Plan.bus_stall_max) in
    t.c <-
      {
        t.c with
        bus_stalls = t.c.bus_stalls + 1;
        bus_stall_cycles = t.c.bus_stall_cycles + cycles;
      };
    emit t ~layer:"bus" ~kind:"stall" ~task:(-1);
    cycles
  end
  else 0

let bus_error t =
  t.active
  && hit t.bus_rng t.plan.Plan.bus_error_prob
  &&
  (t.c <- { t.c with bus_errors = t.c.bus_errors + 1 };
   emit t ~layer:"bus" ~kind:"error" ~task:(-1);
   true)

let guard_denial t =
  t.active
  && hit t.guard_rng t.plan.Plan.guard_denial_prob
  &&
  (t.c <- { t.c with guard_denials = t.c.guard_denials + 1 };
   emit t ~layer:"guard" ~kind:"transient_denial" ~task:(-1);
   true)

let table_full t =
  t.active
  && hit t.table_rng t.plan.Plan.table_full_prob
  &&
  (t.c <- { t.c with table_fulls = t.c.table_fulls + 1 };
   emit t ~layer:"guard" ~kind:"table_full" ~task:(-1);
   true)

let cache_drop t =
  t.active
  && hit t.cache_rng t.plan.Plan.cache_drop_prob
  &&
  (t.c <- { t.c with cache_drops = t.c.cache_drops + 1 };
   emit t ~layer:"guard" ~kind:"cache_drop" ~task:(-1);
   true)

let alloc_fail t =
  t.active
  && hit t.alloc_rng t.plan.Plan.alloc_fail_prob
  &&
  (t.c <- { t.c with alloc_fails = t.c.alloc_fails + 1 };
   emit t ~layer:"driver" ~kind:"alloc_fail" ~task:(-1);
   true)

let note_retry t ~backoff =
  if t.active then
    t.c <-
      {
        t.c with
        retries = t.c.retries + 1;
        backoff_cycles = t.c.backoff_cycles + backoff;
      }

let note_fallback t =
  if t.active then t.c <- { t.c with fallbacks = t.c.fallbacks + 1 }
