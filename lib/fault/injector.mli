(** Runtime state for executing a {!Plan}.

    One injector is created per simulated system.  Each injection layer draws
    from its own split of the plan's root RNG, so enabling or disabling one
    fault class never perturbs the sequence another class sees.  All probes on
    an injector built from {!Plan.none} are inert: no RNG draws, no events, no
    counter updates — the zero-cost path existing code relies on for
    bit-identical no-fault behaviour. *)

type t

(** Cumulative injection / recovery counters for one run. *)
type counts = {
  bus_stalls : int;  (** bus requests given an extra-latency stall *)
  bus_stall_cycles : int;  (** total stall cycles injected *)
  bus_errors : int;  (** bus requests answered with an error response *)
  guard_denials : int;  (** transient spurious guard denials *)
  table_fulls : int;  (** capability installs forced to report table-full *)
  cache_drops : int;  (** cached-checker lines dropped before a fetch *)
  alloc_fails : int;  (** driver allocations transiently failed *)
  retries : int;  (** retry attempts recorded via {!note_retry} *)
  backoff_cycles : int;  (** total backoff cycles charged across retries *)
  fallbacks : int;  (** tasks degraded to CPU via {!note_fallback} *)
}

val zero_counts : counts

val create : ?obs:Obs.Trace.t -> Plan.t -> t
(** [create ?obs plan] builds an injector.  Injection probes emit
    [Obs.Event.Fault_injected] events to [obs] (default: the null sink). *)

val none : t
(** Shared inert injector (from {!Plan.none}); safe as a default argument —
    probes never mutate it. *)

val active : t -> bool
val plan : t -> Plan.t
val counts : t -> counts

val transient_denial_code : string
(** Denial code used for injected spurious guard denials, so drivers can tell
    them apart from genuine protection violations in reports. *)

(** {2 Injection probes}

    Each probe makes at most one decision per call, using the layer's private
    RNG stream.  On an inert injector they return the "no fault" value without
    drawing. *)

val bus_stall : t -> int
(** Extra stall cycles (0 = no fault) to add to a bus request's completion. *)

val bus_error : t -> bool
(** [true]: the bus request completes with an error response. *)

val guard_denial : t -> bool
(** [true]: the guard check should report a transient spurious denial. *)

val table_full : t -> bool
(** [true]: the capability install should report table-full / be dropped. *)

val cache_drop : t -> bool
(** [true]: the cached checker should lose the cache line before this fetch. *)

val alloc_fail : t -> bool
(** [true]: the driver [allocate] call should fail transiently. *)

(** {2 Recovery bookkeeping}

    These only update counters (no events; callers emit their own
    [Task_retry]/[Task_fallback] events on the system sink).  No-ops on an
    inert injector, so the shared {!none} singleton is never mutated. *)

val note_retry : t -> backoff:int -> unit
val note_fallback : t -> unit
