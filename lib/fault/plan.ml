type t = {
  seed : int;
  bus_stall_prob : float;
  bus_stall_max : int;
  bus_error_prob : float;
  guard_denial_prob : float;
  table_full_prob : float;
  cache_drop_prob : float;
  alloc_fail_prob : float;
}

let none =
  {
    seed = 0;
    bus_stall_prob = 0.0;
    bus_stall_max = 0;
    bus_error_prob = 0.0;
    guard_denial_prob = 0.0;
    table_full_prob = 0.0;
    cache_drop_prob = 0.0;
    alloc_fail_prob = 0.0;
  }

let is_none t =
  t.bus_stall_prob <= 0.0
  && t.bus_error_prob <= 0.0
  && t.guard_denial_prob <= 0.0
  && t.table_full_prob <= 0.0
  && t.cache_drop_prob <= 0.0
  && t.alloc_fail_prob <= 0.0

let default ~seed =
  {
    seed;
    bus_stall_prob = 0.02;
    bus_stall_max = 16;
    bus_error_prob = 0.005;
    guard_denial_prob = 0.002;
    table_full_prob = 0.02;
    cache_drop_prob = 0.05;
    alloc_fail_prob = 0.08;
  }

let with_seed t ~seed = { t with seed }

let to_string t =
  if is_none t then "none"
  else
    Printf.sprintf
      "seed=%d bus_stall=%.3f(max %d) bus_error=%.3f guard_denial=%.3f \
       table_full=%.3f cache_drop=%.3f alloc_fail=%.3f"
      t.seed t.bus_stall_prob t.bus_stall_max t.bus_error_prob
      t.guard_denial_prob t.table_full_prob t.cache_drop_prob t.alloc_fail_prob
