(** A deterministic fault plan.

    A plan is pure data: per-layer fault probabilities plus the seed that
    drives every pseudo-random draw.  The same plan always produces the same
    fault sequence for the same workload — faults are reproducible, which is
    what makes them debuggable and CI-testable.

    [none] is the distinguished no-fault plan; every injection site treats it
    as a compile-time-like no-op, so a run under [none] is bit-identical to a
    run without any fault plumbing at all. *)

type t = {
  seed : int;  (** root seed; each injection layer gets an independent split *)
  bus_stall_prob : float;  (** per bus request: extra-latency stall *)
  bus_stall_max : int;  (** max stall cycles per stalled request (>= 1) *)
  bus_error_prob : float;  (** per bus request: error response *)
  guard_denial_prob : float;  (** per guard check: transient spurious denial *)
  table_full_prob : float;  (** per capability install: forced table-full *)
  cache_drop_prob : float;  (** per cached-checker fetch: dropped cache line *)
  alloc_fail_prob : float;  (** per driver [allocate]: transient failure *)
}

val none : t
(** The no-fault plan. Runs under [none] behave bit-identically to runs with
    no fault plan at all. *)

val is_none : t -> bool
(** [true] iff every fault probability is zero (the seed is ignored). *)

val default : seed:int -> t
(** A plan with moderate rates at every layer: faults fire often enough to
    exercise retry and fallback paths on small benchmarks, but rarely enough
    that most tasks recover within the driver's retry budget. *)

val with_seed : t -> seed:int -> t

val to_string : t -> string
(** One-line human-readable summary, e.g. for CLI banners. *)
