(* capsim: command-line driver for the simulated CHERI heterogeneous system.

   Subcommands:
     list                      benchmarks and their accelerator shapes
     run -b BENCH [-c CONFIG]  one end-to-end measurement
     trace -b BENCH -o FILE    record an event trace (Perfetto-loadable JSON)
     sweep -b BENCH            parallelism sweep (Figure 11 style)
     attack [-s SCHEME]        run the attack suite against one scheme
     matrix                    the full CWE matrix (Table 3)
     faults -b BENCH --seed N  deterministic fault injection with recovery report
     lint [--all] [--json]     static capability-footprint verdict per kernel *)

open Cmdliner

let configs =
  [
    ("cpu", Soc.Config.cpu);
    ("ccpu", Soc.Config.ccpu);
    ("cpu+accel", Soc.Config.cpu_accel);
    ("ccpu+accel", Soc.Config.ccpu_accel);
    ("ccpu+caccel", Soc.Config.ccpu_caccel);
    ("coarse", Soc.Config.ccpu_caccel_coarse);
    ("cached", Soc.Config.ccpu_caccel_cached);
    ("iommu", Soc.Config.Hetero { cpu_isa = Cpu.Model.Cheri_rv64; protection = Soc.Config.Prot_iommu });
    ("iopmp", Soc.Config.Hetero { cpu_isa = Cpu.Model.Cheri_rv64; protection = Soc.Config.Prot_iopmp });
    ("snpu", Soc.Config.Hetero { cpu_isa = Cpu.Model.Cheri_rv64; protection = Soc.Config.Prot_snpu });
  ]

let config_conv = Arg.enum configs

let bench_conv =
  let parse s =
    match Machsuite.Registry.find s with
    | b -> Ok b
    | exception Not_found ->
        Error (`Msg (Printf.sprintf "unknown benchmark %s (try 'capsim list')" s))
  in
  Arg.conv (parse, fun fmt (b : Machsuite.Bench_def.t) -> Format.pp_print_string fmt b.name)

let bench_arg =
  Arg.(required & opt (some bench_conv) None & info [ "b"; "benchmark" ] ~doc:"Benchmark name.")

let config_arg =
  Arg.(value & opt config_conv Soc.Config.ccpu_caccel & info [ "c"; "config" ]
         ~doc:"System configuration.")

let tasks_arg =
  Arg.(value & opt int 8 & info [ "t"; "tasks" ] ~doc:"Concurrent accelerator tasks.")

let engines =
  [ ("replay", Soc.Run.Legacy_replay); ("event", Soc.Run.Event_driven) ]

let engine_arg =
  Arg.(value & opt (some (enum engines)) None
         & info [ "engine" ]
             ~doc:"Timing core: $(b,replay) records each accelerator's DMA \
                   stream and replays the contention (the default on the \
                   shared topology), $(b,event) runs every instance live on \
                   a shared discrete-event timeline with round-robin bus \
                   arbitration (the default — and only — core for \
                   concurrent topologies).")

(* Replay stays the default on the shared topology (every pinned output was
   measured against it); a concurrent topology needs the event core, so
   --topology crossbar/hier works without an explicit --engine event. *)
let resolve_engine ~topology = function
  | Some e -> e
  | None ->
      if topology = Bus.Topology.Shared then Soc.Run.Legacy_replay
      else Soc.Run.Event_driven

let engine_name engine =
  fst (List.find (fun (_, e) -> e = engine) engines)

let topology_conv =
  let parse s =
    match Bus.Topology.kind_of_string s with
    | Ok k -> Ok k
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    ( parse,
      fun fmt k -> Format.pp_print_string fmt (Bus.Topology.kind_to_string k) )

let topology_arg =
  Arg.(value & opt topology_conv Bus.Topology.Shared
         & info [ "topology" ]
             ~doc:"Interconnect topology: $(b,shared) (one bus, one grant per \
                   cycle — the default and the timing oracle), \
                   $(b,crossbar)[$(b,:N)] (N-bank address-interleaved \
                   crossbar, concurrent disjoint grants) or \
                   $(b,hier)[$(b,:N)] (N clusters behind an uplink to a \
                   shared root).")

let checkers_arg =
  Arg.(value & opt
         (enum
            [ ("central", Capchecker.Shim.Central);
              ("shim", Capchecker.Shim.Distributed) ])
         Capchecker.Shim.Central
       & info [ "checkers" ]
           ~doc:"Capability-checking placement: $(b,central) (one CapChecker \
                 behind the interconnect, the default) or $(b,shim) \
                 (per-accelerator shim tables refilled from the central \
                 table; identical verdicts, different latency).")

(* Replay acceleration mode (lib/soc/fastpath.ml).  Every mode produces
   byte-identical output — the CI replay-compilation gate diffs on/off — so
   the flag only trades simulation time for re-verification. *)
let fastpath_conv =
  let parse s =
    match Soc.Fastpath.mode_of_string s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown fast-path mode %s (on, off or diff)" s))
  in
  Arg.conv
    (parse, fun fmt m -> Format.pp_print_string fmt (Soc.Fastpath.mode_to_string m))

let fastpath_arg =
  Arg.(value & opt fastpath_conv Soc.Fastpath.Fast
         & info [ "fast-path" ]
             ~doc:"Replay acceleration: $(b,on) (the default) compiles \
                   recorded DMA traces into burst segments, derives cached \
                   access scripts instead of re-interpreting kernels, and \
                   skips per-access guard calls on statically proven tasks — \
                   byte-identical results, order-of-magnitude faster sweeps; \
                   $(b,off) re-interprets everything (the ground truth); \
                   $(b,diff) computes both legs and fails on any divergence.")

(* Event-engine steady-state fast-forward (lib/sim/eventff.ml): flat bus
   drivers plus periodic-schedule leaping in the contended event core.
   Exact by construction — the CI event-ff gate diffs on/off — so, like
   --fast-path, the flag only trades simulation time for re-verification. *)
let eventff_conv =
  let parse s =
    match Ccsim.Eventff.mode_of_string s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown event-ff mode %s (on, off or diff)" s))
  in
  Arg.conv
    ( parse,
      fun fmt m -> Format.pp_print_string fmt (Ccsim.Eventff.mode_to_string m) )

let eventff_arg =
  Arg.(value & opt eventff_conv Ccsim.Eventff.On
         & info [ "event-ff" ]
             ~doc:"Event-engine steady-state fast-forward: $(b,on) (the \
                   default) drives contended buses with flat callback \
                   clients and leaps periodic arbitration schedules whole \
                   periods at a time — byte-identical results; $(b,off) \
                   single-steps every event (the ground truth); $(b,diff) \
                   runs both legs and fails on any divergence.")

let cache_dir_arg =
  Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persist eligible run results (no observability sink, no \
                   fault plan) to $(docv), keyed by the full run \
                   configuration and a digest of this binary, and reuse \
                   them across processes.  Off unless given; a rebuild \
                   orphans old entries.")

let apply_common ~eventff ~cache_dir =
  Ccsim.Eventff.set_mode eventff;
  Soc.Runcache.set_dir cache_dir

(* Parallelism across independent simulations (Ccsim.Pool).  Results are
   index-deterministic: any --jobs value produces byte-identical output to
   --jobs 1 (the CI gate diffs them). *)
let jobs_arg =
  Arg.(value & opt int 1
         & info [ "j"; "jobs" ]
             ~doc:"Worker domains for independent simulations: $(b,1) runs \
                   serially (the default), $(b,0) uses every core.  Output \
                   is byte-identical at any value.")

(* Machine-readable result, stable across runs with the same inputs — the CI
   determinism gate diffs two of these byte-for-byte. *)
let json_of_result (r : Soc.Run.result) =
  let open Obs.Json in
  let c = r.Soc.Run.faults in
  Obj
    [
      ("benchmark", String r.Soc.Run.benchmark);
      ("config", String r.Soc.Run.config_label);
      ("tasks", Int r.Soc.Run.tasks);
      ("wall", Int r.Soc.Run.wall);
      ( "phases",
        Obj
          [
            ("alloc", Int r.Soc.Run.phases.Soc.Run.alloc);
            ("init", Int r.Soc.Run.phases.Soc.Run.init);
            ("compute", Int r.Soc.Run.phases.Soc.Run.compute);
            ("teardown", Int r.Soc.Run.phases.Soc.Run.teardown);
          ] );
      ("correct", Bool r.Soc.Run.correct);
      ("checks", Int r.Soc.Run.checks);
      ("elided_checks", Int r.Soc.Run.elided_checks);
      ("entries_peak", Int r.Soc.Run.entries_peak);
      ("bus_beats", Int r.Soc.Run.bus_beats);
      ("area_luts", Int r.Soc.Run.area_luts);
      ( "denials",
        List
          (List.map
             (fun (d : Guard.Iface.denial) ->
               Obj
                 [
                   ("code", String d.Guard.Iface.code);
                   ("detail", String d.Guard.Iface.detail);
                 ])
             r.Soc.Run.denials) );
      ("recovered", Int r.Soc.Run.recovered);
      ( "fallbacks",
        List
          (List.map
             (fun (f : Soc.Run.fallback) ->
               Obj
                 [
                   ("task", Int f.Soc.Run.task);
                   ("reason", String f.Soc.Run.reason);
                 ])
             r.Soc.Run.fallbacks) );
      ( "faults",
        Obj
          [
            ("bus_stalls", Int c.Fault.Injector.bus_stalls);
            ("bus_stall_cycles", Int c.Fault.Injector.bus_stall_cycles);
            ("bus_errors", Int c.Fault.Injector.bus_errors);
            ("guard_denials", Int c.Fault.Injector.guard_denials);
            ("table_fulls", Int c.Fault.Injector.table_fulls);
            ("cache_drops", Int c.Fault.Injector.cache_drops);
            ("alloc_fails", Int c.Fault.Injector.alloc_fails);
            ("retries", Int c.Fault.Injector.retries);
            ("backoff_cycles", Int c.Fault.Injector.backoff_cycles);
          ] );
    ]

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (b : Machsuite.Bench_def.t) ->
        Printf.printf "%-14s %2d buffers  ipc %-6.0f %s\n" b.name
          (List.length b.kernel.Kernel.Ir.bufs)
          b.directives.Hls.Directives.compute_ipc b.description)
      Machsuite.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the MachSuite benchmarks")
    Term.(const run $ const ())

(* ---- run ---- *)

let run_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the result as JSON.")
  in
  let run bench config tasks engine topology checkers fastpath eventff
      cache_dir json =
    Soc.Fastpath.set_mode fastpath;
    apply_common ~eventff ~cache_dir;
    let engine = resolve_engine ~topology engine in
    let r = Soc.Run.run ~tasks ~engine ~topology ~checkers config bench in
    if json then print_endline (Obs.Json.to_string (json_of_result r))
    else begin
      Printf.printf "%s on %s, %d task(s)\n" r.Soc.Run.benchmark r.Soc.Run.config_label
        r.Soc.Run.tasks;
      Printf.printf "  wall      %9d cycles\n" r.Soc.Run.wall;
      Printf.printf "  alloc     %9d\n" r.Soc.Run.phases.Soc.Run.alloc;
      Printf.printf "  init      %9d\n" r.Soc.Run.phases.Soc.Run.init;
      Printf.printf "  compute   %9d\n" r.Soc.Run.phases.Soc.Run.compute;
      Printf.printf "  teardown  %9d\n" r.Soc.Run.phases.Soc.Run.teardown;
      Printf.printf "  correct   %b\n" r.Soc.Run.correct;
      Printf.printf "  checks    %d (entries peak %d)\n" r.Soc.Run.checks r.Soc.Run.entries_peak;
      Printf.printf "  area      %d LUTs, power %.0f mW\n" r.Soc.Run.area_luts r.Soc.Run.power_mw;
      List.iter
        (fun (d : Guard.Iface.denial) -> Printf.printf "  denial: %s\n" d.Guard.Iface.detail)
        r.Soc.Run.denials
    end
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one benchmark end to end")
    Term.(const run $ bench_arg $ config_arg $ tasks_arg $ engine_arg
          $ topology_arg $ checkers_arg $ fastpath_arg $ eventff_arg
          $ cache_dir_arg $ json_arg)

(* ---- trace ---- *)

let trace_cmd =
  let out_arg =
    Arg.(value & opt string "trace.json"
           & info [ "o"; "output" ] ~docv:"FILE"
               ~doc:"Where to write the Chrome trace-event JSON (open it at \
                     ui.perfetto.dev or chrome://tracing).")
  in
  let capacity_arg =
    Arg.(value & opt int 262_144
           & info [ "n"; "events" ]
               ~doc:"Event-ring capacity; once full, the oldest events are \
                     dropped (and counted).")
  in
  let run bench config tasks engine out capacity =
    let engine = resolve_engine ~topology:Bus.Topology.Shared engine in
    let obs = Obs.Trace.create ~capacity () in
    let r = Soc.Run.run ~tasks ~obs ~engine config bench in
    Obs.Export.write_chrome ~path:out obs;
    Printf.printf "%s on %s, %d task(s): wall %d cycles, correct %b\n"
      r.Soc.Run.benchmark r.Soc.Run.config_label r.Soc.Run.tasks r.Soc.Run.wall
      r.Soc.Run.correct;
    print_newline ();
    print_string (Obs.Export.summary obs);
    print_newline ();
    print_string (Obs.Metrics.to_table (Obs.Metrics.of_trace obs));
    Printf.printf "\nwrote %s (%d events, %d dropped)\n" out (Obs.Trace.length obs)
      (Obs.Trace.dropped obs)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Record a cycle-resolved event trace of one run")
    Term.(
      const run $ bench_arg $ config_arg $ tasks_arg $ engine_arg $ out_arg
      $ capacity_arg)

(* ---- sweep ---- *)

let sweep_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the sweep as JSON.")
  in
  let run bench engine topology checkers fastpath eventff cache_dir jobs json =
    Soc.Fastpath.set_mode fastpath;
    apply_common ~eventff ~cache_dir;
    let engine = resolve_engine ~topology engine in
    (* All 15 points (5 task counts x 3 configs) are independent full-system
       runs; they execute as one Ccsim.Pool batch and are re-assembled in
       row order after the barrier. *)
    let rows =
      Soc.Run.sweep_many ~jobs ~engine ~topology ~checkers
        ~tasks_list:[ 1; 2; 4; 8; 16 ]
        [ (Soc.Config.cpu, None);
          (Soc.Config.ccpu_accel, Some 16);
          (Soc.Config.ccpu_caccel, Some 16) ]
        bench
    in
    let unpack = function
      | (tasks, [ cpu; base; cc ]) -> (tasks, cpu, base, cc)
      | _ -> assert false
    in
    if json then
      let open Obs.Json in
      print_endline
        (to_string
           (Obj
              [
                ("benchmark", String bench.Machsuite.Bench_def.name);
                ("engine", String (engine_name engine));
                ( "rows",
                  List
                    (List.map
                       (fun row ->
                         let tasks, cpu, base, cc = unpack row in
                         Obj
                           [
                             ("tasks", Int tasks);
                             ("correct",
                              Bool
                                (cpu.Soc.Run.correct && base.Soc.Run.correct
                                && cc.Soc.Run.correct));
                             ("cc_checks", Int cc.Soc.Run.checks);
                             ("cc_denials",
                              Int (List.length cc.Soc.Run.denials));
                             ("cpu_wall", Int cpu.Soc.Run.wall);
                             ("base_wall", Int base.Soc.Run.wall);
                             ("cc_wall", Int cc.Soc.Run.wall);
                             ( "speedup",
                               Float
                                 (float_of_int cpu.Soc.Run.wall
                                 /. float_of_int base.Soc.Run.wall) );
                             ( "overhead_pct",
                               Float
                                 ((float_of_int cc.Soc.Run.wall
                                  /. float_of_int base.Soc.Run.wall
                                  -. 1.)
                                 *. 100.) );
                           ])
                       rows) );
              ]))
    else begin
      Printf.printf "%-6s %12s %12s %10s %10s\n" "tasks" "base wall" "cc wall"
        "speedup" "overhead";
      List.iter
        (fun row ->
          let tasks, cpu, base, cc = unpack row in
          Printf.printf "%-6d %12d %12d %9.1fx %+9.2f%%\n" tasks
            base.Soc.Run.wall cc.Soc.Run.wall
            (float_of_int cpu.Soc.Run.wall /. float_of_int base.Soc.Run.wall)
            ((float_of_int cc.Soc.Run.wall /. float_of_int base.Soc.Run.wall
             -. 1.)
            *. 100.))
        rows
    end
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Parallelism sweep (Figure 11 style)")
    Term.(const run $ bench_arg $ engine_arg $ topology_arg $ checkers_arg
          $ fastpath_arg $ eventff_arg $ cache_dir_arg $ jobs_arg $ json_arg)

(* ---- attack ---- *)

let schemes =
  [
    ("none", Soc.Config.Prot_naive);
    ("iopmp", Soc.Config.Prot_iopmp);
    ("iommu", Soc.Config.Prot_iommu);
    ("snpu", Soc.Config.Prot_snpu);
    ("coarse", Soc.Config.Prot_cc_coarse);
    ("fine", Soc.Config.Prot_cc_fine);
  ]

let attack_cmd =
  let scheme_arg =
    Arg.(value & opt (enum schemes) Soc.Config.Prot_cc_fine
           & info [ "s"; "scheme" ] ~doc:"Protection scheme.")
  in
  let run scheme =
    let show name outcome =
      Printf.printf "  %-28s %s\n" name (Security.Attacks.outcome_to_string outcome)
    in
    show "cross-task overread" (Security.Attacks.overread_cross_task scheme);
    show "cross-task overwrite" (Security.Attacks.overwrite_cross_task scheme);
    show "same-task other object" (Security.Attacks.overread_same_task_object scheme);
    show "intra-page slop" (Security.Attacks.overread_page_slop scheme);
    show "untrusted pointer deref" (Security.Attacks.untrusted_pointer_deref scheme);
    show "fixed OS address" (Security.Attacks.fixed_address_os scheme);
    show "use after free" (Security.Attacks.use_after_free scheme);
    show "uninitialized pointer" (Security.Attacks.uninitialized_pointer scheme);
    show "capability forge" (Security.Attacks.forge_capability scheme)
  in
  Cmd.v (Cmd.info "attack" ~doc:"Run the attack suite against a scheme")
    Term.(const run $ scheme_arg)

(* ---- faults ---- *)

let faults_cmd =
  let seed_arg =
    Arg.(value & opt int 1
           & info [ "s"; "seed" ]
               ~doc:"Fault-plan seed: same seed, benchmark and config always \
                     reproduce the same faults, retries and result.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the result as JSON.")
  in
  let runs_arg =
    Arg.(value & opt int 1
           & info [ "runs" ]
               ~doc:"Number of independent runs at consecutive seeds (seed, \
                     seed+1, ...).  Each run is its own deterministic \
                     simulation; with $(b,--jobs) they execute in parallel.")
  in
  (* The default-seed single-run text and JSON formats are pinned by the
     cram suite and two CI determinism gates — keep them byte-identical. *)
  let print_fault_text plan (r : Soc.Run.result) =
    let c = r.Soc.Run.faults in
    Printf.printf "%s on %s, %d task(s), fault plan %s\n" r.Soc.Run.benchmark
      r.Soc.Run.config_label r.Soc.Run.tasks (Fault.Plan.to_string plan);
    Printf.printf "  wall      %9d cycles (alloc %d, init %d, compute %d, teardown %d)\n"
      r.Soc.Run.wall r.Soc.Run.phases.Soc.Run.alloc r.Soc.Run.phases.Soc.Run.init
      r.Soc.Run.phases.Soc.Run.compute r.Soc.Run.phases.Soc.Run.teardown;
    Printf.printf "  injected  %d bus stalls (+%d cycles), %d bus errors, %d guard denials,\n"
      c.Fault.Injector.bus_stalls c.Fault.Injector.bus_stall_cycles
      c.Fault.Injector.bus_errors c.Fault.Injector.guard_denials;
    Printf.printf "            %d table-fulls, %d cache drops, %d alloc failures\n"
      c.Fault.Injector.table_fulls c.Fault.Injector.cache_drops
      c.Fault.Injector.alloc_fails;
    Printf.printf "  recovery  %d retries (%d backoff cycles), %d task(s) recovered, %d degraded to CPU\n"
      c.Fault.Injector.retries c.Fault.Injector.backoff_cycles r.Soc.Run.recovered
      (List.length r.Soc.Run.fallbacks);
    List.iter
      (fun (f : Soc.Run.fallback) ->
        Printf.printf "  fallback  task %d: %s\n" f.Soc.Run.task f.Soc.Run.reason)
      r.Soc.Run.fallbacks;
    Printf.printf "  correct   %b\n" r.Soc.Run.correct;
    if r.Soc.Run.correct then
      print_endline "  invariant ok: completed correctly (degraded tasks recomputed on CPU)"
    else
      print_endline "  invariant VIOLATED: incorrect result without a covering fallback"
  in
  let run bench config tasks seed runs engine fastpath eventff jobs json =
    Soc.Fastpath.set_mode fastpath;
    (* Faulted runs never take the fast-forward leg or the disk cache, but
       diff mode still sanity-degrades explicitly through the same switch. *)
    apply_common ~eventff ~cache_dir:None;
    let engine = resolve_engine ~topology:Bus.Topology.Shared engine in
    if runs < 1 then (
      prerr_endline "capsim: --runs must be at least 1";
      exit 2);
    let seeds = List.init runs (fun i -> seed + i) in
    let plans = List.map (fun s -> Fault.Plan.default ~seed:s) seeds in
    let specs =
      List.map
        (fun plan -> Soc.Run.spec ~tasks ~faults:plan ~engine config bench)
        plans
    in
    let results = Soc.Run.run_many ~jobs specs in
    let all_correct = List.for_all (fun r -> r.Soc.Run.correct) results in
    if json then begin
      (match results with
      | [ r ] -> print_endline (Obs.Json.to_string (json_of_result r))
      | _ ->
          let open Obs.Json in
          print_endline
            (to_string
               (Obj
                  [
                    ( "runs",
                      List
                        (List.map2
                           (fun s r ->
                             Obj [ ("seed", Int s); ("result", json_of_result r) ])
                           seeds results) );
                  ])));
      if not all_correct then exit 1
    end
    else begin
      List.iter2 print_fault_text plans results;
      if not all_correct then exit 1
    end
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Run one benchmark under a seeded deterministic fault plan")
    Term.(
      const run $ bench_arg $ config_arg $ tasks_arg $ seed_arg $ runs_arg
      $ engine_arg $ fastpath_arg $ eventff_arg $ jobs_arg $ json_arg)

(* ---- lint ---- *)

let json_of_report (r : Analysis.report) =
  let open Obs.Json in
  let interval = function
    | None -> Null
    | Some iv -> String (Analysis.Interval.to_string iv)
  in
  let verdict = function
    | Analysis.Proven_in_bounds -> Obj [ ("status", String "proven") ]
    | Analysis.Unknown reason ->
        Obj [ ("status", String "unknown"); ("reason", String reason) ]
    | Analysis.Possible_violation w ->
        Obj
          [
            ("status", String "possible_violation");
            ("buffer", String w.Analysis.w_buf);
            ("kind", String (Analysis.kind_to_string w.Analysis.w_kind));
            ("index", Int w.Analysis.w_index);
            ("len", Int w.Analysis.w_len);
            ("site", String w.Analysis.w_site);
          ]
  in
  Obj
    [
      ("kernel", String r.Analysis.kernel);
      ("proven", Bool (Analysis.proven r));
      ("lint", List (List.map (fun l -> String l) r.Analysis.lint));
      ( "buffers",
        List
          (List.map
             (fun (b : Analysis.buf_report) ->
               Obj
                 [
                   ("name", String b.Analysis.buf);
                   ("writable", Bool b.Analysis.writable);
                   ("len", Int b.Analysis.len);
                   ("reads", interval b.Analysis.reads);
                   ("writes", interval b.Analysis.writes);
                   ("verdict", verdict b.Analysis.verdict);
                 ])
             r.Analysis.bufs) );
    ]

let lint_cmd =
  let bench_opt =
    Arg.(value & opt (some bench_conv) None
           & info [ "b"; "benchmark" ] ~doc:"Lint one benchmark (default: all).")
  in
  let all_arg =
    Arg.(value & flag
           & info [ "all" ]
               ~doc:"Lint every built-in benchmark kernel (the default when \
                     $(b,-b) is absent).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let demo_arg =
    Arg.(value & flag
           & info [ "demo-violation" ]
               ~doc:"Lint a synthetic kernel with a provable out-of-bounds \
                     store instead of the built-in benchmarks — exercises \
                     the nonzero-exit contract so scripts and CI can pin \
                     it.")
  in
  (* A kernel the analyzer must flag: the loop's last iteration stores one
     element past the buffer. *)
  let demo_violation_kernel =
    let open Kernel.Ir in
    { name = "demo-oob";
      bufs = [ { buf_name = "out"; elem = I32; len = 8; writable = true } ];
      scratch = [];
      body = [ For ("idx", i 0, i 9, [ Store ("out", v "idx", v "idx") ]) ] }
  in
  let run bench _all json demo =
    let reports =
      if demo then [ Analysis.analyze demo_violation_kernel ]
      else
        let benches =
          match bench with Some b -> [ b ] | None -> Machsuite.Registry.all
        in
        List.map
          (fun (b : Machsuite.Bench_def.t) ->
            Analysis.analyze ~params:(Analysis.param_ranges b.params) b.kernel)
          benches
    in
    let failing (r : Analysis.report) =
      r.Analysis.lint <> []
      || List.exists
           (fun (b : Analysis.buf_report) ->
             match b.Analysis.verdict with
             | Analysis.Possible_violation _ -> true
             | Analysis.Proven_in_bounds | Analysis.Unknown _ -> false)
           r.Analysis.bufs
    in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("kernels", Obs.Json.List (List.map json_of_report reports));
                ( "proven",
                  Obs.Json.Int
                    (List.length (List.filter Analysis.proven reports)) );
                ("total", Obs.Json.Int (List.length reports));
              ]))
    else begin
      List.iter (fun r -> print_string (Analysis.report_to_string r)) reports;
      Printf.printf "%d/%d kernels proven in bounds\n"
        (List.length (List.filter Analysis.proven reports))
        (List.length reports)
    end;
    (* Violations and lint findings in shipped kernels fail the invocation so
       CI can gate on it; Unknown is an honest "needs the dynamic checker". *)
    if List.exists failing reports then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static capability-footprint analysis of the benchmark kernels")
    Term.(const run $ bench_opt $ all_arg $ json_arg $ demo_arg)

let verify_cmd =
  let depth_arg =
    Arg.(value & opt int Verify.Engine.default_opts.Verify.Engine.v_depth
           & info [ "depth" ]
               ~doc:"Ops per source program (interleavings grow as a \
                     multinomial of this).")
  in
  let accels_arg =
    Arg.(value & opt int Verify.Engine.default_opts.Verify.Engine.v_accels
           & info [ "accels" ] ~doc:"Accelerator tasks (1-8).")
  in
  let objs_arg =
    Arg.(value & opt int Verify.Engine.default_opts.Verify.Engine.v_objs
           & info [ "objs" ]
               ~doc:"Protected objects (1-16); grant maps grow as \
                     $(b,3^(accels*objs)).")
  in
  let obj_len_arg =
    Arg.(value & opt int Verify.Engine.default_opts.Verify.Engine.v_obj_len
           & info [ "obj-len" ] ~doc:"Bytes per object (2-4096).")
  in
  let space_arg =
    Arg.(value & opt int Verify.Engine.default_opts.Verify.Engine.v_space_bits
           & info [ "space-bits" ]
               ~doc:"Phase-1 encoding sweep runs over a $(b,2^bits)-byte \
                     window; cost grows as $(b,4^bits).")
  in
  let mutation_conv =
    let parse s =
      match Verify.Model.mutation_of_string s with
      | Ok m -> Ok m
      | Error e -> Error (`Msg e)
    in
    Arg.conv
      ( parse,
        fun fmt m ->
          Format.pp_print_string fmt (Verify.Model.mutation_to_string m) )
  in
  let mutate_arg =
    Arg.(value & opt mutation_conv Verify.Model.M_none
           & info [ "mutate" ]
               ~doc:"Run against a deliberately broken checker \
                     ($(b,ghost-exn), $(b,wide-bounds), $(b,skip-revoke), \
                     $(b,elide-unproven)) — the verifier must find a \
                     counterexample, demonstrating sensitivity.  Default \
                     $(b,none): the real system, which must verify clean.")
  in
  let random_arg =
    Arg.(value & opt int 0
           & info [ "random" ]
               ~doc:"Instead of the exhaustive sweep, run N seeded random \
                     scenarios (the QCheck-style fallback for bounds the \
                     exhaustive mode cannot reach).")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Seed for $(b,--random).")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
           & info [ "replay" ]
               ~doc:"Re-execute one counterexample token deterministically \
                     and report what happens.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let run depth accels objs obj_len space_bits topology checkers mutation
      random seed replay json =
    let opts =
      { Verify.Engine.v_depth = depth; v_accels = accels; v_objs = objs;
        v_obj_len = obj_len; v_space_bits = space_bits;
        v_topology = topology; v_checkers = checkers; v_mutation = mutation }
    in
    match replay with
    | Some token -> (
        match Verify.Engine.replay token with
        | Error e ->
            prerr_endline ("replay: " ^ e);
            exit 2
        | Ok (trace, cx) ->
            if json then
              print_endline
                (Obs.Json.to_string
                   (Obs.Json.Obj
                      [ ( "trace",
                          Obs.Json.List
                            (List.map Verify.Engine.json_of_step trace) );
                        ( "counterexample",
                          match cx with
                          | None -> Obs.Json.Null
                          | Some cx ->
                              Verify.Engine.json_of_counterexample cx ) ]))
            else begin
              List.iter
                (fun (s : Verify.Harness.step) ->
                  Printf.printf "[%d] cycle %d: %s -> %s\n"
                    s.Verify.Harness.s_index s.Verify.Harness.s_cycle
                    (Verify.Model.op_pretty s.Verify.Harness.s_src
                       s.Verify.Harness.s_op)
                    s.Verify.Harness.s_note)
                trace;
              match cx with
              | None -> print_endline "replay: no violation"
              | Some cx ->
                  let b = Buffer.create 256 in
                  Verify.Engine.render_counterexample b cx;
                  print_string (Buffer.contents b)
            end;
            if cx <> None then exit 1)
    | None ->
        if random > 0 then begin
          let r = Verify.Engine.random_suite opts ~seed ~runs:random in
          (if json then
             print_endline
               (Obs.Json.to_string
                  (Obs.Json.Obj
                     [ ("runs", Obs.Json.Int r.Verify.Engine.rr_runs);
                       ( "violating",
                         Obs.Json.Int r.Verify.Engine.rr_violating );
                       ( "counterexample",
                         match r.Verify.Engine.rr_counterexample with
                         | None -> Obs.Json.Null
                         | Some cx -> Verify.Engine.json_of_counterexample cx
                       ) ]))
           else begin
             Printf.printf "random: %d runs\n" r.Verify.Engine.rr_runs;
             match r.Verify.Engine.rr_counterexample with
             | None -> print_endline "verified: no counterexample"
             | Some cx ->
                 let b = Buffer.create 256 in
                 Verify.Engine.render_counterexample b cx;
                 print_string (Buffer.contents b)
           end);
          if r.Verify.Engine.rr_counterexample <> None then exit 1
        end
        else begin
          let r = Verify.Engine.run opts in
          if json then
            print_endline
              (Obs.Json.to_string (Verify.Engine.json_of_report r))
          else print_string (Verify.Engine.render_report r);
          if not (Verify.Engine.ok r) then exit 1
        end
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Bounded-exhaustive model checking of the protection stack: \
             every capability encoding over a tiny window, every grant map, \
             every arbiter interleaving of the probe programs — with \
             revocation, fault injection, check elision and shim refill in \
             flight.  Exit 0 when the bound is exhausted clean, 1 on a \
             counterexample (printed with a deterministic $(b,--replay) \
             token).")
    Term.(const run $ depth_arg $ accels_arg $ objs_arg $ obj_len_arg
          $ space_arg $ topology_arg $ checkers_arg $ mutate_arg $ random_arg
          $ seed_arg $ replay_arg $ json_arg)

let matrix_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the matrix as JSON.")
  in
  let run jobs json =
    if json then
      let open Obs.Json in
      let rows = Security.Matrix.rows ~jobs () in
      print_endline
        (to_string
           (Obj
              [
                ( "schemes",
                  List
                    (List.map (fun (n, _) -> String n) Security.Matrix.schemes)
                );
                ( "rows",
                  List
                    (List.map
                       (fun (r : Security.Matrix.row) ->
                         Obj
                           [
                             ("group", String r.Security.Matrix.group);
                             ("cwes", String r.Security.Matrix.cwes);
                             ("title", String r.Security.Matrix.title);
                             ( "cells",
                               List
                                 (List.map
                                    (fun c -> String c)
                                    r.Security.Matrix.cells) );
                           ])
                       rows) );
              ]))
    else print_endline (Security.Matrix.render ~jobs ())
  in
  Cmd.v (Cmd.info "matrix" ~doc:"Print the CWE matrix (Table 3)")
    Term.(const run $ jobs_arg $ json_arg)

(* ---- serve ---- *)

let serve_cmd =
  let tenants_arg =
    Arg.(value & opt int 100
           & info [ "tenants" ] ~doc:"Tenant compartments sharing the SoC.")
  in
  let requests_arg =
    Arg.(value & opt int 1000
           & info [ "requests" ] ~doc:"Total requests offered over the run.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Workload RNG seed.")
  in
  let instances_arg =
    Arg.(value & opt int 8
           & info [ "instances" ] ~doc:"Accelerator instances.")
  in
  let entries_arg =
    Arg.(value & opt int 256
           & info [ "cc-entries" ] ~doc:"CapChecker table capacity.")
  in
  let inflight_arg =
    Arg.(value & opt int 4
           & info [ "max-inflight" ]
               ~doc:"Per-tenant bound on concurrently admitted requests.")
  in
  let watermark_arg =
    Arg.(value & opt int 90
           & info [ "watermark" ]
               ~doc:"Admission watermark: admit only below this percentage \
                     of table occupancy (100 disables).")
  in
  let spill_arg =
    Arg.(value & opt int (-1)
           & info [ "spill" ]
               ~doc:"Wait-queue depth beyond which admitted requests run on \
                     the CPU (default: twice the instance count).")
  in
  let gap_arg =
    Arg.(value & opt int 0
           & info [ "gap" ]
               ~doc:"Mean request inter-arrival gap in cycles (0 derives it \
                     from the profiled service time and $(b,--util)).")
  in
  let util_arg =
    Arg.(value & opt int 80
           & info [ "util" ]
               ~doc:"Target accelerator utilization (percent) for the \
                     derived gap.")
  in
  let churn_arg =
    Arg.(value & opt int 10
           & info [ "churn" ]
               ~doc:"Percentage of tenants that depart mid-run.")
  in
  let top_arg =
    Arg.(value & opt int 10
           & info [ "top" ] ~doc:"Tenants shown in the p99 table.")
  in
  let bench_opt =
    Arg.(value & opt (some bench_conv) None
           & info [ "b"; "benchmark" ]
               ~doc:"Serve a single kernel instead of the default mix.")
  in
  let json_arg =
    Arg.(value & flag
           & info [ "json" ]
               ~doc:"Emit the full report as JSON (byte-identical across \
                     repeat seeds and $(b,--jobs) values).")
  in
  let run config tenants requests seed instances entries topology checkers
      fastpath eventff inflight watermark spill gap util churn top bench jobs
      json =
    Soc.Fastpath.set_mode fastpath;
    apply_common ~eventff ~cache_dir:None;
    let spill = if spill < 0 then 2 * instances else spill in
    let mix =
      match bench with
      | Some (b : Machsuite.Bench_def.t) -> [ (b.name, 1) ]
      | None -> Serve.Workload.default_mix
    in
    let params =
      {
        Serve.Loop.sv_config = config;
        sv_instances = instances;
        sv_cc_entries = entries;
        sv_topology = topology;
        sv_checkers = checkers;
        sv_policy =
          {
            Serve.Admission.max_inflight = inflight;
            watermark_pct = watermark;
            spill_depth = spill;
          };
        sv_workload =
          {
            Serve.Workload.tenants;
            requests;
            seed;
            mean_gap = gap;
            ramp = 0;
            churn_pct = churn;
            mix;
            scales = Serve.Workload.default_scales;
          };
        sv_util_pct = util;
        sv_jobs = jobs;
        sv_check_invariants = false;
      }
    in
    let report = Serve.Loop.run params in
    if json then print_endline (Serve.Report.to_string report)
    else print_string (Serve.Report.to_table ~top report)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Multi-tenant accelerator-as-a-service: a seeded open-loop \
             workload over tenant compartments with admission control, \
             per-tenant tail latency and CapChecker table-pressure \
             reporting")
    Term.(const run $ config_arg $ tenants_arg $ requests_arg $ seed_arg
          $ instances_arg $ entries_arg $ topology_arg $ checkers_arg
          $ fastpath_arg $ eventff_arg $ inflight_arg $ watermark_arg
          $ spill_arg $ gap_arg
          $ util_arg $ churn_arg $ top_arg $ bench_opt $ jobs_arg $ json_arg)

let () =
  let info =
    Cmd.info "capsim" ~version:"1.0.0"
      ~doc:"Simulated CHERI heterogeneous system with the CapChecker"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; trace_cmd; sweep_cmd; attack_cmd; matrix_cmd;
            faults_cmd; lint_cmd; serve_cmd; verify_cmd ]))
