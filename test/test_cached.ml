(* The cached CapChecker variant (§5.2.3): a small cache in front of an
   in-tagged-memory capability table. *)

open Capchecker

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let table_base = 0x8000
let max_tasks = 4
let max_objs = 8

let make ?(cache_entries = 4) () =
  let mem = Tagmem.Mem.create ~size:(1 lsl 17) in
  let c =
    Cached.create ~cache_entries ~mode:Checker.Fine ~mem ~table_base ~max_tasks
      ~max_objs ()
  in
  (mem, c)

let cap base len =
  match Cheri.Cap.set_bounds Cheri.Cap.root ~base ~length:len with
  | Ok c -> c
  | Error e -> Alcotest.failf "cap: %s" (Cheri.Cap.error_to_string e)

let read_req ~port ~source ~addr =
  { Guard.Iface.source; port = Some port; addr; size = 8; kind = Guard.Iface.Read }

let granted = function Guard.Iface.Granted _ -> true | Guard.Iface.Denied _ -> false

let latency_of c req =
  match Cached.check c req with
  | Guard.Iface.Granted { latency; _ } -> latency
  | Guard.Iface.Denied d -> Alcotest.failf "denied: %s" d.Guard.Iface.detail

let test_install_check_hit_miss () =
  let _, c = make () in
  (match Cached.install c ~task:1 ~obj:0 (cap 0x1000 64) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let req = read_req ~port:0 ~source:1 ~addr:0x1000 in
  checki "first access misses" Cached.miss_latency (latency_of c req);
  checki "second access hits" Cached.hit_latency (latency_of c req);
  checki "hits" 1 (Cached.hits c);
  checki "misses" 1 (Cached.misses c)

let test_check_denies_oob () =
  let _, c = make () in
  (match Cached.install c ~task:1 ~obj:0 (cap 0x1000 64) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  checkb "oob denied" false (granted (Cached.check c (read_req ~port:0 ~source:1 ~addr:0x2000)));
  checkb "missing entry denied" false
    (granted (Cached.check c (read_req ~port:5 ~source:1 ~addr:0x1000)));
  checkb "out-of-range key denied" false
    (granted (Cached.check c (read_req ~port:200 ~source:1 ~addr:0x1000)))

let test_conflict_misses () =
  let _, c = make ~cache_entries:1 () in
  (match Cached.install c ~task:0 ~obj:0 (cap 0x1000 64) with Ok () -> () | Error e -> Alcotest.fail e);
  (match Cached.install c ~task:0 ~obj:1 (cap 0x2000 64) with Ok () -> () | Error e -> Alcotest.fail e);
  ignore (latency_of c (read_req ~port:0 ~source:0 ~addr:0x1000));
  ignore (latency_of c (read_req ~port:1 ~source:0 ~addr:0x2000));
  checki "thrashing: both miss again" Cached.miss_latency
    (latency_of c (read_req ~port:0 ~source:0 ~addr:0x1000));
  checki "three misses" 3 (Cached.misses c)

let test_evict_task () =
  let _, c = make () in
  (match Cached.install c ~task:1 ~obj:0 (cap 0x1000 64) with Ok () -> () | Error e -> Alcotest.fail e);
  (match Cached.install c ~task:1 ~obj:1 (cap 0x2000 64) with Ok () -> () | Error e -> Alcotest.fail e);
  ignore (latency_of c (read_req ~port:0 ~source:1 ~addr:0x1000));
  checki "two cleared" 2 (Cached.evict_task c ~task:1);
  checkb "stale access denied after evict" false
    (granted (Cached.check c (read_req ~port:0 ~source:1 ~addr:0x1000)))

let test_backing_corruption_detags () =
  (* Any raw write over the backing table clears the tag — a corrupted entry
     stops granting instead of granting wrongly. *)
  let mem, c = make () in
  (match Cached.install c ~task:1 ~obj:0 (cap 0x1000 64) with Ok () -> () | Error e -> Alcotest.fail e);
  let key = (1 * max_objs) + 0 in
  Tagmem.Mem.write_u64 mem ~addr:(table_base + (key * 16)) 0xFFFFFFFFL;
  checkb "corrupted entry denies" false
    (granted (Cached.check c (read_req ~port:0 ~source:1 ~addr:0x1000)))

let test_install_invalidates_stale_line () =
  let _, c = make () in
  (match Cached.install c ~task:1 ~obj:0 (cap 0x1000 64) with Ok () -> () | Error e -> Alcotest.fail e);
  ignore (latency_of c (read_req ~port:0 ~source:1 ~addr:0x1000));
  (* Reinstall with different bounds; the cached line must not keep granting
     the old region. *)
  (match Cached.install c ~task:1 ~obj:0 (cap 0x4000 64) with Ok () -> () | Error e -> Alcotest.fail e);
  checkb "old grant gone" false
    (granted (Cached.check c (read_req ~port:0 ~source:1 ~addr:0x1000)));
  checkb "new grant live" true
    (granted (Cached.check c (read_req ~port:0 ~source:1 ~addr:0x4000)))

let test_area_saving () =
  let _, c = make ~cache_entries:16 () in
  checkb "cached variant much smaller than the flat 256-entry table" true
    (Cached.area_luts c * 5 < Area.luts ~entries:256)

let test_entries_in_use () =
  let _, c = make () in
  let g = Cached.as_guard c in
  checki "empty" 0 (g.Guard.Iface.entries_in_use ());
  (match Cached.install c ~task:2 ~obj:3 (cap 0 16) with Ok () -> () | Error e -> Alcotest.fail e);
  checki "one live" 1 (g.Guard.Iface.entries_in_use ())

let test_live_counter_matches_scan () =
  (* [entries_in_use] is now an O(1) counter; it must agree with a full table
     scan after any interleaving of installs (fresh and overwriting),
     evictions (occupied and empty tasks) — driven here by a deterministic
     random walk. *)
  let _, c = make () in
  let rng = Ccsim.Rng.create 0xC0FFEE in
  for step = 1 to 300 do
    (if Ccsim.Rng.int rng 4 < 3 then
       let task = Ccsim.Rng.int rng max_tasks in
       let obj = Ccsim.Rng.int rng max_objs in
       match Cached.install c ~task ~obj (cap 0x1000 64) with
       | Ok () | Error _ -> ()
     else ignore (Cached.evict_task c ~task:(Ccsim.Rng.int rng max_tasks)));
    let scan = Cached.live_entries_scan c in
    checki (Printf.sprintf "step %d: counter == scan" step) scan
      (Cached.live_entries c);
    checki (Printf.sprintf "step %d: guard view == scan" step) scan
      ((Cached.as_guard c).Guard.Iface.entries_in_use ())
  done

let test_out_of_range_install () =
  let _, c = make () in
  checkb "task beyond range rejected" true
    (Result.is_error (Cached.install c ~task:99 ~obj:0 (cap 0 16)))

let suite =
  [
    ("install + hit/miss", `Quick, test_install_check_hit_miss);
    ("denies OOB and missing", `Quick, test_check_denies_oob);
    ("conflict thrashing", `Quick, test_conflict_misses);
    ("evict task", `Quick, test_evict_task);
    ("backing corruption detags", `Quick, test_backing_corruption_detags);
    ("install invalidates line", `Quick, test_install_invalidates_stale_line);
    ("area saving", `Quick, test_area_saving);
    ("entries in use", `Quick, test_entries_in_use);
    ("live counter matches scan", `Quick, test_live_counter_matches_scan);
    ("out-of-range install", `Quick, test_out_of_range_install);
  ]
