(* The CapChecker: capability table management, Fine/Coarse adjudication,
   exception reporting, Coarse address composition, area model. *)

open Capchecker

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let cap ?(perms = Cheri.Perms.data_rw) base len =
  let c =
    match Cheri.Cap.set_bounds Cheri.Cap.root ~base ~length:len with
    | Ok c -> c
    | Error e -> Alcotest.failf "cap: %s" (Cheri.Cap.error_to_string e)
  in
  match Cheri.Cap.with_perms c perms with
  | Ok c -> c
  | Error e -> Alcotest.failf "perms: %s" (Cheri.Cap.error_to_string e)

let read_req ?port ~source ~addr ~size () =
  { Guard.Iface.source; port; addr; size; kind = Guard.Iface.Read }

let write_req ?port ~source ~addr ~size () =
  { Guard.Iface.source; port; addr; size; kind = Guard.Iface.Write }

let granted = function Guard.Iface.Granted _ -> true | Guard.Iface.Denied _ -> false

let install_exn c ~task ~obj capability =
  match Checker.install c ~task ~obj capability with
  | Table.Installed slot -> slot
  | Table.Table_full -> Alcotest.fail "table full"
  | Table.Rejected_untagged -> Alcotest.fail "rejected"

(* ---------------- table ---------------- *)

let test_table_install_lookup () =
  let t = Table.create ~entries:8 in
  (match Table.install t ~task:1 ~obj:0 (cap 0x1000 64) with
  | Table.Installed _ -> ()
  | Table.Table_full | Table.Rejected_untagged -> Alcotest.fail "install");
  checki "live" 1 (Table.live_count t);
  checkb "found" true (Table.lookup t ~task:1 ~obj:0 <> None);
  checkb "missing obj" true (Table.lookup t ~task:1 ~obj:1 = None);
  checkb "missing task" true (Table.lookup t ~task:2 ~obj:0 = None)

let test_table_replace_same_key () =
  let t = Table.create ~entries:8 in
  ignore (Table.install t ~task:1 ~obj:0 (cap 0x1000 64));
  ignore (Table.install t ~task:1 ~obj:0 (cap 0x2000 64));
  checki "still one entry" 1 (Table.live_count t);
  match Table.lookup t ~task:1 ~obj:0 with
  | Some e -> checki "latest wins" 0x2000 e.Table.cap.Cheri.Cap.base
  | None -> Alcotest.fail "lost entry"

let test_table_full () =
  let t = Table.create ~entries:2 in
  ignore (Table.install t ~task:0 ~obj:0 (cap 0 16));
  ignore (Table.install t ~task:0 ~obj:1 (cap 32 16));
  (match Table.install t ~task:0 ~obj:2 (cap 64 16) with
  | Table.Table_full -> ()
  | Table.Installed _ | Table.Rejected_untagged -> Alcotest.fail "expected full");
  (* Eviction frees a slot again (the driver's stall-until-evict protocol). *)
  checkb "evicted" true (Table.evict t ~task:0 ~obj:0);
  match Table.install t ~task:0 ~obj:2 (cap 64 16) with
  | Table.Installed _ -> ()
  | Table.Table_full | Table.Rejected_untagged -> Alcotest.fail "slot not reusable"

let test_table_rejects_untagged () =
  let t = Table.create ~entries:4 in
  match Table.install t ~task:0 ~obj:0 (Cheri.Cap.clear_tag (cap 0 16)) with
  | Table.Rejected_untagged -> ()
  | Table.Installed _ | Table.Table_full -> Alcotest.fail "accepted untagged"

let test_table_evict_task () =
  let t = Table.create ~entries:8 in
  ignore (Table.install t ~task:1 ~obj:0 (cap 0 16));
  ignore (Table.install t ~task:1 ~obj:1 (cap 32 16));
  ignore (Table.install t ~task:2 ~obj:0 (cap 64 16));
  checki "two evicted" 2 (Table.evict_task t ~task:1);
  checki "one left" 1 (Table.live_count t);
  checkb "other task intact" true (Table.lookup t ~task:2 ~obj:0 <> None)

let slot_exn t ~task ~obj capability =
  match Table.install t ~task ~obj capability with
  | Table.Installed slot -> slot
  | Table.Table_full -> Alcotest.fail "table full"
  | Table.Rejected_untagged -> Alcotest.fail "rejected"

let test_table_eviction_clears_exception_bit () =
  (* Regression: eviction used to leave [exn_bit] set on the dead slot, so a
     task that reused the slot inherited the previous occupant's exception
     state and [entries_with_exceptions] reported ghosts. *)
  let c = Checker.create ~entries:4 Checker.Fine in
  ignore (install_exn c ~task:1 ~obj:0 (cap 0x1000 64));
  ignore (Checker.check c (read_req ~port:0 ~source:1 ~addr:0x9999 ~size:8 ()));
  checki "bit set by the denial" 1
    (List.length (Table.entries_with_exceptions (Checker.table c)));
  checkb "evicted" true (Checker.evict c ~task:1 ~obj:0);
  checki "no ghost exception on a dead slot" 0
    (List.length (Table.entries_with_exceptions (Checker.table c)));
  (* The reused slot starts clean for its new occupant. *)
  ignore (install_exn c ~task:2 ~obj:0 (cap 0x2000 64));
  checki "reused slot starts clean" 0
    (List.length (Table.entries_with_exceptions (Checker.table c)))

let test_table_churn_no_ghost_exceptions () =
  (* Sustained install/deny/evict churn — including [evict_task] — must
     never accumulate exception bits on dead or reused slots. *)
  let c = Checker.create ~entries:4 Checker.Fine in
  for round = 0 to 24 do
    let task = round mod 3 in
    ignore (install_exn c ~task ~obj:0 (cap 0x1000 64));
    ignore (install_exn c ~task ~obj:1 (cap 0x2000 64));
    ignore (Checker.check c (read_req ~port:0 ~source:task ~addr:0x9999 ~size:8 ()));
    checki
      (Printf.sprintf "round %d: only the live denied entry flagged" round)
      1
      (List.length (Table.entries_with_exceptions (Checker.table c)));
    if round mod 2 = 0 then checki "both entries revoked" 2 (Checker.evict_task c ~task)
    else begin
      checkb "evicted obj 0" true (Checker.evict c ~task ~obj:0);
      checkb "evicted obj 1" true (Checker.evict c ~task ~obj:1)
    end;
    checki (Printf.sprintf "round %d: clean after revocation" round) 0
      (List.length (Table.entries_with_exceptions (Checker.table c)));
    checki "empty between rounds" 0 (Table.live_count (Checker.table c))
  done

let test_table_slot_reuse_lowest_first () =
  (* The free-slot heap must reproduce the original linear scan's choice:
     installs always land in the lowest-numbered free slot, and replacing a
     live key reuses its slot instead of consuming a free one. *)
  let t = Table.create ~entries:4 in
  checki "slot 0" 0 (slot_exn t ~task:0 ~obj:0 (cap 0 16));
  checki "slot 1" 1 (slot_exn t ~task:0 ~obj:1 (cap 32 16));
  checki "slot 2" 2 (slot_exn t ~task:0 ~obj:2 (cap 64 16));
  checki "slot 3" 3 (slot_exn t ~task:0 ~obj:3 (cap 96 16));
  checkb "evict slot 1" true (Table.evict t ~task:0 ~obj:1);
  checkb "evict slot 3" true (Table.evict t ~task:0 ~obj:3);
  checki "lowest free slot first" 1 (slot_exn t ~task:1 ~obj:0 (cap 128 16));
  checki "replace keeps the slot" 1 (slot_exn t ~task:1 ~obj:0 (cap 160 16));
  checki "next free slot after that" 3 (slot_exn t ~task:1 ~obj:1 (cap 192 16));
  checki "full again" 4 (Table.live_count t)

(* The hash-indexed table against a naive association model: lookups,
   live counts and full/evict outcomes must agree after any op sequence. *)
let prop_table_matches_reference =
  QCheck.Test.make ~count:300 ~name:"indexed table matches a naive reference"
    QCheck.(small_list (triple (int_bound 3) (int_bound 3) (int_bound 3)))
    (fun ops ->
      let entries = 4 in
      let t = Table.create ~entries in
      let model : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
      List.for_all
        (fun (op, task, obj) ->
          match op with
          | 0 | 1 -> (
              match Table.install t ~task ~obj (cap 0x1000 64) with
              | Table.Installed _ ->
                  Hashtbl.replace model (task, obj) ();
                  true
              | Table.Table_full ->
                  Hashtbl.length model = entries
                  && not (Hashtbl.mem model (task, obj))
              | Table.Rejected_untagged -> false)
          | 2 ->
              let was = Hashtbl.mem model (task, obj) in
              Hashtbl.remove model (task, obj);
              Table.evict t ~task ~obj = was
          | _ ->
              let mine =
                Hashtbl.fold
                  (fun (tk, ob) () acc -> if tk = task then (tk, ob) :: acc else acc)
                  model []
              in
              List.iter (Hashtbl.remove model) mine;
              Table.evict_task t ~task = List.length mine)
        ops
      && Table.live_count t = Hashtbl.length model
      && List.for_all
           (fun task ->
             List.for_all
               (fun obj ->
                 (Table.lookup t ~task ~obj <> None)
                 = Hashtbl.mem model (task, obj))
               [ 0; 1; 2; 3 ])
           [ 0; 1; 2; 3 ])

(* ---------------- fine mode ---------------- *)

let test_fine_grants_and_denies () =
  let c = Checker.create ~entries:8 Checker.Fine in
  ignore (install_exn c ~task:1 ~obj:0 (cap 0x1000 64));
  checkb "in bounds" true
    (granted (Checker.check c (read_req ~port:0 ~source:1 ~addr:0x1020 ~size:8 ())));
  checkb "oob denied" false
    (granted (Checker.check c (read_req ~port:0 ~source:1 ~addr:0x1040 ~size:8 ())));
  checkb "wrong port denied" false
    (granted (Checker.check c (read_req ~port:1 ~source:1 ~addr:0x1020 ~size:8 ())));
  checkb "wrong task denied" false
    (granted (Checker.check c (read_req ~port:0 ~source:2 ~addr:0x1020 ~size:8 ())));
  checkb "no provenance denied" false
    (granted (Checker.check c (read_req ~source:1 ~addr:0x1020 ~size:8 ())))

let test_fine_readonly_cap () =
  let c = Checker.create ~entries:8 Checker.Fine in
  ignore (install_exn c ~task:1 ~obj:0 (cap ~perms:Cheri.Perms.data_ro 0x1000 64));
  checkb "read ok" true
    (granted (Checker.check c (read_req ~port:0 ~source:1 ~addr:0x1000 ~size:8 ())));
  checkb "write denied" false
    (granted (Checker.check c (write_req ~port:0 ~source:1 ~addr:0x1000 ~size:8 ())))

(* ---------------- coarse mode ---------------- *)

let test_coarse_compose_split () =
  let addr = Checker.compose_coarse ~obj:3 0x1234 in
  let obj, phys = Checker.split_coarse addr in
  checki "obj" 3 obj;
  checki "phys" 0x1234 phys

let test_coarse_roundtrip_boundaries () =
  (* Every object id — including 128..255, whose top bit the old bit-56
     packing silently dropped — round-trips at both extremes of the coarse
     physical window, and every composed bus word stays non-negative. *)
  let max_phys = Checker.coarse_window - 1 in
  for obj = 0 to 255 do
    List.iter
      (fun phys ->
        let addr = Checker.compose_coarse ~obj phys in
        checkb (Printf.sprintf "obj %d at 0x%x: non-negative" obj phys) true
          (addr >= 0);
        let obj', phys' = Checker.split_coarse addr in
        checki (Printf.sprintf "obj %d at 0x%x: obj" obj phys) obj obj';
        checki (Printf.sprintf "obj %d at 0x%x: phys" obj phys) phys phys')
      [ 0; max_phys ]
  done

let test_coarse_compose_rejects_out_of_range () =
  let rejects f =
    match f () with
    | exception Invalid_argument _ -> true
    | (_ : int) -> false
  in
  (* The full 56-bit CHERI physical space does not fit a 63-bit host word
     alongside the 8-bit id: addresses beyond the coarse window must be
     rejected loudly, never truncated into a neighbouring object's window. *)
  checkb "phys = coarse_window rejected" true
    (rejects (fun () -> Checker.compose_coarse ~obj:0 Checker.coarse_window));
  checkb "phys = max_address rejected" true
    (rejects (fun () -> Checker.compose_coarse ~obj:0 Cheri.Cap.max_address));
  checkb "negative phys rejected" true
    (rejects (fun () -> Checker.compose_coarse ~obj:0 (-1)));
  checkb "obj = 256 rejected" true
    (rejects (fun () -> Checker.compose_coarse ~obj:256 0));
  checkb "negative obj rejected" true
    (rejects (fun () -> Checker.compose_coarse ~obj:(-1) 0));
  checkb "in-range still composes" true
    (Checker.compose_coarse ~obj:255 (Checker.coarse_window - 1) > 0)

let test_coarse_grants_and_strips () =
  let c = Checker.create ~entries:8 Checker.Coarse in
  ignore (install_exn c ~task:1 ~obj:2 (cap 0x8000 128));
  let addr = Checker.compose_coarse ~obj:2 0x8010 in
  (match Checker.check c (read_req ~source:1 ~addr ~size:8 ()) with
  | Guard.Iface.Granted { phys; _ } -> checki "id stripped" 0x8010 phys
  | Guard.Iface.Denied d -> Alcotest.failf "denied: %s" d.Guard.Iface.detail);
  (* Address overflow that stays under the same object id is caught. *)
  checkb "plain overflow denied" false
    (granted
       (Checker.check c
          (read_req ~source:1 ~addr:(Checker.compose_coarse ~obj:2 0x9000) ~size:8 ())))

let test_coarse_unknown_object () =
  let c = Checker.create ~entries:8 Checker.Coarse in
  ignore (install_exn c ~task:1 ~obj:2 (cap 0x8000 128));
  checkb "unknown id denied" false
    (granted
       (Checker.check c
          (read_req ~source:1 ~addr:(Checker.compose_coarse ~obj:7 0x8000) ~size:8 ())))

(* ---------------- exceptions ---------------- *)

let test_exception_flag_and_log () =
  let c = Checker.create ~entries:8 Checker.Fine in
  ignore (install_exn c ~task:1 ~obj:0 (cap 0x1000 64));
  ignore (install_exn c ~task:2 ~obj:0 (cap 0x2000 64));
  checkb "flag clear" false (Checker.exception_flag c);
  ignore (Checker.check c (read_req ~port:0 ~source:1 ~addr:0x9999 ~size:8 ()));
  checkb "flag raised" true (Checker.exception_flag c);
  checki "task 1 logged" 1 (List.length (Checker.exception_log_for c ~task:1));
  checki "task 2 clean" 0 (List.length (Checker.exception_log_for c ~task:2));
  checki "entry bit set" 1
    (List.length (Table.entries_with_exceptions (Checker.table c)));
  Checker.clear_exception_flag c;
  checkb "flag cleared" false (Checker.exception_flag c);
  checki "log survives the flag" 1 (List.length (Checker.exception_log c))

let test_granted_after_denial () =
  (* A denial must not wedge the checker: subsequent legal traffic flows. *)
  let c = Checker.create ~entries:8 Checker.Fine in
  ignore (install_exn c ~task:1 ~obj:0 (cap 0x1000 64));
  ignore (Checker.check c (read_req ~port:0 ~source:1 ~addr:0 ~size:8 ()));
  checkb "still grants" true
    (granted (Checker.check c (read_req ~port:0 ~source:1 ~addr:0x1000 ~size:8 ())))

(* ---------------- distributed shims ---------------- *)

let same_verdict a b =
  match (a, b) with
  | Guard.Iface.Granted { phys = p; _ }, Guard.Iface.Granted { phys = p'; _ } ->
      p = p'
  | Guard.Iface.Denied d, Guard.Iface.Denied d' -> d = d'
  | Guard.Iface.Granted _, Guard.Iface.Denied _
  | Guard.Iface.Denied _, Guard.Iface.Granted _ -> false

let verdict_to_string = function
  | Guard.Iface.Granted { phys; _ } -> Printf.sprintf "granted @0x%x" phys
  | Guard.Iface.Denied d -> "denied: " ^ d.Guard.Iface.detail

(* Drive an identical install/check/churn sequence through a plain central
   checker and through a distributed shim fleet over a second identically
   configured central: every verdict — grant phys and denial detail alike —
   must match; only latency may differ. *)
let shim_parity_sequence mode compose =
  let plain = Checker.create ~entries:8 mode in
  let central = Checker.create ~entries:8 mode in
  let fleet = Shim.create ~central ~sources:4 Shim.Distributed in
  let install ~task ~obj c =
    ignore (install_exn plain ~task ~obj c);
    ignore (install_exn central ~task ~obj c)
  in
  let evict ~task ~obj =
    ignore (Checker.evict plain ~task ~obj);
    ignore (Checker.evict central ~task ~obj)
  in
  let evict_task ~task =
    ignore (Checker.evict_task plain ~task);
    ignore (Checker.evict_task central ~task)
  in
  let compare req =
    let a = Checker.check plain req and b = Shim.check fleet req in
    checkb
      (Printf.sprintf "parity (%s vs %s)" (verdict_to_string a)
         (verdict_to_string b))
      true (same_verdict a b)
  in
  install ~task:1 ~obj:0 (cap 0x1000 64);
  install ~task:2 ~obj:1 (cap 0x2000 32);
  (* In-bounds, repeated (second one is a shim hit), out-of-bounds, wrong
     task, missing provenance/object. *)
  compare (read_req ~port:0 ~source:1 ~addr:(compose ~obj:0 0x1000) ~size:8 ());
  compare (read_req ~port:0 ~source:1 ~addr:(compose ~obj:0 0x1020) ~size:8 ());
  compare (read_req ~port:0 ~source:1 ~addr:(compose ~obj:0 0x1040) ~size:8 ());
  compare (write_req ~port:1 ~source:2 ~addr:(compose ~obj:1 0x2000) ~size:8 ());
  compare (read_req ~port:0 ~source:2 ~addr:(compose ~obj:0 0x1000) ~size:8 ());
  compare (read_req ~source:1 ~addr:0x1000 ~size:8 ());
  (* Churn: central evictions must invalidate the shims' cached copies — a
     stale shim grant here would be an isolation hole. *)
  evict ~task:1 ~obj:0;
  compare (read_req ~port:0 ~source:1 ~addr:(compose ~obj:0 0x1020) ~size:8 ());
  install ~task:1 ~obj:0 (cap 0x1000 16);
  compare (read_req ~port:0 ~source:1 ~addr:(compose ~obj:0 0x1020) ~size:8 ());
  compare (read_req ~port:0 ~source:1 ~addr:(compose ~obj:0 0x1008) ~size:8 ());
  evict_task ~task:2;
  compare (write_req ~port:1 ~source:2 ~addr:(compose ~obj:1 0x2000) ~size:8 ())

let fine_addr ~obj:_ phys = phys

let test_shim_parity_fine () = shim_parity_sequence Checker.Fine fine_addr

let test_shim_parity_coarse () =
  shim_parity_sequence Checker.Coarse (fun ~obj phys ->
      Checker.compose_coarse ~obj phys)

let test_shim_hit_miss_accounting () =
  let central = Checker.create ~entries:8 Checker.Fine in
  let fleet = Shim.create ~central ~sources:2 Shim.Distributed in
  ignore (install_exn central ~task:1 ~obj:0 (cap 0x1000 64));
  let req = read_req ~port:0 ~source:1 ~addr:0x1000 ~size:8 () in
  ignore (Shim.check fleet req);
  checki "first check misses" 1 (Shim.misses fleet);
  checki "no hit yet" 0 (Shim.hits fleet);
  ignore (Shim.check fleet req);
  checki "second check hits locally" 1 (Shim.hits fleet);
  checki "no extra miss" 1 (Shim.misses fleet);
  checki "one shim materialized" 1 (Shim.shim_count fleet);
  (* Central churn invalidates the copy: the next check misses again. *)
  ignore (Checker.evict central ~task:1 ~obj:0);
  ignore (install_exn central ~task:1 ~obj:0 (cap 0x1000 64));
  ignore (Shim.check fleet req);
  checki "invalidation forces a refill" 2 (Shim.misses fleet);
  let stats = Shim.shim_stats fleet in
  checkb "refills counted as shim installs" true
    (stats.Table.st_installs >= 2)

(* The stale-copy race the verification layer pins directly: a revocation
   landing between a shim refill and the task's next access must drop the
   cached copy through the invalidate channel — a grant from the
   pre-revocation entry would be an isolation hole. *)
let test_shim_revocation_between_refill_and_access () =
  let central = Checker.create ~entries:8 Checker.Fine in
  let fleet = Shim.create ~central ~sources:2 Shim.Distributed in
  ignore (install_exn central ~task:1 ~obj:0 (cap 0x1000 64));
  let req = read_req ~port:0 ~source:1 ~addr:0x1000 ~size:8 () in
  (* miss + refill: the shim now holds a private copy *)
  checkb "pre-revocation access grants" true (granted (Shim.check fleet req));
  checki "refill took the miss path" 1 (Shim.misses fleet);
  let inv0 = Shim.invalidations fleet in
  (* the revocation epoch bump (task-wide eviction) lands before any further
     access touches the freshly refilled copy *)
  ignore (Checker.evict_task central ~task:1);
  checkb "invalidate channel dropped the cached copy" true
    (Shim.invalidations fleet > inv0);
  (* the next access must re-consult the central table and be denied *)
  checkb "post-revocation access denied" true
    (not (granted (Shim.check fleet req)));
  checki "denial re-took the miss path" 2 (Shim.misses fleet);
  checki "stale entry never adjudicated locally" 0 (Shim.hits fleet);
  (* a fresh install restores both the grant and the local hit path *)
  ignore (install_exn central ~task:1 ~obj:0 (cap 0x1000 64));
  checkb "reinstall restores the grant" true (granted (Shim.check fleet req));
  ignore (Shim.check fleet req);
  checkb "reinstall restores the hit path" true (Shim.hits fleet > 0)

let test_shim_area_and_guard () =
  let central = Checker.create ~entries:256 Checker.Fine in
  let dist = Shim.create ~central ~sources:8 Shim.Distributed in
  let cent = Shim.create ~central ~sources:8 Shim.Central in
  checki "central placement adds no area"
    (Checker.as_guard central).Guard.Iface.info.Guard.Iface.area_luts
    (Shim.area_luts cent);
  checkb "shim tables cost area" true (Shim.area_luts dist > Shim.area_luts cent);
  let g = Shim.guard dist in
  checkb "guard name marks the shims" true
    (String.length g.Guard.Iface.info.Guard.Iface.name >= 6);
  ignore (install_exn central ~task:0 ~obj:0 (cap 0 16));
  checki "entries view stays central" 1 (g.Guard.Iface.entries_in_use ())

(* ---------------- costs and area ---------------- *)

let test_mmio_costs_positive () =
  let p = Bus.Params.default in
  checkb "install" true (Checker.install_cycles p > 0);
  checkb "evict" true (Checker.evict_cycles p > 0);
  checkb "poll" true (Checker.poll_cycles p > 0);
  checkb "install is the expensive one" true
    (Checker.install_cycles p > Checker.evict_cycles p)

let test_area_calibration () =
  let full = Area.luts ~entries:Area.prototype_entries in
  checkb "256 entries ~ 30k LUTs" true (full > 28_000 && full < 32_000);
  let tiny = Area.luts_lightweight ~entries:4 in
  checkb "CFU variant < 100 LUTs" true (tiny < 100)

let test_guard_view () =
  let c = Checker.create Checker.Fine in
  let g = Checker.as_guard c in
  checkb "object granularity" true
    (g.Guard.Iface.info.granularity = Guard.Iface.G_object);
  let coarse = Checker.as_guard (Checker.create Checker.Coarse) in
  checkb "coarse is task granularity" true
    (coarse.Guard.Iface.info.granularity = Guard.Iface.G_task);
  ignore (install_exn c ~task:0 ~obj:0 (cap 0 16));
  checki "entries view" 1 (g.Guard.Iface.entries_in_use ())

let prop_check_agrees_with_cap =
  QCheck.Test.make ~count:300 ~name:"grant iff the capability allows"
    QCheck.(triple (int_bound 100_000) (int_range 1 1_000) (int_bound 120_000))
    (fun (base, len, addr) ->
      let c = Checker.create ~entries:4 Checker.Fine in
      let capability = cap base len in
      ignore (install_exn c ~task:0 ~obj:0 capability);
      let req = read_req ~port:0 ~source:0 ~addr ~size:8 () in
      granted (Checker.check c req)
      = (Cheri.Cap.access_ok capability ~addr ~size:8 Cheri.Cap.Read = Ok ()))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_check_agrees_with_cap; prop_table_matches_reference ]

let suite =
  [
    ("table install/lookup", `Quick, test_table_install_lookup);
    ("table replace same key", `Quick, test_table_replace_same_key);
    ("table full and evict", `Quick, test_table_full);
    ("table rejects untagged", `Quick, test_table_rejects_untagged);
    ("table evict task", `Quick, test_table_evict_task);
    ("table eviction clears exception bit", `Quick,
     test_table_eviction_clears_exception_bit);
    ("table churn: no ghost exceptions", `Quick,
     test_table_churn_no_ghost_exceptions);
    ("table slot reuse lowest-first", `Quick, test_table_slot_reuse_lowest_first);
    ("shim parity: fine", `Quick, test_shim_parity_fine);
    ("shim parity: coarse", `Quick, test_shim_parity_coarse);
    ("shim hit/miss accounting", `Quick, test_shim_hit_miss_accounting);
    ( "shim revocation between refill and access",
      `Quick,
      test_shim_revocation_between_refill_and_access );
    ("shim area and guard", `Quick, test_shim_area_and_guard);
    ("fine grants/denies", `Quick, test_fine_grants_and_denies);
    ("fine read-only cap", `Quick, test_fine_readonly_cap);
    ("coarse compose/split", `Quick, test_coarse_compose_split);
    ("coarse roundtrip boundaries", `Quick, test_coarse_roundtrip_boundaries);
    ("coarse compose rejects out-of-range", `Quick,
     test_coarse_compose_rejects_out_of_range);
    ("coarse grant strips id", `Quick, test_coarse_grants_and_strips);
    ("coarse unknown object", `Quick, test_coarse_unknown_object);
    ("exception flag and log", `Quick, test_exception_flag_and_log);
    ("grants after denial", `Quick, test_granted_after_denial);
    ("mmio costs", `Quick, test_mmio_costs_positive);
    ("area calibration", `Quick, test_area_calibration);
    ("guard view", `Quick, test_guard_view);
  ]
  @ qsuite
