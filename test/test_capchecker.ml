(* The CapChecker: capability table management, Fine/Coarse adjudication,
   exception reporting, Coarse address composition, area model. *)

open Capchecker

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let cap ?(perms = Cheri.Perms.data_rw) base len =
  let c =
    match Cheri.Cap.set_bounds Cheri.Cap.root ~base ~length:len with
    | Ok c -> c
    | Error e -> Alcotest.failf "cap: %s" (Cheri.Cap.error_to_string e)
  in
  match Cheri.Cap.with_perms c perms with
  | Ok c -> c
  | Error e -> Alcotest.failf "perms: %s" (Cheri.Cap.error_to_string e)

let read_req ?port ~source ~addr ~size () =
  { Guard.Iface.source; port; addr; size; kind = Guard.Iface.Read }

let write_req ?port ~source ~addr ~size () =
  { Guard.Iface.source; port; addr; size; kind = Guard.Iface.Write }

let granted = function Guard.Iface.Granted _ -> true | Guard.Iface.Denied _ -> false

let install_exn c ~task ~obj capability =
  match Checker.install c ~task ~obj capability with
  | Table.Installed slot -> slot
  | Table.Table_full -> Alcotest.fail "table full"
  | Table.Rejected_untagged -> Alcotest.fail "rejected"

(* ---------------- table ---------------- *)

let test_table_install_lookup () =
  let t = Table.create ~entries:8 in
  (match Table.install t ~task:1 ~obj:0 (cap 0x1000 64) with
  | Table.Installed _ -> ()
  | Table.Table_full | Table.Rejected_untagged -> Alcotest.fail "install");
  checki "live" 1 (Table.live_count t);
  checkb "found" true (Table.lookup t ~task:1 ~obj:0 <> None);
  checkb "missing obj" true (Table.lookup t ~task:1 ~obj:1 = None);
  checkb "missing task" true (Table.lookup t ~task:2 ~obj:0 = None)

let test_table_replace_same_key () =
  let t = Table.create ~entries:8 in
  ignore (Table.install t ~task:1 ~obj:0 (cap 0x1000 64));
  ignore (Table.install t ~task:1 ~obj:0 (cap 0x2000 64));
  checki "still one entry" 1 (Table.live_count t);
  match Table.lookup t ~task:1 ~obj:0 with
  | Some e -> checki "latest wins" 0x2000 e.Table.cap.Cheri.Cap.base
  | None -> Alcotest.fail "lost entry"

let test_table_full () =
  let t = Table.create ~entries:2 in
  ignore (Table.install t ~task:0 ~obj:0 (cap 0 16));
  ignore (Table.install t ~task:0 ~obj:1 (cap 32 16));
  (match Table.install t ~task:0 ~obj:2 (cap 64 16) with
  | Table.Table_full -> ()
  | Table.Installed _ | Table.Rejected_untagged -> Alcotest.fail "expected full");
  (* Eviction frees a slot again (the driver's stall-until-evict protocol). *)
  checkb "evicted" true (Table.evict t ~task:0 ~obj:0);
  match Table.install t ~task:0 ~obj:2 (cap 64 16) with
  | Table.Installed _ -> ()
  | Table.Table_full | Table.Rejected_untagged -> Alcotest.fail "slot not reusable"

let test_table_rejects_untagged () =
  let t = Table.create ~entries:4 in
  match Table.install t ~task:0 ~obj:0 (Cheri.Cap.clear_tag (cap 0 16)) with
  | Table.Rejected_untagged -> ()
  | Table.Installed _ | Table.Table_full -> Alcotest.fail "accepted untagged"

let test_table_evict_task () =
  let t = Table.create ~entries:8 in
  ignore (Table.install t ~task:1 ~obj:0 (cap 0 16));
  ignore (Table.install t ~task:1 ~obj:1 (cap 32 16));
  ignore (Table.install t ~task:2 ~obj:0 (cap 64 16));
  checki "two evicted" 2 (Table.evict_task t ~task:1);
  checki "one left" 1 (Table.live_count t);
  checkb "other task intact" true (Table.lookup t ~task:2 ~obj:0 <> None)

(* ---------------- fine mode ---------------- *)

let test_fine_grants_and_denies () =
  let c = Checker.create ~entries:8 Checker.Fine in
  ignore (install_exn c ~task:1 ~obj:0 (cap 0x1000 64));
  checkb "in bounds" true
    (granted (Checker.check c (read_req ~port:0 ~source:1 ~addr:0x1020 ~size:8 ())));
  checkb "oob denied" false
    (granted (Checker.check c (read_req ~port:0 ~source:1 ~addr:0x1040 ~size:8 ())));
  checkb "wrong port denied" false
    (granted (Checker.check c (read_req ~port:1 ~source:1 ~addr:0x1020 ~size:8 ())));
  checkb "wrong task denied" false
    (granted (Checker.check c (read_req ~port:0 ~source:2 ~addr:0x1020 ~size:8 ())));
  checkb "no provenance denied" false
    (granted (Checker.check c (read_req ~source:1 ~addr:0x1020 ~size:8 ())))

let test_fine_readonly_cap () =
  let c = Checker.create ~entries:8 Checker.Fine in
  ignore (install_exn c ~task:1 ~obj:0 (cap ~perms:Cheri.Perms.data_ro 0x1000 64));
  checkb "read ok" true
    (granted (Checker.check c (read_req ~port:0 ~source:1 ~addr:0x1000 ~size:8 ())));
  checkb "write denied" false
    (granted (Checker.check c (write_req ~port:0 ~source:1 ~addr:0x1000 ~size:8 ())))

(* ---------------- coarse mode ---------------- *)

let test_coarse_compose_split () =
  let addr = Checker.compose_coarse ~obj:3 0x1234 in
  let obj, phys = Checker.split_coarse addr in
  checki "obj" 3 obj;
  checki "phys" 0x1234 phys

let test_coarse_roundtrip_boundaries () =
  (* Every object id — including 128..255, whose top bit the old bit-56
     packing silently dropped — round-trips at both extremes of the coarse
     physical window, and every composed bus word stays non-negative. *)
  let max_phys = Checker.coarse_window - 1 in
  for obj = 0 to 255 do
    List.iter
      (fun phys ->
        let addr = Checker.compose_coarse ~obj phys in
        checkb (Printf.sprintf "obj %d at 0x%x: non-negative" obj phys) true
          (addr >= 0);
        let obj', phys' = Checker.split_coarse addr in
        checki (Printf.sprintf "obj %d at 0x%x: obj" obj phys) obj obj';
        checki (Printf.sprintf "obj %d at 0x%x: phys" obj phys) phys phys')
      [ 0; max_phys ]
  done

let test_coarse_compose_rejects_out_of_range () =
  let rejects f =
    match f () with
    | exception Invalid_argument _ -> true
    | (_ : int) -> false
  in
  (* The full 56-bit CHERI physical space does not fit a 63-bit host word
     alongside the 8-bit id: addresses beyond the coarse window must be
     rejected loudly, never truncated into a neighbouring object's window. *)
  checkb "phys = coarse_window rejected" true
    (rejects (fun () -> Checker.compose_coarse ~obj:0 Checker.coarse_window));
  checkb "phys = max_address rejected" true
    (rejects (fun () -> Checker.compose_coarse ~obj:0 Cheri.Cap.max_address));
  checkb "negative phys rejected" true
    (rejects (fun () -> Checker.compose_coarse ~obj:0 (-1)));
  checkb "obj = 256 rejected" true
    (rejects (fun () -> Checker.compose_coarse ~obj:256 0));
  checkb "negative obj rejected" true
    (rejects (fun () -> Checker.compose_coarse ~obj:(-1) 0));
  checkb "in-range still composes" true
    (Checker.compose_coarse ~obj:255 (Checker.coarse_window - 1) > 0)

let test_coarse_grants_and_strips () =
  let c = Checker.create ~entries:8 Checker.Coarse in
  ignore (install_exn c ~task:1 ~obj:2 (cap 0x8000 128));
  let addr = Checker.compose_coarse ~obj:2 0x8010 in
  (match Checker.check c (read_req ~source:1 ~addr ~size:8 ()) with
  | Guard.Iface.Granted { phys; _ } -> checki "id stripped" 0x8010 phys
  | Guard.Iface.Denied d -> Alcotest.failf "denied: %s" d.Guard.Iface.detail);
  (* Address overflow that stays under the same object id is caught. *)
  checkb "plain overflow denied" false
    (granted
       (Checker.check c
          (read_req ~source:1 ~addr:(Checker.compose_coarse ~obj:2 0x9000) ~size:8 ())))

let test_coarse_unknown_object () =
  let c = Checker.create ~entries:8 Checker.Coarse in
  ignore (install_exn c ~task:1 ~obj:2 (cap 0x8000 128));
  checkb "unknown id denied" false
    (granted
       (Checker.check c
          (read_req ~source:1 ~addr:(Checker.compose_coarse ~obj:7 0x8000) ~size:8 ())))

(* ---------------- exceptions ---------------- *)

let test_exception_flag_and_log () =
  let c = Checker.create ~entries:8 Checker.Fine in
  ignore (install_exn c ~task:1 ~obj:0 (cap 0x1000 64));
  ignore (install_exn c ~task:2 ~obj:0 (cap 0x2000 64));
  checkb "flag clear" false (Checker.exception_flag c);
  ignore (Checker.check c (read_req ~port:0 ~source:1 ~addr:0x9999 ~size:8 ()));
  checkb "flag raised" true (Checker.exception_flag c);
  checki "task 1 logged" 1 (List.length (Checker.exception_log_for c ~task:1));
  checki "task 2 clean" 0 (List.length (Checker.exception_log_for c ~task:2));
  checki "entry bit set" 1
    (List.length (Table.entries_with_exceptions (Checker.table c)));
  Checker.clear_exception_flag c;
  checkb "flag cleared" false (Checker.exception_flag c);
  checki "log survives the flag" 1 (List.length (Checker.exception_log c))

let test_granted_after_denial () =
  (* A denial must not wedge the checker: subsequent legal traffic flows. *)
  let c = Checker.create ~entries:8 Checker.Fine in
  ignore (install_exn c ~task:1 ~obj:0 (cap 0x1000 64));
  ignore (Checker.check c (read_req ~port:0 ~source:1 ~addr:0 ~size:8 ()));
  checkb "still grants" true
    (granted (Checker.check c (read_req ~port:0 ~source:1 ~addr:0x1000 ~size:8 ())))

(* ---------------- costs and area ---------------- *)

let test_mmio_costs_positive () =
  let p = Bus.Params.default in
  checkb "install" true (Checker.install_cycles p > 0);
  checkb "evict" true (Checker.evict_cycles p > 0);
  checkb "poll" true (Checker.poll_cycles p > 0);
  checkb "install is the expensive one" true
    (Checker.install_cycles p > Checker.evict_cycles p)

let test_area_calibration () =
  let full = Area.luts ~entries:Area.prototype_entries in
  checkb "256 entries ~ 30k LUTs" true (full > 28_000 && full < 32_000);
  let tiny = Area.luts_lightweight ~entries:4 in
  checkb "CFU variant < 100 LUTs" true (tiny < 100)

let test_guard_view () =
  let c = Checker.create Checker.Fine in
  let g = Checker.as_guard c in
  checkb "object granularity" true
    (g.Guard.Iface.info.granularity = Guard.Iface.G_object);
  let coarse = Checker.as_guard (Checker.create Checker.Coarse) in
  checkb "coarse is task granularity" true
    (coarse.Guard.Iface.info.granularity = Guard.Iface.G_task);
  ignore (install_exn c ~task:0 ~obj:0 (cap 0 16));
  checki "entries view" 1 (g.Guard.Iface.entries_in_use ())

let prop_check_agrees_with_cap =
  QCheck.Test.make ~count:300 ~name:"grant iff the capability allows"
    QCheck.(triple (int_bound 100_000) (int_range 1 1_000) (int_bound 120_000))
    (fun (base, len, addr) ->
      let c = Checker.create ~entries:4 Checker.Fine in
      let capability = cap base len in
      ignore (install_exn c ~task:0 ~obj:0 capability);
      let req = read_req ~port:0 ~source:0 ~addr ~size:8 () in
      granted (Checker.check c req)
      = (Cheri.Cap.access_ok capability ~addr ~size:8 Cheri.Cap.Read = Ok ()))

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_check_agrees_with_cap ]

let suite =
  [
    ("table install/lookup", `Quick, test_table_install_lookup);
    ("table replace same key", `Quick, test_table_replace_same_key);
    ("table full and evict", `Quick, test_table_full);
    ("table rejects untagged", `Quick, test_table_rejects_untagged);
    ("table evict task", `Quick, test_table_evict_task);
    ("fine grants/denies", `Quick, test_fine_grants_and_denies);
    ("fine read-only cap", `Quick, test_fine_readonly_cap);
    ("coarse compose/split", `Quick, test_coarse_compose_split);
    ("coarse roundtrip boundaries", `Quick, test_coarse_roundtrip_boundaries);
    ("coarse compose rejects out-of-range", `Quick,
     test_coarse_compose_rejects_out_of_range);
    ("coarse grant strips id", `Quick, test_coarse_grants_and_strips);
    ("coarse unknown object", `Quick, test_coarse_unknown_object);
    ("exception flag and log", `Quick, test_exception_flag_and_log);
    ("grants after denial", `Quick, test_granted_after_denial);
    ("mmio costs", `Quick, test_mmio_costs_positive);
    ("area calibration", `Quick, test_area_calibration);
    ("guard view", `Quick, test_guard_view);
  ]
  @ qsuite
