(* Interconnect model: beat math, FIFO arbitration, address map. *)

open Bus

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_beats_for () =
  let p = Params.default in
  checki "1 byte = 1 beat" 1 (Params.beats_for p 1);
  checki "8 bytes = 1 beat" 1 (Params.beats_for p 8);
  checki "9 bytes = 2 beats" 2 (Params.beats_for p 9);
  checki "0 bytes still 1 beat" 1 (Params.beats_for p 0);
  checki "128 bytes = 16 beats" 16 (Params.beats_for p 128)

let ap = Params.default.Params.addr_phase

let test_fabric_single_request () =
  let f = Fabric.create Params.default in
  let g = Fabric.request f ~at:10 ~beats:4 ~is_read:true ~extra_latency:0 in
  checki "granted when requested" 10 g.Fabric.granted_at;
  checki "data done after address phase + beats" (10 + ap + 4) g.Fabric.data_done;
  checki "completed adds read latency"
    (10 + ap + 4 + Params.default.Params.read_latency) g.Fabric.completed

let test_fabric_serializes () =
  let f = Fabric.create Params.default in
  let g1 = Fabric.request f ~at:0 ~beats:8 ~is_read:true ~extra_latency:0 in
  let g2 = Fabric.request f ~at:0 ~beats:8 ~is_read:true ~extra_latency:0 in
  checki "first immediate" 0 g1.Fabric.granted_at;
  checki "second waits for the bus" (ap + 8) g2.Fabric.granted_at;
  checki "beats accounted" 16 (Fabric.total_beats f)

let test_fabric_idle_gap () =
  let f = Fabric.create Params.default in
  let _ = Fabric.request f ~at:0 ~beats:2 ~is_read:false ~extra_latency:0 in
  let g = Fabric.request f ~at:100 ~beats:2 ~is_read:false ~extra_latency:0 in
  checki "no queueing after idle gap" 100 g.Fabric.granted_at

let test_fabric_extra_latency () =
  let f = Fabric.create Params.default in
  let g0 = Fabric.request f ~at:0 ~beats:1 ~is_read:true ~extra_latency:0 in
  Fabric.reset f;
  let g1 = Fabric.request f ~at:0 ~beats:1 ~is_read:true ~extra_latency:3 in
  checki "latency added to completion only" (g0.Fabric.completed + 3)
    g1.Fabric.completed;
  checki "data phase unchanged" g0.Fabric.data_done g1.Fabric.data_done

let test_fabric_write_latency () =
  let f = Fabric.create Params.default in
  let g = Fabric.request f ~at:0 ~beats:1 ~is_read:false ~extra_latency:0 in
  checki "write completion" (ap + 1 + Params.default.Params.write_latency)
    g.Fabric.completed

let test_addr_map () =
  checkb "dram holds heap" true
    (Addr_map.in_dram ~addr:Addr_map.heap_base ~size:4096);
  checkb "ctrl regs outside dram" false
    (Addr_map.in_dram ~addr:Addr_map.accel_ctrl_base ~size:8);
  let r0 = Addr_map.ctrl_reg ~instance:0 ~reg:0 in
  let r1 = Addr_map.ctrl_reg ~instance:1 ~reg:0 in
  checki "instance stride" Addr_map.accel_ctrl_stride (r1 - r0);
  checki "reg stride" 8 (Addr_map.ctrl_reg ~instance:0 ~reg:1 - r0)

let prop_fifo_monotonic =
  QCheck.Test.make ~count:200 ~name:"grants never move backwards"
    QCheck.(small_list (pair (int_bound 50) (int_range 1 16)))
    (fun reqs ->
      let f = Fabric.create Params.default in
      let now = ref 0 in
      List.for_all
        (fun (delay, beats) ->
          now := !now + delay;
          let g = Fabric.request f ~at:!now ~beats ~is_read:true ~extra_latency:0 in
          g.Fabric.granted_at >= !now
          && g.Fabric.data_done = g.Fabric.granted_at + ap + beats)
        reqs)

let prop_beats_conserved =
  QCheck.Test.make ~count:200 ~name:"total beats equals sum of requests"
    QCheck.(small_list (int_range 1 16))
    (fun beats_list ->
      let f = Fabric.create Params.default in
      List.iter
        (fun b -> ignore (Fabric.request f ~at:0 ~beats:b ~is_read:true ~extra_latency:0))
        beats_list;
      Fabric.total_beats f = List.fold_left ( + ) 0 beats_list)

(* ---- round-robin arbiter (event-driven core) ---- *)

(* Queue [n] bursts of [beats] from [src], each ready at [at]; every grant is
   appended to [log] as (src, granted_at). *)
let saturate arb log ~src ~at ~n ~beats =
  for _ = 1 to n do
    Arbiter.request arb ~src ~at ~beats ~is_read:true ~extra_latency:0
      ~on_grant:(fun g -> log := (src, g.Fabric.granted_at) :: !log)
  done

let test_arbiter_matches_fabric_single_source () =
  (* One source: the arbiter must grant exactly the legacy fabric's schedule
     (the event engine's differential equivalence rests on this). *)
  let f = Fabric.create Params.default in
  let expect =
    List.map
      (fun (at, beats) ->
        let g = Fabric.request f ~at ~beats ~is_read:true ~extra_latency:0 in
        (g.Fabric.granted_at, g.Fabric.data_done, g.Fabric.completed))
      [ (0, 8); (0, 2); (30, 4); (31, 1) ]
  in
  let sched = Ccsim.Sched.create () in
  let arb = Arbiter.create ~sched Params.default in
  let got = ref [] in
  List.iter
    (fun (at, beats) ->
      Arbiter.request arb ~src:7 ~at ~beats ~is_read:true ~extra_latency:0
        ~on_grant:(fun g ->
          got := (g.Fabric.granted_at, g.Fabric.data_done, g.Fabric.completed) :: !got))
    [ (0, 8); (0, 2); (30, 4); (31, 1) ];
  Ccsim.Sched.run sched;
  Alcotest.(check (list (triple int int int)))
    "same grant schedule as the fabric" expect (List.rev !got);
  checki "same beat accounting" (Fabric.total_beats f) (Arbiter.total_beats arb)

let test_arbiter_fairness_two_sources () =
  (* Two sources saturating from cycle 0: grants must alternate, so at every
     prefix of the grant sequence the sources' total beats are within one
     burst of each other. *)
  let beats = 8 and n = 10 in
  let sched = Ccsim.Sched.create () in
  let arb = Arbiter.create ~sched Params.default in
  let log = ref [] in
  saturate arb log ~src:0 ~at:0 ~n ~beats;
  saturate arb log ~src:1 ~at:0 ~n ~beats;
  Ccsim.Sched.run sched;
  let grants = List.rev !log in
  checki "all grants delivered" (2 * n) (List.length grants);
  let b0 = ref 0 and b1 = ref 0 in
  List.iter
    (fun (src, _) ->
      if src = 0 then b0 := !b0 + beats else b1 := !b1 + beats;
      checkb "prefix beat totals within one burst" true
        (abs (!b0 - !b1) <= beats))
    grants;
  checki "source 0 got half the beats" (n * beats) !b0;
  checki "source 1 got half the beats" (n * beats) !b1

let test_arbiter_late_arrival_served_within_one_round () =
  (* Two sources saturate the bus; a third arrives mid-stream.  Round-robin
     must grant it after at most one request from each competing source (no
     starvation), unlike the legacy fabric's global FIFO. *)
  let beats = 8 in
  let sched = Ccsim.Sched.create () in
  let arb = Arbiter.create ~sched Params.default in
  let log = ref [] in
  saturate arb log ~src:0 ~at:0 ~n:12 ~beats;
  saturate arb log ~src:1 ~at:0 ~n:12 ~beats;
  let arrival = 50 in
  Arbiter.request arb ~src:2 ~at:arrival ~beats ~is_read:true ~extra_latency:0
    ~on_grant:(fun g -> log := (2, g.Fabric.granted_at) :: !log);
  Ccsim.Sched.run sched;
  let grants = List.rev !log in
  let rec grants_between = function
    | [] -> Alcotest.fail "late source never granted"
    | (2, _) :: _ -> 0
    | (_, at) :: rest when at >= arrival -> 1 + grants_between rest
    | _ :: rest -> grants_between rest
  in
  let ahead = grants_between grants in
  checkb
    (Printf.sprintf "at most one grant per competitor before the late source \
                     (got %d)" ahead)
    true (ahead <= 2)

let test_arbiter_unregister_and_scan_order () =
  let sched = Ccsim.Sched.create () in
  let arb = Arbiter.create ~sched Params.default in
  let log = ref [] in
  saturate arb log ~src:0 ~at:0 ~n:1 ~beats:2;
  saturate arb log ~src:1 ~at:0 ~n:1 ~beats:2;
  saturate arb log ~src:2 ~at:0 ~n:1 ~beats:2;
  (* Refuses while requests are still queued. *)
  Alcotest.(check bool) "refused while queued" false (Arbiter.unregister arb ~src:2);
  Ccsim.Sched.run sched;
  Alcotest.(check (list int)) "rotation is first-request order" [ 0; 1; 2 ]
    (Arbiter.sources arb);
  (* Source 2 won last, so the scan restarts just after it. *)
  Alcotest.(check (list int)) "scan starts after the last winner" [ 0; 1; 2 ]
    (Arbiter.scan_order arb);
  checkb "idle source removed" true (Arbiter.unregister arb ~src:2);
  checkb "double unregister refused" false (Arbiter.unregister arb ~src:2);
  Alcotest.(check (list int)) "rotation without the removed source" [ 0; 1 ]
    (Arbiter.sources arb);
  (* The last winner is gone: the scan must fall back to plain
     first-request order instead of looping or skipping a source. *)
  Alcotest.(check (list int)) "scan falls back to plain order" [ 0; 1 ]
    (Arbiter.scan_order arb);
  (* The fallback order is the one the next grant actually uses. *)
  let log2 = ref [] in
  saturate arb log2 ~src:1 ~at:100 ~n:1 ~beats:2;
  saturate arb log2 ~src:0 ~at:100 ~n:1 ~beats:2;
  Ccsim.Sched.run sched;
  (match List.rev !log2 with
  | (first, _) :: _ -> checki "first grant follows the fallback order" 0 first
  | [] -> Alcotest.fail "no grants after unregister");
  (* A removed source re-registers transparently on its next request. *)
  saturate arb log2 ~src:2 ~at:200 ~n:1 ~beats:2;
  Ccsim.Sched.run sched;
  Alcotest.(check (list int)) "re-registered at the rotation tail" [ 0; 1; 2 ]
    (Arbiter.sources arb)

let test_arbiter_large_rotation_linear () =
  (* Regression for the slot-ring rotation: registering, granting through
     and tearing down a large source population must stay (near) linear.
     The pre-ring arbiter re-built the rotation list on every registration
     ([rotation @ [src]], O(K^2) total), allocated a K-cell scan list per
     arbitration, and [unregister]/[queue_of] filtered full lists — at this
     population that took minutes of CPU; linear is well under the bound
     even on a loaded CI machine. *)
  let n = 1 lsl 16 in
  let t0 = Sys.time () in
  let sched = Ccsim.Sched.create () in
  let arb = Arbiter.create ~sched Params.default in
  let grants = ref 0 in
  for src = 0 to n - 1 do
    Arbiter.request arb ~src ~at:0 ~beats:1 ~is_read:false ~extra_latency:0
      ~on_grant:(fun _ -> incr grants)
  done;
  checki "registration is first-request order (spot check)" n
    (List.length (Arbiter.sources arb));
  Ccsim.Sched.run sched;
  checki "every source granted" n !grants;
  checki "queues drained" 0 (Arbiter.queued arb);
  for src = 0 to n - 1 do
    checkb "idle source unregisters" true (Arbiter.unregister arb ~src)
  done;
  Alcotest.(check (list int)) "rotation empty after teardown" []
    (Arbiter.sources arb);
  (* Re-register a second wave into recycled slots and drain it too. *)
  for src = n to (2 * n) - 1 do
    Arbiter.request arb ~src ~at:0 ~beats:1 ~is_read:false ~extra_latency:0
      ~on_grant:(fun _ -> incr grants)
  done;
  Ccsim.Sched.run sched;
  checki "second wave granted" (2 * n) !grants;
  let dt = Sys.time () -. t0 in
  checkb
    (Printf.sprintf "%d-source churn stays linear (%.2fs CPU)" n dt)
    true
    (dt < 20.0)

(* ---- interconnect topologies ---- *)

let topo_request ic log ~src ~addr ~at ~beats =
  Topology.request ic ~src ~target:(Topology.target_for ic ~addr) ~at ~beats
    ~is_read:true ~extra_latency:0
    ~on_grant:(fun g -> log := (src, g.Fabric.granted_at) :: !log)

let test_topology_shared_matches_fabric () =
  (* The Shared topology is the differential oracle: a single-source run
     must grant exactly the legacy fabric's schedule. *)
  let f = Fabric.create Params.default in
  let reqs = [ (0, 8); (0, 2); (30, 4); (31, 1) ] in
  let expect =
    List.map
      (fun (at, beats) ->
        let g = Fabric.request f ~at ~beats ~is_read:true ~extra_latency:0 in
        (g.Fabric.granted_at, g.Fabric.data_done, g.Fabric.completed))
      reqs
  in
  let sched = Ccsim.Sched.create () in
  let ic = Topology.create ~sched ~kind:Topology.Shared Params.default in
  let got = ref [] in
  List.iter
    (fun (at, beats) ->
      Topology.request ic ~src:3 ~target:0 ~at ~beats ~is_read:true
        ~extra_latency:0 ~on_grant:(fun g ->
          got := (g.Fabric.granted_at, g.Fabric.data_done, g.Fabric.completed) :: !got))
    reqs;
  Ccsim.Sched.run sched;
  Alcotest.(check (list (triple int int int)))
    "same grant schedule as the fabric" expect (List.rev !got);
  checki "same beat accounting" (Fabric.total_beats f) (Topology.total_beats ic)

let test_topology_crossbar_concurrent_disjoint_banks () =
  let sched = Ccsim.Sched.create () in
  let ic =
    Topology.create ~sched ~kind:(Topology.Crossbar { banks = 4 }) Params.default
  in
  checki "4 targets" 4 (Topology.targets ic);
  checki "stripe 0" 0 (Topology.target_for ic ~addr:0);
  checki "stripe 1" 1 (Topology.target_for ic ~addr:Topology.bank_interleave);
  let log = ref [] in
  (* Different banks: both granted at cycle 0 (concurrent grants). *)
  topo_request ic log ~src:0 ~addr:0 ~at:0 ~beats:8;
  topo_request ic log ~src:1 ~addr:Topology.bank_interleave ~at:0 ~beats:8;
  (* Same bank as source 0: must serialize behind it. *)
  topo_request ic log ~src:2 ~addr:64 ~at:0 ~beats:8;
  Ccsim.Sched.run sched;
  let at src = List.assoc src (List.rev !log) in
  checki "bank 0 grants at 0" 0 (at 0);
  checki "bank 1 grants concurrently" 0 (at 1);
  checkb "same-bank traffic serializes" true (at 2 > 0);
  checki "beats summed over banks" 24 (Topology.total_beats ic)

let test_topology_hierarchical_uplink () =
  (* An uncontended request pays the uplink to the root and the hop back:
     same data schedule as the shared bus, shifted by one uplink, with the
     return hop added to completion. *)
  let f = Fabric.create Params.default in
  let g = Fabric.request f ~at:0 ~beats:4 ~is_read:true ~extra_latency:0 in
  let sched = Ccsim.Sched.create () in
  let ic =
    Topology.create ~sched ~kind:(Topology.Hierarchical { clusters = 4 })
      Params.default
  in
  let got = ref None in
  Topology.request ic ~src:0 ~target:0 ~at:0 ~beats:4 ~is_read:true
    ~extra_latency:0 ~on_grant:(fun g -> got := Some g);
  Ccsim.Sched.run sched;
  match !got with
  | None -> Alcotest.fail "no grant"
  | Some h ->
      checki "granted one uplink later" (g.Fabric.granted_at + Topology.uplink_latency)
        h.Fabric.granted_at;
      checki "completion adds the return hop"
        (g.Fabric.completed + (2 * Topology.uplink_latency))
        h.Fabric.completed

(* Same request set, sources registered in permuted order: the rotation (and
   hence individual grant cycles) may differ, but the bandwidth share must
   not — per-source grant counts and the total beat count are invariant, and
   repeating the identical setup must reproduce the identical grant log. *)
let topology_fairness_run kind order =
  let sched = Ccsim.Sched.create () in
  let ic = Topology.create ~sched ~kind Params.default in
  let log = ref [] in
  List.iter
    (fun src ->
      for i = 0 to 7 do
        topo_request ic log ~src
          ~addr:(((src * 8) + i) * Topology.bank_interleave)
          ~at:0 ~beats:4
      done)
    order;
  Ccsim.Sched.run sched;
  (List.rev !log, Topology.total_beats ic)

let test_topology_fairness_and_determinism () =
  List.iter
    (fun kind ->
      let name = Topology.kind_to_string kind in
      let base, beats = topology_fairness_run kind [ 0; 1; 2; 3 ] in
      let again, beats' = topology_fairness_run kind [ 0; 1; 2; 3 ] in
      checkb (name ^ ": repeat run grant-identical") true (base = again);
      checki (name ^ ": repeat run beat-identical") beats beats';
      let permuted, beats'' = topology_fairness_run kind [ 3; 1; 0; 2 ] in
      checki (name ^ ": beats invariant under registration order") beats beats'';
      let count src l =
        List.length (List.filter (fun (s, _) -> s = src) l)
      in
      List.iter
        (fun src ->
          checki
            (Printf.sprintf "%s: source %d grant count invariant" name src)
            (count src base) (count src permuted))
        [ 0; 1; 2; 3 ];
      (* Makespan (last grant cycle) is also registration-order invariant:
         the rotation permutes who goes first, not how much anyone gets. *)
      let last l = List.fold_left (fun acc (_, at) -> max acc at) 0 l in
      checki (name ^ ": last grant invariant") (last base) (last permuted))
    [ Topology.Shared; Topology.Crossbar { banks = 4 };
      Topology.Hierarchical { clusters = 4 } ]

let test_topology_kind_strings () =
  let roundtrip k =
    match Topology.kind_of_string (Topology.kind_to_string k) with
    | Ok k' -> k = k'
    | Error _ -> false
  in
  checkb "shared roundtrip" true (roundtrip Topology.Shared);
  checkb "crossbar roundtrip" true (roundtrip (Topology.Crossbar { banks = 8 }));
  checkb "hier roundtrip" true
    (roundtrip (Topology.Hierarchical { clusters = 2 }));
  checkb "xbar alias" true
    (Topology.kind_of_string "xbar:2" = Ok (Topology.Crossbar { banks = 2 }));
  checkb "bare crossbar uses the default" true
    (Topology.kind_of_string "crossbar"
    = Ok (Topology.Crossbar { banks = Topology.default_banks }));
  checkb "garbage rejected" true
    (match Topology.kind_of_string "mesh" with Error _ -> true | Ok _ -> false);
  checkb "zero banks rejected" true
    (match Topology.kind_of_string "crossbar:0" with
    | Error _ -> true
    | Ok _ -> false)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_fifo_monotonic; prop_beats_conserved ]

let suite =
  [
    ("beats_for", `Quick, test_beats_for);
    ("single request", `Quick, test_fabric_single_request);
    ("bus serializes", `Quick, test_fabric_serializes);
    ("idle gap", `Quick, test_fabric_idle_gap);
    ("extra latency", `Quick, test_fabric_extra_latency);
    ("write latency", `Quick, test_fabric_write_latency);
    ("address map", `Quick, test_addr_map);
    ("arbiter: single source = fabric", `Quick,
     test_arbiter_matches_fabric_single_source);
    ("arbiter: two-source fairness", `Quick, test_arbiter_fairness_two_sources);
    ("arbiter: late arrival served", `Quick,
     test_arbiter_late_arrival_served_within_one_round);
    ("arbiter: unregister and scan-order fallback", `Quick,
     test_arbiter_unregister_and_scan_order);
    ("arbiter: 65536-source churn stays linear", `Quick,
     test_arbiter_large_rotation_linear);
    ("topology: shared matches fabric", `Quick,
     test_topology_shared_matches_fabric);
    ("topology: crossbar concurrent disjoint banks", `Quick,
     test_topology_crossbar_concurrent_disjoint_banks);
    ("topology: hierarchical uplink", `Quick, test_topology_hierarchical_uplink);
    ("topology: fairness and determinism", `Quick,
     test_topology_fairness_and_determinism);
    ("topology: kind strings", `Quick, test_topology_kind_strings);
  ]
  @ qsuite
