(* Interconnect model: beat math, FIFO arbitration, address map. *)

open Bus

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_beats_for () =
  let p = Params.default in
  checki "1 byte = 1 beat" 1 (Params.beats_for p 1);
  checki "8 bytes = 1 beat" 1 (Params.beats_for p 8);
  checki "9 bytes = 2 beats" 2 (Params.beats_for p 9);
  checki "0 bytes still 1 beat" 1 (Params.beats_for p 0);
  checki "128 bytes = 16 beats" 16 (Params.beats_for p 128)

let ap = Params.default.Params.addr_phase

let test_fabric_single_request () =
  let f = Fabric.create Params.default in
  let g = Fabric.request f ~at:10 ~beats:4 ~is_read:true ~extra_latency:0 in
  checki "granted when requested" 10 g.Fabric.granted_at;
  checki "data done after address phase + beats" (10 + ap + 4) g.Fabric.data_done;
  checki "completed adds read latency"
    (10 + ap + 4 + Params.default.Params.read_latency) g.Fabric.completed

let test_fabric_serializes () =
  let f = Fabric.create Params.default in
  let g1 = Fabric.request f ~at:0 ~beats:8 ~is_read:true ~extra_latency:0 in
  let g2 = Fabric.request f ~at:0 ~beats:8 ~is_read:true ~extra_latency:0 in
  checki "first immediate" 0 g1.Fabric.granted_at;
  checki "second waits for the bus" (ap + 8) g2.Fabric.granted_at;
  checki "beats accounted" 16 (Fabric.total_beats f)

let test_fabric_idle_gap () =
  let f = Fabric.create Params.default in
  let _ = Fabric.request f ~at:0 ~beats:2 ~is_read:false ~extra_latency:0 in
  let g = Fabric.request f ~at:100 ~beats:2 ~is_read:false ~extra_latency:0 in
  checki "no queueing after idle gap" 100 g.Fabric.granted_at

let test_fabric_extra_latency () =
  let f = Fabric.create Params.default in
  let g0 = Fabric.request f ~at:0 ~beats:1 ~is_read:true ~extra_latency:0 in
  Fabric.reset f;
  let g1 = Fabric.request f ~at:0 ~beats:1 ~is_read:true ~extra_latency:3 in
  checki "latency added to completion only" (g0.Fabric.completed + 3)
    g1.Fabric.completed;
  checki "data phase unchanged" g0.Fabric.data_done g1.Fabric.data_done

let test_fabric_write_latency () =
  let f = Fabric.create Params.default in
  let g = Fabric.request f ~at:0 ~beats:1 ~is_read:false ~extra_latency:0 in
  checki "write completion" (ap + 1 + Params.default.Params.write_latency)
    g.Fabric.completed

let test_addr_map () =
  checkb "dram holds heap" true
    (Addr_map.in_dram ~addr:Addr_map.heap_base ~size:4096);
  checkb "ctrl regs outside dram" false
    (Addr_map.in_dram ~addr:Addr_map.accel_ctrl_base ~size:8);
  let r0 = Addr_map.ctrl_reg ~instance:0 ~reg:0 in
  let r1 = Addr_map.ctrl_reg ~instance:1 ~reg:0 in
  checki "instance stride" Addr_map.accel_ctrl_stride (r1 - r0);
  checki "reg stride" 8 (Addr_map.ctrl_reg ~instance:0 ~reg:1 - r0)

let prop_fifo_monotonic =
  QCheck.Test.make ~count:200 ~name:"grants never move backwards"
    QCheck.(small_list (pair (int_bound 50) (int_range 1 16)))
    (fun reqs ->
      let f = Fabric.create Params.default in
      let now = ref 0 in
      List.for_all
        (fun (delay, beats) ->
          now := !now + delay;
          let g = Fabric.request f ~at:!now ~beats ~is_read:true ~extra_latency:0 in
          g.Fabric.granted_at >= !now
          && g.Fabric.data_done = g.Fabric.granted_at + ap + beats)
        reqs)

let prop_beats_conserved =
  QCheck.Test.make ~count:200 ~name:"total beats equals sum of requests"
    QCheck.(small_list (int_range 1 16))
    (fun beats_list ->
      let f = Fabric.create Params.default in
      List.iter
        (fun b -> ignore (Fabric.request f ~at:0 ~beats:b ~is_read:true ~extra_latency:0))
        beats_list;
      Fabric.total_beats f = List.fold_left ( + ) 0 beats_list)

(* ---- round-robin arbiter (event-driven core) ---- *)

(* Queue [n] bursts of [beats] from [src], each ready at [at]; every grant is
   appended to [log] as (src, granted_at). *)
let saturate arb log ~src ~at ~n ~beats =
  for _ = 1 to n do
    Arbiter.request arb ~src ~at ~beats ~is_read:true ~extra_latency:0
      ~on_grant:(fun g -> log := (src, g.Fabric.granted_at) :: !log)
  done

let test_arbiter_matches_fabric_single_source () =
  (* One source: the arbiter must grant exactly the legacy fabric's schedule
     (the event engine's differential equivalence rests on this). *)
  let f = Fabric.create Params.default in
  let expect =
    List.map
      (fun (at, beats) ->
        let g = Fabric.request f ~at ~beats ~is_read:true ~extra_latency:0 in
        (g.Fabric.granted_at, g.Fabric.data_done, g.Fabric.completed))
      [ (0, 8); (0, 2); (30, 4); (31, 1) ]
  in
  let sched = Ccsim.Sched.create () in
  let arb = Arbiter.create ~sched Params.default in
  let got = ref [] in
  List.iter
    (fun (at, beats) ->
      Arbiter.request arb ~src:7 ~at ~beats ~is_read:true ~extra_latency:0
        ~on_grant:(fun g ->
          got := (g.Fabric.granted_at, g.Fabric.data_done, g.Fabric.completed) :: !got))
    [ (0, 8); (0, 2); (30, 4); (31, 1) ];
  Ccsim.Sched.run sched;
  Alcotest.(check (list (triple int int int)))
    "same grant schedule as the fabric" expect (List.rev !got);
  checki "same beat accounting" (Fabric.total_beats f) (Arbiter.total_beats arb)

let test_arbiter_fairness_two_sources () =
  (* Two sources saturating from cycle 0: grants must alternate, so at every
     prefix of the grant sequence the sources' total beats are within one
     burst of each other. *)
  let beats = 8 and n = 10 in
  let sched = Ccsim.Sched.create () in
  let arb = Arbiter.create ~sched Params.default in
  let log = ref [] in
  saturate arb log ~src:0 ~at:0 ~n ~beats;
  saturate arb log ~src:1 ~at:0 ~n ~beats;
  Ccsim.Sched.run sched;
  let grants = List.rev !log in
  checki "all grants delivered" (2 * n) (List.length grants);
  let b0 = ref 0 and b1 = ref 0 in
  List.iter
    (fun (src, _) ->
      if src = 0 then b0 := !b0 + beats else b1 := !b1 + beats;
      checkb "prefix beat totals within one burst" true
        (abs (!b0 - !b1) <= beats))
    grants;
  checki "source 0 got half the beats" (n * beats) !b0;
  checki "source 1 got half the beats" (n * beats) !b1

let test_arbiter_late_arrival_served_within_one_round () =
  (* Two sources saturate the bus; a third arrives mid-stream.  Round-robin
     must grant it after at most one request from each competing source (no
     starvation), unlike the legacy fabric's global FIFO. *)
  let beats = 8 in
  let sched = Ccsim.Sched.create () in
  let arb = Arbiter.create ~sched Params.default in
  let log = ref [] in
  saturate arb log ~src:0 ~at:0 ~n:12 ~beats;
  saturate arb log ~src:1 ~at:0 ~n:12 ~beats;
  let arrival = 50 in
  Arbiter.request arb ~src:2 ~at:arrival ~beats ~is_read:true ~extra_latency:0
    ~on_grant:(fun g -> log := (2, g.Fabric.granted_at) :: !log);
  Ccsim.Sched.run sched;
  let grants = List.rev !log in
  let rec grants_between = function
    | [] -> Alcotest.fail "late source never granted"
    | (2, _) :: _ -> 0
    | (_, at) :: rest when at >= arrival -> 1 + grants_between rest
    | _ :: rest -> grants_between rest
  in
  let ahead = grants_between grants in
  checkb
    (Printf.sprintf "at most one grant per competitor before the late source \
                     (got %d)" ahead)
    true (ahead <= 2)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_fifo_monotonic; prop_beats_conserved ]

let suite =
  [
    ("beats_for", `Quick, test_beats_for);
    ("single request", `Quick, test_fabric_single_request);
    ("bus serializes", `Quick, test_fabric_serializes);
    ("idle gap", `Quick, test_fabric_idle_gap);
    ("extra latency", `Quick, test_fabric_extra_latency);
    ("write latency", `Quick, test_fabric_write_latency);
    ("address map", `Quick, test_addr_map);
    ("arbiter: single source = fabric", `Quick,
     test_arbiter_matches_fabric_single_source);
    ("arbiter: two-source fairness", `Quick, test_arbiter_fairness_two_sources);
    ("arbiter: late arrival served", `Quick,
     test_arbiter_late_arrival_served_within_one_round);
  ]
  @ qsuite
