(* End-to-end system runs: functional correctness on every configuration,
   phase accounting, overhead direction, area/power composition and the
   mixed-system path. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* A small, fast benchmark for exhaustive config coverage. *)
let small = Machsuite.Registry.find "aes"
let pointer_chasing = Machsuite.Registry.find "spmv_crs"

let test_labels () =
  Alcotest.(check (list string)) "paper's five configs"
    [ "cpu"; "ccpu"; "cpu+accel"; "ccpu+accel"; "ccpu+caccel" ]
    (List.map Soc.Config.label Soc.Config.evaluated)

let test_all_configs_correct_small () =
  List.iter
    (fun config ->
      let r = Soc.Run.run ~tasks:2 config small in
      checkb (r.Soc.Run.config_label ^ " correct") true r.Soc.Run.correct;
      checkb "no denials" true (r.Soc.Run.denials = []);
      checkb "wall positive" true (r.Soc.Run.wall > 0);
      checki "wall = sum of phases" r.Soc.Run.wall
        (Soc.Run.wall_of r.Soc.Run.phases))
    (Soc.Config.evaluated
    @ [ Soc.Config.ccpu_caccel_coarse;
        Soc.Config.ccpu_caccel_cached;
        Soc.Config.Hetero { cpu_isa = Cpu.Model.Cheri_rv64; protection = Soc.Config.Prot_iommu };
        Soc.Config.Hetero { cpu_isa = Cpu.Model.Cheri_rv64; protection = Soc.Config.Prot_iopmp };
        Soc.Config.Hetero { cpu_isa = Cpu.Model.Cheri_rv64; protection = Soc.Config.Prot_snpu } ])

let test_pointer_chasing_benchmark_all_guards () =
  (* A kernel with dependent loads and staged vectors exercises more of the
     check paths. *)
  List.iter
    (fun config ->
      let r = Soc.Run.run ~tasks:2 config pointer_chasing in
      checkb (r.Soc.Run.config_label ^ " correct") true r.Soc.Run.correct)
    [ Soc.Config.ccpu_caccel; Soc.Config.ccpu_caccel_coarse;
      Soc.Config.ccpu_caccel_cached ]

let test_capchecker_costs_more_cycles () =
  let base = Soc.Run.run ~tasks:4 Soc.Config.ccpu_accel small in
  let cc = Soc.Run.run ~tasks:4 Soc.Config.ccpu_caccel small in
  checkb "overhead is nonnegative" true (cc.Soc.Run.wall >= base.Soc.Run.wall);
  checkb "alloc pays for installs" true
    (cc.Soc.Run.phases.Soc.Run.alloc > base.Soc.Run.phases.Soc.Run.alloc);
  checkb "entries live during run" true (cc.Soc.Run.entries_peak > 0);
  checki "one entry per buffer per task" 4 cc.Soc.Run.entries_peak

let test_accel_beats_cpu_on_compute_bound () =
  let cpu = Soc.Run.run ~tasks:1 Soc.Config.cpu small in
  let accel = Soc.Run.run ~tasks:1 Soc.Config.ccpu_accel small in
  checkb "offload wins" true
    (accel.Soc.Run.phases.Soc.Run.compute < cpu.Soc.Run.phases.Soc.Run.compute)

let test_md_knn_slower_on_accel () =
  let bench = Machsuite.Registry.find "md_knn" in
  let cpu = Soc.Run.run ~tasks:1 Soc.Config.cpu bench in
  let accel = Soc.Run.run ~tasks:1 Soc.Config.ccpu_accel bench in
  checkb "memory-bound kernel loses on the accelerator" true
    (accel.Soc.Run.phases.Soc.Run.compute > cpu.Soc.Run.phases.Soc.Run.compute)

let test_more_tasks_more_throughput () =
  let one = Soc.Run.run ~tasks:1 Soc.Config.ccpu_accel small in
  let four = Soc.Run.run ~tasks:4 Soc.Config.ccpu_accel small in
  (* Four concurrent tasks finish in less than 4x one task's makespan. *)
  checkb "parallel speedup" true
    (four.Soc.Run.phases.Soc.Run.compute < 4 * one.Soc.Run.phases.Soc.Run.compute);
  checkb "but not free" true
    (four.Soc.Run.phases.Soc.Run.compute >= one.Soc.Run.phases.Soc.Run.compute)

let test_area_composition () =
  let cpu = Soc.Run.run ~tasks:1 Soc.Config.cpu small in
  let base = Soc.Run.run ~tasks:1 Soc.Config.ccpu_accel small in
  let cc = Soc.Run.run ~tasks:1 Soc.Config.ccpu_caccel small in
  checkb "accel system bigger than cpu" true
    (base.Soc.Run.area_luts > cpu.Soc.Run.area_luts);
  checki "capchecker area delta" (Capchecker.Area.luts ~entries:256)
    (cc.Soc.Run.area_luts - base.Soc.Run.area_luts);
  checkb "power follows" true (cc.Soc.Run.power_mw > base.Soc.Run.power_mw)

let test_run_mixed () =
  let benches =
    [ small; Machsuite.Registry.find "fft_transpose"; Machsuite.Registry.find "sort_radix" ]
  in
  let base = Soc.Run.run_mixed Soc.Config.ccpu_accel benches in
  let cc = Soc.Run.run_mixed Soc.Config.ccpu_caccel benches in
  checkb "mixed base correct" true base.Soc.Run.correct;
  checkb "mixed cc correct" true cc.Soc.Run.correct;
  checki "task per bench" 3 base.Soc.Run.tasks;
  checkb "overhead sane" true (cc.Soc.Run.wall >= base.Soc.Run.wall);
  checkb "cpu-only rejected" true
    (try
       ignore (Soc.Run.run_mixed Soc.Config.cpu benches);
       false
     with Invalid_argument _ -> true)

let test_mixed_area_exact_sum () =
  (* Regression: [run_mixed] used to report the truncated per-instance mean
     of the accelerator datapaths, under-counting area (and thus power) for
     mixed systems with unequal accelerators.  The result must now carry the
     exact per-instance sum. *)
  let b1 = Machsuite.Registry.find "aes" in
  let b2 = Machsuite.Registry.find "fft_transpose" in
  let luts (b : Machsuite.Bench_def.t) =
    b.Machsuite.Bench_def.directives.Hls.Directives.area_luts
  in
  checkb "benches chosen with unequal datapaths" true (luts b1 <> luts b2);
  let r = Soc.Run.run_mixed Soc.Config.ccpu_caccel [ b1; b2 ] in
  let sys = Soc.System.create ~instances:2 Soc.Config.ccpu_caccel in
  checki "area is the exact sum"
    (Soc.System.total_area_luts_exact sys
       ~accel_luts_total:(luts b1 + luts b2))
    r.Soc.Run.area_luts;
  (* The old mean-based accounting would disagree whenever the sum does not
     divide evenly. *)
  let mean_based =
    Soc.System.total_area_luts sys
      ~accel_luts_per_instance:((luts b1 + luts b2) / 2)
  in
  if (luts b1 + luts b2) mod 2 <> 0 then
    checkb "truncating mean under-reports" true (mean_based < r.Soc.Run.area_luts)

let test_power_model_monotonic () =
  checkb "more luts more power" true
    (Soc.Power.power_mw ~luts:100_000 ~utilization:0.0
    > Soc.Power.power_mw ~luts:50_000 ~utilization:0.0);
  checkb "more traffic more power" true
    (Soc.Power.power_mw ~luts:50_000 ~utilization:0.9
    > Soc.Power.power_mw ~luts:50_000 ~utilization:0.1);
  checkb "utilization clamped" true
    (Soc.Power.power_mw ~luts:0 ~utilization:5.0
    = Soc.Power.power_mw ~luts:0 ~utilization:1.0)

let test_system_create_shapes () =
  let sys = Soc.System.create Soc.Config.ccpu_caccel in
  checkb "has driver" true (sys.Soc.System.driver <> None);
  checkb "has checker" true (sys.Soc.System.checker <> None);
  let cpu_sys = Soc.System.create Soc.Config.cpu in
  checkb "cpu-only has no driver" true (cpu_sys.Soc.System.driver = None);
  checkb "guard defaults to pass-through" true
    (Soc.System.guard cpu_sys == Guard.Iface.pass_through)

let test_naive_flag_only_on_naive () =
  checkb "ccpu+accel is the naive integration" true
    (Soc.System.naive_tag_writes (Soc.System.create Soc.Config.ccpu_accel));
  checkb "cpu+accel has no tags to preserve" false
    (Soc.System.naive_tag_writes (Soc.System.create Soc.Config.cpu_accel));
  checkb "guarded never naive" false
    (Soc.System.naive_tag_writes (Soc.System.create Soc.Config.ccpu_caccel))

(* ---- batch execution on the domain pool ---- *)

(* A deliberately heterogeneous batch: different configs, task counts,
   engines and an active fault plan, so parity failures can't hide behind a
   uniform workload. *)
let batch_specs () =
  [
    Soc.Run.spec ~tasks:2 Soc.Config.ccpu_caccel small;
    Soc.Run.spec ~tasks:1 Soc.Config.cpu small;
    Soc.Run.spec ~tasks:4 ~instances:2 ~engine:Soc.Run.Event_driven
      Soc.Config.ccpu_accel small;
    Soc.Run.spec ~tasks:2 ~faults:(Fault.Plan.default ~seed:3)
      Soc.Config.ccpu_caccel small;
    Soc.Run.spec ~tasks:2 ~elide:Soc.Run.Elide_on Soc.Config.ccpu_caccel
      pointer_chasing;
  ]

let test_run_many_matches_serial () =
  let specs = batch_specs () in
  let serial = List.map (fun sp -> Soc.Run.run_spec sp) specs in
  List.iter
    (fun jobs ->
      checkb
        (Printf.sprintf "run_many jobs:%d equals serial" jobs)
        true
        (Soc.Run.run_many ~jobs specs = serial))
    [ 1; 2; 4 ]

let test_run_many_obs_sinks_are_private () =
  let specs = [ Soc.Run.spec ~tasks:2 Soc.Config.ccpu_caccel small;
                Soc.Run.spec ~tasks:2 Soc.Config.ccpu_caccel small ] in
  let mk () = List.map (fun _ -> Obs.Trace.create ~capacity:(1 lsl 16) ()) specs in
  let serial_sinks = mk () and par_sinks = mk () in
  let serial =
    Soc.Run.run_many ~jobs:1 ~obs_of:(List.nth serial_sinks) specs
  in
  let par = Soc.Run.run_many ~jobs:2 ~obs_of:(List.nth par_sinks) specs in
  checkb "results identical with recording" true (serial = par);
  List.iter2
    (fun s p ->
      checki "per-job sinks capture the same events" (Obs.Trace.length s)
        (Obs.Trace.length p))
    serial_sinks par_sinks

let test_sweep_many_matches_run () =
  let columns =
    [ (Soc.Config.cpu, None); (Soc.Config.ccpu_caccel, Some 4) ]
  in
  let sweep =
    Soc.Run.sweep_many ~jobs:4 ~tasks_list:[ 1; 4 ] columns small
  in
  checki "one row per task count" 2 (List.length sweep);
  List.iter
    (fun (tasks, results) ->
      match results with
      | [ cpu; cc ] ->
          checkb "cpu column equals direct run" true
            (cpu = Soc.Run.run ~tasks Soc.Config.cpu small);
          checkb "cc column equals direct run" true
            (cc = Soc.Run.run ~tasks ~instances:4 Soc.Config.ccpu_caccel small)
      | _ -> Alcotest.fail "column arity")
    sweep

let test_parallel_fault_runs_deterministic () =
  (* Seeded fault plans re-derive their RNG inside each job, so a parallel
     fault batch is as reproducible as a serial one. *)
  let specs =
    List.init 6 (fun i ->
        Soc.Run.spec ~tasks:2 ~faults:(Fault.Plan.default ~seed:(i + 1))
          Soc.Config.ccpu_caccel small)
  in
  let a = Soc.Run.run_many ~jobs:4 specs in
  let b = Soc.Run.run_many ~jobs:2 specs in
  checkb "same batch twice, different jobs, same results" true (a = b);
  List.iter (fun r -> checkb "faulted run correct" true r.Soc.Run.correct) a

let suite =
  [
    ("config labels", `Quick, test_labels);
    ("all configs correct (aes)", `Slow, test_all_configs_correct_small);
    ("guards on pointer chasing", `Slow, test_pointer_chasing_benchmark_all_guards);
    ("capchecker cost direction", `Quick, test_capchecker_costs_more_cycles);
    ("offload wins (aes)", `Quick, test_accel_beats_cpu_on_compute_bound);
    ("md_knn loses on accel", `Quick, test_md_knn_slower_on_accel);
    ("parallel throughput", `Quick, test_more_tasks_more_throughput);
    ("area composition", `Quick, test_area_composition);
    ("mixed system", `Slow, test_run_mixed);
    ("mixed area exact sum", `Slow, test_mixed_area_exact_sum);
    ("power model", `Quick, test_power_model_monotonic);
    ("system shapes", `Quick, test_system_create_shapes);
    ("naive flag", `Quick, test_naive_flag_only_on_naive);
    ("run_many equals serial", `Slow, test_run_many_matches_serial);
    ("run_many private sinks", `Slow, test_run_many_obs_sinks_are_private);
    ("sweep_many equals direct runs", `Slow, test_sweep_many_matches_run);
    ("parallel fault batch deterministic", `Slow,
     test_parallel_fault_runs_deterministic);
  ]
