(* lib/obs: the observability layer must observe without perturbing.

   The load-bearing property is behaviour neutrality: a run with a recording
   sink returns the exact same [Soc.Run.result] as a run with the null sink
   (differential test below).  Everything else — ring accounting, histogram
   percentiles, exporter validity — is checked against the simpler reference
   implementation it mirrors. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Ring ---- *)

let test_ring_wrap () =
  let r = Obs.Ring.create ~capacity:4 in
  for i = 0 to 9 do
    Obs.Ring.push r i
  done;
  check_int "length" 4 (Obs.Ring.length r);
  check_int "dropped" 6 (Obs.Ring.dropped r);
  check_int "pushed" 10 (Obs.Ring.pushed r);
  Alcotest.(check (list int)) "newest retained, oldest first" [ 6; 7; 8; 9 ]
    (Obs.Ring.to_list r);
  Obs.Ring.clear r;
  check_int "cleared length" 0 (Obs.Ring.length r);
  check_int "cleared dropped" 0 (Obs.Ring.dropped r);
  Obs.Ring.push r 42;
  Alcotest.(check (list int)) "usable after clear" [ 42 ] (Obs.Ring.to_list r)

let test_ring_partial () =
  let r = Obs.Ring.create ~capacity:8 in
  List.iter (Obs.Ring.push r) [ 1; 2; 3 ];
  check_int "no drops below capacity" 0 (Obs.Ring.dropped r);
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Obs.Ring.to_list r)

(* ---- Trace sink ---- *)

let test_null_sink () =
  let t = Obs.Trace.null in
  check_bool "null disabled" false (Obs.Trace.enabled t);
  Obs.Trace.emit t (Obs.Event.Mmio_read { offset = 0 });
  Obs.Trace.advance t 100;
  Obs.Trace.set_now t 1000;
  check_int "null records nothing" 0 (Obs.Trace.length t);
  check_int "null clock never moves" 0 (Obs.Trace.now t)

let test_trace_clock_and_drops () =
  let t = Obs.Trace.create ~capacity:2 () in
  Obs.Trace.advance t 5;
  Obs.Trace.set_now t 3;  (* never backwards *)
  check_int "set_now is monotone" 5 (Obs.Trace.now t);
  for i = 0 to 4 do
    Obs.Trace.emit_at t ~cycle:i (Obs.Event.Mmio_write { offset = 8 * i })
  done;
  check_int "bounded" 2 (Obs.Trace.length t);
  check_int "drop counter" 3 (Obs.Trace.dropped t);
  match Obs.Trace.events t with
  | [ a; b ] ->
      check_int "newest kept" 3 a.Obs.Event.cycle;
      check_int "newest kept 2" 4 b.Obs.Event.cycle
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

(* ---- merge_into: the join step of a parallel batch ---- *)

let test_merge_into_order_and_clock () =
  let mk cycles =
    let t = Obs.Trace.create ~capacity:16 () in
    List.iter
      (fun c -> Obs.Trace.emit_at t ~cycle:c (Obs.Event.Mmio_read { offset = c }))
      cycles;
    t
  in
  let a = mk [ 1; 2 ] and b = mk [ 5; 9 ] and c = mk [] in
  Obs.Trace.set_now a 2;
  Obs.Trace.set_now b 9;
  let into = Obs.Trace.create ~capacity:16 () in
  Obs.Trace.emit_at into ~cycle:0 (Obs.Event.Mmio_write { offset = 0 });
  Obs.Trace.merge_into ~into [ a; b; c ];
  check_int "all events landed" 5 (Obs.Trace.length into);
  Alcotest.(check (list int)) "source order preserved" [ 0; 1; 2; 5; 9 ]
    (List.map (fun e -> e.Obs.Event.cycle) (Obs.Trace.events into));
  check_int "clock advanced to max source clock" 9 (Obs.Trace.now into);
  check_int "sources untouched" 2 (Obs.Trace.length a)

let test_merge_into_null_and_self () =
  let src = Obs.Trace.create ~capacity:8 () in
  Obs.Trace.emit src (Obs.Event.Mmio_read { offset = 4 });
  (* A null destination ignores everything — the usual no-observation path. *)
  Obs.Trace.merge_into ~into:Obs.Trace.null [ src ];
  check_int "null absorbs nothing" 0 (Obs.Trace.length Obs.Trace.null);
  check_bool "self-merge rejected" true
    (try
       Obs.Trace.merge_into ~into:src [ src ];
       false
     with Invalid_argument _ -> true)

let test_merge_into_equals_serial_recording () =
  (* Recording 3 fault-free runs into per-job sinks and merging equals one
     sink observing the same runs back to back, up to the clock offsets the
     runs themselves set — the property the parallel bench sections use. *)
  let bench = Machsuite.Registry.find "aes" in
  let sinks =
    List.map
      (fun _ ->
        let t = Obs.Trace.create ~capacity:(1 lsl 16) () in
        ignore (Soc.Run.run ~tasks:2 ~obs:t Soc.Config.ccpu_caccel bench);
        t)
      [ 0; 1; 2 ]
  in
  let merged = Obs.Trace.create ~capacity:(1 lsl 18) () in
  Obs.Trace.merge_into ~into:merged sinks;
  check_int "merged carries every event"
    (List.fold_left (fun acc s -> acc + Obs.Trace.length s) 0 sinks)
    (Obs.Trace.length merged);
  match sinks with
  | first :: _ ->
      Alcotest.(check bool) "merged prefix is the first sink verbatim" true
        (Obs.Trace.events first
        = List.filteri
            (fun i _ -> i < Obs.Trace.length first)
            (Obs.Trace.events merged))
  | [] -> assert false

(* ---- Metrics: histogram percentile vs the exact nearest-rank one ---- *)

(* ---- Metrics: histogram percentile vs the exact nearest-rank one ---- *)

let test_histogram_percentile () =
  (* Deterministic pseudo-random samples spanning several octaves. *)
  let samples =
    List.init 500 (fun i -> (i * 7919 + 13) mod 10_000)
  in
  let m = Obs.Metrics.create () in
  List.iter (fun s -> Obs.Metrics.observe m "lat" s) samples;
  let floats = List.map float_of_int samples in
  List.iter
    (fun p ->
      let exact = int_of_float (Ccsim.Stats.percentile p floats) in
      match Obs.Metrics.percentile m "lat" p with
      | None -> Alcotest.fail "histogram percentile missing"
      | Some hist_p ->
          if not (hist_p >= exact && hist_p <= max (2 * exact - 1) 0) then
            Alcotest.failf "p%.2f: exact %d, histogram %d out of bounds" p
              exact hist_p)
    [ 0.5; 0.9; 0.99; 1.0 ];
  (match Obs.Metrics.hist_summary m "lat" with
  | None -> Alcotest.fail "summary missing"
  | Some s ->
      check_int "count" 500 s.Obs.Metrics.count;
      check_int "max is exact" (List.fold_left max 0 samples)
        s.Obs.Metrics.max_sample);
  check_int "missing histogram" 0
    (match Obs.Metrics.percentile m "nope" 0.5 with Some _ -> 1 | None -> 0)

let test_metrics_merge () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.add a "n" 3;
  Obs.Metrics.add b "n" 4;
  Obs.Metrics.observe a "h" 10;
  Obs.Metrics.observe b "h" 1000;
  Obs.Metrics.merge_into ~dst:a b;
  check_int "counters add" 7 (Obs.Metrics.get a "n");
  match Obs.Metrics.hist_summary a "h" with
  | Some s ->
      check_int "samples merge" 2 s.Obs.Metrics.count;
      check_int "max merges" 1000 s.Obs.Metrics.max_sample
  | None -> Alcotest.fail "merged histogram missing"

(* ---- Differential: recording must not change any simulated number ---- *)

let configs = [ Soc.Config.ccpu_accel; Soc.Config.ccpu_caccel ]
let benches () =
  [ Machsuite.Registry.find "aes"; Machsuite.Registry.find "gemm_blocked" ]

let test_differential () =
  List.iter
    (fun config ->
      List.iter
        (fun (bench : Machsuite.Bench_def.t) ->
          let plain = Soc.Run.run ~tasks:4 config bench in
          let obs = Obs.Trace.create () in
          let traced = Soc.Run.run ~tasks:4 ~obs config bench in
          if plain <> traced then
            Alcotest.failf "%s on %s: result changed under tracing" bench.name
              plain.Soc.Run.config_label;
          check_bool
            (Printf.sprintf "%s/%s trace non-empty" bench.name
               plain.Soc.Run.config_label)
            true
            (Obs.Trace.length obs > 0))
        (benches ()))
    configs

let test_determinism () =
  (* Same seed (the simulator is deterministic), fresh sink each time: the
     exported byte stream must be identical. *)
  let capture () =
    let obs = Obs.Trace.create () in
    ignore (Soc.Run.run ~tasks:4 ~obs Soc.Config.ccpu_caccel
              (Machsuite.Registry.find "aes"));
    Obs.Export.to_chrome_string obs
  in
  Alcotest.(check string) "byte-identical export" (capture ()) (capture ())

(* ---- Exporter: valid JSON, monotone per track, enough categories ---- *)

let recorded_run () =
  let obs = Obs.Trace.create () in
  ignore
    (Soc.Run.run ~tasks:4 ~obs Soc.Config.ccpu_caccel
       (Machsuite.Registry.find "gemm_blocked"));
  obs

let assert_tracks_monotone obs =
  let last = Hashtbl.create 32 in
  Obs.Trace.iter
    (fun e ->
      let key =
        (Obs.Event.category e.Obs.Event.data, Obs.Event.track e.Obs.Event.data)
      in
      (match Hashtbl.find_opt last key with
      | Some prev when e.Obs.Event.cycle < prev ->
          Alcotest.failf "track %s/%d went backwards: %d after %d" (fst key)
            (snd key) e.Obs.Event.cycle prev
      | _ -> ());
      Hashtbl.replace last key e.Obs.Event.cycle)
    obs

let test_event_monotonicity () = assert_tracks_monotone (recorded_run ())

let test_shared_sink_stays_monotone () =
  (* Regression: [run_mixed] used to restart its clock at cycle 0 instead of
     [Obs.Trace.now], so appending a mixed run to a sink that already held an
     earlier run rewound every track.  Record two runs back-to-back into one
     sink and re-check per-track monotonicity across the whole stream. *)
  let obs = Obs.Trace.create () in
  ignore
    (Soc.Run.run ~tasks:2 ~obs Soc.Config.ccpu_caccel
       (Machsuite.Registry.find "aes"));
  let mid = Obs.Trace.now obs in
  check_bool "first run advanced the shared clock" true (mid > 0);
  ignore
    (Soc.Run.run_mixed ~obs Soc.Config.ccpu_caccel
       [ Machsuite.Registry.find "aes";
         Machsuite.Registry.find "fft_transpose" ]);
  check_bool "mixed run continued past the first" true (Obs.Trace.now obs > mid);
  assert_tracks_monotone obs

let test_chrome_export_parses () =
  let obs = recorded_run () in
  let raw = Obs.Export.to_chrome_string obs in
  match Obs.Json.parse raw with
  | Error msg -> Alcotest.failf "exporter emitted invalid JSON: %s" msg
  | Ok json -> (
      match Option.bind (Obs.Json.member "traceEvents" json) Obs.Json.to_list_opt with
      | None -> Alcotest.fail "no traceEvents array"
      | Some events ->
          check_bool "events present" true (List.length events > 0);
          (* Monotone timestamps per (pid, tid) among non-metadata events —
             the property Perfetto needs for sane track rendering. *)
          let last = Hashtbl.create 32 in
          List.iter
            (fun ev ->
              let str k = Option.bind (Obs.Json.member k ev) Obs.Json.to_string_opt in
              let num k = Option.bind (Obs.Json.member k ev) Obs.Json.to_int_opt in
              match (str "ph", num "pid", num "tid", num "ts") with
              | Some "M", _, _, _ -> ()
              | Some _, Some pid, Some tid, Some ts ->
                  (match Hashtbl.find_opt last (pid, tid) with
                  | Some prev when ts < prev ->
                      Alcotest.failf "pid %d tid %d: ts %d after %d" pid tid ts
                        prev
                  | _ -> ());
                  Hashtbl.replace last (pid, tid) ts
              | _ -> Alcotest.fail "event missing ph/pid/tid/ts")
            events;
          let categories = Obs.Export.categories obs in
          if List.length categories < 4 then
            Alcotest.failf "only %d component categories traced"
              (List.length categories))

let test_write_chrome_roundtrip () =
  let obs = recorded_run () in
  let path = Filename.temp_file "capsim_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Export.write_chrome ~path obs;
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let raw = really_input_string ic n in
      close_in ic;
      match Obs.Json.parse raw with
      | Ok json ->
          check_bool "file has traceEvents" true
            (Obs.Json.member "traceEvents" json <> None)
      | Error msg -> Alcotest.failf "written file invalid: %s" msg)

let test_metrics_of_trace () =
  let obs = recorded_run () in
  let m = Obs.Metrics.of_trace obs in
  check_bool "bus grants counted" true (Obs.Metrics.get m "bus.bus_grant" > 0);
  check_bool "checks counted" true (Obs.Metrics.get m "checker.check_ok" > 0);
  check_bool "grant-wait histogram" true
    (Obs.Metrics.percentile m "bus.grant_wait" 0.5 <> None);
  check_bool "renders" true (String.length (Obs.Metrics.to_table m) > 0);
  check_bool "summary renders" true (String.length (Obs.Export.summary obs) > 0)

(* ---- Bounded denial log (the denial-storm regression) ---- *)

let denial_req i =
  (* Fine mode with no installed capability: every check denies. *)
  { Guard.Iface.source = 1; port = Some (i mod 4); addr = 0x1000 + i; size = 8;
    kind = Guard.Iface.Read }

let test_denial_storm_bounded () =
  let checker =
    Capchecker.Checker.create ~log_capacity:4 Capchecker.Checker.Fine
  in
  for i = 0 to 99 do
    match Capchecker.Checker.check checker (denial_req i) with
    | Guard.Iface.Denied _ -> ()
    | Guard.Iface.Granted _ -> Alcotest.fail "uninstalled capability granted"
  done;
  let log = Capchecker.Checker.exception_log checker in
  check_int "log bounded" 4 (List.length log);
  check_int "drops counted" 96 (Capchecker.Checker.dropped_denials checker);
  check_int "capacity visible" 4 (Capchecker.Checker.log_capacity checker);
  check_bool "flag raised" true (Capchecker.Checker.exception_flag checker);
  (* The retained entries are the newest: their details mention the last
     addresses probed. *)
  check_int "per-task view bounded" 4
    (List.length (Capchecker.Checker.exception_log_for checker ~task:1));
  check_int "other tasks unaffected" 0
    (List.length (Capchecker.Checker.exception_log_for checker ~task:2))

let test_denial_log_default_capacity () =
  let checker = Capchecker.Checker.create Capchecker.Checker.Fine in
  check_int "default capacity" 256 (Capchecker.Checker.log_capacity checker);
  (* Below capacity nothing is dropped — the pre-bugfix behaviour of keeping
     every denial is preserved for real (engine-aborted) workloads. *)
  for i = 0 to 9 do
    ignore (Capchecker.Checker.check checker (denial_req i))
  done;
  check_int "nothing dropped" 0 (Capchecker.Checker.dropped_denials checker);
  check_int "all retained" 10
    (List.length (Capchecker.Checker.exception_log checker))

let suite =
  [
    Alcotest.test_case "ring wrap and drop accounting" `Quick test_ring_wrap;
    Alcotest.test_case "ring below capacity" `Quick test_ring_partial;
    Alcotest.test_case "null sink is inert" `Quick test_null_sink;
    Alcotest.test_case "trace clock and drops" `Quick test_trace_clock_and_drops;
    Alcotest.test_case "merge_into order and clock" `Quick
      test_merge_into_order_and_clock;
    Alcotest.test_case "merge_into null/self handling" `Quick
      test_merge_into_null_and_self;
    Alcotest.test_case "merge equals serial recording" `Slow
      test_merge_into_equals_serial_recording;
    Alcotest.test_case "histogram percentile brackets exact" `Quick
      test_histogram_percentile;
    Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
    Alcotest.test_case "tracing changes nothing (differential)" `Slow
      test_differential;
    Alcotest.test_case "export is deterministic" `Slow test_determinism;
    Alcotest.test_case "event stream monotone per track" `Slow
      test_event_monotonicity;
    Alcotest.test_case "shared sink monotone across run + run_mixed" `Slow
      test_shared_sink_stays_monotone;
    Alcotest.test_case "chrome export parses and is well-formed" `Slow
      test_chrome_export_parses;
    Alcotest.test_case "write_chrome roundtrip" `Slow test_write_chrome_roundtrip;
    Alcotest.test_case "metrics derived from trace" `Slow test_metrics_of_trace;
    Alcotest.test_case "denial storm stays bounded" `Quick
      test_denial_storm_bounded;
    Alcotest.test_case "denial log default keeps small logs whole" `Quick
      test_denial_log_default_capacity;
  ]
