(* The trusted driver: allocation/deallocation flows for every backend,
   capability derivation and installation, exception collection, scrubbing,
   and resource exhaustion behaviour. *)

open Kernel.Ir

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let kernel2 =
  {
    name = "two_buffers";
    bufs = [ buf ~writable:false "in" I64 32; buf "out" I64 16 ];
    scratch = [];
    body = [];
  }

let make_driver ?(instances = 2) backend =
  let mem = Tagmem.Mem.create ~size:(1 lsl 21) in
  let heap = Tagmem.Alloc.create ~base:4096 ~size:((1 lsl 21) - 4096) in
  ( Driver.create ~mem ~heap ~backend ~bus:Bus.Params.default ~n_instances:instances (),
    mem, heap )

let alloc_exn driver kernel =
  match Driver.allocate driver kernel with
  | Ok a -> a
  | Error msg -> Alcotest.failf "allocate: %s" msg

let test_allocate_basics () =
  let driver, _, _ = make_driver (Driver.Backend.No_protection { naive_tags = false }) in
  let a = alloc_exn driver kernel2 in
  checki "task id" 0 a.Driver.handle.Driver.task_id;
  checkb "cycles charged" true (a.Driver.cycles > 0);
  checki "objects numbered" 2 (List.length a.Driver.handle.Driver.obj_ids);
  checki "in is object 0" 0 (List.assoc "in" a.Driver.handle.Driver.obj_ids);
  checki "free instances" 1 (Driver.free_instances driver)

let test_instance_exhaustion_and_release () =
  let driver, _, _ = make_driver ~instances:1 (Driver.Backend.No_protection { naive_tags = false }) in
  let a = alloc_exn driver kernel2 in
  checkb "second allocation stalls" true (Result.is_error (Driver.allocate driver kernel2));
  let _ = Driver.deallocate driver a.Driver.handle ~denied:None in
  checkb "instance released" true (Result.is_ok (Driver.allocate driver kernel2))

let test_capchecker_backend_installs () =
  let checker = Capchecker.Checker.create ~entries:8 Capchecker.Checker.Fine in
  let driver, _, _ = make_driver (Driver.Backend.Capchecker checker) in
  let a = alloc_exn driver kernel2 in
  checki "one entry per buffer" 2
    (Capchecker.Table.live_count (Capchecker.Checker.table checker));
  (* The installed capability for the read-only buffer must not carry store
     permission. *)
  (match Capchecker.Table.lookup (Capchecker.Checker.table checker)
           ~task:a.Driver.handle.Driver.task_id ~obj:0 with
  | Some e ->
      checkb "read-only grant" false
        (Cheri.Perms.mem Cheri.Perms.store e.Capchecker.Table.cap.Cheri.Cap.perms)
  | None -> Alcotest.fail "missing entry");
  (match Capchecker.Table.lookup (Capchecker.Checker.table checker)
           ~task:a.Driver.handle.Driver.task_id ~obj:1 with
  | Some e ->
      checkb "writable grant" true
        (Cheri.Perms.mem Cheri.Perms.store e.Capchecker.Table.cap.Cheri.Cap.perms)
  | None -> Alcotest.fail "missing entry");
  let _ = Driver.deallocate driver a.Driver.handle ~denied:None in
  checki "evicted on dealloc" 0
    (Capchecker.Table.live_count (Capchecker.Checker.table checker))

let test_capchecker_caps_cover_buffers () =
  let checker = Capchecker.Checker.create ~entries:8 Capchecker.Checker.Fine in
  let driver, _, _ = make_driver (Driver.Backend.Capchecker checker) in
  let a = alloc_exn driver kernel2 in
  List.iter
    (fun (binding : Memops.Layout.binding) ->
      let cap = List.assoc binding.decl.buf_name a.Driver.handle.Driver.caps in
      checkb "covers base" true (cap.Cheri.Cap.base <= binding.Memops.Layout.base);
      checkb "covers top" true
        (cap.Cheri.Cap.top
        >= binding.Memops.Layout.base + buf_decl_bytes binding.decl);
      checkb "tagged" true cap.Cheri.Cap.tag)
    (Memops.Layout.bindings a.Driver.handle.Driver.layout)

let test_capchecker_table_exhaustion () =
  let checker = Capchecker.Checker.create ~entries:2 Capchecker.Checker.Fine in
  let driver, _, _ = make_driver ~instances:4 (Driver.Backend.Capchecker checker) in
  let _a = alloc_exn driver kernel2 in
  (* Second task needs 2 more entries than the 2-entry table has. *)
  checkb "would stall" true (Result.is_error (Driver.allocate driver kernel2))

let test_iommu_backend_pages () =
  let mmu = Guard.Iommu.create () in
  let driver, _, _ = make_driver (Driver.Backend.Iommu mmu) in
  let a = alloc_exn driver kernel2 in
  (* Page-aligned allocation: one buffer per page. *)
  List.iter
    (fun (b : Memops.Layout.binding) ->
      checki "page aligned" 0 (b.Memops.Layout.base mod Guard.Iommu.page_size))
    (Memops.Layout.bindings a.Driver.handle.Driver.layout);
  checki "two pages mapped" 2 (Guard.Iommu.mapped_pages mmu);
  let _ = Driver.deallocate driver a.Driver.handle ~denied:None in
  checki "unmapped" 0 (Guard.Iommu.mapped_pages mmu)

let test_iopmp_backend_single_arena_rule () =
  let pmp = Guard.Iopmp.create () in
  let driver, _, _ = make_driver (Driver.Backend.Iopmp pmp) in
  let _a = alloc_exn driver kernel2 in
  checki "one rule per task" 1 ((Guard.Iopmp.as_guard pmp).Guard.Iface.entries_in_use ())

let test_snpu_backend_per_buffer_regions () =
  let s = Guard.Snpu.create () in
  let driver, _, _ = make_driver (Driver.Backend.Snpu s) in
  let _a = alloc_exn driver kernel2 in
  checki "one region per buffer" 2
    ((Guard.Snpu.as_guard s).Guard.Iface.entries_in_use ())

let test_dealloc_scrubs_on_exception () =
  let checker = Capchecker.Checker.create ~entries:8 Capchecker.Checker.Fine in
  let driver, mem, _ = make_driver (Driver.Backend.Capchecker checker) in
  let a = alloc_exn driver kernel2 in
  let out = Memops.Layout.find a.Driver.handle.Driver.layout "out" in
  Tagmem.Mem.write_u64 mem ~addr:out.Memops.Layout.base 0x1234L;
  let report =
    Driver.deallocate driver a.Driver.handle
      ~denied:(Some { Guard.Iface.code = "capchecker"; detail = "test" })
  in
  checkb "exception seen" true report.Driver.exception_seen;
  checkb "bytes scrubbed" true (report.Driver.scrubbed_bytes > 0);
  Alcotest.(check int64) "buffer cleared" 0L
    (Tagmem.Mem.read_u64 mem ~addr:out.Memops.Layout.base)

let test_dealloc_clean_keeps_data () =
  let driver, mem, _ = make_driver (Driver.Backend.No_protection { naive_tags = false }) in
  let a = alloc_exn driver kernel2 in
  let out = Memops.Layout.find a.Driver.handle.Driver.layout "out" in
  Tagmem.Mem.write_u64 mem ~addr:out.Memops.Layout.base 0x1234L;
  let report = Driver.deallocate driver a.Driver.handle ~denied:None in
  checkb "no exception" false report.Driver.exception_seen;
  checki "nothing scrubbed" 0 report.Driver.scrubbed_bytes

let test_dealloc_collects_checker_log () =
  let checker = Capchecker.Checker.create ~entries:8 Capchecker.Checker.Fine in
  let driver, _, _ = make_driver (Driver.Backend.Capchecker checker) in
  let a = alloc_exn driver kernel2 in
  (* An illegal access recorded by the hardware against this task. *)
  ignore
    (Capchecker.Checker.check checker
       { Guard.Iface.source = a.Driver.handle.Driver.task_id; port = Some 0;
         addr = 0; size = 8; kind = Guard.Iface.Read });
  let report = Driver.deallocate driver a.Driver.handle ~denied:None in
  checkb "exception collected from hardware" true report.Driver.exception_seen;
  checkb "denial reported" true (report.Driver.denials <> [])

let test_dealloc_other_tasks_exception_not_charged () =
  let checker = Capchecker.Checker.create ~entries:8 Capchecker.Checker.Fine in
  let driver, _, _ = make_driver (Driver.Backend.Capchecker checker) in
  let a = alloc_exn driver kernel2 in
  let b = alloc_exn driver kernel2 in
  ignore
    (Capchecker.Checker.check checker
       { Guard.Iface.source = b.Driver.handle.Driver.task_id; port = Some 0;
         addr = 0; size = 8; kind = Guard.Iface.Read });
  let report = Driver.deallocate driver a.Driver.handle ~denied:None in
  checkb "innocent task unaffected" false report.Driver.exception_seen

let test_heap_returned_after_dealloc () =
  let driver, _, heap = make_driver (Driver.Backend.No_protection { naive_tags = false }) in
  let before = Tagmem.Alloc.bytes_free heap in
  let a = alloc_exn driver kernel2 in
  let _ = Driver.deallocate driver a.Driver.handle ~denied:None in
  checki "heap restored" before (Tagmem.Alloc.bytes_free heap)

let test_heap_returned_iopmp_arena () =
  let pmp = Guard.Iopmp.create () in
  let driver, _, heap = make_driver (Driver.Backend.Iopmp pmp) in
  let before = Tagmem.Alloc.bytes_free heap in
  let a = alloc_exn driver kernel2 in
  let _ = Driver.deallocate driver a.Driver.handle ~denied:None in
  checki "arena restored" before (Tagmem.Alloc.bytes_free heap)

(* Ill-formed kernels must fail loudly at allocation (construction) time,
   naming the offending buffer and statement — not surface mid-interpretation
   as a guard denial. *)
let test_allocate_rejects_ill_formed_kernel () =
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go j = j + n <= m && (String.sub s j n = sub || go (j + 1)) in
    n = 0 || go 0
  in
  let driver, _, _ = make_driver (Driver.Backend.No_protection { naive_tags = false }) in
  let bad =
    {
      name = "bad_ro";
      bufs = [ buf ~writable:false "out" I64 8 ];
      scratch = [];
      body = [ store "out" (i 0) (i 1) ];
    }
  in
  (match Driver.allocate driver bad with
  | exception Invalid_argument msg ->
      checkb "names the buffer" true (contains ~sub:"read-only buffer out" msg);
      checkb "names the statement" true (contains ~sub:"out[0] <- 1" msg)
  | Ok _ | Error _ -> Alcotest.fail "ill-formed kernel was accepted");
  (* Nothing was placed: the instance and the heap are untouched. *)
  checki "no instance consumed" 2 (Driver.free_instances driver);
  checkb "well-formed kernel still allocates" true
    (Result.is_ok (Driver.allocate driver kernel2))

let suite =
  [
    ("allocate basics", `Quick, test_allocate_basics);
    ("allocate rejects ill-formed kernel", `Quick,
     test_allocate_rejects_ill_formed_kernel);
    ("instance exhaustion/release", `Quick, test_instance_exhaustion_and_release);
    ("capchecker installs", `Quick, test_capchecker_backend_installs);
    ("capchecker caps cover buffers", `Quick, test_capchecker_caps_cover_buffers);
    ("capchecker table exhaustion", `Quick, test_capchecker_table_exhaustion);
    ("iommu pages", `Quick, test_iommu_backend_pages);
    ("iopmp arena rule", `Quick, test_iopmp_backend_single_arena_rule);
    ("snpu regions", `Quick, test_snpu_backend_per_buffer_regions);
    ("scrub on exception", `Quick, test_dealloc_scrubs_on_exception);
    ("clean dealloc keeps data", `Quick, test_dealloc_clean_keeps_data);
    ("collects checker log", `Quick, test_dealloc_collects_checker_log);
    ("innocent task not charged", `Quick, test_dealloc_other_tasks_exception_not_charged);
    ("heap returned", `Quick, test_heap_returned_after_dealloc);
    ("heap returned (arena)", `Quick, test_heap_returned_iopmp_arena);
  ]
