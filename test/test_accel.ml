(* The accelerator model: AXI burst formation in traces, the execution
   engine's functional + checking behaviour, and the contention replay. *)

open Kernel.Ir

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let bus = Bus.Params.default
let ap = bus.Bus.Params.addr_phase

(* ---------------- trace / burst formation ---------------- *)

let add t ?(gap = 0) ?(kind = Guard.Iface.Read) ?(dependent = false) ~addr ~size () =
  Accel.Trace.add_access t ~bus ~max_burst:bus.Bus.Params.max_burst ~gap ~kind ~addr
    ~size ~dependent ~latency:0

let test_burst_merge_contiguous () =
  let t = Accel.Trace.create () in
  for j = 0 to 15 do
    add t ~addr:(j * 8) ~size:8 ()
  done;
  checki "one 16-beat burst" 1 (Accel.Trace.length t);
  checki "beats" 16 (Accel.Trace.total_beats t)

let test_burst_respects_max () =
  let t = Accel.Trace.create () in
  for j = 0 to 31 do
    add t ~addr:(j * 8) ~size:8 ()
  done;
  checki "split at max_burst" 2 (Accel.Trace.length t)

let test_burst_small_elements_share_beats () =
  let t = Accel.Trace.create () in
  for j = 0 to 15 do
    add t ~addr:(j * 4) ~size:4 ()
  done;
  (* 64 bytes on an 8-byte bus = 8 beats. *)
  checki "one burst" 1 (Accel.Trace.length t);
  checki "beats from bytes" 8 (Accel.Trace.total_beats t)

let test_no_merge_on_gap () =
  let t = Accel.Trace.create () in
  add t ~addr:0 ~size:8 ();
  add t ~gap:3 ~addr:8 ~size:8 ();
  checki "gap breaks burst" 2 (Accel.Trace.length t)

let test_no_merge_on_kind_change () =
  let t = Accel.Trace.create () in
  add t ~addr:0 ~size:8 ();
  add t ~kind:Guard.Iface.Write ~addr:8 ~size:8 ();
  checki "kind breaks burst" 2 (Accel.Trace.length t)

let test_no_merge_noncontiguous () =
  let t = Accel.Trace.create () in
  add t ~addr:0 ~size:8 ();
  add t ~addr:64 ~size:8 ();
  checki "stride breaks burst" 2 (Accel.Trace.length t)

let test_no_merge_dependent () =
  let t = Accel.Trace.create () in
  add t ~addr:0 ~size:8 ();
  add t ~dependent:true ~addr:8 ~size:8 ();
  checki "dependent load stands alone" 2 (Accel.Trace.length t)

(* ---------------- engine ---------------- *)

let make_env () =
  let mem = Tagmem.Mem.create ~size:(1 lsl 20) in
  let heap = Tagmem.Alloc.create ~base:4096 ~size:((1 lsl 20) - 4096) in
  (mem, heap)

let layout_for heap (kernel : Kernel.Ir.t) =
  Memops.Layout.make
    (List.map
       (fun (decl : buf_decl) ->
         let bytes = buf_decl_bytes decl in
         let align, padded = Cheri.Bounds_enc.malloc_shape ~length:bytes in
         { Memops.Layout.decl; base = Tagmem.Alloc.malloc heap ~align padded })
       kernel.bufs)

let run_engine ?(guard = Guard.Iface.pass_through)
    ?(addressing = Accel.Engine.Plain) ?(naive = false) mem kernel layout =
  Accel.Engine.run ~mem ~guard ~bus ~directives:Hls.Directives.default ~addressing
    ~naive_tag_writes:naive
    {
      Accel.Engine.instance = 0;
      kernel;
      layout;
      params = [];
      obj_ids = List.mapi (fun obj (d : buf_decl) -> (d.buf_name, obj)) kernel.bufs;
    }

let scale_kernel =
  {
    name = "scale";
    bufs = [ buf ~writable:false "src" I64 32; buf "dst" I64 32 ];
    scratch = [];
    body =
      [ for_ "j" (i 0) (i 32) [ store "dst" (v "j") (ld "src" (v "j") *: i 2) ] ];
  }

let test_engine_functional () =
  let mem, heap = make_env () in
  let layout = layout_for heap scale_kernel in
  let src = Memops.Layout.find layout "src" in
  Memops.Layout.init_buffer mem src (fun idx -> Kernel.Value.VI idx);
  let o = run_engine mem scale_kernel layout in
  checkb "completed" true (o.Accel.Engine.denied = None);
  checki "reads" 32 o.Accel.Engine.reads;
  checki "writes" 32 o.Accel.Engine.writes;
  let dst = Memops.Layout.find layout "dst" in
  checki "value scaled" 22
    (Kernel.Value.as_int
       (Memops.Layout.read_elem mem I64 ~addr:(Memops.Layout.elem_addr dst 11)))

let test_engine_checks_counted () =
  let mem, heap = make_env () in
  let layout = layout_for heap scale_kernel in
  let o = run_engine mem scale_kernel layout in
  checki "one check per access" 64 o.Accel.Engine.checks

let test_engine_denial_aborts () =
  let oob =
    {
      name = "oob";
      bufs = [ buf "a" I64 8 ];
      scratch = [];
      body =
        [
          store "a" (i 0) (i 1);
          store "a" (i 5000) (i 2);  (* way past the buffer *)
          store "a" (i 1) (i 3);     (* never reached *)
        ];
    }
  in
  let mem, heap = make_env () in
  let layout = layout_for heap oob in
  let checker = Capchecker.Checker.create Capchecker.Checker.Fine in
  let binding = Memops.Layout.find layout "a" in
  let cap =
    match Cheri.Cap.set_bounds Cheri.Cap.root ~base:binding.Memops.Layout.base ~length:64 with
    | Ok c -> c
    | Error _ -> assert false
  in
  (match Capchecker.Checker.install checker ~task:0 ~obj:0 cap with
  | Capchecker.Table.Installed _ -> ()
  | Capchecker.Table.Table_full | Capchecker.Table.Rejected_untagged -> assert false);
  let o =
    run_engine
      ~guard:(Capchecker.Checker.as_guard checker)
      ~addressing:Accel.Engine.Fine_ports mem oob layout
  in
  checkb "denied" true (o.Accel.Engine.denied <> None);
  checki "first store landed" 1
    (Kernel.Value.as_int
       (Memops.Layout.read_elem mem I64 ~addr:binding.Memops.Layout.base));
  checki "third store never issued" 0
    (Kernel.Value.as_int
       (Memops.Layout.read_elem mem I64
          ~addr:(Memops.Layout.elem_addr binding 1)));
  checkb "exception flag up" true (Capchecker.Checker.exception_flag checker)

let test_engine_bus_error_out_of_dram () =
  let wild =
    { name = "wild"; bufs = [ buf "a" I64 8 ]; scratch = [];
      body = [ store "a" (i 0) (ld "a" (i 100_000_000)) ] }
  in
  let mem, heap = make_env () in
  let layout = layout_for heap wild in
  let o = run_engine mem wild layout in
  (match o.Accel.Engine.denied with
  | Some d -> Alcotest.(check string) "bus error" "bus" d.Guard.Iface.code
  | None -> Alcotest.fail "escaped physical memory")

let test_engine_tag_discipline () =
  (* Guarded (and even unguarded but non-naive) DMA writes clear tags;
     the naive path preserves them. *)
  let k =
    { name = "w"; bufs = [ buf "a" I64 8 ]; scratch = [];
      body = [ store "a" (i 0) (i 42); store "a" (i 1) (i 43) ] }
  in
  let run ~naive =
    let mem, heap = make_env () in
    let layout = layout_for heap k in
    let binding = Memops.Layout.find layout "a" in
    let cap =
      match Cheri.Cap.set_bounds Cheri.Cap.root ~base:binding.Memops.Layout.base ~length:16 with
      | Ok c -> c
      | Error _ -> assert false
    in
    Tagmem.Mem.store_cap mem ~addr:binding.Memops.Layout.base cap;
    let _ = run_engine ~naive mem k layout in
    Tagmem.Mem.tag_at mem ~addr:binding.Memops.Layout.base
  in
  checkb "clean path clears" false (run ~naive:false);
  checkb "naive path preserves" true (run ~naive:true)

(* ---------------- replay ---------------- *)

let trace_of_events events =
  let t = Accel.Trace.create () in
  List.iter (Accel.Trace.add t) events
  |> fun () -> t

let ev ?(gap = 0) ?(kind = Guard.Iface.Read) ?(dependent = false) ?(latency = 0)
    beats =
  { Accel.Trace.gap; kind; beats; dependent; latency }

let replay streams =
  Accel.Replay.run (Bus.Fabric.create bus) ~start:0
    (List.mapi
       (fun idx (trace, outstanding) ->
         { Accel.Replay.instance = idx; trace; max_outstanding = outstanding })
       streams)

let test_replay_empty () =
  let r = replay [ (Accel.Trace.create (), 4) ] in
  checki "empty completes at start" 0 r.Accel.Replay.makespan

let test_replay_single_read () =
  let r = replay [ (trace_of_events [ ev 1 ], 4) ] in
  checki "address phase + beat + latency" (ap + 1 + bus.Bus.Params.read_latency)
    r.Accel.Replay.makespan

let test_replay_dependent_chain () =
  let per = ap + 1 + bus.Bus.Params.read_latency in
  let r = replay [ (trace_of_events [ ev ~dependent:true 1; ev ~dependent:true 1 ], 4) ] in
  checki "serial chain" (2 * per) r.Accel.Replay.makespan

let test_replay_streaming_pipelines () =
  let events = List.init 8 (fun _ -> ev 1) in
  let r = replay [ (trace_of_events events, 8) ] in
  (* Each transaction occupies addr_phase + 1 beat; the last read completes
     a memory latency after its data. *)
  checki "pipelined" ((8 * (ap + 1)) + bus.Bus.Params.read_latency)
    r.Accel.Replay.makespan

let test_replay_outstanding_limit_throttles () =
  let events = List.init 8 (fun _ -> ev 1) in
  let deep = (replay [ (trace_of_events events, 8) ]).Accel.Replay.makespan in
  let shallow = (replay [ (trace_of_events events, 1) ]).Accel.Replay.makespan in
  checkb "limit hurts" true (shallow > deep)

let test_replay_guard_latency_exposed_on_dependent () =
  let base = (replay [ (trace_of_events [ ev ~dependent:true 1 ], 4) ]).Accel.Replay.makespan in
  let with_lat =
    (replay [ (trace_of_events [ ev ~dependent:true ~latency:2 1 ], 4) ]).Accel.Replay.makespan
  in
  checki "latency added" (base + 2) with_lat

let test_replay_guard_latency_hidden_on_streaming () =
  let events = List.init 16 (fun _ -> ev 1) in
  let base = (replay [ (trace_of_events events, 16) ]).Accel.Replay.makespan in
  let events_l = List.init 16 (fun _ -> ev ~latency:2 1) in
  let with_lat = (replay [ (trace_of_events events_l, 16) ]).Accel.Replay.makespan in
  checki "only the tail shows" (base + 2) with_lat

let test_replay_contention () =
  let stream () = trace_of_events (List.init 16 (fun _ -> ev 1)) in
  let one = (replay [ (stream (), 16) ]).Accel.Replay.makespan in
  let two = replay [ (stream (), 16); (stream (), 16) ] in
  checkb "two instances take longer" true (two.Accel.Replay.makespan > one);
  checki "beats add up" 32 two.Accel.Replay.bus_beats;
  (* The shared bus serializes beats: makespan at least total beats. *)
  checkb "bus is the floor" true (two.Accel.Replay.makespan >= 32)

let test_replay_posted_writes () =
  let events = List.init 8 (fun _ -> ev ~kind:Guard.Iface.Write 1) in
  let r = replay [ (trace_of_events events, 1) ] in
  (* Writes are posted: even with outstanding=1 they stream back to back. *)
  checki "write stream" (8 * (ap + 1)) r.Accel.Replay.makespan

let prop_replay_makespan_bounds =
  QCheck.Test.make ~count:100 ~name:"makespan >= max(total beats, chain length)"
    QCheck.(small_list (pair bool (int_range 1 4)))
    (fun spec ->
      let events = List.map (fun (dep, beats) -> ev ~dependent:dep beats) spec in
      let total_beats = List.fold_left (fun a e -> a + e.Accel.Trace.beats) 0 events in
      let r = replay [ (trace_of_events events, 2) ] in
      r.Accel.Replay.makespan >= total_beats
      && r.Accel.Replay.bus_beats = total_beats)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_replay_makespan_bounds ]

(* ---- get/iter vs the events snapshot ---- *)

let test_trace_access_parity () =
  let evs = List.init 9 (fun i -> ev ~dependent:(i mod 3 = 0) (1 + (i mod 4))) in
  let t = trace_of_events evs in
  let snapshot = Accel.Trace.events t in
  checki "length" (List.length evs) (Accel.Trace.length t);
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) "get matches snapshot" true (Accel.Trace.get t i = e))
    snapshot;
  let collected = ref [] in
  Accel.Trace.iter (fun e -> collected := e :: !collected) t;
  Alcotest.(check bool) "iter matches snapshot in order" true
    (List.rev !collected = Array.to_list snapshot);
  Alcotest.(check bool) "get bounds checked" true
    (try
       ignore (Accel.Trace.get t (Accel.Trace.length t));
       false
     with Invalid_argument _ -> true)

let test_trace_snapshot_is_stable () =
  (* [events] is a copy: growing the trace afterwards must not change it. *)
  let t = trace_of_events [ ev 2; ev 3 ] in
  let snapshot = Accel.Trace.events t in
  Accel.Trace.add t (ev 4);
  checki "snapshot keeps its length" 2 (Array.length snapshot);
  checki "trace grew" 3 (Accel.Trace.length t);
  Alcotest.(check bool) "new event visible via get" true
    (Accel.Trace.get t 2 = ev 4)

let suite =
  [
    ("burst merge contiguous", `Quick, test_burst_merge_contiguous);
    ("burst max length", `Quick, test_burst_respects_max);
    ("burst packs small elements", `Quick, test_burst_small_elements_share_beats);
    ("no merge on gap", `Quick, test_no_merge_on_gap);
    ("no merge on kind", `Quick, test_no_merge_on_kind_change);
    ("no merge noncontiguous", `Quick, test_no_merge_noncontiguous);
    ("no merge dependent", `Quick, test_no_merge_dependent);
    ("engine functional", `Quick, test_engine_functional);
    ("engine counts checks", `Quick, test_engine_checks_counted);
    ("engine denial aborts", `Quick, test_engine_denial_aborts);
    ("engine bus error", `Quick, test_engine_bus_error_out_of_dram);
    ("engine tag discipline", `Quick, test_engine_tag_discipline);
    ("replay empty", `Quick, test_replay_empty);
    ("replay single read", `Quick, test_replay_single_read);
    ("replay dependent chain", `Quick, test_replay_dependent_chain);
    ("replay streaming pipelines", `Quick, test_replay_streaming_pipelines);
    ("replay outstanding throttles", `Quick, test_replay_outstanding_limit_throttles);
    ("replay latency on dependent", `Quick, test_replay_guard_latency_exposed_on_dependent);
    ("replay latency hidden streaming", `Quick, test_replay_guard_latency_hidden_on_streaming);
    ("replay contention", `Quick, test_replay_contention);
    ("replay posted writes", `Quick, test_replay_posted_writes);
    ("trace get/iter parity", `Quick, test_trace_access_parity);
    ("trace snapshot stable", `Quick, test_trace_snapshot_is_stable);
  ]
  @ qsuite
