(* lib/fault: deterministic fault injection with driver retry/backoff.

   The two load-bearing properties:

   1. No silent corruption: under ANY fault plan, a run either completes
      [correct = true] (degraded tasks are recomputed and re-verified on the
      CPU, with an explicit fallback record) — never a silently wrong number.
   2. Bit-identity of the no-fault path: a run under [Fault.Plan.none] is
      exactly a run without fault plumbing, and the shared inert injector is
      never mutated.

   Plus full determinism: the same (plan, workload) always produces the same
   faults, the same result record and the same exported trace. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let find = Machsuite.Registry.find

(* A plan that only fires one fault class, with certainty. *)
let only ?(seed = 1) f = f { Fault.Plan.none with Fault.Plan.seed }

(* ---- Plan / injector basics ---- *)

let test_plan_none_inert () =
  checkb "none is none" true (Fault.Plan.is_none Fault.Plan.none);
  checkb "default is active" false (Fault.Plan.is_none (Fault.Plan.default ~seed:1));
  let inj = Fault.Injector.create Fault.Plan.none in
  checkb "inert injector inactive" false (Fault.Injector.active inj);
  for _ = 1 to 50 do
    checki "no stall" 0 (Fault.Injector.bus_stall inj);
    checkb "no bus error" false (Fault.Injector.bus_error inj);
    checkb "no guard denial" false (Fault.Injector.guard_denial inj);
    checkb "no table full" false (Fault.Injector.table_full inj);
    checkb "no cache drop" false (Fault.Injector.cache_drop inj);
    checkb "no alloc fail" false (Fault.Injector.alloc_fail inj)
  done;
  checkb "counts stay zero" true
    (Fault.Injector.counts inj = Fault.Injector.zero_counts)

let test_none_singleton_never_mutated () =
  (* The shared default injector must survive recovery bookkeeping calls
     from any driver without accumulating state. *)
  Fault.Injector.note_retry Fault.Injector.none ~backoff:448;
  Fault.Injector.note_fallback Fault.Injector.none;
  checkb "none singleton untouched" true
    (Fault.Injector.counts Fault.Injector.none = Fault.Injector.zero_counts)

let probe_sequence inj n =
  List.init n (fun _ ->
      ( Fault.Injector.bus_stall inj,
        Fault.Injector.bus_error inj,
        Fault.Injector.guard_denial inj,
        Fault.Injector.table_full inj,
        Fault.Injector.cache_drop inj,
        Fault.Injector.alloc_fail inj ))

let test_injector_deterministic () =
  let plan = Fault.Plan.default ~seed:7 in
  let a = Fault.Injector.create plan and b = Fault.Injector.create plan in
  checkb "same plan, same probe stream" true
    (probe_sequence a 300 = probe_sequence b 300);
  checkb "counts agree too" true
    (Fault.Injector.counts a = Fault.Injector.counts b);
  let c = Fault.Injector.create (Fault.Plan.default ~seed:8) in
  checkb "different seed differs" true
    (probe_sequence (Fault.Injector.create plan) 300 <> probe_sequence c 300)

let test_fault_classes_independent () =
  (* Each class draws from its own RNG split: disabling the bus-error class
     must not perturb the guard-denial sequence. *)
  let base = Fault.Plan.default ~seed:5 in
  let a = Fault.Injector.create base in
  let b = Fault.Injector.create { base with Fault.Plan.bus_error_prob = 0.0 } in
  let draw inj =
    List.init 200 (fun _ ->
        ignore (Fault.Injector.bus_error inj);
        Fault.Injector.guard_denial inj)
  in
  checkb "guard stream unperturbed" true (draw a = draw b)

(* ---- Differential: Plan.none is bit-identical to no plan at all ---- *)

let test_plan_none_differential () =
  List.iter
    (fun config ->
      List.iter
        (fun name ->
          let bench = find name in
          let plain = Soc.Run.run ~tasks:4 config bench in
          let with_none =
            Soc.Run.run ~tasks:4 ~faults:Fault.Plan.none config bench
          in
          if plain <> with_none then
            Alcotest.failf "%s on %s: Plan.none changed the result" name
              plain.Soc.Run.config_label;
          checkb "zero counts" true
            (plain.Soc.Run.faults = Fault.Injector.zero_counts))
        [ "aes"; "gemm_blocked" ])
    [ Soc.Config.ccpu_accel; Soc.Config.ccpu_caccel;
      Soc.Config.ccpu_caccel_cached ]

let test_plan_none_differential_mixed () =
  let benches = [ find "aes"; find "fft_transpose" ] in
  let plain = Soc.Run.run_mixed Soc.Config.ccpu_caccel benches in
  let with_none =
    Soc.Run.run_mixed ~faults:Fault.Plan.none Soc.Config.ccpu_caccel benches
  in
  checkb "mixed Plan.none identical" true (plain = with_none)

(* ---- The core invariant: no silent corruption, ever ---- *)

let check_invariant name (r : Soc.Run.result) =
  if not r.Soc.Run.correct then
    Alcotest.failf "%s: incorrect result under faults (fallbacks %d)" name
      (List.length r.Soc.Run.fallbacks);
  checki (name ^ " fallback counter consistent")
    (List.length r.Soc.Run.fallbacks) r.Soc.Run.faults.Fault.Injector.fallbacks;
  checki (name ^ " wall = sum of phases") r.Soc.Run.wall
    (Soc.Run.wall_of r.Soc.Run.phases)

let test_no_silent_corruption_property () =
  List.iter
    (fun name ->
      let bench = find name in
      List.iter
        (fun seed ->
          let faults = Fault.Plan.default ~seed in
          let r = Soc.Run.run ~tasks:4 ~faults Soc.Config.ccpu_caccel bench in
          check_invariant (Printf.sprintf "%s/seed%d" name seed) r)
        [ 1; 2; 3; 4; 5 ])
    [ "aes"; "fft_transpose"; "sort_radix" ];
  (* The cached-checker config additionally exercises the cache-drop layer. *)
  let r =
    Soc.Run.run ~tasks:4 ~faults:(Fault.Plan.default ~seed:2)
      Soc.Config.ccpu_caccel_cached (find "aes")
  in
  check_invariant "aes/cached/seed2" r

let test_faulted_run_deterministic () =
  let faults = Fault.Plan.default ~seed:3 in
  let capture () =
    let obs = Obs.Trace.create () in
    let r =
      Soc.Run.run ~tasks:4 ~obs ~faults Soc.Config.ccpu_caccel
        (find "fft_transpose")
    in
    (r, Obs.Export.to_chrome_string obs)
  in
  let r1, t1 = capture () and r2, t2 = capture () in
  checkb "identical result" true (r1 = r2);
  Alcotest.(check string) "identical trace" t1 t2

let test_faulted_tracing_changes_nothing () =
  (* The observability contract holds under faults too: a recording sink
     must not change any simulated number. *)
  let faults = Fault.Plan.default ~seed:4 in
  let plain =
    Soc.Run.run ~tasks:4 ~faults Soc.Config.ccpu_caccel (find "fft_transpose")
  in
  let obs = Obs.Trace.create () in
  let traced =
    Soc.Run.run ~tasks:4 ~obs ~faults Soc.Config.ccpu_caccel
      (find "fft_transpose")
  in
  checkb "result identical under tracing" true (plain = traced)

(* ---- Layer-by-layer: certainty plans isolate each injection site ---- *)

let test_alloc_fail_exhaustion () =
  let faults = only (fun p -> { p with Fault.Plan.alloc_fail_prob = 1.0 }) in
  let r = Soc.Run.run ~tasks:2 ~faults Soc.Config.ccpu_caccel (find "aes") in
  check_invariant "alloc exhaustion" r;
  checki "every task degrades" 2 (List.length r.Soc.Run.fallbacks);
  checki "no task recovers" 0 r.Soc.Run.recovered;
  let c = r.Soc.Run.faults in
  checki "4 attempts per task" 8 c.Fault.Injector.alloc_fails;
  checki "3 retries per task" 6 c.Fault.Injector.retries;
  checki "full backoff schedule per task" (2 * 448)
    c.Fault.Injector.backoff_cycles;
  List.iteri
    (fun i (f : Soc.Run.fallback) ->
      checki "submission order" i f.Soc.Run.task;
      checkb "reason mentions allocation" true
        (String.length f.Soc.Run.reason > 0))
    r.Soc.Run.fallbacks

let test_guard_denial_exhaustion () =
  let faults = only (fun p -> { p with Fault.Plan.guard_denial_prob = 1.0 }) in
  let r = Soc.Run.run ~tasks:2 ~faults Soc.Config.ccpu_caccel (find "aes") in
  check_invariant "guard exhaustion" r;
  checki "every task degrades" 2 (List.length r.Soc.Run.fallbacks);
  checkb "denials were injected" true
    (r.Soc.Run.faults.Fault.Injector.guard_denials > 0)

let test_table_full_exhaustion () =
  let faults = only (fun p -> { p with Fault.Plan.table_full_prob = 1.0 }) in
  let r = Soc.Run.run ~tasks:2 ~faults Soc.Config.ccpu_caccel (find "aes") in
  check_invariant "table-full exhaustion" r;
  checki "every task degrades" 2 (List.length r.Soc.Run.fallbacks);
  checkb "installs were forced full" true
    (r.Soc.Run.faults.Fault.Injector.table_fulls > 0)

let test_bus_error_exhaustion () =
  let faults = only (fun p -> { p with Fault.Plan.bus_error_prob = 1.0 }) in
  let r = Soc.Run.run ~tasks:2 ~faults Soc.Config.ccpu_caccel (find "aes") in
  check_invariant "bus-error exhaustion" r;
  checki "every task degrades" 2 (List.length r.Soc.Run.fallbacks);
  checkb "errors were injected" true
    (r.Soc.Run.faults.Fault.Injector.bus_errors > 0)

let test_bus_stalls_only_cost_time () =
  (* A memory-bound kernel, so stalled completions cannot hide behind
     compute overlap. *)
  let bench = find "md_knn" in
  let faults =
    only (fun p ->
        { p with Fault.Plan.bus_stall_prob = 1.0; Fault.Plan.bus_stall_max = 16 })
  in
  let clean = Soc.Run.run ~tasks:2 Soc.Config.ccpu_caccel bench in
  let r = Soc.Run.run ~tasks:2 ~faults Soc.Config.ccpu_caccel bench in
  check_invariant "stalls" r;
  checkb "no fallback needed" true (r.Soc.Run.fallbacks = []);
  checki "no retries needed" 0 r.Soc.Run.faults.Fault.Injector.retries;
  checkb "stalls recorded" true (r.Soc.Run.faults.Fault.Injector.bus_stalls > 0);
  checkb "stalls cost wall time" true (r.Soc.Run.wall > clean.Soc.Run.wall)

let test_cache_drops_only_cost_time () =
  let faults = only (fun p -> { p with Fault.Plan.cache_drop_prob = 1.0 }) in
  let clean = Soc.Run.run ~tasks:2 Soc.Config.ccpu_caccel_cached (find "aes") in
  let r =
    Soc.Run.run ~tasks:2 ~faults Soc.Config.ccpu_caccel_cached (find "aes")
  in
  check_invariant "cache drops" r;
  checkb "no fallback needed" true (r.Soc.Run.fallbacks = []);
  checkb "drops recorded" true (r.Soc.Run.faults.Fault.Injector.cache_drops > 0);
  checkb "drops cost wall time" true (r.Soc.Run.wall >= clean.Soc.Run.wall)

(* ---- Driver retry with exponential backoff (unit level) ---- *)

let test_driver_retry_exhausts () =
  let faults = only (fun p -> { p with Fault.Plan.alloc_fail_prob = 1.0 }) in
  let sys = Soc.System.create ~faults Soc.Config.ccpu_caccel in
  let d = Option.get sys.Soc.System.driver in
  (match Driver.allocate_with_retry d (find "aes").Machsuite.Bench_def.kernel with
  | Ok _ -> Alcotest.fail "allocation succeeded under certain failure"
  | Error _ -> ());
  let c = Fault.Injector.counts sys.Soc.System.faults in
  checki "one probe per attempt" 4 c.Fault.Injector.alloc_fails;
  checki "retries = attempts - 1" 3 c.Fault.Injector.retries;
  checki "backoff 64+128+256" 448 c.Fault.Injector.backoff_cycles

let test_driver_retry_clean_path () =
  let sys = Soc.System.create Soc.Config.ccpu_caccel in
  let d = Option.get sys.Soc.System.driver in
  (match Driver.allocate_with_retry d (find "aes").Machsuite.Bench_def.kernel with
  | Ok (_, retries) -> checki "no retries without faults" 0 retries
  | Error e -> Alcotest.failf "clean allocation failed: %s" e);
  checkb "no counters move" true
    (Fault.Injector.counts sys.Soc.System.faults = Fault.Injector.zero_counts)

let test_backoff_schedule () =
  let p = Driver.default_retry_policy in
  checki "first backoff" 64 (Driver.backoff_cycles p ~attempt:1);
  checki "second doubles" 128 (Driver.backoff_cycles p ~attempt:2);
  checki "third doubles again" 256 (Driver.backoff_cycles p ~attempt:3)

let test_custom_retry_policy () =
  (* A single-attempt policy degrades immediately — no retries charged. *)
  let faults = only (fun p -> { p with Fault.Plan.alloc_fail_prob = 1.0 }) in
  let retry =
    { Driver.max_attempts = 1; backoff_base = 64; backoff_factor = 2 }
  in
  let r =
    Soc.Run.run ~tasks:2 ~faults ~retry Soc.Config.ccpu_caccel (find "aes")
  in
  check_invariant "single-attempt policy" r;
  checki "immediate degradation" 2 (List.length r.Soc.Run.fallbacks);
  checki "no retries" 0 r.Soc.Run.faults.Fault.Injector.retries;
  checki "no backoff" 0 r.Soc.Run.faults.Fault.Injector.backoff_cycles

(* ---- Events: the fault story is visible in the trace ---- *)

let test_fault_events_traced () =
  let faults = only (fun p -> { p with Fault.Plan.alloc_fail_prob = 1.0 }) in
  let obs = Obs.Trace.create () in
  let r =
    Soc.Run.run ~tasks:2 ~obs ~faults Soc.Config.ccpu_caccel (find "aes")
  in
  check_invariant "traced faulted run" r;
  let injected = ref 0 and retries = ref 0 and fallbacks = ref 0 in
  Obs.Trace.iter
    (fun e ->
      match e.Obs.Event.data with
      | Obs.Event.Fault_injected _ -> incr injected
      | Obs.Event.Task_retry _ -> incr retries
      | Obs.Event.Task_fallback _ -> incr fallbacks
      | _ -> ())
    obs;
  checki "every injection traced" r.Soc.Run.faults.Fault.Injector.alloc_fails
    !injected;
  checki "every retry traced" r.Soc.Run.faults.Fault.Injector.retries !retries;
  checki "every fallback traced" (List.length r.Soc.Run.fallbacks) !fallbacks

(* ---- Mixed systems under faults ---- *)

let test_mixed_faulted_invariant () =
  let benches = [ find "aes"; find "fft_transpose"; find "sort_radix" ] in
  List.iter
    (fun seed ->
      let faults = Fault.Plan.default ~seed in
      let r = Soc.Run.run_mixed ~faults Soc.Config.ccpu_caccel benches in
      checki "one task per bench" 3 r.Soc.Run.tasks;
      check_invariant (Printf.sprintf "mixed/seed%d" seed) r)
    [ 1; 2; 3 ]

let suite =
  [
    ("Plan.none is inert", `Quick, test_plan_none_inert);
    ("none singleton never mutated", `Quick, test_none_singleton_never_mutated);
    ("injector deterministic", `Quick, test_injector_deterministic);
    ("fault classes independent", `Quick, test_fault_classes_independent);
    ("Plan.none differential (bit-identical)", `Slow, test_plan_none_differential);
    ("Plan.none differential (mixed)", `Slow, test_plan_none_differential_mixed);
    ("no silent corruption (3 benches x 5 seeds)", `Slow,
     test_no_silent_corruption_property);
    ("faulted run deterministic (result + trace)", `Slow,
     test_faulted_run_deterministic);
    ("tracing changes nothing under faults", `Slow,
     test_faulted_tracing_changes_nothing);
    ("alloc-fail exhaustion degrades all", `Quick, test_alloc_fail_exhaustion);
    ("guard-denial exhaustion degrades all", `Quick, test_guard_denial_exhaustion);
    ("table-full exhaustion degrades all", `Quick, test_table_full_exhaustion);
    ("bus-error exhaustion degrades all", `Quick, test_bus_error_exhaustion);
    ("bus stalls only cost time", `Quick, test_bus_stalls_only_cost_time);
    ("cache drops only cost time", `Quick, test_cache_drops_only_cost_time);
    ("driver retry exhausts", `Quick, test_driver_retry_exhausts);
    ("driver retry clean path", `Quick, test_driver_retry_clean_path);
    ("backoff schedule", `Quick, test_backoff_schedule);
    ("single-attempt policy", `Quick, test_custom_retry_policy);
    ("fault events traced", `Quick, test_fault_events_traced);
    ("mixed systems under faults", `Slow, test_mixed_faulted_invariant);
  ]
