(* lib/serve: the multi-tenant service mode.

   Covers the subsystem's contract: the seeded workload is deterministic,
   admission invariants hold over a full run (in-flight bounds, bookkeeping
   conservation), tenant compartments are isolated in the checker table and
   torn down with nothing dangling (the 1000-tenant churn regression), the
   report never raises on zero-request tenants, and the report is
   byte-identical across --jobs values. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Small, fast parameter sets: the mix is restricted to the two cheapest
   kernels so profiling (cached process-wide after the first test) stays a
   fraction of a second. *)
let small_mix = [ ("aes", 2); ("kmp", 1) ]

let params ?(tenants = 30) ?(requests = 300) ?(seed = 11) ?(churn = 20)
    ?(cc_entries = 256) () =
  let base = Serve.Loop.default_params ~seed ~tenants ~requests () in
  {
    base with
    Serve.Loop.sv_cc_entries = cc_entries;
    sv_check_invariants = true;
    sv_workload =
      {
        base.Serve.Loop.sv_workload with
        Serve.Workload.churn_pct = churn;
        mix = small_mix;
      };
  }

(* -- workload ------------------------------------------------------- *)

let wl_params seed =
  {
    Serve.Workload.tenants = 40;
    requests = 500;
    seed;
    mean_gap = 1000;
    ramp = 20_000;
    churn_pct = 30;
    mix = small_mix;
    scales = Serve.Workload.default_scales;
  }

let test_workload_deterministic () =
  let a = Serve.Workload.generate (wl_params 7) in
  let b = Serve.Workload.generate (wl_params 7) in
  checkb "same seed, same schedule" true (a = b);
  let c = Serve.Workload.generate (wl_params 8) in
  checkb "different seed, different schedule" false (a = c)

let test_workload_structure () =
  let p = wl_params 7 in
  let evs = Serve.Workload.generate p in
  let sorted =
    List.for_all2
      (fun a b ->
        a.Serve.Workload.at < b.Serve.Workload.at
        || (a.at = b.at
           && Serve.Workload.ev_rank a.ev <= Serve.Workload.ev_rank b.ev))
      (List.filteri (fun i _ -> i < List.length evs - 1) evs)
      (List.tl evs)
  in
  checkb "sorted by (cycle, rank)" true sorted;
  let count f = List.length (List.filter f evs) in
  checki "one arrival per tenant" p.Serve.Workload.tenants
    (count (fun e ->
         match e.Serve.Workload.ev with
         | Serve.Workload.Tenant_arrive _ -> true
         | _ -> false));
  checki "all requests present" p.Serve.Workload.requests
    (count (fun e ->
         match e.Serve.Workload.ev with
         | Serve.Workload.Request _ -> true
         | _ -> false));
  List.iter
    (fun { Serve.Workload.ev; _ } ->
      match ev with
      | Serve.Workload.Request { tenant; scale; bench; _ } ->
          checkb "tenant in range" true
            (tenant >= 0 && tenant < p.Serve.Workload.tenants);
          checkb "scale from the scale set" true
            (List.mem_assoc scale p.Serve.Workload.scales);
          checkb "bench from the mix" true (List.mem_assoc bench small_mix)
      | _ -> ())
    evs

(* -- admission ------------------------------------------------------ *)

let test_admission_decide () =
  let policy =
    { Serve.Admission.max_inflight = 2; watermark_pct = 90; spill_depth = 4 }
  in
  let reg = Serve.Tenant.make_registry ~tenants:1 ~instances:8 in
  let tn = reg.(0) in
  let decide ~live =
    Serve.Admission.decide policy ~table_live:live ~capacity:100 tn
  in
  checkb "pending tenant is Gone" true (decide ~live:0 = Error Serve.Admission.Gone);
  tn.Serve.Tenant.state <- Serve.Tenant.Active;
  checkb "active tenant admitted" true (decide ~live:0 = Ok ());
  tn.Serve.Tenant.inflight <- 2;
  checkb "at the in-flight bound" true
    (decide ~live:0 = Error Serve.Admission.Inflight);
  tn.Serve.Tenant.inflight <- 0;
  checkb "at the watermark" true
    (decide ~live:90 = Error Serve.Admission.Table);
  checkb "below the watermark" true (decide ~live:89 = Ok ());
  tn.Serve.Tenant.state <- Serve.Tenant.Departed;
  checkb "departed tenant is Gone" true
    (decide ~live:0 = Error Serve.Admission.Gone)

(* -- full-run invariants -------------------------------------------- *)

(* The loop itself asserts isolation and occupancy invariants as it runs
   (sv_check_invariants); this test layers the bookkeeping conservation laws
   over the report. *)
let test_run_invariants () =
  let p = params () in
  let r = Serve.Loop.run p in
  let tt = r.Serve.Report.rp_totals in
  checki "every request accounted" tt.Serve.Report.t_requests
    (tt.Serve.Report.t_admitted + tt.Serve.Report.t_rejected_gone
    + tt.Serve.Report.t_rejected_inflight + tt.Serve.Report.t_rejected_table);
  checki "every admission resolves" tt.Serve.Report.t_admitted
    (tt.Serve.Report.t_completed + tt.Serve.Report.t_cancelled);
  checkb "some requests completed" true (tt.Serve.Report.t_completed > 0);
  checki "per-tenant rows cover every tenant" p.Serve.Loop.sv_workload.Serve.Workload.tenants
    (List.length r.Serve.Report.rp_rows);
  let sum f = List.fold_left (fun acc row -> acc + f row) 0 r.Serve.Report.rp_rows in
  checki "rows sum to admitted" tt.Serve.Report.t_admitted
    (sum (fun row -> row.Serve.Report.tr_admitted));
  checki "rows sum to completed" tt.Serve.Report.t_completed
    (sum (fun row -> row.Serve.Report.tr_completed));
  checki "rows sum to cancelled" tt.Serve.Report.t_cancelled
    (sum (fun row -> row.Serve.Report.tr_cancelled));
  checki "table drained at end" 0 r.Serve.Report.rp_table.Capchecker.Table.st_live;
  checkb "table saw real pressure" true
    (r.Serve.Report.rp_table.Capchecker.Table.st_installs > 0)

let test_inflight_bound () =
  let p = params ~tenants:6 ~requests:400 () in
  (* A tight bound plus invariant checking inside the loop: the loop itself
     fails if a tenant ever exceeds max_inflight. *)
  let p =
    { p with Serve.Loop.sv_policy = { p.Serve.Loop.sv_policy with Serve.Admission.max_inflight = 2 } }
  in
  let r = Serve.Loop.run p in
  checkb "bound generated rejections" true
    (r.Serve.Report.rp_totals.Serve.Report.t_rejected_inflight > 0)

(* -- tenant teardown / churn regression ------------------------------ *)

(* Churn 1000 tenants through a 256-entry table: departures roll back driver
   allocations and revoke compartment roots in one step, so the live-entry
   count must return to zero (asserted inside the loop at every teardown and
   again, via the report, here). *)
let test_churn_1000_tenants_live_zero () =
  let p = params ~tenants:1000 ~requests:2000 ~seed:5 ~churn:60 () in
  let r = Serve.Loop.run p in
  let tt = r.Serve.Report.rp_totals in
  checki "live entries back to zero" 0
    r.Serve.Report.rp_table.Capchecker.Table.st_live;
  checkb "churn happened" true (tt.Serve.Report.t_departed > 400);
  checkb "compartments thrashed" true (tt.Serve.Report.t_root_evictions > 0);
  checki "install/evict balance" r.Serve.Report.rp_table.Capchecker.Table.st_installs
    r.Serve.Report.rp_table.Capchecker.Table.st_evictions

(* Zero-request tenants produce a documented all-zero latency row, not an
   Invalid_argument from an empty percentile sample. *)
let test_zero_request_row () =
  let p = params ~tenants:300 ~requests:20 () in
  let r = Serve.Loop.run p in
  let zero_rows =
    List.filter
      (fun row -> row.Serve.Report.tr_completed = 0)
      r.Serve.Report.rp_rows
  in
  checkb "plenty of idle tenants" true (List.length zero_rows > 200);
  List.iter
    (fun row ->
      checki "idle p50 is 0" 0 row.Serve.Report.tr_p50;
      checki "idle p99 is 0" 0 row.Serve.Report.tr_p99;
      checki "idle max is 0" 0 row.Serve.Report.tr_max)
    zero_rows

(* -- determinism ----------------------------------------------------- *)

let test_repeat_seed_byte_identical () =
  let a = Serve.Report.to_string (Serve.Loop.run (params ())) in
  let b = Serve.Report.to_string (Serve.Loop.run (params ())) in
  checkb "repeat run byte-identical" true (String.equal a b);
  let c = Serve.Report.to_string (Serve.Loop.run (params ~seed:12 ())) in
  checkb "different seed differs" false (String.equal a c)

let test_jobs_parity () =
  let serial = Serve.Report.to_string (Serve.Loop.run (params ())) in
  List.iter
    (fun jobs ->
      let p = { (params ()) with Serve.Loop.sv_jobs = jobs } in
      let par = Serve.Report.to_string (Serve.Loop.run p) in
      checkb
        (Printf.sprintf "jobs:%d byte-identical to serial" jobs)
        true (String.equal serial par))
    [ 2; 4 ]

(* -- satellite units -------------------------------------------------- *)

let test_percentile_int () =
  let xs = [ 5; 1; 9; 3; 7 ] in
  checki "p50 nearest-rank" 5 (Ccsim.Stats.percentile_int 0.5 xs);
  checki "p99 is the max here" 9 (Ccsim.Stats.percentile_int 0.99 xs);
  checki "p0 clamps to min" 1 (Ccsim.Stats.percentile_int 0.0 xs);
  (match Ccsim.Stats.percentile_int_opt 0.5 [] with
  | None -> ()
  | Some _ -> Alcotest.fail "empty sample must be None");
  checkb "raising variant raises" true
    (try
       ignore (Ccsim.Stats.percentile_int 0.5 []);
       false
     with Invalid_argument _ -> true)

let test_table_stats_counters () =
  let t = Capchecker.Table.create ~entries:2 in
  let cap = Cheri.Cap.root in
  let untagged = Cheri.Cap.clear_tag cap in
  ignore (Capchecker.Table.install t ~task:0 ~obj:0 cap);
  ignore (Capchecker.Table.install t ~task:0 ~obj:1 cap);
  let s = Capchecker.Table.stats t in
  checki "installs" 2 s.Capchecker.Table.st_installs;
  checki "live" 2 s.Capchecker.Table.st_live;
  checki "peak" 2 s.Capchecker.Table.st_peak;
  (* replace does not change occupancy *)
  ignore (Capchecker.Table.install t ~task:0 ~obj:1 cap);
  let s = Capchecker.Table.stats t in
  checki "replace counts as install" 3 s.Capchecker.Table.st_installs;
  checki "replace keeps live" 2 s.Capchecker.Table.st_live;
  (* full table -> conflict; untagged -> rejected *)
  ignore (Capchecker.Table.install t ~task:1 ~obj:0 cap);
  ignore (Capchecker.Table.install t ~task:1 ~obj:1 untagged);
  let s = Capchecker.Table.stats t in
  checki "conflict counted" 1 s.Capchecker.Table.st_conflicts;
  checki "untagged rejection counted" 1 s.Capchecker.Table.st_rejected;
  (* evictions, and the O(1) gauge agrees with a slot scan *)
  ignore (Capchecker.Table.evict t ~task:0 ~obj:0);
  ignore (Capchecker.Table.evict_task t ~task:0);
  let s = Capchecker.Table.stats t in
  checki "evictions" 2 s.Capchecker.Table.st_evictions;
  checki "live drained" 0 s.Capchecker.Table.st_live;
  let scan = ref 0 in
  Capchecker.Table.iter_live t (fun _ -> incr scan);
  checki "gauge matches slot scan" !scan (Capchecker.Table.live_count t);
  checki "peak survives drain" 2 s.Capchecker.Table.st_peak

let test_observe_table_metrics () =
  let checker = Capchecker.Checker.create ~entries:4 Capchecker.Checker.Fine in
  ignore (Capchecker.Checker.install checker ~task:1 ~obj:0 Cheri.Cap.root);
  ignore (Capchecker.Checker.install checker ~task:1 ~obj:1 Cheri.Cap.root);
  ignore (Capchecker.Checker.evict checker ~task:1 ~obj:0);
  let m = Obs.Metrics.create () in
  Capchecker.Checker.observe_table checker ~into:m;
  checki "installs surfaced" 2 (Obs.Metrics.get m "checker.table_installs");
  checki "evictions surfaced" 1 (Obs.Metrics.get m "checker.table_evictions");
  checki "live surfaced" 1 (Obs.Metrics.get m "checker.table_live");
  checki "peak surfaced" 2 (Obs.Metrics.get m "checker.table_peak")

let suite =
  [
    Alcotest.test_case "workload: same seed same schedule" `Quick
      test_workload_deterministic;
    Alcotest.test_case "workload: structure and ranges" `Quick
      test_workload_structure;
    Alcotest.test_case "admission: decision table" `Quick test_admission_decide;
    Alcotest.test_case "run: bookkeeping conservation" `Quick
      test_run_invariants;
    Alcotest.test_case "run: in-flight bound enforced" `Quick
      test_inflight_bound;
    Alcotest.test_case "churn: 1000 tenants, live back to zero" `Quick
      test_churn_1000_tenants_live_zero;
    Alcotest.test_case "report: zero-request tenants" `Quick
      test_zero_request_row;
    Alcotest.test_case "determinism: repeat seed" `Quick
      test_repeat_seed_byte_identical;
    Alcotest.test_case "determinism: jobs parity" `Quick test_jobs_parity;
    Alcotest.test_case "stats: integer percentiles" `Quick test_percentile_int;
    Alcotest.test_case "table: pressure counters" `Quick
      test_table_stats_counters;
    Alcotest.test_case "checker: observe_table" `Quick
      test_observe_table_metrics;
  ]
