(* Deterministic discrete-event scheduler, and the differential contract
   between the event-driven engine and the legacy trace-then-replay oracle. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---- scheduler core ---- *)

let test_ordering () =
  let s = Ccsim.Sched.create () in
  let log = ref [] in
  let mark tag () = log := tag :: !log in
  Ccsim.Sched.at s ~cycle:5 (mark "c5");
  Ccsim.Sched.at s ~cycle:1 (mark "c1");
  Ccsim.Sched.at s ~cycle:3 (mark "c3");
  Ccsim.Sched.run s;
  Alcotest.(check (list string)) "cycle order" [ "c1"; "c3"; "c5" ] (List.rev !log);
  checki "clock at last event" 5 (Ccsim.Sched.now s)

let test_stable_ties () =
  let s = Ccsim.Sched.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Ccsim.Sched.at s ~cycle:2 (fun () -> log := i :: !log)
  done;
  Ccsim.Sched.run s;
  Alcotest.(check (list int))
    "same-cycle events run in scheduling order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_rank_orders_within_cycle () =
  let s = Ccsim.Sched.create () in
  let log = ref [] in
  Ccsim.Sched.at s ~cycle:4 ~rank:Ccsim.Sched.rank_arbitrate (fun () ->
      log := "arbitrate" :: !log);
  Ccsim.Sched.at s ~cycle:4 (fun () -> log := "request" :: !log);
  Ccsim.Sched.run s;
  Alcotest.(check (list string))
    "arbitration after same-cycle requests despite insertion order"
    [ "request"; "arbitrate" ]
    (List.rev !log)

let test_past_cycle_clamped () =
  let s = Ccsim.Sched.create () in
  let ran_at = ref (-1) in
  Ccsim.Sched.at s ~cycle:10 (fun () ->
      Ccsim.Sched.at s ~cycle:3 (fun () -> ran_at := Ccsim.Sched.now s));
  Ccsim.Sched.run s;
  checki "event for a past cycle runs now, not backwards" 10 !ran_at

let test_on_advance_monotone () =
  let cycles = ref [] in
  let s = Ccsim.Sched.create ~on_advance:(fun c -> cycles := c :: !cycles) () in
  Ccsim.Sched.at s ~cycle:2 ignore;
  Ccsim.Sched.at s ~cycle:2 ignore;
  Ccsim.Sched.at s ~cycle:7 ignore;
  Ccsim.Sched.run s;
  Alcotest.(check (list int))
    "one callback per distinct cycle, increasing" [ 2; 7 ] (List.rev !cycles)

let test_process_wait () =
  let s = Ccsim.Sched.create () in
  let log = ref [] in
  Ccsim.Sched.spawn s ~at:1 (fun () ->
      log := ("a", Ccsim.Sched.now s) :: !log;
      Ccsim.Sched.wait s 4;
      log := ("b", Ccsim.Sched.now s) :: !log;
      Ccsim.Sched.wait s 0;
      log := ("c", Ccsim.Sched.now s) :: !log;
      Ccsim.Sched.wait_until s ~cycle:3;
      log := ("d", Ccsim.Sched.now s) :: !log);
  Ccsim.Sched.run s;
  Alcotest.(check (list (pair string int)))
    "waits advance the process, no-ops don't"
    [ ("a", 1); ("b", 5); ("c", 5); ("d", 5) ]
    (List.rev !log)

let test_process_suspend_resume () =
  let s = Ccsim.Sched.create () in
  let resume_slot = ref None in
  let finished_at = ref (-1) in
  Ccsim.Sched.spawn s ~at:0 (fun () ->
      Ccsim.Sched.suspend s (fun resume -> resume_slot := Some resume);
      finished_at := Ccsim.Sched.now s);
  Ccsim.Sched.at s ~cycle:9 (fun () -> (Option.get !resume_slot) ());
  Ccsim.Sched.run s;
  checki "resumed at the resuming event's cycle" 9 !finished_at

let test_interleaving () =
  let s = Ccsim.Sched.create () in
  let log = ref [] in
  let proc name period =
    Ccsim.Sched.spawn s ~at:0 (fun () ->
        for _ = 1 to 3 do
          Ccsim.Sched.wait s period;
          log := (name, Ccsim.Sched.now s) :: !log
        done)
  in
  proc "fast" 2;
  proc "slow" 3;
  Ccsim.Sched.run s;
  Alcotest.(check (list (pair string int)))
    "two processes interleave deterministically"
    (* Both hit cycle 6; "slow" scheduled its resumption first (at cycle 3,
       vs. cycle 4), so the stable tie-break runs it first. *)
    [ ("fast", 2); ("slow", 3); ("fast", 4); ("slow", 6); ("fast", 6);
      ("slow", 9) ]
    (List.rev !log)

(* ---- differential: event engine vs. trace-then-replay oracle ---- *)

let denial_pair (d : Guard.Iface.denial) = (d.Guard.Iface.code, d.Guard.Iface.detail)

(* With one instance there is no contention, so the two timing cores must
   agree exactly: same wall clock, same phase split, same check and access
   accounting, same denial set. *)
let check_single_equivalence config_name config (bench : Machsuite.Bench_def.t) =
  let legacy = Soc.Run.run ~tasks:1 ~engine:Soc.Run.Legacy_replay config bench in
  let event = Soc.Run.run ~tasks:1 ~engine:Soc.Run.Event_driven config bench in
  let ctx field = Printf.sprintf "%s/%s: %s" bench.name config_name field in
  checki (ctx "wall") legacy.Soc.Run.wall event.Soc.Run.wall;
  checki (ctx "alloc") legacy.Soc.Run.phases.Soc.Run.alloc
    event.Soc.Run.phases.Soc.Run.alloc;
  checki (ctx "init") legacy.Soc.Run.phases.Soc.Run.init
    event.Soc.Run.phases.Soc.Run.init;
  checki (ctx "compute") legacy.Soc.Run.phases.Soc.Run.compute
    event.Soc.Run.phases.Soc.Run.compute;
  checki (ctx "teardown") legacy.Soc.Run.phases.Soc.Run.teardown
    event.Soc.Run.phases.Soc.Run.teardown;
  checki (ctx "checks") legacy.Soc.Run.checks event.Soc.Run.checks;
  checki (ctx "elided checks") legacy.Soc.Run.elided_checks
    event.Soc.Run.elided_checks;
  checki (ctx "bus beats") legacy.Soc.Run.bus_beats event.Soc.Run.bus_beats;
  checki (ctx "entries peak") legacy.Soc.Run.entries_peak
    event.Soc.Run.entries_peak;
  checkb (ctx "correct") legacy.Soc.Run.correct event.Soc.Run.correct;
  Alcotest.(check (list (pair string string)))
    (ctx "denials")
    (List.map denial_pair legacy.Soc.Run.denials)
    (List.map denial_pair event.Soc.Run.denials)

let test_differential_all_benches () =
  List.iter
    (check_single_equivalence "ccpu+caccel" Soc.Config.ccpu_caccel)
    Machsuite.Registry.all

let test_differential_other_configs () =
  (* The contract is engine-independent of the protection scheme: spot-check
     unguarded, coarse and cached configurations (distinct addressing modes
     and checker latencies). *)
  let benches =
    [ Machsuite.Registry.find "aes"; Machsuite.Registry.find "spmv_crs" ]
  in
  List.iter
    (fun bench ->
      check_single_equivalence "ccpu+accel" Soc.Config.ccpu_accel bench;
      check_single_equivalence "coarse" Soc.Config.ccpu_caccel_coarse bench;
      check_single_equivalence "cached" Soc.Config.ccpu_caccel_cached bench)
    benches

let mixed_combo () =
  List.map Machsuite.Registry.find [ "aes"; "spmv_crs"; "stencil2d"; "sort_merge" ]

let test_mixed_event_makespan_bounded () =
  (* Under contention round-robin arbitration can only help relative to the
     replay's global earliest-ready FIFO; functional results and check
     accounting must not change. *)
  let benches = mixed_combo () in
  let legacy =
    Soc.Run.run_mixed ~engine:Soc.Run.Legacy_replay Soc.Config.ccpu_caccel benches
  in
  let event =
    Soc.Run.run_mixed ~engine:Soc.Run.Event_driven Soc.Config.ccpu_caccel benches
  in
  checkb "both correct" true (legacy.Soc.Run.correct && event.Soc.Run.correct);
  checki "same checks" legacy.Soc.Run.checks event.Soc.Run.checks;
  checki "same bus beats" legacy.Soc.Run.bus_beats event.Soc.Run.bus_beats;
  checkb
    (Printf.sprintf "event makespan (%d) <= replay makespan (%d)"
       event.Soc.Run.phases.Soc.Run.compute legacy.Soc.Run.phases.Soc.Run.compute)
    true
    (event.Soc.Run.phases.Soc.Run.compute
    <= legacy.Soc.Run.phases.Soc.Run.compute)

let test_homogeneous_event_makespan_bounded () =
  let bench = Machsuite.Registry.find "gemm_ncubed" in
  let legacy =
    Soc.Run.run ~tasks:4 ~engine:Soc.Run.Legacy_replay Soc.Config.ccpu_caccel bench
  in
  let event =
    Soc.Run.run ~tasks:4 ~engine:Soc.Run.Event_driven Soc.Config.ccpu_caccel bench
  in
  checkb "both correct" true (legacy.Soc.Run.correct && event.Soc.Run.correct);
  checki "same checks" legacy.Soc.Run.checks event.Soc.Run.checks;
  checkb "event makespan <= replay makespan" true
    (event.Soc.Run.phases.Soc.Run.compute
    <= legacy.Soc.Run.phases.Soc.Run.compute)

let test_event_mode_deterministic () =
  let go () =
    let r =
      Soc.Run.run_mixed ~engine:Soc.Run.Event_driven Soc.Config.ccpu_caccel
        (mixed_combo ())
    in
    (r.Soc.Run.wall, r.Soc.Run.phases.Soc.Run.compute, r.Soc.Run.checks,
     r.Soc.Run.bus_beats, r.Soc.Run.correct)
  in
  let a = go () and b = go () in
  checkb "two event-mode runs are identical" true (a = b)

(* ---- interconnect topologies at run level ---- *)

let test_topology_shared_is_identity () =
  (* --topology shared must be byte-for-byte the plain event engine: same
     result record on a contended run, under both checker placements'
     default (central). *)
  let bench = Machsuite.Registry.find "aes" in
  let base =
    Soc.Run.run ~tasks:4 ~engine:Soc.Run.Event_driven Soc.Config.ccpu_caccel
      bench
  in
  let shared =
    Soc.Run.run ~tasks:4 ~engine:Soc.Run.Event_driven
      ~topology:Bus.Topology.Shared Soc.Config.ccpu_caccel bench
  in
  checkb "shared topology is the identity" true (base = shared)

let test_topology_verdict_parity () =
  (* Topology and checker placement shape latency, never adjudication: every
     combination must agree on correctness, check counts, denials, beats and
     peak table occupancy. *)
  let bench = Machsuite.Registry.find "spmv_crs" in
  let base =
    Soc.Run.run ~tasks:4 ~engine:Soc.Run.Event_driven Soc.Config.ccpu_caccel
      bench
  in
  List.iter
    (fun (topology, checkers) ->
      let r =
        Soc.Run.run ~tasks:4 ~engine:Soc.Run.Event_driven ~topology ~checkers
          Soc.Config.ccpu_caccel bench
      in
      let name =
        Printf.sprintf "%s/%s"
          (Bus.Topology.kind_to_string topology)
          (Capchecker.Shim.checking_to_string checkers)
      in
      checkb (name ^ ": correct") true r.Soc.Run.correct;
      checki (name ^ ": checks") base.Soc.Run.checks r.Soc.Run.checks;
      checki (name ^ ": bus beats") base.Soc.Run.bus_beats r.Soc.Run.bus_beats;
      checki (name ^ ": entries peak") base.Soc.Run.entries_peak
        r.Soc.Run.entries_peak;
      Alcotest.(check (list (pair string string)))
        (name ^ ": denials")
        (List.map denial_pair base.Soc.Run.denials)
        (List.map denial_pair r.Soc.Run.denials))
    [ (Bus.Topology.Shared, Capchecker.Shim.Distributed);
      (Bus.Topology.Crossbar { banks = 4 }, Capchecker.Shim.Central);
      (Bus.Topology.Crossbar { banks = 4 }, Capchecker.Shim.Distributed);
      (Bus.Topology.Hierarchical { clusters = 4 }, Capchecker.Shim.Central);
      (Bus.Topology.Hierarchical { clusters = 4 }, Capchecker.Shim.Distributed) ]

let test_topology_runs_deterministic () =
  (* Concurrent topologies stay deterministic: repeat runs are identical. *)
  let bench = Machsuite.Registry.find "aes" in
  List.iter
    (fun topology ->
      let go () =
        Soc.Run.run ~tasks:4 ~engine:Soc.Run.Event_driven ~topology
          ~checkers:Capchecker.Shim.Distributed Soc.Config.ccpu_caccel bench
      in
      checkb
        (Bus.Topology.kind_to_string topology ^ ": repeat run identical")
        true
        (go () = go ()))
    [ Bus.Topology.Crossbar { banks = 4 };
      Bus.Topology.Hierarchical { clusters = 4 } ]

let test_topology_requires_event_engine () =
  let bench = Machsuite.Registry.find "aes" in
  let rejects f =
    match f () with
    | exception Invalid_argument _ -> true
    | (_ : Soc.Run.result) -> false
  in
  checkb "replay + crossbar rejected" true
    (rejects (fun () ->
         Soc.Run.run ~tasks:1 ~engine:Soc.Run.Legacy_replay
           ~topology:(Bus.Topology.Crossbar { banks = 4 })
           Soc.Config.ccpu_caccel bench));
  (* Distributed checkers alone are engine-agnostic. *)
  let r =
    Soc.Run.run ~tasks:1 ~engine:Soc.Run.Legacy_replay
      ~checkers:Capchecker.Shim.Distributed Soc.Config.ccpu_caccel bench
  in
  checkb "replay + shim checkers allowed and correct" true r.Soc.Run.correct

let test_event_mode_faulted_invariant () =
  (* Faulted runs switch only the contention core; the recovery invariant
     (correct, or an explicit fallback per lost task) must hold in both, and
     the event core must be deterministic under a fixed seed. *)
  let bench = Machsuite.Registry.find "aes" in
  let go () =
    Soc.Run.run ~tasks:4 ~faults:(Fault.Plan.default ~seed:3)
      ~engine:Soc.Run.Event_driven Soc.Config.ccpu_caccel bench
  in
  let r1 = go () and r2 = go () in
  checkb "invariant: correct (fallbacks recomputed on CPU)" true
    r1.Soc.Run.correct;
  checkb "seeded event-mode fault run reproduces" true
    (r1.Soc.Run.wall = r2.Soc.Run.wall
    && r1.Soc.Run.faults = r2.Soc.Run.faults
    && List.length r1.Soc.Run.fallbacks = List.length r2.Soc.Run.fallbacks)

let suite =
  [
    ("event ordering", `Quick, test_ordering);
    ("stable ties", `Quick, test_stable_ties);
    ("rank within cycle", `Quick, test_rank_orders_within_cycle);
    ("past cycle clamped", `Quick, test_past_cycle_clamped);
    ("on_advance monotone", `Quick, test_on_advance_monotone);
    ("process wait", `Quick, test_process_wait);
    ("process suspend/resume", `Quick, test_process_suspend_resume);
    ("process interleaving", `Quick, test_interleaving);
    ("differential: all benches single-instance", `Slow,
     test_differential_all_benches);
    ("differential: other configs", `Quick, test_differential_other_configs);
    ("mixed: event makespan bounded by replay", `Quick,
     test_mixed_event_makespan_bounded);
    ("homogeneous: event makespan bounded", `Quick,
     test_homogeneous_event_makespan_bounded);
    ("event mode deterministic", `Quick, test_event_mode_deterministic);
    ("topology: shared is the identity", `Quick, test_topology_shared_is_identity);
    ("topology: verdict parity", `Quick, test_topology_verdict_parity);
    ("topology: deterministic", `Quick, test_topology_runs_deterministic);
    ("topology: replay engine rejected", `Quick,
     test_topology_requires_event_engine);
    ("faulted event mode: invariant + determinism", `Quick,
     test_event_mode_faulted_invariant);
  ]
