(* lib/hls synthesis memoization: a cache hit must be structurally identical
   to fresh synthesis, distinct (kernel, directives) keys must miss
   independently, and the cache must be safe to hammer from several domains
   at once (it is shared across Ccsim.Pool jobs). *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let bench name = Machsuite.Registry.find name

let test_hit_equals_fresh () =
  Hls.Directives.cache_clear ();
  List.iter
    (fun (b : Machsuite.Bench_def.t) ->
      let fresh = Hls.Directives.synthesize_uncached ~kernel:b.kernel b.directives in
      let first = Hls.Directives.synthesize ~kernel:b.kernel b.directives in
      let hit = Hls.Directives.synthesize ~kernel:b.kernel b.directives in
      checkb (b.name ^ ": first call = fresh") true (first = fresh);
      checkb (b.name ^ ": cache hit = fresh") true (hit = fresh))
    Machsuite.Registry.all

let test_stats_account_hits_and_misses () =
  Hls.Directives.cache_clear ();
  let b = bench "aes" in
  checki "cleared" 0 (fst (Hls.Directives.cache_stats ()) + snd (Hls.Directives.cache_stats ()));
  ignore (Hls.Directives.synthesize ~kernel:b.kernel b.directives);
  let h1, m1 = Hls.Directives.cache_stats () in
  checki "first call misses" 1 m1;
  checki "no hit yet" 0 h1;
  ignore (Hls.Directives.synthesize ~kernel:b.kernel b.directives);
  ignore (Hls.Directives.synthesize ~kernel:b.kernel b.directives);
  let h2, m2 = Hls.Directives.cache_stats () in
  checki "still one miss" 1 m2;
  checki "two hits" 2 h2

let test_distinct_directives_distinct_entries () =
  Hls.Directives.cache_clear ();
  let b = bench "aes" in
  let deeper =
    { b.directives with Hls.Directives.max_outstanding = b.directives.Hls.Directives.max_outstanding + 1 }
  in
  let d1 = Hls.Directives.synthesize ~kernel:b.kernel b.directives in
  let d2 = Hls.Directives.synthesize ~kernel:b.kernel deeper in
  let _, misses = Hls.Directives.cache_stats () in
  checki "two distinct keys, two misses" 2 misses;
  checkb "designs differ" true (d1 <> d2);
  checki "outstanding carried through" (b.directives.Hls.Directives.max_outstanding + 1)
    d2.Hls.Directives.d_max_outstanding

let test_design_reflects_kernel () =
  let b = bench "aes" in
  let d = Hls.Directives.synthesize_uncached ~kernel:b.kernel b.directives in
  checki "one port per heap buffer" (List.length b.kernel.Kernel.Ir.bufs) d.Hls.Directives.d_ports;
  checki "scratch mems counted" (List.length b.kernel.Kernel.Ir.scratch) d.Hls.Directives.d_scratch_mems;
  checkb "datapath has ops" true (d.Hls.Directives.d_static_ops > 0);
  checkb "kernels have loops" true (d.Hls.Directives.d_loop_depth >= 1);
  checkb "buffers have bytes" true (d.Hls.Directives.d_buffer_bytes > 0);
  checki "area passes through" b.directives.Hls.Directives.area_luts d.Hls.Directives.d_area_luts

let test_cache_domain_safety () =
  (* Hammer the shared cache from four domains over all benchmarks; every
     returned design must equal the uncached oracle. *)
  Hls.Directives.cache_clear ();
  let benches = Array.of_list Machsuite.Registry.all in
  let n = Array.length benches in
  let results =
    Ccsim.Pool.run ~jobs:4 (4 * n) (fun i ->
        let b = benches.(i mod n) in
        Hls.Directives.synthesize ~kernel:b.kernel b.directives)
  in
  Array.iteri
    (fun i d ->
      let b = benches.(i mod n) in
      checkb (b.name ^ ": concurrent hit = fresh") true
        (d = Hls.Directives.synthesize_uncached ~kernel:b.kernel b.directives))
    results;
  let hits, misses = Hls.Directives.cache_stats () in
  checki "every lookup accounted" (4 * n) (hits + misses);
  checki "exactly one miss per key (lookup+insert is atomic)" n misses

let suite =
  [
    ("cache hit equals fresh synthesis", `Quick, test_hit_equals_fresh);
    ("hit/miss accounting", `Quick, test_stats_account_hits_and_misses);
    ("distinct directives, distinct entries", `Quick, test_distinct_directives_distinct_entries);
    ("design reflects kernel IR", `Quick, test_design_reflects_kernel);
    ("cache is domain-safe", `Quick, test_cache_domain_safety);
  ]
