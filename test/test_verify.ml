(* The bounded-exhaustive verifier verifying itself: the exhaustive run at
   the acceptance bound is clean, every seeded checker mutation is caught
   with a minimized replayable counterexample, replay tokens round-trip,
   and DPOR pruning is cross-checked against brute-force enumeration. *)

module M = Verify.Model
module H = Verify.Harness
module X = Verify.Explore
module S = Verify.Space
module E = Verify.Engine

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let shim_opts = { E.default_opts with E.v_checkers = Capchecker.Shim.Distributed }

(* ---------------- the acceptance bound, clean ---------------- *)

(* >= 2 accelerators, >= 3 objects, revocation + elision + fault injection
   in the scenario cross product, distributed shims: the real system must
   come out clean, and the interesting races must actually have been
   exercised (pruning fired, shim invalidations raced refills). *)
let test_exhaustive_clean () =
  let r = E.run shim_opts in
  checkb "verdict ok" true (E.ok r);
  checkb "no counterexample" true (r.E.r_counterexample = None);
  checkb "phase-1 sweep clean" true (r.E.r_sweep.S.sw_failure = None);
  checkb "phase-1 covered the encoding space" true (r.E.r_sweep.S.sw_caps > 1000);
  checki "scenario count matches the dimension formula"
    (8 * int_of_float (3. ** float_of_int (shim_opts.E.v_accels * shim_opts.E.v_objs)))
    r.E.r_scenarios;
  checkb "interleavings explored" true (r.E.r_schedules > r.E.r_scenarios);
  checkb "DPOR pruning fired" true (r.E.r_pruned > 0);
  checkb "revocation raced a shim refill" true (r.E.r_invalidations > 0)

let test_central_parity_clean () =
  let r = E.run { shim_opts with E.v_checkers = Capchecker.Shim.Central } in
  checkb "central placement also clean" true (E.ok r);
  checki "no shims, no invalidations" 0 r.E.r_invalidations

(* ---------------- mutations are caught ---------------- *)

(* Which property each seeded bug must trip.  skip-revoke surfaces as
   ghost-exn: the lost epoch bump leaves a departed task's denial-marked
   entry live in the table, which the slot-hygiene property catches first
   (see DESIGN.md, "Verification mode"). *)
let expected_prop = [
  (M.M_ghost_exn, H.p_ghost);
  (M.M_wide_bounds, H.p_oob_grant);
  (M.M_skip_revoke, H.p_ghost);
  (M.M_elide_unproven, H.p_elide);
]

let catch_mutation (mut, prop) () =
  let r = E.run { shim_opts with E.v_mutation = mut } in
  checkb "mutation detected" true (not (E.ok r));
  match r.E.r_counterexample with
  | None -> Alcotest.fail "no counterexample for a seeded bug"
  | Some cx ->
      checks "violated property" prop cx.E.cx_violation.H.v_prop;
      checkb "trace is minimized" true (List.length cx.E.cx_trace <= 6);
      checkb "trace ends at the violating step" true
        (List.length cx.E.cx_trace = cx.E.cx_violation.H.v_step + 1);
      (* the token is a self-contained deterministic reproduction *)
      (match E.replay cx.E.cx_token with
      | Error e -> Alcotest.fail ("replay failed: " ^ e)
      | Ok (_, None) -> Alcotest.fail "replay did not reproduce"
      | Ok (trace, Some cx') ->
          checks "replay reproduces the property" prop
            cx'.E.cx_violation.H.v_prop;
          checki "replay trace length" (List.length cx.E.cx_trace)
            (List.length trace));
      (* minimality: the violation needs its full schedule — chopping the
         final step off must make it vanish *)
      let sc, sched = match M.of_token cx.E.cx_token with
        | Ok p -> p
        | Error e -> Alcotest.fail ("token does not parse back: " ^ e)
      in
      let shorter = List.filteri (fun i _ -> i < List.length sched - 1) sched in
      let still =
        match H.violation (X.run_schedule
          (* dropping a schedule position needs its op dropped too *)
          (let last = List.nth sched (List.length sched - 1) in
           let progs = Array.copy sc.M.sc_programs in
           progs.(last) <-
             List.filteri
               (fun i _ -> i < List.length progs.(last) - 1)
               progs.(last);
           { sc with M.sc_programs = progs })
          shorter)
        with
        | Some v -> v.H.v_prop = prop
        | None -> false
      in
      checkb "1-minimal at the tail" false still

(* ---------------- replay token round-trip ---------------- *)

let seq_schedule sc =
  List.concat
    (List.init
       (Array.length sc.M.sc_programs)
       (fun s -> List.map (fun _ -> s) sc.M.sc_programs.(s)))

let small_dims = {
  S.d_accels = 2; d_objs = 2; d_obj_len = 8; d_depth = 2;
  d_topology = Bus.Topology.Shared;
  d_checkers = Capchecker.Shim.Distributed;
  d_mutation = M.M_none;
}

let test_token_roundtrip () =
  let n = ref 0 in
  Seq.iteri
    (fun i sc ->
      if i mod 29 = 0 then begin
        incr n;
        let sched = seq_schedule sc in
        match M.of_token (M.token_of sc sched) with
        | Ok (sc', sched') ->
            checkb "scenario round-trips" true (sc = sc');
            checkb "schedule round-trips" true (sched = sched')
        | Error e -> Alcotest.fail ("round-trip failed: " ^ e)
      end)
    (S.scenarios small_dims);
  checkb "sampled enough scenarios" true (!n > 10)

let test_token_rejects_garbage () =
  let bad t = match M.of_token t with Ok _ -> false | Error _ -> true in
  checkb "empty" true (bad "");
  checkb "wrong version" true (bad "v0|mode=fine");
  checkb "truncated" true (bad "v1|mode=fine|chk=shim");
  (* a valid token with a tampered (infeasible) schedule must not parse *)
  let sc =
    match S.scenarios small_dims () with
    | Seq.Cons (sc, _) -> sc
    | Seq.Nil -> assert false
  in
  let tok = M.token_of sc (seq_schedule sc) in
  let tampered = tok ^ ",0,0,0,0,0,0,0,0" in
  checkb "infeasible schedule rejected" true (bad tampered)

(* ---------------- DPOR soundness ---------------- *)

(* Brute-force enumeration with pruning disabled: the reduced exploration
   must reach a violation exactly when the full one does. *)
let explore_no_prune sc =
  let progs = Array.map Array.of_list sc.M.sc_programs in
  let n = M.sources sc in
  let total = Array.fold_left (fun a p -> a + Array.length p) 0 progs in
  let idx = Array.make n 0 in
  let rev_sched = ref [] in
  let viol = ref None in
  let rec dfs pos =
    if !viol <> None then ()
    else if pos = total then begin
      match H.violation (X.run_schedule sc (List.rev !rev_sched)) with
      | Some v -> viol := Some v
      | None -> ()
    end
    else
      for s = 0 to n - 1 do
        if !viol = None && idx.(s) < Array.length progs.(s) then begin
          rev_sched := s :: !rev_sched;
          idx.(s) <- idx.(s) + 1;
          dfs (pos + 1);
          idx.(s) <- idx.(s) - 1;
          rev_sched := List.tl !rev_sched
        end
      done
  in
  dfs 0;
  !viol

let dpor_agrees dims ~stride =
  Seq.iteri
    (fun i sc ->
      if i mod stride = 0 then begin
        let reduced = (X.explore sc).X.o_violation in
        let brute = explore_no_prune sc in
        checkb
          (Printf.sprintf "scenario %d: pruned and brute-force agree" i)
          (brute <> None)
          (reduced <> None)
      end)
    (S.scenarios dims)

let test_dpor_sound_clean () = dpor_agrees small_dims ~stride:23

let test_dpor_sound_mutated () =
  dpor_agrees { small_dims with S.d_mutation = M.M_wide_bounds } ~stride:31;
  dpor_agrees { small_dims with S.d_mutation = M.M_ghost_exn } ~stride:31

(* ---------------- the random fallback ---------------- *)

let prop_random_clean =
  QCheck.Test.make ~count:80
    ~name:"random scenarios: the unmutated system holds every property"
    QCheck.(int_bound 0xFF_FFFF)
    (fun seed ->
      let rng = Ccsim.Rng.create seed in
      let sc, sched = S.random_scenario rng small_dims in
      H.violation (X.run_schedule sc sched) = None)

let test_random_suite_deterministic () =
  let run () = E.random_suite shim_opts ~seed:7 ~runs:50 in
  let a = run () and b = run () in
  checki "same seed, same runs" a.E.rr_runs b.E.rr_runs;
  checki "no violations" 0 a.E.rr_violating;
  checkb "deterministic" true (a = b)

(* ---------------- report determinism ---------------- *)

let test_report_deterministic () =
  let render () = E.render_report (E.run shim_opts) in
  checks "byte-identical repeated reports" (render ()) (render ());
  let j () = Obs.Json.to_string (E.json_of_report (E.run shim_opts)) in
  checks "byte-identical repeated json" (j ()) (j ())

let suite =
  [
    ("exhaustive clean at the acceptance bound", `Quick, test_exhaustive_clean);
    ("central placement clean", `Quick, test_central_parity_clean);
  ]
  @ List.map
      (fun ((m, _) as case) ->
        ( "mutation caught: " ^ M.mutation_to_string m,
          `Quick,
          catch_mutation case ))
      expected_prop
  @ [
      ("replay token round-trip", `Quick, test_token_roundtrip);
      ("replay token rejects garbage", `Quick, test_token_rejects_garbage);
      ("DPOR agrees with brute force (clean)", `Quick, test_dpor_sound_clean);
      ("DPOR agrees with brute force (mutated)", `Quick, test_dpor_sound_mutated);
      ("random suite deterministic", `Quick, test_random_suite_deterministic);
      ("report rendering deterministic", `Quick, test_report_deterministic);
      QCheck_alcotest.to_alcotest prop_random_clean;
    ]
