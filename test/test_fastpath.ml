(* The compiled-replay and proof-driven fast paths: every shortcut must be
   invisible.  Compiled replay is pinned cycle-identical to the interpretive
   scheduler (including under fault injection, where the RNG draw order must
   line up request for request), and the soc-level fast paths are pinned
   result-identical with fast-pathing on vs off. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let bus = Bus.Params.default

(* ---------------- replay: compiled == interpretive ---------------- *)

(* Random traces exercise burst/gap/dependence mixes the kernels never emit;
   the compiled scheduler must match the interpretive one on all of them. *)

let arb_event =
  QCheck.Gen.(
    let* gap = oneof [ return 0; int_bound 6; int_bound 60 ] in
    let* beats = int_range 1 (bus.Bus.Params.max_burst + 2) in
    let* k = int_bound 3 in
    let kind, dependent =
      match k with
      | 0 | 1 -> (Guard.Iface.Read, false)  (* bias toward streaming reads *)
      | 2 -> (Guard.Iface.Read, true)
      | _ -> (Guard.Iface.Write, false)
    in
    let* latency = int_bound 3 in
    return { Accel.Trace.gap; kind; beats; dependent; latency })

let arb_trace =
  QCheck.Gen.(
    let* n = int_bound 80 in
    let* evs = list_size (return n) arb_event in
    let t = Accel.Trace.create () in
    List.iter (Accel.Trace.add t) evs;
    return t)

let arb_streams =
  QCheck.Gen.(
    let* n_streams = int_range 1 4 in
    list_size (return n_streams)
      (let* trace = arb_trace in
       let* max_outstanding = int_range 1 4 in
       return { Accel.Replay.instance = 0; trace; max_outstanding }))
  |> QCheck.Gen.map
       (List.mapi (fun i s -> { s with Accel.Replay.instance = i }))

let result_eq (a : Accel.Replay.result) (b : Accel.Replay.result) =
  a.Accel.Replay.makespan = b.Accel.Replay.makespan
  && a.Accel.Replay.per_instance = b.Accel.Replay.per_instance
  && a.Accel.Replay.bus_beats = b.Accel.Replay.bus_beats
  && a.Accel.Replay.bus_errors = b.Accel.Replay.bus_errors
  && a.Accel.Replay.failed = b.Accel.Replay.failed

let compiled_of streams =
  List.map
    (fun s ->
      { Accel.Replay.cinstance = s.Accel.Replay.instance;
        ctrace =
          Accel.Trace.Compiled.compile ~bus
            ~max_outstanding:s.Accel.Replay.max_outstanding
            s.Accel.Replay.trace })
    streams

let replay_both ?faults ~start streams =
  let fabric () =
    match faults with
    | None -> Bus.Fabric.create bus
    | Some plan -> Bus.Fabric.create ~faults:(Fault.Injector.create plan) bus
  in
  let interp = Accel.Replay.run (fabric ()) ~start streams in
  let compiled =
    Accel.Replay.run_compiled (fabric ()) ~start (compiled_of streams)
  in
  (interp, compiled)

let test_compiled_matches_interpretive () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300 ~name:"compiled replay == interpretive"
       (QCheck.make arb_streams) (fun streams ->
         let interp, compiled = replay_both ~start:17 streams in
         result_eq interp compiled))

let test_compiled_matches_under_faults () =
  (* With faults active the fabric is not quiescent: no jumps, but the two
     schedulers must still issue identical request sequences and therefore
     consume identical RNG draws. *)
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:150 ~name:"compiled replay == interpretive (faults)"
       (QCheck.make (QCheck.Gen.pair arb_streams (QCheck.Gen.int_bound 1000)))
       (fun (streams, seed) ->
         let faults = Fault.Plan.default ~seed in
         let interp, compiled = replay_both ~faults ~start:3 streams in
         result_eq interp compiled))

let test_solo_stream_jumps () =
  (* A single stream on a fresh quiescent fabric replays in one jump from
     index 0 — and still lands on the interpretive cycle counts. *)
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"solo compiled replay is one jump"
       (QCheck.make arb_trace) (fun trace ->
         let streams =
           [ { Accel.Replay.instance = 0; trace; max_outstanding = 2 } ]
         in
         Obs.Counters.reset ();
         let interp, compiled = replay_both ~start:5 streams in
         result_eq interp compiled
         && (Accel.Trace.length trace = 0
            || Obs.Counters.get Obs.Counters.segments_replayed = 1)))

(* ---------------- soc: fast == interpretive ---------------- *)

let with_mode m f =
  let prev = Soc.Fastpath.current_mode () in
  Soc.Fastpath.set_mode m;
  Fun.protect ~finally:(fun () -> Soc.Fastpath.set_mode prev) f

let soc_result_eq name (a : Soc.Run.result) (b : Soc.Run.result) =
  Alcotest.(check bool) (name ^ ": fast == interpretive") true (a = b)

(* Every kernel, both hetero configs, legacy engine: a cold fast run (records
   the script), a warm fast run at a different task count (derives from it,
   dodging the whole-run memo), and the interpretive ground truth must agree
   on the complete result record. *)
let test_soc_fast_matches_legacy () =
  Soc.Fastpath.clear ();
  List.iter
    (fun bench ->
      List.iter
        (fun config ->
          let go mode tasks =
            with_mode mode (fun () -> Soc.Run.run ~tasks config bench)
          in
          let cold = go Soc.Fastpath.Fast 2 in
          let slow = go Soc.Fastpath.Interpretive 2 in
          soc_result_eq (bench.Machsuite.Bench_def.name ^ " cold") cold slow;
          let warm = go Soc.Fastpath.Fast 3 in
          let slow3 = go Soc.Fastpath.Interpretive 3 in
          soc_result_eq (bench.Machsuite.Bench_def.name ^ " warm") warm slow3)
        [ Soc.Config.ccpu_accel; Soc.Config.ccpu_caccel ])
    (Machsuite.Registry.all)

(* CPU-only runs hit the cached model cycles on the warm run. *)
let test_soc_fast_matches_cpu () =
  Soc.Fastpath.clear ();
  List.iter
    (fun bench ->
      let go mode tasks =
        with_mode mode (fun () -> Soc.Run.run ~tasks Soc.Config.cpu bench)
      in
      let cold = go Soc.Fastpath.Fast 1 in
      soc_result_eq "cpu cold" cold (go Soc.Fastpath.Interpretive 1);
      soc_result_eq "cpu warm" (go Soc.Fastpath.Fast 4)
        (go Soc.Fastpath.Interpretive 4))
    (Machsuite.Registry.all)

(* Event engine, shared and crossbar topologies, plus mixed compositions:
   script-driven streams must land on the interpretive results. *)
let test_soc_fast_matches_event () =
  Soc.Fastpath.clear ();
  let benches =
    List.filteri (fun i _ -> i mod 4 = 0) (Machsuite.Registry.all)
  in
  List.iter
    (fun bench ->
      List.iter
        (fun topology ->
          let go mode tasks =
            with_mode mode (fun () ->
                Soc.Run.run ~tasks ~engine:Soc.Run.Event_driven ~topology
                  Soc.Config.ccpu_caccel bench)
          in
          soc_result_eq "event cold" (go Soc.Fastpath.Fast 2)
            (go Soc.Fastpath.Interpretive 2);
          soc_result_eq "event warm" (go Soc.Fastpath.Fast 3)
            (go Soc.Fastpath.Interpretive 3))
        [ Bus.Topology.Shared;
          Bus.Topology.Crossbar { banks = Bus.Topology.default_banks } ])
    benches;
  (* Mixed composition with a repeated bench: recorder claims deduplicate. *)
  match Machsuite.Registry.all with
  | b0 :: b1 :: _ ->
      let mix = [ b0; b1; b0 ] in
      List.iter
        (fun engine ->
          let go mode =
            with_mode mode (fun () ->
                Soc.Run.run_mixed ~engine Soc.Config.ccpu_caccel mix)
          in
          Soc.Fastpath.clear ();
          soc_result_eq "mixed cold" (go Soc.Fastpath.Fast)
            (go Soc.Fastpath.Interpretive);
          soc_result_eq "mixed warm" (go Soc.Fastpath.Fast)
            (go Soc.Fastpath.Interpretive))
        [ Soc.Run.Legacy_replay; Soc.Run.Event_driven ]
  | _ -> Alcotest.fail "registry empty"

(* Elision interplay: fast paths under Elide_on and Elide_differential must
   not disturb verdicts or counts. *)
let test_soc_fast_matches_elide () =
  Soc.Fastpath.clear ();
  let bench = Machsuite.Registry.find "gemm_ncubed" in
  List.iter
    (fun elide ->
      let go mode =
        with_mode mode (fun () ->
            Soc.Run.run ~tasks:2 ~elide Soc.Config.ccpu_caccel bench)
      in
      soc_result_eq "elide cold" (go Soc.Fastpath.Fast)
        (go Soc.Fastpath.Interpretive);
      soc_result_eq "elide warm" (go Soc.Fastpath.Fast)
        (go Soc.Fastpath.Interpretive))
    [ Soc.Run.Elide_on; Soc.Run.Elide_differential ]

(* Faulted runs must never consult a cache or skip an adjudication: results
   are mode-independent and the memo counters stay flat. *)
let test_soc_faulted_never_fast_pathed () =
  Soc.Fastpath.clear ();
  let bench = List.hd (Machsuite.Registry.all) in
  let faults = Fault.Plan.default ~seed:11 in
  (* Warm every cache first so a faulted run has hits available to (wrongly)
     take. *)
  let _ = Soc.Run.run ~tasks:4 Soc.Config.ccpu_caccel bench in
  let go mode =
    with_mode mode (fun () ->
        Soc.Run.run ~tasks:4 ~faults Soc.Config.ccpu_caccel bench)
  in
  Obs.Counters.reset ();
  let fast = go Soc.Fastpath.Fast in
  checki "no traces memoized under faults" 0
    (Obs.Counters.get Obs.Counters.traces_memoized);
  checki "no runs memoized under faults" 0
    (Obs.Counters.get Obs.Counters.runs_memoized);
  checki "no accesses fast-pathed under faults" 0
    (Obs.Counters.get Obs.Counters.accesses_fast_pathed);
  soc_result_eq "faulted" fast (go Soc.Fastpath.Interpretive);
  (* Repeating the same faulted run must stay deterministic, not memoized. *)
  soc_result_eq "faulted repeat" fast (go Soc.Fastpath.Fast)

(* Differential mode recomputes both legs and faults on divergence; passing
   is the assertion. *)
let test_soc_differential_mode () =
  Soc.Fastpath.clear ();
  let benches =
    List.filteri (fun i _ -> i mod 5 = 0) (Machsuite.Registry.all)
  in
  with_mode Soc.Fastpath.Differential (fun () ->
      List.iter
        (fun bench ->
          List.iter
            (fun engine ->
              let r =
                Soc.Run.run ~tasks:2 ~engine Soc.Config.ccpu_caccel bench
              in
              checkb "differential correct" true r.Soc.Run.correct;
              (* Second call re-compares against a memoized fast leg. *)
              let r2 =
                Soc.Run.run ~tasks:2 ~engine Soc.Config.ccpu_caccel bench
              in
              checkb "differential repeat" true (r = r2))
            [ Soc.Run.Legacy_replay; Soc.Run.Event_driven ])
        benches)

(* The speedup counters actually move: repeated fast runs memoize whole
   results, derived traces and fast-pathed accesses. *)
let test_soc_counters_move () =
  Soc.Fastpath.clear ();
  Obs.Counters.reset ();
  let bench = Machsuite.Registry.find "gemm_ncubed" in
  checkb "gemm proven in bounds" true (Soc.Fastpath.proven bench);
  let _ = Soc.Run.run ~tasks:2 Soc.Config.ccpu_caccel bench in
  checkb "fast-pathed accesses counted" true
    (Obs.Counters.get Obs.Counters.accesses_fast_pathed > 0);
  let _ = Soc.Run.run ~tasks:3 Soc.Config.ccpu_caccel bench in
  checkb "derived trace counted" true
    (Obs.Counters.get Obs.Counters.traces_memoized > 0);
  let _ = Soc.Run.run ~tasks:3 Soc.Config.ccpu_caccel bench in
  checkb "whole run memoized" true
    (Obs.Counters.get Obs.Counters.runs_memoized > 0)

let suite =
  [
    Alcotest.test_case "compiled == interpretive (random traces)" `Quick
      test_compiled_matches_interpretive;
    Alcotest.test_case "compiled == interpretive under faults" `Quick
      test_compiled_matches_under_faults;
    Alcotest.test_case "solo stream fast-forwards in one jump" `Quick
      test_solo_stream_jumps;
    Alcotest.test_case "soc: fast == interpretive (legacy, all kernels)" `Quick
      test_soc_fast_matches_legacy;
    Alcotest.test_case "soc: fast == interpretive (cpu-only)" `Quick
      test_soc_fast_matches_cpu;
    Alcotest.test_case "soc: fast == interpretive (event, mixed)" `Quick
      test_soc_fast_matches_event;
    Alcotest.test_case "soc: fast == interpretive (elision modes)" `Quick
      test_soc_fast_matches_elide;
    Alcotest.test_case "soc: faulted runs never fast-pathed" `Quick
      test_soc_faulted_never_fast_pathed;
    Alcotest.test_case "soc: differential mode passes" `Quick
      test_soc_differential_mode;
    Alcotest.test_case "soc: speedup counters move" `Quick
      test_soc_counters_move;
  ]
