let () =
  Alcotest.run "cheri_capchecker"
    [
      ("sim", Test_sim.suite);
      ("pool", Test_pool.suite);
      ("sched", Test_sched.suite);
      ("cheri", Test_cheri.suite);
      ("tagmem", Test_tagmem.suite);
      ("bus", Test_bus.suite);
      ("kernel", Test_kernel.suite);
      ("memops", Test_memops.suite);
      ("cpu", Test_cpu.suite);
      ("riscv", Test_riscv.suite);
      ("differential", Test_differential.suite);
      ("guard", Test_guard.suite);
      ("capchecker", Test_capchecker.suite);
      ("capchecker-cached", Test_cached.suite);
      ("capchecker-mmio", Test_mmio.suite);
      ("accel", Test_accel.suite);
      ("driver", Test_driver.suite);
      ("revoker", Test_revoker.suite);
      ("machsuite", Test_machsuite.suite);
      ("hls", Test_hls.suite);
      ("soc", Test_soc.suite);
      ("fault", Test_fault.suite);
      ("obs", Test_obs.suite);
      ("security", Test_security.suite);
      ("claims", Test_claims.suite);
      ("analysis", Test_analysis.suite);
      ("serve", Test_serve.suite);
      ("verify", Test_verify.suite);
      ("fastpath", Test_fastpath.suite);
      ("eventff", Test_eventff.suite);
    ]
