(* Differential pinning of the event-engine steady-state fast-forward
   (lib/sim/eventff.ml + the flat drivers and arbiter leap behind it).

   The fast-forward's contract is exactness: `--event-ff on` must be
   byte-identical to single-stepping every event, across every topology,
   checker placement, burst mix and composition.  The QCheck properties
   below re-run the same simulation under both legs with all caches cleared
   in between and compare the complete result records; the directed tests
   pin the service loop and the bounded-exhaustive verifier the same way,
   and assert the leap never engages where it must not (a live fault plan
   or an attached observability sink). *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let with_mode m f =
  let saved = Ccsim.Eventff.current_mode () in
  Ccsim.Eventff.set_mode m;
  Fun.protect ~finally:(fun () -> Ccsim.Eventff.set_mode saved) f

(* Both legs of one simulation, every replay/memo cache cleared in between
   so the second leg cannot be served from the first leg's results. *)
let both_legs f =
  Soc.Fastpath.clear ();
  let off = with_mode Ccsim.Eventff.Off f in
  Soc.Fastpath.clear ();
  let on = with_mode Ccsim.Eventff.On f in
  (off, on)

(* ---- random single-bench runs: topology x checkers x config x size ---- *)

let topologies =
  [
    Bus.Topology.Shared;
    Bus.Topology.Crossbar { banks = 2 };
    Bus.Topology.Crossbar { banks = 4 };
    Bus.Topology.Hierarchical { clusters = 2 };
    Bus.Topology.Hierarchical { clusters = 4 };
  ]

let checkings = [ Capchecker.Shim.Central; Capchecker.Shim.Distributed ]

(* Distinct addressing modes and adjudication paths: Fine ports, Coarse ids
   and the plain-address IOMMU backend all form bursts differently. *)
let configs =
  [
    Soc.Config.ccpu_caccel;
    Soc.Config.ccpu_caccel_coarse;
    Soc.Config.ccpu_accel;
  ]

(* Small kernels with distinct burst mixes: streaming reads, dependent
   chains, writes and copies. *)
let bench_names = [ "kmp"; "stencil2d"; "gemm_ncubed" ]

let case_gen =
  QCheck.Gen.(
    map
      (fun (topo, (ck, (cfg, (bench, (tasks, entries))))) ->
        (topo, ck, cfg, bench, tasks, entries))
      (pair (oneofl topologies)
         (pair (oneofl checkings)
            (pair (oneofl configs)
               (pair (oneofl bench_names)
                  (pair (int_range 1 6) (oneofl [ 64; 512 ])))))))

let case_print (topo, ck, cfg, bench, tasks, entries) =
  Printf.sprintf "%s/%s %s on %s tasks=%d cc_entries=%d"
    (match topo with
    | Bus.Topology.Shared -> "shared"
    | Bus.Topology.Crossbar { banks } -> Printf.sprintf "xbar%d" banks
    | Bus.Topology.Hierarchical { clusters } -> Printf.sprintf "hier%d" clusters)
    (Capchecker.Shim.checking_to_string ck)
    (Soc.Config.label cfg) bench tasks entries

let prop_single_bench_legs_identical =
  QCheck.Test.make ~count:12
    ~name:"event-ff on == off (random topology x checkers x bench)"
    (QCheck.make ~print:case_print case_gen)
    (fun (topology, checkers, config, bench, tasks, cc_entries) ->
      let bench = Machsuite.Registry.find bench in
      let off, on =
        both_legs (fun () ->
            Soc.Run.run ~tasks ~cc_entries ~engine:Soc.Run.Event_driven
              ~topology ~checkers config bench)
      in
      off = on)

(* ---- random mixed compositions ---- *)

let mixed_gen =
  QCheck.Gen.(
    pair (oneofl topologies)
      (pair (oneofl checkings)
         (map
            (fun picks ->
              match picks with
              | [] -> [ "kmp" ]
              | ps -> ps)
            (map
               (fun mask ->
                 List.filteri (fun i _ -> mask land (1 lsl i) <> 0) bench_names)
               (int_range 1 7)))))

let mixed_print (topo, (ck, names)) =
  Printf.sprintf "%s/%s [%s]"
    (match topo with
    | Bus.Topology.Shared -> "shared"
    | Bus.Topology.Crossbar { banks } -> Printf.sprintf "xbar%d" banks
    | Bus.Topology.Hierarchical { clusters } -> Printf.sprintf "hier%d" clusters)
    (Capchecker.Shim.checking_to_string ck)
    (String.concat "," names)

let prop_mixed_legs_identical =
  QCheck.Test.make ~count:8
    ~name:"event-ff on == off (random mixed compositions)"
    (QCheck.make ~print:mixed_print mixed_gen)
    (fun (topology, (checkers, names)) ->
      let benches = List.map Machsuite.Registry.find names in
      let off, on =
        both_legs (fun () ->
            Soc.Run.run_mixed ~engine:Soc.Run.Event_driven ~topology ~checkers
              Soc.Config.ccpu_caccel benches)
      in
      off = on)

(* ---- service loop and verifier parity ---- *)

let test_serve_report_parity () =
  let params =
    Serve.Loop.default_params ~seed:17 ~tenants:48 ~requests:600 ()
  in
  let off, on = both_legs (fun () -> Serve.Loop.run params) in
  checkb "serve report identical across event-ff legs" true (off = on)

let test_verify_parity () =
  let off, on =
    both_legs (fun () ->
        Verify.Engine.render_report (Verify.Engine.run Verify.Engine.default_opts))
  in
  Alcotest.(check string) "verify report identical across event-ff legs" off on

(* ---- the leap must never engage where it cannot be exact ---- *)

let kmp () = Machsuite.Registry.find "kmp"

let test_faulted_runs_never_leap () =
  with_mode Ccsim.Eventff.On (fun () ->
      Soc.Fastpath.clear ();
      Obs.Counters.reset ();
      let r =
        Soc.Run.run ~tasks:6 ~engine:Soc.Run.Event_driven
          ~faults:(Fault.Plan.default ~seed:5) Soc.Config.ccpu_caccel (kmp ())
      in
      checkb "faulted run completed" true (r.Soc.Run.wall > 0);
      checki "faulted runs leap zero periods" 0
        (Obs.Counters.get Obs.Counters.periods_leaped))

let test_observed_runs_never_leap () =
  with_mode Ccsim.Eventff.On (fun () ->
      Soc.Fastpath.clear ();
      Obs.Counters.reset ();
      let obs = Obs.Trace.create ~capacity:(1 lsl 14) () in
      let r =
        Soc.Run.run ~tasks:6 ~engine:Soc.Run.Event_driven ~obs
          Soc.Config.ccpu_caccel (kmp ())
      in
      checkb "observed run completed" true (r.Soc.Run.wall > 0);
      checki "observed runs leap zero periods" 0
        (Obs.Counters.get Obs.Counters.periods_leaped))

let test_diff_mode_passes () =
  with_mode Ccsim.Eventff.Diff (fun () ->
      Soc.Fastpath.clear ();
      let r =
        Soc.Run.run ~tasks:6 ~engine:Soc.Run.Event_driven
          ~topology:(Bus.Topology.Crossbar { banks = 4 })
          Soc.Config.ccpu_caccel (kmp ())
      in
      checkb "diff mode runs both legs without divergence" true
        (r.Soc.Run.wall > 0))

let test_coalescing_counter_moves () =
  with_mode Ccsim.Eventff.On (fun () ->
      Soc.Fastpath.clear ();
      Obs.Counters.reset ();
      ignore
        (Soc.Run.run ~tasks:8 ~engine:Soc.Run.Event_driven
           Soc.Config.ccpu_caccel (kmp ()));
      checkb "contended run coalesces arbitration events" true
        (Obs.Counters.get Obs.Counters.events_coalesced > 0))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_single_bench_legs_identical; prop_mixed_legs_identical ]

let suite =
  [
    ("serve: report parity across legs", `Quick, test_serve_report_parity);
    ("verify: report parity across legs", `Quick, test_verify_parity);
    ("faulted runs leap zero periods", `Quick, test_faulted_runs_never_leap);
    ("observed runs leap zero periods", `Quick, test_observed_runs_never_leap);
    ("diff mode passes", `Quick, test_diff_mode_passes);
    ("coalescing counter moves", `Quick, test_coalescing_counter_moves);
  ]
  @ qsuite
