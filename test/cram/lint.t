The lint subcommand runs the static capability-footprint analysis over
built-in benchmark kernels.  A streaming kernel is proven entirely in
bounds; a pointer-chasing kernel honestly reports its data-dependent
indices as unknown (never a false proof).  Both reports are deterministic.

  $ ../../bin/capsim.exe lint -b gemm_ncubed
  gemm_ncubed: PROVEN
    m1           ro len 4096   reads [0,4095]       writes -              proven
    m2           ro len 4096   reads [0,4095]       writes -              proven
    prod         rw len 4096   reads -              writes [0,4095]       proven
  1/1 kernels proven in bounds

  $ ../../bin/capsim.exe lint -b bfs_bulk
  bfs_bulk: UNKNOWN
    nodes_begin  ro len 256    reads [0,255]        writes -              proven
    nodes_end    ro len 256    reads [0,255]        writes -              proven
    edges        ro len 4096   reads top            writes -              unknown: index of edges[e] is unbounded: top
    level        rw len 256    reads top            writes top            unknown: index of level[dst] is unbounded: top
    level_counts rw len 10     reads -              writes [0,9]          proven
  0/1 kernels proven in bounds

Unknown is not a failure: only a possible violation or a lint error makes
lint exit nonzero, so the full-registry sweep doubles as a CI gate.

  $ ../../bin/capsim.exe lint --all > /dev/null && echo clean
  clean

The exit-code contract (0 = proven or honestly unknown, 1 = a possible
violation), pinned with the built-in demo kernel whose loop runs one
iteration past its buffer:

  $ ../../bin/capsim.exe lint --demo-violation; echo "exit=$?"
  demo-oob: VIOLATION
    out          rw len 8      reads -              writes [0,8]          VIOLATION: write of out[8] (len 8) at out[idx] <- idx
  0/1 kernels proven in bounds
  exit=1
