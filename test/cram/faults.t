The faults subcommand runs one benchmark under a seeded deterministic fault
plan and reports what was injected and how the driver recovered.  The whole
report is deterministic (same seed, same bytes), so this doubles as a pinned
regression test for the retry/backoff accounting.

A seed where every task recovers within the retry budget:

  $ ../../bin/capsim.exe faults -b aes -c ccpu+caccel -t 4 --seed 4
  aes on ccpu+caccel, 4 task(s), fault plan seed=4 bus_stall=0.020(max 16) bus_error=0.005 guard_denial=0.002 table_full=0.020 cache_drop=0.050 alloc_fail=0.080
    wall          11071 cycles (alloc 396, init 96, compute 10355, teardown 224)
    injected  0 bus stalls (+0 cycles), 0 bus errors, 0 guard denials,
              1 table-fulls, 0 cache drops, 0 alloc failures
    recovery  1 retries (64 backoff cycles), 1 task(s) recovered, 0 degraded to CPU
    correct   true
    invariant ok: completed correctly (degraded tasks recomputed on CPU)

A seed where one task exhausts its retries and degrades to CPU execution —
the run still completes correctly because the fallback recomputes it:

  $ ../../bin/capsim.exe faults -b fft_transpose -c ccpu+caccel -t 4 --seed 7
  fft_transpose on ccpu+caccel, 4 task(s), fault plan seed=7 bus_stall=0.020(max 16) bus_error=0.005 guard_denial=0.002 table_full=0.020 cache_drop=0.050 alloc_fail=0.080
    wall          70413 cycles (alloc 2532, init 7680, compute 55737, teardown 4464)
    injected  3 bus stalls (+19 cycles), 0 bus errors, 7 guard denials,
              0 table-fulls, 0 cache drops, 1 alloc failures
    recovery  7 retries (960 backoff cycles), 1 task(s) recovered, 1 degraded to CPU
    fallback  task 2: denied after 4 attempts: injected transient guard denial
    correct   true
    invariant ok: completed correctly (degraded tasks recomputed on CPU)
