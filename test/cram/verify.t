The verify subcommand runs the bounded-exhaustive model checker: phase 1
sweeps the capability-encoding layer against an independently re-derived
semantics, phase 2 enumerates every scenario (grant map x mode x elision x
fault injection) of a small task/object box and every interleaving of the
probe programs (DPOR-pruned) through the differential harness.  The whole
report is a pure function of the options.

The acceptance bound — 2 accelerators, 3 objects, revocation, elision and
fault injection in the cross product, distributed shims — comes out clean.
The nonzero shim-invalidation count is the coverage evidence that revocation
actually raced a shim refill mid-flight:

  $ ../../bin/capsim.exe verify --checkers shim
  phase 1 (encodings): 4504 capabilities, 23904 checks
  phase 2 (scenarios): 5832 scenarios, 110808 schedules (180792 branches pruned), 664848 ops, 27216 shim invalidations
  verified: no counterexample

A seeded checker bug must be caught.  The ghost-exn mutation makes evict
leak the evicted entry's exception bit into the slot's next install — the
slot-reuse hygiene property catches it, and the counterexample is minimized
to three steps with a ready-to-run replay line:

  $ ../../bin/capsim.exe verify --checkers shim --mutate ghost-exn > mutation.out 2>&1; echo "exit=$?"
  exit=1
  $ cat mutation.out
  phase 1 (encodings): 4504 capabilities, 23904 checks
  phase 2 (scenarios): 9 scenarios, 153 schedules (248 branches pruned), 918 ops, 1 shim invalidations
  counterexample: ghost-exn
    entry (task 0, obj 0) reports an exception but no denial hit it since its install
    scenario: mode=fine checkers=shim topology=shared mutation=ghost-exn
    [0] cycle 0: task 0 write obj 0 [7,9) -> denied: task 0 object 0: permission violation (needs W) (W src=0 port=0 addr=0x7 size=2)
    [1] cycle 1: driver revoke task 0 (epoch bump) -> revoked 1 entries
    [2] cycle 2: driver install (task 0, obj 0) rw -> installed
    replay: capsim verify --replay 'v1|mode=fine|chk=shim|topo=shared|a=2|o=3|l=8|elide=0|fault=|mut=ghost-exn|g=0.0.ro|p0=w0.7.2|p1=|p2=V0;I0.0.rw|s=0,2,2'

The replay token is self-contained: extracting it from the report and
feeding it back reproduces the same violation deterministically, again with
a failing exit code:

  $ grep -o "v1|[^']*" mutation.out > token.txt
  $ ../../bin/capsim.exe verify --replay "$(cat token.txt)"; echo "exit=$?"
  [0] cycle 0: task 0 write obj 0 [7,9) -> denied: task 0 object 0: permission violation (needs W) (W src=0 port=0 addr=0x7 size=2)
  [1] cycle 1: driver revoke task 0 (epoch bump) -> revoked 1 entries
  [2] cycle 2: driver install (task 0, obj 0) rw -> installed
  counterexample: ghost-exn
    entry (task 0, obj 0) reports an exception but no denial hit it since its install
    scenario: mode=fine checkers=shim topology=shared mutation=ghost-exn
    [0] cycle 0: task 0 write obj 0 [7,9) -> denied: task 0 object 0: permission violation (needs W) (W src=0 port=0 addr=0x7 size=2)
    [1] cycle 1: driver revoke task 0 (epoch bump) -> revoked 1 entries
    [2] cycle 2: driver install (task 0, obj 0) rw -> installed
    replay: capsim verify --replay 'v1|mode=fine|chk=shim|topo=shared|a=2|o=3|l=8|elide=0|fault=|mut=ghost-exn|g=0.0.ro|p0=w0.7.2|p1=|p2=V0;I0.0.rw|s=0,2,2'
  exit=1

A malformed token is an input error (exit 2), distinct from a verification
failure (exit 1):

  $ ../../bin/capsim.exe verify --replay garbage; echo "exit=$?"
  replay: replay token must start with v1
  exit=2

Repeated JSON runs are byte-identical — the determinism contract the CI
verification gate diffs:

  $ ../../bin/capsim.exe verify --checkers shim --json > v1.json
  $ ../../bin/capsim.exe verify --checkers shim --json > v2.json
  $ diff v1.json v2.json && echo DETERMINISTIC
  DETERMINISTIC
