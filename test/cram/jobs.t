The --jobs flag parallelizes independent simulations on a domain pool.  The
contract is that parallelism only changes wall-clock time: any --jobs value
produces byte-identical output to --jobs 1.  These diffs pin that contract
for every parallel subcommand (CI repeats them with the JSON outputs).

The parallelism sweep, serial vs 2 and 4 worker domains:

  $ ../../bin/capsim.exe sweep -b aes > sweep1.out
  $ ../../bin/capsim.exe sweep -b aes --jobs 2 > sweep2.out
  $ ../../bin/capsim.exe sweep -b aes --jobs 4 > sweep4.out
  $ diff sweep1.out sweep2.out && diff sweep1.out sweep4.out

The same through the JSON emitter, and with --jobs 0 (all cores):

  $ ../../bin/capsim.exe sweep -b aes --json > sweepj1.out
  $ ../../bin/capsim.exe sweep -b aes --json --jobs 0 > sweepj0.out
  $ diff sweepj1.out sweepj0.out

The CWE matrix measures its per-scheme columns in parallel:

  $ ../../bin/capsim.exe matrix > matrix1.out
  $ ../../bin/capsim.exe matrix --jobs 4 > matrix4.out
  $ diff matrix1.out matrix4.out
  $ ../../bin/capsim.exe matrix --json > matrixj1.out
  $ ../../bin/capsim.exe matrix --json --jobs 4 > matrixj4.out
  $ diff matrixj1.out matrixj4.out

A multi-seed fault batch (seeds 4..6; every seeded run re-derives its RNG
inside its own job, so the batch is as reproducible as a single run):

  $ ../../bin/capsim.exe faults -b aes -c ccpu+caccel -t 4 --seed 4 --runs 3 > faults1.out
  $ ../../bin/capsim.exe faults -b aes -c ccpu+caccel -t 4 --seed 4 --runs 3 --jobs 4 > faults4.out
  $ diff faults1.out faults4.out

A batch's first run is the single run, byte for byte:

  $ ../../bin/capsim.exe faults -b aes -c ccpu+caccel -t 4 --seed 4 > single.out
  $ head -n 7 faults1.out > batch_head.out
  $ diff single.out batch_head.out
