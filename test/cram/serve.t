The serve subcommand runs the multi-tenant accelerator-as-a-service mode: a
seeded open-loop workload over tenant compartments, with admission control
and per-tenant tail latency.  A small run's report is pinned byte for byte —
the schedule is fully derived from the seed:

  $ ../../bin/capsim.exe serve --tenants 12 --requests 120 --seed 2 --top 3
  
  == service report ==
  config ccpu+caccel  seed 2  tenants 12  requests 120  instances 8  entries 256
  gap 26177 cycles  makespan 3363309 cycles
  admitted 106 / 120  completed 106  rejected gone/inflight/table 14/0/0  cancelled 0  cpu fallbacks 0
  tenants arrived 12  departed 1  root installs 12 (reinstalls 0)  root evictions 0  stalls 0
  table installs 256  evictions 256  conflicts 0  live 0  peak 44  thrash 0
  latency p50 41447  p99 835328  max 835328
  top 3 tenants by p99:
  tenant  admitted  completed  rejected  cancelled  cpu  epoch  p50     p99     max
  ------  --------  ---------  --------  ---------  ---  -----  ------  ------  ------
  9       8         8          2         0          0    0      157917  835328  835328
  10      12        12         1         0          0    0      20809   835328  835328
  2       7         7          1         0          0    0      33943   426762  426762

Determinism across repeat runs of the seed and across --jobs values (only
the up-front kernel profiling is parallelized; the service timeline itself
is strictly serial):

  $ ../../bin/capsim.exe serve --tenants 12 --requests 120 --seed 2 --json > serve1.json
  $ ../../bin/capsim.exe serve --tenants 12 --requests 120 --seed 2 --json > serve1b.json
  $ diff serve1.json serve1b.json
  $ ../../bin/capsim.exe serve --tenants 12 --requests 120 --seed 2 --json --jobs 4 > serve4.json
  $ diff serve1.json serve4.json

A different seed is a different schedule:

  $ ../../bin/capsim.exe serve --tenants 12 --requests 120 --seed 3 --json > serve_s3.json
  $ diff -q serve1.json serve_s3.json
  Files serve1.json and serve_s3.json differ
  [1]
