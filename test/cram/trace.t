The trace subcommand records one run and writes a Chrome trace-event JSON
file loadable in Perfetto.  The summary table and the written file are
deterministic, so this doubles as a smoke test of the whole pipeline.

  $ ../../bin/capsim.exe trace -b aes -c ccpu+caccel -t 2 -o trace.json
  aes on ccpu+caccel, 2 task(s): wall 10639 cycles, correct true
  
  Category  Event         Count
  --------  ------------  -----
  bus       bus_beat      4
  bus       bus_grant     4
  checker   check_ok      32
  driver    cap_import    2
  mmio      mmio_read     2
  mmio      mmio_write    8
  table     table_evict   2
  table     table_insert  2
  task      task_phase    8
  total     (recorded)    64
  total     (dropped)     0
  Counter             Count
  ------------------  -----
  bus.bus_beat        4
  bus.bus_grant       4
  checker.check_ok    32
  driver.cap_import   2
  mmio.mmio_read      2
  mmio.mmio_write     8
  table.table_evict   2
  table.table_insert  2
  task.task_phase     8
  trace.dropped       0
  
  Histogram              N   Mean    p50<=  p90<=  p99<=  Max
  ---------------------  --  ------  -----  -----  -----  -----
  bus.grant_beats        4   16.0    16     16     16     16
  bus.grant_wait         4   4.2     0      17     17     17
  checker.check_latency  32  1.0     1      1      1      1
  task.phase_cycles      8   1363.6  127    10321  10321  10321
  wrote trace.json (64 events, 0 dropped)





The file is valid JSON with the Chrome object-format keys:

  $ head -c 15 trace.json
  {"traceEvents":
