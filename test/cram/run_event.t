The --engine flag selects the timing core: "replay" (default) records each
accelerator's DMA stream and replays the contention through the serialized
fabric; "event" runs every instance live on a shared discrete-event timeline
with round-robin bus arbitration.

On aes the four instances issue identical periodic streams, so round-robin
and the replay's earliest-ready FIFO produce the same schedule and the two
engines agree end to end:

  $ ../../bin/capsim.exe run -b aes -c ccpu+caccel -t 4 --engine event
  aes on ccpu+caccel, 4 task(s)
    wall          10991 cycles
    alloc           316
    init             96
    compute       10355
    teardown        224
    correct   true
    checks    128 (entries peak 4)
    area      194728 LUTs, power 2485 mW

  $ ../../bin/capsim.exe run -b aes -c ccpu+caccel -t 4 --engine replay
  aes on ccpu+caccel, 4 task(s)
    wall          10991 cycles
    alloc           316
    init             96
    compute       10355
    teardown        224
    correct   true
    checks    128 (entries peak 4)
    area      194728 LUTs, power 2485 mW

With a single instance the event engine is cycle-identical to the replay
oracle by construction (the differential tests cover every benchmark); the
machine-readable output is byte-stable, which CI uses as a determinism gate:

  $ ../../bin/capsim.exe run -b aes -c ccpu+caccel -t 1 --engine event --json
  {"benchmark":"aes","config":"ccpu+caccel","tasks":1,"wall":10463,"phases":{"alloc":79,"init":24,"compute":10304,"teardown":56},"correct":true,"checks":32,"elided_checks":0,"entries_peak":1,"bus_beats":32,"area_luts":194728,"denials":[],"recovered":0,"fallbacks":[],"faults":{"bus_stalls":0,"bus_stall_cycles":0,"bus_errors":0,"guard_denials":0,"table_fulls":0,"cache_drops":0,"alloc_fails":0,"retries":0,"backoff_cycles":0}}

Fault injection composes with the event core — placement and retry stay
sequential, only the contention replay switches:

  $ ../../bin/capsim.exe faults -b aes -c ccpu+caccel -t 4 --seed 4 --engine event
  aes on ccpu+caccel, 4 task(s), fault plan seed=4 bus_stall=0.020(max 16) bus_error=0.005 guard_denial=0.002 table_full=0.020 cache_drop=0.050 alloc_fail=0.080
    wall          11071 cycles (alloc 396, init 96, compute 10355, teardown 224)
    injected  0 bus stalls (+0 cycles), 0 bus errors, 0 guard denials,
              1 table-fulls, 0 cache drops, 0 alloc failures
    recovery  1 retries (64 backoff cycles), 1 task(s) recovered, 0 degraded to CPU
    correct   true
    invariant ok: completed correctly (degraded tasks recomputed on CPU)
