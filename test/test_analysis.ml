(* The static footprint analysis: interval arithmetic, verdicts on crafted
   kernels, verdicts over the whole MachSuite registry, the differential
   property (proven ⇒ no dynamic denial; violation witness ⇒ reproducible
   denial), and the proven-task check-elision path. *)

open Kernel.Ir
module I = Analysis.Interval

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---------------- intervals ---------------- *)

let ieq msg a b = checkb msg true (I.equal a b)

let test_interval_arith () =
  ieq "add" (I.make 3 12) (I.add (I.make 1 4) (I.make 2 8));
  ieq "sub" (I.make (-7) 2) (I.sub (I.make 1 4) (I.make 2 8));
  ieq "neg" (I.make (-4) (-1)) (I.neg (I.make 1 4));
  ieq "mul corners" (I.make (-8) 12)
    (I.mul (I.make (-2) 3) (I.make 1 4));
  ieq "mul negatives" (I.make 2 20) (I.mul (I.make (-5) (-1)) (I.make (-4) (-2)));
  checkb "unbounded add stays unbounded" true
    (not (I.is_bounded (I.add I.top (I.const 1))));
  ieq "const" (I.make 7 7) (I.const 7);
  (* literal-extreme endpoints are exact bounds, not infinity sentinels:
     negating/multiplying them must keep the true value inside *)
  checkb "neg const max_int keeps -max_int" true
    (I.mem (-max_int) (I.neg (I.const max_int)));
  checkb "neg const min_int covers +overflow" true
    ((I.neg (I.const min_int)).I.hi = max_int);
  checkb "sub near max_int keeps -1" true
    (I.mem (-1) (I.sub (I.const (max_int - 1)) (I.const max_int)));
  checkb "mul const max_int by -1 keeps -max_int" true
    (I.mem (-max_int) (I.mul (I.const max_int) (I.const (-1))))

let test_interval_lattice () =
  ieq "join" (I.make 0 9) (I.join (I.make 0 3) (I.make 5 9));
  (match I.meet (I.make 0 5) (I.make 3 9) with
  | Some m -> ieq "meet" (I.make 3 5) m
  | None -> Alcotest.fail "meet nonempty");
  checkb "meet empty" true (I.meet (I.make 0 2) (I.make 5 9) = None);
  checkb "mem" true (I.mem 4 (I.make 0 5));
  checkb "not mem" false (I.mem 6 (I.make 0 5));
  checkb "subset" true (I.subset (I.make 1 3) (I.make 0 5));
  let w = I.widen (I.make 0 4) (I.make 0 5) in
  checkb "widen blows moving hi" true (w.I.hi = max_int && w.I.lo = 0);
  ieq "widen stable" (I.make 0 4) (I.widen (I.make 0 4) (I.make 1 4))

(* ---------------- interval soundness at the 63-bit extremes ----------------

   The domain's contract: endpoints [min_int]/[max_int] are infinity
   sentinels and endpoint arithmetic saturates toward them, over-approximating
   the {e wrap-free} concrete semantics the interpreter is specified with.
   So the property is stated against extended integers: a concrete result
   that mathematically overflows 63 bits must land in an interval whose
   matching endpoint is the infinity sentinel.  Plain [a + b ∈ add A B] with
   native ints would be both unsound to check (the concrete side wraps) and
   miss exactly the corner this guards. *)

type ext = Num of int | Pos_over | Neg_over

let ext_add a b =
  if b > 0 && a > max_int - b then Pos_over
  else if b < 0 && a < min_int - b then Neg_over
  else Num (a + b)

let ext_neg a = if a = min_int then Pos_over else Num (-a)

let ext_sub a b = match ext_neg b with
  | Num nb -> ext_add a nb
  | Pos_over (* b = min_int *) ->
      (* a - min_int = a + (max_int + 1) *)
      if a >= 0 then Pos_over else Num (a + max_int + 1)
  | Neg_over -> assert false

let ext_mul a b =
  if a = 0 || b = 0 then Num 0
  else if a = -1 then ext_neg b
  else if b = -1 then ext_neg a
  else
    let p = a * b in
    if p / a = b && (p <> min_int || (a < 0) <> (b < 0)) then Num p
    else if a > 0 = (b > 0) then Pos_over
    else Neg_over

(* membership under the sentinel reading: lo = min_int means unbounded
   below, hi = max_int unbounded above *)
let ext_mem e (iv : I.t) =
  match e with
  | Num v -> I.mem v iv
  | Pos_over -> iv.I.hi = max_int
  | Neg_over -> iv.I.lo = min_int

let extreme_endpoint =
  QCheck.Gen.frequency
    [ ( 3,
        QCheck.Gen.oneofl
          [ min_int; min_int + 1; min_int + 2; min_int / 2; -1000000; -7; -2;
            -1; 0; 1; 2; 7; 1000000; max_int / 2; max_int - 2; max_int - 1;
            max_int ] );
      (1, QCheck.Gen.int) ]

let interval_arb =
  (* degenerate extreme-point intervals get extra weight: [const max_int]
     times [const (-1)] is precisely the corner class worth hammering *)
  QCheck.make ~print:I.to_string
    (QCheck.Gen.oneof
       [ QCheck.Gen.map2 (fun a b -> I.make a b) extreme_endpoint
           extreme_endpoint;
         QCheck.Gen.map I.const extreme_endpoint ])

(* concrete witnesses of an interval: its corners and a few interior points *)
let samples (iv : I.t) =
  List.filter
    (fun v -> I.mem v iv)
    [ iv.I.lo; iv.I.hi; 0; 1; -1; min_int; max_int;
      (if iv.I.lo < max_int then iv.I.lo + 1 else iv.I.lo);
      (if iv.I.hi > min_int then iv.I.hi - 1 else iv.I.hi) ]

let forall_pairs a b f =
  List.for_all (fun x -> List.for_all (fun y -> f x y) (samples b)) (samples a)

let prop_binop name abstract concrete =
  QCheck.Test.make ~count:2000 ~name
    QCheck.(pair interval_arb interval_arb)
    (fun (a, b) ->
      forall_pairs a b (fun x y -> ext_mem (concrete x y) (abstract a b)))

let prop_add_sound =
  prop_binop "interval add sound at 63-bit extremes" I.add ext_add

let prop_sub_sound =
  prop_binop "interval sub sound at 63-bit extremes" I.sub ext_sub

let prop_mul_sound =
  prop_binop "interval mul sound at 63-bit extremes" I.mul ext_mul

let prop_neg_sound =
  QCheck.Test.make ~count:2000 ~name:"interval neg sound at 63-bit extremes"
    interval_arb
    (fun a ->
      List.for_all (fun x -> ext_mem (ext_neg x) (I.neg a)) (samples a))

let prop_join_meet_sound =
  QCheck.Test.make ~count:2000 ~name:"join/meet sound on sampled members"
    QCheck.(pair interval_arb interval_arb)
    (fun (a, b) ->
      let j = I.join a b in
      List.for_all (fun v -> I.mem v j) (samples a)
      && List.for_all (fun v -> I.mem v j) (samples b)
      &&
      let common = List.filter (fun v -> I.mem v b) (samples a) in
      match I.meet a b with
      | Some m -> List.for_all (fun v -> I.mem v m) common
      | None -> common = [])

let prop_widen_covers =
  QCheck.Test.make ~count:2000 ~name:"widen covers both arguments"
    QCheck.(pair interval_arb interval_arb)
    (fun (old, next) ->
      let w = I.widen old next in
      I.subset old w && I.subset next w)

let interval_qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add_sound; prop_sub_sound; prop_mul_sound; prop_neg_sound;
      prop_join_meet_sound; prop_widen_covers ]

(* ---------------- crafted kernels ---------------- *)

let simple name ?(bufs = [ buf "out" I64 8 ]) ?(scratch = []) body =
  { name; bufs; scratch; body }

let verdict_of report name =
  let b = List.find (fun b -> b.Analysis.buf = name) report.Analysis.bufs in
  b.Analysis.verdict

let test_streaming_proven () =
  let k =
    simple "stream"
      [ for_ "j" (i 0) (i 8) [ store "out" (v "j") (v "j" *: i 2) ] ]
  in
  let r = Analysis.analyze k in
  checkb "proven" true (Analysis.proven r);
  (match verdict_of r "out" with
  | Analysis.Proven_in_bounds -> ()
  | v -> Alcotest.failf "expected proven, got %s" (Analysis.verdict_to_string v))

let test_oob_yields_witness () =
  let k = simple "oob" [ store "out" (i 16) (i 1) ] in
  let r = Analysis.analyze k in
  checkb "not proven" false (Analysis.proven r);
  match verdict_of r "out" with
  | Analysis.Possible_violation w ->
      checki "witness index" 16 w.Analysis.w_index;
      checki "witness len" 8 w.Analysis.w_len;
      checkb "witness kind" true (w.Analysis.w_kind = Analysis.Write)
  | v -> Alcotest.failf "expected violation, got %s" (Analysis.verdict_to_string v)

let test_readonly_write_flagged () =
  let k =
    simple "ro" ~bufs:[ buf ~writable:false "out" I64 8 ]
      [ store "out" (i 0) (i 1) ]
  in
  let r = Analysis.analyze k in
  checkb "not proven" false (Analysis.proven r);
  (match verdict_of r "out" with
  | Analysis.Possible_violation w ->
      checkb "write witness" true (w.Analysis.w_kind = Analysis.Write)
  | v -> Alcotest.failf "expected violation, got %s" (Analysis.verdict_to_string v));
  checkb "validate lint surfaced too" true (r.Analysis.lint <> [])

let test_data_dependent_unknown () =
  let k =
    simple "chase"
      ~bufs:[ buf ~writable:false "idx" I64 8; buf "out" I64 8 ]
      [ for_ "j" (i 0) (i 8) [ store "out" (ld "idx" (v "j")) (i 1) ] ]
  in
  let r = Analysis.analyze k in
  checkb "not proven" false (Analysis.proven r);
  match verdict_of r "out" with
  | Analysis.Unknown _ -> ()
  | v -> Alcotest.failf "expected unknown, got %s" (Analysis.verdict_to_string v)

let test_param_constraint_decides () =
  let k = simple "par" [ store "out" (p "n") (i 1) ] in
  let constrained =
    Analysis.analyze ~params:[ ("n", I.make 0 7) ] k
  in
  checkb "proven under range" true (Analysis.proven constrained);
  let free = Analysis.analyze k in
  checkb "unconstrained is not proven" false (Analysis.proven free)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go j = j + n <= m && (String.sub s j n = sub || go (j + 1)) in
  n = 0 || go 0

let test_lint_unbound_var () =
  let k = simple "unbound" [ store "out" (i 0) (v "nope") ] in
  let r = Analysis.analyze k in
  checkb "lint fires and names the variable" true
    (List.exists (contains ~sub:"nope") r.Analysis.lint)

let test_lint_degenerate_loop () =
  let k =
    simple "degenerate" [ for_ "j" (i 10) (i 2) [ store "out" (i 0) (i 1) ] ]
  in
  let r = Analysis.analyze k in
  checkb "degenerate loop linted" true (r.Analysis.lint <> [])

(* ---------------- the whole registry ---------------- *)

let streaming =
  [ "aes"; "backprop"; "fft_strided"; "fft_transpose"; "gemm_blocked";
    "gemm_ncubed"; "kmp"; "spmv_ellpack"; "stencil2d"; "stencil3d"; "viterbi" ]

let registry_report (b : Machsuite.Bench_def.t) =
  Analysis.analyze ~params:(Analysis.param_ranges b.params) b.kernel

let test_registry_all_verdicts () =
  List.iter
    (fun (b : Machsuite.Bench_def.t) ->
      let r = registry_report b in
      checki (b.name ^ " verdict per heap buffer")
        (List.length b.kernel.bufs) (List.length r.Analysis.bufs);
      checkb (b.name ^ " lint clean") true (r.Analysis.lint = []);
      (* No shipped kernel may carry a bounded out-of-bounds footprint. *)
      List.iter
        (fun br ->
          match br.Analysis.verdict with
          | Analysis.Possible_violation w ->
              Alcotest.failf "%s.%s: unexpected violation at %s" b.name
                br.Analysis.buf w.Analysis.w_site
          | Analysis.Proven_in_bounds | Analysis.Unknown _ -> ())
        r.Analysis.bufs)
    Machsuite.Registry.all

let test_registry_streaming_proven () =
  List.iter
    (fun name ->
      let b = Machsuite.Registry.find name in
      checkb (name ^ " proven") true (Analysis.proven (registry_report b)))
    streaming

let test_registry_pointer_chasing_unknown () =
  List.iter
    (fun name ->
      let b = Machsuite.Registry.find name in
      checkb (name ^ " honestly unknown") false
        (Analysis.proven (registry_report b)))
    [ "bfs_bulk"; "bfs_queue"; "md_knn"; "spmv_crs"; "sort_radix" ]

(* ---------------- differential property ---------------- *)

(* Deterministic per-(benchmark, seed, param) draw from the declared range
   [1, max 1 (2n)] — the same family [Analysis.param_ranges] promises. *)
let draw_params (b : Machsuite.Bench_def.t) ~seed =
  List.map
    (fun (name, v) ->
      match (v : Kernel.Value.t) with
      | Kernel.Value.VF _ -> (name, v)
      | Kernel.Value.VI n ->
          let bound = max 1 (2 * n) in
          let h = Hashtbl.hash (b.name, seed, name) in
          (name, Kernel.Value.VI (1 + (h mod bound))))
    b.params

let has_int_params (b : Machsuite.Bench_def.t) =
  List.exists
    (fun (_, v) -> match (v : Kernel.Value.t) with VI _ -> true | VF _ -> false)
    b.params

let test_differential_proven_implies_no_denial () =
  (* Golden outputs are memoized per benchmark name; prime the cache with the
     default parameters so runs under randomized parameters cannot poison it
     for later tests.  (Functional comparison under randomized parameters is
     not part of this property — only the absence of dynamic denials is.) *)
  List.iter
    (fun b -> ignore (Machsuite.Bench_def.golden b))
    Machsuite.Registry.all;
  List.iter
    (fun (b : Machsuite.Bench_def.t) ->
      let seeds = if has_int_params b then [ 1; 2; 3 ] else [ 1 ] in
      List.iter
        (fun seed ->
          let params = draw_params b ~seed in
          let r =
            Analysis.analyze ~params:(Analysis.param_intervals params) b.kernel
          in
          if Analysis.proven r then begin
            let bench = { b with Machsuite.Bench_def.params } in
            (* Elide_differential additionally raises inside the run if a
               statically proven task is ever dynamically denied. *)
            let res =
              Soc.Run.run ~tasks:1 ~elide:Soc.Run.Elide_differential
                Soc.Config.ccpu_caccel bench
            in
            checkb
              (Printf.sprintf "%s seed %d: proven => no denial" b.name seed)
              true
              (res.Soc.Run.denials = [])
          end)
        seeds)
    Machsuite.Registry.all

(* Replaying a violation witness must reproduce a dynamic denial (not a bus
   error): the analysis and the CapChecker disagree on no kernel. *)
let witness_kernels =
  [
    simple "oob_write" [ store "out" (i 16) (i 1) ];
    simple "oob_read"
      ~bufs:[ buf ~writable:false "src" I64 8; buf "out" I64 8 ]
      [ store "out" (i 0) (ld "src" (i 16)) ];
  ]

let test_witness_replay_reproduces_denial () =
  List.iter
    (fun kernel ->
      let r = Analysis.analyze kernel in
      let w =
        match
          List.find_map
            (fun b ->
              match b.Analysis.verdict with
              | Analysis.Possible_violation w -> Some w
              | _ -> None)
            r.Analysis.bufs
        with
        | Some w -> w
        | None -> Alcotest.failf "%s: no witness produced" kernel.name
      in
      checkb "witness is out of bounds" true (w.Analysis.w_index >= w.Analysis.w_len);
      let mem = Tagmem.Mem.create ~size:(1 lsl 20) in
      let heap = Tagmem.Alloc.create ~base:4096 ~size:((1 lsl 20) - 4096) in
      let checker = Capchecker.Checker.create Capchecker.Checker.Fine in
      let backend = Driver.Backend.Capchecker checker in
      let driver =
        Driver.create ~mem ~heap ~backend ~bus:Bus.Params.default ~n_instances:1 ()
      in
      let a =
        match Driver.allocate driver kernel with
        | Ok a -> a
        | Error msg -> Alcotest.failf "allocate: %s" msg
      in
      let outcome =
        Accel.Engine.run ~mem
          ~guard:(Driver.Backend.guard_of backend)
          ~bus:Bus.Params.default ~directives:Hls.Directives.default
          ~addressing:(Driver.Backend.addressing backend)
          ~naive_tag_writes:false
          {
            Accel.Engine.instance = a.Driver.handle.Driver.task_id;
            kernel;
            layout = a.Driver.handle.Driver.layout;
            params = [];
            obj_ids = a.Driver.handle.Driver.obj_ids;
          }
      in
      match outcome.Accel.Engine.denied with
      | Some d ->
          checkb
            (kernel.name ^ ": checker denial, not a bus error")
            true
            (d.Guard.Iface.code <> "bus")
      | None -> Alcotest.failf "%s: witness did not reproduce a denial" kernel.name)
    witness_kernels

(* A read-only-write witness replays against the RO capability the driver
   would install: the CapChecker denies the store. *)
let test_readonly_witness_replay () =
  let kernel =
    simple "ro_store" ~bufs:[ buf ~writable:false "out" I64 8 ]
      [ store "out" (i 0) (i 1) ]
  in
  (match verdict_of (Analysis.analyze kernel) "out" with
  | Analysis.Possible_violation _ -> ()
  | v -> Alcotest.failf "expected violation, got %s" (Analysis.verdict_to_string v));
  let mem = Tagmem.Mem.create ~size:(1 lsl 20) in
  let heap = Tagmem.Alloc.create ~base:4096 ~size:((1 lsl 20) - 4096) in
  let base = Tagmem.Alloc.malloc heap ~align:64 64 in
  let checker = Capchecker.Checker.create Capchecker.Checker.Fine in
  let cap = Result.get_ok (Cheri.Cap.set_bounds_exact Cheri.Cap.root ~base ~length:64) in
  let cap = Result.get_ok (Cheri.Cap.with_perms cap Cheri.Perms.data_ro) in
  (match Capchecker.Checker.install checker ~task:0 ~obj:0 cap with
  | Capchecker.Table.Installed _ -> ()
  | Capchecker.Table.Table_full | Capchecker.Table.Rejected_untagged ->
      Alcotest.fail "install");
  let layout =
    Memops.Layout.make [ { Memops.Layout.decl = List.hd kernel.bufs; base } ]
  in
  let outcome =
    Accel.Engine.run ~mem
      ~guard:(Capchecker.Checker.as_guard checker)
      ~bus:Bus.Params.default ~directives:Hls.Directives.default
      ~addressing:Accel.Engine.Fine_ports ~naive_tag_writes:false
      { Accel.Engine.instance = 0; kernel; layout; params = [];
        obj_ids = [ ("out", 0) ] }
  in
  checkb "store through RO capability denied" true
    (outcome.Accel.Engine.denied <> None)

(* ---------------- check elision ---------------- *)

let test_elision_equivalence_on_proven () =
  let bench = Machsuite.Registry.find "aes" in
  let off = Soc.Run.run ~tasks:2 Soc.Config.ccpu_caccel bench in
  let on =
    Soc.Run.run ~tasks:2 ~elide:Soc.Run.Elide_on Soc.Config.ccpu_caccel bench
  in
  checkb "guarded correct" true off.Soc.Run.correct;
  checkb "elided correct" true on.Soc.Run.correct;
  checkb "no denials" true (on.Soc.Run.denials = []);
  checki "every check elided" off.Soc.Run.checks on.Soc.Run.elided_checks;
  checki "no residual checks" 0 on.Soc.Run.checks;
  checkb "elision never slower" true (on.Soc.Run.wall <= off.Soc.Run.wall);
  checki "guarded run elides nothing" 0 off.Soc.Run.elided_checks

let test_elision_adaptive_on_unknown () =
  let bench = Machsuite.Registry.find "spmv_crs" in
  let on =
    Soc.Run.run ~tasks:1 ~elide:Soc.Run.Elide_on Soc.Config.ccpu_caccel bench
  in
  checkb "correct" true on.Soc.Run.correct;
  checki "unproven task stays fully guarded" 0 on.Soc.Run.elided_checks;
  checkb "checks still adjudicated" true (on.Soc.Run.checks > 0)

let test_elision_needs_capable_backend () =
  let bench = Machsuite.Registry.find "aes" in
  let on =
    Soc.Run.run ~tasks:1 ~elide:Soc.Run.Elide_on Soc.Config.ccpu_accel bench
  in
  checkb "correct" true on.Soc.Run.correct;
  checki "unprotected backend never elides" 0 on.Soc.Run.elided_checks

let test_elision_emits_event () =
  let bench = Machsuite.Registry.find "aes" in
  let obs = Obs.Trace.create () in
  let r =
    Soc.Run.run ~tasks:1 ~obs ~elide:Soc.Run.Elide_on Soc.Config.ccpu_caccel
      bench
  in
  checkb "correct" true r.Soc.Run.correct;
  let counted =
    List.fold_left
      (fun acc (e : Obs.Event.t) ->
        match e.Obs.Event.data with
        | Obs.Event.Check_elided { count; _ } -> acc + count
        | _ -> acc)
      0 (Obs.Trace.events obs)
  in
  checkb "Check_elided event counts the skipped checks" true (counted > 0);
  checki "event total matches result" r.Soc.Run.elided_checks counted

let suite =
  [
    ("interval arithmetic", `Quick, test_interval_arith);
    ("interval lattice", `Quick, test_interval_lattice);
    ("streaming kernel proven", `Quick, test_streaming_proven);
    ("oob yields witness", `Quick, test_oob_yields_witness);
    ("read-only write flagged", `Quick, test_readonly_write_flagged);
    ("data-dependent index unknown", `Quick, test_data_dependent_unknown);
    ("param constraint decides", `Quick, test_param_constraint_decides);
    ("lint unbound var", `Quick, test_lint_unbound_var);
    ("lint degenerate loop", `Quick, test_lint_degenerate_loop);
    ("registry: every kernel verdicted", `Quick, test_registry_all_verdicts);
    ("registry: streaming proven", `Quick, test_registry_streaming_proven);
    ("registry: pointer chasing unknown", `Quick,
     test_registry_pointer_chasing_unknown);
    ("differential: proven => no denial", `Slow,
     test_differential_proven_implies_no_denial);
    ("differential: witness replays to denial", `Quick,
     test_witness_replay_reproduces_denial);
    ("differential: read-only witness replays", `Quick,
     test_readonly_witness_replay);
    ("elision equivalence on proven", `Quick, test_elision_equivalence_on_proven);
    ("elision adaptive on unknown", `Quick, test_elision_adaptive_on_unknown);
    ("elision needs capable backend", `Quick, test_elision_needs_capable_backend);
    ("elision emits event", `Quick, test_elision_emits_event);
  ]
  @ interval_qsuite
