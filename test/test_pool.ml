(* lib/sim Pool: the domain worker pool must be index-deterministic — the
   result array is identical to the serial run at any jobs value, and an
   exception surfaces as the lowest-numbered failing job's, independent of
   scheduling.  Every parallel code path in the repo leans on these two
   properties. *)

let checki = Alcotest.(check int)

(* A job function with observable per-index structure and enough work that
   chunks genuinely interleave across domains. *)
let busy idx =
  let acc = ref idx in
  for i = 1 to 10_000 do
    acc := (!acc * 31 + i) land 0xFFFFFF
  done;
  (idx, !acc)

let test_parity_serial_vs_parallel () =
  let n = 100 in
  let serial = Ccsim.Pool.run ~jobs:1 n busy in
  List.iter
    (fun jobs ->
      let par = Ccsim.Pool.run ~jobs n busy in
      Alcotest.(check bool)
        (Printf.sprintf "jobs:%d identical to serial" jobs)
        true (par = serial))
    [ 2; 3; 4; 7 ]

let test_index_order () =
  let r = Ccsim.Pool.run ~jobs:4 50 (fun i -> i * i) in
  Array.iteri (fun i v -> checki "slot holds its own index's result" (i * i) v) r

let test_edge_counts () =
  checki "count 0" 0 (Array.length (Ccsim.Pool.run ~jobs:4 0 (fun i -> i)));
  let one = Ccsim.Pool.run ~jobs:4 1 (fun i -> i + 41) in
  checki "count 1 length" 1 (Array.length one);
  checki "count 1 value" 41 one.(0)

let test_jobs_zero_resolves () =
  checki "resolve 0" (Ccsim.Pool.recommended ()) (Ccsim.Pool.resolve 0);
  checki "resolve passthrough" 3 (Ccsim.Pool.resolve 3);
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore (Ccsim.Pool.resolve (-1));
       false
     with Invalid_argument _ -> true);
  (* jobs:0 must actually run (on however many domains the host has). *)
  let r = Ccsim.Pool.run ~jobs:0 10 (fun i -> i + 1) in
  checki "jobs:0 runs" 10 (Array.length r)

let test_map_preserves_order () =
  let xs = [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ] in
  Alcotest.(check (list string))
    "map parity with List.map" (List.map String.uppercase_ascii xs)
    (Ccsim.Pool.map ~jobs:4 String.uppercase_ascii xs)

exception Boom of int

let test_lowest_failure_wins () =
  (* Several jobs fail; whatever the scheduling, the reported exception must
     be the lowest-numbered one's. *)
  List.iter
    (fun jobs ->
      match
        Ccsim.Pool.run ~jobs 64 (fun i ->
            if i mod 10 = 7 then raise (Boom i) else i)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          checki (Printf.sprintf "jobs:%d lowest failing index" jobs) 7 i)
    [ 1; 2; 4 ]

let test_negative_count_rejected () =
  Alcotest.(check bool) "negative count" true
    (try
       ignore (Ccsim.Pool.run ~jobs:2 (-1) (fun i -> i));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ("serial/parallel parity", `Quick, test_parity_serial_vs_parallel);
    ("index order", `Quick, test_index_order);
    ("edge counts", `Quick, test_edge_counts);
    ("jobs 0 resolves to recommended", `Quick, test_jobs_zero_resolves);
    ("map preserves order", `Quick, test_map_preserves_order);
    ("lowest failing index wins", `Quick, test_lowest_failure_wins);
    ("negative count rejected", `Quick, test_negative_count_rejected);
  ]
