(* Simulator utilities: deterministic RNG, statistics, the clock, and the
   table/figure text renderer. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checks = Alcotest.(check string)

open Ccsim

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  checkb "different seeds differ" true (Rng.next64 a <> Rng.next64 b)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    checkb "in range" true (x >= 0 && x < 10);
    let y = Rng.int_in r 5 9 in
    checkb "in inclusive range" true (y >= 5 && y <= 9);
    let f = Rng.float r 2.0 in
    checkb "float range" true (f >= 0.0 && f < 2.0)
  done

let test_rng_copy_and_split () =
  let r = Rng.create 3 in
  let c = Rng.copy r in
  Alcotest.(check int64) "copy tracks" (Rng.next64 r) (Rng.next64 c);
  let s = Rng.split r in
  checkb "split independent" true (Rng.next64 s <> Rng.next64 r)

let test_rng_shuffle_permutes () =
  let r = Rng.create 9 in
  let a = Array.init 50 (fun j -> j) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Array.iteri (fun j x -> checki "element preserved" j x) sorted

let test_rng_choose () =
  let r = Rng.create 11 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 50 do
    checkb "member" true (Array.mem (Rng.choose r a) a)
  done

(* ---------------- Stats ---------------- *)

let test_stats_counters () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "b" 10;
  checki "a" 2 (Stats.get s "a");
  checki "b" 10 (Stats.get s "b");
  checki "absent" 0 (Stats.get s "nope");
  Alcotest.(check (list (pair string int))) "sorted listing"
    [ ("a", 2); ("b", 10) ] (Stats.to_list s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a "x" 1;
  Stats.add b "x" 2;
  Stats.add b "y" 5;
  Stats.merge_into ~dst:a b;
  checki "merged x" 3 (Stats.get a "x");
  checki "merged y" 5 (Stats.get a "y")

let test_geomean () =
  checkf "geomean pair" 2.0 (Stats.geomean [ 1.0; 4.0 ]);
  checkf "geomean identity" 3.0 (Stats.geomean [ 3.0; 3.0; 3.0 ]);
  checkf "empty is 1" 1.0 (Stats.geomean [])

let test_mean_percentile () =
  checkf "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  checkf "median" 2.0 (Stats.percentile 0.5 [ 3.0; 1.0; 2.0 ]);
  checkf "p100" 3.0 (Stats.percentile 1.0 [ 3.0; 1.0; 2.0 ])

let test_percentile_empty_raises () =
  (* Regression: an empty sample list used to trip a bare [assert false];
     callers now get a diagnosable exception instead. *)
  Alcotest.check_raises "empty sample list"
    (Invalid_argument "Stats.percentile: empty sample list") (fun () ->
      ignore (Stats.percentile 0.5 []))

(* ---------------- Clock ---------------- *)

let test_clock () =
  let c = Clock.create () in
  checki "starts at zero" 0 (Clock.now c);
  Clock.advance c 5;
  Clock.advance_to c 3;
  checki "never goes back" 5 (Clock.now c);
  Clock.advance_to c 9;
  checki "advances forward" 9 (Clock.now c);
  Clock.reset c;
  checki "reset" 0 (Clock.now c)

(* ---------------- Report ---------------- *)

let test_table_alignment () =
  let t = Report.table ~header:[ "a"; "bb" ] [ [ "xxx"; "y" ]; [ "1"; "22" ] ] in
  let lines = String.split_on_char '\n' t in
  checki "four lines" 4 (List.length lines);
  checks "rule under header" "---  --" (List.nth lines 1);
  (* No trailing spaces on any line. *)
  List.iter
    (fun l -> checkb "no trailing space" false (String.length l > 0 && l.[String.length l - 1] = ' '))
    lines

let test_bar () =
  checks "full bar" "####" (Report.bar ~width:4 ~max:1.0 1.0);
  checks "half bar" "##  " (Report.bar ~width:4 ~max:2.0 1.0);
  checks "clamped" "####" (Report.bar ~width:4 ~max:1.0 5.0);
  checks "negative clamped" "    " (Report.bar ~width:4 ~max:1.0 (-1.0))

let test_log_bar () =
  checks "one or less is empty" "    " (Report.log_bar ~width:4 ~max:100.0 1.0);
  checks "max is full" "####" (Report.log_bar ~width:4 ~max:100.0 100.0);
  checks "sqrt is half" "##  " (Report.log_bar ~width:4 ~max:100.0 10.0)

let test_pct_and_fixed () =
  checks "positive pct" "+1.40%" (Report.pct 0.014);
  checks "negative pct" "-2.00%" (Report.pct (-0.02));
  checks "fixed" "3.14" (Report.fixed 2 3.14159)

let prop_rng_int_uniformish =
  QCheck.Test.make ~count:20 ~name:"rng int covers its range"
    QCheck.(int_range 2 20)
    (fun bound ->
      let r = Rng.create bound in
      let seen = Array.make bound false in
      for _ = 1 to bound * 200 do
        seen.(Rng.int r bound) <- true
      done;
      Array.for_all (fun x -> x) seen)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_rng_int_uniformish ]

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng bounds", `Quick, test_rng_bounds);
    ("rng copy/split", `Quick, test_rng_copy_and_split);
    ("rng shuffle", `Quick, test_rng_shuffle_permutes);
    ("rng choose", `Quick, test_rng_choose);
    ("stats counters", `Quick, test_stats_counters);
    ("stats merge", `Quick, test_stats_merge);
    ("geomean", `Quick, test_geomean);
    ("mean/percentile", `Quick, test_mean_percentile);
    ("percentile rejects empty input", `Quick, test_percentile_empty_raises);
    ("clock", `Quick, test_clock);
    ("report table", `Quick, test_table_alignment);
    ("report bar", `Quick, test_bar);
    ("report log bar", `Quick, test_log_bar);
    ("report pct/fixed", `Quick, test_pct_and_fixed);
  ]
  @ qsuite
