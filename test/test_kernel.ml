(* The kernel IR and its interpreter: validation, expression semantics,
   control flow, scratch memories, memcpy lowering, cost accounting and the
   dependent-load classifier. *)

open Kernel
open Kernel.Ir

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let run_pure ?params kernel bufs =
  let arrays =
    List.map
      (fun (d : buf_decl) ->
        ( d.buf_name,
          match List.assoc_opt d.buf_name bufs with
          | Some a -> a
          | None ->
              Array.make d.len
                (if elem_is_float d.elem then Value.VF 0.0 else Value.VI 0) ))
      kernel.bufs
  in
  let m = Interp.pure_machine ~bufs:arrays ?params () in
  Interp.run kernel m;
  arrays

let simple name ?(bufs = [ buf "out" I64 8 ]) ?(scratch = []) body =
  { name; bufs; scratch; body }

(* ---------------- validation ---------------- *)

let test_validate_ok () =
  let k = simple "ok" [ store "out" (i 0) (i 1) ] in
  checkb "valid" true (Ir.validate k = Ok ())

let test_validate_unknown_buffer () =
  let k = simple "bad" [ store "nope" (i 0) (i 1) ] in
  checkb "invalid" true (Result.is_error (Ir.validate k))

let test_validate_readonly_store () =
  let k =
    simple "ro" ~bufs:[ buf ~writable:false "out" I64 8 ] [ store "out" (i 0) (i 1) ]
  in
  checkb "invalid" true (Result.is_error (Ir.validate k))

let test_validate_duplicate_names () =
  let k = simple "dup" ~bufs:[ buf "x" I64 1; buf "x" I32 1 ] [] in
  checkb "invalid" true (Result.is_error (Ir.validate k))

let test_validate_scratch_buf_collision () =
  let k = simple "col" ~bufs:[ buf "x" I64 1 ] ~scratch:[ buf "x" I64 1 ] [] in
  checkb "invalid" true (Result.is_error (Ir.validate k))

let test_validate_memcpy_type_mismatch () =
  let k =
    simple "mc" ~bufs:[ buf "a" I64 4; buf "b" F32 4 ]
      [ memcpy ~dst:"a" ~src:"b" ~elems:(i 4) ]
  in
  checkb "invalid" true (Result.is_error (Ir.validate k))

let test_validate_scratch_store_ok () =
  let k =
    simple "ss" ~scratch:[ buf "tmp" I64 4 ] [ store "tmp" (i 0) (i 1) ]
  in
  checkb "scratch writable" true (Ir.validate k = Ok ())

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go j = j + n <= m && (String.sub s j n = sub || go (j + 1)) in
  n = 0 || go 0

let error_of k =
  match Ir.validate k with
  | Error msg -> msg
  | Ok () -> Alcotest.fail "expected a validation error"

let test_validate_messages_name_buffer_and_statement () =
  let ro =
    simple "ro" ~bufs:[ buf ~writable:false "out" I64 8 ]
      [ store "out" (i 3) (i 1) ]
  in
  let msg = error_of ro in
  checkb "names the buffer" true (contains ~sub:"read-only buffer out" msg);
  checkb "names the statement" true (contains ~sub:"out[3] <- 1" msg);
  let mc_ro =
    simple "mc_ro" ~bufs:[ buf ~writable:false "dst" I64 4; buf "src" I64 4 ]
      [ memcpy ~dst:"dst" ~src:"src" ~elems:(i 4) ]
  in
  let msg = error_of mc_ro in
  checkb "memcpy names buffer" true (contains ~sub:"read-only buffer dst" msg);
  checkb "memcpy names statement" true (contains ~sub:"memcpy dst <- src" msg)

let test_validate_memcpy_mismatch_names_types () =
  let k =
    simple "mc" ~bufs:[ buf "a" I64 4; buf "b" F32 4 ]
      [ memcpy ~dst:"a" ~src:"b" ~elems:(i 4) ]
  in
  let msg = error_of k in
  checkb "names both buffers and types" true
    (contains ~sub:"a is i64" msg && contains ~sub:"b is f32" msg);
  checkb "names the statement" true (contains ~sub:"memcpy a <- b" msg)

(* ---------------- semantics ---------------- *)

let test_int_ops () =
  let k =
    simple "ints"
      [
        store "out" (i 0) ((i 7 *: i 6) +: i 2);
        store "out" (i 1) (i 17 %: i 5);
        store "out" (i 2) (shl (i 3) (i 4));
        store "out" (i 3) (imin (i 9) (i 4));
        store "out" (i 4) (bxor (i 0xF0) (i 0xFF));
        store "out" (i 5) (i 10 -: i 25);
        store "out" (i 6) (shr (i (-16)) (i 2));
        store "out" (i 7) ((i 3 <: i 4) &&: (i 1 =: i 1));
      ]
  in
  let out = List.assoc "out" (run_pure k []) in
  let expect = [| 44; 2; 48; 4; 0x0F; -15; -4; 1 |] in
  Array.iteri (fun idx e -> checki "slot" e (Value.as_int out.(idx))) expect

let test_float_ops () =
  let k =
    simple "floats" ~bufs:[ buf "out" F64 6 ]
      [
        store "out" (i 0) (f 1.5 +.: f 2.25);
        store "out" (i 1) (f 3.0 *.: f 0.5);
        store "out" (i 2) (fsqrt (f 16.0));
        store "out" (i 3) (fmax (f 2.0) (f (-3.0)));
        store "out" (i 4) (i2f (i 42));
        store "out" (i 5) (fabs_ (f (-7.5)));
      ]
  in
  let out = List.assoc "out" (run_pure k []) in
  List.iteri
    (fun idx e -> checkf "slot" e (Value.as_float out.(idx)))
    [ 3.75; 1.5; 4.0; 2.0; 42.0; 7.5 ]

let test_for_loop () =
  let k =
    simple "sum"
      [
        let_ "acc" (i 0);
        for_ "j" (i 0) (i 10) [ let_ "acc" (v "acc" +: v "j") ];
        store "out" (i 0) (v "acc");
      ]
  in
  let out = List.assoc "out" (run_pure k []) in
  checki "sum 0..9" 45 (Value.as_int out.(0))

let test_for_empty_range () =
  let k =
    simple "empty"
      [
        let_ "acc" (i 99);
        for_ "j" (i 5) (i 5) [ let_ "acc" (i 0) ];
        store "out" (i 0) (v "acc");
      ]
  in
  checki "body never ran" 99 (Value.as_int (List.assoc "out" (run_pure k [])).(0))

let test_while_loop () =
  let k =
    simple "collatz"
      [
        let_ "n" (i 27);
        let_ "steps" (i 0);
        while_ (v "n" >: i 1)
          [
            if_ ((v "n" %: i 2) =: i 0)
              [ let_ "n" (v "n" /: i 2) ]
              [ let_ "n" ((v "n" *: i 3) +: i 1) ];
            let_ "steps" (v "steps" +: i 1);
          ];
        store "out" (i 0) (v "steps");
      ]
  in
  checki "collatz(27)" 111 (Value.as_int (List.assoc "out" (run_pure k [])).(0))

let test_fuel_exhaustion () =
  let k = simple "spin" [ while_ (i 1) [ let_ "x" (i 0) ] ] in
  try
    ignore (run_pure k []);
    Alcotest.fail "expected fuel exhaustion"
  with Interp.Fuel_exhausted -> ()

let test_params () =
  let k = simple "param" [ store "out" (i 0) (p "n" *: i 2) ] in
  let out = Array.make 8 (Value.VI 0) in
  let m = Interp.pure_machine ~bufs:[ ("out", out) ] ~params:[ ("n", Value.VI 21) ] () in
  Interp.run k m;
  checki "param used" 42 (Value.as_int out.(0))

let test_scratch_isolated_and_zeroed () =
  let k =
    simple "scratch" ~scratch:[ buf "tmp" I64 4 ]
      [
        store "out" (i 0) (ld "tmp" (i 2));  (* scratch starts zeroed *)
        store "tmp" (i 1) (i 5);
        store "out" (i 1) (ld "tmp" (i 1));
      ]
  in
  let out = List.assoc "out" (run_pure k []) in
  checki "zero init" 0 (Value.as_int out.(0));
  checki "scratch rw" 5 (Value.as_int out.(1))

let test_scratch_oob_aborts () =
  let k =
    simple "oob" ~scratch:[ buf "tmp" I64 4 ] [ store "out" (i 0) (ld "tmp" (i 9)) ]
  in
  try
    ignore (run_pure k []);
    Alcotest.fail "scratch OOB not caught"
  with Interp.Aborted _ -> ()

let test_memcpy_buffer_to_buffer () =
  let k =
    simple "copy" ~bufs:[ buf "src" I64 4; buf "out" I64 4 ]
      [ memcpy ~dst:"out" ~src:"src" ~elems:(i 4) ]
  in
  let src = Array.init 4 (fun j -> Value.VI (j * 11)) in
  let out = List.assoc "out" (run_pure k [ ("src", src) ]) in
  Array.iteri (fun j e -> checki "copied" (Value.as_int src.(j)) (Value.as_int e))
    out

let test_memcpy_through_scratch () =
  let k =
    simple "stage" ~bufs:[ buf "src" I64 4; buf "out" I64 4 ]
      ~scratch:[ buf "tmp" I64 4 ]
      [
        memcpy ~dst:"tmp" ~src:"src" ~elems:(i 4);
        store "tmp" (i 0) (ld "tmp" (i 0) +: i 1);
        memcpy ~dst:"out" ~src:"tmp" ~elems:(i 4);
      ]
  in
  let src = Array.init 4 (fun j -> Value.VI j) in
  let out = List.assoc "out" (run_pure k [ ("src", src) ]) in
  checki "staged and modified" 1 (Value.as_int out.(0));
  checki "rest copied" 3 (Value.as_int out.(3))

let test_division_by_zero_aborts () =
  let k = simple "div0" [ store "out" (i 0) (i 1 /: i 0) ] in
  try
    ignore (run_pure k []);
    Alcotest.fail "division by zero not caught"
  with Interp.Aborted _ -> ()

let test_contains_load () =
  checkb "plain index" false (contains_load (v "j" +: i 4));
  checkb "loaded index" true (contains_load (ld "a" (i 0) +: i 4));
  checkb "nested" true (contains_load (Un (Neg, Bin (Add, i 1, ld "a" (i 0)))))

let test_dependent_flag_passed () =
  let seen = ref [] in
  let k =
    simple "dep" ~bufs:[ buf "a" I64 8; buf "out" I64 8 ]
      [ store "out" (i 0) (ld "a" (ld "a" (i 0))); store "out" (i 1) (ld "a" (i 1)) ]
  in
  let arrays = [ ("a", Array.make 8 (Value.VI 0)); ("out", Array.make 8 (Value.VI 0)) ] in
  let pure = Interp.pure_machine ~bufs:arrays () in
  let m =
    { pure with
      Interp.load =
        (fun name ~idx ~dependent ->
          seen := dependent :: !seen;
          pure.Interp.load name ~idx ~dependent) }
  in
  Interp.run k m;
  (* Loads observed (reverse order): a[1] streaming, a[a[0]] dependent,
     a[0] streaming. *)
  Alcotest.(check (list bool)) "dependence" [ false; true; false ] !seen

let test_cost_classes () =
  checkb "mul is imul" true (Interp.cost_of_binop Mul = Interp.Imul);
  checkb "mod is idiv" true (Interp.cost_of_binop Mod = Interp.Idiv);
  checkb "fmul" true (Interp.cost_of_binop Fmul = Interp.Fmul);
  checkb "compare is alu" true (Interp.cost_of_binop Lt = Interp.Alu);
  checkb "fsqrt is special" true (Interp.cost_of_unop Fsqrt = Interp.Fspec)

let test_tick_counts () =
  let ticks = Hashtbl.create 8 in
  let k =
    simple "ticks"
      [ let_ "x" ((i 1 +: i 2) *: i 3); for_ "j" (i 0) (i 4) [ let_ "y" (v "j") ] ]
  in
  let pure = Interp.pure_machine ~bufs:[ ("out", Array.make 8 (Value.VI 0)) ] () in
  let m =
    { pure with
      Interp.tick =
        (fun c n ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt ticks c) in
          Hashtbl.replace ticks c (cur + n)) }
  in
  Interp.run k m;
  checki "one add" 1 (Option.value ~default:0 (Hashtbl.find_opt ticks Interp.Alu));
  checki "one mul" 1 (Option.value ~default:0 (Hashtbl.find_opt ticks Interp.Imul));
  checki "four back-edges" 4
    (Option.value ~default:0 (Hashtbl.find_opt ticks Interp.Branch))

let prop_interp_deterministic =
  QCheck.Test.make ~count:100 ~name:"interpretation is deterministic"
    QCheck.(small_list (int_bound 1000))
    (fun xs ->
      let n = max 1 (List.length xs) in
      let k =
        simple "det" ~bufs:[ buf "a" I64 n; buf "out" I64 n ]
          [
            for_ "j" (i 0) (i n)
              [ store "out" (v "j") ((ld "a" (v "j") *: i 3) +: v "j") ];
          ]
      in
      let a () = Array.of_list (List.map (fun x -> Value.VI x) (if xs = [] then [0] else xs)) in
      let r1 = List.assoc "out" (run_pure k [ ("a", a ()) ]) in
      let r2 = List.assoc "out" (run_pure k [ ("a", a ()) ]) in
      r1 = r2)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_interp_deterministic ]

let suite =
  [
    ("validate ok", `Quick, test_validate_ok);
    ("validate unknown buffer", `Quick, test_validate_unknown_buffer);
    ("validate read-only store", `Quick, test_validate_readonly_store);
    ("validate duplicate names", `Quick, test_validate_duplicate_names);
    ("validate scratch collision", `Quick, test_validate_scratch_buf_collision);
    ("validate memcpy types", `Quick, test_validate_memcpy_type_mismatch);
    ("validate messages name buffer and statement", `Quick,
     test_validate_messages_name_buffer_and_statement);
    ("validate memcpy mismatch names types", `Quick,
     test_validate_memcpy_mismatch_names_types);
    ("validate scratch store", `Quick, test_validate_scratch_store_ok);
    ("integer ops", `Quick, test_int_ops);
    ("float ops", `Quick, test_float_ops);
    ("for loop", `Quick, test_for_loop);
    ("for empty range", `Quick, test_for_empty_range);
    ("while loop", `Quick, test_while_loop);
    ("fuel exhaustion", `Quick, test_fuel_exhaustion);
    ("params", `Quick, test_params);
    ("scratch zeroed and isolated", `Quick, test_scratch_isolated_and_zeroed);
    ("scratch OOB aborts", `Quick, test_scratch_oob_aborts);
    ("memcpy buffer/buffer", `Quick, test_memcpy_buffer_to_buffer);
    ("memcpy through scratch", `Quick, test_memcpy_through_scratch);
    ("division by zero", `Quick, test_division_by_zero_aborts);
    ("contains_load", `Quick, test_contains_load);
    ("dependent flag", `Quick, test_dependent_flag_passed);
    ("cost classes", `Quick, test_cost_classes);
    ("tick counts", `Quick, test_tick_counts);
  ]
  @ qsuite
