(* The evaluation harness: regenerates every table and figure of the paper's
   §6 (Tables 1-3, Figures 7-12) on the simulated system, then runs one
   Bechamel micro-benchmark per experiment over its core data path.

   Output is plain text so runs can be diffed against EXPERIMENTS.md. *)

let section = Ccsim.Report.section

(* Worker domains for the embarrassingly parallel sections (set by --jobs;
   Ccsim.Pool semantics: 1 = serial, 0 = all cores).  Parallelism only
   changes wall-clock: every section draws its RNG picks serially before
   dispatch and prints from index-ordered results after the pool barrier,
   so stdout is identical at every value. *)
let jobs_ref = ref 1
let jobs () = !jobs_ref

(* Timing snapshot filled by the `parallel` section, reported by --json. *)
let parallel_snapshot : (int * float * float * float) option ref = ref None

(* ------------------------------------------------------------------ *)
(* Shared measurement store: each benchmark is executed once per system
   configuration and the tables below read from here.                  *)
(* ------------------------------------------------------------------ *)

type measurements = {
  bench : Machsuite.Bench_def.t;
  cpu1 : Soc.Run.result;          (* single task on the RV64 CPU *)
  accel1 : Soc.Run.result;        (* single unguarded accelerator task *)
  by_config : (string * Soc.Run.result) list;  (* the five configs, 8 tasks *)
}

let measure (bench : Machsuite.Bench_def.t) =
  let by_config =
    List.map
      (fun config ->
        let r = Soc.Run.run ~tasks:8 config bench in
        if not r.Soc.Run.correct then
          failwith
            (Printf.sprintf "%s mis-executed under %s" bench.name
               r.Soc.Run.config_label);
        (r.Soc.Run.config_label, r))
      Soc.Config.evaluated
  in
  {
    bench;
    cpu1 = Soc.Run.run ~tasks:1 Soc.Config.cpu bench;
    accel1 = Soc.Run.run ~tasks:1 Soc.Config.ccpu_accel bench;
    by_config;
  }

(* Computed on first use (sections that don't read it never pay for it) and
   at most once per process.  The cell is only touched from the main domain;
   the parallelism is inside Pool.map, over per-benchmark jobs that share
   nothing. *)
let store_cell : measurements list option ref = ref None

let store () =
  match !store_cell with
  | Some s -> s
  | None ->
      let j = Ccsim.Pool.resolve (jobs ()) in
      if j > 1 then
        Printf.eprintf "[bench] measuring %d benchmarks on %d domains...\n%!"
          (List.length Machsuite.Registry.all) j;
      let s =
        Ccsim.Pool.map ~jobs:j
          (fun b ->
            if j <= 1 then
              Printf.eprintf "[bench] measuring %s...\n%!"
                b.Machsuite.Bench_def.name;
            measure b)
          Machsuite.Registry.all
      in
      store_cell := Some s;
      s

let get label m = List.assoc label m.by_config
let base8 m = get "ccpu+accel" m
let cc8 m = get "ccpu+caccel" m

let ratio a b = float_of_int a /. float_of_int b

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  print_string (section "Table 1: traditional I/O protection methods vs CHERI");
  let rows =
    [
      [ "Spatial enforcement"; "no"; "yes"; "yes"; "yes" ];
      [ "- granularity (bytes)"; "-"; "1"; "4096"; "1" ];
      [ "Common object representation"; "no"; "no"; "no"; "yes" ];
      [ "Unforgeability"; "no"; "no"; "no"; "yes" ];
      [ "Scalability"; "yes"; "no"; "yes"; "semi" ];
      [ "Address translation"; "no"; "no"; "yes"; "optional" ];
      [ "Suitable for microcontrollers"; "yes"; "yes"; "no"; "yes" ];
      [ "Suitable for application processors"; "yes"; "no"; "yes"; "yes" ];
      [ "Model area (LUTs, this prototype)"; "0";
        string_of_int (Guard.Iopmp.as_guard (Guard.Iopmp.create ())).Guard.Iface.info.area_luts;
        string_of_int (Guard.Iommu.as_guard (Guard.Iommu.create ())).Guard.Iface.info.area_luts;
        string_of_int (Capchecker.Area.luts ~entries:256) ];
    ]
  in
  print_endline
    (Ccsim.Report.table
       ~header:[ "Property"; "No method"; "IOPMP"; "IOMMU"; "CHERI (CapChecker)" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Table 2                                                              *)
(* ------------------------------------------------------------------ *)

let table2 () =
  print_string
    (section "Table 2: benchmark buffer inventory (8 instances, 256 entries)");
  let rows =
    List.map
      (fun (b : Machsuite.Bench_def.t) ->
        let sizes = List.map Kernel.Ir.buf_decl_bytes b.kernel.Kernel.Ir.bufs in
        let count = 8 * List.length sizes in
        [
          b.name;
          string_of_int count;
          string_of_int (List.fold_left min max_int sizes);
          string_of_int (List.fold_left max 0 sizes);
        ])
      Machsuite.Registry.all
  in
  print_endline
    (Ccsim.Report.table ~header:[ "Benchmark"; "Buffers"; "Min B"; "Max B" ] rows)

(* ------------------------------------------------------------------ *)
(* Table 3                                                              *)
(* ------------------------------------------------------------------ *)

let table3 () =
  print_string (section "Table 3: CWE memory-weakness matrix (attack suite)");
  print_endline (Security.Matrix.render ~jobs:(jobs ()) ());
  let own, cross = Security.Attacks.coarse_object_id_forge () in
  Printf.printf
    "\nCoarse object-id forging: same-task object -> %s; cross-task -> %s\n"
    (Security.Attacks.outcome_to_string own)
    (Security.Attacks.outcome_to_string cross);
  print_endline "Capability forging through DMA writes over a tagged capability:";
  List.iter
    (fun (label, p) ->
      Printf.printf "  %-10s -> %s\n" label
        (Security.Attacks.outcome_to_string (Security.Attacks.forge_capability p)))
    Security.Matrix.schemes

(* ------------------------------------------------------------------ *)
(* Figure 7: accelerator speedup (single task, kernel offload time)     *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  print_string (section "Figure 7: accelerator speedup over the CPU (log scale)");
  let rows =
    List.map
      (fun m ->
        let speedup =
          ratio m.cpu1.Soc.Run.phases.Soc.Run.compute
            m.accel1.Soc.Run.phases.Soc.Run.compute
        in
        [
          m.bench.Machsuite.Bench_def.name;
          Ccsim.Report.fixed 2 speedup;
          Ccsim.Report.log_bar ~width:36 ~max:10_000.0 speedup;
        ])
      (store ())
  in
  print_endline
    (Ccsim.Report.table ~header:[ "Benchmark"; "Speedup"; "log10 0..10^4" ] rows)

(* ------------------------------------------------------------------ *)
(* Figure 8: CapChecker overhead on performance, power and area         *)
(* ------------------------------------------------------------------ *)

let offload_wall (r : Soc.Run.result) = r.Soc.Run.wall - r.Soc.Run.phases.Soc.Run.init

let fig8 () =
  print_string
    (section
       "Figure 8: overhead of adding the CapChecker (ccpu+caccel vs ccpu+accel, 8 tasks)");
  let perf = ref [] and offl = ref [] and area = ref [] and power = ref [] in
  let rows =
    List.map
      (fun m ->
        let base = base8 m and cc = cc8 m in
        let perf_o = ratio cc.Soc.Run.wall base.Soc.Run.wall -. 1.0 in
        let offl_o = ratio (offload_wall cc) (offload_wall base) -. 1.0 in
        let area_o = ratio cc.Soc.Run.area_luts base.Soc.Run.area_luts -. 1.0 in
        let power_o = (cc.Soc.Run.power_mw /. base.Soc.Run.power_mw) -. 1.0 in
        perf := (1.0 +. perf_o) :: !perf;
        offl := (1.0 +. offl_o) :: !offl;
        area := (1.0 +. area_o) :: !area;
        power := (1.0 +. power_o) :: !power;
        [
          m.bench.Machsuite.Bench_def.name;
          Ccsim.Report.pct perf_o;
          Ccsim.Report.pct offl_o;
          Ccsim.Report.pct area_o;
          Ccsim.Report.pct power_o;
        ])
      (store ())
  in
  let geo xs = Ccsim.Report.pct (Ccsim.Stats.geomean !xs -. 1.0) in
  let rows = rows @ [ [ "geomean"; geo perf; geo offl; geo area; geo power ] ] in
  print_endline
    (Ccsim.Report.table
       ~header:[ "Benchmark"; "Perf (wall)"; "Perf (offload)"; "Area"; "Power" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Figure 9: 20 systems with mixed accelerators                          *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  print_string (section "Figure 9: 20 mixed 8-accelerator systems");
  let rng = Ccsim.Rng.create 0x5EED in
  let all = Array.of_list Machsuite.Registry.all in
  (* Draw every system's composition serially before dispatch — the RNG is
     the only shared mutable state, so its stream must not depend on
     scheduling.  Each pool job then boots its own pair of systems. *)
  let systems =
    List.init 20 (fun _ ->
        Array.to_list (Array.init 8 (fun _ -> Ccsim.Rng.choose rng all)))
  in
  let measured =
    Ccsim.Pool.map ~jobs:(jobs ())
      (fun benches ->
        let base = Soc.Run.run_mixed Soc.Config.ccpu_accel benches in
        let cc = Soc.Run.run_mixed Soc.Config.ccpu_caccel benches in
        assert base.Soc.Run.correct;
        assert cc.Soc.Run.correct;
        (base.Soc.Run.wall, cc.Soc.Run.wall))
      systems
  in
  let overheads =
    List.mapi
      (fun idx ((base_wall, cc_wall), benches) ->
        let o = ratio cc_wall base_wall -. 1.0 in
        Printf.printf "  system %2d: wall %9d -> %9d  overhead %s  [%s]\n" (idx + 1)
          base_wall cc_wall (Ccsim.Report.pct o)
          (String.concat ","
             (List.map (fun (b : Machsuite.Bench_def.t) -> b.name) benches));
        1.0 +. o)
      (List.combine measured systems)
  in
  let homogeneous =
    List.map
      (fun m -> ratio (cc8 m).Soc.Run.wall (base8 m).Soc.Run.wall)
      (store ())
  in
  Printf.printf "mixed-system overhead geomean: %s (homogeneous geomean %s)\n"
    (Ccsim.Report.pct (Ccsim.Stats.geomean overheads -. 1.0))
    (Ccsim.Report.pct (Ccsim.Stats.geomean homogeneous -. 1.0))

(* ------------------------------------------------------------------ *)
(* Contention: event-driven core vs trace-then-replay on mixed systems   *)
(* ------------------------------------------------------------------ *)

let contention () =
  print_string
    (section
       "Contention: event-driven makespan vs legacy replay (mixed 8-accel \
        systems)");
  let rng = Ccsim.Rng.create 0x5EED in
  let all = Array.of_list Machsuite.Registry.all in
  let systems =
    List.init 8 (fun _ ->
        Array.to_list (Array.init 8 (fun _ -> Ccsim.Rng.choose rng all)))
  in
  let measured =
    Ccsim.Pool.map ~jobs:(jobs ())
      (fun benches ->
        let replay =
          Soc.Run.run_mixed ~engine:Soc.Run.Legacy_replay Soc.Config.ccpu_caccel
            benches
        in
        let event =
          Soc.Run.run_mixed ~engine:Soc.Run.Event_driven Soc.Config.ccpu_caccel
            benches
        in
        assert replay.Soc.Run.correct;
        assert event.Soc.Run.correct;
        ( replay.Soc.Run.phases.Soc.Run.compute,
          event.Soc.Run.phases.Soc.Run.compute ))
      systems
  in
  let deltas =
    List.mapi
      (fun idx ((rc, ec), benches) ->
        let delta = ratio ec rc -. 1.0 in
        Printf.printf
          "  system %2d: replay makespan %9d  event %9d  delta %s  [%s]\n"
          (idx + 1) rc ec (Ccsim.Report.pct delta)
          (String.concat ","
             (List.map (fun (b : Machsuite.Bench_def.t) -> b.name) benches));
        1.0 +. delta)
      (List.combine measured systems)
  in
  Printf.printf
    "event/replay makespan geomean: %s (round-robin arbitration vs global \
     earliest-ready FIFO)\n"
    (Ccsim.Report.pct (Ccsim.Stats.geomean deltas -. 1.0))

(* ------------------------------------------------------------------ *)
(* Figure 10: wall-clock breakdown over the five configurations          *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  print_string (section "Figure 10: wall-clock breakdown (cycles, 8 tasks)");
  List.iter
    (fun m ->
      Printf.printf "\n-- %s --\n" m.bench.Machsuite.Bench_def.name;
      let rows =
        List.map
          (fun (label, (r : Soc.Run.result)) ->
            [
              label;
              string_of_int r.Soc.Run.wall;
              string_of_int r.Soc.Run.phases.Soc.Run.alloc;
              string_of_int r.Soc.Run.phases.Soc.Run.init;
              string_of_int r.Soc.Run.phases.Soc.Run.compute;
              string_of_int r.Soc.Run.phases.Soc.Run.teardown;
              Ccsim.Report.fixed 3
                (ratio r.Soc.Run.wall (get "cpu" m).Soc.Run.wall);
            ])
          m.by_config
      in
      print_endline
        (Ccsim.Report.table
           ~header:
             [ "Config"; "Wall"; "Alloc"; "Init"; "Compute"; "Teardown"; "vs cpu" ]
           rows))
    (store ())

(* ------------------------------------------------------------------ *)
(* Figure 11: gemm_ncubed over degrees of parallelism                    *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  print_string (section "Figure 11: gemm_ncubed vs degree of parallelism");
  let bench = Machsuite.Registry.find "gemm_ncubed" in
  let sweep =
    Soc.Run.sweep_many ~jobs:(jobs ()) ~tasks_list:[ 1; 2; 4; 8; 16 ]
      [ (Soc.Config.cpu, None);
        (Soc.Config.ccpu_accel, Some 16);
        (Soc.Config.ccpu_caccel, Some 16) ]
      bench
  in
  let rows =
    List.map
      (fun (tasks, results) ->
        let cpu, base, cc =
          match results with
          | [ cpu; base; cc ] -> (cpu, base, cc)
          | _ -> assert false
        in
        let speedup = ratio cpu.Soc.Run.wall base.Soc.Run.wall in
        let overhead = ratio cc.Soc.Run.wall base.Soc.Run.wall -. 1.0 in
        [
          string_of_int tasks;
          string_of_int base.Soc.Run.wall;
          string_of_int cc.Soc.Run.wall;
          Ccsim.Report.fixed 1 speedup;
          Ccsim.Report.pct overhead;
        ])
      sweep
  in
  print_endline
    (Ccsim.Report.table
       ~header:
         [ "Parallel tasks"; "Wall (base)"; "Wall (cc)"; "Speedup vs cpu"; "Overhead" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Figure 12: IOMMU vs CapChecker entry counts                           *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  print_string
    (section "Figure 12: protection entries needed (8 instances; IOMMU page = 4 KiB)");
  let rows =
    List.map
      (fun (b : Machsuite.Bench_def.t) ->
        let bufs = b.kernel.Kernel.Ir.bufs in
        let cc = 8 * List.length bufs in
        let iommu =
          8
          * List.fold_left
              (fun acc d ->
                acc
                + Guard.Iommu.entries_for_range ~base:0
                    ~size:(Kernel.Ir.buf_decl_bytes d))
              0 bufs
        in
        [ b.name; string_of_int iommu; string_of_int cc;
          Ccsim.Report.fixed 1 (ratio iommu cc) ])
      Machsuite.Registry.all
  in
  print_endline
    (Ccsim.Report.table
       ~header:[ "Benchmark"; "IOMMU entries"; "CapChecker entries"; "IOMMU/CC" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                    *)
(* ------------------------------------------------------------------ *)

let ablation_placement () =
  print_string
    (section "Ablation A: one shared CapChecker vs one per accelerator (§5.2.1)");
  (* The paper argues that on an interconnect granting one access per cycle,
     distributing CapCheckers buys no bandwidth — only area: the per-request
     check is pipelined, so it is never the bottleneck, while each extra
     CapChecker duplicates the decoder, exception unit and MMIO port.  Our
     replay model makes the performance identity exact; what remains is the
     area cost of splitting the same total entry capacity N ways. *)
  let rows =
    List.map
      (fun entries ->
        let shared = Capchecker.Area.luts ~entries in
        let split = 8 * Capchecker.Area.luts ~entries:(entries / 8) in
        [ string_of_int entries; string_of_int shared; string_of_int split;
          Ccsim.Report.pct (ratio split shared -. 1.0) ])
      [ 64; 128; 256 ]
  in
  print_endline
    (Ccsim.Report.table
       ~header:
         [ "Total entries"; "Shared LUTs"; "8 per-accel LUTs"; "Area delta" ]
       rows);
  print_endline
    "(makespans are identical on a single-grant interconnect; distribution\n\
    \ only adds area — the prototype's single shared CapChecker, as deployed.\n\
    \ The `interconnect` section re-asks this on concurrent topologies,\n\
    \ where the answer flips past the crossover task count)"

let ablation_table_size () =
  print_string (section "Ablation B: capability-table sizing (§5.2.3)");
  let bench = Machsuite.Registry.find "md_grid" in  (* 7 buffers/task *)
  let rows =
    List.map
      (fun entries ->
        let fits =
          match Soc.Run.run ~tasks:8 ~cc_entries:entries Soc.Config.ccpu_caccel bench with
          | r -> if r.Soc.Run.correct then "yes" else "mis-executed"
          | exception Failure msg ->
              if String.length msg > 30 then "stalls (table full)" else msg
        in
        [ string_of_int entries;
          string_of_int (Capchecker.Area.luts ~entries);
          fits ])
      [ 32; 64; 128; 256 ]
  in
  print_endline
    (Ccsim.Report.table
       ~header:[ "Entries"; "LUTs"; "8x md_grid (56 caps) fits?" ] rows)

let ablation_cached () =
  print_string
    (section "Ablation C: cached CapChecker vs flat 256-entry table (§5.2.3)");
  let rows =
    List.map
      (fun name ->
        let bench = Machsuite.Registry.find name in
        let flat = Soc.Run.run ~tasks:8 Soc.Config.ccpu_caccel bench in
        let cached = Soc.Run.run ~tasks:8 Soc.Config.ccpu_caccel_cached bench in
        assert (flat.Soc.Run.correct && cached.Soc.Run.correct);
        [ name;
          string_of_int flat.Soc.Run.wall;
          string_of_int cached.Soc.Run.wall;
          Ccsim.Report.pct (ratio cached.Soc.Run.wall flat.Soc.Run.wall -. 1.0);
          string_of_int (Capchecker.Area.luts ~entries:256);
          string_of_int (600 + (130 * 16)) ])
      [ "md_knn"; "gemm_ncubed"; "spmv_crs"; "aes" ]
  in
  print_endline
    (Ccsim.Report.table
       ~header:
         [ "Benchmark"; "Flat wall"; "Cached wall"; "Perf delta"; "Flat LUTs";
           "Cached LUTs" ]
       rows);
  print_endline
    "(entry installs are cheaper through memory than over MMIO, and working\n\
    \ sets of <=7 capabilities per task fit the 16-line cache, so the cached\n\
    \ variant is competitive here at ~11x less area; interleaved traffic from\n\
    \ many concurrent tasks would thrash the cache and expose its 21-cycle\n\
    \ miss path, which is why the prototype keeps the flat table)"

let ablation_burst () =
  print_string (section "Ablation D: AXI maximum burst length");
  let bench = Machsuite.Registry.find "gemm_blocked" in
  let rows =
    List.map
      (fun max_burst ->
        let bus = { Bus.Params.default with Bus.Params.max_burst } in
        let r = Soc.Run.run ~tasks:8 ~bus Soc.Config.ccpu_caccel bench in
        [ string_of_int max_burst;
          string_of_int r.Soc.Run.phases.Soc.Run.compute;
          string_of_int r.Soc.Run.bus_beats ])
      [ 1; 4; 8; 16 ]
  in
  print_endline
    (Ccsim.Report.table
       ~header:[ "Max burst"; "gemm_blocked compute"; "Bus beats" ] rows)

let ablation_outstanding () =
  print_string
    (section "Ablation E: accelerator interface quality (outstanding reads)");
  let bench = Machsuite.Registry.find "stencil2d" in
  let rows =
    List.map
      (fun outstanding ->
        let directives =
          { bench.Machsuite.Bench_def.directives with
            Hls.Directives.max_outstanding = outstanding }
        in
        let bench = { bench with Machsuite.Bench_def.directives = directives } in
        let cpu = Soc.Run.run ~tasks:1 Soc.Config.cpu bench in
        let accel = Soc.Run.run ~tasks:1 Soc.Config.ccpu_accel bench in
        [ string_of_int outstanding;
          string_of_int accel.Soc.Run.phases.Soc.Run.compute;
          Ccsim.Report.fixed 2
            (ratio cpu.Soc.Run.phases.Soc.Run.compute
               accel.Soc.Run.phases.Soc.Run.compute) ])
      [ 1; 2; 4; 8 ]
  in
  print_endline
    (Ccsim.Report.table
       ~header:[ "Outstanding"; "stencil2d compute"; "Speedup vs cpu" ] rows);
  print_endline
    "(the paper's sub-1x benchmarks are exactly the ones synthesized with\n\
    \ shallow memory interfaces; a deeper interface flips the verdict)"

(* ------------------------------------------------------------------ *)
(* Observability: per-config event-derived metrics (lib/obs)            *)
(* ------------------------------------------------------------------ *)

let obs_section () =
  print_string
    (section "Observability: event-trace metrics per configuration (aes, 8 tasks)");
  let bench = Machsuite.Registry.find "aes" in
  (* Each job creates its own private sink (the pool's isolation rule);
     the rendered tables are printed after the barrier in config order. *)
  let reports =
    Ccsim.Pool.map ~jobs:(jobs ())
      (fun config ->
        let obs = Obs.Trace.create ~capacity:(1 lsl 18) () in
        let r = Soc.Run.run ~tasks:8 ~obs config bench in
        assert r.Soc.Run.correct;
        ( r.Soc.Run.config_label,
          r.Soc.Run.wall,
          Obs.Trace.length obs,
          Obs.Trace.dropped obs,
          Obs.Metrics.to_table (Obs.Metrics.of_trace obs) ))
      [ Soc.Config.ccpu_accel; Soc.Config.ccpu_caccel;
        Soc.Config.ccpu_caccel_coarse; Soc.Config.ccpu_caccel_cached ]
  in
  List.iter
    (fun (label, wall, events, dropped, table) ->
      Printf.printf "\n-- %s (wall %d cycles, %d events, %d dropped) --\n" label
        wall events dropped;
      print_string table)
    reports

(* ------------------------------------------------------------------ *)
(* Fault injection: recovered-vs-degraded under seeded fault plans      *)
(* ------------------------------------------------------------------ *)

let faults_section () =
  print_string
    (section
       "Fault injection: recovery under seeded fault plans (4 tasks, ccpu+caccel)");
  let benches = [ "aes"; "fft_transpose"; "sort_radix" ] in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let points =
    List.concat_map
      (fun name -> List.map (fun seed -> (name, seed)) seeds)
      benches
  in
  (* One (benchmark, seed) point per pool job; both the measured run and
     its determinism replay happen inside the job, on systems the job
     creates itself. *)
  let rows =
    Ccsim.Pool.map ~jobs:(jobs ())
      (fun (name, seed) ->
        let bench = Machsuite.Registry.find name in
        let faults = Fault.Plan.default ~seed in
        let r = Soc.Run.run ~tasks:4 ~faults Soc.Config.ccpu_caccel bench in
        (* The subsystem's core invariant: a faulted run either completes
           correctly (degraded tasks recomputed on the CPU) or it is a
           bug — never a silently wrong result. *)
        if not r.Soc.Run.correct then
          failwith
            (Printf.sprintf "%s seed %d: incorrect result under faults" name
               seed);
        let r2 = Soc.Run.run ~tasks:4 ~faults Soc.Config.ccpu_caccel bench in
        if r2 <> r then
          failwith
            (Printf.sprintf "%s seed %d: fault run not deterministic" name seed);
        let c = r.Soc.Run.faults in
        let injected =
          c.Fault.Injector.bus_stalls + c.Fault.Injector.bus_errors
          + c.Fault.Injector.guard_denials + c.Fault.Injector.table_fulls
          + c.Fault.Injector.cache_drops + c.Fault.Injector.alloc_fails
        in
        [ name; string_of_int seed; string_of_int injected;
          string_of_int c.Fault.Injector.retries;
          string_of_int r.Soc.Run.recovered;
          string_of_int (List.length r.Soc.Run.fallbacks);
          string_of_int r.Soc.Run.wall ])
      points
  in
  print_endline
    (Ccsim.Report.table
       ~header:
         [ "Benchmark"; "Seed"; "Injected"; "Retries"; "Recovered"; "Degraded";
           "Wall" ]
       rows);
  print_endline
    "(every run re-verified correct; each seeded plan replayed twice with\n\
    \ identical results — degraded tasks fall back to CPU re-execution)"

(* ------------------------------------------------------------------ *)
(* Cross-model validation: abstract CPU model vs the ISA-level core      *)
(* ------------------------------------------------------------------ *)

let validation () =
  print_string
    (section
       "Validation: abstract CPU model vs the instruction-level CHERI-RV64 core");
  let rows =
    List.map
      (fun name ->
        let bench = Machsuite.Registry.find name in
        let mem = Tagmem.Mem.create ~size:(4 lsl 20) in
        let heap = Tagmem.Alloc.create ~base:4096 ~size:((4 lsl 20) - 4096) in
        let layout =
          Memops.Layout.make
            (List.map
               (fun (decl : Kernel.Ir.buf_decl) ->
                 let bytes = Kernel.Ir.buf_decl_bytes decl in
                 let align, padded = Cheri.Bounds_enc.malloc_shape ~length:bytes in
                 { Memops.Layout.decl;
                   base = Tagmem.Alloc.malloc heap ~align padded })
               bench.kernel.Kernel.Ir.bufs)
        in
        let fill () =
          List.iter
            (fun (binding : Memops.Layout.binding) ->
              Memops.Layout.init_buffer mem binding (fun idx ->
                  bench.init binding.decl.Kernel.Ir.buf_name idx))
            (Memops.Layout.bindings layout)
        in
        fill ();
        let abstract =
          Cpu.Model.run (Cpu.Model.config Cpu.Model.Rv64) mem bench.kernel layout
            ~params:bench.params ()
        in
        fill ();
        let rv64 =
          (Riscv.Exec.run_kernel ~target:Riscv.Codegen.Rv64_target ~mem ~heap
             ~layout ~params:bench.params bench.kernel).Riscv.Exec.machine
        in
        fill ();
        let purecap =
          (Riscv.Exec.run_kernel ~target:Riscv.Codegen.Purecap_target ~mem ~heap
             ~layout ~params:bench.params bench.kernel).Riscv.Exec.machine
        in
        assert (rv64.Riscv.Machine.trap = None && purecap.Riscv.Machine.trap = None);
        [
          name;
          string_of_int abstract.Cpu.Model.cycles;
          string_of_int rv64.Riscv.Machine.cycles;
          Ccsim.Report.fixed 2
            (ratio rv64.Riscv.Machine.cycles abstract.Cpu.Model.cycles);
          string_of_int rv64.Riscv.Machine.instructions;
          Ccsim.Report.fixed 3
            (ratio purecap.Riscv.Machine.instructions rv64.Riscv.Machine.instructions);
        ])
      [ "aes"; "bfs_bulk"; "fft_transpose"; "md_knn"; "sort_radix"; "spmv_crs" ]
  in
  print_endline
    (Ccsim.Report.table
       ~header:
         [ "Benchmark"; "Model cycles"; "Core cycles"; "Core/model";
           "Core instrs"; "Purecap/rv64 instrs" ]
       rows);
  print_endline
    "(the unoptimized -O0-style code generator makes the core 2-4x slower\n\
    \ than the compiled-code-calibrated abstract model; functional results\n\
    \ are bit-identical across all three engines — asserted in the tests)"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per experiment's core data path        *)
(* ------------------------------------------------------------------ *)

let micro () =
  print_string (section "Bechamel micro-benchmarks (core data paths)");
  let open Bechamel in
  let checker = Capchecker.Checker.create Capchecker.Checker.Fine in
  let cap =
    match Cheri.Cap.set_bounds Cheri.Cap.root ~base:0x10000 ~length:4096 with
    | Ok c -> c
    | Error _ -> assert false
  in
  (match Capchecker.Checker.install checker ~task:1 ~obj:0 cap with
  | Capchecker.Table.Installed _ -> ()
  | Capchecker.Table.Table_full | Capchecker.Table.Rejected_untagged -> assert false);
  let req =
    { Guard.Iface.source = 1; port = Some 0; addr = 0x10100; size = 8;
      kind = Guard.Iface.Read }
  in
  let iommu = Guard.Iommu.create () in
  Guard.Iommu.map_range iommu ~source:1 ~base:0x10000 ~size:65536 ~read:true
    ~write:true;
  let iommu_guard = Guard.Iommu.as_guard iommu in
  let words = Cheri.Compress.encode cap in
  let mem = Tagmem.Mem.create ~size:65536 in
  let small_bench = Machsuite.Registry.find "aes" in
  let tests =
    [
      (* table1/table3: one protection adjudication *)
      Test.make ~name:"capchecker_check (tables 1,3)"
        (Staged.stage (fun () -> ignore (Capchecker.Checker.check checker req)));
      (* fig12: the IOMMU's page-walk path *)
      Test.make ~name:"iommu_check (fig 12)"
        (Staged.stage (fun () -> ignore (iommu_guard.Guard.Iface.check req)));
      (* table2 and the capability substrate: decode of the 128-bit format *)
      Test.make ~name:"cap_decode (table 2)"
        (Staged.stage (fun () -> ignore (Cheri.Compress.decode ~tag:true words)));
      (* fig7/8/10: tagged-memory access on the DMA path *)
      Test.make ~name:"tagmem_write (figs 7,8,10)"
        (Staged.stage (fun () -> Tagmem.Mem.write_u64 mem ~addr:4096 42L));
      (* fig9/11: a full small end-to-end system run *)
      Test.make ~name:"end_to_end_aes (figs 9,11)"
        (Staged.stage (fun () ->
             ignore (Soc.Run.run ~tasks:1 Soc.Config.ccpu_caccel small_bench)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
      Hashtbl.iter
        (fun name raw ->
          let est =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock raw
          in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Printf.printf "  %-32s %12.1f ns/run\n" name ns
          | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Static check elision: cycles the CapChecker never has to spend        *)
(* ------------------------------------------------------------------ *)

(* For every benchmark the interval analysis proves in bounds, re-run the
   CapChecker configuration with per-beat adjudication elided and report the
   checks (and wall cycles) that buys back.  Unproven kernels stay fully
   guarded — the adaptive part — and appear with zero savings. *)
let elision () =
  print_string
    (section "Elision: statically proven tasks skip per-beat adjudication");
  let rows =
    Ccsim.Pool.map ~jobs:(jobs ())
      (fun (bench : Machsuite.Bench_def.t) ->
        let proven =
          Analysis.proven
            (Analysis.analyze
               ~params:(Analysis.param_intervals bench.params)
               bench.kernel)
        in
        let guarded =
          Soc.Run.run ~tasks:8 ~elide:Soc.Run.Elide_differential
            Soc.Config.ccpu_caccel bench
        in
        let elided =
          Soc.Run.run ~tasks:8 ~elide:Soc.Run.Elide_on Soc.Config.ccpu_caccel
            bench
        in
        if not (guarded.Soc.Run.correct && elided.Soc.Run.correct) then
          failwith (bench.name ^ " mis-executed under elision");
        let saved = guarded.Soc.Run.wall - elided.Soc.Run.wall in
        [ bench.name;
          (if proven then "proven" else "unknown");
          string_of_int guarded.Soc.Run.checks;
          string_of_int elided.Soc.Run.elided_checks;
          string_of_int guarded.Soc.Run.wall;
          string_of_int elided.Soc.Run.wall;
          string_of_int saved ])
      Machsuite.Registry.all
  in
  print_endline
    (Ccsim.Report.table
       ~header:
         [ "Benchmark"; "Verdict"; "Checks (8x)"; "Elided (8x)";
           "Wall guarded"; "Wall elided"; "Cycles saved" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Parallel runner: wall-clock speedup of the domain pool               *)
(* ------------------------------------------------------------------ *)

(* Times the same 15-point gemm_ncubed sweep (5 task counts x 3 configs,
   the heaviest capsim workload) serially and on the pool, asserts the
   results are structurally identical — the determinism proof — and
   records the numbers for the --json snapshot.  The timings themselves
   are the one output that legitimately varies between runs.  Both legs
   run with the fast paths off: the caches would otherwise collapse the
   sweep to a handful of lookups and the "speedup" would measure domain
   spawn overhead instead of the pool. *)
let parallel_section () =
  print_string
    (section "Parallel runner: domain-pool speedup (gemm_ncubed sweep)");
  let bench = Machsuite.Registry.find "gemm_ncubed" in
  let columns =
    [ (Soc.Config.cpu, None);
      (Soc.Config.ccpu_accel, Some 16);
      (Soc.Config.ccpu_caccel, Some 16) ]
  in
  let tasks_list = [ 1; 2; 4; 8; 16 ] in
  let par_jobs =
    let j = Ccsim.Pool.resolve (jobs ()) in
    if j > 1 then j else Ccsim.Pool.recommended ()
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let saved_mode = Soc.Fastpath.current_mode () in
  let (serial, serial_s), (par, par_s) =
    Fun.protect
      ~finally:(fun () -> Soc.Fastpath.set_mode saved_mode)
      (fun () ->
        Soc.Fastpath.set_mode Soc.Fastpath.Interpretive;
        let serial =
          time (fun () -> Soc.Run.sweep_many ~jobs:1 ~tasks_list columns bench)
        in
        let par =
          time (fun () ->
              Soc.Run.sweep_many ~jobs:par_jobs ~tasks_list columns bench)
        in
        (serial, par))
  in
  if serial <> par then failwith "parallel sweep diverged from the serial run";
  let speedup = serial_s /. par_s in
  Printf.printf "  workload: 15 independent full-system runs (5 task counts x 3 configs)\n";
  Printf.printf "  serial   (--jobs 1):  %8.3f s\n" serial_s;
  Printf.printf "  parallel (--jobs %d):  %8.3f s\n" par_jobs par_s;
  Printf.printf "  speedup: %.2fx -- results structurally identical (asserted)\n"
    speedup;
  if par_jobs = 1 then
    print_endline
      "  (this host exposes a single core; run with --jobs 4 on a multicore\n\
      \   host for the real speedup)";
  parallel_snapshot := Some (par_jobs, serial_s, par_s, speedup)

(* Interconnect scaling: the placement question of Ablation A re-asked on
   topologies that can actually grant concurrently.  On the shared bus a
   single central CapChecker is free (one grant per cycle caps adjudications
   anyway — Ablation A); on a banked crossbar the serialized bus itself is
   the bottleneck, and past the crossover task count the distributed
   configurations win on makespan at a small area premium.  Every point
   verifies functionally and all four configurations must agree on verdicts
   (asserted below) — topology and checking placement move latency, never
   correctness. *)
let interconnect () =
  print_string
    (section
       "Interconnect: topology x checking placement (kmp, event engine)");
  let bench = Machsuite.Registry.find "kmp" in
  let tasks_list = [ 2; 4; 8; 16; 32; 64 ] in
  let columns =
    [ ("shared/central", Bus.Topology.Shared, Capchecker.Shim.Central);
      ("xbar4/central", Bus.Topology.Crossbar { banks = 4 },
       Capchecker.Shim.Central);
      ("xbar4/shim", Bus.Topology.Crossbar { banks = 4 },
       Capchecker.Shim.Distributed);
      ("hier4/shim", Bus.Topology.Hierarchical { clusters = 4 },
       Capchecker.Shim.Distributed) ]
  in
  let specs =
    List.concat_map
      (fun tasks ->
        List.map
          (fun (_, topology, checkers) ->
            Soc.Run.spec ~tasks ~instances:tasks ~cc_entries:512
              ~engine:Soc.Run.Event_driven ~topology ~checkers
              Soc.Config.ccpu_caccel bench)
          columns)
      tasks_list
  in
  let results = Soc.Run.run_many ~jobs:(jobs ()) specs in
  let rows_of_tasks =
    List.mapi
      (fun i tasks ->
        let row =
          List.filteri
            (fun j _ ->
              j / List.length columns = i)
            results
        in
        (tasks, row))
      tasks_list
  in
  let crossover = ref None in
  let rows =
    List.map
      (fun (tasks, row) ->
        let shared = List.hd row in
        (* Verdict parity across the row: same checks, same denial set, all
           correct — the differential contract of the distributed checkers. *)
        List.iter
          (fun (r : Soc.Run.result) ->
            if
              (not r.Soc.Run.correct)
              || r.Soc.Run.checks <> shared.Soc.Run.checks
              || r.Soc.Run.denials <> shared.Soc.Run.denials
              || r.Soc.Run.bus_beats <> shared.Soc.Run.bus_beats
            then failwith "interconnect: verdicts diverged across topologies")
          row;
        let xbar_shim = List.nth row 2 in
        if
          !crossover = None
          && xbar_shim.Soc.Run.wall < shared.Soc.Run.wall
        then crossover := Some tasks;
        string_of_int tasks
        :: List.concat_map
             (fun (r : Soc.Run.result) ->
               [ string_of_int r.Soc.Run.wall;
                 Ccsim.Report.fixed 2 (ratio shared.Soc.Run.wall r.Soc.Run.wall) ])
             row
        @ [ Ccsim.Report.pct
              (ratio xbar_shim.Soc.Run.area_luts shared.Soc.Run.area_luts -. 1.0)
          ])
      rows_of_tasks
  in
  let header =
    "tasks"
    :: List.concat_map (fun (n, _, _) -> [ n ^ " wall"; "x" ]) columns
    @ [ "shim area" ]
  in
  print_endline (Ccsim.Report.table ~header rows);
  (match !crossover with
  | Some t ->
      Printf.printf
        "  crossover: distributed checking on the crossbar first beats the\n\
        \  shared-bus central checker at %d tasks (below that, Ablation A's\n\
        \  'distribution buys only area' still holds)\n" t
  | None ->
      print_endline
        "  no crossover up to 64 tasks: the shared bus never saturated here")

(* Service mode: per-tenant tail latency and CapChecker table pressure as
   the tenant population sweeps past table capacity, with and without churn.
   The profile cache inside Serve.Loop means the kernel mix is profiled once
   for the whole sweep. *)
let serve_section () =
  print_string (section "serve: tenant sweep (p99 latency and table thrash)");
  Printf.printf
    "  256-entry table, 8 instances, %d requests per point, seed 42\n" 2500;
  let header =
    [ "tenants"; "churn%"; "admitted"; "rejects"; "cpu"; "p50"; "p99";
      "installs"; "evictions"; "conflicts"; "thrash" ]
  in
  let rows =
    List.concat_map
      (fun tenants ->
        List.map
          (fun churn ->
            let base = Serve.Loop.default_params ~seed:42 ~tenants ~requests:2500 () in
            let params =
              { base with
                Serve.Loop.sv_jobs = jobs ();
                sv_workload =
                  { base.Serve.Loop.sv_workload with Serve.Workload.churn_pct = churn } }
            in
            let r = Serve.Loop.run params in
            let tt = r.Serve.Report.rp_totals in
            let s = r.Serve.Report.rp_table in
            [ string_of_int tenants;
              string_of_int churn;
              string_of_int tt.Serve.Report.t_admitted;
              string_of_int
                (tt.Serve.Report.t_rejected_gone
                + tt.Serve.Report.t_rejected_inflight
                + tt.Serve.Report.t_rejected_table);
              string_of_int tt.Serve.Report.t_cpu_fallbacks;
              string_of_int r.Serve.Report.rp_p50;
              string_of_int r.Serve.Report.rp_p99;
              string_of_int s.Capchecker.Table.st_installs;
              string_of_int s.Capchecker.Table.st_evictions;
              string_of_int s.Capchecker.Table.st_conflicts;
              string_of_int (Serve.Report.thrash r) ])
          [ 0; 25 ])
      [ 64; 256; 1024 ]
  in
  print_string (Ccsim.Report.table ~header rows);
  (* Same tenant sweep with the service fabric re-run on a 4-bank crossbar:
     banked grants shorten the adjudication queue behind each request, so the
     tail (p99) moves while the verdicts and table dynamics stay put.  The
     delta column is crossbar p99 relative to the shared-bus p99 above. *)
  print_string
    (section "serve: shared bus vs 4-bank crossbar (p99 delta, churn 0)");
  let topo_header =
    [ "tenants"; "shared p50"; "shared p99"; "xbar4 p50"; "xbar4 p99";
      "p99 delta" ]
  in
  let topo_rows =
    List.map
      (fun tenants ->
        let report topology =
          let base =
            Serve.Loop.default_params ~seed:42 ~tenants ~requests:2500 ()
          in
          Serve.Loop.run
            { base with Serve.Loop.sv_jobs = jobs (); sv_topology = topology }
        in
        let shared = report Bus.Topology.Shared in
        let xbar = report (Bus.Topology.Crossbar { banks = 4 }) in
        [ string_of_int tenants;
          string_of_int shared.Serve.Report.rp_p50;
          string_of_int shared.Serve.Report.rp_p99;
          string_of_int xbar.Serve.Report.rp_p50;
          string_of_int xbar.Serve.Report.rp_p99;
          Ccsim.Report.pct
            (ratio xbar.Serve.Report.rp_p99 shared.Serve.Report.rp_p99 -. 1.0)
        ])
      [ 64; 256; 1024 ]
  in
  print_string (Ccsim.Report.table ~header:topo_header topo_rows)

let sections =
  [
    ("table1", table1); ("table2", table2); ("table3", table3);
    ("fig7", fig7); ("fig8", fig8); ("fig9", fig9); ("contention", contention);
    ("fig10", fig10);
    ("fig11", fig11); ("fig12", fig12);
    ("ablation_placement", ablation_placement);
    ("ablation_table_size", ablation_table_size);
    ("ablation_cached", ablation_cached);
    ("ablation_burst", ablation_burst);
    ("ablation_outstanding", ablation_outstanding);
    ("elision", elision);
    ("obs", obs_section);
    ("faults", faults_section);
    ("validation", validation);
    ("parallel", parallel_section);
    ("interconnect", interconnect);
    ("serve", serve_section);
    ("micro", micro);
  ]

(* With no positional arguments, regenerate everything; otherwise run the
   named sections only — positionally (`bench/main.exe fig8 fig12`) or as a
   comma list (`--sections fig7,fig9,contention`; `--only` is an alias).
   `--list-sections` prints the section names and exits.  `--jobs N`
   parallelizes the independent simulations inside each section (0 = all
   cores) without changing any printed table; `--json` emits a
   machine-readable timing snapshot on stdout (section prints go to stderr
   instead), whose `baseline` field names the committed BENCH file the CI
   regression gate compares against (`--baseline FILE` overrides it). *)
let () =
  let split_sections value =
    List.filter (fun s -> s <> "") (String.split_on_char ',' value)
  in
  let rec parse args names jobs_n json baseline =
    match args with
    | [] -> (List.rev names, jobs_n, json, baseline)
    | "--json" :: rest -> parse rest names jobs_n true baseline
    | "--list-sections" :: _ ->
        List.iter (fun (name, _) -> print_endline name) sections;
        exit 0
    | ("--sections" | "--only") :: value :: rest ->
        parse rest
          (List.fold_left (fun acc s -> s :: acc) names (split_sections value))
          jobs_n json baseline
    | [ ("--sections" | "--only") ] ->
        prerr_endline "bench: --sections expects a comma-separated list";
        exit 2
    | "--baseline" :: value :: rest -> parse rest names jobs_n json value
    | [ "--baseline" ] ->
        prerr_endline "bench: --baseline expects a file name";
        exit 2
    | "--jobs" :: value :: rest -> (
        match int_of_string_opt value with
        | Some n when n >= 0 -> parse rest names n json baseline
        | Some _ | None ->
            prerr_endline "bench: --jobs expects a non-negative integer";
            exit 2)
    | [ "--jobs" ] ->
        prerr_endline "bench: --jobs expects a value";
        exit 2
    | "--event-ff" :: value :: rest -> (
        match Ccsim.Eventff.mode_of_string value with
        | Some m ->
            Ccsim.Eventff.set_mode m;
            parse rest names jobs_n json baseline
        | None ->
            prerr_endline "bench: --event-ff expects on, off or diff";
            exit 2)
    | [ "--event-ff" ] ->
        prerr_endline "bench: --event-ff expects a mode";
        exit 2
    | "--cache-dir" :: value :: rest ->
        Soc.Runcache.set_dir (Some value);
        parse rest names jobs_n json baseline
    | [ "--cache-dir" ] ->
        prerr_endline "bench: --cache-dir expects a directory";
        exit 2
    | name :: rest -> parse rest (name :: names) jobs_n json baseline
  in
  let names, jobs_n, json, baseline =
    parse (List.tl (Array.to_list Sys.argv)) [] 1 false "BENCH_5.json"
  in
  jobs_ref := jobs_n;
  let requested = match names with [] -> List.map fst sections | ns -> ns in
  List.iter
    (fun name ->
      if not (List.mem_assoc name sections) then begin
        Printf.eprintf "unknown section %s (known: %s)\n" name
          (String.concat " " (List.map fst sections));
        exit 1
      end)
    requested;
  (* Under --json only the snapshot may reach stdout: route the sections'
     human-readable prints to stderr for the duration. *)
  let saved_stdout =
    if json then begin
      flush stdout;
      let fd = Unix.dup Unix.stdout in
      Unix.dup2 Unix.stderr Unix.stdout;
      Some fd
    end
    else None
  in
  let timings =
    List.map
      (fun name ->
        let t0 = Unix.gettimeofday () in
        (List.assoc name sections) ();
        flush stdout;
        (name, Unix.gettimeofday () -. t0))
      requested
  in
  match saved_stdout with
  | None -> print_newline ()
  | Some fd ->
      flush stdout;
      Unix.dup2 fd Unix.stdout;
      Unix.close fd;
      let open Obs.Json in
      let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 timings in
      let parallel =
        match !parallel_snapshot with
        | None -> Null
        | Some (pj, serial_s, par_s, speedup) ->
            Obj
              [
                ("jobs", Int pj);
                ("serial_seconds", Float serial_s);
                ("parallel_seconds", Float par_s);
                ("speedup", Float speedup);
              ]
      in
      print_endline
        (to_string
           (Obj
              [
                ("schema", String "bench-snapshot/1");
                ("jobs", Int jobs_n);
                ( "sections",
                  List
                    (List.map
                       (fun (name, seconds) ->
                         Obj
                           [
                             ("name", String name);
                             ("seconds", Float seconds);
                           ])
                       timings) );
                ("total_seconds", Float total);
                ("parallel", parallel);
                ("baseline", String baseline);
              ]))
