test/test_cpu.ml: Alcotest Cheri Cpu Kernel List Memops Tagmem
