test/test_soc.ml: Alcotest Capchecker Cpu Guard List Machsuite Soc
