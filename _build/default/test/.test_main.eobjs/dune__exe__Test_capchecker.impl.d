test/test_capchecker.ml: Alcotest Area Bus Capchecker Checker Cheri Guard List QCheck QCheck_alcotest Table
