test/test_claims.ml: Alcotest Ccsim Guard Kernel List Machsuite Printf Soc
