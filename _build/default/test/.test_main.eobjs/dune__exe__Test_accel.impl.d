test/test_accel.ml: Accel Alcotest Bus Capchecker Cheri Guard Hls Kernel List Memops QCheck QCheck_alcotest Tagmem
