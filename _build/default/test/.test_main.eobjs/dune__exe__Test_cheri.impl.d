test/test_cheri.ml: Alcotest Bounds_enc Cap Cheri Compress List Perms QCheck QCheck_alcotest
