test/test_riscv.ml: Alcotest Array Cheri Kernel List Machsuite Memops Riscv String Tagmem
