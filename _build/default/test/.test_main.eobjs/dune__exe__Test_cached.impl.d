test/test_cached.ml: Alcotest Area Cached Capchecker Checker Cheri Guard Result Tagmem
