test/test_bus.ml: Addr_map Alcotest Bus Fabric List Params QCheck QCheck_alcotest
