test/test_driver.ml: Alcotest Bus Capchecker Cheri Driver Guard Kernel List Memops Result Tagmem
