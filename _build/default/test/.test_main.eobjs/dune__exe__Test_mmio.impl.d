test/test_mmio.ml: Alcotest Capchecker Checker Cheri Guard Int64 Mmio Table
