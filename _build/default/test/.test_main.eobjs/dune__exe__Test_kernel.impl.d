test/test_kernel.ml: Alcotest Array Hashtbl Interp Ir Kernel List Option QCheck QCheck_alcotest Result Value
