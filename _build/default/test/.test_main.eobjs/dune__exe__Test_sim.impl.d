test/test_sim.ml: Alcotest Array Ccsim Clock List QCheck QCheck_alcotest Report Rng Stats String
