test/test_machsuite.ml: Alcotest Array Capchecker Hls Kernel List Machsuite
