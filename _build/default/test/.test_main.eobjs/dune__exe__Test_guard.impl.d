test/test_guard.ml: Alcotest Guard Iface Iommu Iopmp List QCheck QCheck_alcotest Result Snpu
