test/test_differential.ml: Alcotest Array Ccsim Cheri Cpu Kernel List Memops Printf Riscv Tagmem
