test/test_security.ml: Alcotest Attacks Bytes Cheri Driver List Matrix Memops Printf Scenario Security Soc Tagmem
