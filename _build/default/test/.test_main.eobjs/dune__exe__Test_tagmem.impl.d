test/test_tagmem.ml: Alcotest Alloc Bytes Char Cheri List Mem QCheck QCheck_alcotest Tagmem
