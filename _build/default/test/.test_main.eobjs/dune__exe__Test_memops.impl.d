test/test_memops.ml: Alcotest Array Cheri Kernel List Memops Tagmem
