test/test_revoker.ml: Alcotest Capchecker Cheri Driver Guard Revoker Tagmem
