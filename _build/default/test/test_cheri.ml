(* Unit and property tests for the CHERI capability substrate: permissions,
   compressed-bounds arithmetic, capability derivation monotonicity and the
   128-bit encode/decode round trip. *)

open Cheri

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Cap.error_to_string e)

let err_exn name = function
  | Ok _ -> Alcotest.failf "%s: expected an error" name
  | Error e -> e

(* ---------------- Perms ---------------- *)

let test_perms_mem () =
  checkb "load in data_rw" true (Perms.mem Perms.load Perms.data_rw);
  checkb "store in data_rw" true (Perms.mem Perms.store Perms.data_rw);
  checkb "store not in data_ro" false (Perms.mem Perms.store Perms.data_ro);
  checkb "store_cap not in data_rw" false (Perms.mem Perms.store_cap Perms.data_rw);
  checkb "none subset of all" true (Perms.subset Perms.none Perms.all);
  checkb "all not subset of none" false (Perms.subset Perms.all Perms.none)

let test_perms_ops () =
  let u = Perms.union Perms.load Perms.store in
  checkb "union has both" true (Perms.mem Perms.load u && Perms.mem Perms.store u);
  checki "inter with none" 0 (Perms.to_mask (Perms.inter u Perms.none));
  let d = Perms.diff u Perms.store in
  checkb "diff removes" false (Perms.mem Perms.store d);
  checkb "diff keeps" true (Perms.mem Perms.load d)

let test_perms_mask_roundtrip () =
  for mask = 0 to Perms.to_mask Perms.all do
    checki "roundtrip" mask (Perms.to_mask (Perms.of_mask mask))
  done;
  Alcotest.check_raises "of_mask out of range"
    (Invalid_argument "Perms.of_mask: out of range") (fun () ->
      ignore (Perms.of_mask (1 lsl 12)))

let test_perms_to_string () =
  check Alcotest.string "empty" "-" (Perms.to_string Perms.none);
  check Alcotest.string "rw" "GRW" (Perms.to_string Perms.data_rw)

(* ---------------- Bounds_enc ---------------- *)

let test_round_small_exact () =
  (* Anything below 2^mantissa bytes at byte granularity is exact. *)
  List.iter
    (fun (base, len) ->
      let b', t' = Bounds_enc.round ~base ~top:(base + len) in
      checki "base unchanged" base b';
      checki "top unchanged" (base + len) t')
    [ (0, 0); (0, 1); (17, 3); (4096, 8191); (123, 16000); (1, 16382) ]

let test_round_large_covers () =
  let base = 1_000_003 and top = 1_000_003 + 1_000_000 in
  let b', t' = Bounds_enc.round ~base ~top in
  checkb "covers base" true (b' <= base);
  checkb "covers top" true (t' >= top);
  checkb "rounded is exact" true (Bounds_enc.is_exact ~base:b' ~top:t')

let test_exponent_zero_for_small () =
  checki "small exponent" 0 (Bounds_enc.exponent_for ~base:0 ~top:16383);
  checkb "bigger needs exponent" true (Bounds_enc.exponent_for ~base:0 ~top:70000 > 0)

let test_malloc_shape () =
  let align, padded = Bounds_enc.malloc_shape ~length:66564 in
  checkb "align pow2" true (align land (align - 1) = 0);
  checkb "padded covers" true (padded >= 66564);
  checki "padded aligned" 0 (padded mod align);
  (* A base aligned to [align] must give exact bounds. *)
  checkb "shape exact" true (Bounds_enc.is_exact ~base:(3 * align) ~top:((3 * align) + padded))

let test_decode_roundtrip_manual () =
  let base = 0x12340 and top = 0x12340 + 4096 in
  let e, b_low, len_m = Bounds_enc.encode_bounds ~base ~top in
  List.iter
    (fun addr ->
      let b', t' = Bounds_enc.decode_bounds ~addr ~e ~b_low ~len_m in
      checki "base" base b';
      checki "top" top t')
    [ base; base + 1; base + 2048; top - 1; top ]

let prop_round_covers =
  QCheck.Test.make ~count:500 ~name:"round covers the request"
    QCheck.(pair (int_bound 1_000_000) (int_bound 5_000_000))
    (fun (base, len) ->
      let b', t' = Bounds_enc.round ~base ~top:(base + len) in
      b' <= base && t' >= base + len && Bounds_enc.is_exact ~base:b' ~top:t')

let prop_bounds_roundtrip =
  QCheck.Test.make ~count:500 ~name:"encode/decode bounds roundtrip (addr within)"
    QCheck.(triple (int_bound 2_000_000) (int_bound 3_000_000) (int_bound 10_000))
    (fun (base, len, off) ->
      let b', t' = Bounds_enc.round ~base ~top:(base + len) in
      let e, b_low, len_m = Bounds_enc.encode_bounds ~base:b' ~top:t' in
      let addr = b' + (off mod (t' - b' + 1)) in
      Bounds_enc.decode_bounds ~addr ~e ~b_low ~len_m = (b', t'))

(* ---------------- Cap derivation ---------------- *)

let test_root_shape () =
  checkb "root tagged" true Cap.root.tag;
  checkb "root unsealed" false (Cap.is_sealed Cap.root);
  checki "root base" 0 Cap.root.base;
  checki "root length" Cap.max_address (Cap.length Cap.root)

let test_set_bounds_basic () =
  let c = ok_exn (Cap.set_bounds Cap.root ~base:0x1000 ~length:256) in
  checki "base" 0x1000 c.Cap.base;
  checki "top" 0x1100 c.Cap.top;
  checki "addr at base" 0x1000 c.Cap.addr;
  checkb "still tagged" true c.Cap.tag

let test_set_bounds_monotonic () =
  let parent = ok_exn (Cap.set_bounds Cap.root ~base:0x1000 ~length:256) in
  let _child = ok_exn (Cap.set_bounds parent ~base:0x1040 ~length:64) in
  (match err_exn "grow" (Cap.set_bounds parent ~base:0x0800 ~length:64) with
  | Cap.Monotonicity_violation -> ()
  | e -> Alcotest.failf "wrong error: %s" (Cap.error_to_string e));
  match err_exn "past top" (Cap.set_bounds parent ~base:0x10c0 ~length:128) with
  | Cap.Monotonicity_violation -> ()
  | e -> Alcotest.failf "wrong error: %s" (Cap.error_to_string e)

let test_set_bounds_untagged_rejected () =
  let dead = Cap.clear_tag Cap.root in
  match err_exn "untagged" (Cap.set_bounds dead ~base:0 ~length:16) with
  | Cap.Tag_violation -> ()
  | e -> Alcotest.failf "wrong error: %s" (Cap.error_to_string e)

let test_set_bounds_exact_rejects_unrepresentable () =
  match Cap.set_bounds_exact Cap.root ~base:1 ~length:1_000_001 with
  | Error Cap.Representability_error -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Cap.error_to_string e)
  | Ok _ -> Alcotest.fail "expected representability error"

let test_set_address () =
  let c = ok_exn (Cap.set_bounds Cap.root ~base:0x1000 ~length:256) in
  let inside = Cap.set_address c 0x1080 in
  checkb "inside keeps tag" true inside.Cap.tag;
  checki "cursor moved" 0x1080 inside.Cap.addr;
  let outside = Cap.set_address c 0x2000 in
  checkb "outside clears tag" false outside.Cap.tag

let test_with_perms_only_reduces () =
  let c = ok_exn (Cap.set_bounds Cap.root ~base:0 ~length:64) in
  let ro = ok_exn (Cap.with_perms c Perms.data_ro) in
  checkb "no store" false (Perms.mem Perms.store ro.Cap.perms);
  (* Attempting to regain a permission silently yields the intersection. *)
  let again = ok_exn (Cap.with_perms ro Perms.data_rw) in
  checkb "store not regained" false (Perms.mem Perms.store again.Cap.perms)

let test_seal_unseal () =
  let sealer =
    Cap.set_address (ok_exn (Cap.set_bounds Cap.root ~base:0x40 ~length:16)) 0x42
  in
  let c = ok_exn (Cap.set_bounds Cap.root ~base:0x1000 ~length:64) in
  let sealed = ok_exn (Cap.seal_with c ~sealer) in
  checkb "sealed" true (Cap.is_sealed sealed);
  checki "otype" 0x42 sealed.Cap.otype;
  (match Cap.access_ok sealed ~addr:0x1000 ~size:8 Cap.Read with
  | Error Cap.Seal_violation -> ()
  | Ok () | Error _ -> Alcotest.fail "sealed capability dereferenced");
  let unsealed = ok_exn (Cap.unseal_with sealed ~unsealer:sealer) in
  checkb "unsealed" false (Cap.is_sealed unsealed);
  (* Wrong otype cannot unseal. *)
  let wrong = Cap.set_address sealer 0x43 in
  match Cap.unseal_with sealed ~unsealer:wrong with
  | Error Cap.Seal_violation -> ()
  | Ok _ | Error _ -> Alcotest.fail "unsealed with wrong otype"

let test_access_ok_matrix () =
  let c =
    ok_exn
      (Cap.with_perms (ok_exn (Cap.set_bounds Cap.root ~base:0x100 ~length:64))
         Perms.data_ro)
  in
  checkb "read in bounds" true (Cap.access_ok c ~addr:0x100 ~size:8 Cap.Read = Ok ());
  checkb "read whole" true (Cap.access_ok c ~addr:0x100 ~size:64 Cap.Read = Ok ());
  (match Cap.access_ok c ~addr:0x13c ~size:8 Cap.Read with
  | Error (Cap.Bounds_violation _) -> ()
  | Ok () | Error _ -> Alcotest.fail "straddling access allowed");
  (match Cap.access_ok c ~addr:0xf8 ~size:8 Cap.Read with
  | Error (Cap.Bounds_violation _) -> ()
  | Ok () | Error _ -> Alcotest.fail "underflow allowed");
  (match Cap.access_ok c ~addr:0x100 ~size:8 Cap.Write with
  | Error (Cap.Perm_violation _) -> ()
  | Ok () | Error _ -> Alcotest.fail "write through read-only");
  match Cap.access_ok (Cap.clear_tag c) ~addr:0x100 ~size:8 Cap.Read with
  | Error Cap.Tag_violation -> ()
  | Ok () | Error _ -> Alcotest.fail "untagged dereference"

let test_derives () =
  let parent = ok_exn (Cap.set_bounds Cap.root ~base:0x1000 ~length:4096) in
  let child = ok_exn (Cap.set_bounds parent ~base:0x1100 ~length:64) in
  checkb "child derives" true (Cap.derives ~parent child);
  checkb "parent does not derive from child" false (Cap.derives ~parent:child parent)

let gen_cap =
  QCheck.Gen.(
    let* base = int_bound 1_000_000 in
    let* len = int_bound 2_000_000 in
    let* mask = int_bound (Perms.to_mask Perms.all) in
    let cap =
      match Cap.set_bounds Cap.root ~base ~length:len with
      | Ok c -> c
      | Error _ -> Cap.root
    in
    match Cap.with_perms cap (Perms.of_mask mask) with
    | Ok c -> return c
    | Error _ -> return cap)

let arb_cap = QCheck.make ~print:Cap.to_string gen_cap

let prop_derivation_monotonic =
  QCheck.Test.make ~count:500 ~name:"set_bounds never grows authority"
    QCheck.(pair arb_cap (pair (int_bound 2_000_000) (int_bound 100_000)))
    (fun (parent, (base, len)) ->
      match Cap.set_bounds parent ~base ~length:len with
      | Ok child -> Cap.derives ~parent child
      | Error _ -> true)

let prop_compress_roundtrip =
  QCheck.Test.make ~count:500 ~name:"128-bit encode/decode roundtrip"
    QCheck.(pair arb_cap (int_bound 1_000_000))
    (fun (cap, off) ->
      let cap = Cap.set_address cap (cap.Cap.base + (off mod (Cap.length cap + 1))) in
      let decoded = Compress.decode ~tag:cap.Cap.tag (Compress.encode cap) in
      Cap.equal decoded cap)

let prop_access_ok_model =
  QCheck.Test.make ~count:500 ~name:"access_ok agrees with the naive model"
    QCheck.(pair arb_cap (pair (int_bound 3_000_000) (int_bound 64)))
    (fun (cap, (addr, size)) ->
      let expected =
        cap.Cap.tag
        && (not (Cap.is_sealed cap))
        && Perms.mem Perms.load cap.Cap.perms
        && addr >= cap.Cap.base
        && addr + size <= cap.Cap.top
      in
      (Cap.access_ok cap ~addr ~size Cap.Read = Ok ()) = expected)

let test_compress_zero () =
  let z = Compress.zero in
  checkb "zero equals itself" true (Compress.equal_words z z);
  let decoded = Compress.decode ~tag:false z in
  checkb "zero decodes untagged" false decoded.Cap.tag

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_round_covers; prop_bounds_roundtrip; prop_derivation_monotonic;
    prop_compress_roundtrip; prop_access_ok_model ]

let suite =
  [
    ("perms membership", `Quick, test_perms_mem);
    ("perms set ops", `Quick, test_perms_ops);
    ("perms mask roundtrip", `Quick, test_perms_mask_roundtrip);
    ("perms to_string", `Quick, test_perms_to_string);
    ("round: small exact", `Quick, test_round_small_exact);
    ("round: large covers", `Quick, test_round_large_covers);
    ("exponent selection", `Quick, test_exponent_zero_for_small);
    ("malloc shape", `Quick, test_malloc_shape);
    ("bounds decode roundtrip", `Quick, test_decode_roundtrip_manual);
    ("root capability", `Quick, test_root_shape);
    ("set_bounds basic", `Quick, test_set_bounds_basic);
    ("set_bounds monotonic", `Quick, test_set_bounds_monotonic);
    ("set_bounds untagged", `Quick, test_set_bounds_untagged_rejected);
    ("set_bounds_exact unrepresentable", `Quick, test_set_bounds_exact_rejects_unrepresentable);
    ("set_address in/out of bounds", `Quick, test_set_address);
    ("with_perms reduces only", `Quick, test_with_perms_only_reduces);
    ("seal and unseal", `Quick, test_seal_unseal);
    ("access_ok matrix", `Quick, test_access_ok_matrix);
    ("derives", `Quick, test_derives);
    ("compress zero", `Quick, test_compress_zero);
  ]
  @ qsuite
