(* Interconnect model: beat math, FIFO arbitration, address map. *)

open Bus

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_beats_for () =
  let p = Params.default in
  checki "1 byte = 1 beat" 1 (Params.beats_for p 1);
  checki "8 bytes = 1 beat" 1 (Params.beats_for p 8);
  checki "9 bytes = 2 beats" 2 (Params.beats_for p 9);
  checki "0 bytes still 1 beat" 1 (Params.beats_for p 0);
  checki "128 bytes = 16 beats" 16 (Params.beats_for p 128)

let ap = Params.default.Params.addr_phase

let test_fabric_single_request () =
  let f = Fabric.create Params.default in
  let g = Fabric.request f ~at:10 ~beats:4 ~is_read:true ~extra_latency:0 in
  checki "granted when requested" 10 g.Fabric.granted_at;
  checki "data done after address phase + beats" (10 + ap + 4) g.Fabric.data_done;
  checki "completed adds read latency"
    (10 + ap + 4 + Params.default.Params.read_latency) g.Fabric.completed

let test_fabric_serializes () =
  let f = Fabric.create Params.default in
  let g1 = Fabric.request f ~at:0 ~beats:8 ~is_read:true ~extra_latency:0 in
  let g2 = Fabric.request f ~at:0 ~beats:8 ~is_read:true ~extra_latency:0 in
  checki "first immediate" 0 g1.Fabric.granted_at;
  checki "second waits for the bus" (ap + 8) g2.Fabric.granted_at;
  checki "beats accounted" 16 (Fabric.total_beats f)

let test_fabric_idle_gap () =
  let f = Fabric.create Params.default in
  let _ = Fabric.request f ~at:0 ~beats:2 ~is_read:false ~extra_latency:0 in
  let g = Fabric.request f ~at:100 ~beats:2 ~is_read:false ~extra_latency:0 in
  checki "no queueing after idle gap" 100 g.Fabric.granted_at

let test_fabric_extra_latency () =
  let f = Fabric.create Params.default in
  let g0 = Fabric.request f ~at:0 ~beats:1 ~is_read:true ~extra_latency:0 in
  Fabric.reset f;
  let g1 = Fabric.request f ~at:0 ~beats:1 ~is_read:true ~extra_latency:3 in
  checki "latency added to completion only" (g0.Fabric.completed + 3)
    g1.Fabric.completed;
  checki "data phase unchanged" g0.Fabric.data_done g1.Fabric.data_done

let test_fabric_write_latency () =
  let f = Fabric.create Params.default in
  let g = Fabric.request f ~at:0 ~beats:1 ~is_read:false ~extra_latency:0 in
  checki "write completion" (ap + 1 + Params.default.Params.write_latency)
    g.Fabric.completed

let test_addr_map () =
  checkb "dram holds heap" true
    (Addr_map.in_dram ~addr:Addr_map.heap_base ~size:4096);
  checkb "ctrl regs outside dram" false
    (Addr_map.in_dram ~addr:Addr_map.accel_ctrl_base ~size:8);
  let r0 = Addr_map.ctrl_reg ~instance:0 ~reg:0 in
  let r1 = Addr_map.ctrl_reg ~instance:1 ~reg:0 in
  checki "instance stride" Addr_map.accel_ctrl_stride (r1 - r0);
  checki "reg stride" 8 (Addr_map.ctrl_reg ~instance:0 ~reg:1 - r0)

let prop_fifo_monotonic =
  QCheck.Test.make ~count:200 ~name:"grants never move backwards"
    QCheck.(small_list (pair (int_bound 50) (int_range 1 16)))
    (fun reqs ->
      let f = Fabric.create Params.default in
      let now = ref 0 in
      List.for_all
        (fun (delay, beats) ->
          now := !now + delay;
          let g = Fabric.request f ~at:!now ~beats ~is_read:true ~extra_latency:0 in
          g.Fabric.granted_at >= !now
          && g.Fabric.data_done = g.Fabric.granted_at + ap + beats)
        reqs)

let prop_beats_conserved =
  QCheck.Test.make ~count:200 ~name:"total beats equals sum of requests"
    QCheck.(small_list (int_range 1 16))
    (fun beats_list ->
      let f = Fabric.create Params.default in
      List.iter
        (fun b -> ignore (Fabric.request f ~at:0 ~beats:b ~is_read:true ~extra_latency:0))
        beats_list;
      Fabric.total_beats f = List.fold_left ( + ) 0 beats_list)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_fifo_monotonic; prop_beats_conserved ]

let suite =
  [
    ("beats_for", `Quick, test_beats_for);
    ("single request", `Quick, test_fabric_single_request);
    ("bus serializes", `Quick, test_fabric_serializes);
    ("idle gap", `Quick, test_fabric_idle_gap);
    ("extra latency", `Quick, test_fabric_extra_latency);
    ("write latency", `Quick, test_fabric_write_latency);
    ("address map", `Quick, test_addr_map);
  ]
  @ qsuite
