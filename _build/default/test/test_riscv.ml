(* The instruction-level CPU core and the kernel compiler.

   The headline test compiles every MachSuite benchmark for both targets,
   runs it on the core, and compares every output buffer bit-for-bit against
   the reference interpreter — the ISA simulator, the code generator and the
   abstract interpreter must be three views of one semantics. *)

open Kernel.Ir

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let fresh_env () =
  let mem = Tagmem.Mem.create ~size:(4 lsl 20) in
  let heap = Tagmem.Alloc.create ~base:4096 ~size:((4 lsl 20) - 4096) in
  (mem, heap)

let layout_for heap (kernel : Kernel.Ir.t) =
  Memops.Layout.make
    (List.map
       (fun (decl : buf_decl) ->
         let bytes = buf_decl_bytes decl in
         let align, padded = Cheri.Bounds_enc.malloc_shape ~length:bytes in
         { Memops.Layout.decl; base = Tagmem.Alloc.malloc heap ~align padded })
       kernel.bufs)

(* ---------------- machine primitives ---------------- *)

let run_insns ?(mode = Riscv.Machine.Rv64) ?setup insns =
  let mem, _ = fresh_env () in
  let m = Riscv.Machine.create mode mem in
  (match setup with Some f -> f m mem | None -> ());
  (m, Riscv.Machine.run m (Array.of_list (insns @ [ Riscv.Insn.Halt ])))

let test_machine_alu () =
  let m, r =
    run_insns
      [ Riscv.Insn.Li (5, 21); Riscv.Insn.Li (6, 2); Riscv.Insn.Mul (7, 5, 6);
        Riscv.Insn.Addi (8, 7, -2) ]
  in
  checkb "clean" true (r.Riscv.Machine.trap = None);
  checki "mul" 42 (Riscv.Machine.xreg m 7);
  checki "addi" 40 (Riscv.Machine.xreg m 8);
  checki "instructions counted" 5 r.Riscv.Machine.instructions

let test_machine_x0_hardwired () =
  let m, _ = run_insns [ Riscv.Insn.Li (0, 99) ] in
  checki "x0 still zero" 0 (Riscv.Machine.xreg m 0)

let test_machine_branches () =
  (* A count-to-ten loop. *)
  let m, r =
    run_insns
      [
        Riscv.Insn.Li (5, 0);                (* 0: i = 0 *)
        Riscv.Insn.Li (6, 10);               (* 1: n = 10 *)
        Riscv.Insn.Bge (5, 6, 5);            (* 2: while i < n *)
        Riscv.Insn.Addi (5, 5, 1);           (* 3: i++ *)
        Riscv.Insn.Jal 2;                    (* 4: loop *)
      ]
  in
  checkb "clean" true (r.Riscv.Machine.trap = None);
  checki "loop ran" 10 (Riscv.Machine.xreg m 5)

let test_machine_memory () =
  let mem, _ = fresh_env () in
  let m = Riscv.Machine.create Riscv.Machine.Rv64 mem in
  let r =
    Riscv.Machine.run m
      [| Riscv.Insn.Li (5, 8192); Riscv.Insn.Li (6, -7);
         Riscv.Insn.Sx (Riscv.Insn.W, 6, 5, 0);
         Riscv.Insn.Lx (Riscv.Insn.W, 7, 5, 0); Riscv.Insn.Halt |]
  in
  checkb "clean" true (r.Riscv.Machine.trap = None);
  checki "w store/load sign-extends" (-7) (Riscv.Machine.xreg m 7);
  checkb "cache was exercised" true (r.Riscv.Machine.cache_misses > 0)

let test_machine_div_by_zero_traps () =
  let _, r = run_insns [ Riscv.Insn.Li (5, 1); Riscv.Insn.Div (6, 5, 0) ] in
  checkb "trapped" true (r.Riscv.Machine.trap <> None)

let test_machine_bus_error () =
  let _, r =
    run_insns [ Riscv.Insn.Li (5, 1 lsl 40); Riscv.Insn.Lx (Riscv.Insn.D, 6, 5, 0) ]
  in
  match r.Riscv.Machine.trap with
  | Some t -> checkb "bus error" true (String.length t.Riscv.Machine.reason > 0)
  | None -> Alcotest.fail "expected a trap"

let test_machine_purecap_checks () =
  let mem, _ = fresh_env () in
  let m = Riscv.Machine.create Riscv.Machine.Purecap mem in
  let cap =
    match Cheri.Cap.set_bounds Cheri.Cap.root ~base:8192 ~length:64 with
    | Ok c -> c
    | Error _ -> assert false
  in
  Riscv.Machine.set_creg m 10 cap;
  let r =
    Riscv.Machine.run m
      [| Riscv.Insn.Li (5, 123);
         Riscv.Insn.Csx (Riscv.Insn.D, 5, 10, 0);
         Riscv.Insn.Clx (Riscv.Insn.D, 6, 10, 0);
         Riscv.Insn.Csx (Riscv.Insn.D, 5, 10, 64);  (* one past the bounds *)
         Riscv.Insn.Halt |]
  in
  checki "in-bounds store/load" 123 (Riscv.Machine.xreg m 6);
  (match r.Riscv.Machine.trap with
  | Some t ->
      checkb "CHERI trap" true
        (String.length t.Riscv.Machine.reason >= 5
        && String.sub t.Riscv.Machine.reason 0 5 = "CHERI")
  | None -> Alcotest.fail "out-of-bounds store did not trap");
  checki "trap pc points at the faulting store" 3
    (match r.Riscv.Machine.trap with Some t -> t.Riscv.Machine.pc | None -> -1)

let test_machine_cap_insn_in_rv64_traps () =
  let _, r = run_insns [ Riscv.Insn.Cmove (1, 2) ] in
  checkb "trapped" true (r.Riscv.Machine.trap <> None)

let test_machine_fuel () =
  let _, r = run_insns ~setup:(fun _ _ -> ()) [ Riscv.Insn.Jal 0 ] in
  ignore r;
  let mem, _ = fresh_env () in
  let m = Riscv.Machine.create Riscv.Machine.Rv64 mem in
  let r = Riscv.Machine.run ~fuel:100 m [| Riscv.Insn.Jal 0 |] in
  match r.Riscv.Machine.trap with
  | Some t -> Alcotest.(check string) "fuel trap" "out of fuel" t.Riscv.Machine.reason
  | None -> Alcotest.fail "expected fuel exhaustion"

(* ---------------- codegen + end-to-end vs the reference ---------------- *)

let run_and_compare ~target (bench : Machsuite.Bench_def.t) =
  let mem, heap = fresh_env () in
  let layout = layout_for heap bench.kernel in
  List.iter
    (fun (binding : Memops.Layout.binding) ->
      Memops.Layout.init_buffer mem binding (fun idx ->
          bench.init binding.decl.buf_name idx))
    (Memops.Layout.bindings layout);
  let { Riscv.Exec.machine; program } =
    Riscv.Exec.run_kernel ~target ~mem ~heap ~layout ~params:bench.params
      bench.kernel
  in
  (match machine.Riscv.Machine.trap with
  | None -> ()
  | Some t ->
      Alcotest.failf "%s trapped at %d: %s (insn %s)" bench.name t.Riscv.Machine.pc
        t.Riscv.Machine.reason
        (Riscv.Insn.to_string program.Riscv.Codegen.insns.(min t.Riscv.Machine.pc
                                                       (Array.length program.Riscv.Codegen.insns - 1))));
  let golden = Machsuite.Bench_def.golden bench in
  List.iter
    (fun name ->
      let binding = Memops.Layout.find layout name in
      let actual = Memops.Layout.read_buffer mem binding in
      let expected = List.assoc name golden in
      if not (Array.for_all2 Kernel.Value.equal actual expected) then
        Alcotest.failf "%s: buffer %s differs from the reference" bench.name name)
    bench.output_bufs;
  machine

let fast_benchmarks =
  [ "aes"; "bfs_bulk"; "bfs_queue"; "fft_strided"; "fft_transpose"; "md_knn";
    "sort_radix"; "sort_merge"; "spmv_crs"; "spmv_ellpack"; "nw"; "md_grid" ]

let heavy_benchmarks = [ "gemm_ncubed"; "gemm_blocked"; "kmp"; "stencil2d";
                         "stencil3d"; "backprop"; "viterbi" ]

let test_rv64_matches_reference_fast () =
  List.iter
    (fun name ->
      ignore
        (run_and_compare ~target:Riscv.Codegen.Rv64_target (Machsuite.Registry.find name)))
    fast_benchmarks

let test_purecap_matches_reference_fast () =
  List.iter
    (fun name ->
      ignore
        (run_and_compare ~target:Riscv.Codegen.Purecap_target (Machsuite.Registry.find name)))
    fast_benchmarks

let test_rv64_matches_reference_heavy () =
  List.iter
    (fun name ->
      ignore
        (run_and_compare ~target:Riscv.Codegen.Rv64_target (Machsuite.Registry.find name)))
    heavy_benchmarks

let test_purecap_matches_reference_heavy () =
  List.iter
    (fun name ->
      ignore
        (run_and_compare ~target:Riscv.Codegen.Purecap_target (Machsuite.Registry.find name)))
    heavy_benchmarks

let test_all_benchmarks_compile () =
  List.iter
    (fun (b : Machsuite.Bench_def.t) ->
      let mem, heap = fresh_env () in
      ignore mem;
      let layout = layout_for heap b.kernel in
      List.iter
        (fun target ->
          let p =
            Riscv.Codegen.compile ~target ~layout ~scratch_base:(1 lsl 19)
              ~params:b.params b.kernel
          in
          checkb (b.name ^ " nonempty") true (Array.length p.Riscv.Codegen.insns > 1))
        [ Riscv.Codegen.Rv64_target; Riscv.Codegen.Purecap_target ])
    Machsuite.Registry.all

let test_purecap_oob_kernel_traps () =
  (* The whole point: the same buggy kernel that the RV64 build silently
     executes traps under purecap. *)
  let buggy =
    { name = "buggy"; bufs = [ buf "a" I64 8 ]; scratch = [];
      body = [ store "a" (i 600) (i 1) ] }
  in
  let run target =
    let mem, heap = fresh_env () in
    let layout = layout_for heap buggy in
    (Riscv.Exec.run_kernel ~target ~mem ~heap ~layout buggy).Riscv.Exec.machine
  in
  let rv64 = run Riscv.Codegen.Rv64_target in
  checkb "rv64 executes silently" true (rv64.Riscv.Machine.trap = None);
  let purecap = run Riscv.Codegen.Purecap_target in
  checkb "purecap traps" true (purecap.Riscv.Machine.trap <> None)

let test_purecap_readonly_cap_traps () =
  (* A store through a capability lacking the store permission traps in the
     core, whatever the program believes about its buffers. *)
  let mem, _ = fresh_env () in
  let m = Riscv.Machine.create Riscv.Machine.Purecap mem in
  let ro =
    match Cheri.Cap.set_bounds Cheri.Cap.root ~base:8192 ~length:64 with
    | Ok c -> (
        match Cheri.Cap.with_perms c Cheri.Perms.data_ro with
        | Ok c -> c
        | Error _ -> assert false)
    | Error _ -> assert false
  in
  Riscv.Machine.set_creg m 10 ro;
  let r =
    Riscv.Machine.run m
      [| Riscv.Insn.Li (5, 1); Riscv.Insn.Csx (Riscv.Insn.D, 5, 10, 0);
         Riscv.Insn.Halt |]
  in
  checkb "write through RO capability traps" true (r.Riscv.Machine.trap <> None);
  (* Reads through the same capability are fine. *)
  let r2 =
    Riscv.Machine.run m [| Riscv.Insn.Clx (Riscv.Insn.D, 6, 10, 0); Riscv.Insn.Halt |]
  in
  checkb "read still allowed" true (r2.Riscv.Machine.trap = None)

let test_codegen_rejects_type_confusion () =
  let k =
    { name = "confused"; bufs = [ buf "a" I64 8 ]; scratch = [];
      body = [ let_ "x" (i 1); let_ "x" (f 2.0) ] }
  in
  let mem, heap = fresh_env () in
  ignore mem;
  let layout = layout_for heap k in
  checkb "rejected" true
    (try
       ignore
         (Riscv.Codegen.compile ~target:Riscv.Codegen.Rv64_target ~layout
            ~scratch_base:0 ~params:[] k);
       false
     with Riscv.Codegen.Codegen_error _ -> true)

let test_disassembly_readable () =
  let k =
    { name = "tiny"; bufs = [ buf "a" I64 4 ]; scratch = [];
      body = [ store "a" (i 0) (i 42) ] }
  in
  let mem, heap = fresh_env () in
  ignore mem;
  let layout = layout_for heap k in
  let p =
    Riscv.Codegen.compile ~target:Riscv.Codegen.Rv64_target ~layout ~scratch_base:0
      ~params:[] k
  in
  let text = Riscv.Codegen.disassemble p in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "mentions li" true (contains text "li");
  checkb "mentions the store" true (contains text "sd");
  checkb "ends with halt" true (contains text "halt")

let test_instruction_counts_track_work () =
  let small = Machsuite.Registry.find "aes" in
  let m = run_and_compare ~target:Riscv.Codegen.Rv64_target small in
  (* aes does 64 iterations x 10 rounds x 16 words of ~10 instructions. *)
  checkb "plausible dynamic count" true
    (m.Riscv.Machine.instructions > 100_000 && m.Riscv.Machine.instructions < 3_000_000)

let test_purecap_uses_capability_instructions () =
  let bench = Machsuite.Registry.find "fft_transpose" in
  let mem, heap = fresh_env () in
  ignore mem;
  let layout = layout_for heap bench.kernel in
  let count target =
    let p =
      Riscv.Codegen.compile ~target ~layout ~scratch_base:(1 lsl 19)
        ~params:bench.params bench.kernel
    in
    Array.fold_left
      (fun acc insn ->
        match insn with
        | Riscv.Insn.Cincoffset _ | Riscv.Insn.Clx _ | Riscv.Insn.Csx _
        | Riscv.Insn.Cflx _ | Riscv.Insn.Cfsx _ -> acc + 1
        | _ -> acc)
      0 p.Riscv.Codegen.insns
  in
  checkb "purecap emits capability memory ops" true
    (count Riscv.Codegen.Purecap_target > 0);
  checki "rv64 emits none" 0 (count Riscv.Codegen.Rv64_target)

let suite =
  [
    ("machine alu", `Quick, test_machine_alu);
    ("machine x0", `Quick, test_machine_x0_hardwired);
    ("machine branches", `Quick, test_machine_branches);
    ("machine memory", `Quick, test_machine_memory);
    ("machine div by zero", `Quick, test_machine_div_by_zero_traps);
    ("machine bus error", `Quick, test_machine_bus_error);
    ("machine purecap checks", `Quick, test_machine_purecap_checks);
    ("machine cap insn in rv64", `Quick, test_machine_cap_insn_in_rv64_traps);
    ("machine fuel", `Quick, test_machine_fuel);
    ("all benchmarks compile", `Quick, test_all_benchmarks_compile);
    ("rv64 == reference (fast set)", `Slow, test_rv64_matches_reference_fast);
    ("purecap == reference (fast set)", `Slow, test_purecap_matches_reference_fast);
    ("rv64 == reference (heavy set)", `Slow, test_rv64_matches_reference_heavy);
    ("purecap == reference (heavy set)", `Slow, test_purecap_matches_reference_heavy);
    ("purecap traps on OOB kernel", `Quick, test_purecap_oob_kernel_traps);
    ("purecap traps on RO cap", `Quick, test_purecap_readonly_cap_traps);
    ("codegen rejects type confusion", `Quick, test_codegen_rejects_type_confusion);
    ("disassembly", `Quick, test_disassembly_readable);
    ("instruction counts", `Quick, test_instruction_counts_track_work);
    ("purecap capability instructions", `Quick, test_purecap_uses_capability_instructions);
  ]
