(* The CapChecker's register window: decode, staging semantics, status and
   exception drain, and — crucially — the impossibility of staging a valid
   capability through raw (tag-less) writes. *)

open Capchecker

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check64 = Alcotest.(check int64)

let cap base len =
  match Cheri.Cap.set_bounds Cheri.Cap.root ~base ~length:len with
  | Ok c -> c
  | Error e -> Alcotest.failf "cap: %s" (Cheri.Cap.error_to_string e)

let make () =
  let checker = Checker.create ~entries:8 Checker.Fine in
  (checker, Mmio.create checker)

let test_key_roundtrip () =
  let key = Mmio.key_of ~task:7 ~obj:3 in
  let task, obj = Mmio.split_key key in
  checki "task" 7 task;
  checki "obj" 3 obj

let test_install_sequence () =
  let checker, m = make () in
  (match Mmio.install m ~task:1 ~obj:0 (cap 0x1000 64) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  checki "entry live" 1 (Table.live_count (Checker.table checker));
  checkb "lookup works" true (Table.lookup (Checker.table checker) ~task:1 ~obj:0 <> None)

let test_manual_register_sequence () =
  let checker, m = make () in
  Mmio.stage_cap m (cap 0x2000 128);
  Mmio.write m ~offset:Mmio.reg_key (Mmio.key_of ~task:2 ~obj:5);
  Mmio.write m ~offset:Mmio.reg_command Mmio.cmd_install;
  checkb "not rejected" false (Mmio.last_rejected m);
  match Table.lookup (Checker.table checker) ~task:2 ~obj:5 with
  | Some e -> checki "bounds made it through" 0x2000 e.Table.cap.Cheri.Cap.base
  | None -> Alcotest.fail "entry missing"

let test_raw_writes_cannot_forge () =
  let checker, m = make () in
  (* An attacker-controlled agent writes the exact bit pattern of a valid
     capability through the window, including the tag register. *)
  let words = Cheri.Compress.encode (cap 0x0 4096) in
  Mmio.write m ~offset:Mmio.reg_cap_lo words.Cheri.Compress.lo;
  Mmio.write m ~offset:Mmio.reg_cap_hi words.Cheri.Compress.hi;
  Mmio.write m ~offset:Mmio.reg_cap_tag 1L;
  Mmio.write m ~offset:Mmio.reg_key (Mmio.key_of ~task:0 ~obj:0);
  Mmio.write m ~offset:Mmio.reg_command Mmio.cmd_install;
  checkb "install rejected" true (Mmio.last_rejected m);
  checki "nothing installed" 0 (Table.live_count (Checker.table checker))

let test_stage_raw_is_untagged () =
  let checker, m = make () in
  let words = Cheri.Compress.encode (cap 0x0 4096) in
  Mmio.stage_raw m ~lo:words.Cheri.Compress.lo ~hi:words.Cheri.Compress.hi;
  Mmio.write m ~offset:Mmio.reg_command Mmio.cmd_install;
  checkb "rejected" true (Mmio.last_rejected m);
  checki "still empty" 0 (Table.live_count (Checker.table checker))

let test_raw_overwrite_after_stage_clears_tag () =
  let checker, m = make () in
  Mmio.stage_cap m (cap 0x1000 64);
  (* Touching either data register after a tagged stage invalidates it —
     half-forged hybrids are impossible. *)
  Mmio.write m ~offset:Mmio.reg_cap_hi 0xFFL;
  Mmio.write m ~offset:Mmio.reg_key (Mmio.key_of ~task:0 ~obj:0);
  Mmio.write m ~offset:Mmio.reg_command Mmio.cmd_install;
  checkb "rejected" true (Mmio.last_rejected m);
  checki "empty" 0 (Table.live_count (Checker.table checker))

let test_evict_commands () =
  let checker, m = make () in
  (match Mmio.install m ~task:1 ~obj:0 (cap 0x1000 64) with Ok () -> () | Error e -> Alcotest.fail e);
  (match Mmio.install m ~task:1 ~obj:1 (cap 0x2000 64) with Ok () -> () | Error e -> Alcotest.fail e);
  Mmio.write m ~offset:Mmio.reg_key (Mmio.key_of ~task:1 ~obj:0);
  Mmio.write m ~offset:Mmio.reg_command Mmio.cmd_evict;
  checki "one left" 1 (Table.live_count (Checker.table checker));
  Mmio.write m ~offset:Mmio.reg_key (Mmio.key_of ~task:1 ~obj:0);
  Mmio.write m ~offset:Mmio.reg_command Mmio.cmd_evict_task;
  checki "all gone" 0 (Table.live_count (Checker.table checker))

let test_status_register () =
  let checker, m = make () in
  (match Mmio.install m ~task:1 ~obj:0 (cap 0x1000 64) with Ok () -> () | Error e -> Alcotest.fail e);
  let status = Mmio.read m ~offset:Mmio.reg_status in
  check64 "no flag, one live entry" 0x1_0000_0000L status;
  (* Trip the checker. *)
  ignore
    (Checker.check checker
       { Guard.Iface.source = 1; port = Some 0; addr = 0; size = 8;
         kind = Guard.Iface.Read });
  let status = Mmio.read m ~offset:Mmio.reg_status in
  check64 "flag set" 1L (Int64.logand status 1L);
  Mmio.write m ~offset:Mmio.reg_command Mmio.cmd_clear_flag;
  check64 "flag cleared" 0L (Int64.logand (Mmio.read m ~offset:Mmio.reg_status) 1L)

let test_exception_key_drain () =
  let checker, m = make () in
  (match Mmio.install m ~task:3 ~obj:2 (cap 0x1000 64) with Ok () -> () | Error e -> Alcotest.fail e);
  ignore
    (Checker.check checker
       { Guard.Iface.source = 3; port = Some 2; addr = 0; size = 8;
         kind = Guard.Iface.Read });
  let key = Mmio.read m ~offset:Mmio.reg_exc_key in
  let task, obj = Mmio.split_key key in
  checki "task traced" 3 task;
  checki "object traced" 2 obj;
  check64 "drained" (-1L) (Mmio.read m ~offset:Mmio.reg_exc_key)

let test_bad_offsets () =
  let _, m = make () in
  Alcotest.check_raises "misaligned"
    (Invalid_argument "Capchecker.Mmio: bad register offset 0x4") (fun () ->
      Mmio.write m ~offset:4 0L);
  Alcotest.check_raises "out of window"
    (Invalid_argument "Capchecker.Mmio: bad register offset 0x1000") (fun () ->
      ignore (Mmio.read m ~offset:4096))

let test_unknown_registers_ignored () =
  let checker, m = make () in
  Mmio.write m ~offset:0x100 42L;
  check64 "reads as zero" 0L (Mmio.read m ~offset:0x100);
  checki "no effect" 0 (Table.live_count (Checker.table checker))

let suite =
  [
    ("key roundtrip", `Quick, test_key_roundtrip);
    ("install sequence", `Quick, test_install_sequence);
    ("manual register sequence", `Quick, test_manual_register_sequence);
    ("raw writes cannot forge", `Quick, test_raw_writes_cannot_forge);
    ("stage_raw untagged", `Quick, test_stage_raw_is_untagged);
    ("raw overwrite detags stage", `Quick, test_raw_overwrite_after_stage_clears_tag);
    ("evict commands", `Quick, test_evict_commands);
    ("status register", `Quick, test_status_register);
    ("exception key drain", `Quick, test_exception_key_drain);
    ("bad offsets", `Quick, test_bad_offsets);
    ("unknown registers ignored", `Quick, test_unknown_registers_ignored);
  ]
